(* Benchmark and experiment harness.

   Regenerates every experiment table of DESIGN.md/EXPERIMENTS.md (the
   paper has no quantitative tables; its evaluation artifacts are theorems,
   lemmas and figures — each becomes a verdict table here), then runs
   Bechamel micro-benchmarks of the checker itself, one Test.make per
   table.

   Run with:  dune exec bench/main.exe
   (pass --no-micro to skip the Bechamel timing runs) *)

(* ---------- Bechamel micro-benchmarks ---------- *)

let pf = Format.printf

let hr title = pf "@.======== %s ========@." title



open Bechamel
open Toolkit

let micro_tests () =
  let n = 3 in
  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let c1_prog = Cr_tokenring.Btr4.c1 n in
  let c1 = Cr_guarded.Program.to_explicit c1_prog in
  let alpha4 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr4.alpha n) c1 btr in
  let d3 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 n) in
  let alpha3 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) d3 btr in
  let d3_prog = Cr_tokenring.Btr3.dijkstra3 n in
  let daemon_seed = ref 0 in
  [
    (* one Test.make per experiment table *)
    Test.make ~name:"E1-fig1-verdicts"
      (Staged.stage (fun () -> ignore (Cr_experiments.Fig_exps.run ())));
    Test.make ~name:"E4-compile-btr-explicit"
      (Staged.stage (fun () ->
           ignore (Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n))));
    Test.make ~name:"E5-lemma7-convergence-check"
      (Staged.stage (fun () ->
           ignore
             (Cr_core.Refine.convergence_refinement ~alpha:alpha4 ~c:c1 ~a:btr ())));
    Test.make ~name:"E6-thm8-stabilization-check"
      (Staged.stage (fun () ->
           ignore (Cr_core.Stabilize.stabilizing_to ~alpha:alpha4 ~c:c1 ~a:btr ())));
    Test.make ~name:"E8-thm11-stabilization-check"
      (Staged.stage (fun () ->
           ignore (Cr_core.Stabilize.stabilizing_to ~alpha:alpha3 ~c:d3 ~a:btr ())));
    Test.make ~name:"E14-recovery-episode"
      (Staged.stage (fun () ->
           incr daemon_seed;
           let d = Cr_sim.Daemon.random ~seed:!daemon_seed in
           let rng = Random.State.make [| !daemon_seed |] in
           let s0 =
             Cr_fault.Injector.randomize ~rng (Cr_guarded.Program.layout d3_prog)
           in
           ignore
             (Cr_sim.Runner.steps_to
                ~converged:(Cr_tokenring.Btr3.one_token n)
                d d3_prog ~start:s0 ~max_steps:10_000)));
    Test.make ~name:"E2-vm-step"
      (Staged.stage
         (let cfg = Cr_vm.Source.machine_config in
          let s0 = Cr_vm.Machine.initial_state cfg in
          fun () -> ignore (Cr_vm.Machine.step cfg s0)));
    Test.make ~name:"E3-bidding-bid"
      (Staged.stage
         (let s = Cr_bidding.Spec.of_list ~k:8 [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
          fun () -> ignore (Cr_bidding.Spec.bid 5 s)));
  ]

let run_micro () =
  let tests = micro_tests () in
  let instance = Instance.monotonic_clock in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:None () in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  hr "Checker micro-benchmarks (Bechamel, monotonic clock)";
  pf "%-32s %-16s %s@." "benchmark" "ns/run" "r^2";
  List.iter
    (fun test ->
      let results = Benchmark.all cfg [ instance ] test in
      let analysis = Analyze.all ols instance results in
      Hashtbl.iter
        (fun name ols_result ->
          let est =
            match Analyze.OLS.estimates ols_result with
            | Some (e :: _) -> Fmt.str "%.1f" e
            | _ -> "-"
          in
          let r2 =
            match Analyze.OLS.r_square ols_result with
            | Some r -> Fmt.str "%.4f" r
            | None -> "-"
          in
          pf "%-32s %-16s %s@." name est r2)
        analysis)
    tests

let () =
  let skip_micro = Array.exists (fun a -> a = "--no-micro") Sys.argv in
  Cr_experiments.Report.all ~ns:[ 2; 3; 4; 5 ] ();
  if not skip_micro then run_micro ();
  pf "@.done.@."
