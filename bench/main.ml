(* Benchmark and experiment harness.

   Regenerates every experiment table of DESIGN.md/EXPERIMENTS.md (the
   paper has no quantitative tables; its evaluation artifacts are theorems,
   lemmas and figures — each becomes a verdict table here), then runs
   Bechamel micro-benchmarks of the checker itself, one Test.make per
   table.

   Run with:  dune exec bench/main.exe
   (pass --no-micro to skip the Bechamel timing runs) *)

(* ---------- Bechamel micro-benchmarks ---------- *)

let pf = Format.printf

let hr title = pf "@.======== %s ========@." title



open Bechamel
open Toolkit

(* Measurement budget per test.  Sub-microsecond bodies need far more
   samples before the OLS fit stabilizes (the seed's E2-vm-step row sat
   at r^2 = 0.34 under the uniform half-second quota), and multi-ms
   bodies need a longer quota before they collect enough runs, so tests
   declare which budget they want. *)
type speed = Normal | Sub_micro | Slow

let micro_tests () =
  let n = 3 in
  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let c1_prog = Cr_tokenring.Btr4.c1 n in
  let c1 = Cr_guarded.Program.to_explicit c1_prog in
  let alpha4 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr4.alpha n) c1 btr in
  let d3 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 n) in
  let alpha3 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) d3 btr in
  let d3_prog = Cr_tokenring.Btr3.dijkstra3 n in
  (* larger instances for the PR 6 kernel micros *)
  let btr_6 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program 6) in
  let d3_6 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 6) in
  let alpha3_6 =
    Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha 6) d3_6 btr_6
  in
  let d3_6_prog = Cr_tokenring.Btr3.dijkstra3 6 in
  let d3_7 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 7) in
  let d3_7_csr = Cr_checker.Reach.of_explicit d3_7 in
  let d3_7_rows = Cr_kernel.Csr.to_rows d3_7_csr in
  let d3_7_inits = Array.to_list (Cr_semantics.Explicit.initials d3_7) in
  let btr_5 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program 5) in
  let d3_5 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 5) in
  let alpha3_5 =
    Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha 5) d3_5 btr_5
  in
  let daemon_seed = ref 0 in
  (* E17's read/write ring: the registry system with the smallest
     reachable ratio (288 of 177147 states at N = 3) — the head-to-head
     instance for the two Space engines *)
  let rw3_prog = Cr_tokenring.Rw_atomicity.program n in
  let space_refine space () =
    Cr_semantics.Compile_cache.bypass (fun () ->
        Cr_core.Check_cache.bypass (fun () ->
            let c = Cr_guarded.Program.to_explicit ~space rw3_prog in
            let tab =
              Cr_semantics.Abstraction.tabulate
                (Cr_tokenring.Rw_atomicity.alpha n) c btr
            in
            ignore (Cr_core.Refine.init_refinement ~alpha:tab ~c ~a:btr ())))
  in
  [
    (* one Test.make per experiment table *)
    ( Normal,
      Test.make ~name:"E1-fig1-verdicts"
        (Staged.stage (fun () -> ignore (Cr_experiments.Fig_exps.run ()))) );
    (* warm-path compile: after the first iteration this is a cache hit
       (fingerprint probe + re-target), the common case in the tables *)
    ( Normal,
      Test.make ~name:"E4-compile-btr-explicit"
        (Staged.stage (fun () ->
             ignore (Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n)))) );
    (* the same compile with the cache bypassed: the true cold cost *)
    ( Normal,
      Test.make ~name:"E4-compile-btr-cold"
        (Staged.stage (fun () ->
             Cr_semantics.Compile_cache.bypass (fun () ->
                 ignore
                   (Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n))))) );
    (* guaranteed miss: insert into an emptied cache every iteration *)
    ( Normal,
      Test.make ~name:"compile-cache-miss"
        (Staged.stage (fun () ->
             Cr_guarded.Program.clear_compile_cache ();
             ignore (Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n)))) );
    (* chunked compile on a ring big enough for the fan-out to matter
       (Dijkstra-3 at N = 7: 2187 states) — the compile column of the
       jobs-scaling matrix (sequential vs two vs four domains) *)
    ( Normal,
      Test.make ~name:"compile-seq-dijkstra3-n7"
        (Staged.stage (fun () ->
             Cr_semantics.Compile_cache.bypass (fun () ->
                 ignore
                   (Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 7))))) );
    ( Normal,
      Test.make ~name:"compile-par2-dijkstra3-n7"
        (Staged.stage (fun () ->
             Cr_kernel.Par.with_jobs 2 (fun () ->
                 Cr_semantics.Compile_cache.bypass (fun () ->
                     ignore
                       (Cr_guarded.Program.to_explicit
                          (Cr_tokenring.Btr3.dijkstra3 7)))))) );
    ( Normal,
      Test.make ~name:"compile-par4-dijkstra3-n7"
        (Staged.stage (fun () ->
             Cr_kernel.Par.with_jobs 4 (fun () ->
                 Cr_semantics.Compile_cache.bypass (fun () ->
                     ignore
                       (Cr_guarded.Program.to_explicit
                          (Cr_tokenring.Btr3.dijkstra3 7)))))) );
    (* warm hit on the same ring: the probe is capped at 256 sampled
       states, so the hit cost stays flat while the compile grows *)
    ( Normal,
      Test.make ~name:"compile-cache-hit-dijkstra3-n7"
        (Staged.stage (fun () ->
             ignore
               (Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 7)))) );
    (* the two Space engines head-to-head: cold compiles with the cache
       bypassed, then the same engines end to end on an init-anchored
       query (compile + α tabulation + init-refinement verdict, every
       cache bypassed).  Dense must enumerate all 3^11 product states;
       sparse only the 288-state legitimate orbit. *)
    ( Slow,
      Test.make ~name:"space-dense-compile-rw-n3"
        (Staged.stage (fun () ->
             Cr_semantics.Compile_cache.bypass (fun () ->
                 ignore
                   (Cr_guarded.Program.to_explicit
                      ~space:Cr_semantics.Space.Dense rw3_prog)))) );
    ( Normal,
      Test.make ~name:"space-sparse-compile-rw-n3"
        (Staged.stage (fun () ->
             Cr_semantics.Compile_cache.bypass (fun () ->
                 ignore
                   (Cr_guarded.Program.to_explicit
                      ~space:Cr_semantics.Space.Sparse rw3_prog)))) );
    ( Slow,
      Test.make ~name:"space-dense-refine-rw-n3"
        (Staged.stage (space_refine Cr_semantics.Space.Dense)) );
    ( Normal,
      Test.make ~name:"space-sparse-refine-rw-n3"
        (Staged.stage (space_refine Cr_semantics.Space.Sparse)) );
    (* these three measure the actual check, so the verdict cache is
       bypassed (a warm hit is measured separately below) *)
    ( Normal,
      Test.make ~name:"E5-lemma7-convergence-check"
        (Staged.stage (fun () ->
             Cr_core.Check_cache.bypass (fun () ->
                 ignore
                   (Cr_core.Refine.convergence_refinement ~alpha:alpha4 ~c:c1
                      ~a:btr ())))) );
    ( Normal,
      Test.make ~name:"E6-thm8-stabilization-check"
        (Staged.stage (fun () ->
             Cr_core.Check_cache.bypass (fun () ->
                 ignore
                   (Cr_core.Stabilize.stabilizing_to ~alpha:alpha4 ~c:c1 ~a:btr
                      ())))) );
    ( Normal,
      Test.make ~name:"E8-thm11-stabilization-check"
        (Staged.stage (fun () ->
             Cr_core.Check_cache.bypass (fun () ->
                 ignore
                   (Cr_core.Stabilize.stabilizing_to ~alpha:alpha3 ~c:d3 ~a:btr
                      ())))) );
    (* chunked classification sweep on a ring big enough for the fan-out
       to matter (Dijkstra-3 at N = 6 against BTR at N = 6: 7290 edges,
       ~29 ms sequential) — the classify column of the jobs-scaling
       matrix (sequential vs two vs four domains on the warm pool) *)
    ( Slow,
      Test.make ~name:"classify-seq-dijkstra3-n6"
        (Staged.stage (fun () ->
             ignore (Cr_core.Refine.classify ~alpha:alpha3_6 ~c:d3_6 ~a:btr_6))) );
    ( Slow,
      Test.make ~name:"classify-par2-dijkstra3-n6"
        (Staged.stage (fun () ->
             Cr_kernel.Par.with_jobs 2 (fun () ->
                 ignore
                   (Cr_core.Refine.classify ~alpha:alpha3_6 ~c:d3_6 ~a:btr_6)))) );
    ( Slow,
      Test.make ~name:"classify-par4-dijkstra3-n6"
        (Staged.stage (fun () ->
             Cr_kernel.Par.with_jobs 4 (fun () ->
                 ignore
                   (Cr_core.Refine.classify ~alpha:alpha3_6 ~c:d3_6 ~a:btr_6)))) );
    (* full stabilization check at the same size (bad-seed sweep +
       backward reach + convergence stair) — the stabilize column of the
       jobs-scaling matrix; the verdict cache is bypassed so every
       iteration runs the checker *)
    ( Slow,
      Test.make ~name:"stabilize-sweep-seq-dijkstra3-n6"
        (Staged.stage (fun () ->
             Cr_core.Check_cache.bypass (fun () ->
                 ignore
                   (Cr_core.Stabilize.stabilizing_to ~alpha:alpha3_6 ~c:d3_6
                      ~a:btr_6 ())))) );
    ( Slow,
      Test.make ~name:"stabilize-sweep-par2-dijkstra3-n6"
        (Staged.stage (fun () ->
             Cr_kernel.Par.with_jobs 2 (fun () ->
                 Cr_core.Check_cache.bypass (fun () ->
                     ignore
                       (Cr_core.Stabilize.stabilizing_to ~alpha:alpha3_6
                          ~c:d3_6 ~a:btr_6 ()))))) );
    ( Slow,
      Test.make ~name:"stabilize-sweep-par4-dijkstra3-n6"
        (Staged.stage (fun () ->
             Cr_kernel.Par.with_jobs 4 (fun () ->
                 Cr_core.Check_cache.bypass (fun () ->
                     ignore
                       (Cr_core.Stabilize.stabilizing_to ~alpha:alpha3_6
                          ~c:d3_6 ~a:btr_6 ()))))) );
    (* reachability: legacy array-of-rows kernel vs the CSR kernel on the
       same graph (both adjacency representations prebuilt) *)
    ( Normal,
      Test.make ~name:"reach-rows-dijkstra3-n7"
        (Staged.stage (fun () ->
             ignore (Cr_checker.Reach.forward ~succ:d3_7_rows ~seeds:d3_7_inits))) );
    ( Normal,
      Test.make ~name:"reach-csr-dijkstra3-n7"
        (Staged.stage (fun () ->
             ignore
               (Cr_checker.Reach.forward_csr ~succ:d3_7_csr ~seeds:d3_7_inits))) );
    (* verdict cache: the true cold check vs a warm hit on the same key *)
    ( Normal,
      Test.make ~name:"verdict-cold-stabilize-d3-n5"
        (Staged.stage (fun () ->
             Cr_core.Check_cache.bypass (fun () ->
                 ignore
                   (Cr_core.Stabilize.stabilizing_to ~alpha:alpha3_5 ~c:d3_5
                      ~a:btr_5 ())))) );
    ( Sub_micro,
      Test.make ~name:"verdict-warm-stabilize-d3-n5"
        (Staged.stage (fun () ->
             ignore
               (Cr_core.Stabilize.stabilizing_to ~alpha:alpha3_5 ~c:d3_5
                  ~a:btr_5 ()))) );
    (* lint v1 (exact battery alone) vs lint v2 (flow engine feeding the
       exact battery through the init-dead pre-filter) on the same ring,
       plus the abstract interpreter on its own — the exact-vs-flow
       audit-cost comparison of the PR 8 artifact *)
    ( Slow,
      Test.make ~name:"lint-exact-dijkstra3-n6"
        (Staged.stage (fun () -> ignore (Cr_lint.Lint.run d3_6_prog))) );
    ( Slow,
      Test.make ~name:"lint-v2-dijkstra3-n6"
        (Staged.stage (fun () -> ignore (Cr_flow.Flow.lint d3_6_prog))) );
    ( Slow,
      Test.make ~name:"flow-analyze-dijkstra3-n6"
        (Staged.stage (fun () -> ignore (Cr_flow.Flow.analyze d3_6_prog))) );
    ( Normal,
      Test.make ~name:"E14-recovery-episode"
        (Staged.stage (fun () ->
             incr daemon_seed;
             let d = Cr_sim.Daemon.random ~seed:!daemon_seed in
             let rng = Random.State.make [| !daemon_seed |] in
             let s0 =
               Cr_fault.Injector.randomize ~rng (Cr_guarded.Program.layout d3_prog)
             in
             ignore
               (Cr_sim.Runner.steps_to
                  ~converged:(Cr_tokenring.Btr3.one_token n)
                  d d3_prog ~start:s0 ~max_steps:10_000))) );
    ( Sub_micro,
      Test.make ~name:"E2-vm-step"
        (Staged.stage
           (let cfg = Cr_vm.Source.machine_config in
            let s0 = Cr_vm.Machine.initial_state cfg in
            fun () -> ignore (Cr_vm.Machine.step cfg s0))) );
    ( Sub_micro,
      Test.make ~name:"E3-bidding-bid"
        (Staged.stage
           (let s = Cr_bidding.Spec.of_list ~k:8 [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
            fun () -> ignore (Cr_bidding.Spec.bid 5 s))) );
  ]

(* A fit this poor means the ns/run column is noise-dominated; the row is
   kept but marked, in the table and in the JSON artifact. *)
let low_r2 = function
  | Some r2 when Float.is_finite r2 -> r2 < 0.9
  | Some _ | None -> true

(* Rows that stayed [low_r2] in BENCH_PR8 even after the adaptive
   reruns: their retries escalate on a steeper quota ladder (6x per
   attempt instead of 4x) so the final attempt has a real chance to
   stabilize before the row ships flagged. *)
let boosted_rows =
  [ "classify-seq-dijkstra3-n6"; "reach-rows-dijkstra3-n7"; "E14-recovery-episode" ]

(* Measurement budget for attempt [k] of a test (0 = first run): each
   retry multiplies the time quota (4x; 6x for the [boosted_rows]) so
   the OLS fit gets more, and more widely spread, sample sizes.  The
   sample cap scales more gently — the quota, not the cap, is what noisy
   rows were exhausting. *)
let cfg_for ?(boost = false) speed attempt =
  let ladder = if boost then 6. else 4. in
  let quota base = Time.second (base *. (ladder ** float_of_int attempt)) in
  match speed with
  | Normal ->
      Benchmark.cfg ~limit:(2000 * (attempt + 1)) ~quota:(quota 0.5) ~kde:None ()
  | Sub_micro ->
      Benchmark.cfg ~limit:(20000 * (attempt + 1)) ~quota:(quota 3.0) ~kde:None
        ()
  | Slow -> Benchmark.cfg ~limit:2000 ~quota:(quota 3.0) ~kde:None ()

let max_retries = 2

(* Run the micro-benchmarks and return one row per test, sorted by name
   (the raw [Analyze.all] result is a [Hashtbl], whose iteration order is
   nondeterministic).  A row whose fit comes back below the r^2 threshold
   is re-measured at escalated budgets (up to [max_retries] times) and
   the best-r^2 attempt is kept, so a row ships as [low_r2] only after
   the widened budget also failed to stabilize it. *)
let run_micro () =
  let tests = micro_tests () in
  (* The table sweep above leaves every compiled system up to N = 7 (and
     the 117k-state K-state ring) live in the compile cache; with that
     much live data Bechamel's GC stabilization is so slow that the fast
     tests burn their whole quota inside it and come back as
     single-sample (r^2-less) fits.  Drop the cache and compact: the
     micro tests re-warm the few small entries they need. *)
  Cr_guarded.Program.clear_compile_cache ();
  Cr_core.Check_cache.clear_all ();
  Gc.compact ();
  let instance = Instance.monotonic_clock in
  let ols =
    Analyze.ols ~r_square:true ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let measure ?boost speed attempt test =
    let results = Benchmark.all (cfg_for ?boost speed attempt) [ instance ] test in
    let analysis = Analyze.all ols instance results in
    let row = ref None in
    Hashtbl.iter
      (fun name ols_result ->
        let est =
          match Analyze.OLS.estimates ols_result with
          | Some (e :: _) -> Some e
          | _ -> None
        in
        row := Some (name, est, Analyze.OLS.r_square ols_result))
      analysis;
    !row
  in
  let better a b =
    (* prefer the attempt whose fit explains more of the variance *)
    match (a, b) with
    | (_, _, Some ra), (_, _, Some rb) -> if rb > ra then b else a
    | (_, _, None), (_, _, Some _) -> b
    | _ -> a
  in
  let rows = ref [] in
  List.iter
    (fun (speed, test) ->
      match measure speed 0 test with
      | None -> ()
      | Some first ->
          let best = ref first and retries = ref 0 in
          let boost =
            let name, _, _ = first in
            List.mem name boosted_rows
          in
          while
            (let _, _, r2 = !best in
             low_r2 r2)
            && !retries < max_retries
          do
            incr retries;
            match measure ~boost speed !retries test with
            | Some attempt -> best := better !best attempt
            | None -> ()
          done;
          let name, est, r2 = !best in
          rows := (name, est, r2, !retries) :: !rows)
    tests;
  List.sort (fun (a, _, _, _) (b, _, _, _) -> String.compare a b) !rows

let print_micro rows =
  hr "Checker micro-benchmarks (Bechamel, monotonic clock)";
  pf "%-32s %-16s %-10s %s@." "benchmark" "ns/run" "r^2" "retries";
  List.iter
    (fun (name, est, r2, retries) ->
      let fmt_opt f = function Some v -> Fmt.str f v | None -> "-" in
      pf "%-32s %-16s %-10s %d%s@." name
        (fmt_opt "%.1f" est)
        (fmt_opt "%.4f" r2)
        retries
        (if low_r2 r2 then "  (*)" else ""))
    rows;
  if List.exists (fun (_, _, r2, _) -> low_r2 r2) rows then
    pf "(*) r^2 < 0.9 even after escalated re-runs: OLS fit is \
        noise-dominated; read ns/run with care@."

(* ---------- per-N wall-clock of the full table sweep ---------- *)

(* Run [f] with stdout discarded (the tables are timed, not shown twice).
   Redirection happens at the file-descriptor level: once a domain has
   been spawned, Format's std_formatter writes through a domain-local
   buffer straight to [Stdlib.stdout], so swapping the formatter's
   out-functions would no longer intercept anything. *)
let silently f =
  flush stdout;
  Format.print_flush ();
  let saved = Unix.dup Unix.stdout in
  let devnull = Unix.openfile "/dev/null" [ Unix.O_WRONLY ] 0 in
  Unix.dup2 devnull Unix.stdout;
  Unix.close devnull;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Format.print_flush ();
      Unix.dup2 saved Unix.stdout;
      Unix.close saved)
    f

let time_report_per_n ns =
  List.map
    (fun n ->
      let t0 = Unix.gettimeofday () in
      silently (fun () -> Cr_experiments.Report.all ~ns:[ n ] ());
      (n, Unix.gettimeofday () -. t0))
    ns

(* ---------- JSON output (hand-rolled; keep the repo dependency-free) ---------- *)

let json_of_float_opt = function
  | Some v when Float.is_finite v -> Printf.sprintf "%.4f" v
  | Some _ | None -> "null"

(* Process-wide resolved revision, shared with the journal stamps and
   the crcheck artifact headers. *)
let git_rev () = Cr_obs.Journal.git_rev ()

(* Merged telemetry counters for the JSON artifact.  When CR_STATS/CR_TRACE
   are unset the timed runs above executed with collection disabled (so the
   micro numbers are unperturbed); collect from a separate silent small
   sweep instead. *)
let counters_snapshot () =
  if not (Cr_obs.Obs.tracking ()) then begin
    Cr_obs.Obs.force_collect ();
    silently (fun () -> Cr_experiments.Report.all ~ns:[ 2 ] ())
  end;
  (Cr_obs.Obs.merged_snapshot (), Cr_obs.Obs.merged_histograms ())

let write_json path micro report_wall =
  let counters, hists = counters_snapshot () in
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"git_rev\": %S,\n  \"cr_jobs\": %d,\n" (git_rev ())
       (Cr_kernel.Par.jobs_env ()));
  Buffer.add_string buf "  \"micro\": [\n";
  List.iteri
    (fun i (name, est, r2, retries) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"name\": %S, \"ns_per_run\": %s, \"r2\": %s, \"low_r2\": %b, \
            \"retries\": %d}%s\n"
           name
           (json_of_float_opt est)
           (json_of_float_opt r2)
           (low_r2 r2) retries
           (if i = List.length micro - 1 then "" else ",")))
    micro;
  Buffer.add_string buf "  ],\n  \"report_all_wall_s\": [\n";
  List.iteri
    (fun i (n, secs) ->
      Buffer.add_string buf
        (Printf.sprintf "    {\"n\": %d, \"seconds\": %.3f}%s\n" n secs
           (if i = List.length report_wall - 1 then "" else ",")))
    report_wall;
  Buffer.add_string buf "  ],\n  \"counters\": {\n";
  List.iteri
    (fun i (name, v) ->
      Buffer.add_string buf
        (Printf.sprintf "    %S: %d%s\n" name v
           (if i = List.length counters - 1 then "" else ",")))
    counters;
  Buffer.add_string buf "  },\n  \"hists\": {\n";
  List.iteri
    (fun i (name, (h : Cr_obs.Obs.hstats)) ->
      Buffer.add_string buf
        (Printf.sprintf
           "    %S: {\"count\": %d, \"mean\": %.1f, \"p50\": %d, \"p90\": %d, \
            \"p99\": %d, \"max\": %d}%s\n"
           name h.count (Cr_obs.Obs.mean h)
           (Cr_obs.Obs.quantile h 0.5)
           (Cr_obs.Obs.quantile h 0.9)
           (Cr_obs.Obs.quantile h 0.99)
           h.max_value
           (if i = List.length hists - 1 then "" else ",")))
    hists;
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc;
  pf "wrote %s@." path

(* Accept [--json PATH] or [--json=PATH] anywhere on the command line;
   reject a missing path (end of argv, or a following flag) instead of
   silently skipping the artifact. *)
let parse_json_path argv =
  let usage () =
    prerr_endline "bench: --json requires a path (--json PATH or --json=PATH)";
    exit 2
  in
  let is_flag a = String.length a >= 2 && String.sub a 0 2 = "--" in
  let rec find = function
    | [] -> None
    | [ "--json" ] -> usage ()
    | "--json" :: path :: _ -> if is_flag path then usage () else Some path
    | arg :: _ when String.starts_with ~prefix:"--json=" arg ->
        let p = String.sub arg 7 (String.length arg - 7) in
        if p = "" then usage () else Some p
    | _ :: rest -> find rest
  in
  find (List.tl (Array.to_list argv))

let () =
  let skip_micro = Array.exists (fun a -> a = "--no-micro") Sys.argv in
  let json_path = parse_json_path Sys.argv in
  Cr_experiments.Report.all ~ns:[ 2; 3; 4; 5 ]
    ~ns_direct:[ 2; 3; 4; 5; 6; 7; 8 ]
    ~ns_kstate:[ 2; 3; 4; 5; 6 ] ();
  let micro = if skip_micro then [] else run_micro () in
  if not skip_micro then print_micro micro;
  (match json_path with
  | None -> ()
  | Some path ->
      let wall = time_report_per_n [ 2; 3; 4; 5 ] in
      write_json path micro wall);
  pf "@.done.@."
