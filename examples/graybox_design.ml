(* Graybox design of stabilization (Section 2.2 of the paper).

   Run with:  dune exec examples/graybox_design.exe

   The promise of Theorem 5: design a stabilization wrapper against the
   *specification* only, refine system and wrapper independently, and the
   composition of the refinements is stabilizing — no knowledge of the
   implementation needed.

   This example replays the paper's 4-state derivation end to end:

     spec   A  = BTR                (abstract bidirectional token ring)
     wrapper W = W1 [] W2           (designed against BTR alone)
     impl   C  = C1                 (4-state, own-writes only)
     wrapper refinement W' = W1' [] W2' (vacuous for the 4-state mapping)

   and discharges each premise with the model checker. *)

let pf = Format.printf

let () =
  let n = 3 in
  pf "=== Graybox stabilization of the 4-state token ring ===@.@.";

  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in

  (* Premise 1 (wrapper works for the SPEC): (A [] W) stabilizing to A. *)
  let wrapped, is_wrapper = Cr_tokenring.Btr.wrapped_priority n in
  let aw = Cr_guarded.Program.to_explicit ~priority_of:is_wrapper wrapped in
  let p1 = Cr_core.Stabilize.stabilizing_to ~c:aw ~a:btr () in
  pf "premise 1 — %a@.@." Cr_core.Stabilize.pp_report p1;

  (* Premise 2 (implementation refines the spec): [C1 ⪯ BTR].  Note this
     uses only C1's transition system and the published mapping — not any
     insight into why C1 works.  The premise is init-anchored, so the
     sparse (reachable-only) engine suffices — at real ring sizes this is
     what lets the premise be discharged without the full product space. *)
  let c1_sparse =
    Cr_guarded.Program.to_explicit ~space:Cr_semantics.Space.Sparse
      (Cr_tokenring.Btr4.c1 n)
  in
  let alpha_sparse =
    Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr4.alpha n) c1_sparse btr
  in
  let p2 =
    Cr_core.Refine.convergence_refinement ~alpha:alpha_sparse ~c:c1_sparse
      ~a:btr ()
  in
  pf "premise 2 — %a@." Cr_core.Refine.pp_report p2;
  pf "            (%d of C1's transitions compress multi-step BTR recovery)@.@."
    p2.Cr_core.Refine.stats.Cr_core.Refine.compressions;

  (* Premise 3 (wrapper refines independently): for the 4-state mapping
     the refined wrappers are VACUOUS — their guards already imply their
     effects (Section 4.1) — so W' adds nothing and C1 [] W' = C1. *)
  let w1_vac, w2_vac = Cr_experiments.Ring_exps.wrapper_vacuity n in
  pf "premise 3 — W1' vacuous on all states: %b; W2' vacuous: %b@.@." w1_vac w2_vac;

  (* Conclusion (Theorem 5): C1 [] W' = C1 is stabilizing to BTR.
     Stabilization quantifies over ALL states (recovery from arbitrary
     corruption), so the conclusion needs the dense compile. *)
  let c1 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr4.c1 n) in
  let alpha = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr4.alpha n) c1 btr in
  let concl = Cr_core.Stabilize.stabilizing_to ~alpha ~c:c1 ~a:btr () in
  pf "conclusion — %a@.@." Cr_core.Stabilize.pp_report concl;

  (* The further guard-relaxing optimization gives Dijkstra's published
     4-state system; its stabilization is checked the same way. *)
  let d4 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr4.dijkstra4 n) in
  let alpha4 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr4.alpha n) d4 btr in
  let dij = Cr_core.Stabilize.stabilizing_to ~alpha:alpha4 ~c:d4 ~a:btr () in
  pf "optimized —  %a@.@." Cr_core.Stabilize.pp_report dij;

  (* The same graybox story for the 3-state family: W1''/W2' were designed
     against BTR_3's mapping and reused UNCHANGED for both C2 (Section 5)
     and C3 (Section 6) — that reuse is the point of graybox design. *)
  pf "--- wrapper reuse across implementations (Sections 5-6) ---@.";
  List.iter
    (fun (name, mk) ->
      let prog, is_w = mk n in
      let e = Cr_guarded.Program.to_explicit ~priority_of:is_w prog in
      let a3 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) e btr in
      let r = Cr_core.Stabilize.stabilizing_to ~alpha:a3 ~c:e ~a:btr () in
      pf "%-22s %a@." name Cr_core.Stabilize.pp_report r)
    [
      ("C2 [] W1'' [] W2'", Cr_tokenring.Btr3.c2_wrapped_priority);
      ("C3 [] W1'' [] W2'", Cr_tokenring.C3_system.new3_priority);
    ];
  pf "@.The same wrappers W1''/W2' stabilize two different implementations@.";
  pf "of the same specification — graybox design in action.@."
