(* Fault-injection campaigns against the derived stabilizing rings.

   Run with:  dune exec examples/fault_injection.exe

   Injects transient faults into legitimate states of Dijkstra's 3-state,
   4-state and K-state systems and measures recovery under several
   daemons, printing a small report.  The worst case is obtained exactly
   from the model checker and realized by the adversarial daemon. *)

let pf = Format.printf

let campaign ~name (p : Cr_guarded.Program.t) ~converged ~n =
  pf "--- %s (ring 0..%d, %d states) ---@." name n
    (Cr_guarded.Layout.num_states (Cr_guarded.Program.layout p));
  (* exact worst case via the explicit graph *)
  let e = Cr_guarded.Program.to_explicit p in
  let succ = Cr_checker.Reach.of_explicit e in
  let mask =
    Cr_kernel.Bitset.of_bool_array
      (Array.init (Cr_semantics.Explicit.num_states e) (fun i ->
           not (converged (Cr_semantics.Explicit.state e i))))
  in
  let depth = Cr_checker.Paths.longest_within_csr ~succ ~mask in
  let worst = Array.fold_left max 0 depth in
  pf "exact worst-case recovery: %d steps@." worst;
  (* Monte-Carlo under random and round-robin daemons *)
  List.iter
    (fun (dname, mk) ->
      let stats =
        Cr_sim.Runner.convergence_stats ~samples:300 ~max_steps:100_000 ~seed:5
          ~converged mk p
      in
      pf "%-12s %a@." dname Cr_sim.Runner.pp_stats stats)
    [
      ("random", fun i -> Cr_sim.Daemon.random ~seed:(7 * i));
      ("round-robin", fun _ -> Cr_sim.Daemon.round_robin ());
    ];
  (* adversarial daemon realizes the exact worst case *)
  let potential s = depth.(Cr_semantics.Explicit.find e s) in
  let adv = Cr_sim.Daemon.adversarial ~name:"adversarial" ~potential in
  let start = ref None in
  Array.iteri
    (fun i v -> if v = worst && !start = None then start := Some i)
    depth;
  (match !start with
  | Some i ->
      let s0 = Cr_semantics.Explicit.state e i in
      (match
         Cr_sim.Runner.steps_to ~converged adv p ~start:s0 ~max_steps:(worst * 2)
       with
      | Some k -> pf "adversarial daemon from a worst state: %d steps@." k
      | None -> pf "adversarial daemon: did not converge (unexpected)@.")
  | None -> ());
  pf "@."

let () =
  pf "=== Fault injection campaigns ===@.@.";
  let n = 3 in
  campaign ~name:"Dijkstra 3-state" (Cr_tokenring.Btr3.dijkstra3 n)
    ~converged:(Cr_tokenring.Btr3.one_token n) ~n;
  campaign ~name:"Dijkstra 4-state" (Cr_tokenring.Btr4.dijkstra4 n)
    ~converged:(Cr_tokenring.Btr4.one_token n) ~n;
  campaign ~name:"K-state (K = N+1)" (Cr_tokenring.Kstate.program ~n ~k:(n + 1))
    ~converged:(fun s -> Cr_tokenring.Kstate.token_count n s = 1)
    ~n;

  (* one annotated single-episode trace *)
  pf "--- one recovery episode in detail (Dijkstra 3-state) ---@.";
  let p = Cr_tokenring.Btr3.dijkstra3 n in
  let rng = Random.State.make [| 11 |] in
  let s0 =
    Cr_fault.Injector.corrupt_k ~rng
      (Cr_guarded.Program.layout p)
      (Cr_tokenring.Btr3.canonical n) ~k:3
  in
  let d = Cr_sim.Daemon.round_robin () in
  let t = Cr_sim.Runner.run d p ~start:s0 ~max_steps:15 in
  pf "start: %d token(s)   %s@."
    (Cr_tokenring.Btr3.token_count n s0)
    (Cr_tokenring.Render.counters3_line n s0);
  List.iteri
    (fun i e ->
      pf "%2d %-8s -> %d token(s)   %s@." (i + 1) e.Cr_sim.Runner.action
        (Cr_tokenring.Btr3.token_count n e.Cr_sim.Runner.state)
        (Cr_tokenring.Render.counters3_line n e.Cr_sim.Runner.state))
    t.Cr_sim.Runner.steps
