(* The paper's bidding-server example, end to end.

   Run with:  dune exec examples/bidding_demo.exe

   The specification (multiset of best-k bids) tolerates one corrupted
   stored bid; the sorted-list implementation does not (a head corrupted
   to MAX blocks all bids); a graybox wrapper designed against the spec
   alone repairs it. *)

let pf = Format.printf

let show name l = pf "%-24s [%s]@." name (String.concat "; " (List.map string_of_int l))

let () =
  pf "=== Refinement does not preserve fault-tolerance (intro example 2) ===@.@.";
  let bids = [ 12; 4; 93; 41; 7; 88; 56 ] in
  pf "bidding period: %s, keep best k = 3@.@."
    (String.concat ", " (List.map string_of_int bids));

  (* fault-free: spec and implementation agree *)
  let spec = Cr_bidding.Spec.run (Cr_bidding.Spec.create ~k:3) bids in
  let impl = Cr_bidding.Sorted_impl.run (Cr_bidding.Sorted_impl.create ~k:3) bids in
  show "spec winners:" (Cr_bidding.Spec.winners spec);
  show "impl winners:" (Cr_bidding.Sorted_impl.winners impl);
  pf "@.";

  (* now corrupt the head (the believed minimum) to MAX halfway through *)
  let first_half = [ 12; 4; 93 ] and second_half = [ 41; 7; 88; 56 ] in
  let max_bid = 1_000_000 in
  pf "fault after bid 93: head of the stored list corrupted to %d@.@." max_bid;

  let spec_mid = Cr_bidding.Spec.run (Cr_bidding.Spec.create ~k:3) first_half in
  let spec_corrupt = Cr_bidding.Spec.corrupt ~index:0 ~value:max_bid spec_mid in
  let spec_final = Cr_bidding.Spec.run spec_corrupt second_half in
  show "spec after fault:" (Cr_bidding.Spec.winners spec_final);
  pf "  -> still serves %d of the best 3 genuine bids@.@."
    (List.length
       (List.filter (fun v -> List.mem v [ 93; 88; 56 ])
          (Cr_bidding.Spec.winners spec_final)));

  let impl_mid =
    Cr_bidding.Sorted_impl.run (Cr_bidding.Sorted_impl.create ~k:3) first_half
  in
  let impl_corrupt = Cr_bidding.Sorted_impl.corrupt ~index:0 ~value:max_bid impl_mid in
  let impl_final = Cr_bidding.Sorted_impl.run impl_corrupt second_half in
  show "impl after fault:" (Cr_bidding.Sorted_impl.winners impl_final);
  pf "  -> the corrupted head blocks every later bid: 88 and 56 are lost@.@.";

  (* graybox repair: the wrapper only knows the spec's state is a multiset *)
  let wrapped_final = Cr_bidding.Wrapper.run impl_corrupt second_half in
  show "wrapped impl:" (Cr_bidding.Wrapper.winners wrapped_final);
  pf "  -> the spec-level repair wrapper restores (k-1)-of-best-k service@.@.";

  (* formal verdicts on the finite automaton views *)
  let v = Cr_experiments.Intro_exps.bidding_experiment () in
  pf "model-checked verdicts (bids over 0..3, k = 2):@.";
  pf "  fault-free [impl ⊑ spec]_init          : %b@."
    v.Cr_experiments.Intro_exps.impl_refines_init;
  pf "  [impl ⪯ spec] (convergence refinement) : %b@."
    v.Cr_experiments.Intro_exps.impl_convergence;
  (match v.Cr_experiments.Intro_exps.impl_blocked_terminal with
  | Some s ->
      pf "  witness: corrupted state [%s] accepts no further bid@."
        (String.concat ";" (List.map string_of_int s))
  | None -> ());
  pf "  [wrapped ⪯ spec]                        : %b@."
    v.Cr_experiments.Intro_exps.wrapped_convergence
