(* The paper's introductory compiler example, end to end.

   Run with:  dune exec examples/bytecode_demo.exe

   Compiles [int x = 0; while (x == x) x = 0;] to the mini stack machine,
   prints the listing (identical to the paper's javac output), and shows
   that a transient corruption of x between the two iloads drives the
   bytecode to [return] — refinement did not preserve stabilization. *)

let pf = Format.printf

let () =
  pf "=== Refinement does not preserve fault-tolerance (intro example 1) ===@.@.";
  pf "source:@.";
  pf "  int x = 0;@.  while (x == x) { x = 0; }@.@.";
  let instrs = Cr_vm.Source.compile Cr_vm.Source.paper_program in
  let listing = Cr_vm.Instr.layout_addresses instrs in
  pf "compiled bytecode (matches the paper's listing: %b):@.%a@."
    (listing = Cr_vm.Source.paper_listing)
    Cr_vm.Instr.pp_listing listing;

  let cfg = Cr_vm.Source.machine_config in

  (* fault-free execution loops forever with x = 0 *)
  let s0 = Cr_vm.Machine.initial_state cfg in
  let rec run_steps s k =
    if k = 0 then s
    else match Cr_vm.Machine.step cfg s with None -> s | Some s' -> run_steps s' (k - 1)
  in
  let s = run_steps s0 30 in
  pf "after 30 fault-free steps: %a (still looping)@.@." Cr_vm.Machine.pp_state s;

  (* the paper's fault: corrupt x between the two iloads *)
  let rec to_pc8 s =
    if s.Cr_vm.Machine.pc = 8 then s
    else
      match Cr_vm.Machine.step cfg s with
      | Some s' -> to_pc8 s'
      | None -> assert false
  in
  let s8 = to_pc8 s0 in
  pf "at pc=8 the stack holds the old x: %a@." Cr_vm.Machine.pp_state s8;
  let locals = Array.copy s8.Cr_vm.Machine.locals in
  locals.(1) <- 1;
  let corrupted = { s8 with Cr_vm.Machine.locals } in
  pf "fault: x := 1           %a@." Cr_vm.Machine.pp_state corrupted;
  let rec run_trace s =
    match Cr_vm.Machine.step cfg s with
    | None -> pf "halted:                 %a@." Cr_vm.Machine.pp_state s
    | Some s' ->
        pf "  %-12s->        %a@."
          (match Cr_vm.Machine.fetch cfg s.Cr_vm.Machine.pc with
          | Some i -> Fmt.str "%a" Cr_vm.Instr.pp i
          | None -> "?")
          Cr_vm.Machine.pp_state s';
        run_trace s'
  in
  run_trace corrupted;
  pf "@.the program terminated with x = 1: \"x is eventually always 0\" is lost.@.@.";

  (* the formal verdicts *)
  let v = Cr_experiments.Intro_exps.vm_experiment () in
  pf "model-checked verdicts:@.";
  pf "  source-level system stabilizes to x=0 : %b@."
    v.Cr_experiments.Intro_exps.source_stabilizes;
  pf "  compiled bytecode stabilizes to x=0   : %b@."
    v.Cr_experiments.Intro_exps.bytecode_stabilizes;
  pf "  (fault-free, the bytecode refines the source: %b)@."
    v.Cr_experiments.Intro_exps.bytecode_refines_init;
  match v.Cr_experiments.Intro_exps.bad_terminal with
  | Some w -> pf "  witness bad terminal: %a@." Cr_vm.Machine.pp_state w
  | None -> ()
