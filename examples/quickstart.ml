(* Quickstart: define a system, wrap it, and model-check stabilization.

   Run with:  dune exec examples/quickstart.exe

   The walk-through mirrors Section 3 of the paper: the abstract
   bidirectional token ring BTR is fault-intolerant; adding the wrappers
   W1 (token creation) and W2 (token deletion) makes it stabilizing —
   provided the wrappers preempt the ring actions (see EXPERIMENTS.md on
   execution models). *)

let () =
  let n = 3 in
  Format.printf "=== Convergence Refinement quickstart (ring 0..%d) ===@.@." n;

  (* 1. The abstract bidirectional token ring, compiled to an explicit
     transition system. *)
  let btr_program = Cr_tokenring.Btr.program n in
  let btr = Cr_guarded.Program.to_explicit btr_program in
  Format.printf "BTR(%d): %d states, %d transitions@." n
    (Cr_semantics.Explicit.num_states btr)
    (Cr_semantics.Explicit.num_transitions btr);

  (* 2. BTR alone is not stabilizing: a faulted (token-free or multi-token)
     state never recovers. *)
  let self = Cr_core.Stabilize.self_stabilizing btr in
  Format.printf "BTR self-stabilizing? %b@." self.Cr_core.Stabilize.holds;

  (* 3. Add the dependability wrappers W1 and W2 with preemptive
     semantics, and model-check Theorem 6. *)
  let wrapped, is_wrapper = Cr_tokenring.Btr.wrapped_priority n in
  let wrapped_e = Cr_guarded.Program.to_explicit ~priority_of:is_wrapper wrapped in
  let thm6 = Cr_core.Stabilize.stabilizing_to ~c:wrapped_e ~a:btr () in
  Format.printf "Theorem 6: %a@.@." Cr_core.Stabilize.pp_report thm6;

  (* 4. Refine: Dijkstra's 3-state ring is a concrete implementation over
     mod-3 counters.  Check it stabilizes to BTR through the Section 5
     abstraction function. *)
  let d3 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 n) in
  let alpha = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) d3 btr in
  let thm11 = Cr_core.Stabilize.stabilizing_to ~alpha ~c:d3 ~a:btr () in
  Format.printf "Theorem 11: %a@.@." Cr_core.Stabilize.pp_report thm11;

  (* 5. And check the refinement relation itself: C1 (the 4-state
     concrete system) is a convergence refinement of BTR. *)
  let c1 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr4.c1 n) in
  let alpha4 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr4.alpha n) c1 btr in
  let lemma7 = Cr_core.Refine.convergence_refinement ~alpha:alpha4 ~c:c1 ~a:btr () in
  Format.printf "Lemma 7: %a@.@." Cr_core.Refine.pp_report lemma7;

  (* 6. Watch a recovery: corrupt Dijkstra's ring and let a random daemon
     run it back to a single token. *)
  let p = Cr_tokenring.Btr3.dijkstra3 n in
  let rng = Random.State.make [| 42 |] in
  let s0 =
    Cr_fault.Injector.corrupt_k ~rng
      (Cr_guarded.Program.layout p)
      (Cr_tokenring.Btr3.canonical n) ~k:2
  in
  let daemon = Cr_sim.Daemon.random ~seed:7 in
  let trace = Cr_sim.Runner.run daemon p ~start:s0 ~max_steps:12 in
  Format.printf "Recovery trace after 2 faults:@.%a@."
    (Cr_sim.Runner.pp_trace p) trace;
  List.iteri
    (fun i e ->
      Format.printf "  step %2d: %d token(s)@." (i + 1)
        (Cr_tokenring.Btr3.token_count n e.Cr_sim.Runner.state))
    trace.Cr_sim.Runner.steps
