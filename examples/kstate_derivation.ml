(* The K-state derivation (the paper's full-version appendix,
   reconstructed), end to end.

   Run with:  dune exec examples/kstate_derivation.exe

   Starting point: the abstract unidirectional token ring UTR (a token
   circulates 0 -> 1 -> ... -> N -> 0).  Wrappers: W1u creates a token at
   the bottom when the ring is empty; W2u merges or cancels adjacent
   tokens.  Dijkstra's K-state system implements the wrapped ring with
   mod-K counters — and the refinement [Kstate ⪯ UTR[]W1u[]W2u] holds
   mechanically, the cleanest convergence-refinement instance in this
   repository (every concrete move is an exact abstract move, a merge, or
   a pair cancellation). *)

let pf = Format.printf

let () =
  let n = 3 in
  let k = n + 1 in
  pf "=== Deriving Dijkstra's K-state ring (N=%d, K=%d) ===@.@." n k;

  let utr = Cr_guarded.Program.to_explicit (Cr_tokenring.Utr.program n) in
  pf "abstract UTR: %d states, %d transitions@."
    (Cr_semantics.Explicit.num_states utr)
    (Cr_semantics.Explicit.num_transitions utr);

  (* the wrapped abstract system stabilizes (preemptive wrappers) *)
  let wp, is_w = Cr_tokenring.Utr.wrapped_priority n in
  let utrw_p = Cr_guarded.Program.to_explicit ~priority_of:is_w wp in
  let r = Cr_core.Stabilize.stabilizing_to ~c:utrw_p ~a:utr () in
  pf "(UTR [] W1u [] W2u) stabilizing to UTR: %a@.@." Cr_core.Stabilize.pp_report r;

  (* the concrete K-state system is a convergence refinement of the
     wrapped abstract ring *)
  let utrw = Cr_guarded.Program.to_explicit (Cr_tokenring.Utr.wrapped n) in
  let ks = Cr_guarded.Program.to_explicit (Cr_tokenring.Kstate.program ~n ~k) in
  let alpha =
    Cr_semantics.Abstraction.tabulate (Cr_tokenring.Kstate.alpha ~n ~k) ks utrw
  in
  let refines = Cr_core.Refine.convergence_refinement ~alpha ~c:ks ~a:utrw () in
  pf "[Kstate ⪯ UTR[]W1u[]W2u]: %a@.@." Cr_core.Refine.pp_report refines;

  (* ... and therefore (checked directly) stabilizes to UTR *)
  let alpha_u =
    Cr_semantics.Abstraction.tabulate (Cr_tokenring.Kstate.alpha ~n ~k) ks utr
  in
  let stab = Cr_core.Stabilize.stabilizing_to ~alpha:alpha_u ~c:ks ~a:utr () in
  pf "Kstate stabilizing to UTR: %a@.@." Cr_core.Stabilize.pp_report stab;

  (* the threshold: how small can K be? *)
  pf "the K threshold (exact, from the model checker):@.";
  for k' = 2 to n + 2 do
    let r = Cr_experiments.Ring_exps.kstate_stabilizes ~n ~k:k' in
    pf "  K=%d: %s@." k'
      (if r.Cr_core.Stabilize.holds then "stabilizing" else "NOT stabilizing")
  done;
  pf "(minimal K = N = machines - 1, the classic tight bound)@.@.";

  (* watch a recovery with the token picture *)
  pf "a recovery under the round-robin daemon (3 faults):@.";
  let p = Cr_tokenring.Kstate.program ~n ~k in
  let rng = Random.State.make [| 4 |] in
  let layout = Cr_guarded.Program.layout p in
  let legit =
    List.find
      (fun s -> Cr_tokenring.Kstate.token_count n s = 1)
      (Cr_guarded.Layout.enumerate layout)
  in
  let s0 = Cr_fault.Injector.corrupt_k ~rng layout legit ~k:3 in
  let d = Cr_sim.Daemon.round_robin () in
  let t = Cr_sim.Runner.run d p ~start:s0 ~max_steps:12 in
  let show s =
    Printf.sprintf "%s   counters %s"
      (Cr_tokenring.Render.utr_line (Cr_tokenring.Kstate.to_tokens n s))
      (String.concat "" (Array.to_list (Array.map string_of_int s)))
  in
  pf "start %s@." (show s0);
  List.iteri
    (fun i e ->
      pf "%3d   %s  (%s)@." (i + 1) (show e.Cr_sim.Runner.state)
        e.Cr_sim.Runner.action)
    t.Cr_sim.Runner.steps
