(* Direct unit and property tests for the weak-fairness analysis
   (Cr_core.Fair): the per-SCC admissibility check is exact on finite
   systems, and weakly-fair divergence implies plain divergence. *)

let check = Alcotest.(check bool)

(* A two-state cycle 0 <-> 1 with action tables. *)
let cycle_succ = [| [| 1 |]; [| 0 |] |]

let test_plain_cycle_is_fair () =
  (* two actions, each enabled at one state and taken inside the cycle *)
  let tables = [| [| 1; -1 |]; [| -1; 0 |] |] in
  let a = Cr_core.Fair.analyze tables ~succ:cycle_succ ~mask:[| true; true |] in
  check "one fair SCC" true (List.length a.Cr_core.Fair.sccs = 1);
  check "states marked fair" true (a.Cr_core.Fair.fair.(0) && a.Cr_core.Fair.fair.(1));
  check "edge on fair cycle" true (Cr_core.Fair.edge_on_fair_cycle a 0 1)

let test_starved_exit_makes_cycle_unfair () =
  (* same cycle, plus an "exit" action enabled at BOTH states leading
     outside the SCC: any run confined to the cycle starves it *)
  let succ = [| [| 1; 2 |]; [| 0; 2 |]; [||] |] in
  let tables =
    [|
      [| 1; -1; -1 |] (* osc1: 0 -> 1 *);
      [| -1; 0; -1 |] (* osc2: 1 -> 0 *);
      [| 2; 2; -1 |] (* exit: always enabled on the cycle, leaves it *);
    |]
  in
  let a = Cr_core.Fair.analyze tables ~succ ~mask:[| true; true; false |] in
  check "no fair SCC" true (a.Cr_core.Fair.sccs = []);
  check "no fair divergence" false
    (Cr_core.Fair.has_fair_divergence tables ~succ ~mask:[| true; true; false |])

let test_intermittent_exit_keeps_cycle_fair () =
  (* exit enabled at only one of the two cycle states: the run is fair
     w.r.t. exit by visiting the other state infinitely often *)
  let succ = [| [| 1; 2 |]; [| 0 |]; [||] |] in
  let tables =
    [| [| 1; -1; -1 |]; [| -1; 0; -1 |]; [| 2; -1; -1 |] |]
  in
  let a = Cr_core.Fair.analyze tables ~succ ~mask:[| true; true; false |] in
  check "cycle remains fair" true (List.length a.Cr_core.Fair.sccs = 1)

let test_restricted_graph_edges_count () =
  (* the "taken inside" condition uses edges of the analyzed graph, not of
     the underlying system: analyzing the stutter subgraph must not credit
     an action whose edge exists only in the full graph *)
  let stutter_succ = [| [| 1 |]; [| 0 |] |] in
  (* action a0 oscillates inside; action a1 is enabled everywhere but its
     edges (0->0 impossible; say 0->1 via a1 as well) — make a1's move
     0 -> 1 which IS in the restricted graph, so it counts *)
  let tables = [| [| 1; 0 |]; [| 1; -1 |] |] in
  let a = Cr_core.Fair.analyze tables ~succ:stutter_succ ~mask:[| true; true |] in
  check "fair when the always-enabled action moves inside" true
    (List.length a.Cr_core.Fair.sccs = 1);
  (* now a1 points outside the analyzed graph (to state 2 of a bigger
     system): restricted graph stays 0 <-> 1 but a1 is never taken inside *)
  let succ3 = [| [| 1 |]; [| 0 |]; [||] |] in
  let tables3 = [| [| 1; 0; -1 |]; [| 2; 2; -1 |] |] in
  let a3 = Cr_core.Fair.analyze tables3 ~succ:succ3 ~mask:[| true; true; false |] in
  check "unfair when the always-enabled action always leaves" true
    (a3.Cr_core.Fair.sccs = [])

let test_tables_of () =
  let states = [| 10; 20; 30 |] in
  let index_of v = match v with 10 -> Some 0 | 20 -> Some 1 | 30 -> Some 2 | _ -> None in
  let fire1 v = if v = 10 then Some 20 else None in
  let fire2 v = if v = 20 then Some 30 else None in
  let t =
    Cr_core.Fair.tables_of ~num_states:3
      ~state_of:(fun i -> states.(i))
      ~index_of [ fire1; fire2 ]
  in
  check "fire1 at 0" true (t.(0).(0) = 1);
  check "fire1 disabled at 1" true (t.(0).(1) = -1);
  check "fire2 at 1" true (t.(1).(1) = 2)

(* property: fair divergence implies plain (unfair) divergence — a
   weakly-fair infinite run is in particular an infinite run *)
let prop_fair_implies_unfair =
  QCheck2.Test.make ~name:"fair divergence implies plain divergence" ~count:300
    QCheck2.Gen.(
      let* n = int_range 2 6 in
      let* edges = list_size (int_bound 12) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
      let* na = int_range 1 4 in
      let* acts = list_repeat na (list_repeat n (int_range (-1) (n - 1))) in
      return (n, edges, acts))
    (fun (n, edges, acts) ->
      let adj = Array.make n [] in
      List.iter (fun (i, j) -> if i <> j then adj.(i) <- j :: adj.(i)) edges;
      let succ = Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) adj in
      (* action tables must be consistent with the graph: next must be an
         actual edge (or disabled) *)
      let tables =
        List.map
          (fun row ->
            Array.of_list
              (List.mapi
                 (fun i next ->
                   if next >= 0 && Array.exists (fun j -> j = next) succ.(i) then next
                   else -1)
                 row))
          acts
        |> Array.of_list
      in
      let mask = Array.make n true in
      let fair = Cr_core.Fair.has_fair_divergence tables ~succ ~mask in
      let plain = not (Cr_checker.Scc.acyclic_within succ mask) in
      (not fair) || plain)

let () =
  Alcotest.run "fair"
    [
      ( "unit",
        [
          Alcotest.test_case "plain cycle is fair" `Quick test_plain_cycle_is_fair;
          Alcotest.test_case "starved exit kills the cycle" `Quick
            test_starved_exit_makes_cycle_unfair;
          Alcotest.test_case "intermittent exit keeps it fair" `Quick
            test_intermittent_exit_keeps_cycle_fair;
          Alcotest.test_case "restricted-graph edge accounting" `Quick
            test_restricted_graph_edges_count;
          Alcotest.test_case "tables_of" `Quick test_tables_of;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest prop_fair_implies_unfair ] );
    ]
