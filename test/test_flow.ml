(* Abstract-interpretation (Cr_flow) tests: the per-slot domain algebra,
   seeded F1/F2/F3 defects, soundness of the flow verdicts against exact
   enumeration over the whole registry, the convergence-stair rank on a
   crafted acyclic chain and on the ring protocols, CR_JOBS invariance
   of the parallel Rwsets pass, and the artifact provenance headers. *)

open Cr_guarded
module Dom = Cr_flow.Dom
module Flow = Cr_flow.Flow
module Rank = Cr_flow.Rank
module Lint = Cr_lint.Lint
module Rwsets = Cr_lint.Rwsets
module Registry = Cr_experiments.Registry
module Flow_exps = Cr_experiments.Flow_exps
module Par = Cr_kernel.Par

(* lift the pool's busy-domain cap so the CR_JOBS-invariance property
   really fans out across domains on a single-core host *)
let () = Unix.putenv "CR_PAR_CAP" "8"

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let layout3 = Layout.make [ ("x", 3); ("y", 3); ("z", 3) ]

let prog ?(name = "seeded") ?(initial = fun _ -> true) actions =
  Program.make ~name ~layout:layout3 ~actions ~initial

let act ?(label = "a") ?(proc = 0) ?(writes = []) guard effect =
  Action.make ~label ~proc ~writes ~guard ~effect ()

let findings_with key (t : Flow.t) =
  List.filter (fun (f : Lint.finding) -> f.Lint.key = key) t.Flow.findings

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  nn = 0 || go 0

(* ---------- the domain algebra ---------- *)

let test_dom () =
  let d = 5 in
  let b = Dom.bottom d and t = Dom.top d in
  check "bottom is bottom" true (Dom.is_bottom b);
  check "top is top" true (Dom.is_top t);
  check_int "top count" d (Dom.count t);
  let s = Dom.of_list d [ 1; 3 ] in
  check "mem 3" true (Dom.mem s 3);
  check "not mem 2" false (Dom.mem s 2);
  check_int "choose = smallest" 1 (Dom.choose s);
  check "join with bottom is identity" true (Dom.equal s (Dom.join s b));
  check "join to top" true (Dom.is_top (Dom.join s (Dom.of_list d [ 0; 2; 4 ])));
  check "to_list sorted" true (Dom.to_list s = [ 1; 3 ]);
  (* wide domains fall back to interval hulls: still sound, hull-exact *)
  let w = Dom.max_mask_dom + 5 in
  let r = Dom.join (Dom.singleton w 2) (Dom.singleton w 7) in
  check "hull keeps endpoints" true (Dom.mem r 2 && Dom.mem r 7);
  check "hull over-approximates" true (Dom.mem r 4);
  check_int "hull count" 6 (Dom.count r)

(* ---------- seeded flow defects ---------- *)

let test_f1_top_dead () =
  let dead =
    act ~label:"f1dead" ~writes:[ 0 ] (fun _ -> false) (fun s -> Action.set s [ (0, 1) ])
  in
  let t = Flow.analyze (prog [ dead ]) in
  let f1 = findings_with "F1" t in
  check "F1 fires" true (f1 <> []);
  check "F1 full-space is exact" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.severity = Lint.Warning && f.Lint.provenance = Lint.Exact)
       f1);
  let fact = List.hd t.Flow.facts in
  check "fact records top-dead" false fact.Flow.top_enabled

let init_dead_program () =
  (* step walks x from 0 to 1; u1reach needs x = 2, unreachable from the
     pinned initial state but satisfiable in the full space *)
  let step =
    act ~label:"step" ~proc:0 ~writes:[ 0 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 1) ])
  in
  let unreachable =
    act ~label:"u1reach" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(0) = 2)
      (fun s -> Action.set s [ (1, 1) ])
  in
  prog ~initial:(fun s -> s = [| 0; 0; 0 |]) [ step; unreachable ]

let test_f1_init_dead () =
  let p = init_dead_program () in
  let t = Flow.analyze p in
  check "init analysis is sound here" true t.Flow.init_sound;
  check "fixpoint reached in a few rounds" true (t.Flow.init_rounds >= 1);
  check "u1reach proved init-dead" true (Flow.init_dead t "u1reach");
  check "step stays live" false (Flow.init_dead t "step");
  check "abstract F1 info emitted" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.action = "u1reach"
         && f.Lint.severity = Lint.Info
         && f.Lint.provenance = Lint.Abstract)
       (findings_with "F1" t));
  (* the merged lint report carries the verdict as an abstract U1 info *)
  let report, _ = Flow.lint p in
  check "merged report has abstract U1" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.action = "u1reach"
         && f.Lint.severity = Lint.Info
         && f.Lint.provenance = Lint.Abstract)
       (Lint.find_key "U1" report))

let test_f2_domain_violation () =
  let bad =
    act ~label:"f2bad" ~writes:[ 0 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 7) ])
  in
  let report, t = Flow.lint (prog [ bad ]) in
  check "F2 fires" true
    (List.exists
       (fun (f : Lint.finding) ->
         f.Lint.severity = Lint.Error && f.Lint.provenance = Lint.Exact)
       (findings_with "F2" t));
  check "merged report keeps the exact D1" true (Lint.find_key "D1" report <> []);
  check "flow counts the error" true (Flow.errors t >= 1)

let test_f3_constant_slot () =
  (* z is never written by any action *)
  let a =
    act ~label:"only-x" ~writes:[ 0 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 1) ])
  in
  let report, t = Flow.lint (prog [ a ]) in
  let f3 = findings_with "F3" t in
  check "F3 fires" true (f3 <> []);
  check "F3 names the dead slot" true
    (List.exists (fun (f : Lint.finding) -> contains f.Lint.message "z") f3);
  check "F3 reaches the merged report" true (Lint.find_key "F3" report <> [])

let test_degraded () =
  let p = init_dead_program () in
  let t = Flow.analyze ~exact_budget:4 p in
  check "degraded" true t.Flow.degraded;
  check "no facts when degraded" true (t.Flow.facts = []);
  check "single B1 finding" true
    (match t.Flow.findings with
    | [ f ] -> f.Lint.key = "B1" && f.Lint.severity = Lint.Info
    | _ -> false);
  check "no rank when degraded" true (Rank.of_flow t = None);
  check "no init claims when degraded" false (Flow.init_dead t "u1reach");
  let report, _ = Flow.lint ~exact_budget:4 p in
  check "degraded lint is B1-only" true
    (Lint.find_key "B1" report <> [] && Lint.errors report = 0)

(* ---------- convergence-stair rank ---------- *)

let chain_program () =
  (* a genuine three-layer stair: x settles on its own, y copies x,
     z copies y — the slot dependency graph is an acyclic chain *)
  let seed =
    act ~label:"seed" ~proc:0 ~writes:[ 0 ]
      (fun s -> s.(0) <> 1)
      (fun s -> Action.set s [ (0, 1) ])
  in
  let copy_y =
    act ~label:"copy-y" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(1) <> s.(0))
      (fun s -> Action.set s [ (1, s.(0)) ])
  in
  let copy_z =
    act ~label:"copy-z" ~proc:2 ~writes:[ 2 ]
      (fun s -> s.(2) <> s.(1))
      (fun s -> Action.set s [ (2, s.(1)) ])
  in
  prog ~name:"chain" [ seed; copy_y; copy_z ]

let test_rank_chain () =
  let t = Flow.analyze (chain_program ()) in
  match Rank.of_flow t with
  | None -> Alcotest.fail "rank unavailable on a tiny program"
  | Some r ->
      check "chain is acyclic" true r.Rank.acyclic;
      check_int "three layers" 3 (Rank.depth r);
      check_int "x converges first" 0 r.Rank.layer_of.(r.Rank.comp_of.(0));
      check_int "y second" 1 r.Rank.layer_of.(r.Rank.comp_of.(1));
      check_int "z last" 2 r.Rank.layer_of.(r.Rank.comp_of.(2));
      check "x -> y and y -> z edges" true
        (List.mem (0, 1) r.Rank.edges && List.mem (1, 2) r.Rank.edges)

let test_rank_rings () =
  (* the ring protocols condense into one cyclic component: the paper's
     stair lives at the predicate level, below slot granularity *)
  let t = Flow.analyze (Cr_tokenring.Btr3.dijkstra3 2) in
  (match Rank.of_flow t with
  | None -> Alcotest.fail "dijkstra3 rank unavailable"
  | Some r ->
      check "dijkstra3 is cyclic" false r.Rank.acyclic;
      check "one multi-slot component" true
        (Array.exists (fun c -> Array.length c > 1) r.Rank.components);
      check "layering still reported" true (Rank.depth r >= 1));
  match Registry.find "btr" with
  | None -> Alcotest.fail "btr missing from the registry"
  | Some e -> (
      let t = Flow.analyze (e.Registry.program 2) in
      match Rank.of_flow t with
      | None -> Alcotest.fail "btr rank unavailable"
      | Some r -> check "btr layering reported" true (Rank.depth r >= 1))

(* ---------- soundness: flow never contradicts exact enumeration ---------- *)

let labels_of l = List.sort_uniq compare (List.map (fun (f : Lint.finding) -> f.Lint.action) l)

let check_agreement ~n (e : Registry.entry) =
  let p = e.Registry.program n in
  let t = Flow.analyze p in
  if not t.Flow.degraded then begin
    let exact = Lint.run ~allow:e.Registry.lint_allow p in
    let flow_dead =
      List.sort_uniq compare
        (List.filter_map
           (fun (f : Flow.fact) ->
             if f.Flow.top_enabled then None
             else Some (Action.label f.Flow.info.Rwsets.action))
           t.Flow.facts)
    in
    let exact_dead =
      labels_of
        (List.filter
           (fun (f : Lint.finding) -> f.Lint.severity = Lint.Warning)
           (Lint.find_key "U1" exact))
    in
    check
      (Printf.sprintf "%s n=%d: flow dead-top = exact U1" e.Registry.name n)
      true (flow_dead = exact_dead);
    let flow_invalid =
      List.sort_uniq compare
        (List.filter_map
           (fun (f : Flow.fact) ->
             if f.Flow.info.Rwsets.invalid_witness = None then None
             else Some (Action.label f.Flow.info.Rwsets.action))
           t.Flow.facts)
    in
    check
      (Printf.sprintf "%s n=%d: flow invalid = exact D1" e.Registry.name n)
      true
      (flow_invalid = labels_of (Lint.find_key "D1" exact));
    (* any init-dead claim must be confirmed by the exact closure *)
    let exact_u1 = labels_of (Lint.find_key "U1" exact) in
    List.iter
      (fun (f : Flow.fact) ->
        let label = Action.label f.Flow.info.Rwsets.action in
        if Flow.init_dead t label then
          check
            (Printf.sprintf "%s n=%d: init-dead %s confirmed exactly"
               e.Registry.name n label)
            true (List.mem label exact_u1))
      t.Flow.facts;
    (* S1 agreement: a stuttering-only action is live under flow *)
    List.iter
      (fun (f : Lint.finding) ->
        let live =
          List.exists
            (fun (fa : Flow.fact) ->
              Action.label fa.Flow.info.Rwsets.action = f.Lint.action
              && fa.Flow.top_enabled)
            t.Flow.facts
        in
        check
          (Printf.sprintf "%s n=%d: S1 action %s live under flow"
             e.Registry.name n f.Lint.action)
          true live)
      (Lint.find_key "S1" exact)
  end

let test_soundness_registry () =
  List.iter
    (fun (e : Registry.entry) ->
      check_agreement ~n:2 e;
      check_agreement ~n:3 e)
    Registry.entries

(* ---------- CR_JOBS invariance of the parallel Rwsets pass ---------- *)

let info_proj (i : Rwsets.info) =
  ( Action.label i.Rwsets.action,
    i.Rwsets.enabled_states,
    i.Rwsets.firing_states,
    i.Rwsets.writes,
    i.Rwsets.guard_reads,
    i.Rwsets.effect_reads,
    i.Rwsets.copy_sources,
    i.Rwsets.invalid_witness )

let prop_rwsets_jobs_invariant =
  QCheck.Test.make ~count:24
    ~name:"Rwsets.of_program identical under CR_JOBS in {1,2,4}"
    QCheck.(pair small_nat small_nat)
    (fun (ei, nb) ->
      let entries = Array.of_list Registry.entries in
      let e = entries.(ei mod Array.length entries) in
      let n = 2 + (nb mod 2) in
      let p = e.Registry.program n in
      let under jobs =
        Par.with_jobs jobs (fun () ->
            List.map info_proj (Rwsets.of_program p))
      in
      let base = under 1 in
      under 2 = base && under 4 = base)

(* ---------- artifact provenance headers ---------- *)

let header_fields = [ "\"version\":"; "\"tool\":\"crcheck\""; "\"tool_version\":\""; "\"git_rev\":\""; "\"cr_jobs\":"; "\"n\":2" ]

let test_lint_artifact_header () =
  let rows = Cr_experiments.Lint_exps.audit ~n:2 () in
  let body =
    Cr_experiments.Lint_exps.to_json ~n:2 rows
  in
  (match Cr_obs.Json_check.validate_string body with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "lint artifact invalid: %s" msg);
  List.iter
    (fun field ->
      check (Printf.sprintf "lint artifact has %s" field) true
        (contains body field))
    header_fields;
  check "findings carry provenance" true (contains body "\"provenance\":\"exact\"")

let test_flow_artifact_header () =
  let rows = Flow_exps.audit ~n:2 () in
  let body = Flow_exps.to_json ~n:2 rows in
  (match Cr_obs.Json_check.validate_string body with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "flow artifact invalid: %s" msg);
  List.iter
    (fun field ->
      check (Printf.sprintf "flow artifact has %s" field) true
        (contains body field))
    header_fields;
  check "rows expose the stair" true (contains body "\"stair\"");
  check "rows cross-check stabilization" true (contains body "\"stabilizing\"");
  check_int "audit is error-clean" 0 (Flow_exps.total_errors rows)

let () =
  Alcotest.run "flow"
    [
      ( "dom",
        [ Alcotest.test_case "value-set and interval algebra" `Quick test_dom ]
      );
      ( "seeded defects",
        [
          Alcotest.test_case "F1 statically-dead guard" `Quick test_f1_top_dead;
          Alcotest.test_case "F1 abstract init-dead" `Quick test_f1_init_dead;
          Alcotest.test_case "F2 domain violation" `Quick
            test_f2_domain_violation;
          Alcotest.test_case "F3 constant slot" `Quick test_f3_constant_slot;
          Alcotest.test_case "B1 budget degradation" `Quick test_degraded;
        ] );
      ( "rank",
        [
          Alcotest.test_case "acyclic chain: three-layer stair" `Quick
            test_rank_chain;
          Alcotest.test_case "ring protocols: cyclic component" `Quick
            test_rank_rings;
        ] );
      ( "soundness",
        [
          Alcotest.test_case "registry: flow agrees with exact" `Slow
            test_soundness_registry;
          QCheck_alcotest.to_alcotest prop_rwsets_jobs_invariant;
        ] );
      ( "artifacts",
        [
          Alcotest.test_case "lint header and provenance" `Quick
            test_lint_artifact_header;
          Alcotest.test_case "flow header, stair, verdict" `Quick
            test_flow_artifact_header;
        ] );
    ]
