(* The paper's token-ring derivation chain, mechanically verified
   (experiments E4-E13).  Expected verdicts follow EXPERIMENTS.md —
   including the places where the mechanized check *refutes* the paper's
   claim under a given execution model; those assertions pin down the
   documented discrepancies so a regression (or an encoding change) is
   noticed. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let ns = [ 2; 3 ]

(* E4 / Theorem 6 *)
let test_theorem6 () =
  List.iter
    (fun n ->
      let v = Cr_experiments.Ring_exps.theorem6 n in
      check "union refuted (crossing cycles)" false v.Cr_experiments.Ring_exps.union;
      check "weak fairness refuted (crossings are fair)" false
        v.Cr_experiments.Ring_exps.fair;
      check "priority holds" true v.Cr_experiments.Ring_exps.priority)
    ns

(* E5 / Lemma 7 *)
let test_lemma7 () =
  List.iter
    (fun n ->
      let r = Cr_experiments.Ring_exps.lemma7 n in
      check "[C1 ⪯ BTR] holds" true r.Cr_core.Refine.holds;
      check "with real compressions" true
        (r.Cr_core.Refine.stats.Cr_core.Refine.compressions > 0))
    ns

(* E6 / Theorem 8 *)
let test_theorem8 () =
  List.iter
    (fun n ->
      let c1 = Cr_experiments.Ring_exps.theorem8_c1 n in
      let d4 = Cr_experiments.Ring_exps.theorem8_dijkstra4 n in
      check "C1 stabilizes to BTR" true c1.Cr_experiments.Ring_exps.holds;
      check "Dijkstra4 stabilizes to BTR" true d4.Cr_experiments.Ring_exps.holds)
    ns;
  let d4 = Cr_experiments.Ring_exps.theorem8_dijkstra4 3 in
  check_int "n=3: 2N legitimate token states" 6
    d4.Cr_experiments.Ring_exps.legitimate;
  Alcotest.(check (option int))
    "n=3: exact worst case" (Some 7) d4.Cr_experiments.Ring_exps.worst_case

(* E6: wrapper vacuity (Section 4.1) *)
let test_wrapper_vacuity () =
  List.iter
    (fun n ->
      let w1, w2 = Cr_experiments.Ring_exps.wrapper_vacuity n in
      check "W1' vacuous everywhere" true w1;
      check "W2' vacuous everywhere" true w2)
    ns

(* E7 / Lemma 9.  At n=2 (one middle process) even the unconstrained
   daemon suffices; from n=3 on, crossing cycles refute the union and
   weakly-fair models and preemptive wrappers are needed. *)
let test_lemma9 () =
  let v2 = Cr_experiments.Ring_exps.lemma9 2 in
  check "n=2: holds under any daemon" true v2.Cr_experiments.Ring_exps.union;
  check "n=2: holds under priority" true v2.Cr_experiments.Ring_exps.priority;
  let v3 = Cr_experiments.Ring_exps.lemma9 3 in
  check "n=3: union refuted" false v3.Cr_experiments.Ring_exps.union;
  check "n=3: weak fairness refuted" false v3.Cr_experiments.Ring_exps.fair;
  check "n=3: priority holds" true v3.Cr_experiments.Ring_exps.priority

(* Section 5.1: W1'' vs W1' and the global-wrapper composition *)
let test_wrapper_refinement () =
  List.iter
    (fun n ->
      let v = Cr_experiments.Ring_exps.wrapper_refinement n in
      check "W1'' is not an everywhere refinement of W1' (paper)" false
        v.Cr_experiments.Ring_exps.w1''_everywhere;
      check "nor a convergence refinement" false
        v.Cr_experiments.Ring_exps.w1''_convergence;
      check "global W1' composition stabilizes under priority" true
        v.Cr_experiments.Ring_exps.global_w1'_priority_stabilizes)
    [ 2; 3 ];
  (* the sharper point: with the GLOBAL W1' even n=4 stabilizes under
     preemption — the n>=4 livelock of Lemma 9 is caused by W1'''s local
     over-approximation *)
  check "global W1' fixes the n=4 preemptive livelock" true
    (Cr_experiments.Ring_exps.wrapper_refinement 4)
      .Cr_experiments.Ring_exps.global_w1'_priority_stabilizes

(* E8 / Lemma 10 (documented discrepancy from n=3) + Theorem 11 *)
let test_lemma10_and_theorem11 () =
  check "Lemma 10 holds at n=2" true
    (Cr_experiments.Ring_exps.lemma10 2).Cr_core.Refine.holds;
  check "Lemma 10 strict same-space refuted at n=3 (documented)" false
    (Cr_experiments.Ring_exps.lemma10 3).Cr_core.Refine.holds;
  List.iter
    (fun n ->
      let d3 = Cr_experiments.Ring_exps.theorem11_dijkstra3 n in
      check "Dijkstra3 stabilizes to BTR under any daemon" true
        d3.Cr_experiments.Ring_exps.holds;
      let c2w = Cr_experiments.Ring_exps.theorem11_c2w n in
      check "C2[]W1''[]W2' holds under weak fairness" true
        c2w.Cr_experiments.Ring_exps.fair)
    ns;
  let c2w3 = Cr_experiments.Ring_exps.theorem11_c2w 3 in
  check "n=3: C2[]W1''[]W2' refuted under the unconstrained daemon" false
    c2w3.Cr_experiments.Ring_exps.union;
  check "n=3: C2[]W1''[]W2' holds under priority" true
    c2w3.Cr_experiments.Ring_exps.priority;
  let d3 = Cr_experiments.Ring_exps.theorem11_dijkstra3 3 in
  Alcotest.(check (option int))
    "n=3: Dijkstra3 exact worst case" (Some 12)
    d3.Cr_experiments.Ring_exps.worst_case

(* E9 / Lemma 12 (documented discrepancy) + Theorem 13 *)
let test_lemma12_and_theorem13 () =
  List.iter
    (fun n ->
      let r = Cr_experiments.Ring_exps.lemma12 n in
      check "Lemma 12 strict is refuted (crossing compressions)" false
        r.Cr_core.Refine.holds;
      let rf = Cr_experiments.Ring_exps.lemma12 ~fairness:true n in
      check "refuted even under weak fairness" false rf.Cr_core.Refine.holds;
      let v = Cr_experiments.Ring_exps.theorem13 n in
      check "new 3-state refuted under union" false v.Cr_experiments.Ring_exps.union;
      check "new 3-state holds under priority" true
        v.Cr_experiments.Ring_exps.priority)
    ns

(* E10: the rewriting claims *)
let test_rewriting () =
  List.iter
    (fun n ->
      let merged_eq, agg_eq, w2_absorbed =
        Cr_experiments.Ring_exps.rewriting_claims n
      in
      check "merged display = Dijkstra3" true merged_eq;
      check "aggressive new-3state = Dijkstra3" true agg_eq;
      check "W2' adds no transitions over C2" true w2_absorbed)
    [ 2; 3; 4 ]

(* E11: K-state *)
let test_kstate () =
  List.iter
    (fun n ->
      check "K = N+1 stabilizes" true
        (Cr_experiments.Ring_exps.kstate_stabilizes ~n ~k:(n + 1))
          .Cr_core.Stabilize.holds;
      let r = Cr_experiments.Ring_exps.kstate_refines_wrapped_utr ~n ~k:(n + 1) in
      check "[Kstate ⪯ UTR[]W1u[]W2u]" true r.Cr_core.Refine.holds)
    ns;
  check "K = 2 fails for n = 3" false
    (Cr_experiments.Ring_exps.kstate_stabilizes ~n:3 ~k:2).Cr_core.Stabilize.holds;
  check "K = 3 fails for n = 4" false
    (Cr_experiments.Ring_exps.kstate_stabilizes ~n:4 ~k:3).Cr_core.Stabilize.holds;
  (* the classic tight threshold: with N+1 machines, the minimal
     stabilizing K is N (machines - 1), computed exactly by the checker *)
  check_int "minimal K for n=2" 2 (Cr_experiments.Ring_exps.kstate_minimal_k 2);
  check_int "minimal K for n=3" 3 (Cr_experiments.Ring_exps.kstate_minimal_k 3);
  check_int "minimal K for n=4" 4 (Cr_experiments.Ring_exps.kstate_minimal_k 4);
  let union, priority = Cr_experiments.Ring_exps.utr_wrapped_stabilization 3 in
  check "UTR[]W union refuted" false union;
  check "UTR[]W priority holds" true priority

(* E12: the Section 4.2 compression figure *)
let test_compression_witness () =
  match Cr_experiments.Ring_exps.compression_witness 3 with
  | None -> Alcotest.fail "expected a token-losing compression in C1"
  | Some ((_, _), (_ai, _aj), path) ->
      check "BTR path has at least 2 steps" true (List.length path >= 3)

(* E13: the Section 6 stutter figure *)
let test_stutter_witness () =
  match Cr_experiments.Ring_exps.stutter_witness 2 with
  | None -> Alcotest.fail "expected a stuttering C3 state"
  | Some s ->
      check "stutter state is illegitimate" true
        (Cr_tokenring.Btr3.token_count 2 s <> 1
        || not (Cr_tokenring.C3_system.initial 2 s))

(* paper's concrete stutter instance: c = [0;2;1] at n = 2 *)
let test_paper_stutter_instance () =
  let n = 2 in
  let s = [| 0; 2; 1 |] in
  check "two up-tokens" true
    (Cr_tokenring.Btr3.has_up n s 1 && Cr_tokenring.Btr3.has_up n s 2);
  let p = Cr_tokenring.C3_system.c3 n in
  let mid_up1 =
    List.find
      (fun a -> Cr_guarded.Action.label a = "mid_up1")
      (Cr_guarded.Program.actions p)
  in
  check "enabled" true (Cr_guarded.Action.enabled mid_up1 s);
  check "its firing is a no-op (τ step)" true
    (Cr_guarded.Action.fire mid_up1 s = None)

(* Abstraction sanity: alpha4 and alpha3 are total; they are onto the
   reachable token states (though not onto the full 2^(2N) token space —
   states with co-located opposite tokens have no 4-state preimage). *)
let test_abstractions () =
  let n = 3 in
  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let c1 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr4.c1 n) in
  let a4 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr4.alpha n) c1 btr in
  check "alpha4 total" true (Array.length a4 = Cr_semantics.Explicit.num_states c1);
  check "alpha4 not onto the full token space" false
    (Cr_semantics.Abstraction.is_onto a4
       ~num_abstract:(Cr_semantics.Explicit.num_states btr));
  let d3 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 n) in
  let a3 = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) d3 btr in
  check "alpha3 total" true (Array.length a3 = Cr_semantics.Explicit.num_states d3)

(* BTR basics *)
let test_btr_basics () =
  let n = 3 in
  let s = Cr_tokenring.Btr.state_of_tokens n [ Cr_tokenring.Btr.Up 2; Cr_tokenring.Btr.Down 1 ] in
  check_int "token count" 2 (Cr_tokenring.Btr.token_count n s);
  check "tokens round-trip" true
    (Cr_tokenring.Btr.tokens n s = [ Cr_tokenring.Btr.Down 1; Cr_tokenring.Btr.Up 2 ]
    || Cr_tokenring.Btr.tokens n s = [ Cr_tokenring.Btr.Up 2; Cr_tokenring.Btr.Down 1 ]);
  check "invariant unique" false (Cr_tokenring.Btr.invariant n s);
  check "I1 holds" true (Cr_tokenring.Btr.invariant_i1 n s);
  check "I2/I3 violated" false (Cr_tokenring.Btr.invariant_i2_i3 n s);
  (* undefined tokens rejected *)
  Alcotest.check_raises "no up-token at 0"
    (Invalid_argument "Btr.state_of_tokens: bad ↑ index") (fun () ->
      ignore (Cr_tokenring.Btr.state_of_tokens n [ Cr_tokenring.Btr.Up 0 ]));
  (* BTR from a unique token keeps a unique token forever *)
  let e = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let reach = Cr_checker.Reach.reachable_from_initial e in
  let ok = ref true in
  List.iter
    (fun i ->
      if Cr_tokenring.Btr.token_count n (Cr_semantics.Explicit.state e i) <> 1
      then ok := false)
    (Cr_kernel.Bitset.members reach);
  check "unique token invariant closed" true !ok

(* I4: in the fault-free ring the token alternates direction — each full
   traversal bounces at top and bottom; check over one orbit. *)
let test_i4_direction_alternation () =
  let n = 3 in
  let p = Cr_tokenring.Btr.program n in
  let start = Cr_tokenring.Btr.state_of_tokens n [ Cr_tokenring.Btr.Up 1 ] in
  let d = Cr_sim.Daemon.round_robin () in
  let trace = Cr_sim.Runner.run d p ~start ~max_steps:100 in
  (* collect the sequence of bounce events (top / bottom actions) *)
  let bounces =
    List.filter_map
      (fun e ->
        match e.Cr_sim.Runner.action with
        | "top" -> Some `Top
        | "bottom" -> Some `Bottom
        | _ -> None)
      trace.Cr_sim.Runner.steps
  in
  let rec alternates = function
    | `Top :: (`Bottom :: _ as rest) -> alternates rest
    | `Bottom :: (`Top :: _ as rest) -> alternates rest
    | [ _ ] | [] -> true
    | _ -> false
  in
  check "enough bounces observed" true (List.length bounces >= 4);
  check "directions alternate (I4)" true (alternates bounces)

(* mutual-exclusion service view: safety, liveness, I4 *)
let test_mutex_service () =
  List.iter
    (fun n ->
      let p = Cr_tokenring.Btr3.dijkstra3 n in
      let e = Cr_guarded.Program.to_explicit p in
      let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
      let alpha =
        Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) e btr
      in
      let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:btr () in
      let good = r.Cr_core.Stabilize.good_mask in
      let privileged s j =
        Cr_tokenring.Btr3.has_up n s j || Cr_tokenring.Btr3.has_dn n s j
      in
      let v =
        Cr_tokenring.Mutex.check ~privileged ~num_procs:(n + 1) p ~good e
      in
      check "mutex safety" true v.Cr_tokenring.Mutex.safety;
      check "mutex liveness" true v.Cr_tokenring.Mutex.liveness;
      check "I4 equal frequency" true
        (Cr_tokenring.Mutex.i4_equal_frequency n p
           ~to_tokens:(Cr_tokenring.Btr3.to_tokens n)
           ~good e))
    [ 2; 3 ];
  (* the same checks for Dijkstra-4 *)
  let n = 3 in
  let p = Cr_tokenring.Btr4.dijkstra4 n in
  let e = Cr_guarded.Program.to_explicit p in
  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let alpha = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr4.alpha n) e btr in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:btr () in
  let good = r.Cr_core.Stabilize.good_mask in
  let privileged s j =
    let ts = Cr_tokenring.Btr4.to_tokens n s in
    Cr_tokenring.Btr.up n ts j || Cr_tokenring.Btr.dn n ts j
  in
  let v = Cr_tokenring.Mutex.check ~privileged ~num_procs:(n + 1) p ~good e in
  check "dijkstra4 safety" true v.Cr_tokenring.Mutex.safety;
  check "dijkstra4 liveness" true v.Cr_tokenring.Mutex.liveness;
  check "dijkstra4 I4" true
    (Cr_tokenring.Mutex.i4_equal_frequency n p
       ~to_tokens:(Cr_tokenring.Btr4.to_tokens n)
       ~good e)

(* rendering *)
let test_render () =
  let n = 2 in
  let s = Cr_tokenring.Btr.state_of_tokens n [ Cr_tokenring.Btr.Up 1 ] in
  Alcotest.(check string) "tokens line" "[0] [1↑] [2]"
    (Cr_tokenring.Render.tokens_line n s);
  let s3 = [| 1; 0; 0 |] in
  Alcotest.(check string) "counters line" "[0:1] [1:0↑] [2:0]"
    (Cr_tokenring.Render.counters3_line n s3);
  let u = Cr_tokenring.Utr.state_of_tokens 2 [ 1 ] in
  Alcotest.(check string) "utr line" "[0] [1●] [2]" (Cr_tokenring.Render.utr_line u)

let () =
  Alcotest.run "tokenring"
    [
      ( "btr",
        [
          Alcotest.test_case "token states and invariants" `Quick test_btr_basics;
          Alcotest.test_case "I4 direction alternation" `Quick
            test_i4_direction_alternation;
        ] );
      ( "theorem6",
        [ Alcotest.test_case "E4 wrapped BTR" `Quick test_theorem6 ] );
      ( "4-state",
        [
          Alcotest.test_case "E5 Lemma 7" `Quick test_lemma7;
          Alcotest.test_case "E6 Theorem 8" `Quick test_theorem8;
          Alcotest.test_case "E6 wrapper vacuity" `Quick test_wrapper_vacuity;
          Alcotest.test_case "E12 compression witness" `Quick
            test_compression_witness;
        ] );
      ( "3-state",
        [
          Alcotest.test_case "E7 Lemma 9" `Quick test_lemma9;
          Alcotest.test_case "Section 5.1 wrapper refinement" `Quick
            test_wrapper_refinement;
          Alcotest.test_case "E8 Lemma 10 + Theorem 11" `Quick
            test_lemma10_and_theorem11;
          Alcotest.test_case "E9 Lemma 12 + Theorem 13" `Quick
            test_lemma12_and_theorem13;
          Alcotest.test_case "E10 rewriting claims" `Quick test_rewriting;
          Alcotest.test_case "E13 stutter witness" `Quick test_stutter_witness;
          Alcotest.test_case "E13 paper instance" `Quick
            test_paper_stutter_instance;
        ] );
      ( "k-state",
        [ Alcotest.test_case "E11 K-state family" `Quick test_kstate ] );
      ( "abstractions",
        [ Alcotest.test_case "totality and onto-ness" `Quick test_abstractions ] );
      ("render", [ Alcotest.test_case "ascii lines" `Quick test_render ]);
      ( "mutex service",
        [ Alcotest.test_case "safety, liveness, I4" `Quick test_mutex_service ] );
    ]
