(* Tests of the chunked, memoized explicit compiler: domain-chunked
   [Program.to_explicit] must be byte-identical to the sequential path
   for every execution mode, the compile cache must be transparent
   (including under CR_COMPILE_PARANOID and when disabled), and
   predecessor rows must stay lazy until a backward query needs them. *)

open Cr_guarded
module E = Cr_semantics.Explicit
module Cache = Cr_semantics.Compile_cache
module Par = Cr_kernel.Par
module Obs = Cr_obs.Obs

(* ---- random program generation (as in test_guarded_props) ---- *)

type raw_action = {
  proc : int;
  slot : int;
  guard_slot : int;
  guard_val : int;
  write_val : int;
}

type raw_prog = { doms : int list; acts : raw_action list }

let gen_prog =
  QCheck2.Gen.(
    let* nv = int_range 1 4 in
    let* doms = list_repeat nv (int_range 1 3) in
    let* na = int_bound 6 in
    let* acts =
      list_size (return na)
        (let* slot = int_bound (nv - 1) in
         let* guard_slot = int_bound (nv - 1) in
         let* guard_val = int_bound 2 in
         let* write_val = int_bound 2 in
         let* proc = int_bound 3 in
         return { proc; slot; guard_slot; guard_val; write_val })
    in
    return { doms; acts })

let build { doms; acts } =
  let nv = List.length doms in
  let layout =
    Layout.make (List.mapi (fun i d -> (Printf.sprintf "v%d" i, d)) doms)
  in
  let clamp slot v = v mod Layout.dom layout slot in
  let actions =
    List.mapi
      (fun i ra ->
        let slot = ra.slot mod nv and guard_slot = ra.guard_slot mod nv in
        Action.make
          ~label:(Printf.sprintf "a%d" i)
          ~proc:ra.proc ~writes:[ slot ]
          ~guard:(fun s -> s.(guard_slot) = clamp guard_slot ra.guard_val)
          ~effect:(fun s -> Action.set s [ (slot, clamp slot ra.write_val) ])
          ())
      acts
  in
  Program.make ~name:"rand" ~layout ~actions ~initial:(fun s -> s.(0) = 0)

(* Equality of compiled graphs: same Sigma, same transitions, same
   initial states (names may differ). *)
let same a b = E.same_transitions a b && E.initials a = E.initials b

let fresh_with_jobs jobs f =
  Cache.bypass (fun () -> Par.with_jobs jobs (fun () -> f ()))

(* ---- chunked compilation is byte-identical to sequential ---- *)

let prop_chunked_plain_sync =
  QCheck2.Test.make
    ~name:"chunked compile (jobs=4) = sequential: plain and synchronous"
    ~count:150 gen_prog
    (fun raw ->
      let p = build raw in
      same
        (fresh_with_jobs 1 (fun () -> Program.to_explicit p))
        (fresh_with_jobs 4 (fun () -> Program.to_explicit p))
      && same
           (fresh_with_jobs 1 (fun () -> Program.to_explicit_synchronous p))
           (fresh_with_jobs 4 (fun () -> Program.to_explicit_synchronous p)))

let prop_chunked_priority =
  QCheck2.Test.make
    ~name:"chunked compile (jobs=4) = sequential: priority mode" ~count:100
    QCheck2.Gen.(pair gen_prog gen_prog)
    (fun (rb, rw) ->
      let rw = { rw with doms = rb.doms } in
      let combined, is_w = Program.box_priority (build rb) (build rw) in
      same
        (fresh_with_jobs 1 (fun () ->
             Program.to_explicit ~priority_of:is_w combined))
        (fresh_with_jobs 4 (fun () ->
             Program.to_explicit ~priority_of:is_w combined)))

(* The same invariance through the real environment contract. *)
let test_env_jobs () =
  let p = Cr_tokenring.Btr3.dijkstra3 4 in
  let seq = fresh_with_jobs 1 (fun () -> Program.to_explicit p) in
  Unix.putenv "CR_JOBS" "4";
  let par = Cache.bypass (fun () -> Program.to_explicit p) in
  Unix.putenv "CR_JOBS" "1";
  Alcotest.(check bool) "CR_JOBS=4 graph equals sequential" true (same seq par)

(* ---- compile cache ---- *)

let counter snap name =
  match List.assoc_opt name snap with Some v -> v | None -> 0

(* Sharing is observed on the CSR adjacency itself: a cache hit hands
   back the same physical graph, so the two views are [==]. *)
let rows_shared e1 e2 = Some (E.csr e1 == E.csr e2)

let with_counters f =
  Obs.reset ();
  Obs.force_collect ();
  let r = f () in
  (r, Obs.merged_snapshot ())

let test_cache_hit_shares () =
  Program.clear_compile_cache ();
  let (e1, e2), snap =
    with_counters (fun () ->
        ( Program.to_explicit (Cr_tokenring.Btr.program 3),
          Program.to_explicit (Cr_tokenring.Btr.program 3) ))
  in
  Alcotest.(check bool) "identical graphs" true (same e1 e2);
  Alcotest.(check (option bool))
    "successor rows physically shared" (Some true) (rows_shared e1 e2);
  Alcotest.(check bool)
    "at least one miss then one hit" true
    (counter snap "compile.cache.misses" >= 1
    && counter snap "compile.cache.hits" >= 1)

let test_cache_retargets_initials () =
  Program.clear_compile_cache ();
  let p = Cr_tokenring.Btr.program 3 in
  let q = Program.with_initial (fun s -> s.(0) = 1) p in
  let ep = Program.to_explicit p in
  let eq = Program.to_explicit q in
  Alcotest.(check bool)
    "same transitions across initial predicates" true
    (E.same_transitions ep eq);
  let expected_initials e pred =
    Array.for_all (fun i -> pred (E.state e i)) (E.initials e)
  in
  Alcotest.(check bool)
    "hit graph obeys the requesting program's initial predicate" true
    (expected_initials eq (fun s -> s.(0) = 1)
    && E.initials ep <> E.initials eq)

let test_cache_paranoid () =
  Program.clear_compile_cache ();
  Unix.putenv "CR_COMPILE_PARANOID" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "CR_COMPILE_PARANOID" "")
    (fun () ->
      let e1 = Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 3) in
      (* hit: paranoid mode recompiles and asserts equality — must not
         raise *)
      let e2 = Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 3) in
      Alcotest.(check bool) "paranoid hit equals miss" true (same e1 e2))

let test_cache_disabled () =
  Program.clear_compile_cache ();
  Unix.putenv "CR_COMPILE_CACHE" "0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "CR_COMPILE_CACHE" "")
    (fun () ->
      let (e1, e2), snap =
        with_counters (fun () ->
            ( Program.to_explicit (Cr_tokenring.Btr.program 3),
              Program.to_explicit (Cr_tokenring.Btr.program 3) ))
      in
      Alcotest.(check bool) "identical graphs without the cache" true (same e1 e2);
      Alcotest.(check int)
        "no hits counted" 0
        (counter snap "compile.cache.hits");
      Alcotest.(check int)
        "no misses counted" 0
        (counter snap "compile.cache.misses");
      Alcotest.(check (option bool))
        "rows not shared" (Some false) (rows_shared e1 e2))

(* Warm-cache compiles of random programs still agree with the step
   function: the content-addressed key (with its semantic probe) must
   never alias two behaviourally different programs.  The cache is
   deliberately left warm across the 200 cases. *)
let prop_cache_never_aliases =
  QCheck2.Test.make ~name:"warm cache: compile agrees with step function"
    ~count:200 gen_prog
    (fun raw ->
      let p = build raw in
      let e = Program.to_explicit p in
      let ok = ref true in
      List.iter
        (fun s ->
          let i = E.find e s in
          let expected =
            Program.step p s
            |> List.filter (fun s' -> s' <> s)
            |> List.map (E.find e)
            |> List.sort_uniq compare
          in
          let actual = Array.to_list (E.successors e i) in
          if expected <> actual then ok := false)
        (Layout.enumerate (Program.layout p));
      !ok)

(* ---- lazy predecessors ---- *)

let test_lazy_pred () =
  let e =
    Cache.bypass (fun () -> Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 3))
  in
  Alcotest.(check bool) "pred not forced by compile" false (E.pred_forced e);
  ignore (E.successors e 0);
  ignore (E.num_transitions e);
  Alcotest.(check bool)
    "forward queries leave pred lazy" false (E.pred_forced e);
  let with_inits = E.with_initials e (fun _ -> false) in
  ignore (E.predecessors e 0);
  Alcotest.(check bool) "backward query forces pred" true (E.pred_forced e);
  Alcotest.(check bool)
    "with_initials shares the forced transpose" true
    (E.pred_forced with_inits);
  (* the transpose is consistent with the successor rows *)
  let n = E.num_states e in
  let ok = ref true in
  for i = 0 to n - 1 do
    Array.iter
      (fun j ->
        if not (Array.exists (fun i' -> i' = i) (E.predecessors e j)) then
          ok := false)
      (E.successors e i)
  done;
  for j = 0 to n - 1 do
    Array.iter
      (fun i -> if not (E.has_edge e i j) then ok := false)
      (E.predecessors e j)
  done;
  Alcotest.(check bool) "pred = transpose of succ" true !ok

let () =
  Alcotest.run "compile"
    [
      ( "chunking",
        List.map QCheck_alcotest.to_alcotest
          [ prop_chunked_plain_sync; prop_chunked_priority ]
        @ [ Alcotest.test_case "env CR_JOBS=4" `Quick test_env_jobs ] );
      ( "cache",
        [
          Alcotest.test_case "hit shares the compiled graph" `Quick
            test_cache_hit_shares;
          Alcotest.test_case "hit re-targets initial states" `Quick
            test_cache_retargets_initials;
          Alcotest.test_case "paranoid mode accepts honest hits" `Quick
            test_cache_paranoid;
          Alcotest.test_case "CR_COMPILE_CACHE=0 disables" `Quick
            test_cache_disabled;
        ]
        @ List.map QCheck_alcotest.to_alcotest [ prop_cache_never_aliases ] );
      ( "lazy-pred",
        [ Alcotest.test_case "forced only on backward use" `Quick test_lazy_pred ]
      );
    ]
