(* Perf-regression gate (Cr_obs.Perfdiff) tests: identity comparisons
   pass, synthetic regressions on trusted rows trip the gate, and the
   noise carve-outs (low-r^2 rows ungated, sub-microsecond rows at 4x
   tolerance) hold. *)

module J = Cr_obs.Json_check
module P = Cr_obs.Perfdiff

let check = Alcotest.(check bool)

let artifact rows =
  let row (name, ns, r2, low) =
    Printf.sprintf
      "{\"name\": %S, \"ns_per_run\": %.1f, \"r2\": %.4f, \"low_r2\": %b}" name
      ns r2 low
  in
  Printf.sprintf
    "{\"git_rev\": \"test\", \"cr_jobs\": 1, \"micro\": [%s], \
     \"report_all_wall_s\": [{\"n\": 2, \"seconds\": 1.5}]}"
    (String.concat ", " (List.map row rows))

let parse s =
  match J.parse_string s with
  | Ok j -> j
  | Error msg -> Alcotest.failf "test artifact unparsable: %s" msg

let base_rows =
  [
    ("fast", 500.0, 0.99, false);
    (* sub-microsecond baseline *)
    ("norm", 5000.0, 0.99, false);
    ("noisy", 7000.0, 0.2, true);
  ]

let compare_rows ?gate_pct base next =
  match P.compare_artifacts ?gate_pct (parse (artifact base)) (parse (artifact next)) with
  | Ok r -> r
  | Error msg -> Alcotest.failf "compare failed: %s" msg

let find name (r : P.result) =
  match List.find_opt (fun (row : P.row) -> row.P.name = name) r.P.rows with
  | Some row -> row
  | None -> Alcotest.failf "row %S missing from result" name

let test_identity () =
  let r = compare_rows base_rows base_rows in
  Alcotest.(check int) "no regressions" 0 r.P.regressions;
  List.iter
    (fun (row : P.row) ->
      check (row.P.name ^ " not regressed") false row.P.regressed;
      Alcotest.(check (float 0.001)) (row.P.name ^ " zero delta") 0.0
        row.P.delta_pct)
    r.P.rows;
  check "wall rows carried" true (r.P.walls <> []);
  check "nothing unmatched" true (r.P.only_base = [] && r.P.only_next = [])

let test_synthetic_regression () =
  let next =
    [
      (* +10% on a sub-us row: inside the widened 4 x 25% tolerance *)
      ("fast", 550.0, 0.99, false);
      (* +60% on a trusted row: past the 25% gate *)
      ("norm", 8000.0, 0.99, false);
      (* 10x on a low-r^2 row: reported, never gated *)
      ("noisy", 70000.0, 0.25, true);
    ]
  in
  let r = compare_rows base_rows next in
  Alcotest.(check int) "exactly one regression" 1 r.P.regressions;
  let fast = find "fast" r and norm = find "norm" r and noisy = find "noisy" r in
  check "sub-us row widened, not tripped" true
    (fast.P.gated && (not fast.P.regressed) && fast.P.tolerance_pct = 100.0);
  check "trusted row tripped" true (norm.P.gated && norm.P.regressed);
  check "trusted row confidence high" true (norm.P.confidence = P.High);
  check "low-r2 row never gated" true
    ((not noisy.P.gated) && (not noisy.P.regressed) && noisy.P.confidence = P.Low);
  (* the same regression passes a loosened gate *)
  let r100 = compare_rows ~gate_pct:100.0 base_rows next in
  Alcotest.(check int) "100% gate passes" 0 r100.P.regressions

let test_improvement_not_flagged () =
  let next = [ ("fast", 400.0, 0.99, false); ("norm", 2000.0, 0.99, false);
               ("noisy", 100.0, 0.9, false) ] in
  let r = compare_rows base_rows next in
  Alcotest.(check int) "speedups never regress" 0 r.P.regressions

let test_unmatched_rows () =
  let r =
    compare_rows base_rows
      [ ("norm", 5000.0, 0.99, false); ("brand-new", 10.0, 0.99, false) ]
  in
  check "only_base lists removed rows" true (r.P.only_base = [ "fast"; "noisy" ]);
  check "only_next lists added rows" true (r.P.only_next = [ "brand-new" ]);
  Alcotest.(check int) "unmatched rows never gate" 0 r.P.regressions

let test_run_exit_codes () =
  let write s =
    let tmp = Filename.temp_file "cr_perfdiff" ".json" in
    let oc = open_out tmp in
    output_string oc s;
    close_out oc;
    tmp
  in
  let base = write (artifact base_rows) in
  let regressed = write (artifact [ ("norm", 9000.0, 0.99, false) ]) in
  Alcotest.(check int) "identity exits 0" 0 (P.run base base);
  Alcotest.(check int) "regression exits 1" 1 (P.run base regressed);
  Alcotest.(check int) "unreadable input exits 2" 2
    (P.run base "/nonexistent/bench.json");
  Sys.remove base;
  Sys.remove regressed

let test_committed_artifact_identity () =
  (* the artifact ci.sh gates against must diff cleanly against itself *)
  let path = "../BENCH_PR6.json" in
  let path = if Sys.file_exists path then path else "BENCH_PR6.json" in
  if not (Sys.file_exists path) then
    Alcotest.fail "BENCH_PR6.json not found (missing test dep?)";
  match P.compare_artifacts (Result.get_ok (J.parse_file path))
          (Result.get_ok (J.parse_file path)) with
  | Ok r ->
      Alcotest.(check int) "identity on committed artifact" 0 r.P.regressions;
      check "committed artifact has rows" true (List.length r.P.rows > 10)
  | Error msg -> Alcotest.failf "committed artifact unreadable: %s" msg

let () =
  Alcotest.run "perfdiff"
    [
      ( "perfdiff",
        [
          Alcotest.test_case "identity comparison passes" `Quick test_identity;
          Alcotest.test_case "synthetic regression trips the gate" `Quick
            test_synthetic_regression;
          Alcotest.test_case "improvements never flag" `Quick
            test_improvement_not_flagged;
          Alcotest.test_case "unmatched rows reported, not gated" `Quick
            test_unmatched_rows;
          Alcotest.test_case "run exit codes" `Quick test_run_exit_codes;
          Alcotest.test_case "committed artifact self-diff" `Quick
            test_committed_artifact_identity;
        ] );
    ]
