(* Run-journal (Cr_obs.Journal) tests: stream shape (header, provenance
   stamps, JSONL validity), CR_JOBS-invariance of the canonicalized
   event set, and the Json_check JSONL validator. *)

module J = Cr_obs.Json_check
module Journal = Cr_obs.Journal

(* lift the pool's busy-domain cap so CR_JOBS > 1 really fans out across
   domains on a single-core host — the invariance being tested *)
let () = Unix.putenv "CR_PAR_CAP" "8"

let check = Alcotest.(check bool)

let read_file path =
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  body

let lines body =
  List.filter (fun l -> String.trim l <> "") (String.split_on_char '\n' body)

(* ---------- a small instrumented workload ---------- *)

(* Compile two systems and run the same stabilization check twice: the
   journal should record the explicit builds, the compile-cache misses
   (and, on the shared BTR target, a hit), one check-cache miss and one
   hit, and two stabilize verdicts (the second marked cached). *)
let run_workload () =
  let n = 3 in
  let d3 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 n) in
  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let alpha =
    Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) d3 btr
  in
  let r1 = Cr_core.Stabilize.stabilizing_to ~alpha ~c:d3 ~a:btr () in
  let r2 = Cr_core.Stabilize.stabilizing_to ~alpha ~c:d3 ~a:btr () in
  check "stabilization holds" true
    (r1.Cr_core.Stabilize.holds && r2.Cr_core.Stabilize.holds)

let journal_of_workload ~jobs =
  Unix.putenv "CR_JOBS" (string_of_int jobs);
  Cr_guarded.Program.clear_compile_cache ();
  Cr_core.Check_cache.clear_all ();
  let tmp = Filename.temp_file "cr_journal" ".jsonl" in
  Journal.set_path (Some tmp);
  run_workload ();
  Journal.set_path None;
  Unix.putenv "CR_JOBS" "1";
  let body = read_file tmp in
  Sys.remove tmp;
  body

(* ---------- canonicalization ---------- *)

(* Fields that legitimately differ between runs (or between CR_JOBS
   settings): provenance stamps, wall-clock durations, and cost
   snapshots (whose gc.* entries price allocation, which the fan-out
   redistributes across domains). *)
let volatile_keys =
  [ "seq"; "ts_us"; "dom"; "rev"; "jobs"; "wall_us"; "wait_us"; "wall_ms"; "cost" ]

let rec canon (j : J.json) =
  match j with
  | J.Null -> "null"
  | J.Bool b -> string_of_bool b
  | J.Num f -> Printf.sprintf "%g" f
  | J.Str s -> Printf.sprintf "%S" s
  | J.Arr l -> "[" ^ String.concat "," (List.map canon l) ^ "]"
  | J.Obj kvs ->
      let kvs = List.sort (fun (a, _) (b, _) -> String.compare a b) kvs in
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%S:%s" k (canon v)) kvs)
      ^ "}"

(* The journal's CR_JOBS-invariance contract: after dropping the header,
   the single-flight wait events (whether anyone waited is pure
   scheduling), the pool-lifecycle events (a pool only exists at
   CR_JOBS > 1) and the volatile fields, the same decisions produce the
   same event set. *)
let pool_event ev =
  String.length ev >= 9 && String.sub ev 0 9 = "par.pool."
let canonical_events body =
  let evs =
    List.filter_map
      (fun line ->
        let j =
          match J.parse_string line with
          | Ok j -> j
          | Error msg -> Alcotest.failf "journal line unparsable: %s" msg
        in
        let ev =
          match Option.bind (J.member "ev" j) J.to_string with
          | Some ev -> ev
          | None -> Alcotest.failf "journal line without ev: %s" line
        in
        if ev = "journal.open" || Filename.check_suffix ev ".wait" || pool_event ev
        then None
        else
          match j with
          | J.Obj kvs ->
              let kept =
                List.filter
                  (fun (k, _) -> not (List.mem k volatile_keys))
                  kvs
              in
              Some (canon (J.Obj kept))
          | _ -> Alcotest.failf "journal line is not an object: %s" line)
      (lines body)
  in
  List.sort String.compare evs

let prop_journal_jobs_invariant =
  QCheck2.Test.make ~name:"journal event set invariant under CR_JOBS"
    ~count:2
    QCheck2.Gen.(oneofl [ 2; 4 ])
    (fun jobs ->
      let seq = canonical_events (journal_of_workload ~jobs:1) in
      let par = canonical_events (journal_of_workload ~jobs) in
      if seq <> par then
        QCheck2.Test.fail_reportf "CR_JOBS=1 vs CR_JOBS=%d:@.%s@.vs@.%s" jobs
          (String.concat "\n" seq) (String.concat "\n" par)
      else if seq = [] then
        QCheck2.Test.fail_reportf "journal recorded no events; test is vacuous"
      else true)

(* ---------- stream shape ---------- *)

let test_journal_stream () =
  let body = journal_of_workload ~jobs:1 in
  (match J.validate_jsonl_string body with
  | Ok n -> check "several events recorded" true (n >= 4)
  | Error msg -> Alcotest.failf "journal is not valid JSONL: %s" msg);
  let parsed =
    List.map
      (fun l ->
        match J.parse_string l with
        | Ok j -> j
        | Error msg -> Alcotest.failf "unparsable line: %s" msg)
      (lines body)
  in
  (* header first, at seq 0 *)
  (match parsed with
  | first :: _ ->
      check "header event" true
        (Option.bind (J.member "ev" first) J.to_string = Some "journal.open");
      check "header seq 0" true
        (Option.bind (J.member "seq" first) J.to_int = Some 0)
  | [] -> Alcotest.fail "empty journal");
  (* every line carries the provenance stamp *)
  List.iter
    (fun j ->
      check "has rev" true (Option.is_some (J.member "rev" j));
      check "has jobs" true
        (Option.is_some (Option.bind (J.member "jobs" j) J.to_int));
      check "has dom" true
        (Option.is_some (Option.bind (J.member "dom" j) J.to_int)))
    parsed;
  (* sequence numbers are 0..n-1 in order (single writer here) *)
  let seqs =
    List.map (fun j -> Option.get (Option.bind (J.member "seq" j) J.to_int)) parsed
  in
  check "seqs are consecutive from 0" true
    (seqs = List.init (List.length seqs) Fun.id);
  (* the workload's decisions all show up *)
  let evs =
    List.filter_map (fun j -> Option.bind (J.member "ev" j) J.to_string) parsed
  in
  let has prefix =
    List.exists (fun ev -> String.starts_with ~prefix ev) evs
  in
  check "explicit.built recorded" true (has "explicit.built");
  check "compile.cache traffic recorded" true (has "compile.cache.");
  check "check.cache traffic recorded" true (has "check.cache.");
  check "stabilize verdicts recorded" true (has "stabilize.verdict");
  (* second identical check was answered from the verdict cache *)
  let cached_verdicts =
    List.filter
      (fun j ->
        Option.bind (J.member "ev" j) J.to_string = Some "stabilize.verdict"
        && Option.bind (J.member "cached" j) J.to_bool = Some true)
      parsed
  in
  check "one cached verdict" true (List.length cached_verdicts = 1)

(* ---------- JSONL validator ---------- *)

let test_jsonl_validator () =
  let ok n s =
    match J.validate_jsonl_string s with
    | Ok m ->
        Alcotest.(check int) (Printf.sprintf "accepts %S" s) n m
    | Error msg -> Alcotest.failf "rejected %S: %s" s msg
  in
  let bad s =
    check (Printf.sprintf "rejects %S" s) true
      (Result.is_error (J.validate_jsonl_string s))
  in
  ok 0 "";
  ok 0 "\n \n";
  ok 1 "{\"a\": 1}";
  ok 2 "{\"a\": 1}\n{\"b\": [true, null]}\n";
  ok 2 "{}\n\n{}";
  bad "[1, 2]";
  (* arrays are valid JSON but not journal lines *)
  bad "{\"a\": 1}\n[2]";
  bad "{\"a\":}";
  bad "{\"a\": 1} {\"b\": 2}"

let () =
  Alcotest.run "journal"
    [
      ( "journal",
        [
          Alcotest.test_case "stream shape and provenance" `Quick
            test_journal_stream;
          QCheck_alcotest.to_alcotest prop_journal_jobs_invariant;
          Alcotest.test_case "JSONL validator accept/reject" `Quick
            test_jsonl_validator;
        ] );
    ]
