(* Tests for the guarded-command substrate. *)

open Cr_guarded

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let layout = Layout.make [ ("x", 2); ("y", 3); ("pinned", 1) ]

let test_layout () =
  check_int "vars" 3 (Layout.num_vars layout);
  check_int "states" 6 (Layout.num_states layout);
  check_int "dom y" 3 (Layout.dom layout 1);
  check_int "slot y" 1 (Layout.slot layout "y");
  Alcotest.check_raises "unknown var"
    (Invalid_argument "Layout.slot: unknown variable z") (fun () ->
      ignore (Layout.slot layout "z"));
  check_int "enumeration covers all" 6 (List.length (Layout.enumerate layout));
  check "all valid" true (List.for_all (Layout.valid layout) (Layout.enumerate layout));
  check "invalid out of range" false (Layout.valid layout [| 2; 0; 0 |]);
  (* pinned variables hidden from printing *)
  let s = Fmt.str "%a" (Layout.pp_state layout) [| 1; 2; 0 |] in
  check "pinned hidden" true (not (String.length s > 0 && String.contains s 'p'))

let test_layout_errors () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Layout.make: duplicate variable x") (fun () ->
      ignore (Layout.make [ ("x", 2); ("x", 2) ]));
  Alcotest.check_raises "empty domain"
    (Invalid_argument "Layout.make: empty domain for x") (fun () ->
      ignore (Layout.make [ ("x", 0) ]))

let incr_x =
  Action.make ~label:"incr_x" ~proc:0 ~writes:[ 0 ]
    ~guard:(fun s -> s.(0) = 0)
    ~effect:(fun s -> Action.set s [ (0, 1) ])
    ()

let noop =
  Action.make ~label:"noop" ~proc:1 ~writes:[]
    ~guard:(fun _ -> true)
    ~effect:(fun s -> Array.copy s)
    ()

let test_action_fire () =
  check "enabled" true (Action.enabled incr_x [| 0; 0; 0 |]);
  check "fires" true (Action.fire incr_x [| 0; 0; 0 |] = Some [| 1; 0; 0 |]);
  check "disabled" true (Action.fire incr_x [| 1; 0; 0 |] = None);
  check "no-op firing dropped" true (Action.fire noop [| 0; 0; 0 |] = None);
  (* effects are pure: the input state is untouched *)
  let s = [| 0; 2; 0 |] in
  ignore (Action.fire incr_x s);
  check "input untouched" true (s = [| 0; 2; 0 |])

let dec_y =
  Action.make ~label:"dec_y" ~proc:1 ~writes:[ 1 ]
    ~guard:(fun s -> s.(1) > 0)
    ~effect:(fun s -> Action.set s [ (1, s.(1) - 1) ])
    ()

let prog =
  Program.make ~name:"p" ~layout ~actions:[ incr_x; dec_y ]
    ~initial:(fun s -> s.(0) = 0 && s.(1) = 0)

let test_program_step () =
  check_int "two firings" 2 (List.length (Program.firings prog [| 0; 1; 0 |]));
  check_int "one firing" 1 (List.length (Program.firings prog [| 1; 1; 0 |]));
  check "terminal" true (Program.step prog [| 1; 0; 0 |] = []);
  let e = Program.to_explicit prog in
  check_int "explicit states" 6 (Cr_semantics.Explicit.num_states e);
  (* every state eventually reaches the terminal [|1;0;0|] *)
  check "terminal state" true
    (Cr_semantics.Explicit.is_terminal e (Cr_semantics.Explicit.find e [| 1; 0; 0 |]))

let test_box () =
  let w =
    Program.make ~name:"w" ~layout
      ~actions:
        [
          Action.make ~label:"reset" ~proc:(-1) ~writes:[ 1 ]
            ~guard:(fun s -> s.(1) = 2)
            ~effect:(fun s -> Action.set s [ (1, 0) ])
            ();
        ]
      ~initial:(fun _ -> true)
  in
  let b = Program.box prog w in
  check_int "actions concatenated" 3 (List.length (Program.actions b));
  (* initial from the left operand *)
  check "initial from base" true (Program.initial b [| 0; 0; 0 |]);
  check "not from wrapper" false (Program.initial b [| 1; 1; 0 |]);
  let incompatible =
    Program.make ~name:"q" ~layout:(Layout.make [ ("z", 2) ]) ~actions:[]
      ~initial:(fun _ -> true)
  in
  Alcotest.check_raises "incompatible layouts"
    (Invalid_argument "Program.box: incompatible layouts") (fun () ->
      ignore (Program.box prog incompatible))

let test_box_priority () =
  let w =
    Program.make ~name:"w" ~layout
      ~actions:
        [
          Action.make ~label:"repair" ~proc:(-1) ~writes:[ 1 ]
            ~guard:(fun s -> s.(1) = 2)
            ~effect:(fun s -> Action.set s [ (1, 0) ])
            ();
        ]
      ~initial:(fun _ -> true)
  in
  let combined, is_wrapper = Program.box_priority prog w in
  let e = Program.to_explicit ~priority_of:is_wrapper combined in
  (* at y=2 only the wrapper may act: successors of [|0;2;0|] = {[|0;0;0|]} *)
  let i = Cr_semantics.Explicit.find e [| 0; 2; 0 |] in
  check_int "wrapper preempts" 1 (Array.length (Cr_semantics.Explicit.successors e i));
  check "wrapper successor" true
    (Cr_semantics.Explicit.successors e i
    = [| Cr_semantics.Explicit.find e [| 0; 0; 0 |] |]);
  (* at y=1 the wrapper is disabled: base actions run *)
  let j = Cr_semantics.Explicit.find e [| 0; 1; 0 |] in
  check_int "base acts when wrapper disabled" 2
    (Array.length (Cr_semantics.Explicit.successors e j))

let test_closure () =
  let seen = Program.reachable_from prog [ [| 0; 2; 0 |] ] in
  (* reachable: x 0->1, y 2->1->0: all (x,y) with x in {0,1}, y <= 2 that
     are coordinatewise moves: {0,1}x{0,1,2} = 6 states *)
  check_int "closure size" 6 (Hashtbl.length seen);
  let p' = Program.with_initial_closure ~seeds:[ [| 1; 1; 0 |] ] prog in
  check "seed initial" true (Program.initial p' [| 1; 1; 0 |]);
  check "downstream initial" true (Program.initial p' [| 1; 0; 0 |]);
  check "not upstream" false (Program.initial p' [| 0; 2; 0 |])

let test_faults_program () =
  let f = Cr_fault.Injector.faults layout in
  (* x has 2 values, y has 3, pinned none: actions = 2 + 3 = 5 *)
  check_int "fault actions" 5 (List.length (Program.actions f));
  (* fault saturation: from any single state the whole space is reachable *)
  let b = Program.box prog f in
  let seen = Program.reachable_from b [ [| 0; 0; 0 |] ] in
  check_int "fault span is everything" 6 (Hashtbl.length seen)

let test_injector () =
  let rng = Random.State.make [| 3 |] in
  let s = [| 0; 1; 0 |] in
  let s' = Cr_fault.Injector.corrupt_one ~rng layout s in
  check "one variable changed" true
    (s' <> s
    && (s'.(0) <> s.(0)) <> (s'.(1) <> s.(1))
    && s'.(2) = s.(2));
  let s'' = Cr_fault.Injector.corrupt_slot ~rng layout s ~slot:1 in
  check "slot corrupted to different value" true (s''.(1) <> s.(1));
  let pinned = Cr_fault.Injector.corrupt_slot ~rng layout s ~slot:2 in
  check "pinned slot unchanged" true (pinned = s);
  let r = Cr_fault.Injector.randomize ~rng layout in
  check "randomize in range" true (Layout.valid layout r)

let () =
  Alcotest.run "guarded"
    [
      ( "layout",
        [
          Alcotest.test_case "basics" `Quick test_layout;
          Alcotest.test_case "errors" `Quick test_layout_errors;
        ] );
      ("action", [ Alcotest.test_case "fire" `Quick test_action_fire ]);
      ( "program",
        [
          Alcotest.test_case "step and explicit" `Quick test_program_step;
          Alcotest.test_case "box" `Quick test_box;
          Alcotest.test_case "box priority" `Quick test_box_priority;
          Alcotest.test_case "closure" `Quick test_closure;
        ] );
      ( "faults",
        [
          Alcotest.test_case "fault program" `Quick test_faults_program;
          Alcotest.test_case "injector" `Quick test_injector;
        ] );
    ]
