(* Property-based tests of the guarded-command layer: the explicit
   compilation, box composition, priority semantics and closure are
   checked against their definitions on randomly generated programs. *)

open Cr_guarded

(* ---- random program generation ---- *)

type raw_action = {
  proc : int;
  slot : int;  (* written slot *)
  guard_slot : int;
  guard_val : int;
  write_val : int;
}

type raw_prog = { doms : int list; acts : raw_action list }

let gen_prog =
  QCheck2.Gen.(
    let* nv = int_range 1 4 in
    let* doms = list_repeat nv (int_range 1 3) in
    let* na = int_bound 6 in
    let* acts =
      list_size (return na)
        (let* slot = int_bound (nv - 1) in
         let* guard_slot = int_bound (nv - 1) in
         let* guard_val = int_bound 2 in
         let* write_val = int_bound 2 in
         let* proc = int_bound 3 in
         return { proc; slot; guard_slot; guard_val; write_val })
    in
    return { doms; acts })

let build { doms; acts } =
  let nv = List.length doms in
  let layout = Layout.make (List.mapi (fun i d -> (Printf.sprintf "v%d" i, d)) doms) in
  let clamp slot v = v mod Layout.dom layout slot in
  let actions =
    List.mapi
      (fun i ra ->
        (* slot indices are taken modulo the layout size so that programs
           generated against one layout can be rebuilt against another
           (used by the box/priority properties) *)
        let slot = ra.slot mod nv and guard_slot = ra.guard_slot mod nv in
        Action.make
          ~label:(Printf.sprintf "a%d" i)
          ~proc:ra.proc ~writes:[ slot ]
          ~guard:(fun s -> s.(guard_slot) = clamp guard_slot ra.guard_val)
          ~effect:(fun s -> Action.set s [ (slot, clamp slot ra.write_val) ])
          ())
      acts
  in
  Program.make ~name:"rand" ~layout ~actions ~initial:(fun s -> s.(0) = 0)

(* explicit compilation agrees with the step function *)
let prop_explicit_agrees =
  QCheck2.Test.make ~name:"to_explicit edges = step function (minus no-ops)"
    ~count:300 gen_prog (fun raw ->
      let p = build raw in
      let e = Program.to_explicit p in
      let ok = ref true in
      List.iter
        (fun s ->
          let i = Cr_semantics.Explicit.find e s in
          let expected =
            Program.step p s
            |> List.filter (fun s' -> s' <> s)
            |> List.map (Cr_semantics.Explicit.find e)
            |> List.sort_uniq compare
          in
          let actual =
            Array.to_list (Cr_semantics.Explicit.successors e i)
            |> List.sort compare
          in
          if expected <> actual then ok := false)
        (Layout.enumerate (Program.layout p));
      !ok)

(* box is the union of the step relations *)
let prop_box_union =
  QCheck2.Test.make ~name:"box = union of transitions" ~count:200
    QCheck2.Gen.(pair gen_prog gen_prog)
    (fun (r1, r2) ->
      let r2 = { r2 with doms = r1.doms } in
      let p1 = build r1 and p2 = build r2 in
      let b = Program.box p1 p2 in
      let eb = Program.to_explicit b in
      let e1 = Program.to_explicit p1 and e2 = Program.to_explicit p2 in
      let ok = ref true in
      Cr_semantics.Explicit.iter_edges eb (fun i j ->
          let s = Cr_semantics.Explicit.state eb i in
          let t = Cr_semantics.Explicit.state eb j in
          let in1 =
            Cr_semantics.Explicit.has_edge e1 (Cr_semantics.Explicit.find e1 s)
              (Cr_semantics.Explicit.find e1 t)
          in
          let in2 =
            Cr_semantics.Explicit.has_edge e2 (Cr_semantics.Explicit.find e2 s)
              (Cr_semantics.Explicit.find e2 t)
          in
          if not (in1 || in2) then ok := false);
      (* and conversely: every edge of either operand appears in the box *)
      Cr_semantics.Explicit.iter_edges e1 (fun i j ->
          let s = Cr_semantics.Explicit.state e1 i in
          let t = Cr_semantics.Explicit.state e1 j in
          if
            not
              (Cr_semantics.Explicit.has_edge eb
                 (Cr_semantics.Explicit.find eb s)
                 (Cr_semantics.Explicit.find eb t))
          then ok := false);
      !ok)

(* priority semantics: wherever the wrapper can move, the composed system
   takes exactly the wrapper moves; elsewhere the base moves *)
let prop_priority_semantics =
  QCheck2.Test.make ~name:"box_priority preempts exactly where enabled"
    ~count:200
    QCheck2.Gen.(pair gen_prog gen_prog)
    (fun (rb, rw) ->
      let rw = { rw with doms = rb.doms } in
      let base = build rb and wrapper = build rw in
      let combined, is_w = Program.box_priority base wrapper in
      let e = Program.to_explicit ~priority_of:is_w combined in
      let ok = ref true in
      List.iter
        (fun s ->
          let w_moves =
            Program.step wrapper s |> List.filter (fun t -> t <> s)
            |> List.sort_uniq compare
          in
          let b_moves =
            Program.step base s |> List.filter (fun t -> t <> s)
            |> List.sort_uniq compare
          in
          let expected = if w_moves <> [] then w_moves else b_moves in
          let actual =
            Array.to_list
              (Cr_semantics.Explicit.successors e (Cr_semantics.Explicit.find e s))
            |> List.map (Cr_semantics.Explicit.state e)
            |> List.sort_uniq compare
          in
          if List.sort compare expected <> actual then ok := false)
        (Layout.enumerate (Program.layout base));
      !ok)

(* closure is sound and complete w.r.t. the step function *)
let prop_closure =
  QCheck2.Test.make ~name:"reachable_from is the least fixed point" ~count:200
    gen_prog (fun raw ->
      let p = build raw in
      let states = Layout.enumerate (Program.layout p) in
      match states with
      | [] -> true
      | seed :: _ ->
          let closure = Program.reachable_from p [ seed ] in
          (* closed under step *)
          let closed =
            Hashtbl.fold
              (fun s () acc ->
                acc
                && List.for_all (fun t -> Hashtbl.mem closure t) (Program.step p s))
              closure true
          in
          (* minimal: every member is reachable by an explicit path *)
          let e = Program.to_explicit p in
          let reach =
            Cr_checker.Reach.forward_csr
              ~succ:(Cr_checker.Reach.of_explicit e)
              ~seeds:[ Cr_semantics.Explicit.find e seed ]
          in
          let minimal =
            Hashtbl.fold
              (fun s () acc ->
                acc && Cr_kernel.Bitset.get reach (Cr_semantics.Explicit.find e s))
              closure true
          in
          closed && minimal)

(* synchronous steps write only declared slots and respect guards *)
let prop_synchronous_writes =
  QCheck2.Test.make ~name:"synchronous step only writes enabled processes' slots"
    ~count:200 gen_prog (fun raw ->
      let p = build raw in
      let ok = ref true in
      List.iter
        (fun s ->
          match Program.synchronous_step p s with
          | None -> ()
          | Some s' ->
              let written =
                List.concat_map
                  (fun a -> if Action.enabled a s then Action.writes a else [])
                  (Program.actions p)
              in
              Array.iteri
                (fun i v -> if v <> s.(i) && not (List.mem i written) then ok := false)
                s')
        (Layout.enumerate (Program.layout p));
      !ok)

let () =
  Alcotest.run "guarded-props"
    [
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_explicit_agrees;
            prop_box_union;
            prop_priority_semantics;
            prop_closure;
            prop_synchronous_writes;
          ] );
    ]
