(* Pool and bitset properties for the PR 9 parallel layer: map_array
   determinism on a warm pool across job counts and repeated calls,
   nested-call sequentiality, with_jobs exception safety, the
   CR_PAR_MIN_ITEMS cutoff, clean pool shutdown, and agreement of the
   word-parallel Bitset operations with a byte-wide boolean reference
   (including non-multiple-of-64 tails). *)

module Par = Cr_kernel.Par
module Bitset = Cr_kernel.Bitset

(* The pool caps busy domains at the host's core count by default; lift
   the cap so these tests exercise real worker domains even on a
   single-core CI host. *)
let () = Unix.putenv "CR_PAR_CAP" "16"

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- pool determinism ---------- *)

(* A work function whose result depends only on the item (never on the
   executing domain or claim order), with enough mixing that a misplaced
   slot write would be caught. *)
let mix i x = (x * 1_000_003) lxor (i * 97) lxor ((x lsr 7) + i)

let prop_warm_pool_determinism =
  QCheck2.Test.make ~name:"map_array identical across warm-pool job counts"
    ~count:30
    QCheck2.Gen.(list_size (int_range 0 200) small_int)
    (fun xs ->
      let a = Array.of_list xs in
      let expected = Array.mapi mix a in
      (* repeated calls at every job count reuse (and grow) the same
         pool; each must reproduce the sequential map exactly *)
      List.for_all
        (fun jobs ->
          Par.with_jobs jobs (fun () ->
              let once () = Par.map_array (fun x -> x) a |> Array.mapi mix in
              once () = expected && once () = expected))
        [ 1; 2; 4; 8 ]
      && Par.map_array ~jobs:4 (fun x -> x) a |> Array.mapi mix = expected)

let prop_map_matches_list_map =
  QCheck2.Test.make ~name:"Par.map equals List.map on the warm pool"
    ~count:30
    QCheck2.Gen.(pair (int_range 1 8) (list_size (int_range 0 64) small_int))
    (fun (jobs, xs) ->
      Par.map ~jobs (fun x -> (2 * x) + 1) xs = List.map (fun x -> (2 * x) + 1) xs)

let test_nested_sequential () =
  (* a mapped function that itself maps must run its inner sweep
     sequentially on the same domain (current_jobs = 1 inside) *)
  let inner_jobs =
    Par.with_jobs 4 (fun () ->
        Par.map_array
          (fun _ -> Par.current_jobs ())
          (Array.make 16 ()))
  in
  Array.iter (fun j -> check_int "inner jobs" 1 j) inner_jobs

let test_with_jobs_restores_on_exception () =
  let before = Par.current_jobs () in
  (try Par.with_jobs 7 (fun () -> failwith "boom") with Failure _ -> ());
  check_int "override restored" before (Par.current_jobs ())

let test_exception_propagates () =
  let raised =
    try
      ignore
        (Par.map_array ~jobs:4
           (fun i -> if i = 37 then failwith "item 37" else i)
           (Array.init 64 (fun i -> i)));
      false
    with Failure _ -> true
  in
  check "exception from a pool item reaches the caller" true raised;
  (* and the pool is still usable afterwards *)
  let a = Array.init 64 (fun i -> i) in
  check "pool survives a failing task" true
    (Par.map_array ~jobs:4 succ a = Array.map succ a)

let test_min_items_cutoff () =
  (* below the cutoff no worker is needed: a 2-item map at jobs=8 on a
     fresh (shut-down) pool must not spawn anything *)
  Par.shutdown_pool ();
  check_int "pool empty after shutdown" 0 (Par.pool_size ());
  let out = Par.map_array ~jobs:8 succ [| 1; 2 |] in
  check "tiny map correct" true (out = [| 2; 3 |]);
  check_int "tiny map spawned no workers" 0 (Par.pool_size ());
  (* a map over >= CR_PAR_MIN_ITEMS items does spawn, and shutdown joins *)
  ignore (Par.map_array ~jobs:4 succ (Array.init 64 (fun i -> i)));
  check "large map spawned workers" true (Par.pool_size () > 0);
  Par.shutdown_pool ();
  check_int "shutdown empties the pool" 0 (Par.pool_size ());
  (* and the next parallel call transparently respawns *)
  check "pool respawns after shutdown" true
    (Par.map_array ~jobs:2 succ (Array.init 64 (fun i -> i))
    = Array.init 64 (fun i -> i + 1))

(* ---------- word-parallel bitset vs boolean reference ---------- *)

(* Random lengths around the word boundaries, including exact multiples
   of 64 and ragged tails. *)
let gen_len =
  QCheck2.Gen.(
    oneof
      [
        int_range 0 20;
        int_range 55 75;
        int_range 120 135;
        map (fun k -> 64 * k) (int_range 0 4);
      ])

let gen_mask =
  QCheck2.Gen.(gen_len >>= fun len -> array_repeat len bool)

let prop_bitset_ops_match_reference =
  QCheck2.Test.make ~name:"word-parallel bitset ops agree with bool arrays"
    ~count:200
    QCheck2.Gen.(
      gen_len >>= fun len ->
      pair (array_repeat len bool) (array_repeat len bool))
    (fun (xa, ya) ->
      let x = Bitset.of_bool_array xa and y = Bitset.of_bool_array ya in
      let to_b = Bitset.to_bool_array in
      to_b (Bitset.union x y) = Array.map2 ( || ) xa ya
      && to_b (Bitset.inter x y) = Array.map2 ( && ) xa ya
      && to_b (Bitset.diff x y) = Array.map2 (fun a b -> a && not b) xa ya
      && to_b (Bitset.complement x) = Array.map not xa
      && Bitset.count x
         = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 xa
      && Bitset.equal x (Bitset.of_bool_array xa)
      && Bitset.equal x y = (xa = ya)
      &&
      let into = Bitset.of_bool_array xa in
      Bitset.union_into ~into y;
      to_b into = Array.map2 ( || ) xa ya)

let prop_iter_set_bits_ascending =
  QCheck2.Test.make ~name:"iter_set_bits yields members ascending" ~count:200
    gen_mask
    (fun ba ->
      let t = Bitset.of_bool_array ba in
      let seen = ref [] in
      Bitset.iter_set_bits t (fun i -> seen := i :: !seen);
      let got = List.rev !seen in
      got = Bitset.members t
      && got
         = List.filter
             (fun i -> ba.(i))
             (List.init (Array.length ba) (fun i -> i)))

let prop_set_clear_roundtrip =
  QCheck2.Test.make ~name:"set/clear/get roundtrip at ragged lengths"
    ~count:200
    QCheck2.Gen.(
      gen_len >>= fun len ->
      pair (return len) (list_size (int_range 0 32) (int_range 0 (max 0 (len - 1)))))
    (fun (len, idxs) ->
      QCheck2.assume (len > 0);
      let t = Bitset.create len in
      List.iter (Bitset.set t) idxs;
      let want = Array.make len false in
      List.iter (fun i -> want.(i) <- true) idxs;
      let ok_set = Bitset.to_bool_array t = want in
      List.iter (Bitset.clear t) idxs;
      ok_set && Bitset.count t = 0 && Bitset.equal t (Bitset.create len))

let () =
  let qt = QCheck_alcotest.to_alcotest in
  Alcotest.run "par"
    [
      ( "pool",
        [
          qt prop_warm_pool_determinism;
          qt prop_map_matches_list_map;
          Alcotest.test_case "nested calls sequential" `Quick
            test_nested_sequential;
          Alcotest.test_case "with_jobs restores on exception" `Quick
            test_with_jobs_restores_on_exception;
          Alcotest.test_case "exceptions propagate, pool survives" `Quick
            test_exception_propagates;
          Alcotest.test_case "min-items cutoff and shutdown" `Quick
            test_min_items_cutoff;
        ] );
      ( "bitset",
        [
          qt prop_bitset_ops_match_reference;
          qt prop_iter_set_bits_ascending;
          qt prop_set_clear_roundtrip;
        ] );
    ]
