(* Unit and property tests for cr_checker: reachability, SCC, paths. *)

(* lift the pool's busy-domain cap so the CR_JOBS-invariance properties
   really fan out across domains on a single-core host *)
let () = Unix.putenv "CR_PAR_CAP" "8"

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* adjacency: 0->1->2->0 (cycle), 2->3, 3->4, 5 isolated *)
let g = [| [| 1 |]; [| 2 |]; [| 0; 3 |]; [| 4 |]; [||]; [||] |]

let test_forward () =
  let r = Cr_checker.Reach.forward ~succ:g ~seeds:[ 0 ] in
  check "reaches 4" true r.(4);
  check "not 5" false r.(5);
  check_int "count" 5 (Cr_checker.Reach.count r);
  Alcotest.(check (list int)) "members" [ 0; 1; 2; 3; 4 ]
    (Cr_checker.Reach.members r)

let test_backward () =
  let r = Cr_checker.Reach.backward ~succ:g ~seeds:[ 4 ] in
  check "0 reaches 4" true r.(0);
  check "5 does not" false r.(5)

let test_scc () =
  let t = Cr_checker.Scc.compute g in
  check "0,1,2 same comp" true
    (t.Cr_checker.Scc.component.(0) = t.Cr_checker.Scc.component.(1)
    && t.Cr_checker.Scc.component.(1) = t.Cr_checker.Scc.component.(2));
  check "3 different" true
    (t.Cr_checker.Scc.component.(3) <> t.Cr_checker.Scc.component.(0));
  check "0 on cycle" true (Cr_checker.Scc.on_cycle t 0);
  check "3 not on cycle" false (Cr_checker.Scc.on_cycle t 3);
  check "edge 1->2 on cycle" true (Cr_checker.Scc.edge_on_cycle t 1 2);
  check "edge 2->3 not" false (Cr_checker.Scc.edge_on_cycle t 2 3)

let test_acyclic_within () =
  let all = Array.make 6 true in
  check "whole graph cyclic" false (Cr_checker.Scc.acyclic_within g all);
  let no_cycle = [| false; true; true; true; true; true |] in
  check "without 0 acyclic" true (Cr_checker.Scc.acyclic_within g no_cycle)

let test_bfs () =
  let d = Cr_checker.Paths.bfs_distances ~succ:g ~src:0 in
  check_int "dist to 4" 4 d.(4);
  check_int "dist to 0" 0 d.(0);
  check_int "unreachable" (-1) d.(5)

let test_shortest_nonempty () =
  Alcotest.(check (option int))
    "1 to 0" (Some 2)
    (Cr_checker.Paths.shortest_nonempty ~succ:g ~src:1 ~dst:0);
  Alcotest.(check (option int))
    "cycle through 0" (Some 3)
    (Cr_checker.Paths.shortest_nonempty ~succ:g ~src:0 ~dst:0);
  Alcotest.(check (option int))
    "4 to 0 impossible" None
    (Cr_checker.Paths.shortest_nonempty ~succ:g ~src:4 ~dst:0)

let test_shortest_path () =
  (match Cr_checker.Paths.shortest_path ~succ:g ~src:0 ~dst:4 with
  | Some p ->
      Alcotest.(check (list int)) "path 0..4" [ 0; 1; 2; 3; 4 ] p
  | None -> Alcotest.fail "expected path");
  Alcotest.(check (option (list int)))
    "src=dst" (Some [ 3 ])
    (Cr_checker.Paths.shortest_path ~succ:g ~src:3 ~dst:3);
  Alcotest.(check (option (list int)))
    "unreachable" None
    (Cr_checker.Paths.shortest_path ~succ:g ~src:4 ~dst:0)

let test_longest_within () =
  (* DAG: 0->1->2, 0->2, mask all *)
  let dag = [| [| 1; 2 |]; [| 2 |]; [||] |] in
  let l = Cr_checker.Paths.longest_within ~succ:dag ~mask:(Array.make 3 true) in
  check_int "longest from 0" 2 l.(0);
  check_int "longest from 2" 0 l.(2);
  (* masked region: only 0 and 1 — an edge out of the mask still counts *)
  let l2 =
    Cr_checker.Paths.longest_within ~succ:dag ~mask:[| true; true; false |]
  in
  check_int "stops at mask" 2 l2.(0);
  check "cyclic raises" true
    (try
       ignore (Cr_checker.Paths.longest_within ~succ:g ~mask:(Array.make 6 true));
       false
     with Cr_checker.Paths.Cyclic -> true)

(* properties: on random graphs, SCC component equality agrees with mutual
   reachability, and bfs distance agrees with reconstructed path length. *)

let gen_graph =
  QCheck2.Gen.(
    let* n = int_range 1 12 in
    let* edges = list_size (int_bound 30) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    return (n, edges))

let adj_of (n, edges) =
  let a = Array.make n [] in
  List.iter (fun (i, j) -> if i <> j then a.(i) <- j :: a.(i)) edges;
  Array.map (fun l -> Array.of_list (List.sort_uniq compare l)) a

let prop_scc_mutual_reach =
  QCheck2.Test.make ~name:"same SCC iff mutually reachable" ~count:100 gen_graph
    (fun g ->
      let adj = adj_of g in
      let n = Array.length adj in
      let t = Cr_checker.Scc.compute adj in
      let ok = ref true in
      for i = 0 to n - 1 do
        let ri = Cr_checker.Reach.forward ~succ:adj ~seeds:[ i ] in
        for j = 0 to n - 1 do
          let rj = Cr_checker.Reach.forward ~succ:adj ~seeds:[ j ] in
          let mutual = ri.(j) && rj.(i) in
          let same = t.Cr_checker.Scc.component.(i) = t.Cr_checker.Scc.component.(j) in
          if mutual <> same then ok := false
        done
      done;
      !ok)

let prop_bfs_path_agree =
  QCheck2.Test.make ~name:"bfs distance = reconstructed path length" ~count:100
    gen_graph (fun g ->
      let adj = adj_of g in
      let n = Array.length adj in
      let ok = ref true in
      for src = 0 to n - 1 do
        let d = Cr_checker.Paths.bfs_distances ~succ:adj ~src in
        for dst = 0 to n - 1 do
          match Cr_checker.Paths.shortest_path ~succ:adj ~src ~dst with
          | Some p -> if List.length p - 1 <> d.(dst) then ok := false
          | None -> if d.(dst) >= 0 then ok := false
        done
      done;
      !ok)

let prop_oracle_eq_fresh_bfs =
  QCheck2.Test.make ~name:"memoized oracle = fresh BFS shortest_nonempty"
    ~count:100 gen_graph (fun g ->
      let adj = adj_of g in
      let n = Array.length adj in
      let o = Cr_checker.Paths.make_oracle ~succ:(Cr_kernel.Csr.of_rows adj) in
      let ok = ref true in
      for src = 0 to n - 1 do
        for dst = 0 to n - 1 do
          if
            Cr_checker.Paths.shortest_nonempty_memo o ~src ~dst
            <> Cr_checker.Paths.shortest_nonempty ~succ:adj ~src ~dst
          then ok := false
        done
      done;
      !ok)

let prop_par_map_eq_seq =
  QCheck2.Test.make ~name:"Par.map_array with jobs>1 = Array.map" ~count:50
    QCheck2.Gen.(pair (list_size (int_bound 40) (int_bound 1000)) (int_range 2 6))
    (fun (l, jobs) ->
      let a = Array.of_list l in
      Cr_kernel.Par.map_array ~jobs (fun x -> x * x + 1) a
      = Array.map (fun x -> x * x + 1) a)

(* ---- CSR kernels agree with the legacy array-of-rows kernels ---- *)

module Bs = Cr_kernel.Bitset

let prop_csr_reach_agree =
  QCheck2.Test.make ~name:"forward/backward_csr = forward/backward" ~count:200
    gen_graph (fun g ->
      let adj = adj_of g in
      let csr = Cr_kernel.Csr.of_rows adj in
      let n = Array.length adj in
      let ok = ref true in
      for s = 0 to n - 1 do
        let f = Cr_checker.Reach.forward ~succ:adj ~seeds:[ s ] in
        let fc = Cr_checker.Reach.forward_csr ~succ:csr ~seeds:[ s ] in
        let b = Cr_checker.Reach.backward ~succ:adj ~seeds:[ s ] in
        let bc = Cr_checker.Reach.backward_csr ~succ:csr ~seeds:[ s ] in
        if Bs.to_bool_array fc <> f || Bs.to_bool_array bc <> b then ok := false
      done;
      !ok)

let prop_csr_scc_agree =
  QCheck2.Test.make ~name:"Scc.compute_csr = Scc.compute" ~count:200 gen_graph
    (fun g ->
      let adj = adj_of g in
      let t = Cr_checker.Scc.compute adj in
      let tc = Cr_checker.Scc.compute_csr (Cr_kernel.Csr.of_rows adj) in
      t.Cr_checker.Scc.component = tc.Cr_checker.Scc.component
      && t.Cr_checker.Scc.count = tc.Cr_checker.Scc.count
      && t.Cr_checker.Scc.sizes = tc.Cr_checker.Scc.sizes)

let prop_csr_paths_agree =
  QCheck2.Test.make
    ~name:"bfs/shortest/longest CSR kernels = legacy kernels" ~count:100
    QCheck2.Gen.(pair gen_graph (array_size (int_bound 12) bool))
    (fun (g, mask_bits) ->
      let adj = adj_of g in
      let csr = Cr_kernel.Csr.of_rows adj in
      let n = Array.length adj in
      let ok = ref true in
      for src = 0 to n - 1 do
        if
          Cr_checker.Paths.bfs_distances ~succ:adj ~src
          <> Cr_checker.Paths.bfs_distances_csr ~succ:csr ~src
        then ok := false;
        for dst = 0 to n - 1 do
          if
            Cr_checker.Paths.shortest_path ~succ:adj ~src ~dst
            <> Cr_checker.Paths.shortest_path_csr ~succ:csr ~src ~dst
          then ok := false
        done
      done;
      let mask = Array.init n (fun i -> i < Array.length mask_bits && mask_bits.(i)) in
      let legacy =
        try Ok (Cr_checker.Paths.longest_within ~succ:adj ~mask)
        with Cr_checker.Paths.Cyclic -> Error ()
      in
      let csr_r =
        try
          Ok
            (Cr_checker.Paths.longest_within_csr ~succ:csr
               ~mask:(Bs.of_bool_array mask))
        with Cr_checker.Paths.Cyclic -> Error ()
      in
      !ok && legacy = csr_r)

let prop_csr_fair_agree =
  QCheck2.Test.make ~name:"Fair.analyze_csr = Fair.analyze" ~count:200
    QCheck2.Gen.(
      triple gen_graph (array_size (int_bound 12) bool) (int_range 1 3))
    (fun (g, mask_bits, num_actions) ->
      let adj = adj_of g in
      let n = Array.length adj in
      let mask = Array.init n (fun i -> i < Array.length mask_bits && mask_bits.(i)) in
      (* deterministic pseudo-random action tables drawn from the graph's
         own edges, so admissibility is non-trivial *)
      let tables =
        Array.init num_actions (fun a ->
            Array.init n (fun s ->
                let row = adj.(s) in
                let d = Array.length row in
                if d = 0 || (s + a) mod 3 = 0 then -1
                else row.((s * 7 + a) mod d)))
      in
      let legacy = Cr_core.Fair.analyze tables ~succ:adj ~mask in
      let csr =
        Cr_core.Fair.analyze_csr tables
          ~succ:(Cr_kernel.Csr.of_rows adj)
          ~mask:(Bs.of_bool_array mask)
      in
      legacy.Cr_core.Fair.component = csr.Cr_core.Fair.component
      && legacy.Cr_core.Fair.fair = csr.Cr_core.Fair.fair
      && legacy.Cr_core.Fair.sccs = csr.Cr_core.Fair.sccs)

(* ---- classify is byte-identical for CR_JOBS in {1, 2, 4} ---- *)

let explicit_of_adj name adj inits =
  let n = Array.length adj in
  Cr_semantics.Explicit.of_edge_lists ~name
    ~states:(Array.init n (fun i -> i))
    ~pp_state:Fmt.int
    ~is_initial:(fun s -> List.mem s inits)
    ~succ_lists:(Array.map Array.to_list adj)

let prop_classify_jobs_invariant =
  QCheck2.Test.make ~name:"classify invariant under CR_JOBS in {1,2,4}"
    ~count:60
    QCheck2.Gen.(triple gen_graph gen_graph (int_bound 1000))
    (fun (gc, ga, salt) ->
      let c = explicit_of_adj "C" (adj_of gc) [ 0 ] in
      let a = explicit_of_adj "A" (adj_of ga) [ 0 ] in
      let nc = Cr_semantics.Explicit.num_states c in
      let na = Cr_semantics.Explicit.num_states a in
      let alpha = Array.init nc (fun i -> (i * 31 + salt) mod na) in
      let run jobs =
        Unix.putenv "CR_JOBS" (string_of_int jobs);
        Fun.protect
          ~finally:(fun () -> Unix.putenv "CR_JOBS" "1")
          (fun () -> Cr_core.Refine.classify ~alpha ~c ~a)
      in
      let (cl1, st1) = run 1 in
      let (cl2, st2) = run 2 in
      let (cl4, st4) = run 4 in
      let same (x, sx) (y, sy) =
        x.Cr_core.Refine.srcs = y.Cr_core.Refine.srcs
        && x.Cr_core.Refine.dsts = y.Cr_core.Refine.dsts
        && x.Cr_core.Refine.cls = y.Cr_core.Refine.cls
        && sx = sy
      in
      same (cl1, st1) (cl2, st2) && same (cl1, st1) (cl4, st4))

(* The CR_JOBS fan-out must be observationally invisible: the full report
   at N = 2..4 prints the same bytes whether computed sequentially or on
   four domains.  Capture redirects the stdout file descriptor: once a
   domain has been spawned, Format's std_formatter writes through a
   domain-local buffer straight to [Stdlib.stdout], so formatter-level
   out-function swapping would miss everything after the first spawn. *)
let test_report_jobs_invariant () =
  let capture () =
    let tmp = Filename.temp_file "cr_jobs" ".out" in
    let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
    flush stdout;
    Format.print_flush ();
    let saved = Unix.dup Unix.stdout in
    Unix.dup2 fd Unix.stdout;
    Unix.close fd;
    Fun.protect
      ~finally:(fun () ->
        flush stdout;
        Format.print_flush ();
        Unix.dup2 saved Unix.stdout;
        Unix.close saved)
      (fun () -> Cr_experiments.Report.all ~ns:[ 2; 3; 4 ] ());
    let ic = open_in_bin tmp in
    let s = really_input_string ic (in_channel_length ic) in
    close_in ic;
    Sys.remove tmp;
    s
  in
  Unix.putenv "CR_JOBS" "1";
  let seq = capture () in
  Unix.putenv "CR_JOBS" "4";
  let par = capture () in
  Unix.putenv "CR_JOBS" "1";
  check "report output non-trivial" true (String.length seq > 1000);
  Alcotest.(check string) "CR_JOBS=4 output = CR_JOBS=1 output" seq par

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_scc_mutual_reach;
      prop_bfs_path_agree;
      prop_oracle_eq_fresh_bfs;
      prop_par_map_eq_seq;
      prop_csr_reach_agree;
      prop_csr_scc_agree;
      prop_csr_paths_agree;
      prop_csr_fair_agree;
      prop_classify_jobs_invariant;
    ]

let () =
  Alcotest.run "checker"
    [
      ( "reach",
        [
          Alcotest.test_case "forward" `Quick test_forward;
          Alcotest.test_case "backward" `Quick test_backward;
        ] );
      ( "scc",
        [
          Alcotest.test_case "components" `Quick test_scc;
          Alcotest.test_case "acyclic_within" `Quick test_acyclic_within;
        ] );
      ( "paths",
        [
          Alcotest.test_case "bfs" `Quick test_bfs;
          Alcotest.test_case "shortest_nonempty" `Quick test_shortest_nonempty;
          Alcotest.test_case "shortest_path" `Quick test_shortest_path;
          Alcotest.test_case "longest_within" `Quick test_longest_within;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "CR_JOBS invariance of Report.all" `Quick
            test_report_jobs_invariant;
        ] );
      ("properties", qcheck_cases);
    ]
