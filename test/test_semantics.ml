(* Unit and property tests for cr_semantics: symbolic systems, explicit
   compilation, computations, convergence isomorphism, abstractions. *)

open Cr_semantics

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A small chain system 0 -> 1 -> 2 -> 3 with a branch 1 -> 3. *)
let chain =
  System.make ~name:"chain" ~states:[ 0; 1; 2; 3 ]
    ~step:(function 0 -> [ 1 ] | 1 -> [ 2; 3 ] | 2 -> [ 3 ] | _ -> [])
    ~is_initial:(fun s -> s = 0)
    ~pp:Fmt.int ()

let test_explicit_basics () =
  let e = Explicit.of_system chain in
  check_int "states" 4 (Explicit.num_states e);
  check_int "transitions" 4 (Explicit.num_transitions e);
  check "initial 0" true (Explicit.is_initial e (Explicit.find e 0));
  check "terminal 3" true (Explicit.is_terminal e (Explicit.find e 3));
  check "edge 1->3" true (Explicit.has_edge e (Explicit.find e 1) (Explicit.find e 3));
  check "no edge 0->2" false
    (Explicit.has_edge e (Explicit.find e 0) (Explicit.find e 2));
  check_int "initials" 1 (Array.length (Explicit.initials e))

let test_self_loops_dropped () =
  let sys =
    System.make ~name:"loop" ~states:[ 0; 1 ]
      ~step:(function 0 -> [ 0; 1 ] | _ -> [ 1 ])
      ~is_initial:(fun _ -> true) ~pp:Fmt.int ()
  in
  let e = Explicit.of_system sys in
  check_int "only 0->1 remains" 1 (Explicit.num_transitions e);
  check "1 terminal after loop removal" true
    (Explicit.is_terminal e (Explicit.find e 1))

let test_duplicate_states_rejected () =
  let sys =
    System.make ~name:"dup" ~states:[ 0; 0 ] ~step:(fun _ -> [])
      ~is_initial:(fun _ -> true) ~pp:Fmt.int ()
  in
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Explicit: duplicate state in enumeration of dup")
    (fun () -> ignore (Explicit.of_system sys))

let test_escaping_step_rejected () =
  let sys =
    System.make ~name:"escape" ~states:[ 0 ] ~step:(fun _ -> [ 7 ])
      ~is_initial:(fun _ -> true) ~pp:Fmt.int ()
  in
  check "raises Unknown_state" true
    (try
       ignore (Explicit.of_system sys);
       false
     with Explicit.Unknown_state _ -> true)

let test_box_union () =
  let s1 =
    System.make ~name:"s1" ~states:[ 0; 1; 2 ]
      ~step:(function 0 -> [ 1 ] | _ -> [])
      ~is_initial:(fun s -> s = 0) ~pp:Fmt.int ()
  in
  let s2 =
    System.make ~name:"s2" ~states:[ 0; 1; 2 ]
      ~step:(function 1 -> [ 2 ] | _ -> [])
      ~is_initial:(fun s -> s = 1) ~pp:Fmt.int ()
  in
  let b = Explicit.of_system (System.box s1 s2) in
  check_int "union has both edges" 2 (Explicit.num_transitions b);
  (* initial states come from the left operand *)
  check "initial from left" true (Explicit.is_initial b (Explicit.find b 0));
  check "not initial from right" false (Explicit.is_initial b (Explicit.find b 1));
  (* explicit-level box agrees *)
  let e1 = Explicit.of_system s1 and e2 = Explicit.of_system s2 in
  let be = Explicit.box e1 e2 in
  check "explicit box same transitions" true (Explicit.same_transitions b be)

let test_box_priority () =
  let base =
    System.make ~name:"base" ~states:[ 0; 1; 2 ]
      ~step:(function 0 -> [ 1 ] | _ -> [])
      ~is_initial:(fun s -> s = 0) ~pp:Fmt.int ()
  in
  let wrapper =
    System.make ~name:"w" ~states:[ 0; 1; 2 ]
      ~step:(function 0 -> [ 2 ] | _ -> [])
      ~is_initial:(fun s -> s = 0) ~pp:Fmt.int ()
  in
  let p = Explicit.of_system (System.box_priority base wrapper) in
  (* wrapper preempts: only 0 -> 2 *)
  check_int "only wrapper edge at 0" 1 (Explicit.num_transitions p);
  check "0->2" true (Explicit.has_edge p (Explicit.find p 0) (Explicit.find p 2));
  (* a no-op wrapper does not preempt *)
  let noop =
    System.make ~name:"noop" ~states:[ 0; 1; 2 ]
      ~step:(function 0 -> [ 0 ] | _ -> [])
      ~is_initial:(fun s -> s = 0) ~pp:Fmt.int ()
  in
  let q = Explicit.of_system (System.box_priority base noop) in
  check "base acts when wrapper is a no-op" true
    (Explicit.has_edge q (Explicit.find q 0) (Explicit.find q 1))

let test_with_initials () =
  let e = Explicit.of_system chain in
  let e' = Explicit.with_initials e (fun s -> s >= 2) in
  check_int "two initials now" 2 (Array.length (Explicit.initials e'))

(* Computations *)

let test_paths () =
  let e = Explicit.of_system chain in
  let idx v = Explicit.find e v in
  check "path" true (Computation.is_path e [ idx 0; idx 1; idx 2; idx 3 ]);
  check "not a path" false (Computation.is_path e [ idx 0; idx 2 ]);
  check "computation ends terminal" true
    (Computation.is_computation e [ idx 0; idx 1; idx 3 ]);
  check "non-maximal is not a computation" false
    (Computation.is_computation e [ idx 0; idx 1 ])

let test_convergence_isomorphism () =
  (* the paper's own example: s1 s3 s6 vs s1 s2 s3 s4 s5 s6 *)
  check "paper positive example" true
    (Computation.is_convergence_isomorphism ~candidate:[ 1; 3; 6 ]
       ~of_:[ 1; 2; 3; 4; 5; 6 ]);
  (* and the negative: s1 s3 s5 s6 vs s1 s2 s5 s6 (insertion not allowed) *)
  check "paper negative example" false
    (Computation.is_convergence_isomorphism ~candidate:[ 1; 3; 5; 6 ]
       ~of_:[ 1; 2; 5; 6 ]);
  check "first state must match" false
    (Computation.is_convergence_isomorphism ~candidate:[ 2; 6 ]
       ~of_:[ 1; 2; 6 ]);
  check "last state must match" false
    (Computation.is_convergence_isomorphism ~candidate:[ 1; 2 ]
       ~of_:[ 1; 2; 6 ]);
  check "reflexive" true
    (Computation.is_convergence_isomorphism ~candidate:[ 1; 2; 3 ]
       ~of_:[ 1; 2; 3 ])

let test_omissions () =
  Alcotest.(check (option int))
    "three dropped" (Some 3)
    (Computation.omissions ~candidate:[ 1; 3; 6 ] ~of_:[ 1; 2; 3; 4; 5; 6 ]);
  Alcotest.(check (option int))
    "not a subsequence" None
    (Computation.omissions ~candidate:[ 3; 1 ] ~of_:[ 1; 2; 3 ])

let test_stutter_normalize () =
  Alcotest.(check (list int))
    "collapse" [ 1; 2; 3 ]
    (Computation.stutter_normalize [ 1; 1; 2; 2; 2; 3 ]);
  Alcotest.(check (list int)) "idempotent" [] (Computation.stutter_normalize [])

let test_bounded_computations () =
  let e = Explicit.of_system chain in
  let idx v = Explicit.find e v in
  let cs = Computation.bounded_computations e ~start:(idx 0) ~depth:10 in
  (* two maximal computations: 0123 and 013 *)
  check_int "two computations" 2 (List.length cs);
  check "all end at 3" true
    (List.for_all
       (fun p -> match List.rev p with x :: _ -> x = idx 3 | [] -> false)
       cs)

let test_random_walk () =
  let e = Explicit.of_system chain in
  let rng = Random.State.make [| 7 |] in
  let w = Computation.random_walk e ~rng ~start:(Explicit.find e 0) ~max_len:100 in
  check "walk is a path" true (Computation.is_path e w);
  check "walk reaches terminal" true (Computation.is_computation e w)

(* Abstractions *)

let test_abstraction () =
  let parity =
    System.make ~name:"parity" ~states:[ 0; 1 ]
      ~step:(function 0 -> [ 1 ] | _ -> [ 0 ])
      ~is_initial:(fun s -> s = 0) ~pp:Fmt.int ()
  in
  let e = Explicit.of_system chain in
  let p = Explicit.of_system parity in
  let a = Abstraction.make ~name:"mod2" (fun v -> v mod 2) in
  let table = Abstraction.tabulate a e p in
  check_int "0 maps to 0" (Explicit.find p 0) table.(Explicit.find e 0);
  check_int "3 maps to 1" (Explicit.find p 1) table.(Explicit.find e 3);
  check "onto" true (Abstraction.is_onto table ~num_abstract:(Explicit.num_states p));
  check "identity table" true (Abstraction.identity_table 3 = [| 0; 1; 2 |]);
  (* non-total mapping raises *)
  let bad = Abstraction.make ~name:"bad" (fun v -> v + 100) in
  check "not total" true
    (try
       ignore (Abstraction.tabulate bad e p);
       false
     with Abstraction.Not_total _ -> true)

let test_abstraction_compose () =
  let a1 = Abstraction.make ~name:"half" (fun v -> v / 2) in
  let a2 = Abstraction.make ~name:"mod2" (fun v -> v mod 2) in
  let c = Abstraction.compose a2 a1 in
  check_int "compose applies inner first" ((7 / 2) mod 2) (Abstraction.apply c 7)

(* DOT export *)

let test_dot_export () =
  let e = Explicit.of_system chain in
  let dot = Dot.to_string ~highlight:(fun i -> if i = 0 then Some "red" else None) e in
  check "digraph header" true
    (String.length dot > 0 && String.sub dot 0 7 = "digraph");
  (* one node line per state, one edge line per transition *)
  let count_sub needle hay =
    let n = String.length needle and h = String.length hay in
    let c = ref 0 in
    for i = 0 to h - n do
      if String.sub hay i n = needle then incr c
    done;
    !c
  in
  check_int "edges" (Explicit.num_transitions e) (count_sub " -> " dot);
  check_int "one highlight" 1 (count_sub "fillcolor=\"red\"" dot);
  check_int "one initial (penwidth)" 1 (count_sub "penwidth=2" dot);
  check "size guard" true
    (try
       ignore (Dot.to_string ~max_states:2 e);
       false
     with Invalid_argument _ -> true)

(* qcheck properties for the sequence notions *)

let gen_small_list = QCheck2.Gen.(list_size (int_bound 8) (int_bound 5))

let prop_subsequence_refl =
  QCheck2.Test.make ~name:"subsequence is reflexive" ~count:200 gen_small_list
    (fun l -> Computation.is_subsequence ~sub:l ~of_:l)

let prop_subsequence_drop =
  QCheck2.Test.make ~name:"dropping any element keeps subsequence" ~count:200
    QCheck2.Gen.(pair gen_small_list (int_bound 20))
    (fun (l, i) ->
      match l with
      | [] -> true
      | _ ->
          let i = i mod List.length l in
          let dropped = List.filteri (fun j _ -> j <> i) l in
          Computation.is_subsequence ~sub:dropped ~of_:l)

let prop_conv_isom_refl =
  QCheck2.Test.make ~name:"convergence isomorphism is reflexive" ~count:200
    gen_small_list (fun l -> Computation.is_convergence_isomorphism ~candidate:l ~of_:l)

let prop_conv_isom_interior_drop =
  QCheck2.Test.make ~name:"dropping interior states preserves conv isom"
    ~count:200
    QCheck2.Gen.(pair gen_small_list (int_bound 20))
    (fun (l, i) ->
      if List.length l < 3 then true
      else
        let i = 1 + (i mod (List.length l - 2)) in
        let dropped = List.filteri (fun j _ -> j <> i) l in
        Computation.is_convergence_isomorphism ~candidate:dropped ~of_:l)

let prop_normalize_idempotent =
  QCheck2.Test.make ~name:"stutter_normalize is idempotent" ~count:200
    gen_small_list (fun l ->
      let n = Computation.stutter_normalize l in
      Computation.stutter_normalize n = n)

(* qcheck properties for the indexed hot path: mixed-radix rank/unrank
   and the binary-search edge membership test. *)

let gen_layout =
  QCheck2.Gen.(
    let* doms = list_size (int_range 1 5) (int_range 1 4) in
    return (Cr_guarded.Layout.make (List.mapi (fun i d -> (Printf.sprintf "v%d" i, d)) doms)))

let prop_rank_unrank_roundtrip =
  QCheck2.Test.make ~name:"Layout: rank/unrank roundtrip both ways" ~count:200
    QCheck2.Gen.(pair gen_layout (int_bound 10_000))
    (fun (l, r) ->
      let n = Cr_guarded.Layout.num_states l in
      let r = r mod n in
      let s = Cr_guarded.Layout.unrank l r in
      Cr_guarded.Layout.valid l s
      && Cr_guarded.Layout.rank l s = r
      && Cr_guarded.Layout.unrank l (Cr_guarded.Layout.rank l s) = s)

let prop_rank_matches_enumerate =
  QCheck2.Test.make ~name:"Layout: rank agrees with enumerate order" ~count:50
    gen_layout (fun l ->
      List.for_all
        (fun (i, s) -> Cr_guarded.Layout.rank l s = i && Cr_guarded.Layout.unrank l i = s)
        (List.mapi (fun i s -> (i, s)) (Cr_guarded.Layout.enumerate l)))

let gen_graph_sys =
  QCheck2.Gen.(
    let* n = int_range 1 10 in
    let* edges =
      list_size (int_bound 25) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    in
    return (n, List.filter (fun (i, j) -> i <> j) edges))

let prop_has_edge_binary_eq_linear =
  QCheck2.Test.make ~name:"Explicit.has_edge = linear successor scan" ~count:100
    gen_graph_sys (fun (n, edges) ->
      let sys =
        System.make ~name:"rand"
          ~states:(List.init n Fun.id)
          ~step:(fun i -> List.filter_map (fun (a, b) -> if a = i then Some b else None) edges)
          ~is_initial:(fun _ -> true) ~pp:Fmt.int ()
      in
      let e = Explicit.of_system sys in
      let ok = ref true in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          let linear = Array.exists (fun k -> k = j) (Explicit.successors e i) in
          if Explicit.has_edge e i j <> linear then ok := false
        done
      done;
      !ok)

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_subsequence_refl;
      prop_subsequence_drop;
      prop_conv_isom_refl;
      prop_conv_isom_interior_drop;
      prop_normalize_idempotent;
      prop_rank_unrank_roundtrip;
      prop_rank_matches_enumerate;
      prop_has_edge_binary_eq_linear;
    ]

let () =
  Alcotest.run "semantics"
    [
      ( "explicit",
        [
          Alcotest.test_case "basics" `Quick test_explicit_basics;
          Alcotest.test_case "self-loops dropped" `Quick test_self_loops_dropped;
          Alcotest.test_case "duplicate states rejected" `Quick
            test_duplicate_states_rejected;
          Alcotest.test_case "escaping step rejected" `Quick
            test_escaping_step_rejected;
          Alcotest.test_case "box union" `Quick test_box_union;
          Alcotest.test_case "box priority" `Quick test_box_priority;
          Alcotest.test_case "with_initials" `Quick test_with_initials;
          Alcotest.test_case "dot export" `Quick test_dot_export;
        ] );
      ( "computation",
        [
          Alcotest.test_case "paths" `Quick test_paths;
          Alcotest.test_case "convergence isomorphism (paper examples)" `Quick
            test_convergence_isomorphism;
          Alcotest.test_case "omissions" `Quick test_omissions;
          Alcotest.test_case "stutter normalize" `Quick test_stutter_normalize;
          Alcotest.test_case "bounded computations" `Quick
            test_bounded_computations;
          Alcotest.test_case "random walk" `Quick test_random_walk;
        ] );
      ( "abstraction",
        [
          Alcotest.test_case "tabulate and onto" `Quick test_abstraction;
          Alcotest.test_case "compose" `Quick test_abstraction_compose;
        ] );
      ("properties", qcheck_cases);
    ]
