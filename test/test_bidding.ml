(* Tests for the bidding-server example (E3): spec tolerance, sorted-list
   intolerance, and the graybox repair wrapper. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let test_spec_basics () =
  let s = Cr_bidding.Spec.create ~k:3 in
  Alcotest.(check (list int)) "zeros" [ 0; 0; 0 ] (Cr_bidding.Spec.stored s);
  let s = Cr_bidding.Spec.run s [ 5; 2; 7; 1 ] in
  Alcotest.(check (list int)) "best three" [ 2; 5; 7 ] (Cr_bidding.Spec.stored s);
  Alcotest.(check (list int)) "winners best first" [ 7; 5; 2 ]
    (Cr_bidding.Spec.winners s);
  check_int "minimum" 2 (Cr_bidding.Spec.minimum s);
  (* low bid ignored *)
  let s' = Cr_bidding.Spec.bid 1 s in
  check "low bid ignored" true (Cr_bidding.Spec.stored s' = Cr_bidding.Spec.stored s);
  check_int "arity" 3 (Cr_bidding.Spec.arity s)

let test_spec_diff () =
  let a = Cr_bidding.Spec.of_list ~k:3 [ 1; 2; 3 ] in
  let b = Cr_bidding.Spec.of_list ~k:3 [ 1; 2; 9 ] in
  check_int "one apart" 1 (Cr_bidding.Spec.diff a b);
  check_int "zero from self" 0 (Cr_bidding.Spec.diff a a);
  let c = Cr_bidding.Spec.of_list ~k:3 [ 7; 8; 9 ] in
  check_int "all apart" 3 (Cr_bidding.Spec.diff a c)

let test_impl_equals_spec_fault_free () =
  (* exhaustive over short bid sequences *)
  let b = 4 and len = 5 in
  let rec seqs l = if l = 0 then [ [] ] else
      List.concat_map (fun rest -> List.init (b + 1) (fun v -> v :: rest)) (seqs (l - 1))
  in
  List.iter
    (fun seq ->
      let s = Cr_bidding.Spec.run (Cr_bidding.Spec.create ~k:2) seq in
      let i = Cr_bidding.Sorted_impl.run (Cr_bidding.Sorted_impl.create ~k:2) seq in
      check "same winners" true
        (Cr_bidding.Spec.winners s = Cr_bidding.Sorted_impl.winners i))
    (seqs len)

(* the paper's MAX_INT blocking scenario *)
let test_head_corruption_blocks () =
  let max_int_bid = 1000 in
  let i = Cr_bidding.Sorted_impl.of_list ~k:3 [ 2; 5; 7 ] in
  let corrupted = Cr_bidding.Sorted_impl.corrupt ~index:0 ~value:max_int_bid i in
  check "no longer sorted" false (Cr_bidding.Sorted_impl.is_sorted corrupted);
  (* every new bid below max_int is now rejected *)
  let after = Cr_bidding.Sorted_impl.run corrupted [ 9; 50; 999 ] in
  Alcotest.(check (list int)) "blocked" [ 1000; 5; 7 ]
    (Cr_bidding.Sorted_impl.raw_list after);
  (* the spec under the same corruption keeps accepting *)
  let s = Cr_bidding.Spec.corrupt ~index:0 ~value:max_int_bid
      (Cr_bidding.Spec.of_list ~k:3 [ 2; 5; 7 ]) in
  let s_after = Cr_bidding.Spec.run s [ 9; 50; 999 ] in
  check "spec still accepts" true (List.mem 999 (Cr_bidding.Spec.stored s_after))

let test_wrapper_restores () =
  let max_int_bid = 1000 in
  let i = Cr_bidding.Sorted_impl.of_list ~k:3 [ 2; 5; 7 ] in
  let corrupted = Cr_bidding.Sorted_impl.corrupt ~index:0 ~value:max_int_bid i in
  let after = Cr_bidding.Wrapper.run corrupted [ 9; 50; 999 ] in
  check "999 accepted" true (List.mem 999 (Cr_bidding.Sorted_impl.raw_list after));
  check "sorted again" true (Cr_bidding.Sorted_impl.is_sorted after)

(* qcheck: the spec's (k-1)-tolerance as the diff<=1 simulation bound *)
let gen_campaign =
  QCheck2.Gen.(
    let* k = int_range 1 4 in
    let* base = list_repeat k (int_bound 9) in
    let* idx = int_bound (k - 1) in
    let* v = int_bound 9 in
    let* seq = list_size (int_bound 12) (int_bound 9) in
    return (k, base, idx, v, seq))

let prop_spec_tolerance =
  QCheck2.Test.make ~name:"spec: single corruption diverges by at most one bid"
    ~count:1000 gen_campaign (fun (k, base, idx, v, seq) ->
      let s = Cr_bidding.Spec.of_list ~k base in
      let c = Cr_bidding.Spec.corrupt ~index:idx ~value:v s in
      Cr_bidding.Spec.diff (Cr_bidding.Spec.run s seq) (Cr_bidding.Spec.run c seq)
      <= 1)

let prop_wrapped_tolerance =
  QCheck2.Test.make
    ~name:"wrapped impl: single corruption diverges by at most one bid"
    ~count:1000 gen_campaign (fun (k, base, idx, v, seq) ->
      let i = Cr_bidding.Sorted_impl.of_list ~k base in
      let c = Cr_bidding.Sorted_impl.corrupt ~index:idx ~value:v i in
      let r1 = Cr_bidding.Wrapper.run i seq in
      let r2 = Cr_bidding.Wrapper.run c seq in
      Cr_bidding.Spec.diff
        (Cr_bidding.Sorted_impl.to_spec r1)
        (Cr_bidding.Sorted_impl.to_spec r2)
      <= 1)

let prop_impl_agrees_with_spec =
  QCheck2.Test.make ~name:"impl = spec on fault-free runs" ~count:1000
    QCheck2.Gen.(
      let* k = int_range 1 4 in
      let* seq = list_size (int_bound 15) (int_bound 9) in
      return (k, seq))
    (fun (k, seq) ->
      Cr_bidding.Spec.winners (Cr_bidding.Spec.run (Cr_bidding.Spec.create ~k) seq)
      = Cr_bidding.Sorted_impl.winners
          (Cr_bidding.Sorted_impl.run (Cr_bidding.Sorted_impl.create ~k) seq))

let test_experiment_verdicts () =
  let v = Cr_experiments.Intro_exps.bidding_experiment () in
  check "fault-free refinement" true v.Cr_experiments.Intro_exps.impl_refines_init;
  check "[impl ⪯ spec] fails" false v.Cr_experiments.Intro_exps.impl_convergence;
  check "a blocked terminal exists" true
    (v.Cr_experiments.Intro_exps.impl_blocked_terminal <> None);
  check "wrapped is a convergence refinement" true
    v.Cr_experiments.Intro_exps.wrapped_convergence;
  check "wrapped is not an everywhere refinement (repair stutters)" true
    v.Cr_experiments.Intro_exps.wrapped_not_everywhere;
  check "spec diff bound holds" true
    v.Cr_experiments.Intro_exps.spec_diff_bound_holds;
  check "impl violates the bound" true
    v.Cr_experiments.Intro_exps.impl_diff_bound_fails

let qcheck_cases =
  List.map QCheck_alcotest.to_alcotest
    [ prop_spec_tolerance; prop_wrapped_tolerance; prop_impl_agrees_with_spec ]

let () =
  Alcotest.run "bidding"
    [
      ( "spec",
        [
          Alcotest.test_case "basics" `Quick test_spec_basics;
          Alcotest.test_case "diff" `Quick test_spec_diff;
        ] );
      ( "impl",
        [
          Alcotest.test_case "fault-free equivalence (exhaustive)" `Quick
            test_impl_equals_spec_fault_free;
          Alcotest.test_case "head corruption blocks (paper)" `Quick
            test_head_corruption_blocks;
          Alcotest.test_case "wrapper restores tolerance" `Quick
            test_wrapper_restores;
        ] );
      ( "experiment",
        [ Alcotest.test_case "E3 verdicts" `Quick test_experiment_verdicts ] );
      ("properties", qcheck_cases);
    ]
