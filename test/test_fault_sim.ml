(* Tests for the simulation layer: daemons, traces, convergence stats and
   fault-injection episodes on the stabilizing ring systems. *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let n = 3
let d3 () = Cr_tokenring.Btr3.dijkstra3 n
let one_token s = Cr_tokenring.Btr3.one_token n s

let test_random_daemon_converges () =
  let p = d3 () in
  let stats =
    Cr_sim.Runner.convergence_stats ~samples:100 ~max_steps:10_000 ~seed:1
      ~converged:one_token
      (fun i -> Cr_sim.Daemon.random ~seed:i)
      p
  in
  check_int "all samples converge" 100 stats.Cr_sim.Runner.converged;
  check "mean positive" true (stats.Cr_sim.Runner.mean_steps >= 0.0)

let test_round_robin_converges () =
  let p = d3 () in
  let stats =
    Cr_sim.Runner.convergence_stats ~samples:50 ~max_steps:10_000 ~seed:2
      ~converged:one_token
      (fun _ -> Cr_sim.Daemon.round_robin ())
      p
  in
  check_int "all samples converge" 50 stats.Cr_sim.Runner.converged

let test_adversarial_matches_checker () =
  (* The adversarial daemon with the exact longest-path potential realizes
     the model checker's worst case. *)
  let p = d3 () in
  let e = Cr_guarded.Program.to_explicit p in
  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let alpha = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) e btr in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:btr () in
  let bound =
    match r.Cr_core.Stabilize.worst_case_recovery with
    | Some b -> b
    | None -> Alcotest.fail "expected stabilization"
  in
  (* potential = exact remaining steps (from the checker's internals,
     recomputed here via longest_within) *)
  let succ = Cr_checker.Reach.of_explicit e in
  let mask =
    Cr_kernel.Bitset.of_bool_array
      (Array.init (Cr_semantics.Explicit.num_states e) (fun i ->
           not (one_token (Cr_semantics.Explicit.state e i))))
  in
  let depth = Cr_checker.Paths.longest_within_csr ~succ ~mask in
  let potential s = depth.(Cr_semantics.Explicit.find e s) in
  let daemon = Cr_sim.Daemon.adversarial ~name:"worst" ~potential in
  (* start from a state realizing the bound *)
  let start = ref None in
  Array.iteri (fun i v -> if v = bound && !start = None then start := Some i) depth;
  match !start with
  | None -> Alcotest.fail "no state realizes the bound"
  | Some i ->
      let s0 = Cr_semantics.Explicit.state e i in
      (match
         Cr_sim.Runner.steps_to ~converged:one_token daemon p ~start:s0
           ~max_steps:(bound * 2)
       with
      | Some k -> check_int "adversarial run realizes the exact worst case" bound k
      | None -> Alcotest.fail "adversarial run did not converge")

let test_helpful_daemon_not_slower () =
  let p = d3 () in
  let e = Cr_guarded.Program.to_explicit p in
  let succ = Cr_checker.Reach.of_explicit e in
  let mask =
    Cr_kernel.Bitset.of_bool_array
      (Array.init (Cr_semantics.Explicit.num_states e) (fun i ->
           not (one_token (Cr_semantics.Explicit.state e i))))
  in
  let depth = Cr_checker.Paths.longest_within_csr ~succ ~mask in
  let potential s = depth.(Cr_semantics.Explicit.find e s) in
  let adv = Cr_sim.Daemon.adversarial ~name:"worst" ~potential in
  let help = Cr_sim.Daemon.helpful ~name:"best" ~potential in
  let rng = Random.State.make [| 5 |] in
  let layout = Cr_guarded.Program.layout p in
  for _ = 1 to 20 do
    let s0 = Cr_fault.Injector.randomize ~rng layout in
    let k_adv =
      Cr_sim.Runner.steps_to ~converged:one_token adv p ~start:s0 ~max_steps:10_000
    in
    let k_help =
      Cr_sim.Runner.steps_to ~converged:one_token help p ~start:s0 ~max_steps:10_000
    in
    match (k_adv, k_help) with
    | Some a, Some h -> check "helpful <= adversarial" true (h <= a)
    | _ -> Alcotest.fail "both daemons must converge"
  done

let test_trace_records_actions () =
  let p = d3 () in
  let start = Cr_tokenring.Btr3.canonical n in
  let d = Cr_sim.Daemon.round_robin () in
  let t = Cr_sim.Runner.run d p ~start ~max_steps:10 in
  check_int "ten steps" 10 (List.length t.Cr_sim.Runner.steps);
  check "labels recorded" true
    (List.for_all
       (fun e -> String.length e.Cr_sim.Runner.action > 0)
       t.Cr_sim.Runner.steps)

let test_fault_episode_recovers () =
  (* inject 1..3 faults into a legitimate state, run, verify recovery and
     closure (once converged, stays converged) *)
  let p = d3 () in
  let layout = Cr_guarded.Program.layout p in
  let rng = Random.State.make [| 9 |] in
  let d = Cr_sim.Daemon.random ~seed:99 in
  for k = 1 to 3 do
    for _ = 1 to 30 do
      let s0 =
        Cr_fault.Injector.corrupt_k ~rng layout (Cr_tokenring.Btr3.canonical n) ~k
      in
      let t = Cr_sim.Runner.run d p ~start:s0 ~max_steps:2000 in
      (* first converged point within this very trace *)
      let states = List.map (fun e -> e.Cr_sim.Runner.state) t.Cr_sim.Runner.steps in
      let rec split_at_conv acc = function
        | [] -> None
        | s :: rest when one_token s -> Some (List.rev (s :: acc), rest)
        | s :: rest -> split_at_conv (s :: acc) rest
      in
      (match split_at_conv [] (s0 :: states) with
      | None -> Alcotest.fail "no recovery after faults"
      | Some (_, tail) ->
          check "closed after convergence" true (List.for_all one_token tail))
    done
  done

let test_synchronous_daemon () =
  (* Dijkstra's systems are designed for a central daemon; the synchronous
     daemon still makes progress on the canonical state. *)
  let p = d3 () in
  let s = Cr_tokenring.Btr3.canonical n in
  match Cr_sim.Daemon.synchronous_step p s with
  | None -> Alcotest.fail "synchronous step expected"
  | Some s' -> check "state changed" true (s' <> s)

let test_kstate_sim () =
  let k = n + 1 in
  let p = Cr_tokenring.Kstate.program ~n ~k in
  let stats =
    Cr_sim.Runner.convergence_stats ~samples:100 ~max_steps:100_000 ~seed:3
      ~converged:(fun s -> Cr_tokenring.Kstate.token_count n s = 1)
      (fun i -> Cr_sim.Daemon.random ~seed:(50 + i))
      p
  in
  check_int "all converge (K = N+1)" 100 stats.Cr_sim.Runner.converged

let () =
  Alcotest.run "fault-sim"
    [
      ( "daemons",
        [
          Alcotest.test_case "random converges" `Quick test_random_daemon_converges;
          Alcotest.test_case "round robin converges" `Quick
            test_round_robin_converges;
          Alcotest.test_case "adversarial realizes worst case" `Quick
            test_adversarial_matches_checker;
          Alcotest.test_case "helpful beats adversarial" `Quick
            test_helpful_daemon_not_slower;
          Alcotest.test_case "synchronous step" `Quick test_synchronous_daemon;
        ] );
      ( "episodes",
        [
          Alcotest.test_case "traces" `Quick test_trace_records_actions;
          Alcotest.test_case "fault episodes recover + closure" `Quick
            test_fault_episode_recovers;
          Alcotest.test_case "K-state simulation" `Quick test_kstate_sim;
        ] );
    ]
