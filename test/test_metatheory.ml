(* Property-based metatheory tests (experiment E15): on randomly generated
   finite systems, the checker verdicts must respect the paper's theorems.
   Because the checkers are sound decision procedures, a theorem violation
   (premises verified, conclusion refuted) would expose a bug in either
   the checkers or the formalization. *)

open Cr_semantics

(* ---- random system generation over a shared state space 0..n-1 ---- *)

type raw = { n : int; edges : (int * int) list; inits : int list }

let gen_raw =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* m = int_bound 12 in
    let* edges = list_size (return m) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    let* i0 = int_bound (n - 1) in
    let* extra_inits = list_size (int_bound 2) (int_bound (n - 1)) in
    return { n; edges; inits = i0 :: extra_inits })

let explicit_of { n; edges; inits } name =
  let step s =
    List.filter_map (fun (i, j) -> if i = s && i <> j then Some j else None) edges
  in
  Explicit.of_system
    (System.make ~name
       ~states:(List.init n (fun i -> i))
       ~step
       ~is_initial:(fun s -> List.mem s inits)
       ~pp:Fmt.int ())

(* a sub-system of [raw]: keep a random subset of the edges *)
let gen_sub raw =
  QCheck2.Gen.(
    let* keep = list_repeat (List.length raw.edges) bool in
    let edges =
      List.filteri
        (fun i _ -> List.nth keep i)
        raw.edges
    in
    return { raw with edges })

let gen_pair =
  QCheck2.Gen.(
    let* a = gen_raw in
    let* c = gen_sub a in
    return (c, a))

(* rescale a raw system onto the state space of [a] *)
let rescale ~onto:(a : raw) (w : raw) =
  {
    n = a.n;
    edges = List.map (fun (i, j) -> (i mod a.n, j mod a.n)) w.edges;
    inits = a.inits;
  }

let gen_triple =
  QCheck2.Gen.(
    let* a = gen_raw in
    let* c = gen_sub a in
    let* w = gen_raw in
    return (c, a, rescale ~onto:a w))

(* ---- properties ---- *)

let prop_strength_chain =
  QCheck2.Test.make ~name:"everywhere => convergence => ee => init" ~count:300
    gen_pair (fun (craw, araw) ->
      let c = explicit_of craw "C" and a = explicit_of araw "A" in
      Cr_core.Theorems.strength_chain ~c ~a ())

let prop_theorem_0 =
  QCheck2.Test.make ~name:"Theorem 0 never refuted" ~count:300 gen_pair
    (fun (craw, araw) ->
      let c = explicit_of craw "C" and a = explicit_of araw "A" in
      Cr_core.Theorems.theorem_0 ~c ~a ~b:a () <> Cr_core.Theorems.Refuted)

let prop_theorem_1 =
  QCheck2.Test.make ~name:"Theorem 1 never refuted" ~count:300 gen_pair
    (fun (craw, araw) ->
      let c = explicit_of craw "C" and a = explicit_of araw "A" in
      Cr_core.Theorems.theorem_1 ~c ~a ~b:a () <> Cr_core.Theorems.Refuted)

let prop_theorem_3 =
  QCheck2.Test.make ~name:"Theorem 3 never refuted" ~count:300 gen_triple
    (fun (craw, araw, wraw) ->
      let c = explicit_of craw "C"
      and a = explicit_of araw "A"
      and w = explicit_of wraw "W" in
      Cr_core.Theorems.theorem_3 ~box:Explicit.box ~c ~a ~w ()
      <> Cr_core.Theorems.Refuted)

let prop_theorem_5 =
  QCheck2.Test.make ~name:"Theorem 5 never refuted" ~count:200
    QCheck2.Gen.(
      let* a = gen_raw in
      let* c = gen_sub a in
      let* w = gen_raw in
      let w = rescale ~onto:a w in
      let* w' = gen_sub w in
      return (c, a, w, w'))
    (fun (craw, araw, wraw, w'raw) ->
      let c = explicit_of craw "C"
      and a = explicit_of araw "A"
      and w = explicit_of wraw "W"
      and w' = explicit_of w'raw "W'" in
      Cr_core.Theorems.theorem_5 ~box:Explicit.box ~c ~a ~w ~w' ()
      <> Cr_core.Theorems.Refuted)

(* When the convergence-refinement checker accepts, every finite maximal
   computation of C must actually be a convergence isomorphism of some
   computation of A.  Checked by exhaustive enumeration on acyclic systems
   (DAG generator), where both computation sets are finite. *)
let gen_dag_pair =
  QCheck2.Gen.(
    let* n = int_range 2 6 in
    let* m = int_bound 12 in
    let* raw_edges =
      list_size (return m) (pair (int_bound (n - 1)) (int_bound (n - 1)))
    in
    (* orient edges upward to force acyclicity *)
    let edges =
      List.filter_map
        (fun (i, j) ->
          if i = j then None else Some (min i j, max i j))
        raw_edges
    in
    let* i0 = int_bound (n - 1) in
    let a = { n; edges; inits = [ i0 ] } in
    let* c = gen_sub a in
    return (c, a))

let prop_convergence_witnesses =
  QCheck2.Test.make ~name:"accepted refinements have matching computations"
    ~count:300 gen_dag_pair (fun (craw, araw) ->
      let c = explicit_of craw "C" and a = explicit_of araw "A" in
      let r = Cr_core.Refine.convergence_refinement ~c ~a () in
      if not r.Cr_core.Refine.holds then true
      else begin
        let depth = Explicit.num_states a + 1 in
        let ok = ref true in
        for start = 0 to Explicit.num_states c - 1 do
          let cs = Computation.bounded_computations c ~start ~depth in
          let as_ = Computation.bounded_computations a ~start ~depth in
          List.iter
            (fun comp ->
              let matched =
                List.exists
                  (fun acomp ->
                    Computation.is_convergence_isomorphism ~candidate:comp
                      ~of_:acomp)
                  as_
              in
              if not matched then ok := false)
            cs
        done;
        !ok
      end)

(* Stabilization verdict cross-check: when the checker rejects with a cycle
   witness, the witness is a real cycle of C whose states can avoid
   converging forever. *)
let prop_cycle_witness_valid =
  QCheck2.Test.make ~name:"divergence witnesses are real cycles" ~count:300
    gen_pair (fun (craw, araw) ->
      let c = explicit_of craw "C" and a = explicit_of araw "A" in
      let r = Cr_core.Stabilize.stabilizing_to ~c ~a () in
      match r.Cr_core.Stabilize.bad_cycle with
      | None -> true
      | Some [] -> false
      | Some (first :: _ as cyc) ->
          (* consecutive edges exist and the cycle closes *)
          let rec edges_ok = function
            | [] -> true
            | [ last ] -> Explicit.has_edge c last first || last = first
            | x :: (y :: _ as rest) -> Explicit.has_edge c x y && edges_ok rest
          in
          edges_ok cyc)

(* When stabilization holds, random walks from every state end up (within
   the worst-case bound) in the legitimate behaviour of A. *)
let prop_stabilization_walks =
  QCheck2.Test.make ~name:"stabilizing systems converge on random walks"
    ~count:150 gen_pair (fun (craw, araw) ->
      let c = explicit_of craw "C" and a = explicit_of araw "A" in
      let r = Cr_core.Stabilize.stabilizing_to ~c ~a () in
      if not r.Cr_core.Stabilize.holds then true
      else
        match r.Cr_core.Stabilize.worst_case_recovery with
        | None -> true
        | Some bound ->
            let legit = Cr_checker.Reach.reachable_from_initial a in
            let rng = Random.State.make [| 11 |] in
            let ok = ref true in
            for start = 0 to Explicit.num_states c - 1 do
              for _rep = 1 to 3 do
                let w =
                  Computation.random_walk c ~rng ~start
                    ~max_len:(bound + Explicit.num_states c + 2)
                in
                (* after [bound] steps every visited state must be
                   legitimate *)
                List.iteri
                  (fun k s ->
                    if k > bound && not (Cr_kernel.Bitset.get legit s) then
                      ok := false)
                  w
              done
            done;
            !ok)

(* Brute-force cross-validation of the stabilization checker on acyclic
   instances, where "every computation of C has a suffix that is a suffix
   of some computation of A from an initial state" can be decided by
   exhaustive enumeration. *)
let suffixes l =
  let rec go = function [] -> [] | _ :: rest as l -> l :: go rest in
  go l

let prop_stabilization_bruteforce =
  QCheck2.Test.make ~name:"stabilization checker agrees with brute force"
    ~count:300 gen_dag_pair (fun (craw, araw) ->
      let c = explicit_of craw "C" and a = explicit_of araw "A" in
      let verdict = (Cr_core.Stabilize.stabilizing_to ~c ~a ()).Cr_core.Stabilize.holds in
      (* enumerate all computations of A from initial states and collect
         their suffixes *)
      let depth = Explicit.num_states a + 1 in
      let a_suffixes =
        Array.to_list (Explicit.initials a)
        |> List.concat_map (fun i -> Computation.bounded_computations a ~start:i ~depth)
        |> List.concat_map suffixes
        |> List.sort_uniq compare
      in
      (* brute force: every computation of C (from every state) must have
         some suffix in that set *)
      let brute = ref true in
      for start = 0 to Explicit.num_states c - 1 do
        List.iter
          (fun comp ->
            let ok = List.exists (fun s -> List.mem s a_suffixes) (suffixes comp) in
            if not ok then brute := false)
          (Computation.bounded_computations c ~start ~depth)
      done;
      verdict = !brute)

(* ---- abstraction-function metatheory: random quotient maps ----

   Generate an abstract system A over m states, an onto map q from n >= m
   concrete states, and a concrete C whose transitions project into A's
   (possibly with extra stuttering inside quotient classes).  The checkers
   must respect the theorems through the abstraction. *)

let gen_quotient =
  QCheck2.Gen.(
    let* m = int_range 2 4 in
    let* extra = int_bound 3 in
    let n = m + extra in
    (* onto map: first m states map to themselves, the rest randomly *)
    let* tail = list_repeat extra (int_bound (m - 1)) in
    let q = Array.of_list (List.init m (fun i -> i) @ tail) in
    let* a_edges = list_size (int_bound 8) (pair (int_bound (m - 1)) (int_bound (m - 1))) in
    let* c_edges = list_size (int_bound 12) (pair (int_bound (n - 1)) (int_bound (n - 1))) in
    let* i0 = int_bound (m - 1) in
    return (m, n, q, a_edges, c_edges, i0))

let prop_quotient_theorem1 =
  QCheck2.Test.make ~name:"Theorem 1 never refuted through abstractions"
    ~count:300 gen_quotient (fun (m, n, q, a_edges, c_edges, i0) ->
      ignore m;
      let a = explicit_of { n = m; edges = a_edges; inits = [ i0 ] } "A" in
      let inits = List.filter (fun i -> q.(i) = i0) (List.init n (fun i -> i)) in
      let c = explicit_of { n; edges = c_edges; inits } "C" in
      let alpha = Array.init n (fun i -> Explicit.find a q.(i)) in
      let p1 = (Cr_core.Refine.convergence_refinement ~alpha ~c ~a ()).Cr_core.Refine.holds in
      let p2 = (Cr_core.Stabilize.self_stabilizing a).Cr_core.Stabilize.holds in
      let concl = (Cr_core.Stabilize.stabilizing_to ~alpha ~c ~a ()).Cr_core.Stabilize.holds in
      (not (p1 && p2)) || concl)

let prop_quotient_strength =
  QCheck2.Test.make ~name:"strength chain through abstractions" ~count:300
    gen_quotient (fun (m, n, q, a_edges, c_edges, i0) ->
      let a = explicit_of { n = m; edges = a_edges; inits = [ i0 ] } "A" in
      let inits = List.filter (fun i -> q.(i) = i0) (List.init n (fun i -> i)) in
      let c = explicit_of { n; edges = c_edges; inits } "C" in
      let alpha = Array.init n (fun i -> Explicit.find a q.(i)) in
      Cr_core.Theorems.strength_chain ~alpha ~c ~a ())

let cases =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_strength_chain;
      prop_theorem_0;
      prop_theorem_1;
      prop_theorem_3;
      prop_theorem_5;
      prop_convergence_witnesses;
      prop_cycle_witness_valid;
      prop_stabilization_walks;
      prop_stabilization_bruteforce;
      prop_quotient_theorem1;
      prop_quotient_strength;
    ]

let () = Alcotest.run "metatheory" [ ("properties", cases) ]
