(* Sparse-vs-dense agreement for the pluggable Space engine.

   The contract under test (lib/semantics/space.mli): the sparse engine
   materializes exactly the init-reachable fragment of the dense space,
   with identical transition structure under the keys bijection — so
   every init-anchored verdict computed on a sparse compile equals the
   same verdict on the dense compile restricted to its reachable set.
   We check this across the whole registry at small ring sizes, and that
   sparse discovery is byte-invariant under the CR_JOBS fan-out. *)

open Cr_semantics
module Program = Cr_guarded.Program
module Registry = Cr_experiments.Registry
module Refine = Cr_core.Refine

let compile ~space e n = Program.to_explicit ~space (e.Registry.program n)

(* Fresh compile, no cache, with the job count forced. *)
let fresh ~space ~jobs e n =
  Compile_cache.bypass @@ fun () ->
  Cr_kernel.Par.with_jobs jobs @@ fun () -> compile ~space e n

(* Keep the dense side of each comparison small: the point of sparse is
   ring sizes where dense is NOT cheap, which is bench territory. *)
let dense_cap = 1_000_000

let cases =
  List.concat_map
    (fun e ->
      List.filter_map
        (fun n ->
          let layout = Program.layout (e.Registry.program n) in
          if Cr_guarded.Layout.num_states layout <= dense_cap then
            Some (e, n)
          else None)
        [ 3; 4 ])
    Registry.entries

let case_name (e, n) = Printf.sprintf "%s n=%d" e.Registry.name n

(* Dense-side reachable set, by an independent BFS over the compiled
   graph (deliberately not Space.discover: this is the oracle). *)
let reachable g =
  let seen = Array.make (Explicit.num_states g) false in
  let q = Queue.create () in
  let visit i = if not seen.(i) then (seen.(i) <- true; Queue.add i q) in
  Array.iter visit (Explicit.initials g);
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    Array.iter visit (Explicit.successors g i)
  done;
  seen

(* sparse index -> dense index, via the states themselves. *)
let bijection ~dense ~sparse =
  Array.init (Explicit.num_states sparse) (fun i ->
      Explicit.find dense (Explicit.state sparse i))

(* The dense graph restricted to its reachable set, re-indexed in sparse
   order: built from dense data alone, so [same_transitions] against the
   sparse compile is the full agreement statement. *)
let restriction (e, n) ~dense ~sparse ~bij =
  let m = Explicit.num_states sparse in
  let inv = Hashtbl.create m in
  Array.iteri (fun i d -> Hashtbl.replace inv d i) bij;
  let succ_lists =
    Array.init m (fun i ->
        Explicit.successors dense bij.(i)
        |> Array.to_list
        |> List.filter_map (fun d -> Hashtbl.find_opt inv d))
  in
  Explicit.of_edge_lists ~name:(Explicit.name sparse)
    ~states:(Array.init m (Explicit.state sparse))
    ~pp_state:(fun fmt s -> Fmt.string fmt (e.Registry.render n s))
    ~is_initial:(fun s -> Explicit.is_initial dense (Explicit.find dense s))
    ~succ_lists

let sorted a = let a = Array.copy a in Array.sort compare a; a

let test_agreement (e, n) () =
  let dense = compile ~space:Space.Dense e n in
  let sparse = compile ~space:Space.Sparse e n in
  let bij = bijection ~dense ~sparse in
  (* keys are a bijection onto the dense reachable set *)
  let seen = reachable dense in
  let n_reach = Array.fold_left (fun k b -> if b then k + 1 else k) 0 seen in
  Alcotest.(check int)
    (case_name (e, n) ^ ": sparse size = dense reachable count")
    n_reach (Explicit.num_states sparse);
  Array.iter
    (fun d ->
      Alcotest.(check bool)
        (case_name (e, n) ^ ": sparse state is dense-reachable")
        true seen.(d))
    bij;
  let distinct = Hashtbl.create 16 in
  Array.iter (fun d -> Hashtbl.replace distinct d ()) bij;
  Alcotest.(check int)
    (case_name (e, n) ^ ": keys injective")
    (Explicit.num_states sparse) (Hashtbl.length distinct);
  (* transition structure and initials agree under the bijection *)
  let restr = restriction (e, n) ~dense ~sparse ~bij in
  Alcotest.(check bool)
    (case_name (e, n) ^ ": sparse = dense|reachable (states + edges)")
    true
    (Explicit.same_transitions sparse restr);
  Alcotest.(check (array int))
    (case_name (e, n) ^ ": initials agree")
    (sorted (Explicit.initials restr))
    (sorted (Explicit.initials sparse))

(* α-images agree modulo the bijection: abstracting a state cannot
   depend on which engine enumerated it. *)
let test_alpha (e, n) () =
  let dense = compile ~space:Space.Dense e n in
  let sparse = compile ~space:Space.Sparse e n in
  let spec = Registry.spec_explicit e n in
  let bij = bijection ~dense ~sparse in
  let tab_d = Abstraction.tabulate (e.Registry.alpha n) dense spec in
  let tab_s = Abstraction.tabulate (e.Registry.alpha n) sparse spec in
  Array.iteri
    (fun k d ->
      Alcotest.(check int)
        (case_name (e, n) ^ ": alpha image agrees at sparse index")
        tab_d.(d) tab_s.(k))
    bij

(* The four refinement relations, computed on the sparse compile and on
   the independently-built dense restriction: identical verdicts AND
   identical failure counts. *)
let test_refine (e, n) () =
  let dense = compile ~space:Space.Dense e n in
  let sparse = compile ~space:Space.Sparse e n in
  let spec = Registry.spec_explicit e n in
  let bij = bijection ~dense ~sparse in
  let restr = restriction (e, n) ~dense ~sparse ~bij in
  let verdicts ep =
    let alpha = Abstraction.tabulate (e.Registry.alpha n) ep spec in
    [
      ("init", Refine.init_refinement ~alpha ~c:ep ~a:spec ());
      ("everywhere", Refine.everywhere_refinement ~alpha ~c:ep ~a:spec ());
      ("convergence", Refine.convergence_refinement ~alpha ~c:ep ~a:spec ());
      ("ee", Refine.everywhere_eventually_refinement ~alpha ~c:ep ~a:spec ());
    ]
  in
  List.iter2
    (fun (rel, s) (_, r) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s verdict" (case_name (e, n)) rel)
        r.Refine.holds s.Refine.holds;
      Alcotest.(check int)
        (Printf.sprintf "%s: %s failure count" (case_name (e, n)) rel)
        r.Refine.total_failures s.Refine.total_failures)
    (verdicts sparse) (verdicts restr)

(* Sparse discovery is chunked under the CR_JOBS contract of
   Cr_kernel.Par; the compiled graph must be identical for every job
   count. *)
let test_jobs_invariance () =
  List.iter
    (fun (name, n) ->
      match Registry.find name with
      | None -> Alcotest.failf "no registry entry %s" name
      | Some e ->
          let base = fresh ~space:Space.Sparse ~jobs:1 e n in
          List.iter
            (fun jobs ->
              let g = fresh ~space:Space.Sparse ~jobs e n in
              Alcotest.(check bool)
                (Printf.sprintf "%s n=%d: jobs=%d graph = jobs=1 graph"
                   name n jobs)
                true
                (Explicit.same_transitions base g);
              Alcotest.(check (array int))
                (Printf.sprintf "%s n=%d: jobs=%d initials = jobs=1" name n
                   jobs)
                (Explicit.initials base) (Explicit.initials g))
            [ 2; 4 ])
    [ ("dijkstra3", 3); ("rw-dijkstra3", 3); ("kstate", 4); ("c2-wrapped", 3) ]

let test_choice_parse () =
  let open Space in
  let check s expect =
    Alcotest.(check bool)
      (Printf.sprintf "choice_of_string %S" s)
      true
      (choice_of_string s = expect)
  in
  check "dense" (Some (Forced Dense));
  check "sparse" (Some (Forced Sparse));
  check "auto" (Some Auto);
  check " Dense " (Some (Forced Dense));
  check "SPARSE" (Some (Forced Sparse));
  check "bogus" None;
  (* empty means "unset": CR_SPACE= falls through to the default *)
  check "" (Some Auto)

let () =
  let per_case mk label =
    List.map
      (fun c -> Alcotest.test_case (label ^ " " ^ case_name c) `Quick (mk c))
      cases
  in
  Alcotest.run "space"
    [
      ("choice", [ Alcotest.test_case "choice_of_string" `Quick test_choice_parse ]);
      ("agreement", per_case test_agreement "fragment");
      ("alpha", per_case test_alpha "alpha");
      ("refine", per_case test_refine "verdicts");
      ("jobs", [ Alcotest.test_case "CR_JOBS byte-invariance" `Quick test_jobs_invariance ]);
    ]
