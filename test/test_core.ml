(* Tests for the core refinement and stabilization checkers on handcrafted
   systems, including the paper's Figure 1 counterexample. *)

open Cr_semantics

let check = Alcotest.(check bool)

let mk name states step init =
  Explicit.of_system
    (System.make ~name ~states ~step ~is_initial:init ~pp:Fmt.int ())

(* ---- Figure 1 (Section 2.1): refinement alone does not preserve
   stabilization.  States: 0,1,2,3 and s* = 9.  In both A and C, the only
   computation from the initial state 0 is 0 1 2 3; A also has 9 -> 2, C
   does not. *)

let fig1_states = [ 0; 1; 2; 3; 9 ]

let fig1_a =
  mk "fig1-A" fig1_states
    (function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 3 ] | 9 -> [ 2 ] | _ -> [])
    (fun s -> s = 0)

let fig1_c =
  mk "fig1-C" fig1_states
    (function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 3 ] | _ -> [])
    (fun s -> s = 0)

let test_fig1_init_refinement () =
  check "[C ⊑ A]_init holds" true
    (Cr_core.Refine.init_refinement ~c:fig1_c ~a:fig1_a ()).Cr_core.Refine.holds

let test_fig1_a_self_stabilizing () =
  check "A stabilizing to A" true
    (Cr_core.Stabilize.self_stabilizing fig1_a).Cr_core.Stabilize.holds

let test_fig1_c_not_stabilizing () =
  let r = Cr_core.Stabilize.stabilizing_to ~c:fig1_c ~a:fig1_a () in
  check "C not stabilizing to A" false r.Cr_core.Stabilize.holds;
  (* the witness is the deadlock at the faulted state s* = 9 *)
  check "witness is s*" true
    (match r.Cr_core.Stabilize.bad_terminal with
    | Some i -> Explicit.state fig1_c i = 9
    | None -> false)

let test_fig1_not_convergence_refinement () =
  check "[C ⪯ A] fails" false
    (Cr_core.Refine.convergence_refinement ~c:fig1_c ~a:fig1_a ())
      .Cr_core.Refine.holds

(* ---- everywhere refinement preserves stabilization (Theorem 0) on a
   small instance: C takes a subset of A's recovery edges. *)

let a_sys =
  mk "A" [ 0; 1; 2 ]
    (function 2 -> [ 1; 0 ] | 1 -> [ 0 ] | _ -> [])
    (fun s -> s = 0)

let c_sys =
  mk "C" [ 0; 1; 2 ]
    (function 2 -> [ 1 ] | 1 -> [ 0 ] | _ -> [])
    (fun s -> s = 0)

let test_everywhere_refinement () =
  check "[C ⊑ A]" true
    (Cr_core.Refine.everywhere_refinement ~c:c_sys ~a:a_sys ()).Cr_core.Refine.holds;
  check "Theorem 0 witnessed" true
    (Cr_core.Theorems.theorem_0 ~c:c_sys ~a:a_sys ~b:a_sys () = Cr_core.Theorems.Witnessed)

(* ---- convergence refinement with compression: C jumps 3 -> 0 while A
   recovers 3 -> 2 -> 1 -> 0; same endpoints, interior states dropped. *)

let a_chainrec =
  mk "A-chain" [ 0; 1; 2; 3 ]
    (function 3 -> [ 2 ] | 2 -> [ 1 ] | 1 -> [ 0 ] | _ -> [])
    (fun s -> s = 0)

let c_compress =
  mk "C-compress" [ 0; 1; 2; 3 ]
    (function 3 -> [ 0 ] | 2 -> [ 1 ] | 1 -> [ 0 ] | _ -> [])
    (fun s -> s = 0)

let test_compression_ok () =
  let r = Cr_core.Refine.convergence_refinement ~c:c_compress ~a:a_chainrec () in
  check "[C ⪯ A] holds with compression" true r.Cr_core.Refine.holds;
  Alcotest.(check int) "one compression" 1 r.Cr_core.Refine.stats.Cr_core.Refine.compressions;
  Alcotest.(check int) "dropped two states" 2 r.Cr_core.Refine.stats.Cr_core.Refine.max_dropped;
  (* not an everywhere refinement: 3 -> 0 is not an A-transition *)
  check "[C ⊑ A] fails" false
    (Cr_core.Refine.everywhere_refinement ~c:c_compress ~a:a_chainrec ())
      .Cr_core.Refine.holds;
  check "Theorem 1 witnessed" true
    (Cr_core.Theorems.theorem_1 ~c:c_compress ~a:a_chainrec ~b:a_chainrec ()
    = Cr_core.Theorems.Witnessed)

(* ---- different recovery path: C recovers 3 -> 9 -> 0 through a state A
   never visits on its own recovery.  This is an everywhere-eventually
   refinement but NOT a convergence refinement (Section 7's example). *)

let a_oddpath =
  mk "A-odd" [ 0; 1; 3; 9 ]
    (function 3 -> [ 1 ] | 1 -> [ 0 ] | 9 -> [ 0 ] | _ -> [])
    (fun s -> s = 0)

let c_evenpath =
  mk "C-even" [ 0; 1; 3; 9 ]
    (function 3 -> [ 9 ] | 9 -> [ 0 ] | 1 -> [ 0 ] | _ -> [])
    (fun s -> s = 0)

let test_everywhere_eventually_vs_convergence () =
  check "[C ⊑_ee A] holds" true
    (Cr_core.Refine.everywhere_eventually_refinement ~c:c_evenpath ~a:a_oddpath ())
      .Cr_core.Refine.holds;
  (* 3 -> 9 is not matched by any A-path from 3 *)
  check "[C ⪯ A] fails (different recovery path)" false
    (Cr_core.Refine.convergence_refinement ~c:c_evenpath ~a:a_oddpath ())
      .Cr_core.Refine.holds

(* ---- compression on a cycle must be rejected (omissions unbounded). *)

let a_cycle =
  mk "A-cycle" [ 0; 1; 2 ]
    (function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 0 ] | _ -> [])
    (fun s -> s = 0)

let c_shortcut =
  mk "C-shortcut" [ 0; 1; 2 ]
    (function 0 -> [ 2 ] | 2 -> [ 0 ] | 1 -> [ 2 ] | _ -> [])
    (fun s -> s = 0)

let test_compression_on_cycle_rejected () =
  let r = Cr_core.Refine.convergence_refinement ~c:c_shortcut ~a:a_cycle () in
  check "fails" false r.Cr_core.Refine.holds;
  check "reports compression on cycle" true
    (List.exists
       (function Cr_core.Refine.Compression_on_cycle _ -> true | _ -> false)
       r.Cr_core.Refine.failures)

(* ---- terminal mismatch: C halts where A must continue. *)

let c_halts =
  mk "C-halts" [ 0; 1; 2 ]
    (function 2 -> [ 1 ] | _ -> [])
    (fun s -> s = 0)

let test_terminal_mismatch () =
  let r = Cr_core.Refine.convergence_refinement ~c:c_halts ~a:a_chainrec () in
  check "fails" false r.Cr_core.Refine.holds;
  check "reports terminal mismatch" true
    (List.exists
       (function Cr_core.Refine.Terminal_not_terminal _ -> true | _ -> false)
       r.Cr_core.Refine.failures)

(* ---- graybox wrapping (Theorems 3 and 5) on a small shared state space:
   A moves 0<-1 only, W repairs 2 -> 1, C compresses 2's behaviour. *)

let w_sys =
  mk "W" [ 0; 1; 2 ] (function 2 -> [ 1 ] | _ -> []) (fun s -> s = 0)

let w'_sys =
  (* W' = W here (a convergence refinement of itself) *)
  mk "W'" [ 0; 1; 2 ] (function 2 -> [ 1 ] | _ -> []) (fun s -> s = 0)

let a_move = mk "A2" [ 0; 1; 2 ] (function 1 -> [ 0 ] | _ -> []) (fun s -> s = 0)

let c_move = mk "C2" [ 0; 1; 2 ] (function 1 -> [ 0 ] | _ -> []) (fun s -> s = 0)

let test_graybox () =
  let box x y = Explicit.box x y in
  check "Theorem 3 witnessed" true
    (Cr_core.Theorems.theorem_3 ~box ~c:c_move ~a:a_move ~w:w_sys ()
    = Cr_core.Theorems.Witnessed);
  check "Theorem 5 witnessed" true
    (Cr_core.Theorems.theorem_5 ~box ~c:c_move ~a:a_move ~w:w_sys ~w':w'_sys ()
    = Cr_core.Theorems.Witnessed)

(* ---- stabilization checker details *)

let test_stabilize_reports () =
  let r = Cr_core.Stabilize.stabilizing_to ~c:c_compress ~a:a_chainrec () in
  check "holds" true r.Cr_core.Stabilize.holds;
  Alcotest.(check int) "legitimate = reach(A)" 1 r.Cr_core.Stabilize.legitimate;
  Alcotest.(check (option int))
    "worst-case recovery" (Some 2) r.Cr_core.Stabilize.worst_case_recovery

let test_stabilize_cycle_witness () =
  (* C has a cycle 1 <-> 2 outside the legitimate region *)
  let c =
    mk "C-osc" [ 0; 1; 2 ]
      (function 1 -> [ 2 ] | 2 -> [ 1 ] | _ -> [])
      (fun s -> s = 0)
  in
  let r = Cr_core.Stabilize.stabilizing_to ~c ~a:a_chainrec () in
  check "fails" false r.Cr_core.Stabilize.holds;
  check "cycle witness found" true (r.Cr_core.Stabilize.bad_cycle <> None)

let test_stutter_allow () =
  (* C loops between two micro-states both mapping to the converged
     abstract state 0 (like the bytecode machine's loop iterations).
     Strict mode rejects the loop; stutter-tolerant mode accepts it
     because the image 0 can end a computation of A. *)
  let c =
    mk "C-micro" [ 0; 1 ]
      (function 0 -> [ 1 ] | 1 -> [ 0 ] | _ -> [])
      (fun s -> s = 0)
  in
  let a = mk "A-done" [ 0 ] (fun _ -> []) (fun s -> s = 0) in
  let alpha =
    Abstraction.tabulate (Abstraction.make ~name:"collapse" (fun _ -> 0)) c a
  in
  check "forbid: fails" false
    (Cr_core.Stabilize.stabilizing_to ~alpha ~c ~a ()).Cr_core.Stabilize.holds;
  check "allow: holds" true
    (Cr_core.Stabilize.stabilizing_to ~alpha ~stutter:`Allow ~c ~a ())
      .Cr_core.Stabilize.holds;
  (* but a pure-stutter cycle at a non-terminal image is rejected even in
     allow mode: A is obliged to move, C never does *)
  let a2 = mk "A-moves" [ 0; 9 ] (function 0 -> [ 9 ] | _ -> []) (fun s -> s = 0) in
  let alpha2 =
    Abstraction.tabulate (Abstraction.make ~name:"collapse" (fun _ -> 0)) c a2
  in
  check "allow at non-terminal image: fails" false
    (Cr_core.Stabilize.stabilizing_to ~alpha:alpha2 ~stutter:`Allow ~c ~a:a2 ())
      .Cr_core.Stabilize.holds

let test_fair_stabilization () =
  (* Divergent cycle 1 <-> 2, but action "exit" (1 -> 0) is continuously
     enabled on it: under weak fairness the system stabilizes. *)
  let c =
    mk "C-fairexit" [ 0; 1; 2 ]
      (function 1 -> [ 2; 0 ] | 2 -> [ 1 ] | _ -> [])
      (fun s -> s = 0)
  in
  let a = mk "A-target" [ 0; 1; 2 ] (fun _ -> []) (fun s -> s = 0) in
  let alpha = Abstraction.tabulate (Abstraction.make ~name:"id" (fun s -> s)) c a in
  (* actions: osc1 (1->2), osc2 (2->1), exit (1->0, also enabled at 2 via
     2 -> ... no: keep exit enabled at both 1 and 2 to make it
     continuously enabled on the cycle; at 2 it moves to 1 first. *)
  let next_exit = [| 0; 0; -1 |] in
  (* exit enabled at 0? no: -1 *)
  next_exit.(0) <- -1;
  let tables = [| [| -1; 2; -1 |] (* osc1 *); [| -1; -1; 1 |] (* osc2 *); next_exit |] in
  check "unfair: fails" false
    (Cr_core.Stabilize.stabilizing_to ~alpha ~c ~a ()).Cr_core.Stabilize.holds;
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~fair:tables ~c ~a () in
  (* exit is enabled at 1 but NOT at 2, so it is not continuously enabled:
     the cycle is weakly fair and stabilization still fails. *)
  check "weak fairness with intermittently enabled exit: still fails" false
    r.Cr_core.Stabilize.holds;
  (* now make exit enabled at 2 as well (2 -> 0): continuously enabled on
     the cycle but never taken inside it -> cycle unfair -> stabilizes *)
  let c2 =
    mk "C-fairexit2" [ 0; 1; 2 ]
      (function 1 -> [ 2; 0 ] | 2 -> [ 1; 0 ] | _ -> [])
      (fun s -> s = 0)
  in
  let alpha2 = Abstraction.tabulate (Abstraction.make ~name:"id" (fun s -> s)) c2 a in
  let tables2 = [| [| -1; 2; -1 |]; [| -1; -1; 1 |]; [| -1; 0; 0 |] |] in
  check "unfair: fails" false
    (Cr_core.Stabilize.stabilizing_to ~alpha:alpha2 ~c:c2 ~a ()).Cr_core.Stabilize.holds;
  check "weak fairness: holds" true
    (Cr_core.Stabilize.stabilizing_to ~alpha:alpha2 ~fair:tables2 ~c:c2 ~a ())
      .Cr_core.Stabilize.holds

let test_strength_chain () =
  List.iter
    (fun (c, a) ->
      check "strength chain" true (Cr_core.Theorems.strength_chain ~c ~a ()))
    [
      (fig1_c, fig1_a);
      (c_sys, a_sys);
      (c_compress, a_chainrec);
      (c_evenpath, a_oddpath);
      (c_shortcut, a_cycle);
    ]

let () =
  Alcotest.run "core"
    [
      ( "figure1",
        [
          Alcotest.test_case "init refinement holds" `Quick
            test_fig1_init_refinement;
          Alcotest.test_case "A self-stabilizing" `Quick
            test_fig1_a_self_stabilizing;
          Alcotest.test_case "C not stabilizing (counterexample)" `Quick
            test_fig1_c_not_stabilizing;
          Alcotest.test_case "C not a convergence refinement" `Quick
            test_fig1_not_convergence_refinement;
        ] );
      ( "refinement",
        [
          Alcotest.test_case "everywhere refinement + Theorem 0" `Quick
            test_everywhere_refinement;
          Alcotest.test_case "compression accepted + Theorem 1" `Quick
            test_compression_ok;
          Alcotest.test_case "ee-refinement vs convergence (Section 7)" `Quick
            test_everywhere_eventually_vs_convergence;
          Alcotest.test_case "compression on cycle rejected" `Quick
            test_compression_on_cycle_rejected;
          Alcotest.test_case "terminal mismatch rejected" `Quick
            test_terminal_mismatch;
          Alcotest.test_case "graybox Theorems 3 and 5" `Quick test_graybox;
        ] );
      ( "stabilization",
        [
          Alcotest.test_case "report fields" `Quick test_stabilize_reports;
          Alcotest.test_case "cycle witness" `Quick test_stabilize_cycle_witness;
          Alcotest.test_case "stutter-tolerant mode" `Quick test_stutter_allow;
          Alcotest.test_case "weak fairness" `Quick test_fair_stabilization;
          Alcotest.test_case "strength chain" `Quick test_strength_chain;
        ] );
    ]
