(* Static-analysis (Cr_lint) tests: exact read/write-set inference, one
   seeded defective program per check key, the all-registry clean pass,
   synchronous-daemon action-order sensitivity, and the JSON artifact. *)

open Cr_guarded
module Lint = Cr_lint.Lint
module Rwsets = Cr_lint.Rwsets
module Registry = Cr_experiments.Registry

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let layout3 = Layout.make [ ("x", 3); ("y", 3); ("z", 3) ]

let prog ?(name = "seeded") ?(initial = fun _ -> true) actions =
  Program.make ~name ~layout:layout3 ~actions ~initial

let act ?(label = "a") ?(proc = 0) ?(writes = []) guard effect =
  Action.make ~label ~proc ~writes ~guard ~effect ()

let keys key r = Lint.find_key key r
let fires key r = keys key r <> []

let severity_of key r =
  match keys key r with
  | f :: _ -> f.Lint.severity
  | [] -> Alcotest.failf "expected a %s finding" key

(* ---------- Rwsets: exact inference on a known action ---------- *)

let test_rwsets_exact () =
  (* Crafted action with fully known exact sets: guard reads z only,
     effect derives y from x; z passes through untouched. *)
  let a =
    act ~label:"exact" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(2) = 0)
      (fun s -> Action.set s [ (1, (s.(0) + 1) mod 3) ])
  in
  let info = Rwsets.of_action layout3 a in
  check "writes y only" true (info.Rwsets.writes = [ 1 ]);
  check "guard reads z only" true (info.Rwsets.guard_reads = [ 2 ]);
  check "effect reads x only" true (info.Rwsets.effect_reads = [ 0 ]);
  check "fires somewhere" true (info.Rwsets.firing_states > 0);
  check "stays in domain" true (info.Rwsets.invalid_witness = None);
  (* Dijkstra-3 top at n = 2: guard c1 = c0 && p1(c1) <> c2, effect
     c2 := p1(c1).  Note the effect read on c1 is *not* reported: the
     guard forces c1 = c0 on every enabled state, so no two enabled
     states differ only in c1 and the dependence is unobservable. *)
  let p = Cr_tokenring.Btr3.dijkstra3 2 in
  let top =
    List.find (fun x -> Action.label x = "top") (Program.actions p)
  in
  let ti = Rwsets.of_action (Program.layout p) top in
  check "top writes c2" true (ti.Rwsets.writes = [ 2 ]);
  check "top guard reads c0,c1,c2" true (ti.Rwsets.guard_reads = [ 0; 1; 2 ]);
  check "top fires somewhere" true (ti.Rwsets.firing_states > 0);
  check "top stays in domain" true (ti.Rwsets.invalid_witness = None)

let test_rwsets_copy_sources () =
  (* A verbatim copy effect advertises its source. *)
  let copy =
    act ~label:"copy" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(1) <> s.(0))
      (fun s -> Action.set s [ (1, s.(0)) ])
  in
  let info = Rwsets.of_action layout3 copy in
  check "writes y" true (info.Rwsets.writes = [ 1 ]);
  check "x is a copy source" true (List.mem 0 info.Rwsets.copy_sources);
  check "z is not a copy source" false (List.mem 2 info.Rwsets.copy_sources)

(* ---------- one seeded defect per check ---------- *)

let test_w1 () =
  (* effect writes y, but only x is declared *)
  let a =
    act ~label:"w1bad" ~proc:0 ~writes:[ 0 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 1); (1, 1) ])
  in
  let r = Lint.run (prog [ a ]) in
  check "W1 fires" true (fires "W1" r);
  check "W1 is an error" true (severity_of "W1" r = Lint.Error);
  check_int "lint counts the error" 1 (Lint.errors r)

let test_w2 () =
  (* y declared but never written *)
  let a =
    act ~label:"w2bad" ~proc:0 ~writes:[ 0; 1 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 1) ])
  in
  let r = Lint.run (prog [ a ]) in
  check "W2 fires" true (fires "W2" r);
  check "W2 is a warning" true (severity_of "W2" r = Lint.Warning);
  check_int "no errors" 0 (Lint.errors r)

let test_p1 () =
  (* slot y written by processes 0 and 1 *)
  let a =
    act ~label:"p1a" ~proc:0 ~writes:[ 1 ]
      (fun s -> s.(1) = 0)
      (fun s -> Action.set s [ (1, 1) ])
  in
  let b =
    act ~label:"p1b" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(1) = 1)
      (fun s -> Action.set s [ (1, 2) ])
  in
  let r = Lint.run (prog [ a; b ]) in
  check "P1 fires" true (fires "P1" r);
  check "P1 is an error" true (severity_of "P1" r = Lint.Error);
  (* the abstract-model allowlist downgrades it to info *)
  let r' = Lint.run ~allow:[ "P1" ] (prog [ a; b ]) in
  check "P1 allowlisted" true (severity_of "P1" r' = Lint.Info);
  check_int "no errors when allowlisted" 0 (Lint.errors r')

let g1_program () =
  (* one process, two always-enabled actions with different effects *)
  let a1 =
    act ~label:"g1a" ~proc:0 ~writes:[ 0 ]
      (fun _ -> true)
      (fun s -> Action.set s [ (0, 1) ])
  in
  let a2 =
    act ~label:"g1b" ~proc:0 ~writes:[ 0 ]
      (fun _ -> true)
      (fun s -> Action.set s [ (0, 2) ])
  in
  prog ~name:"g1seed" [ a1; a2 ]

let test_g1 () =
  let r = Lint.run (g1_program ()) in
  check "G1 fires" true (fires "G1" r);
  check "G1 is a warning" true (severity_of "G1" r = Lint.Warning);
  (* overlap with identical merged effects is harmless and not flagged:
     the Dijkstra-3 mid actions agree where both are enabled *)
  let r' = Lint.run (Cr_tokenring.Btr3.dijkstra3 2) in
  check "no G1 on dijkstra3" false (fires "G1" r')

let test_d1 () =
  let a =
    act ~label:"d1bad" ~proc:0 ~writes:[ 0 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 7) ])
  in
  let r = Lint.run (prog [ a ]) in
  check "D1 fires" true (fires "D1" r);
  check "D1 is an error" true (severity_of "D1" r = Lint.Error)

let test_u1 () =
  (* full-space dead action *)
  let dead =
    act ~label:"u1dead" ~proc:0 ~writes:[ 0 ]
      (fun _ -> false)
      (fun s -> Action.set s [ (0, 1) ])
  in
  let r = Lint.run (prog [ dead ]) in
  check "U1 fires" true (fires "U1" r);
  check "U1 full-space is a warning" true (severity_of "U1" r = Lint.Warning);
  (* live in the full space, dead from the initial states *)
  let step =
    act ~label:"step" ~proc:0 ~writes:[ 0 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 1) ])
  in
  let unreachable =
    act ~label:"u1reach" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(0) = 2)
      (fun s -> Action.set s [ (1, 1) ])
  in
  let r' =
    Lint.run
      (prog ~initial:(fun s -> s = [| 0; 0; 0 |]) [ step; unreachable ])
  in
  let u1 = keys "U1" r' in
  check "reachable variant fires" true
    (List.exists
       (fun f -> f.Lint.action = "u1reach" && f.Lint.severity = Lint.Info)
       u1)

let test_s1 () =
  let a =
    act ~label:"s1noop" ~proc:0 ~writes:[ 0 ] (fun _ -> true) Array.copy
  in
  let r = Lint.run (prog [ a ]) in
  check "S1 fires" true (fires "S1" r);
  check "S1 is a warning" true (severity_of "S1" r = Lint.Warning)

let test_i1 () =
  let writer =
    act ~label:"writer" ~proc:0 ~writes:[ 0 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 1) ])
  in
  (* reads x (proc 0's slot) and derives a new value from it *)
  let derive =
    act ~label:"derive" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(0) = 1)
      (fun s -> Action.set s [ (1, (s.(0) + 1) mod 3) ])
  in
  let r = Lint.run (prog [ writer; derive ]) in
  check "I1 fires on a derived read" true (fires "I1" r);
  check "I1 is info" true (severity_of "I1" r = Lint.Info);
  (* the same read as a verbatim copy into a private slot is an atomic
     read step — the rw_atomicity cache-fill shape — and is exempt *)
  let copy =
    act ~label:"copy" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(1) <> s.(0))
      (fun s -> Action.set s [ (1, s.(0)) ])
  in
  let r' = Lint.run (prog [ writer; copy ]) in
  check "no I1 on an atomic read step" false (fires "I1" r')

let test_l1 () =
  let a =
    act ~label:"dup" ~proc:0 ~writes:[ 0 ]
      (fun s -> s.(0) = 0)
      (fun s -> Action.set s [ (0, 1) ])
  in
  let b =
    act ~label:"dup" ~proc:1 ~writes:[ 1 ]
      (fun s -> s.(1) = 0)
      (fun s -> Action.set s [ (1, 1) ])
  in
  let r = Lint.run (prog [ a; b ]) in
  check "L1 fires" true (fires "L1" r);
  check "L1 is an error" true (severity_of "L1" r = Lint.Error)

(* ---------- the registry is clean ---------- *)

let test_registry_clean () =
  List.iter
    (fun (e : Registry.entry) ->
      let r = Lint.run ~allow:e.Registry.lint_allow (e.Registry.program 2) in
      Alcotest.(check int)
        (e.Registry.name ^ " has no error-severity findings")
        0 (Lint.errors r))
    Registry.entries

(* E17's interference story: the shared-memory Dijkstra-3 has I1 pairs;
   the read/write-atomicity refinement has none (every remote read is an
   atomic cache-fill copy). *)
let test_interference_refined_away () =
  check "dijkstra3 has interference pairs" true
    (Cr_experiments.Lint_exps.interference_count ~n:2 "dijkstra3" > 0);
  check_int "rw-dijkstra3 has none" 0
    (Cr_experiments.Lint_exps.interference_count ~n:2 "rw-dijkstra3")

(* ---------- synchronous daemon: action-order sensitivity ---------- *)

let sync_equal p q =
  List.for_all
    (fun s -> Program.synchronous_step p s = Program.synchronous_step q s)
    (Layout.enumerate (Program.layout p))

(* Once G1 passes (and no slot is shared between processes — P1 — which
   would make the synchronous merge order-dependent across processes),
   the synchronous semantics is invariant under any action reordering. *)
let sync_clean (e : Registry.entry) p =
  let r = Lint.run ~allow:e.Registry.lint_allow ~reachable_check:false p in
  keys "G1" r = [] && keys "P1" r = []

let test_sync_reorder_invariant () =
  let covered = ref 0 in
  List.iter
    (fun (e : Registry.entry) ->
      let p = e.Registry.program 2 in
      if sync_clean e p then begin
        incr covered;
        let rev = Program.with_actions (List.rev (Program.actions p)) p in
        check
          (e.Registry.name ^ " sync invariant under reversal")
          true (sync_equal p rev)
      end)
    Registry.entries;
  check "at least four G1-clean systems covered" true (!covered >= 4)

let prop_sync_shuffle_invariant =
  QCheck.Test.make ~count:20
    ~name:"dijkstra3: synchronous step invariant under action shuffles"
    QCheck.int (fun seed ->
      let p = Cr_tokenring.Btr3.dijkstra3 2 in
      let rng = Random.State.make [| seed |] in
      let shuffled =
        List.map snd
          (List.sort compare
             (List.map
                (fun a -> (Random.State.bits rng, a))
                (Program.actions p)))
      in
      sync_equal p (Program.with_actions shuffled p))

let test_sync_g1_violator () =
  (* the seeded G1 program really is order-dependent *)
  let p = g1_program () in
  let rev = Program.with_actions (List.rev (Program.actions p)) p in
  check "G1 violator is order-dependent" false (sync_equal p rev)

(* ---------- the JSON artifact ---------- *)

let test_json_artifact () =
  let rows = Cr_experiments.Lint_exps.audit ~n:2 () in
  let body = Cr_experiments.Lint_exps.to_json ~n:2 rows in
  (match Cr_obs.Json_check.validate_string body with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "lint JSON artifact invalid: %s" msg);
  (* messages with quotes/backslashes survive escaping *)
  let weird =
    Lint.report_to_json ~entry:"x"
      {
        Lint.program_name = "p\"q\\r";
        findings =
          [
            {
              Lint.key = "W1";
              severity = Lint.Error;
              provenance = Lint.Exact;
              program = "p\"q\\r";
              action = "a\nb";
              message = "quote \" backslash \\ tab \t";
            };
          ];
        infos = [];
      }
  in
  match Cr_obs.Json_check.validate_string weird with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "escaped JSON invalid: %s" msg

let () =
  Alcotest.run "lint"
    [
      ( "rwsets",
        [
          Alcotest.test_case "exact sets on dijkstra3 top" `Quick
            test_rwsets_exact;
          Alcotest.test_case "copy sources" `Quick test_rwsets_copy_sources;
        ] );
      ( "seeded defects",
        [
          Alcotest.test_case "W1 undeclared write" `Quick test_w1;
          Alcotest.test_case "W2 over-declaration" `Quick test_w2;
          Alcotest.test_case "P1 ownership" `Quick test_p1;
          Alcotest.test_case "G1 sync overlap" `Quick test_g1;
          Alcotest.test_case "D1 domain violation" `Quick test_d1;
          Alcotest.test_case "U1 dead action" `Quick test_u1;
          Alcotest.test_case "S1 stuttering-only" `Quick test_s1;
          Alcotest.test_case "I1 interference" `Quick test_i1;
          Alcotest.test_case "L1 duplicate labels" `Quick test_l1;
        ] );
      ( "registry",
        [
          Alcotest.test_case "all systems error-clean" `Quick
            test_registry_clean;
          Alcotest.test_case "I1 pairs refined away (E17)" `Quick
            test_interference_refined_away;
        ] );
      ( "synchronous order",
        [
          Alcotest.test_case "clean systems reorder-invariant" `Quick
            test_sync_reorder_invariant;
          QCheck_alcotest.to_alcotest prop_sync_shuffle_invariant;
          Alcotest.test_case "seeded G1 violator is order-dependent" `Quick
            test_sync_g1_violator;
        ] );
      ( "json",
        [ Alcotest.test_case "artifact validates" `Quick test_json_artifact ] );
    ]
