(* Telemetry (Cr_obs) tests: deterministic counter merging under the
   CR_JOBS fan-out, span nesting discipline, Chrome-trace export, the
   bundled JSON recognizer, and the stats-carrying verdicts. *)

module Obs = Cr_obs.Obs

let check = Alcotest.(check bool)

(* Run [f] with stdout redirected to a scratch file (same fd-level
   trick as test_checker: formatter-level swapping misses output from
   spawned domains). *)
let silently f =
  let tmp = Filename.temp_file "cr_obs" ".out" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_TRUNC ] 0o600 in
  flush stdout;
  Format.print_flush ();
  let saved = Unix.dup Unix.stdout in
  Unix.dup2 fd Unix.stdout;
  Unix.close fd;
  Fun.protect
    ~finally:(fun () ->
      flush stdout;
      Format.print_flush ();
      Unix.dup2 saved Unix.stdout;
      Unix.close saved;
      Sys.remove tmp)
    f

(* ---------- merged counters are CR_JOBS-invariant ---------- *)

(* The [par.pool.*]/[par.task.*] counters describe work *placement*
   (how many workers, how many fan-outs) — legitimately jobs-dependent,
   like the pool journal events.  The invariance contract covers the
   checker-decision counters. *)
let placement_counter name =
  String.length name >= 4 && String.sub name 0 4 = "par."

(* lift the pool's busy-domain cap so CR_JOBS > 1 really fans out across
   domains on a single-core host — the merge invariance being tested *)
let () = Unix.putenv "CR_PAR_CAP" "8"

let merged_after_report ~jobs =
  Unix.putenv "CR_JOBS" (string_of_int jobs);
  (* force process-lifetime lazies (the Fig1 graphs compile once per
     process, on first use) before the measured window — first-call
     memoization is orthogonal to the job count being varied *)
  ignore (Cr_experiments.Fig_exps.fig1_a ());
  ignore (Cr_experiments.Fig_exps.fig1_c ());
  (* start from cold compile and verdict caches so hit/miss totals don't
     depend on how many runs came before this one *)
  Cr_guarded.Program.clear_compile_cache ();
  Cr_core.Check_cache.clear_all ();
  Obs.reset ();
  Obs.force_collect ();
  silently (fun () -> Cr_experiments.Report.all ());
  let snap =
    List.filter (fun (name, _) -> not (placement_counter name))
      (Obs.merged_snapshot ())
  in
  Unix.putenv "CR_JOBS" "1";
  snap

let prop_counters_jobs_invariant =
  QCheck2.Test.make ~name:"merged counters invariant under CR_JOBS" ~count:3
    QCheck2.Gen.(int_range 2 6)
    (fun jobs ->
      let seq = merged_after_report ~jobs:1 in
      let par = merged_after_report ~jobs in
      if seq <> par then
        QCheck2.Test.fail_reportf "CR_JOBS=1 vs CR_JOBS=%d:@.%a@.vs@.%a" jobs
          Obs.pp_snapshot seq Obs.pp_snapshot par
      else true)

(* ---------- histogram bucketing and quantiles ---------- *)

let h_test = Obs.histogram "test.hist"

let test_histogram_basics () =
  Obs.reset ();
  Obs.force_collect ();
  List.iter (Obs.observe h_test) [ 0; 1; 1; 2; 3; 7; 1000; -5 ];
  let stats =
    match List.assoc_opt "test.hist" (Obs.merged_histograms ()) with
    | Some h -> h
    | None -> Alcotest.fail "test.hist not in merged_histograms"
  in
  Alcotest.(check int) "count" 8 stats.Obs.count;
  (* the -5 observation clamps to 0 *)
  Alcotest.(check int) "total" 1014 stats.Obs.total;
  Alcotest.(check int) "max exact" 1000 stats.Obs.max_value;
  (* 4th of 8 sorted obs (0,0,1,1,2,3,7,1000) is 1: p50 lands in the
     [1,1] bucket whose upper bound is 1 *)
  Alcotest.(check int) "p50" 1 (Obs.quantile stats 0.5);
  (* p99 quantizes to the top bucket but clamps to the exact max *)
  Alcotest.(check int) "p99 clamps to max" 1000 (Obs.quantile stats 0.99);
  Alcotest.(check (float 0.001)) "mean" 126.75 (Obs.mean stats)

(* ---------- merged histograms are CR_JOBS-invariant ---------- *)

(* Duration histograms ([*_us] names) record wall-clock and are
   legitimately schedule-dependent; the invariance contract covers the
   value-shaped ones (episode lengths etc.). *)
let value_histograms hs =
  List.filter
    (fun (name, _) -> not (Filename.check_suffix name "_us"))
    hs

let hists_after_report ~jobs =
  Unix.putenv "CR_JOBS" (string_of_int jobs);
  Cr_guarded.Program.clear_compile_cache ();
  Cr_core.Check_cache.clear_all ();
  Obs.reset ();
  Obs.force_collect ();
  silently (fun () -> Cr_experiments.Report.all ~ns:[ 2; 3 ] ());
  let hs = value_histograms (Obs.merged_histograms ()) in
  Unix.putenv "CR_JOBS" "1";
  hs

let prop_hists_jobs_invariant =
  QCheck2.Test.make ~name:"merged histograms invariant under CR_JOBS"
    ~count:2
    QCheck2.Gen.(oneofl [ 2; 4 ])
    (fun jobs ->
      let seq = hists_after_report ~jobs:1 in
      let par = hists_after_report ~jobs in
      if seq <> par then
        QCheck2.Test.fail_reportf "CR_JOBS=1 vs CR_JOBS=%d:@.%a@.vs@.%a" jobs
          Obs.pp_histograms seq Obs.pp_histograms par
      else if seq = [] then
        QCheck2.Test.fail_reportf
          "no value-shaped histograms recorded; invariance check is vacuous"
      else true)

(* ---------- span nesting is well-formed ---------- *)

(* On each domain the recorded spans must form a laminar family: any two
   intervals are disjoint or one contains the other (spans only close in
   LIFO order). *)
let spans_laminar evs =
  let by_tid = Hashtbl.create 8 in
  List.iter
    (fun (e : Obs.span_event) ->
      Hashtbl.replace by_tid e.tid (e :: (try Hashtbl.find by_tid e.tid with Not_found -> [])))
    evs;
  Hashtbl.fold
    (fun _tid es ok ->
      ok
      && List.for_all
           (fun (a : Obs.span_event) ->
             List.for_all
               (fun (b : Obs.span_event) ->
                 let a0 = a.ts_us and a1 = a.ts_us +. a.dur_us in
                 let b0 = b.ts_us and b1 = b.ts_us +. b.dur_us in
                 (* partial overlap is the only forbidden shape *)
                 not (a0 < b0 && b0 < a1 && a1 < b1))
               es)
           es)
    by_tid true

let test_span_nesting () =
  Obs.reset ();
  Obs.force_collect ();
  silently (fun () -> Cr_experiments.Report.all ~ns:[ 2; 3 ] ());
  let evs = Obs.events () in
  check "recorded some spans" true (List.length evs > 10);
  check "per-domain spans are properly nested" true (spans_laminar evs);
  (* depth really reflects nesting: some span must sit inside another *)
  check "nested spans observed" true
    (List.exists (fun (e : Obs.span_event) -> e.depth > 0) evs)

(* ---------- trace export parses ---------- *)

let test_trace_json () =
  Obs.reset ();
  Obs.force_collect ();
  silently (fun () -> Cr_experiments.Report.all ~ns:[ 2 ] ());
  let tmp = Filename.temp_file "cr_obs" ".trace" in
  Obs.write_trace tmp;
  (match Cr_obs.Json_check.validate_file tmp with
  | Ok () -> ()
  | Error msg -> Alcotest.failf "trace is not valid JSON: %s" msg);
  let ic = open_in_bin tmp in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  Sys.remove tmp;
  check "trace is non-empty" true (String.length body > 0);
  let contains needle =
    let n = String.length needle and h = String.length body in
    let rec go i = i + n <= h && (String.sub body i n = needle || go (i + 1)) in
    go 0
  in
  check "has complete (X) events" true (contains "\"ph\":\"X\"");
  check "has thread metadata" true (contains "thread_name")

(* ---------- JSON recognizer ---------- *)

let test_json_check () =
  let ok s =
    check (Printf.sprintf "accepts %S" s) true
      (Cr_obs.Json_check.validate_string s = Ok ())
  in
  let bad s =
    check (Printf.sprintf "rejects %S" s) true
      (Result.is_error (Cr_obs.Json_check.validate_string s))
  in
  ok "[]";
  ok "{}";
  ok "  {\"a\": [1, -2.5e3, true, false, null, \"x\\n\\u0041\"]} ";
  ok "[[[]]]";
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "{\"a\" 1}";
  bad "tru";
  bad "1.2.3";
  bad "\"\\x\"";
  bad "[] []"

(* ---------- stats-carrying verdicts ---------- *)

let test_verdict_cost () =
  Obs.reset ();
  Obs.force_collect ();
  let n = 2 in
  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let d3 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr3.dijkstra3 n) in
  let alpha =
    Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) d3 btr
  in
  (* bypass the verdict cache: a warm hit would replay an older run's
     cost snapshot instead of counting this one *)
  let r =
    Cr_core.Check_cache.bypass (fun () ->
        Cr_core.Stabilize.stabilizing_to ~alpha ~c:d3 ~a:btr ())
  in
  match r.Cr_core.Stabilize.cost with
  | None -> Alcotest.fail "expected a cost snapshot while tracking"
  | Some cost ->
      check "stabilize.runs counted once" true
        (List.assoc_opt "stabilize.runs" cost = Some 1);
      check "cost records the bad-seed scan" true
        (List.mem_assoc "stabilize.bad_seeds" cost)

(* ---------- zero-converged Runner stats (regression) ---------- *)

let test_runner_zero_converged () =
  let p = Cr_tokenring.Btr3.dijkstra3 2 in
  let stats =
    Cr_sim.Runner.convergence_stats ~samples:5 ~max_steps:3 ~seed:7
      ~converged:(fun _ -> false)
      (fun i -> Cr_sim.Daemon.random ~seed:i)
      p
  in
  check "no run converges" true (stats.Cr_sim.Runner.converged = 0);
  let rendered = Fmt.str "%a" Cr_sim.Runner.pp_stats stats in
  check "prints dashes, not NaN/garbage" true
    (rendered = "0/5 converged, steps mean - min - max -")

let () =
  Alcotest.run "obs"
    [
      ( "telemetry",
        [
          QCheck_alcotest.to_alcotest prop_counters_jobs_invariant;
          Alcotest.test_case "histogram bucketing and quantiles" `Quick
            test_histogram_basics;
          QCheck_alcotest.to_alcotest prop_hists_jobs_invariant;
          Alcotest.test_case "span nesting well-formed" `Quick
            test_span_nesting;
          Alcotest.test_case "CR_TRACE export is valid JSON" `Quick
            test_trace_json;
          Alcotest.test_case "Json_check accept/reject" `Quick test_json_check;
          Alcotest.test_case "verdict carries cost snapshot" `Quick
            test_verdict_cost;
          Alcotest.test_case "zero-converged stats print dashes" `Quick
            test_runner_zero_converged;
        ] );
    ]
