(* Verdict-cache (Cr_core.Check_cache) tests over the full registry at
   N = 3: warm hits return the same verdicts a fresh check computes,
   CR_CHECK_CACHE=0 bypasses the cache entirely, and CR_CHECK_PARANOID=1
   recheck-and-assert passes on every hit. *)

module Obs = Cr_obs.Obs
module Registry = Cr_experiments.Registry

let check = Alcotest.(check bool)
let n = 3

let counter snap name =
  match List.assoc_opt name snap with Some v -> v | None -> 0

(* Cold caches + fresh counters, then [f]; returns (result, counters). *)
let with_cold_counters f =
  Cr_guarded.Program.clear_compile_cache ();
  Cr_core.Check_cache.clear_all ();
  Obs.reset ();
  Obs.force_collect ();
  let r = f () in
  (r, Obs.merged_snapshot ())

(* All registry verdicts at N: every stabilization and refinement report,
   with cost snapshots dropped so cached and fresh runs compare equal. *)
let all_verdicts () =
  List.concat_map
    (fun name ->
      match Registry.find name with
      | None -> []
      | Some e ->
          let stab = Registry.stabilization e n in
          let refs = Registry.refinements e n in
          ( name ^ "/stabilize",
            `Stab { stab with Cr_core.Stabilize.cost = None } )
          :: List.map
               (fun (label, r) ->
                 (name ^ "/" ^ label, `Ref { r with Cr_core.Refine.cost = None }))
               refs)
    (Registry.names ())

let test_warm_hits_match_fresh () =
  let cold, snap_cold = with_cold_counters all_verdicts in
  check "cold run misses" true (counter snap_cold "check.cache.hits" = 0);
  check "cold run populates" true (counter snap_cold "check.cache.misses" > 0);
  (* warm: same questions, all answered from the cache *)
  Obs.reset ();
  Obs.force_collect ();
  let warm = all_verdicts () in
  let snap_warm = Obs.merged_snapshot () in
  check "warm run hits" true
    (counter snap_warm "check.cache.hits"
    >= List.length warm);
  check "warm run adds no misses" true
    (counter snap_warm "check.cache.misses" = 0);
  check "warm verdicts = cold verdicts" true (warm = cold);
  (* fresh (bypassed) verdicts agree with the cached ones *)
  let fresh = Cr_core.Check_cache.bypass all_verdicts in
  check "bypassed fresh verdicts = cached verdicts" true (fresh = warm)

let test_cache_disabled_by_env () =
  Unix.putenv "CR_CHECK_CACHE" "0";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "CR_CHECK_CACHE" "1")
    (fun () ->
      let first, snap1 = with_cold_counters all_verdicts in
      let second = all_verdicts () in
      let snap2 = Obs.merged_snapshot () in
      check "no hits counted" true (counter snap1 "check.cache.hits" = 0);
      check "no misses counted" true (counter snap1 "check.cache.misses" = 0);
      check "still none on the second run" true
        (counter snap2 "check.cache.hits" = 0
        && counter snap2 "check.cache.misses" = 0);
      check "verdicts unchanged without the cache" true (first = second))

let test_paranoid_recheck_passes () =
  Unix.putenv "CR_CHECK_PARANOID" "1";
  Fun.protect
    ~finally:(fun () -> Unix.putenv "CR_CHECK_PARANOID" "0")
    (fun () ->
      (* cold fill, then warm hits: each hit rechecks and asserts the
         cached report equals the fresh one — any divergence raises *)
      let cold, _ = with_cold_counters all_verdicts in
      let warm = all_verdicts () in
      check "paranoid warm run agrees" true (warm = cold))

let () =
  Alcotest.run "check_cache"
    [
      ( "verdict cache",
        [
          Alcotest.test_case "warm hits match fresh checks" `Quick
            test_warm_hits_match_fresh;
          Alcotest.test_case "CR_CHECK_CACHE=0 bypasses" `Quick
            test_cache_disabled_by_env;
          Alcotest.test_case "CR_CHECK_PARANOID=1 passes" `Quick
            test_paranoid_recheck_passes;
        ] );
    ]
