(* Tests for the mini stack machine and the compiler example (E2). *)

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let cfg = Cr_vm.Source.machine_config

let test_compiler_reproduces_paper_listing () =
  let ours =
    Cr_vm.Instr.layout_addresses (Cr_vm.Source.compile Cr_vm.Source.paper_program)
  in
  check "identical listing" true (ours = Cr_vm.Source.paper_listing)

let test_widths_and_addresses () =
  check_int "goto is 3 bytes" 3 (Cr_vm.Instr.width (Cr_vm.Instr.Goto 7));
  check_int "iconst is 1 byte" 1 (Cr_vm.Instr.width (Cr_vm.Instr.Iconst 0));
  let l = Cr_vm.Instr.layout_addresses [ Cr_vm.Instr.Iconst 0; Cr_vm.Instr.Goto 0; Cr_vm.Instr.Return ] in
  Alcotest.(check (list int)) "addresses" [ 0; 1; 4 ] (List.map fst l)

let run_from s =
  let rec go s k =
    if k > 1000 then s
    else match Cr_vm.Machine.step cfg s with None -> s | Some s' -> go s' (k + 1)
  in
  go s 0

let test_fault_free_execution_loops () =
  (* from the initial state the program never reaches return and x stays 0 *)
  let s0 = Cr_vm.Machine.initial_state cfg in
  let rec go s k seen_return =
    if k > 200 then seen_return
    else
      match Cr_vm.Machine.step cfg s with
      | None -> true
      | Some s' -> go s' (k + 1) (seen_return || s'.Cr_vm.Machine.pc = Cr_vm.Machine.halted_pc)
  in
  check "never returns" false (go s0 0 false);
  let s = run_from s0 in
  check_int "x stays 0" 0 s.Cr_vm.Machine.locals.(1)

let test_corruption_mid_comparison_terminates () =
  (* the paper's scenario: x corrupted after the first iload (pc=8 with
     old x on the stack), before the second *)
  let s0 = Cr_vm.Machine.initial_state cfg in
  (* execute until pc = 8 *)
  let rec to_pc8 s =
    if s.Cr_vm.Machine.pc = 8 then s
    else
      match Cr_vm.Machine.step cfg s with
      | None -> Alcotest.fail "stuck before pc 8"
      | Some s' -> to_pc8 s'
  in
  let s8 = to_pc8 s0 in
  check_int "stack holds old x" 1 (List.length s8.Cr_vm.Machine.stack);
  (* corrupt x *)
  let locals = Array.copy s8.Cr_vm.Machine.locals in
  locals.(1) <- 1;
  let corrupted = { s8 with Cr_vm.Machine.locals } in
  let final = run_from corrupted in
  check_int "terminates at return" Cr_vm.Machine.halted_pc final.Cr_vm.Machine.pc;
  check_int "with x = 1, never reset" 1 final.Cr_vm.Machine.locals.(1)

let test_corruption_elsewhere_recovers () =
  (* corrupting x while the stack is empty (pc = 7) is recovered: the
     comparison still sees equal values and the loop resets x *)
  let s0 = Cr_vm.Machine.initial_state cfg in
  let rec to_pc7 s =
    if s.Cr_vm.Machine.pc = 7 && s.Cr_vm.Machine.stack = [] then s
    else
      match Cr_vm.Machine.step cfg s with
      | None -> Alcotest.fail "stuck"
      | Some s' -> to_pc7 s'
  in
  let s7 = to_pc7 s0 in
  let locals = Array.copy s7.Cr_vm.Machine.locals in
  locals.(1) <- 1;
  let corrupted = { s7 with Cr_vm.Machine.locals } in
  (* run 20 steps: should pass through istore_1 resetting x, never return *)
  let rec go s k reset =
    if k >= 20 then (reset, s)
    else
      match Cr_vm.Machine.step cfg s with
      | None -> (reset, s)
      | Some s' -> go s' (k + 1) (reset || s'.Cr_vm.Machine.locals.(1) = 0)
  in
  let reset, final = go corrupted 0 false in
  check "x reset by the loop body" true reset;
  check "still running" true (final.Cr_vm.Machine.pc <> Cr_vm.Machine.halted_pc)

let test_experiment_verdicts () =
  let v = Cr_experiments.Intro_exps.vm_experiment () in
  check "compiler matches paper" true v.Cr_experiments.Intro_exps.compiler_matches_paper;
  check "source stabilizes" true v.Cr_experiments.Intro_exps.source_stabilizes;
  check "bytecode does not" false v.Cr_experiments.Intro_exps.bytecode_stabilizes;
  check "bytecode refines fault-free" true
    v.Cr_experiments.Intro_exps.bytecode_refines_init;
  check "witness is a halted state with x<>0" true
    (match v.Cr_experiments.Intro_exps.bad_terminal with
    | Some s ->
        s.Cr_vm.Machine.pc = Cr_vm.Machine.halted_pc && s.Cr_vm.Machine.locals.(1) = 1
    | None -> false)

let test_machine_enumeration () =
  let states = Cr_vm.Machine.enumerate cfg in
  (* 10 pcs (9 + halted) x 7 stacks x 4 locals = 280 *)
  check_int "state count" 280 (List.length states);
  let e = Cr_semantics.Explicit.of_system (Cr_vm.Machine.to_system ~name:"vm" cfg) in
  check_int "explicit agrees" 280 (Cr_semantics.Explicit.num_states e)

let test_stack_safety () =
  (* overflow and underflow become stuck (terminal), never exceptions *)
  let s_over = { Cr_vm.Machine.pc = 7; stack = [ 0; 0 ]; locals = [| 0; 0 |] } in
  check "iload on full stack is stuck" true (Cr_vm.Machine.step cfg s_over = None);
  let s_under = { Cr_vm.Machine.pc = 9; stack = [ 0 ]; locals = [| 0; 0 |] } in
  check "if_icmpeq on short stack is stuck" true
    (Cr_vm.Machine.step cfg s_under = None)

(* ---- the drain program: a multi-step recovery path at source level ---- *)

let test_drain_source_recovers () =
  let dom = 4 in
  let src = Cr_semantics.Explicit.of_system (Cr_vm.Source.drain_abstract_system ~dom) in
  let tgt = Cr_semantics.Explicit.of_system (Cr_vm.Source.target_system ~value_dom:dom) in
  let r = Cr_core.Stabilize.stabilizing_to ~c:src ~a:tgt () in
  check "drain source stabilizes to x=0" true r.Cr_core.Stabilize.holds;
  Alcotest.(check (option int))
    "recovery takes dom-1 steps" (Some (dom - 1))
    r.Cr_core.Stabilize.worst_case_recovery

let test_drain_bytecode_runs () =
  let dom = 4 in
  let cfg = Cr_vm.Source.drain_machine_config ~dom in
  (* fault-free: loops forever with x = 0 (the loop never executes) *)
  let s0 = Cr_vm.Machine.initial_state cfg in
  let rec go s k =
    if k = 0 then s
    else match Cr_vm.Machine.step cfg s with None -> s | Some s' -> go s' (k - 1)
  in
  let s = go s0 40 in
  check "terminates with x = 0 (loop body never runs)" true
    (s.Cr_vm.Machine.pc = Cr_vm.Machine.halted_pc && s.Cr_vm.Machine.locals.(1) = 0);
  (* recovery: corrupt x at the loop test with an empty stack; the drain
     loop brings it back to 0 and exits *)
  let test_pc =
    (* address of the first instruction of the loop test = target of the
       initial goto *)
    match List.assoc_opt 2 cfg.Cr_vm.Machine.code with
    | Some (Cr_vm.Instr.Goto t) -> t
    | _ -> Alcotest.fail "expected goto at address 2"
  in
  let corrupted =
    { Cr_vm.Machine.pc = test_pc; stack = []; locals = [| 0; 3 |] }
  in
  let final = go corrupted 200 in
  check "drains back to 0 and halts" true
    (final.Cr_vm.Machine.pc = Cr_vm.Machine.halted_pc
    && final.Cr_vm.Machine.locals.(1) = 0)

let test_drain_bytecode_not_stabilizing () =
  let dom = 3 in
  let cfg = Cr_vm.Source.drain_machine_config ~dom in
  let machine =
    Cr_semantics.Explicit.of_system (Cr_vm.Machine.to_system ~name:"drain-vm" cfg)
  in
  let tgt = Cr_semantics.Explicit.of_system (Cr_vm.Source.target_system ~value_dom:dom) in
  let alpha = Cr_semantics.Abstraction.tabulate Cr_vm.Source.alpha_x machine tgt in
  let r =
    Cr_core.Stabilize.stabilizing_to ~alpha ~stutter:`Allow ~c:machine ~a:tgt ()
  in
  check "drain bytecode does not stabilize to x=0" false r.Cr_core.Stabilize.holds;
  (* the witness is again a halted state with x <> 0 *)
  check "witness halted with x<>0" true
    (match r.Cr_core.Stabilize.bad_terminal with
    | Some i ->
        let s = Cr_semantics.Explicit.state machine i in
        s.Cr_vm.Machine.pc = Cr_vm.Machine.halted_pc && s.Cr_vm.Machine.locals.(1) <> 0
    | None -> false)

let test_new_instructions () =
  let cfg =
    {
      Cr_vm.Machine.code =
        Cr_vm.Instr.layout_addresses
          [ Cr_vm.Instr.Iconst 1; Cr_vm.Instr.Dup; Cr_vm.Instr.Iadd;
            Cr_vm.Instr.Istore 0; Cr_vm.Instr.Iinc (0, 1); Cr_vm.Instr.Iconst 0;
            Cr_vm.Instr.Pop; Cr_vm.Instr.Return ];
      num_locals = 1;
      value_dom = 4;
      max_stack = 2;
    }
  in
  let rec run s =
    match Cr_vm.Machine.step cfg s with None -> s | Some s' -> run s'
  in
  let final = run (Cr_vm.Machine.initial_state cfg) in
  (* 1 dup -> [1;1]; iadd -> [2]; istore0 -> x=2; iinc x+=1 -> 3; push 0; pop *)
  Alcotest.(check int) "arithmetic" 3 final.Cr_vm.Machine.locals.(0);
  Alcotest.(check int) "halted" Cr_vm.Machine.halted_pc final.Cr_vm.Machine.pc

let () =
  Alcotest.run "vm"
    [
      ( "compiler",
        [
          Alcotest.test_case "reproduces the paper's listing" `Quick
            test_compiler_reproduces_paper_listing;
          Alcotest.test_case "widths and addresses" `Quick
            test_widths_and_addresses;
        ] );
      ( "machine",
        [
          Alcotest.test_case "fault-free loop" `Quick
            test_fault_free_execution_loops;
          Alcotest.test_case "corruption mid-comparison terminates (paper)"
            `Quick test_corruption_mid_comparison_terminates;
          Alcotest.test_case "corruption elsewhere recovers" `Quick
            test_corruption_elsewhere_recovers;
          Alcotest.test_case "enumeration" `Quick test_machine_enumeration;
          Alcotest.test_case "stack safety" `Quick test_stack_safety;
        ] );
      ( "experiment",
        [ Alcotest.test_case "E2 verdicts" `Quick test_experiment_verdicts ] );
      ( "drain program",
        [
          Alcotest.test_case "source recovers in x steps" `Quick
            test_drain_source_recovers;
          Alcotest.test_case "bytecode drains after loop-test faults" `Quick
            test_drain_bytecode_runs;
          Alcotest.test_case "bytecode not stabilizing" `Quick
            test_drain_bytecode_not_stabilizing;
          Alcotest.test_case "new instructions" `Quick test_new_instructions;
        ] );
    ]
