(* Tests for the extension experiments (E16-E18) and the supporting
   machinery: synchronous semantics, read/write atomicity refinement,
   exact hitting times, and the packaged graybox workflow. *)

let check = Alcotest.(check bool)

(* ---- E16: synchronous daemon ---- *)

let test_synchronous_semantics () =
  (* synchronous Dijkstra-3 is deterministic: every state has <= 1
     successor *)
  let e =
    Cr_guarded.Program.to_explicit_synchronous (Cr_tokenring.Btr3.dijkstra3 3)
  in
  let ok = ref true in
  for i = 0 to Cr_semantics.Explicit.num_states e - 1 do
    if Array.length (Cr_semantics.Explicit.successors e i) > 1 then ok := false
  done;
  check "deterministic" true !ok

let test_synchronous_stabilization () =
  List.iter
    (fun n ->
      check "Dijkstra3 sync" true
        (Cr_experiments.Ext_exps.sync_dijkstra3 n)
          .Cr_experiments.Ext_exps.stabilizes;
      check "Dijkstra4 sync" true
        (Cr_experiments.Ext_exps.sync_dijkstra4 n)
          .Cr_experiments.Ext_exps.stabilizes;
      check "Kstate sync" true
        (Cr_experiments.Ext_exps.sync_kstate n).Cr_experiments.Ext_exps.stabilizes)
    [ 2; 3 ]

let test_synchronous_vs_interleaving_consistency () =
  (* every synchronous transition is a composition of interleaved
     transitions on the same program?  Not in general (simultaneous writes
     interleave differently), but the synchronous step from a coherent
     single-token state coincides with firing the unique enabled process *)
  let n = 3 in
  let p = Cr_tokenring.Btr3.dijkstra3 n in
  let s = Cr_tokenring.Btr3.canonical n in
  match (Cr_guarded.Program.synchronous_step p s, Cr_guarded.Program.step p s) with
  | Some s', [ s'' ] -> check "same step" true (s' = s'')
  | _ -> Alcotest.fail "expected unique steps"

(* ---- E17: read/write atomicity ---- *)

let test_rw_layout_and_coherence () =
  let n = 2 in
  let s = Cr_tokenring.Rw_atomicity.canonical n in
  check "canonical coherent" true (Cr_tokenring.Rw_atomicity.coherent n s);
  check "counters projected" true
    (Cr_tokenring.Rw_atomicity.to_counters n s = Cr_tokenring.Btr3.canonical n);
  (* a read action repairs a stale cache *)
  let p = Cr_tokenring.Rw_atomicity.program n in
  let stale = Array.copy s in
  stale.(Cr_guarded.Layout.slot (Cr_tokenring.Rw_atomicity.layout n) "cp1") <-
    (s.(0) + 1) mod 3;
  check "stale not coherent" false (Cr_tokenring.Rw_atomicity.coherent n stale);
  let read1 =
    List.find
      (fun a -> Cr_guarded.Action.label a = "read_prev1")
      (Cr_guarded.Program.actions p)
  in
  (match Cr_guarded.Action.fire read1 stale with
  | Some repaired ->
      check "read repairs the cache" true
        (Cr_tokenring.Rw_atomicity.cp n repaired 1 = s.(0))
  | None -> Alcotest.fail "read should fire on a stale cache")

let test_rw_verdicts () =
  let v = Cr_experiments.Ext_exps.rw_experiment 2 in
  check "fault-free orbit keeps one token" true
    v.Cr_experiments.Ext_exps.fault_free_coherent_tokens;
  check "fault-free orbit refines Dijkstra-3 modulo read stutters" true
    v.Cr_experiments.Ext_exps.init_refines_dijkstra3;
  check "NOT stabilizing under the unconstrained daemon" false
    v.Cr_experiments.Ext_exps.stabilizes_unfair;
  check "NOT stabilizing even under weak fairness" false
    v.Cr_experiments.Ext_exps.stabilizes_fair

(* ---- E18: hitting times ---- *)

let test_hitting_small () =
  (* chain 2 -> 1 -> 0 with target {0}: E[1]=1, E[2]=2 *)
  let succ = [| [||]; [| 0 |]; [| 1 |] |] in
  let e =
    Cr_checker.Hitting.expected ~succ ~target:[| true; false; false |] ()
  in
  Alcotest.(check (float 1e-6)) "E[0]" 0.0 e.(0);
  Alcotest.(check (float 1e-6)) "E[1]" 1.0 e.(1);
  Alcotest.(check (float 1e-6)) "E[2]" 2.0 e.(2);
  (* branch: 2 -> {0, 1}, 1 -> 0: E[2] = 1 + (0 + 1)/2 = 1.5 *)
  let succ2 = [| [||]; [| 0 |]; [| 0; 1 |] |] in
  let e2 =
    Cr_checker.Hitting.expected ~succ:succ2 ~target:[| true; false; false |] ()
  in
  Alcotest.(check (float 1e-6)) "E[2] branch" 1.5 e2.(2);
  (* unreachable target is infinite *)
  let succ3 = [| [||]; [| 1 |] |] in
  ignore succ3;
  let e3 =
    Cr_checker.Hitting.expected ~succ:[| [||]; [||] |]
      ~target:[| true; false |] ()
  in
  check "unreachable infinite" true (e3.(1) = infinity)

let test_hitting_geometric () =
  (* 1 -> {0, 1'}, 1' -> 1: a cycle with 1/2 escape per visit to 1.
     E[1] = 1 + (0 + E[1'])/2, E[1'] = 1 + E[1]  =>  E[1] = 3. *)
  let succ = [| [||]; [| 0; 2 |]; [| 1 |] |] in
  let e = Cr_checker.Hitting.expected ~succ ~target:[| true; false; false |] () in
  Alcotest.(check (float 1e-5)) "geometric" 3.0 e.(1)

let test_hitting_vs_montecarlo () =
  (* exact expected mean agrees with a Monte-Carlo estimate on
     Dijkstra-3 at n=3 (uniform random start, uniform random daemon) *)
  let n = 3 in
  let h = Cr_experiments.Ext_exps.hitting_dijkstra3 n in
  let p = Cr_tokenring.Btr3.dijkstra3 n in
  let e = Cr_guarded.Program.to_explicit p in
  let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let alpha = Cr_semantics.Abstraction.tabulate (Cr_tokenring.Btr3.alpha n) e btr in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:btr () in
  let good = r.Cr_core.Stabilize.good_mask in
  let stats =
    Cr_sim.Runner.convergence_stats ~samples:4000 ~max_steps:100_000 ~seed:17
      ~converged:(fun s -> good.(Cr_semantics.Explicit.find e s))
      (fun i -> Cr_sim.Daemon.random ~seed:(3 * i))
      p
  in
  let mc = stats.Cr_sim.Runner.mean_steps in
  check "MC within 15% of exact"
    true
    (Float.abs (mc -. h.Cr_experiments.Ext_exps.expected_mean)
    < 0.15 *. Float.max 1.0 h.Cr_experiments.Ext_exps.expected_mean);
  (* and the expected worst is below the adversarial worst *)
  check "E-worst <= adversarial worst" true
    (h.Cr_experiments.Ext_exps.expected_worst
    <= float_of_int h.Cr_experiments.Ext_exps.worst_exact)

(* ---- E19: fault spans ---- *)

let test_spans_basic () =
  (* 0-1 BFS on a tiny graph: program 1->0, fault 0->1, 1->2; sources {0} *)
  let succ = Cr_kernel.Csr.of_rows [| [||]; [| 0 |]; [||] |] in
  let fault_succ = [| [| 1 |]; [| 2 |]; [||] |] in
  let d = Cr_fault.Spans.min_faults ~succ ~fault_succ ~sources:[ 0 ] in
  Alcotest.(check int) "source" 0 d.(0);
  Alcotest.(check int) "one fault" 1 d.(1);
  Alcotest.(check int) "two faults" 2 d.(2)

let test_spans_dijkstra3 () =
  let n = 3 in
  let spec = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n) in
  let rows =
    Cr_fault.Spans.analyze (Cr_tokenring.Btr3.dijkstra3 n) ~spec
      ~abstraction:(Cr_tokenring.Btr3.alpha n)
  in
  (match rows with
  | r0 :: r1 :: _ ->
      Alcotest.(check int) "k=0 span is Good" 18 r0.Cr_fault.Spans.span;
      Alcotest.(check int) "k=0 recovery is free" 0 r0.Cr_fault.Spans.worst_recovery;
      check "one fault leaves Good" true (r1.Cr_fault.Spans.span > 18);
      check "spans grow monotonically" true
        (let rec mono = function
           | a :: (b :: _ as rest) ->
               a.Cr_fault.Spans.span <= b.Cr_fault.Spans.span && mono rest
           | _ -> true
         in
         mono rows)
  | _ -> Alcotest.fail "expected at least two rows");
  (* the final span saturates at the full state space (faults are
     unrestricted corruption) *)
  let last = List.nth rows (List.length rows - 1) in
  Alcotest.(check int) "saturates at |Sigma|" 81 last.Cr_fault.Spans.span

(* ---- graybox workflow module ---- *)

let mk name states step init =
  Cr_semantics.Explicit.of_system
    (Cr_semantics.System.make ~name ~states ~step ~is_initial:init ~pp:Fmt.int ())

let test_graybox_workflow () =
  let spec = mk "A" [ 0; 1; 2 ] (function 1 -> [ 0 ] | _ -> []) (fun s -> s = 0) in
  let wrapper = mk "W" [ 0; 1; 2 ] (function 2 -> [ 1 ] | _ -> []) (fun s -> s = 0) in
  let impl = mk "C" [ 0; 1; 2 ] (function 1 -> [ 0 ] | _ -> []) (fun s -> s = 0) in
  let r = Cr_core.Graybox.run ~spec ~wrapper ~impl () in
  check "workflow sound" true r.Cr_core.Graybox.sound;
  check "conclusion holds" true
    r.Cr_core.Graybox.conclusion.Cr_core.Stabilize.holds;
  (* with an explicit W' *)
  let w' = mk "W'" [ 0; 1; 2 ] (function 2 -> [ 1 ] | _ -> []) (fun s -> s = 0) in
  let r2 = Cr_core.Graybox.run ~w' ~spec ~wrapper ~impl () in
  check "workflow with W' sound" true r2.Cr_core.Graybox.sound

(* qcheck: on random shared-space instances the packaged workflow is
   always sound (it is Theorem 5 restated) *)
let prop_graybox_sound =
  let gen =
    QCheck2.Gen.(
      let* n = int_range 2 5 in
      let* mk_edges =
        list_size (int_bound 10) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      let* w_edges =
        list_size (int_bound 6) (pair (int_bound (n - 1)) (int_bound (n - 1)))
      in
      let* keep = list_repeat (List.length mk_edges) bool in
      let* i0 = int_bound (n - 1) in
      return (n, mk_edges, w_edges, keep, i0))
  in
  QCheck2.Test.make ~name:"graybox workflow is always sound" ~count:300 gen
    (fun (n, a_edges, w_edges, keep, i0) ->
      let build name edges =
        mk name
          (List.init n (fun i -> i))
          (fun s ->
            List.filter_map
              (fun (i, j) -> if i = s && i <> j then Some j else None)
              edges)
          (fun s -> s = i0)
      in
      let a = build "A" a_edges in
      let c_edges = List.filteri (fun i _ -> List.nth keep i) a_edges in
      let c = build "C" c_edges in
      let w = build "W" w_edges in
      (Cr_core.Graybox.run ~spec:a ~wrapper:w ~impl:c ()).Cr_core.Graybox.sound)

let () =
  Alcotest.run "extensions"
    [
      ( "synchronous (E16)",
        [
          Alcotest.test_case "deterministic" `Quick test_synchronous_semantics;
          Alcotest.test_case "stabilization preserved" `Quick
            test_synchronous_stabilization;
          Alcotest.test_case "consistency with interleaving" `Quick
            test_synchronous_vs_interleaving_consistency;
        ] );
      ( "read-write atomicity (E17)",
        [
          Alcotest.test_case "layout and coherence" `Quick
            test_rw_layout_and_coherence;
          Alcotest.test_case "verdicts" `Quick test_rw_verdicts;
        ] );
      ( "hitting times (E18)",
        [
          Alcotest.test_case "small chains" `Quick test_hitting_small;
          Alcotest.test_case "geometric escape" `Quick test_hitting_geometric;
          Alcotest.test_case "agrees with Monte-Carlo" `Quick
            test_hitting_vs_montecarlo;
        ] );
      ( "fault spans (E19)",
        [
          Alcotest.test_case "0-1 BFS" `Quick test_spans_basic;
          Alcotest.test_case "Dijkstra-3 spans" `Quick test_spans_dijkstra3;
        ] );
      ( "graybox workflow",
        [
          Alcotest.test_case "paper instance" `Quick test_graybox_workflow;
          QCheck_alcotest.to_alcotest prop_graybox_sound;
        ] );
    ]
