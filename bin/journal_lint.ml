(* journal_lint — validate a CR_JOURNAL run-journal (JSONL).

     journal_lint FILE [--expect PREFIX]...

   Checks that every non-empty line is a JSON object carrying the
   provenance stamp ("ev", integer "seq", "rev", "jobs"), that sequence
   numbers are unique, that the stream opens with a journal.open header
   at seq 0, and that at least one event follows the header.  Each
   --expect PREFIX additionally requires at least one event whose "ev"
   starts with PREFIX (bin/ci.sh uses --expect compile.cache to assert
   the smoke run actually exercised the cache).  Exits 0 when the
   journal is well-formed, 1 otherwise. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let starts_with ~prefix s =
  String.length s >= String.length prefix
  && String.sub s 0 (String.length prefix) = prefix

let () =
  let expects = ref [] in
  let path = ref None in
  let rec parse = function
    | [] -> ()
    | "--expect" :: prefix :: rest ->
        expects := prefix :: !expects;
        parse rest
    | "--expect" :: [] -> fail "usage: journal_lint FILE [--expect PREFIX]..."
    | arg :: rest when !path = None ->
        path := Some arg;
        parse rest
    | _ -> fail "usage: journal_lint FILE [--expect PREFIX]..."
  in
  parse (List.tl (Array.to_list Sys.argv));
  let path =
    match !path with
    | Some p -> p
    | None -> fail "usage: journal_lint FILE [--expect PREFIX]..."
  in
  if not (Sys.file_exists path) then fail "journal_lint: no such file: %s" path;
  let ic = open_in_bin path in
  let body = really_input_string ic (in_channel_length ic) in
  close_in ic;
  let seqs = Hashtbl.create 256 in
  let events = ref [] in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if String.trim line <> "" then
        match Cr_obs.Json_check.parse_string line with
        | Error msg -> fail "journal_lint: %s:%d: invalid JSON: %s" path lineno msg
        | Ok j ->
            let str k = Option.bind (Cr_obs.Json_check.member k j) Cr_obs.Json_check.to_string in
            let int_ k = Option.bind (Cr_obs.Json_check.member k j) Cr_obs.Json_check.to_int in
            (match j with
            | Cr_obs.Json_check.Obj _ -> ()
            | _ -> fail "journal_lint: %s:%d: not a JSON object" path lineno);
            let ev =
              match str "ev" with
              | Some ev -> ev
              | None -> fail "journal_lint: %s:%d: missing \"ev\"" path lineno
            in
            let seq =
              match int_ "seq" with
              | Some s -> s
              | None ->
                  fail "journal_lint: %s:%d: missing integer \"seq\"" path lineno
            in
            if str "rev" = None || int_ "jobs" = None then
              fail "journal_lint: %s:%d: missing provenance (\"rev\"/\"jobs\")"
                path lineno;
            if Hashtbl.mem seqs seq then
              fail "journal_lint: %s:%d: duplicate seq %d" path lineno seq;
            Hashtbl.add seqs seq ();
            events := (seq, ev) :: !events)
    (String.split_on_char '\n' body);
  let events = List.rev !events in
  (match events with
  | [] -> fail "journal_lint: %s: empty journal" path
  | (seq0, ev0) :: rest ->
      if not (seq0 = 0 && ev0 = "journal.open") then
        fail "journal_lint: %s: first event is %S at seq %d, want journal.open \
              at seq 0"
          path ev0 seq0;
      if rest = [] then
        fail "journal_lint: %s: header only, no events recorded" path);
  List.iter
    (fun prefix ->
      if not (List.exists (fun (_, ev) -> starts_with ~prefix ev) events) then
        fail "journal_lint: %s: no event matching prefix %S" path prefix)
    !expects;
  let by_ev = Hashtbl.create 16 in
  List.iter
    (fun (_, ev) ->
      Hashtbl.replace by_ev ev (1 + Option.value ~default:0 (Hashtbl.find_opt by_ev ev)))
    events;
  let kinds =
    List.sort compare (Hashtbl.fold (fun ev n acc -> (ev, n) :: acc) by_ev [])
  in
  Printf.printf "journal_lint: %s OK (%d event(s): %s)\n" path
    (List.length events)
    (String.concat ", " (List.map (fun (ev, n) -> Printf.sprintf "%s=%d" ev n) kinds))
