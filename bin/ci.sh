#!/bin/sh
# Minimal CI gate: full build (including benches and examples) + test suite,
# then a telemetry smoke run: CR_STATS/CR_TRACE must produce a summary and a
# well-formed, non-empty Chrome-trace JSON, and --stats must print verdict
# costs.  Finally the static-analysis gate: crcheck lint --all must report
# zero error-severity findings over every registry system at the default
# ring size, and its --json findings artifact must be well-formed JSON.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest

trace=$(mktemp /tmp/cr.trace.XXXXXX)
lintjson=$(mktemp /tmp/cr.lint.XXXXXX)
trap 'rm -f "$trace" "$lintjson"' EXIT

CR_STATS=1 CR_TRACE="$trace" dune exec bin/crcheck.exe -- verify dijkstra3 --stats
test -s "$trace" || { echo "ci: CR_TRACE produced no output" >&2; exit 1; }
dune exec bin/trace_lint.exe -- "$trace"

dune exec bin/crcheck.exe -- lint --all --json "$lintjson" > /dev/null
test -s "$lintjson" || { echo "ci: lint --json produced no output" >&2; exit 1; }
dune exec bin/trace_lint.exe -- --json-only "$lintjson"

echo "ci: OK"
