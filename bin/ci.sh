#!/bin/sh
# Minimal CI gate: full build (including benches and examples) + test suite,
# then a telemetry smoke run: CR_STATS/CR_TRACE must produce a summary and a
# well-formed, non-empty Chrome-trace JSON, and --stats must print verdict
# costs.  Finally the static-analysis gate: crcheck lint --all must report
# zero error-severity findings over every registry system at the default
# ring size, and its --json findings artifact must be well-formed JSON.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest

trace=$(mktemp /tmp/cr.trace.XXXXXX)
lintjson=$(mktemp /tmp/cr.lint.XXXXXX)
trap 'rm -f "$trace" "$lintjson"' EXIT

CR_STATS=1 CR_TRACE="$trace" dune exec bin/crcheck.exe -- verify dijkstra3 --stats
test -s "$trace" || { echo "ci: CR_TRACE produced no output" >&2; exit 1; }
dune exec bin/trace_lint.exe -- "$trace"

dune exec bin/crcheck.exe -- lint --all --json "$lintjson" > /dev/null
test -s "$lintjson" || { echo "ci: lint --json produced no output" >&2; exit 1; }
dune exec bin/trace_lint.exe -- --json-only "$lintjson"

# Compile-cache smoke: verifying btr compiles the program and its spec,
# which are the same system, so the chunked+memoized compiler must report
# at least one cache hit in the CR_STATS summary.  btr itself is the
# fault-INtolerant abstract ring, so verify may exit 1 — only a crash or
# a usage error (exit > 1) fails the gate.
cachelog=$(mktemp /tmp/cr.cache.XXXXXX)
trap 'rm -f "$trace" "$lintjson" "$cachelog"' EXIT
rc=0
CR_JOBS=2 CR_STATS=1 dune exec bin/crcheck.exe -- verify btr --stats \
  > /dev/null 2> "$cachelog" || rc=$?
[ "$rc" -le 1 ] || { echo "ci: verify btr crashed (rc=$rc)" >&2; cat "$cachelog" >&2; exit 1; }
hits=$(sed -n 's/^ *compile\.cache\.hits *\([0-9][0-9]*\)$/\1/p' "$cachelog")
[ -n "$hits" ] && [ "$hits" -ge 1 ] || {
  echo "ci: expected nonzero compile.cache.hits in CR_STATS summary" >&2
  cat "$cachelog" >&2
  exit 1
}

# The committed benchmark artifact must stay well-formed JSON.
dune exec bin/trace_lint.exe -- --json-only BENCH_PR4.json

echo "ci: OK"
