#!/bin/sh
# Minimal CI gate: full build (including benches and examples) + test suite,
# then a telemetry smoke run: CR_STATS/CR_TRACE must produce a summary and a
# well-formed, non-empty Chrome-trace JSON, and --stats must print verdict
# costs.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest

trace=$(mktemp /tmp/cr.trace.XXXXXX)
trap 'rm -f "$trace"' EXIT

CR_STATS=1 CR_TRACE="$trace" dune exec bin/crcheck.exe -- verify dijkstra3 --stats
test -s "$trace" || { echo "ci: CR_TRACE produced no output" >&2; exit 1; }
dune exec bin/trace_lint.exe -- "$trace"

echo "ci: OK"
