#!/bin/sh
# Minimal CI gate: full build (including benches and examples) + test suite.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest
