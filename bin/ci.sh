#!/bin/sh
# Minimal CI gate: full build (including benches and examples) + test suite,
# then a telemetry smoke run: CR_STATS/CR_TRACE must produce a summary and a
# well-formed, non-empty Chrome-trace JSON, and --stats must print verdict
# costs.  Finally the static-analysis gate: crcheck lint --all must report
# zero error-severity findings over every registry system at the default
# ring size, and its --json findings artifact must be well-formed JSON.
set -eu
cd "$(dirname "$0")/.."
dune build @all
dune runtest

trace=$(mktemp /tmp/cr.trace.XXXXXX)
lintjson=$(mktemp /tmp/cr.lint.XXXXXX)
trap 'rm -f "$trace" "$lintjson"' EXIT

CR_STATS=1 CR_TRACE="$trace" dune exec bin/crcheck.exe -- verify dijkstra3 --stats
test -s "$trace" || { echo "ci: CR_TRACE produced no output" >&2; exit 1; }
dune exec bin/trace_lint.exe -- "$trace"

dune exec bin/crcheck.exe -- lint --all --json "$lintjson" > /dev/null
test -s "$lintjson" || { echo "ci: lint --json produced no output" >&2; exit 1; }
dune exec bin/trace_lint.exe -- --json-only "$lintjson"

# Abstract-interpretation gate: the flow audit must be error-clean over
# the whole registry, its definite verdicts must agree with exact
# enumeration at N = 3 (--check-exact), its --json artifact must be
# well-formed, and the journal stream must carry the flow.report events.
flowjson=$(mktemp /tmp/cr.flow.XXXXXX)
flowjournal=$(mktemp /tmp/cr.flowj.XXXXXX)
trap 'rm -f "$trace" "$lintjson" "$flowjson" "$flowjournal"' EXIT
: > "$flowjournal"
CR_JOURNAL="$flowjournal" dune exec bin/crcheck.exe -- flow --all -n 3 \
  --check-exact --json "$flowjson" > /dev/null
test -s "$flowjson" || { echo "ci: flow --json produced no output" >&2; exit 1; }
dune exec bin/trace_lint.exe -- --json-only "$flowjson"
dune exec bin/journal_lint.exe -- "$flowjournal" --expect flow.report

# Compile-cache smoke: verifying btr compiles the program and its spec,
# which are the same system, so the chunked+memoized compiler must report
# at least one cache hit in the CR_STATS summary.  btr itself is the
# fault-INtolerant abstract ring, so verify may exit 1 — only a crash or
# a usage error (exit > 1) fails the gate.
cachelog=$(mktemp /tmp/cr.cache.XXXXXX)
trap 'rm -f "$trace" "$lintjson" "$flowjson" "$flowjournal" "$cachelog"' EXIT
rc=0
CR_JOBS=2 CR_STATS=1 dune exec bin/crcheck.exe -- verify btr --stats \
  > /dev/null 2> "$cachelog" || rc=$?
[ "$rc" -le 1 ] || { echo "ci: verify btr crashed (rc=$rc)" >&2; cat "$cachelog" >&2; exit 1; }
hits=$(sed -n 's/^ *compile\.cache\.hits *\([0-9][0-9]*\)$/\1/p' "$cachelog")
[ -n "$hits" ] && [ "$hits" -ge 1 ] || {
  echo "ci: expected nonzero compile.cache.hits in CR_STATS summary" >&2
  cat "$cachelog" >&2
  exit 1
}

# Verdict-cache smoke: the experiment tables ask the same refinement /
# stabilization questions more than once, so the content-addressed
# Check_cache must report hits — and disabling it with CR_CHECK_CACHE=0
# must not change a single output byte.
expout=$(mktemp /tmp/cr.exp.XXXXXX)
expout0=$(mktemp /tmp/cr.exp0.XXXXXX)
explog=$(mktemp /tmp/cr.explog.XXXXXX)
trap 'rm -f "$trace" "$lintjson" "$flowjson" "$flowjournal" "$cachelog" "$expout" "$expout0" "$explog"' EXIT
CR_JOBS=2 CR_STATS=1 dune exec bin/crcheck.exe -- experiments --max-n 3 \
  > /dev/null 2> "$explog"
checkhits=$(sed -n 's/^ *check\.cache\.hits *\([0-9][0-9]*\)$/\1/p' "$explog")
[ -n "$checkhits" ] && [ "$checkhits" -ge 1 ] || {
  echo "ci: expected nonzero check.cache.hits in CR_STATS summary" >&2
  cat "$explog" >&2
  exit 1
}
# Byte-compare without CR_STATS: the stats cost appendix carries cache
# counters that legitimately differ between the two runs.
CR_JOBS=2 dune exec bin/crcheck.exe -- experiments --max-n 3 \
  > "$expout" 2> /dev/null
CR_JOBS=2 CR_CHECK_CACHE=0 dune exec bin/crcheck.exe -- experiments --max-n 3 \
  > "$expout0" 2> /dev/null
cmp -s "$expout" "$expout0" || {
  echo "ci: verdicts differ between cached and CR_CHECK_CACHE=0 runs" >&2
  diff "$expout" "$expout0" >&2 || true
  exit 1
}

# Journal smoke: a CR_JOURNAL run must produce a lintable JSONL stream
# that records the compile-cache traffic and the stabilize verdict —
# and, under CR_JOBS=4, the persistent pool's spawn event.  CR_PAR_CAP
# lifts the busy-domain cap so the pool really spawns even on a
# single-core CI host.
journal=$(mktemp /tmp/cr.journal.XXXXXX)
trap 'rm -f "$trace" "$lintjson" "$flowjson" "$flowjournal" "$cachelog" "$expout" "$expout0" "$explog" "$journal"' EXIT
: > "$journal"
CR_JOBS=4 CR_PAR_CAP=4 CR_JOURNAL="$journal" dune exec bin/crcheck.exe -- verify dijkstra3 -n 3 > /dev/null
test -s "$journal" || { echo "ci: CR_JOURNAL produced no output" >&2; exit 1; }
dune exec bin/journal_lint.exe -- "$journal" \
  --expect compile.cache --expect stabilize.verdict --expect par.pool

# Pool-shutdown smoke: a CR_JOBS=4 run spawns the persistent worker pool;
# the at_exit hook must join every domain, so the process exits promptly
# (the timeout catches a lingering-domain hang) with the verify verdict
# (btr is fault-INtolerant, so exit 1 is the expected verdict; > 1 or a
# timeout kill means a crash or a stuck pool).
rc=0
timeout 120 env CR_JOBS=4 CR_PAR_CAP=4 dune exec bin/crcheck.exe -- verify btr > /dev/null 2>&1 || rc=$?
[ "$rc" -le 1 ] || { echo "ci: CR_JOBS=4 verify btr did not exit cleanly (rc=$rc)" >&2; exit 1; }

# Byte-identical checker output across job counts: the pool, the chunked
# sweeps and the shared oracle must not change a single output byte.
jout1=$(mktemp /tmp/cr.jobs1.XXXXXX)
jout4=$(mktemp /tmp/cr.jobs4.XXXXXX)
trap 'rm -f "$trace" "$lintjson" "$flowjson" "$flowjournal" "$cachelog" "$expout" "$expout0" "$explog" "$journal" "$jout1" "$jout4"' EXIT
CR_JOBS=1 dune exec bin/crcheck.exe -- experiments --max-n 3 > "$jout1" 2> /dev/null
CR_JOBS=4 CR_PAR_CAP=4 dune exec bin/crcheck.exe -- experiments --max-n 3 > "$jout4" 2> /dev/null
cmp -s "$jout1" "$jout4" || {
  echo "ci: experiment output differs between CR_JOBS=1 and CR_JOBS=4" >&2
  diff "$jout1" "$jout4" >&2 || true
  exit 1
}

# Space-engine smoke: verify (a stabilization question) quantifies over
# ALL states, so it is dense by construction — forcing CR_SPACE=sparse
# must not change a single output byte.  btr is fault-INtolerant, so
# verify exits 1; only exit > 1 is a crash.
spdef=$(mktemp /tmp/cr.spdef.XXXXXX)
spsparse=$(mktemp /tmp/cr.spsparse.XXXXXX)
trap 'rm -f "$trace" "$lintjson" "$flowjson" "$flowjournal" "$cachelog" "$expout" "$expout0" "$explog" "$journal" "$jout1" "$jout4" "$spdef" "$spsparse"' EXIT
rc=0; dune exec bin/crcheck.exe -- verify btr > "$spdef" 2> /dev/null || rc=$?
[ "$rc" -le 1 ] || { echo "ci: verify btr crashed (rc=$rc)" >&2; exit 1; }
rc=0; CR_SPACE=sparse dune exec bin/crcheck.exe -- verify btr > "$spsparse" 2> /dev/null || rc=$?
[ "$rc" -le 1 ] || { echo "ci: CR_SPACE=sparse verify btr crashed (rc=$rc)" >&2; exit 1; }
cmp -s "$spdef" "$spsparse" || {
  echo "ci: verify output differs under CR_SPACE=sparse (verify must stay dense)" >&2
  diff "$spdef" "$spsparse" >&2 || true
  exit 1
}

# The sparse engine's reason to exist: an init-anchored query at a ring
# size whose dense space (3^20 states) cannot be materialized at all.
# refine reports failures (exit 1) — only exit > 1 or a hang fails CI.
rc=0
timeout 120 env CR_SPACE=sparse dune exec bin/crcheck.exe -- refine rw-dijkstra3 -n 6 > /dev/null 2>&1 || rc=$?
[ "$rc" -le 1 ] || { echo "ci: sparse refine rw-dijkstra3 -n 6 failed (rc=$rc)" >&2; exit 1; }

# The committed benchmark artifacts must stay well-formed JSON.
dune exec bin/trace_lint.exe -- --json-only BENCH_PR4.json
dune exec bin/trace_lint.exe -- --json-only BENCH_PR6.json
dune exec bin/trace_lint.exe -- --json-only BENCH_PR7.json
dune exec bin/trace_lint.exe -- --json-only BENCH_PR8.json
dune exec bin/trace_lint.exe -- --json-only BENCH_PR9.json
dune exec bin/trace_lint.exe -- --json-only BENCH_PR10.json

# The PR 10 artifact must carry the space-engine head-to-head rows (the
# PR 9 jobs-scaling matrix rides along in the same sweep).
for row in space-dense-compile-rw-n3 space-sparse-compile-rw-n3 \
           space-dense-refine-rw-n3 space-sparse-refine-rw-n3 \
           classify-seq-dijkstra3-n6 compile-seq-dijkstra3-n7 \
           stabilize-sweep-seq-dijkstra3-n6; do
  grep -q "\"$row\"" BENCH_PR10.json || {
    echo "ci: BENCH_PR10.json is missing row $row" >&2
    exit 1
  }
done

# Perf-regression gate: the committed baseline must self-diff cleanly
# (exit 0, no regressions), the PR 10 artifact must stay within the
# generous cross-machine gate of the PR 9 baseline, and a fresh artifact
# from this machine must stay within it too.  Low-r^2 rows are never
# gated and sub-microsecond rows get 4x slack, so this catches
# order-of-magnitude regressions without flaking on scheduler noise.
dune exec bin/perfdiff.exe -- BENCH_PR9.json BENCH_PR9.json > /dev/null
dune exec bin/perfdiff.exe -- --gate 100 BENCH_PR9.json BENCH_PR10.json > /dev/null
if [ "${CI_BENCH:-0}" = "1" ]; then
  dune exec bench/main.exe -- --json BENCH_PR10.json > /dev/null
  dune exec bin/trace_lint.exe -- --json-only BENCH_PR10.json
  dune exec bin/perfdiff.exe -- --gate 100 BENCH_PR9.json BENCH_PR10.json
fi

echo "ci: OK"
