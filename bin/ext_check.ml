let () =
  (* E16 synchronous *)
  List.iter (fun n ->
    let v3 = Cr_experiments.Ext_exps.sync_dijkstra3 n in
    let v4 = Cr_experiments.Ext_exps.sync_dijkstra4 n in
    let vk = Cr_experiments.Ext_exps.sync_kstate n in
    Format.printf "sync n=%d: d3=%b d4=%b kstate=%b@." n
      v3.Cr_experiments.Ext_exps.stabilizes v4.Cr_experiments.Ext_exps.stabilizes
      vk.Cr_experiments.Ext_exps.stabilizes;
    (match v3.Cr_experiments.Ext_exps.witness_cycle with
     | Some (s :: _) -> Format.printf "  d3 witness cycle head: %a@."
         (Cr_guarded.Layout.pp_state (Cr_tokenring.Btr3.layout n)) s
     | _ -> ())) [2;3;4];
  (* E17 rw *)
  let v = Cr_experiments.Ext_exps.rw_experiment 2 in
  Format.printf "rw n=2: states=%d unfair=%b fair=%b init-refines=%b orbit-1token=%b@."
    v.Cr_experiments.Ext_exps.states v.Cr_experiments.Ext_exps.stabilizes_unfair
    v.Cr_experiments.Ext_exps.stabilizes_fair
    v.Cr_experiments.Ext_exps.init_refines_dijkstra3
    v.Cr_experiments.Ext_exps.fault_free_coherent_tokens;
  (* E18 hitting *)
  List.iter (fun n ->
    let h = Cr_experiments.Ext_exps.hitting_dijkstra3 n in
    Format.printf "hitting d3 n=%d: worst=%d E-worst=%.2f E-mean=%.2f@." n
      h.Cr_experiments.Ext_exps.worst_exact h.Cr_experiments.Ext_exps.expected_worst
      h.Cr_experiments.Ext_exps.expected_mean) [2;3;4]
