(* perfdiff — noise-aware comparison of two bench --json artifacts.

     perfdiff BASE.json NEW.json [--gate PCT]

   Matches micro rows by name and prints a per-row delta table.  Rows
   flagged low_r2 in either artifact are reported but never gated;
   sub-microsecond rows get a 4x widened tolerance; every other row is
   gated at PCT (default 25).  Exits 0 when no trusted row regresses
   past its tolerance, 1 when one does, 2 on unreadable input — the
   regression gate bin/ci.sh runs against the committed baseline. *)

let usage () =
  prerr_endline "usage: perfdiff BASE.json NEW.json [--gate PCT]";
  exit 2

let () =
  let gate = ref None in
  let paths = ref [] in
  let rec parse = function
    | [] -> ()
    | "--gate" :: pct :: rest -> (
        match float_of_string_opt pct with
        | Some g when g > 0. ->
            gate := Some g;
            parse rest
        | _ -> usage ())
    | "--gate" :: [] -> usage ()
    | arg :: _ when String.length arg > 1 && arg.[0] = '-' -> usage ()
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse (List.tl (Array.to_list Sys.argv));
  match List.rev !paths with
  | [ base; next ] -> exit (Cr_obs.Perfdiff.run ?gate_pct:!gate base next)
  | _ -> usage ()
