(* trace_lint — validate a CR_TRACE Chrome-trace export.

     trace_lint FILE              validate a Chrome-trace artifact
     trace_lint --json-only FILE  only check FILE is well-formed JSON
                                  (e.g. the crcheck lint --json report)

   Exits 0 when FILE is well-formed JSON (and, without --json-only,
   contains at least one trace event), non-zero otherwise.  Used by
   bin/ci.sh to gate the CR_TRACE and lint artifacts without a JSON
   library dependency. *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline msg; exit 1) fmt

let () =
  let json_only, path =
    match Sys.argv with
    | [| _; path |] -> (false, path)
    | [| _; "--json-only"; path |] -> (true, path)
    | _ -> fail "usage: trace_lint [--json-only] FILE"
  in
  if not (Sys.file_exists path) then fail "trace_lint: no such file: %s" path;
  (match Cr_obs.Json_check.validate_file path with
  | Ok () -> ()
  | Error msg -> fail "trace_lint: %s: invalid JSON: %s" path msg);
  if json_only then begin
    Printf.printf "trace_lint: %s OK (well-formed JSON)\n" path;
    exit 0
  end;
  let ic = open_in_bin path in
  let len = in_channel_length ic in
  let body = really_input_string ic len in
  close_in ic;
  let count_occurrences needle =
    let nl = String.length needle in
    let rec go from acc =
      match String.index_from_opt body from needle.[0] with
      | Some i when i + nl <= String.length body ->
          if String.sub body i nl = needle then go (i + nl) (acc + 1)
          else go (i + 1) acc
      | _ -> acc
    in
    go 0 0
  in
  let spans = count_occurrences "\"ph\":\"X\"" in
  if spans = 0 then fail "trace_lint: %s: no span events" path;
  Printf.printf "trace_lint: %s OK (%d span event(s), %d byte(s))\n" path spans
    len
