(* crcheck — command-line driver for the convergence-refinement library.

     crcheck list                        enumerate the bundled systems
     crcheck verify SYSTEM [-n N]        model-check stabilization
     crcheck refine CONCRETE [-n N]      check [CONCRETE ⪯ its spec]
     crcheck trace SYSTEM [-n N] ...     inject faults and print recovery
     crcheck kstate [-n N] [-k K]        K-state threshold exploration
     crcheck lint SYSTEM|--all [-n N]    static analysis of the programs
     crcheck flow SYSTEM|--all [-n N]    abstract interpretation + stair
     crcheck perfdiff A.json B.json      noise-aware bench regression gate
*)

open Cmdliner

let pf = Format.printf

let n_arg =
  let doc = "Ring size: processes are 0..N (N >= 1)." in
  Arg.(value & opt int 3 & info [ "n"; "ring" ] ~docv:"N" ~doc)

let system_arg =
  let doc = "System name; see $(b,crcheck list)." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM" ~doc)

let stats_arg =
  let doc =
    "Collect checker telemetry and print the verdict's counter cost \
     (equivalent to running with CR_STATS=1)."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let space_arg =
  let doc =
    "State-space engine for init-anchored compiles: $(b,sparse) \
     (reachable fragment only, the default for refine), $(b,dense) \
     (full product space) or $(b,auto) (each call site's default).  \
     Equivalent to setting CR_SPACE; full-space checks (stabilization, \
     whole-space lint facts) are dense by construction either way."
  in
  Arg.(
    value
    & opt (some (enum [ ("dense", "dense"); ("sparse", "sparse"); ("auto", "auto") ])) None
    & info [ "space" ] ~docv:"ENGINE" ~doc)

(* The flag is sugar for the environment override: exporting it makes
   the engine choice reach every compile in the process and lands it in
   the journal.open header's CR_* provenance record. *)
let set_space = function None -> () | Some s -> Unix.putenv "CR_SPACE" s

let pp_cost what = function
  | None -> ()
  | Some [] -> pf "%s cost: (no counter movement)@." what
  | Some cost -> pf "%s cost:@.%a@." what Cr_obs.Obs.pp_snapshot cost

(* Unknown systems are a usage error: report on stderr and exit 2, so
   piped stdout (tables, --json artifacts) stays clean. *)
let with_entry name f =
  match Cr_experiments.Registry.find name with
  | None ->
      Format.eprintf "unknown system %S; try: %s@." name
        (String.concat ", " (Cr_experiments.Registry.names ()));
      2
  | Some e -> f e

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun name ->
        match Cr_experiments.Registry.find name with
        | Some e ->
            pf "%-12s %s@." e.Cr_experiments.Registry.name
              e.Cr_experiments.Registry.describe
        | None -> ())
      (Cr_experiments.Registry.names ());
    0
  in
  Cmd.v (Cmd.info "list" ~doc:"Enumerate the bundled systems")
    Term.(const run $ const ())

(* ---- verify ---- *)

let verify name n stats space =
  if stats then Cr_obs.Obs.force_enable ();
  set_space space;
  with_entry name (fun e ->
      let p = e.Cr_experiments.Registry.program n in
      let ep = Cr_experiments.Registry.explicit e n in
      let r = Cr_experiments.Registry.stabilization e n in
      pf "%a@." Cr_core.Stabilize.pp_report r;
      if stats then pp_cost "stabilize" r.Cr_core.Stabilize.cost;
      (match r.Cr_core.Stabilize.bad_cycle with
      | Some cyc ->
          pf "witness divergence:@.";
          List.iter
            (fun i -> pf "  %s@." (Cr_semantics.Explicit.state_to_string ep i))
            cyc
      | None -> ());
      (match r.Cr_core.Stabilize.bad_terminal with
      | Some t ->
          pf "witness deadlock: %s@."
            (Cr_semantics.Explicit.state_to_string ep t)
      | None -> ());
      (* also report the weakly-fair verdict when the strict one fails *)
      if not r.Cr_core.Stabilize.holds then begin
        let fair = Cr_sim.Glue.fair_tables p ep in
        let rf = Cr_experiments.Registry.stabilization ~fair e n in
        pf "under a weakly fair daemon: %s@."
          (if rf.Cr_core.Stabilize.holds then "stabilizing" else "still not stabilizing")
      end;
      if r.Cr_core.Stabilize.holds then 0 else 1)

let verify_cmd =
  Cmd.v
    (Cmd.info "verify"
       ~doc:"Model-check that SYSTEM is stabilizing to its specification")
    Term.(const verify $ system_arg $ n_arg $ stats_arg $ space_arg)

(* ---- refine ---- *)

let refine name n stats space =
  if stats then Cr_obs.Obs.force_enable ();
  set_space space;
  with_entry name (fun e ->
      (* the same compile the refinement reports index into: sparse by
         default, so failure anchors resolve against the right graph *)
      let ep = Cr_experiments.Registry.init_explicit e n in
      let spec = Cr_experiments.Registry.spec_explicit e n in
      let reports = Cr_experiments.Registry.refinements e n in
      List.iter
        (fun (label, report) ->
          pf "%-14s %a@." label Cr_core.Refine.pp_report report;
          if stats then pp_cost label report.Cr_core.Refine.cost)
        reports;
      (* a verdict-cache hit: "convergence" was just computed above *)
      let conv = List.assoc "convergence" reports in
      let reach = Cr_checker.Reach.reachable_from_initial ep in
      List.iter
        (fun f ->
          let anchor = Cr_core.Refine.failure_state f in
          pf "  %a  [%s]@." (Cr_core.Refine.pp_failure ep spec) f
            (if Cr_kernel.Bitset.get reach anchor then "reachable fault-free"
             else "requires a fault to reach"))
        conv.Cr_core.Refine.failures;
      if conv.Cr_core.Refine.holds then 0 else 1)

let refine_cmd =
  Cmd.v
    (Cmd.info "refine"
       ~doc:
         "Check the refinement relations between SYSTEM and its \
          specification (init / everywhere / convergence / \
          everywhere-eventually)")
    Term.(const refine $ system_arg $ n_arg $ stats_arg $ space_arg)

(* ---- trace ---- *)

let faults_arg =
  Arg.(value & opt int 2 & info [ "faults" ] ~docv:"K" ~doc:"Faults to inject.")

let steps_arg =
  Arg.(value & opt int 20 & info [ "steps" ] ~docv:"M" ~doc:"Steps to run.")

let seed_arg =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"S" ~doc:"Random seed.")

let daemon_arg =
  let daemons = [ ("random", `Random); ("round-robin", `RoundRobin) ] in
  Arg.(
    value
    & opt (enum daemons) `Random
    & info [ "daemon" ] ~docv:"DAEMON" ~doc:"Scheduler: random or round-robin.")

let trace name n faults steps seed daemon =
  with_entry name (fun e ->
      let p = e.Cr_experiments.Registry.program n in
      let layout = Cr_guarded.Program.layout p in
      let rng = Random.State.make [| seed |] in
      (* find a canonical legitimate state to corrupt: any converged state *)
      let start0 =
        List.find_opt
          (e.Cr_experiments.Registry.converged n)
          (Cr_guarded.Layout.enumerate layout)
      in
      match start0 with
      | None ->
          pf "no legitimate state found@.";
          1
      | Some s ->
          let s0 = Cr_fault.Injector.corrupt_k ~rng layout s ~k:faults in
          let d =
            match daemon with
            | `Random -> Cr_sim.Daemon.random ~seed
            | `RoundRobin -> Cr_sim.Daemon.round_robin ()
          in
          let render = e.Cr_experiments.Registry.render n in
          pf "legitimate start  %s@." (render s);
          pf "after %d fault(s) %s@." faults (render s0);
          let t = Cr_sim.Runner.run d p ~start:s0 ~max_steps:steps in
          List.iteri
            (fun i entry ->
              pf "%3d %-10s %s%s@." (i + 1) entry.Cr_sim.Runner.action
                (render entry.Cr_sim.Runner.state)
                (if e.Cr_experiments.Registry.converged n entry.Cr_sim.Runner.state
                 then "   [converged]"
                 else ""))
            t.Cr_sim.Runner.steps;
          ignore layout;
          0)

let trace_cmd =
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Corrupt a legitimate state and print the recovery trace")
    Term.(const trace $ system_arg $ n_arg $ faults_arg $ steps_arg $ seed_arg $ daemon_arg)

(* ---- kstate ---- *)

let kstate n =
  pf "ring 0..%d (%d processes)@." n (n + 1);
  let mk = Cr_experiments.Ring_exps.kstate_minimal_k n in
  pf "minimal stabilizing K: %d@." mk;
  for k = 2 to n + 2 do
    let r = Cr_experiments.Ring_exps.kstate_stabilizes ~n ~k in
    pf "  K=%d: %s%s@." k
      (if r.Cr_core.Stabilize.holds then "stabilizing" else "NOT stabilizing")
      (match r.Cr_core.Stabilize.worst_case_recovery with
      | Some w when r.Cr_core.Stabilize.holds ->
          Printf.sprintf " (worst-case recovery %d)" w
      | _ -> "")
  done;
  0

let kstate_cmd =
  Cmd.v
    (Cmd.info "kstate" ~doc:"Explore the K-state stabilization threshold")
    Term.(const kstate $ n_arg)

(* ---- dot export ---- *)

let dot name n output =
  with_entry name (fun e ->
      let ep = Cr_experiments.Registry.explicit e n in
      let r = Cr_experiments.Registry.stabilization e n in
      let good = r.Cr_core.Stabilize.good_mask in
      let highlight i = if good.(i) then Some "palegreen" else None in
      let dot_text = Cr_semantics.Dot.to_string ~highlight ep in
      (match output with
      | None -> print_string dot_text
      | Some path ->
          let oc = open_out path in
          output_string oc dot_text;
          close_out oc;
          pf "wrote %s (%d states; converged region in green)@." path
            (Cr_semantics.Explicit.num_states ep));
      0)

let dot_cmd =
  let output =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "output" ] ~docv:"FILE" ~doc:"Write to FILE instead of stdout.")
  in
  Cmd.v
    (Cmd.info "dot"
       ~doc:"Export the system's transition graph as Graphviz DOT, with the              converged region highlighted")
    Term.(const dot $ system_arg $ n_arg $ output)

(* ---- spans ---- *)

let spans name n =
  with_entry name (fun e ->
      let p = e.Cr_experiments.Registry.program n in
      let spec = Cr_experiments.Registry.spec_explicit e n in
      match
        Cr_fault.Spans.analyze p ~spec
          ~abstraction:(e.Cr_experiments.Registry.alpha n)
      with
      | rows ->
          pf "%-4s %-10s %-16s %s@." "k" "span" "worst-recovery"
            "E[recovery] worst";
          List.iter
            (fun (r : Cr_fault.Spans.row) ->
              pf "%-4d %-10d %-16d %.2f@." r.Cr_fault.Spans.k
                r.Cr_fault.Spans.span r.Cr_fault.Spans.worst_recovery
                r.Cr_fault.Spans.expected_recovery)
            rows;
          0
      | exception Invalid_argument msg ->
          pf "%s@." msg;
          1)

let spans_cmd =
  Cmd.v
    (Cmd.info "spans"
       ~doc:"Fault-span analysis: recovery cost vs number of faults")
    Term.(const spans $ system_arg $ n_arg)

(* ---- lint ---- *)

let lint name all n json stats =
  if stats then Cr_obs.Obs.force_enable ();
  let audit_rows () =
    match (all, name) with
    | true, None -> Ok (Cr_experiments.Lint_exps.audit ~n ())
    | false, Some name -> (
        match Cr_experiments.Registry.find name with
        | Some e -> Ok [ Cr_experiments.Lint_exps.audit_entry ~n e ]
        | None ->
            Format.eprintf "unknown system %S; try: %s@." name
              (String.concat ", " (Cr_experiments.Registry.names ()));
            Error 2)
    | true, Some _ | false, None ->
        Format.eprintf "lint: give exactly one of SYSTEM or --all@.";
        Error 2
  in
  let before = if stats then Some (Cr_obs.Obs.merged_snapshot ()) else None in
  match audit_rows () with
  | Error rc -> rc
  | Ok rows ->
      List.iter
        (fun row ->
          List.iter
            (fun f ->
              pf "%a@." Cr_lint.Lint.pp_finding f;
              Cr_obs.Journal.emit "lint.finding"
                [
                  ( "system",
                    Cr_obs.Journal.S
                      row.Cr_experiments.Lint_exps.entry
                        .Cr_experiments.Registry.name );
                  ("check", Cr_obs.Journal.S f.Cr_lint.Lint.key);
                  ( "severity",
                    Cr_obs.Journal.S
                      (Cr_lint.Lint.severity_string f.Cr_lint.Lint.severity) );
                  ( "provenance",
                    Cr_obs.Journal.S
                      (Cr_lint.Lint.provenance_string f.Cr_lint.Lint.provenance)
                  );
                  ("program", Cr_obs.Journal.S f.Cr_lint.Lint.program);
                  ("action", Cr_obs.Journal.S f.Cr_lint.Lint.action);
                ])
            row.Cr_experiments.Lint_exps.report.Cr_lint.Lint.findings)
        rows;
      let errors = Cr_experiments.Lint_exps.total_errors rows in
      let findings =
        List.fold_left
          (fun acc r ->
            acc
            + List.length r.Cr_experiments.Lint_exps.report.Cr_lint.Lint.findings)
          0 rows
      in
      pf "lint: %d system(s), %d finding(s), %d error(s)@." (List.length rows)
        findings errors;
      (match json with
      | None -> ()
      | Some path ->
          let body = Cr_experiments.Lint_exps.to_json ~n rows in
          (match Cr_obs.Json_check.validate_string body with
          | Ok () -> ()
          | Error msg ->
              Format.eprintf "lint: internal error: --json artifact invalid: %s@." msg;
              exit 3);
          let oc = open_out path in
          output_string oc body;
          close_out oc;
          pf "wrote %s@." path);
      (match before with
      | Some before ->
          pp_cost "lint"
            (Some (Cr_obs.Obs.diff ~before ~after:(Cr_obs.Obs.merged_snapshot ())))
      | None -> ());
      if errors > 0 then 1 else 0

let lint_cmd =
  let system_opt =
    let doc = "System to lint; see $(b,crcheck list).  Omit with $(b,--all)." in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SYSTEM" ~doc)
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Lint every registry system.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the findings as JSON to FILE.")
  in
  Cmd.v
    (Cmd.info "lint"
       ~doc:
         "Static analysis of the guarded-command programs: exact \
          read/write-set inference plus metadata-soundness, locality, \
          synchrony, liveness and interference checks.  Exits nonzero on \
          error-severity findings.")
    Term.(const lint $ system_opt $ all_arg $ n_arg $ json_arg $ stats_arg)

(* ---- flow ---- *)

(* --check-exact: confirm the flow engine's verdicts against the exact
   battery on the same read/write sets.  Dead-under-⊤ must coincide with
   the exact full-space U1 set, F2-exact with D1, and every abstract
   dead-from-init claim must be confirmed by the exact reachable
   closure (the exact set may be larger — flow is allowed to be
   inconclusive, never wrong). *)
let flow_check_exact (row : Cr_experiments.Flow_exps.row) =
  let fl = row.Cr_experiments.Flow_exps.flow in
  if fl.Cr_flow.Flow.degraded then []
  else begin
    let infos =
      List.map (fun f -> f.Cr_flow.Flow.info) fl.Cr_flow.Flow.facts
    in
    let exact =
      Cr_lint.Lint.run
        ~allow:row.Cr_experiments.Flow_exps.entry.Cr_experiments.Registry.lint_allow
        ~infos fl.Cr_flow.Flow.program
    in
    let sys = row.Cr_experiments.Flow_exps.entry.Cr_experiments.Registry.name in
    let labels key sev =
      List.sort_uniq compare
        (List.filter_map
           (fun (f : Cr_lint.Lint.finding) ->
             if f.Cr_lint.Lint.key = key && f.Cr_lint.Lint.severity = sev then
               Some f.Cr_lint.Lint.action
             else None)
           exact.Cr_lint.Lint.findings)
    in
    let flow_labels pred =
      List.sort_uniq compare
        (List.filter_map
           (fun (f : Cr_flow.Flow.fact) ->
             if pred f then
               Some (Cr_guarded.Action.label f.Cr_flow.Flow.info.Cr_lint.Rwsets.action)
             else None)
           fl.Cr_flow.Flow.facts)
    in
    let errs = ref [] in
    let dead_top = flow_labels (fun f -> not f.Cr_flow.Flow.top_enabled) in
    let u1_full = labels "U1" Cr_lint.Lint.Warning in
    if dead_top <> u1_full then
      errs :=
        Printf.sprintf
          "%s: flow dead-under-⊤ {%s} <> exact full-space U1 {%s}" sys
          (String.concat "," dead_top)
          (String.concat "," u1_full)
        :: !errs;
    let f2_exact =
      flow_labels (fun f -> f.Cr_flow.Flow.info.Cr_lint.Rwsets.invalid_witness <> None)
    in
    let d1 = labels "D1" Cr_lint.Lint.Error in
    if f2_exact <> d1 then
      errs :=
        Printf.sprintf "%s: flow F2-exact {%s} <> exact D1 {%s}" sys
          (String.concat "," f2_exact)
          (String.concat "," d1)
        :: !errs;
    let dead_init =
      flow_labels (fun f -> f.Cr_flow.Flow.init_enabled = Some false)
    in
    let u1_init = labels "U1" Cr_lint.Lint.Info in
    List.iter
      (fun lbl ->
        if not (List.mem lbl u1_init) && not (List.mem lbl u1_full) then
          errs :=
            Printf.sprintf
              "%s: flow claims %s dead from init, exact closure disagrees" sys
              lbl
            :: !errs)
      dead_init;
    List.rev !errs
  end

let flow_run name all n json stats check_exact =
  if stats then Cr_obs.Obs.force_enable ();
  let audit_rows () =
    match (all, name) with
    | true, None -> Ok (Cr_experiments.Flow_exps.audit ~n ())
    | false, Some name -> (
        match Cr_experiments.Registry.find name with
        | Some e -> Ok [ Cr_experiments.Flow_exps.audit_entry ~n e ]
        | None ->
            Format.eprintf "unknown system %S; try: %s@." name
              (String.concat ", " (Cr_experiments.Registry.names ()));
            Error 2)
    | true, Some _ | false, None ->
        Format.eprintf "flow: give exactly one of SYSTEM or --all@.";
        Error 2
  in
  let before = if stats then Some (Cr_obs.Obs.merged_snapshot ()) else None in
  match audit_rows () with
  | Error rc -> rc
  | Ok rows ->
      List.iter
        (fun (row : Cr_experiments.Flow_exps.row) ->
          let fl = row.Cr_experiments.Flow_exps.flow in
          pf "%a" Cr_experiments.Flow_exps.pp_row row;
          Cr_obs.Journal.emit "flow.report"
            [
              ( "system",
                Cr_obs.Journal.S
                  row.Cr_experiments.Flow_exps.entry.Cr_experiments.Registry.name
              );
              ( "program",
                Cr_obs.Journal.S (Cr_guarded.Program.name fl.Cr_flow.Flow.program)
              );
              ("degraded", Cr_obs.Journal.B fl.Cr_flow.Flow.degraded);
              ("errors", Cr_obs.Journal.I (Cr_flow.Flow.errors fl));
              ( "findings",
                Cr_obs.Journal.I (List.length fl.Cr_flow.Flow.findings) );
              ( "stair_depth",
                Cr_obs.Journal.I
                  (match row.Cr_experiments.Flow_exps.rank with
                  | None -> 0
                  | Some rk -> Cr_flow.Rank.depth rk) );
            ];
          List.iter
            (fun (f : Cr_lint.Lint.finding) ->
              Cr_obs.Journal.emit "flow.finding"
                [
                  ( "system",
                    Cr_obs.Journal.S
                      row.Cr_experiments.Flow_exps.entry
                        .Cr_experiments.Registry.name );
                  ("check", Cr_obs.Journal.S f.Cr_lint.Lint.key);
                  ( "severity",
                    Cr_obs.Journal.S
                      (Cr_lint.Lint.severity_string f.Cr_lint.Lint.severity) );
                  ( "provenance",
                    Cr_obs.Journal.S
                      (Cr_lint.Lint.provenance_string f.Cr_lint.Lint.provenance)
                  );
                  ("program", Cr_obs.Journal.S f.Cr_lint.Lint.program);
                  ("action", Cr_obs.Journal.S f.Cr_lint.Lint.action);
                ])
            fl.Cr_flow.Flow.findings)
        rows;
      let errors = Cr_experiments.Flow_exps.total_errors rows in
      let findings =
        List.fold_left
          (fun acc (r : Cr_experiments.Flow_exps.row) ->
            acc
            + List.length
                r.Cr_experiments.Flow_exps.flow.Cr_flow.Flow.findings)
          0 rows
      in
      let disagreements =
        if check_exact then List.concat_map flow_check_exact rows else []
      in
      List.iter
        (fun msg -> Format.eprintf "flow: exact disagreement: %s@." msg)
        disagreements;
      pf "flow: %d system(s), %d finding(s), %d error(s)%s@."
        (List.length rows) findings errors
        (if check_exact then
           Printf.sprintf ", %d exact disagreement(s)"
             (List.length disagreements)
         else "");
      (match json with
      | None -> ()
      | Some path ->
          let body = Cr_experiments.Flow_exps.to_json ~n rows in
          (match Cr_obs.Json_check.validate_string body with
          | Ok () -> ()
          | Error msg ->
              Format.eprintf "flow: internal error: --json artifact invalid: %s@."
                msg;
              exit 3);
          let oc = open_out path in
          output_string oc body;
          close_out oc;
          pf "wrote %s@." path);
      (match before with
      | Some before ->
          pp_cost "flow"
            (Some (Cr_obs.Obs.diff ~before ~after:(Cr_obs.Obs.merged_snapshot ())))
      | None -> ());
      if errors > 0 || disagreements <> [] then 1 else 0

let flow_cmd =
  let system_opt =
    let doc =
      "System to analyze; see $(b,crcheck list).  Omit with $(b,--all)."
    in
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SYSTEM" ~doc)
  in
  let all_arg =
    Arg.(value & flag & info [ "all" ] ~doc:"Analyze every registry system.")
  in
  let json_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "json" ] ~docv:"FILE" ~doc:"Write the audit as JSON to FILE.")
  in
  let check_exact_arg =
    Arg.(
      value & flag
      & info [ "check-exact" ]
          ~doc:
            "Cross-check every flow verdict against the exact battery \
             (intended for small N); exits nonzero on any disagreement.")
  in
  Cmd.v
    (Cmd.info "flow"
       ~doc:
         "Abstract interpretation of the guarded-command programs: \
          per-slot domains, transfer functions localized by exact \
          read/write sets, fixpoints from ⊤ and from the initial \
          predicate, dead-guard/domain/constant-slot findings, and the \
          convergence-stair layering of the slot dependency graph.  \
          Exits nonzero on error-severity findings.")
    Term.(
      const flow_run $ system_opt $ all_arg $ n_arg $ json_arg $ stats_arg
      $ check_exact_arg)

(* ---- perfdiff ---- *)

let perfdiff_cmd =
  let base_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"BASE.json" ~doc:"Baseline bench --json artifact.")
  in
  let next_arg =
    Arg.(
      required
      & pos 1 (some file) None
      & info [] ~docv:"NEW.json" ~doc:"New bench --json artifact to judge.")
  in
  let gate_arg =
    Arg.(
      value & opt float 25.
      & info [ "gate" ] ~docv:"PCT"
          ~doc:
            "Regression gate in percent for trusted rows (low-r2 rows are \
             never gated; sub-microsecond rows get 4x this tolerance).")
  in
  let run base next gate = Cr_obs.Perfdiff.run ~gate_pct:gate base next in
  Cmd.v
    (Cmd.info "perfdiff"
       ~doc:
         "Compare two bench --json artifacts row by row and exit nonzero \
          when any trusted row regresses past the gate")
    Term.(const run $ base_arg $ next_arg $ gate_arg)

(* ---- experiments ---- *)

let experiments_cmd =
  let max_n =
    Arg.(
      value & opt int 3
      & info [ "max-n" ] ~docv:"N" ~doc:"Largest ring size in the sweeps.")
  in
  let run max_n stats =
    if stats then Cr_obs.Obs.force_enable ();
    Cr_experiments.Report.all ~ns:(List.init (max_n - 1) (fun i -> i + 2)) ();
    0
  in
  Cmd.v
    (Cmd.info "experiments"
       ~doc:"Regenerate every experiment table (same output as bench/main.exe)")
    Term.(const run $ max_n $ stats_arg)

let main =
  let doc = "model checking and refinement checking for Convergence Refinement" in
  let info = Cmd.info "crcheck" ~version:"1.0.0" ~doc in
  Cmd.group info [ list_cmd; verify_cmd; refine_cmd; trace_cmd; kstate_cmd; spans_cmd; dot_cmd; lint_cmd; flow_cmd; perfdiff_cmd; experiments_cmd ]

let () = exit (Cmd.eval' main)
