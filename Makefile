# Convenience targets; everything is plain dune underneath.

.PHONY: all build test bench bench-json perfdiff ci examples doc clean

all: build

build:
	dune build @all

test:
	dune runtest

test-force:
	dune runtest --force --no-buffer

bench:
	dune exec bench/main.exe

bench-tables:
	dune exec bench/main.exe -- --no-micro

bench-json:
	dune exec bench/main.exe -- --json BENCH_PR10.json

perfdiff: bench-json
	dune exec bin/perfdiff.exe -- --gate 100 BENCH_PR9.json BENCH_PR10.json

ci:
	bin/ci.sh

examples:
	dune exec examples/quickstart.exe
	dune exec examples/graybox_design.exe
	dune exec examples/fault_injection.exe
	dune exec examples/bytecode_demo.exe
	dune exec examples/bidding_demo.exe
	dune exec examples/kstate_derivation.exe

doc:
	dune build @doc

clean:
	dune clean
