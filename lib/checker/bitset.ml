(* Re-export of the packed boolean masks, for checker-side call sites
   (see [Csr] for the arrangement). *)

include Cr_semantics.Bitset
