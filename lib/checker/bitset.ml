(* Re-export of the word-parallel packed boolean masks, for checker-side
   call sites (see [Csr] for the arrangement). *)

include Cr_semantics.Bitset
