(* Strongly connected components, iterative Tarjan. *)

module Csr = Cr_kernel.Csr
module Bitset = Cr_kernel.Bitset

type t = {
  component : int array;  (* state index -> component id *)
  count : int;
  sizes : int array;  (* component id -> number of states *)
}

let c_runs = Cr_obs.Obs.counter "scc.runs"
let c_components = Cr_obs.Obs.counter "scc.components"
let c_largest = Cr_obs.Obs.counter ~kind:Cr_obs.Obs.Max "scc.largest"

let compute (succ : int array array) : t =
  Cr_obs.Obs.span "scc.compute" @@ fun () ->
  let n = Array.length succ in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  (* Tarjan stack and DFS call stack as flat int arrays (both bounded by
     n), so a compute costs no allocation beyond these six arrays. *)
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let call_v = Array.make n 0 in
  let call_c = Array.make n 0 in
  let cp = ref 0 in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let start v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack.(!sp) <- v;
    incr sp;
    on_stack.(v) <- true;
    call_v.(!cp) <- v;
    call_c.(!cp) <- 0;
    incr cp
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      start root;
      while !cp > 0 do
        let v = call_v.(!cp - 1) in
        let c = call_c.(!cp - 1) in
        let row = succ.(v) in
        if c < Array.length row then begin
          let w = row.(c) in
          call_c.(!cp - 1) <- c + 1;
          if index.(w) = -1 then start w
          else if on_stack.(w) && index.(w) < lowlink.(v) then
            lowlink.(v) <- index.(w)
        end
        else begin
          decr cp;
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              component.(w) <- !next_comp;
              if w = v then continue := false
            done;
            incr next_comp
          end;
          if !cp > 0 then begin
            let parent = call_v.(!cp - 1) in
            if lowlink.(v) < lowlink.(parent) then
              lowlink.(parent) <- lowlink.(v)
          end
        end
      done
    end
  done;
  let sizes = Array.make !next_comp 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) component;
  if Cr_obs.Obs.tracking () then begin
    Cr_obs.Obs.incr c_runs;
    Cr_obs.Obs.add c_components !next_comp;
    Cr_obs.Obs.record_max c_largest (Array.fold_left max 0 sizes)
  end;
  { component; count = !next_comp; sizes }

(* [compute] over the flat CSR arrays: same iterative Tarjan, same
   traversal order (row k-th successor = sorted k-th successor), so the
   component ids are identical to [compute (Csr.to_rows g)] — the qcheck
   properties rely on this. *)
let compute_csr (g : Csr.t) : t =
  Cr_obs.Obs.span "scc.compute" @@ fun () ->
  let n = Csr.num_states g in
  let rp = Csr.row_ptr g and tg = Csr.targets g in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let call_v = Array.make n 0 in
  let call_c = Array.make n 0 in
  let cp = ref 0 in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  let start v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    stack.(!sp) <- v;
    incr sp;
    on_stack.(v) <- true;
    call_v.(!cp) <- v;
    call_c.(!cp) <- 0;
    incr cp
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      start root;
      while !cp > 0 do
        let v = call_v.(!cp - 1) in
        let c = call_c.(!cp - 1) in
        if c < rp.(v + 1) - rp.(v) then begin
          let w = tg.(rp.(v) + c) in
          call_c.(!cp - 1) <- c + 1;
          if index.(w) = -1 then start w
          else if on_stack.(w) && index.(w) < lowlink.(v) then
            lowlink.(v) <- index.(w)
        end
        else begin
          decr cp;
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              decr sp;
              let w = stack.(!sp) in
              on_stack.(w) <- false;
              component.(w) <- !next_comp;
              if w = v then continue := false
            done;
            incr next_comp
          end;
          if !cp > 0 then begin
            let parent = call_v.(!cp - 1) in
            if lowlink.(v) < lowlink.(parent) then
              lowlink.(parent) <- lowlink.(v)
          end
        end
      done
    end
  done;
  let sizes = Array.make !next_comp 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) component;
  if Cr_obs.Obs.tracking () then begin
    Cr_obs.Obs.incr c_runs;
    Cr_obs.Obs.add c_components !next_comp;
    Cr_obs.Obs.record_max c_largest (Array.fold_left max 0 sizes)
  end;
  { component; count = !next_comp; sizes }

(* Is state [i] on some cycle?  True iff its component has >= 2 states
   (self-loops are excluded from our graphs by construction). *)
let on_cycle t i = t.sizes.(t.component.(i)) >= 2

(* Does edge (i, j) lie on a cycle, i.e. are i and j in the same
   component? *)
let edge_on_cycle t i j = t.component.(i) = t.component.(j)

(* Adjacency restricted to the masked region, allocation-light: rows kept
   whole are shared with the input, filtered rows are built by count +
   fill (no intermediate lists). *)
let restrict succ mask =
  Array.mapi
    (fun i js ->
      if not mask.(i) then [||]
      else begin
        let kept = ref 0 in
        Array.iter (fun j -> if mask.(j) then incr kept) js;
        if !kept = Array.length js then js
        else begin
          let out = Array.make !kept 0 in
          let k = ref 0 in
          Array.iter
            (fun j ->
              if mask.(j) then begin
                out.(!k) <- j;
                incr k
              end)
            js;
          out
        end
      end)
    succ

(* Is the subgraph induced by [mask] acyclic?  Computed on the restricted
   adjacency. *)
let acyclic_within succ mask =
  let n = Array.length succ in
  let t = compute (restrict succ mask) in
  let ok = ref true in
  for i = 0 to n - 1 do
    if mask.(i) && t.sizes.(t.component.(i)) >= 2 then ok := false
  done;
  !ok

let acyclic_within_csr g mask =
  let t = compute_csr (Csr.restrict g mask) in
  let ok = ref true in
  Bitset.iter_set_bits mask (fun i ->
      if t.sizes.(t.component.(i)) >= 2 then ok := false);
  !ok
