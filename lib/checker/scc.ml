(* Strongly connected components, iterative Tarjan. *)

type t = {
  component : int array;  (* state index -> component id *)
  count : int;
  sizes : int array;  (* component id -> number of states *)
}

let compute (succ : int array array) : t =
  let n = Array.length succ in
  let index = Array.make n (-1) in
  let lowlink = Array.make n 0 in
  let on_stack = Array.make n false in
  let component = Array.make n (-1) in
  let stack = Stack.create () in
  let next_index = ref 0 in
  let next_comp = ref 0 in
  (* Iterative DFS with an explicit call stack of (node, next-child). *)
  let call = Stack.create () in
  let start v =
    index.(v) <- !next_index;
    lowlink.(v) <- !next_index;
    incr next_index;
    Stack.push v stack;
    on_stack.(v) <- true;
    Stack.push (v, ref 0) call
  in
  for root = 0 to n - 1 do
    if index.(root) = -1 then begin
      start root;
      while not (Stack.is_empty call) do
        let v, child = Stack.top call in
        if !child < Array.length succ.(v) then begin
          let w = succ.(v).(!child) in
          incr child;
          if index.(w) = -1 then start w
          else if on_stack.(w) then
            lowlink.(v) <- min lowlink.(v) index.(w)
        end
        else begin
          ignore (Stack.pop call);
          if lowlink.(v) = index.(v) then begin
            let continue = ref true in
            while !continue do
              let w = Stack.pop stack in
              on_stack.(w) <- false;
              component.(w) <- !next_comp;
              if w = v then continue := false
            done;
            incr next_comp
          end;
          if not (Stack.is_empty call) then begin
            let parent, _ = Stack.top call in
            lowlink.(parent) <- min lowlink.(parent) lowlink.(v)
          end
        end
      done
    end
  done;
  let sizes = Array.make !next_comp 0 in
  Array.iter (fun c -> sizes.(c) <- sizes.(c) + 1) component;
  { component; count = !next_comp; sizes }

(* Is state [i] on some cycle?  True iff its component has >= 2 states
   (self-loops are excluded from our graphs by construction). *)
let on_cycle t i = t.sizes.(t.component.(i)) >= 2

(* Does edge (i, j) lie on a cycle, i.e. are i and j in the same
   component? *)
let edge_on_cycle t i j = t.component.(i) = t.component.(j)

(* Is the subgraph induced by [mask] acyclic?  Computed on the restricted
   adjacency. *)
let acyclic_within succ mask =
  let n = Array.length succ in
  let restricted =
    Array.init n (fun i ->
        if not mask.(i) then [||]
        else Array.of_list (List.filter (fun j -> mask.(j)) (Array.to_list succ.(i))))
  in
  let t = compute restricted in
  let ok = ref true in
  for i = 0 to n - 1 do
    if mask.(i) && t.sizes.(t.component.(i)) >= 2 then ok := false
  done;
  !ok
