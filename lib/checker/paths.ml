(* Shortest-path queries (BFS) over adjacency arrays. *)

let bfs_distances ~succ ~src =
  let n = Array.length succ in
  let dist = Array.make n (-1) in
  let q = Queue.create () in
  dist.(src) <- 0;
  Queue.push src q;
  while not (Queue.is_empty q) do
    let i = Queue.pop q in
    Array.iter
      (fun j ->
        if dist.(j) = -1 then begin
          dist.(j) <- dist.(i) + 1;
          Queue.push j q
        end)
      succ.(i)
  done;
  dist

(* Length of the shortest nonempty path from [src] to [dst]; [None] when
   unreachable by a nonempty path.  (src = dst requires a cycle.) *)
let shortest_nonempty ~succ ~src ~dst =
  if src <> dst then
    let d = bfs_distances ~succ ~src in
    if d.(dst) >= 1 then Some d.(dst) else None
  else
    (* shortest cycle through src *)
    let best = ref None in
    Array.iter
      (fun j ->
        let d = bfs_distances ~succ ~src:j in
        if d.(dst) >= 0 then
          let len = 1 + d.(dst) in
          match !best with
          | Some b when b <= len -> ()
          | _ -> best := Some len)
      succ.(src);
    !best

(* Reconstruct one shortest path src -> dst (list of states, inclusive);
   requires dst reachable. *)
let shortest_path ~succ ~src ~dst =
  if src = dst then Some [ src ]
  else
    let n = Array.length succ in
    let parent = Array.make n (-1) in
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let i = Queue.pop q in
      Array.iter
        (fun j ->
          if dist.(j) = -1 then begin
            dist.(j) <- dist.(i) + 1;
            parent.(j) <- i;
            if j = dst then found := true;
            Queue.push j q
          end)
        succ.(i)
    done;
    if not !found then None
    else begin
      let rec build acc i = if i = src then src :: acc else build (i :: acc) parent.(i) in
      Some (build [] dst)
    end

(* Longest path (number of edges) from each masked state while staying in
   the masked region, where leaving the region (or stopping) costs nothing.
   Requires the masked subgraph to be acyclic; raises otherwise.  Used for
   worst-case convergence times: the masked region is the non-converged
   part of the state space. *)
exception Cyclic

let longest_within ~succ ~mask =
  let n = Array.length succ in
  let memo = Array.make n (-1) in
  let visiting = Array.make n false in
  let rec go i =
    if not mask.(i) then 0
    else if memo.(i) >= 0 then memo.(i)
    else begin
      if visiting.(i) then raise Cyclic;
      visiting.(i) <- true;
      let best = ref 0 in
      Array.iter
        (fun j ->
          let v = 1 + go j in
          if v > !best then best := v)
        succ.(i);
      visiting.(i) <- false;
      memo.(i) <- !best;
      !best
    end
  in
  (* The recursion depth is bounded by the longest simple path; make it
     explicit-stack-safe for large graphs by iterating roots in a loop and
     relying on OCaml's default stack for the modest sizes we verify. *)
  Array.init n (fun i -> if mask.(i) then go i else 0)
