(* Shortest-path queries (BFS) and DAG longest paths.

   The CSR kernels are the production path (the memoized oracle is
   CSR-backed since the classify sweep feeds it the explicit system's
   flat graph directly); the array-of-rows kernels remain as the
   independent reference implementation for the qcheck properties. *)

module Csr = Cr_kernel.Csr
module Par = Cr_kernel.Par
module Bitset = Cr_kernel.Bitset

(* Telemetry (all no-ops unless CR_STATS/CR_TRACE is on).  BFS expansion
   counts are published once per BFS from the final queue tail — every
   expanded node was enqueued exactly once — so the hot loop itself
   carries no instrumentation. *)
let c_bfs_runs = Cr_obs.Obs.counter "paths.bfs.runs"
let c_bfs_expansions = Cr_obs.Obs.counter "paths.bfs.expansions"
let c_oracle_hits = Cr_obs.Obs.counter "paths.oracle.hits"
let c_oracle_misses = Cr_obs.Obs.counter "paths.oracle.misses"

(* Flat-array FIFO: every node is enqueued at most once, so capacity n
   suffices and the BFS allocates nothing but the two arrays. *)
let bfs_distances ~succ ~src =
  let n = Array.length succ in
  let dist = Array.make n (-1) in
  let q = Array.make n 0 in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  q.(0) <- src;
  tail := 1;
  while !head < !tail do
    let i = q.(!head) in
    incr head;
    let d = dist.(i) + 1 in
    Array.iter
      (fun j ->
        if dist.(j) = -1 then begin
          dist.(j) <- d;
          q.(!tail) <- j;
          incr tail
        end)
      succ.(i)
  done;
  Cr_obs.Obs.incr c_bfs_runs;
  Cr_obs.Obs.add c_bfs_expansions !tail;
  dist

(* Same BFS over the flat CSR arrays.  [q] is caller-provided scratch of
   capacity >= n so the memoizing oracle shares one queue across
   sources. *)
let bfs_into ~(g : Csr.t) ~(q : int array) ~src =
  let rp = Csr.row_ptr g and tg = Csr.targets g in
  let dist = Array.make (Csr.num_states g) (-1) in
  let head = ref 0 and tail = ref 0 in
  dist.(src) <- 0;
  q.(0) <- src;
  tail := 1;
  while !head < !tail do
    let i = q.(!head) in
    incr head;
    let d = dist.(i) + 1 in
    for k = rp.(i) to rp.(i + 1) - 1 do
      let j = tg.(k) in
      if dist.(j) = -1 then begin
        dist.(j) <- d;
        q.(!tail) <- j;
        incr tail
      end
    done
  done;
  Cr_obs.Obs.incr c_bfs_runs;
  Cr_obs.Obs.add c_bfs_expansions !tail;
  dist

let bfs_distances_csr ~succ ~src =
  bfs_into ~g:succ ~q:(Array.make (max (Csr.num_states succ) 1) 0) ~src

(* A shortest-path oracle over a fixed graph: per-source BFS distance rows
   computed on demand and memoized, so a checker run that queries many
   (src, dst) pairs (one per non-exact edge in [Refine.classify]) pays one
   BFS per distinct source instead of one per query — including the
   successor BFSs of the src = dst cycle case, which are shared with the
   plain queries. *)
type oracle = {
  osucc : Csr.t;
  rows : int array option array;  (* src -> memoized distance row *)
  q : int array;  (* scratch BFS queue, shared across sources *)
}

let make_oracle ~succ =
  let n = Csr.num_states succ in
  { osucc = succ; rows = Array.make n None; q = Array.make (max n 1) 0 }

let oracle_dist o ~src =
  match o.rows.(src) with
  | Some d ->
      Cr_obs.Obs.incr c_oracle_hits;
      d
  | None ->
      Cr_obs.Obs.incr c_oracle_misses;
      let dist = bfs_into ~g:o.osucc ~q:o.q ~src in
      o.rows.(src) <- Some dist;
      dist

(* Pre-seed the memo for a batch of upcoming queries, one entry per
   query *occurrence* (duplicates expected — pass the source of every
   pending query, not the distinct set).  Fresh sources get their BFS
   rows computed through [Par] — each an independent item with its own
   scratch queue — and installed in the memo.  The hit/miss accounting
   reproduces what querying the batch in order would have recorded (one
   miss per fresh source, one hit per remaining entry), so the merged
   oracle counters stay CR_JOBS-invariant.  After preseeding, queries
   with a listed source are pure memo reads ({!shortest_nonempty_seeded}),
   which is what makes one oracle safe to share across classify chunks. *)
let preseed_oracle o ~(sources : int array) =
  let n = Csr.num_states o.osucc in
  let seen = Bitset.create n in
  let fresh = ref [] and nfresh = ref 0 in
  Array.iter
    (fun s ->
      if o.rows.(s) = None && not (Bitset.get seen s) then begin
        Bitset.set seen s;
        fresh := s :: !fresh;
        incr nfresh
      end)
    sources;
  let fresh = Array.of_list (List.rev !fresh) in
  let nf = Array.length fresh in
  if nf > 0 then begin
    (* Chunked so each executor allocates one scratch queue for its whole
       share (a queue per source is n words of garbage per BFS); sources
       are distinct, so each memo slot has a unique writer. *)
    let nchunks = max 1 (min nf (Par.current_jobs () * 8)) in
    let chunks =
      Array.init nchunks (fun d ->
          (d * nf / nchunks, (d + 1) * nf / nchunks))
    in
    ignore
      (Par.map_array
         (fun (lo, hi) ->
           let q = Array.make (max n 1) 0 in
           for k = lo to hi - 1 do
             let src = fresh.(k) in
             o.rows.(src) <- Some (bfs_into ~g:o.osucc ~q ~src)
           done)
         chunks
        : unit array)
  end;
  Cr_obs.Obs.add c_oracle_misses !nfresh;
  Cr_obs.Obs.add c_oracle_hits (Array.length sources - !nfresh)

let shortest_nonempty_memo o ~src ~dst =
  if src <> dst then
    let d = oracle_dist o ~src in
    if d.(dst) >= 1 then Some d.(dst) else None
  else begin
    (* shortest cycle through src *)
    let best = ref None in
    Csr.iter_row o.osucc src (fun j ->
        let d = oracle_dist o ~src:j in
        if d.(dst) >= 0 then
          let len = 1 + d.(dst) in
          match !best with
          | Some b when b <= len -> ()
          | _ -> best := Some len);
    !best
  end

(* Query a preseeded source: no accounting (the preseed batch already
   charged this query) and no mutation, so concurrent domains may share
   one oracle.  A source the preseed batch did not cover — or a src =
   dst cycle query — falls back to the memoizing path, which is correct
   but mutating: parallel callers must preseed every source they will
   query and never ask for cycles. *)
let shortest_nonempty_seeded o ~src ~dst =
  match o.rows.(src) with
  | Some d when src <> dst -> if d.(dst) >= 1 then Some d.(dst) else None
  | _ -> shortest_nonempty_memo o ~src ~dst

(* Length of the shortest nonempty path from [src] to [dst]; [None] when
   unreachable by a nonempty path.  (src = dst requires a cycle.) *)
let shortest_nonempty ~succ ~src ~dst =
  if src <> dst then
    let d = bfs_distances ~succ ~src in
    if d.(dst) >= 1 then Some d.(dst) else None
  else
    (* shortest cycle through src *)
    let best = ref None in
    Array.iter
      (fun j ->
        let d = bfs_distances ~succ ~src:j in
        if d.(dst) >= 0 then
          let len = 1 + d.(dst) in
          match !best with
          | Some b when b <= len -> ()
          | _ -> best := Some len)
      succ.(src);
    !best

(* Reconstruct one shortest path src -> dst (list of states, inclusive);
   requires dst reachable. *)
let shortest_path ~succ ~src ~dst =
  if src = dst then Some [ src ]
  else
    let n = Array.length succ in
    let parent = Array.make n (-1) in
    let dist = Array.make n (-1) in
    let q = Queue.create () in
    dist.(src) <- 0;
    Queue.push src q;
    let found = ref false in
    while (not !found) && not (Queue.is_empty q) do
      let i = Queue.pop q in
      Array.iter
        (fun j ->
          if dist.(j) = -1 then begin
            dist.(j) <- dist.(i) + 1;
            parent.(j) <- i;
            if j = dst then found := true;
            Queue.push j q
          end)
        succ.(i)
    done;
    if not !found then None
    else begin
      let rec build acc i = if i = src then src :: acc else build (i :: acc) parent.(i) in
      Some (build [] dst)
    end

let shortest_path_csr ~succ ~src ~dst =
  if src = dst then Some [ src ]
  else begin
    let n = Csr.num_states succ in
    let rp = Csr.row_ptr succ and tg = Csr.targets succ in
    let parent = Array.make n (-1) in
    let dist = Array.make n (-1) in
    let q = Array.make n 0 in
    let head = ref 0 and tail = ref 0 in
    dist.(src) <- 0;
    q.(0) <- src;
    tail := 1;
    let found = ref false in
    while (not !found) && !head < !tail do
      let i = q.(!head) in
      incr head;
      for k = rp.(i) to rp.(i + 1) - 1 do
        let j = tg.(k) in
        if dist.(j) = -1 then begin
          dist.(j) <- dist.(i) + 1;
          parent.(j) <- i;
          if j = dst then found := true;
          q.(!tail) <- j;
          incr tail
        end
      done
    done;
    if not !found then None
    else begin
      let rec build acc i = if i = src then src :: acc else build (i :: acc) parent.(i) in
      Some (build [] dst)
    end
  end

(* Longest path (number of edges) from each masked state while staying in
   the masked region, where leaving the region (or stopping) costs nothing.
   Requires the masked subgraph to be acyclic; raises otherwise.  Used for
   worst-case convergence times: the masked region is the non-converged
   part of the state space. *)
exception Cyclic

(* Iterative DFS with an explicit (node, next-child) stack — flat int
   arrays, safe for masked regions whose longest path exceeds the OCaml
   call stack and allocation-free per visit. *)
let longest_within ~succ ~mask =
  Cr_obs.Obs.span "paths.longest_within" @@ fun () ->
  let n = Array.length succ in
  let memo = Array.make n (-1) in
  let visiting = Array.make n false in
  let call_v = Array.make n 0 in
  let call_c = Array.make n 0 in
  let cp = ref 0 in
  let compute root =
    visiting.(root) <- true;
    call_v.(0) <- root;
    call_c.(0) <- 0;
    cp := 1;
    while !cp > 0 do
      let i = call_v.(!cp - 1) in
      let c = call_c.(!cp - 1) in
      let row = succ.(i) in
      if c < Array.length row then begin
        let j = row.(c) in
        call_c.(!cp - 1) <- c + 1;
        if mask.(j) then begin
          if visiting.(j) then raise Cyclic;
          if memo.(j) < 0 then begin
            visiting.(j) <- true;
            call_v.(!cp) <- j;
            call_c.(!cp) <- 0;
            incr cp
          end
        end
      end
      else begin
        decr cp;
        visiting.(i) <- false;
        (* leaving the masked region (or stopping there) costs one step
           for the edge itself, nothing beyond *)
        let best = ref 0 in
        Array.iter
          (fun j ->
            let v = 1 + if mask.(j) then memo.(j) else 0 in
            if v > !best then best := v)
          row;
        memo.(i) <- !best
      end
    done
  in
  Array.init n (fun i ->
      if not mask.(i) then 0
      else begin
        if memo.(i) < 0 then compute i;
        memo.(i)
      end)

(* The same DFS over the flat CSR arrays and a packed mask. *)
let longest_within_csr ~succ ~mask =
  Cr_obs.Obs.span "paths.longest_within" @@ fun () ->
  let n = Csr.num_states succ in
  let rp = Csr.row_ptr succ and tg = Csr.targets succ in
  let memo = Array.make n (-1) in
  let visiting = Array.make n false in
  let call_v = Array.make n 0 in
  let call_c = Array.make n 0 in
  let cp = ref 0 in
  let compute root =
    visiting.(root) <- true;
    call_v.(0) <- root;
    call_c.(0) <- 0;
    cp := 1;
    while !cp > 0 do
      let i = call_v.(!cp - 1) in
      let c = call_c.(!cp - 1) in
      if c < rp.(i + 1) - rp.(i) then begin
        let j = tg.(rp.(i) + c) in
        call_c.(!cp - 1) <- c + 1;
        if Bitset.get mask j then begin
          if visiting.(j) then raise Cyclic;
          if memo.(j) < 0 then begin
            visiting.(j) <- true;
            call_v.(!cp) <- j;
            call_c.(!cp) <- 0;
            incr cp
          end
        end
      end
      else begin
        decr cp;
        visiting.(i) <- false;
        let best = ref 0 in
        for k = rp.(i) to rp.(i + 1) - 1 do
          let j = tg.(k) in
          let v = 1 + if Bitset.get mask j then memo.(j) else 0 in
          if v > !best then best := v
        done;
        memo.(i) <- !best
      end
    done
  in
  Array.init n (fun i ->
      if not (Bitset.get mask i) then 0
      else begin
        if memo.(i) < 0 then compute i;
        memo.(i)
      end)
