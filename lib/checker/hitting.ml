(* Exact expected hitting times under a uniformly random daemon.

   Treat the system as a Markov chain where each state picks uniformly
   among its successors; [expected ~succ ~target] returns E[steps to
   reach the target set] per state (infinity when the target is not
   reached almost surely — i.e. when some reachable sink or closed
   component avoids it).

   Solved by value iteration, which converges geometrically on absorbing
   chains.  Used by the convergence-cost experiments as the exact
   counterpart of the Monte-Carlo mean (they are cross-checked in the
   test suite). *)

module Csr = Cr_kernel.Csr
module Bitset = Cr_kernel.Bitset

let c_runs = Cr_obs.Obs.counter "hitting.runs"
let c_iterations = Cr_obs.Obs.counter "hitting.iterations"

let expected ?(epsilon = 1e-9) ?(max_iter = 1_000_000) ?pred
    ~(succ : int array array) ~(target : bool array) () : float array =
  Cr_obs.Obs.span "hitting.expected" @@ fun () ->
  let n = Array.length succ in
  (* states that cannot reach the target at all diverge; callers that hold
     an explicit system pass its stored predecessor arrays to skip the
     transposition *)
  let can_reach =
    match pred with
    | Some p -> Reach.forward ~succ:p ~seeds:(Reach.members target)
    | None -> Reach.backward ~succ ~seeds:(Reach.members target)
  in
  (* states from which the daemon might forever avoid the target do not
     have finite expectation only if avoidance has probability 1; under
     uniform choice, any state that CAN reach the target reaches it a.s.
     iff no reachable closed component avoids it.  For expectation
     purposes value iteration handles this: expectations of states inside
     avoidance-possible regions still converge iff escape is a.s.  We
     mark states that cannot reach the target as infinite up front. *)
  let e = Array.make n 0.0 in
  let next = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if not can_reach.(i) then e.(i) <- infinity
  done;
  let iter = ref 0 in
  let delta = ref infinity in
  while !delta > epsilon && !iter < max_iter do
    delta := 0.0;
    for i = 0 to n - 1 do
      if target.(i) then next.(i) <- 0.0
      else if not can_reach.(i) then next.(i) <- infinity
      else begin
        let js = succ.(i) in
        let d = Array.length js in
        if d = 0 then next.(i) <- infinity (* non-target deadlock *)
        else begin
          let sum = ref 0.0 in
          Array.iter (fun j -> sum := !sum +. e.(j)) js;
          next.(i) <- 1.0 +. (!sum /. float_of_int d)
        end
      end;
      let diff = Float.abs (next.(i) -. e.(i)) in
      if Float.is_nan diff then ()
      else if diff > !delta then delta := diff
    done;
    Array.blit next 0 e 0 n;
    incr iter
  done;
  Cr_obs.Obs.incr c_runs;
  Cr_obs.Obs.add c_iterations !iter;
  e

(* The same value iteration over the flat CSR arrays: no per-state row
   fetch, [can_reach] marked in a packed bitset. *)
let expected_csr ?(epsilon = 1e-9) ?(max_iter = 1_000_000) ?pred
    ~(succ : Csr.t) ~(target : bool array) () : float array =
  Cr_obs.Obs.span "hitting.expected" @@ fun () ->
  let n = Csr.num_states succ in
  let rp = Csr.row_ptr succ and tg = Csr.targets succ in
  let seeds = Reach.members target in
  let can_reach =
    match pred with
    | Some p -> Reach.forward_csr ~succ:p ~seeds
    | None -> Reach.backward_csr ~succ ~seeds
  in
  let e = Array.make n 0.0 in
  let next = Array.make n 0.0 in
  for i = 0 to n - 1 do
    if not (Bitset.get can_reach i) then e.(i) <- infinity
  done;
  let iter = ref 0 in
  let delta = ref infinity in
  while !delta > epsilon && !iter < max_iter do
    delta := 0.0;
    for i = 0 to n - 1 do
      if target.(i) then next.(i) <- 0.0
      else if not (Bitset.get can_reach i) then next.(i) <- infinity
      else begin
        let lo = rp.(i) and hi = rp.(i + 1) in
        if hi = lo then next.(i) <- infinity (* non-target deadlock *)
        else begin
          let sum = ref 0.0 in
          for k = lo to hi - 1 do
            sum := !sum +. e.(tg.(k))
          done;
          next.(i) <- 1.0 +. (!sum /. float_of_int (hi - lo))
        end
      end;
      let diff = Float.abs (next.(i) -. e.(i)) in
      if Float.is_nan diff then ()
      else if diff > !delta then delta := diff
    done;
    Array.blit next 0 e 0 n;
    incr iter
  done;
  Cr_obs.Obs.incr c_runs;
  Cr_obs.Obs.add c_iterations !iter;
  e

let max_finite (e : float array) =
  Array.fold_left
    (fun acc v -> if Float.is_finite v && v > acc then v else acc)
    0.0 e

let mean_finite (e : float array) =
  let total = ref 0.0 and count = ref 0 in
  Array.iter
    (fun v ->
      if Float.is_finite v then begin
        total := !total +. v;
        incr count
      end)
    e;
  if !count = 0 then nan else !total /. float_of_int !count
