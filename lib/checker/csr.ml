(* Re-export: the shared CSR graph type lives in [Cr_semantics] (the
   explicit-state compiler stores its transition relation in it), and the
   checker kernels consume it under the historical [Cr_checker] namespace
   — same arrangement as [Par]. *)

include Cr_semantics.Csr
