(** Strongly connected components (iterative Tarjan) and cycle queries.

    Graphs here never contain self-loops (explicit systems drop them), so a
    state lies on a cycle iff its component has at least two states. *)

type t = {
  component : int array;  (** state index -> component id *)
  count : int;  (** number of components *)
  sizes : int array;  (** component id -> size *)
}

val compute : int array array -> t
(** Reference kernel over array-of-rows adjacency (qcheck baseline). *)

val compute_csr : Cr_kernel.Csr.t -> t
(** Production kernel over a CSR graph.  Traverses in the same order as
    {!compute} on the equivalent rows, so component ids are identical. *)

val on_cycle : t -> int -> bool
(** Is the state on some cycle? *)

val edge_on_cycle : t -> int -> int -> bool
(** Are both endpoints in the same component (so the edge closes a
    cycle)? *)

val restrict : int array array -> bool array -> int array array
(** Adjacency of the subgraph induced by the masked states (rows of
    unmasked states are empty; rows that survive whole are shared with
    the input, not copied). *)

val acyclic_within : int array array -> bool array -> bool
(** Is the subgraph induced by the masked states acyclic? *)

val acyclic_within_csr : Cr_kernel.Csr.t -> Cr_kernel.Bitset.t -> bool
(** {!acyclic_within} over a CSR graph and a packed mask (restricts via
    {!Cr_kernel.Csr.restrict}, no per-row allocation). *)
