(* Reachability over adjacency arrays. *)

let forward ~succ ~(seeds : int list) : bool array =
  let n = Array.length succ in
  let seen = Array.make n false in
  let stack = Stack.create () in
  let push i =
    if not seen.(i) then begin
      seen.(i) <- true;
      Stack.push i stack
    end
  in
  List.iter push seeds;
  while not (Stack.is_empty stack) do
    let i = Stack.pop stack in
    Array.iter push succ.(i)
  done;
  seen

let transpose succ =
  let n = Array.length succ in
  let preds = Array.make n [] in
  Array.iteri
    (fun i js -> Array.iter (fun j -> preds.(j) <- i :: preds.(j)) js)
    succ;
  Array.map (fun l -> Array.of_list l) preds

(* States that can reach some seed. *)
let backward ~succ ~seeds = forward ~succ:(transpose succ) ~seeds

let of_explicit expl = Array.init (Cr_semantics.Explicit.num_states expl) (Cr_semantics.Explicit.successors expl)

let reachable_from_initial expl =
  forward ~succ:(of_explicit expl)
    ~seeds:(Array.to_list (Cr_semantics.Explicit.initials expl))

let count mask = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask

let members mask =
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) mask;
  List.rev !acc
