(* Reachability kernels.

   The CSR entry points ([forward_csr], [backward_of_explicit],
   [reachable_from_initial]) are the production path: they walk the flat
   [Csr] arrays an explicit system already stores and mark a packed
   [Bitset] — no row copying, no per-row allocation.  The historical
   array-of-rows kernels ([forward]/[backward] over [int array array])
   are kept as the independent reference implementation the qcheck
   properties compare against. *)

module Csr = Cr_kernel.Csr
module Bitset = Cr_kernel.Bitset

let forward ~succ ~(seeds : int list) : bool array =
  let n = Array.length succ in
  let seen = Array.make n false in
  (* flat int stack: each node is pushed at most once *)
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let push i =
    if not seen.(i) then begin
      seen.(i) <- true;
      stack.(!sp) <- i;
      incr sp
    end
  in
  List.iter push seeds;
  while !sp > 0 do
    decr sp;
    Array.iter push succ.(stack.(!sp))
  done;
  seen

let transpose succ =
  let n = Array.length succ in
  let preds = Array.make n [] in
  Array.iteri
    (fun i js -> Array.iter (fun j -> preds.(j) <- i :: preds.(j)) js)
    succ;
  Array.map (fun l -> Array.of_list l) preds

(* States that can reach some seed. *)
let backward ~succ ~seeds = forward ~succ:(transpose succ) ~seeds

(* Same DFS over the flat CSR arrays, marking a packed bitset. *)
let forward_csr ~succ ~(seeds : int list) : Bitset.t =
  let n = Csr.num_states succ in
  let rp = Csr.row_ptr succ and tg = Csr.targets succ in
  let seen = Bitset.create n in
  let stack = Array.make (max n 1) 0 in
  let sp = ref 0 in
  let push i =
    if not (Bitset.get seen i) then begin
      Bitset.set seen i;
      stack.(!sp) <- i;
      incr sp
    end
  in
  List.iter push seeds;
  while !sp > 0 do
    decr sp;
    let i = stack.(!sp) in
    for k = rp.(i) to rp.(i + 1) - 1 do
      push tg.(k)
    done
  done;
  seen

let backward_csr ~succ ~seeds = forward_csr ~succ:(Csr.transpose succ) ~seeds

(* Zero-copy views of the CSRs an explicit system already stores. *)
let of_explicit = Cr_semantics.Explicit.csr

let pred_of_explicit = Cr_semantics.Explicit.pred_csr

(* Backward reachability straight off the stored predecessor CSR — no
   transposition pass here, no row copying. *)
let backward_of_explicit expl ~seeds =
  forward_csr ~succ:(Cr_semantics.Explicit.pred_csr expl) ~seeds

let reachable_from_initial expl =
  forward_csr
    ~succ:(Cr_semantics.Explicit.csr expl)
    ~seeds:(Array.to_list (Cr_semantics.Explicit.initials expl))

let count mask = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask

let members mask =
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) mask;
  List.rev !acc
