(* Reachability over adjacency arrays. *)

let forward ~succ ~(seeds : int list) : bool array =
  let n = Array.length succ in
  let seen = Array.make n false in
  (* flat int stack: each node is pushed at most once *)
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let push i =
    if not seen.(i) then begin
      seen.(i) <- true;
      stack.(!sp) <- i;
      incr sp
    end
  in
  List.iter push seeds;
  while !sp > 0 do
    decr sp;
    Array.iter push succ.(stack.(!sp))
  done;
  seen

let transpose succ =
  let n = Array.length succ in
  let preds = Array.make n [] in
  Array.iteri
    (fun i js -> Array.iter (fun j -> preds.(j) <- i :: preds.(j)) js)
    succ;
  Array.map (fun l -> Array.of_list l) preds

(* States that can reach some seed. *)
let backward ~succ ~seeds = forward ~succ:(transpose succ) ~seeds

let of_explicit expl = Array.init (Cr_semantics.Explicit.num_states expl) (Cr_semantics.Explicit.successors expl)

let pred_of_explicit expl =
  Array.init (Cr_semantics.Explicit.num_states expl)
    (Cr_semantics.Explicit.predecessors expl)

(* Backward reachability straight off the predecessor arrays an explicit
   system already stores — no transposition pass, no row copying. *)
let backward_of_explicit expl ~seeds =
  let n = Cr_semantics.Explicit.num_states expl in
  let seen = Array.make n false in
  let stack = Array.make n 0 in
  let sp = ref 0 in
  let push i =
    if not seen.(i) then begin
      seen.(i) <- true;
      stack.(!sp) <- i;
      incr sp
    end
  in
  List.iter push seeds;
  while !sp > 0 do
    decr sp;
    Array.iter push (Cr_semantics.Explicit.predecessors expl stack.(!sp))
  done;
  seen

let reachable_from_initial expl =
  forward ~succ:(of_explicit expl)
    ~seeds:(Array.to_list (Cr_semantics.Explicit.initials expl))

let count mask = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mask

let members mask =
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) mask;
  List.rev !acc
