(** Deterministic fan-out on the persistent domain pool.

    Alias of {!Cr_semantics.Par} (the implementation moved there so the
    explicit-state compiler can use it); see that module for the full
    contract.  The [CR_JOBS] default is 1 — fully sequential, no domain
    involved, output byte-identical to the sequential map; with
    [CR_JOBS>1] the workers are spawned once, parked between calls, and
    joined by an [at_exit] hook. *)

val jobs_env : unit -> int
(** Parsed value of [CR_JOBS]; 1 when unset, the recommended domain
    count when set to 0.  Malformed or negative values fall back to 1
    with a once-per-process stderr warning. *)

val current_jobs : unit -> int
(** Effective job count right now (1 inside a parallel region). *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** Run with the job count forced in this domain (tests/benchmarks). *)

val min_items : unit -> int
(** Small-work cutoff ([CR_PAR_MIN_ITEMS], default 4): smaller maps run
    sequentially on the calling domain. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs = List.map f xs], computed on [jobs] domains.  [f] must not
    rely on shared mutable state. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)

val pool_size : unit -> int
(** Worker domains currently parked in the pool. *)

val shutdown_pool : unit -> unit
(** Join every pool worker (idempotent; also runs [at_exit]). *)
