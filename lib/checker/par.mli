(** Deterministic [Domain.spawn] fan-out for independent work items.

    Items are partitioned by stride across domains and merged back by
    index, so the result equals the sequential map regardless of the job
    count or scheduling.  The job count defaults to the [CR_JOBS]
    environment variable (default 1 — fully sequential, no domain is
    spawned; 0 means [Domain.recommended_domain_count ()]).  Nested calls
    from inside a parallel region run sequentially: the outer fan-out
    already occupies the cores. *)

val jobs_env : unit -> int
(** Parsed value of [CR_JOBS]; 1 when unset or unparseable, the
    recommended domain count when set to 0. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs = List.map f xs], computed on [jobs] domains.  [f] must not
    rely on shared mutable state. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)
