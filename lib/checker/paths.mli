(** BFS shortest paths and DAG longest paths.

    The memoized {!oracle} and the [_csr] kernels run over {!Csr} graphs
    (the production path); the array-of-rows functions are the reference
    implementation the qcheck equivalence properties compare against. *)

val bfs_distances : succ:int array array -> src:int -> int array
(** [dist.(j)] = shortest path length from [src], or [-1]. *)

val bfs_distances_csr : succ:Cr_kernel.Csr.t -> src:int -> int array
(** {!bfs_distances} over a CSR graph. *)

val shortest_nonempty : succ:int array array -> src:int -> dst:int -> int option
(** Length of the shortest path of length >= 1 (for [src = dst], the
    shortest cycle).  Used to classify compression edges in the
    convergence-refinement checker. *)

type oracle
(** Memoized shortest-path queries over a fixed CSR graph: one BFS per
    distinct source across the oracle's lifetime, shared by all queries
    (e.g. every non-exact edge of one [Refine.classify] run). *)

val make_oracle : succ:Cr_kernel.Csr.t -> oracle

val oracle_dist : oracle -> src:int -> int array
(** The (memoized) BFS distance row from [src]; same contents as
    {!bfs_distances}.  Callers must not mutate the returned array. *)

val shortest_nonempty_memo : oracle -> src:int -> dst:int -> int option
(** Same results as {!shortest_nonempty}, through the memo. *)

val preseed_oracle : oracle -> sources:int array -> unit
(** Pre-compute and memoize the BFS rows for a batch of upcoming
    queries, one entry per query occurrence (duplicates expected).
    Distinct fresh sources are computed in parallel through [Par]; the
    hit/miss accounting matches querying the batch sequentially, so
    merged counters stay CR_JOBS-invariant.  Afterwards the listed
    sources can be queried read-only with {!shortest_nonempty_seeded}
    from several domains sharing one oracle. *)

val shortest_nonempty_seeded : oracle -> src:int -> dst:int -> int option
(** Same results as {!shortest_nonempty_memo}, served without mutation
    or accounting from a row installed by {!preseed_oracle}.  Falls back
    to the (mutating) memoizing path when the row is missing or
    [src = dst] — parallel callers must preseed every source they query
    and never ask for cycles. *)

val shortest_path : succ:int array array -> src:int -> dst:int -> int list option
(** One shortest path, inclusive of endpoints ([src = dst] gives [[src]]). *)

val shortest_path_csr : succ:Cr_kernel.Csr.t -> src:int -> dst:int -> int list option
(** {!shortest_path} over a CSR graph. *)

exception Cyclic

val longest_within : succ:int array array -> mask:bool array -> int array
(** [longest_within ~succ ~mask] gives, for each masked state, the maximum
    number of consecutive transitions that remain inside the masked region
    starting there.  Raises {!Cyclic} if the masked subgraph has a cycle.
    This is the exact worst-case convergence time when [mask] is the set of
    illegitimate states of a stabilizing system. *)

val longest_within_csr : succ:Cr_kernel.Csr.t -> mask:Cr_kernel.Bitset.t -> int array
(** {!longest_within} over a CSR graph and a packed mask. *)
