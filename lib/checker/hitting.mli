(** Exact expected hitting times under a uniformly random daemon (value
    iteration on the induced Markov chain). *)

val expected :
  ?epsilon:float ->
  ?max_iter:int ->
  ?pred:int array array ->
  succ:int array array ->
  target:bool array ->
  unit ->
  float array
(** [expected ~succ ~target ()].(i) is the expected number of steps from
    [i] to the target set when successors are chosen uniformly;
    [infinity] when the target is unreachable (or a non-target deadlock
    is hit surely). *)

val expected_csr :
  ?epsilon:float ->
  ?max_iter:int ->
  ?pred:Cr_kernel.Csr.t ->
  succ:Cr_kernel.Csr.t ->
  target:bool array ->
  unit ->
  float array
(** {!expected} over a CSR graph; [?pred] takes the system's stored
    predecessor CSR to skip the transposition. *)

val max_finite : float array -> float
val mean_finite : float array -> float
