(* The fan-out implementation moved to [Cr_semantics.Par] so the
   explicit-state compiler (which cr_checker depends on) can chunk its
   state space across domains.  This alias keeps the historical
   [Cr_checker.Par] call sites and shares the same persistent domain
   pool, nested-region flag, and override state. *)

include Cr_semantics.Par
