(* Deterministic multicore fan-out for embarrassingly parallel sweeps.

   Work is partitioned by stride: domain d computes items d, d + jobs,
   d + 2*jobs, ...  Results land in a preallocated array slot per item, so
   the merged output is independent of scheduling — running with any
   number of jobs yields exactly the list [List.map f xs] would.

   The job count comes from the [CR_JOBS] environment variable and
   defaults to 1, in which case no domain is spawned at all and the code
   path is the plain sequential map (output byte-identical to the
   pre-multicore checker).  Callers may force a count with [?jobs]. *)

let jobs_env () =
  match Sys.getenv_opt "CR_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> Domain.recommended_domain_count ()
      | Some k when k >= 1 -> k
      | Some _ | None -> 1)

(* Nested calls (a parallel table row that itself sweeps Monte-Carlo
   episodes) run sequentially: the outer fan-out already occupies the
   cores, and spawning fresh domains per inner call costs more than the
   inner parallelism buys at these problem sizes. *)
let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let map_array ?jobs (f : 'a -> 'b) (a : 'a array) : 'b array =
  let jobs =
    match jobs with Some k -> max 1 k | None -> jobs_env ()
  in
  let n = Array.length a in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside then Array.map f a
  else begin
    let jobs = min jobs n in
    let out = Array.make n None in
    let worker d () =
      Domain.DLS.set inside true;
      let i = ref d in
      while !i < n do
        out.(!i) <- Some (f a.(!i));
        i := !i + jobs
      done;
      Domain.DLS.set inside false
    in
    (* Strides are disjoint, so each slot of [out] has a unique writer. *)
    let domains =
      List.init (jobs - 1) (fun d -> Domain.spawn (worker (d + 1)))
    in
    worker 0 ();
    List.iter Domain.join domains;
    Array.map (function Some x -> x | None -> assert false) out
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))
