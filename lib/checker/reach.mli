(** Reachability kernels.

    The production path is CSR + packed bitsets: {!forward_csr} over the
    flat graph an explicit system hands out via {!of_explicit} (a
    zero-copy view).  The array-of-rows kernels ({!forward}/{!backward})
    are the independent reference implementation used by the qcheck
    equivalence properties. *)

val forward : succ:int array array -> seeds:int list -> bool array
(** States reachable from [seeds] (inclusive). *)

val backward : succ:int array array -> seeds:int list -> bool array
(** States that can reach some member of [seeds] (inclusive). *)

val transpose : int array array -> int array array

val forward_csr : succ:Cr_kernel.Csr.t -> seeds:int list -> Cr_kernel.Bitset.t
(** {!forward} over a CSR graph, marking a packed bitset. *)

val backward_csr : succ:Cr_kernel.Csr.t -> seeds:int list -> Cr_kernel.Bitset.t
(** {!backward} over a CSR graph (transposes internally; prefer
    {!backward_of_explicit} when the system's stored transpose is
    available). *)

val of_explicit : _ Cr_semantics.Explicit.t -> Cr_kernel.Csr.t
(** The transition CSR of an explicit system — a zero-copy view of what
    the system already stores. *)

val pred_of_explicit : _ Cr_semantics.Explicit.t -> Cr_kernel.Csr.t
(** The predecessor CSR an explicit system stores (forced on first use);
    also zero-copy. *)

val backward_of_explicit :
  _ Cr_semantics.Explicit.t -> seeds:int list -> Cr_kernel.Bitset.t
(** Backward reachability over the stored predecessor CSR (no
    transposition pass). *)

val reachable_from_initial : _ Cr_semantics.Explicit.t -> Cr_kernel.Bitset.t
(** States reachable from the initial states — for a specification [A]
    these are the "legitimate" states used by the stabilization checker. *)

val count : bool array -> int
val members : bool array -> int list
