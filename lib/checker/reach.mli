(** Reachability over adjacency arrays ([succ.(i)] = successors of [i]). *)

val forward : succ:int array array -> seeds:int list -> bool array
(** States reachable from [seeds] (inclusive). *)

val backward : succ:int array array -> seeds:int list -> bool array
(** States that can reach some member of [seeds] (inclusive). *)

val transpose : int array array -> int array array

val of_explicit : _ Cr_semantics.Explicit.t -> int array array
(** The adjacency array of an explicit system. *)

val pred_of_explicit : _ Cr_semantics.Explicit.t -> int array array
(** The predecessor adjacency an explicit system already stores. *)

val backward_of_explicit :
  _ Cr_semantics.Explicit.t -> seeds:int list -> bool array
(** {!backward} using the stored predecessor arrays (no transposition). *)

val reachable_from_initial : _ Cr_semantics.Explicit.t -> bool array
(** States reachable from the initial states — for a specification [A]
    these are the "legitimate" states used by the stabilization checker. *)

val count : bool array -> int
val members : bool array -> int list
