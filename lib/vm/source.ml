(* The paper's source-level program and its compiler to the stack machine.

     int x = 0;
     while (x == x) { x = 0; }

   The source-level (abstract) semantics is a one-variable system that is
   trivially stabilizing to "x = 0": whatever value a transient fault
   writes into x, the next loop body resets it.  The compiled bytecode is
   the paper's listing; {!Machine} gives its explicit semantics, and the
   test suite shows stabilization is *not* preserved (a comparison caught
   mid-flight between the two iloads terminates the program). *)

type expr = Var of int | Const of int | Add of expr * expr
type cond = Eq of expr * expr | Ne of expr * expr
type stmt = Assign of int * expr
type program = { init : stmt list; loop_cond : cond; loop_body : stmt list }

(* while (x == x) { x = 0; } with x as local 1, like the Java listing *)
let paper_program =
  {
    init = [ Assign (1, Const 0) ];
    loop_cond = Eq (Var 1, Var 1);
    loop_body = [ Assign (1, Const 0) ];
  }

(* A straightforward one-pass compiler producing exactly the paper's
   bytecode shape: init; goto test; body; test: push operands; if_icmpeq
   body; return. *)
let compile (p : program) : Instr.t list =
  let rec compile_expr = function
    | Var l -> [ Instr.Iload l ]
    | Const v -> [ Instr.Iconst v ]
    | Add (e1, e2) -> compile_expr e1 @ compile_expr e2 @ [ Instr.Iadd ]
  in
  let compile_stmt (Assign (l, e)) = compile_expr e @ [ Instr.Istore l ] in
  let init = List.concat_map compile_stmt p.init in
  let body = List.concat_map compile_stmt p.loop_body in
  let e1, e2, jump =
    match p.loop_cond with
    | Eq (e1, e2) -> (e1, e2, fun a -> Instr.If_icmpeq a)
    | Ne (e1, e2) -> (e1, e2, fun a -> Instr.If_icmpne a)
  in
  let test = compile_expr e1 @ compile_expr e2 in
  (* Addresses are only known after layout; compile with placeholders then
     patch.  Shape: [init] [goto T] [body]@B [test]@T [if_icmpeq B] [return]. *)
  let instrs placeholderB placeholderT =
    init
    @ [ Instr.Goto placeholderT ]
    @ body @ test
    @ [ jump placeholderB; Instr.Return ]
  in
  (* two-pass: lay out once with dummies to learn addresses *)
  let dummy = instrs 0 0 in
  let listing = Instr.layout_addresses dummy in
  let addr_of_index idx = fst (List.nth listing idx) in
  let body_index = List.length init + 1 in
  let test_index = body_index + List.length body in
  let addr_b = addr_of_index body_index in
  let addr_t = addr_of_index test_index in
  instrs addr_b addr_t

(* The paper's exact listing, for cross-checking the compiler. *)
let paper_listing : Instr.listing =
  [
    (0, Instr.Iconst 0);
    (1, Instr.Istore 1);
    (2, Instr.Goto 7);
    (5, Instr.Iconst 0);
    (6, Instr.Istore 1);
    (7, Instr.Iload 1);
    (8, Instr.Iload 1);
    (9, Instr.If_icmpeq 5);
    (12, Instr.Return);
  ]

let machine_config : Machine.config =
  {
    Machine.code = Instr.layout_addresses (compile paper_program);
    num_locals = 2;
    value_dom = 2;
    max_stack = 2;
  }

(* Abstract source-level system over the single variable x: a transient
   fault can set x to anything; the loop body resets it to 0.  States are
   the values of x; the only transition is the reset. *)
let abstract_system ~value_dom =
  Cr_semantics.System.make ~name:"source(x:=0 loop)"
    ~states:(List.init value_dom (fun v -> v))
    ~step:(fun v -> if v = 0 then [] else [ 0 ])
    ~is_initial:(fun v -> v = 0)
    ~pp:(fun fmt v -> Fmt.pf fmt "x=%d" v)
    ()

(* The target behaviour B: x is (and stays) 0. *)
let target_system ~value_dom =
  Cr_semantics.System.make ~name:"x-always-0"
    ~states:(List.init value_dom (fun v -> v))
    ~step:(fun _ -> [])
    ~is_initial:(fun v -> v = 0)
    ~pp:(fun fmt v -> Fmt.pf fmt "x=%d" v)
    ()

(* ---- a second compiled program with a multi-step recovery path ----

     int x = 0;
     while (x != 0) { x = x + (K-1); }   (decrement mod K)

   At the source level a fault that sets x to any value is drained back
   to 0 in x steps; the compiled bytecode again loses stabilization (a
   corruption between the comparison's loads can exit the loop with
   x <> 0). *)
let drain_program ~dom =
  {
    init = [ Assign (1, Const 0) ];
    loop_cond = Ne (Var 1, Const 0);
    loop_body = [ Assign (1, Add (Var 1, Const (dom - 1))) ];
  }

let drain_machine_config ~dom : Machine.config =
  {
    Machine.code = Instr.layout_addresses (compile (drain_program ~dom));
    num_locals = 2;
    value_dom = dom;
    max_stack = 2;
  }

(* Source-level semantics of the drain loop: x counts down to 0. *)
let drain_abstract_system ~dom =
  Cr_semantics.System.make ~name:"source(x drain loop)"
    ~states:(List.init dom (fun v -> v))
    ~step:(fun v -> if v = 0 then [] else [ v - 1 ])
    ~is_initial:(fun v -> v = 0)
    ~pp:(fun fmt v -> Fmt.pf fmt "x=%d" v)
    ()

(* Abstraction from machine states to the value of x (local 1). *)
let alpha_x =
  Cr_semantics.Abstraction.make ~name:"local-x" (fun (s : Machine.state) ->
      s.Machine.locals.(1))
