(** Explicit-state semantics of the mini stack machine, with bounded value
    domain and stack depth so the state space is finite. *)

type state = { pc : int; stack : int list; locals : int array }

type config = {
  code : Instr.listing;
  num_locals : int;
  value_dom : int;
  max_stack : int;
}

val halted_pc : int

val pp_state : Format.formatter -> state -> unit
val initial_state : config -> state
val fetch : config -> int -> Instr.t option
val step : config -> state -> state option
(** [None] at halted or stuck states. *)

val enumerate : config -> state list
val to_system : name:string -> config -> state Cr_semantics.System.t
