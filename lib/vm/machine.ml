(* Explicit-state semantics of the mini stack machine.

   A machine state is (pc, operand stack, locals).  To keep the state
   space finite we bound the value domain and the stack depth — the
   paper's program only ever needs values {0, 1} (the corrupted bit) and
   depth 2. *)

type state = { pc : int; stack : int list; locals : int array }

type config = {
  code : Instr.listing;
  num_locals : int;
  value_dom : int;  (* values range over 0..value_dom-1 *)
  max_stack : int;
}

let halted_pc = -1
(* after Return *)

let pp_state fmt s =
  Fmt.pf fmt "{pc=%d stack=[%a] locals=[%a]}"
    s.pc
    Fmt.(list ~sep:(any ";") int)
    s.stack
    Fmt.(array ~sep:(any ";") int)
    s.locals

let initial_state cfg = { pc = 0; stack = []; locals = Array.make cfg.num_locals 0 }

let fetch cfg pc = List.assoc_opt pc cfg.code

let next_addr cfg pc =
  match fetch cfg pc with
  | None -> None
  | Some i -> Some (pc + Instr.width i)

(* One execution step; [None] when halted, stuck (bad pc) or on a stack
   underflow/overflow — stuck states are terminal. *)
let step cfg (s : state) : state option =
  if s.pc = halted_pc then None
  else
    match fetch cfg s.pc with
    | None -> None
    | Some i -> (
        let jump pc' = Some { s with pc = pc' } in
        match i with
        | Instr.Iconst v ->
            if List.length s.stack >= cfg.max_stack || v < 0
               || v >= cfg.value_dom
            then None
            else
              Option.bind (next_addr cfg s.pc) (fun pc' ->
                  Some { s with pc = pc'; stack = v :: s.stack })
        | Instr.Istore l -> (
            match s.stack with
            | [] -> None
            | v :: rest ->
                Option.bind (next_addr cfg s.pc) (fun pc' ->
                    let locals = Array.copy s.locals in
                    locals.(l) <- v;
                    Some { pc = pc'; stack = rest; locals }))
        | Instr.Iload l ->
            if List.length s.stack >= cfg.max_stack then None
            else
              Option.bind (next_addr cfg s.pc) (fun pc' ->
                  Some { s with pc = pc'; stack = s.locals.(l) :: s.stack })
        | Instr.Goto a -> jump a
        | Instr.If_icmpeq a -> (
            match s.stack with
            | v2 :: v1 :: rest ->
                if v1 = v2 then Some { s with pc = a; stack = rest }
                else
                  Option.bind (next_addr cfg s.pc) (fun pc' ->
                      Some { s with pc = pc'; stack = rest })
            | _ -> None)
        | Instr.If_icmpne a -> (
            match s.stack with
            | v2 :: v1 :: rest ->
                if v1 <> v2 then Some { s with pc = a; stack = rest }
                else
                  Option.bind (next_addr cfg s.pc) (fun pc' ->
                      Some { s with pc = pc'; stack = rest })
            | _ -> None)
        | Instr.Iadd -> (
            match s.stack with
            | v2 :: v1 :: rest ->
                Option.bind (next_addr cfg s.pc) (fun pc' ->
                    Some
                      { s with pc = pc'; stack = ((v1 + v2) mod cfg.value_dom) :: rest })
            | _ -> None)
        | Instr.Iinc (l, v) ->
            Option.bind (next_addr cfg s.pc) (fun pc' ->
                let locals = Array.copy s.locals in
                locals.(l) <- (locals.(l) + v) mod cfg.value_dom;
                Some { s with pc = pc'; locals })
        | Instr.Dup -> (
            match s.stack with
            | v :: _ when List.length s.stack < cfg.max_stack ->
                Option.bind (next_addr cfg s.pc) (fun pc' ->
                    Some { s with pc = pc'; stack = v :: s.stack })
            | _ -> None)
        | Instr.Pop -> (
            match s.stack with
            | _ :: rest ->
                Option.bind (next_addr cfg s.pc) (fun pc' ->
                    Some { s with pc = pc'; stack = rest })
            | [] -> None)
        | Instr.Return -> Some { s with pc = halted_pc; stack = [] })

(* Enumerate the full state space: all pcs (plus halted), all stacks up to
   max depth, all locals valuations. *)
let enumerate cfg : state list =
  let pcs = halted_pc :: List.map fst cfg.code in
  let rec stacks depth =
    if depth = 0 then [ [] ]
    else
      let shorter = stacks (depth - 1) in
      shorter
      @ List.concat_map
          (fun st ->
            if List.length st = depth - 1 then
              List.init cfg.value_dom (fun v -> v :: st)
            else [])
          shorter
  in
  let all_stacks = stacks cfg.max_stack in
  let rec locals_vals k =
    if k = 0 then [ [] ]
    else
      List.concat_map
        (fun rest -> List.init cfg.value_dom (fun v -> v :: rest))
        (locals_vals (k - 1))
  in
  let all_locals = List.map Array.of_list (locals_vals cfg.num_locals) in
  List.concat_map
    (fun pc ->
      List.concat_map
        (fun stack -> List.map (fun locals -> { pc; stack; locals }) all_locals)
        all_stacks)
    pcs

let to_system ~name cfg =
  Cr_semantics.System.make ~name ~states:(enumerate cfg)
    ~step:(fun s -> match step cfg s with None -> [] | Some s' -> [ s' ])
    ~is_initial:(fun s -> s = initial_state cfg)
    ~pp:pp_state ()
