(** The paper's introductory source program
    [int x = 0; while (x == x) x = 0;], a one-pass compiler to the stack
    machine, and the abstract/target systems used to show that the
    compiler does not preserve stabilization. *)

type expr = Var of int | Const of int | Add of expr * expr
type cond = Eq of expr * expr | Ne of expr * expr
type stmt = Assign of int * expr
type program = { init : stmt list; loop_cond : cond; loop_body : stmt list }

val paper_program : program

val compile : program -> Instr.t list
(** Produces exactly the paper's bytecode shape (checked against
    {!paper_listing} in the test suite). *)

val paper_listing : Instr.listing

val machine_config : Machine.config

val abstract_system : value_dom:int -> int Cr_semantics.System.t
(** Source-level semantics over the value of x: a fault puts x anywhere,
    the loop body resets it to 0. *)

val target_system : value_dom:int -> int Cr_semantics.System.t
(** B: x is and stays 0. *)

val drain_program : dom:int -> program
(** [int x = 0; while (x != 0) x = x + (dom-1);] — a loop whose
    source-level recovery path has x steps (decrement modulo [dom]). *)

val drain_machine_config : dom:int -> Machine.config

val drain_abstract_system : dom:int -> int Cr_semantics.System.t

val alpha_x : (Machine.state, int) Cr_semantics.Abstraction.t
(** Project a machine state to the value of local 1 (x). *)
