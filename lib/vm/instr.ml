(* Instruction set of the mini stack machine — the subset of JVM bytecode
   used by the paper's introductory example. *)

type t =
  | Iconst of int  (* push constant *)
  | Istore of int  (* pop into local *)
  | Iload of int  (* push local *)
  | Goto of int  (* jump to address *)
  | If_icmpeq of int  (* pop two; jump if equal *)
  | If_icmpne of int  (* pop two; jump if different *)
  | Iadd  (* pop two; push their sum (modulo the machine's value domain) *)
  | Iinc of int * int  (* add a constant to a local, in place *)
  | Dup  (* duplicate the stack top *)
  | Pop  (* discard the stack top *)
  | Return

(* Byte width, used to lay instructions out at JVM-style addresses. *)
let width = function
  | Iconst _ | Istore _ | Iload _ | Return | Iadd | Dup | Pop -> 1
  | Iinc _ -> 3
  | Goto _ | If_icmpeq _ | If_icmpne _ -> 3

let pp fmt = function
  | Iconst v -> Fmt.pf fmt "iconst_%d" v
  | Istore l -> Fmt.pf fmt "istore_%d" l
  | Iload l -> Fmt.pf fmt "iload_%d" l
  | Goto a -> Fmt.pf fmt "goto %d" a
  | If_icmpeq a -> Fmt.pf fmt "if_icmpeq %d" a
  | If_icmpne a -> Fmt.pf fmt "if_icmpne %d" a
  | Iadd -> Fmt.pf fmt "iadd"
  | Iinc (l, v) -> Fmt.pf fmt "iinc %d %d" l v
  | Dup -> Fmt.pf fmt "dup"
  | Pop -> Fmt.pf fmt "pop"
  | Return -> Fmt.pf fmt "return"

type listing = (int * t) list
(* address-sorted code *)

let layout_addresses (instrs : t list) : listing =
  let rec go addr = function
    | [] -> []
    | i :: rest -> (addr, i) :: go (addr + width i) rest
  in
  go 0 instrs

let pp_listing fmt (l : listing) =
  List.iter (fun (a, i) -> Fmt.pf fmt "%2d %a@." a pp i) l
