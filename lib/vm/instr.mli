(** Instruction set of the mini stack machine (the JVM subset of the
    paper's introductory example). *)

type t =
  | Iconst of int  (** push constant *)
  | Istore of int  (** pop into local *)
  | Iload of int  (** push local *)
  | Goto of int  (** jump *)
  | If_icmpeq of int  (** pop two; jump if equal *)
  | If_icmpne of int  (** pop two; jump if different *)
  | Iadd  (** pop two; push sum modulo the machine's value domain *)
  | Iinc of int * int  (** add a constant to a local in place *)
  | Dup  (** duplicate the stack top *)
  | Pop  (** discard the stack top *)
  | Return

val width : t -> int
(** Instruction width in bytes (JVM-style addressing). *)

val pp : Format.formatter -> t -> unit

type listing = (int * t) list

val layout_addresses : t list -> listing
(** Assign byte addresses. *)

val pp_listing : Format.formatter -> listing -> unit
