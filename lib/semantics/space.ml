(* Pluggable state-space engines: the indexing substrate an explicit
   compile runs over.

   The dense engine is the historical full-product-space enumeration in
   mixed-radix rank order.  The sparse engine materializes only the
   fragment reachable from the initial states: a frontier BFS over dense
   keys that hash-conses each discovered state into a compact index.
   Because the fragment is closed under successors, every checker that
   only quantifies over init-reachable states (the refinement premise of
   the graybox theorems) computes the same verdict on the sparse graph
   as on the dense one — at a fraction of the states.  Full-space
   checks (stabilization, whole-space lint facts) stay dense by
   construction and never see this module's sparse side.

   The sparse index is keyed by the dense rank: [Layout.checked_rank]
   is injective on Sigma, validity-checking and allocation-free, and
   keeping the key around gives tests the sparse<->dense bijection for
   free. *)

module Par = Cr_kernel.Par

type engine = Dense | Sparse

let engine_name = function Dense -> "dense" | Sparse -> "sparse"

type choice = Auto | Forced of engine

let choice_of_string s =
  match String.lowercase_ascii (String.trim s) with
  | "dense" -> Some (Forced Dense)
  | "sparse" -> Some (Forced Sparse)
  | "auto" | "" -> Some Auto
  | _ -> None

(* Same convention as CR_JOBS: a malformed override falls through to the
   default, and says so once (per process) on stderr. *)
let warned_bad_space = Atomic.make false

let env_choice () =
  match Sys.getenv_opt "CR_SPACE" with
  | None -> Auto
  | Some s -> (
      match choice_of_string s with
      | Some c -> c
      | None ->
          if not (Atomic.exchange warned_bad_space true) then
            Printf.eprintf
              "cr-space: ignoring invalid CR_SPACE=%s (want dense, sparse or \
               auto)\n\
               %!"
              s;
          Auto)

let resolve ?choice ~default () =
  match match choice with Some c -> c | None -> env_choice () with
  | Forced e -> e
  | Auto -> default

module type S = sig
  type state

  val engine : engine
  val size : int
  val full_size : int
  val state_of_index : int -> state
  val index_of_state : state -> int option
  val iter : (int -> state -> unit) -> unit
end

type 'a t = (module S with type state = 'a)

let engine (type a) (sp : a t) =
  let module Sp = (val sp) in
  Sp.engine

let size (type a) (sp : a t) =
  let module Sp = (val sp) in
  Sp.size

let full_size (type a) (sp : a t) =
  let module Sp = (val sp) in
  Sp.full_size

let dense (type a) ~size:(n : int) ~(state_of_index : int -> a)
    ~(index_of_state : a -> int option) () : a t =
  (module struct
    type state = a

    let engine = Dense
    let size = n
    let full_size = n
    let state_of_index = state_of_index
    let index_of_state = index_of_state

    let iter f =
      for i = 0 to n - 1 do
        f i (state_of_index i)
      done
  end)

type 'a sparse = { space : 'a t; rows : int array array; keys : int array }

let discover (type a) ~full_size ~(state_of_key : int -> a)
    ~(key_of_state : a -> int)
    ~(step : unit -> a -> int -> (int -> unit) -> unit)
    ~(seed_keys : int array) () : a sparse =
  let tbl : (int, int) Hashtbl.t =
    Hashtbl.create (max 64 (2 * Array.length seed_keys))
  in
  (* Append-only discovery log: the BFS queue IS the index sequence. *)
  let keys = ref (Array.make (max 16 (Array.length seed_keys)) 0) in
  let n = ref 0 in
  let push k =
    if !n = Array.length !keys then begin
      let bigger = Array.make (2 * !n) 0 in
      Array.blit !keys 0 bigger 0 !n;
      keys := bigger
    end;
    !keys.(!n) <- k;
    incr n
  in
  let index_of_key k =
    match Hashtbl.find_opt tbl k with
    | Some i -> i
    | None ->
        let i = !n in
        Hashtbl.add tbl k i;
        push k;
        i
  in
  Array.iter (fun k -> ignore (index_of_key k : int)) seed_keys;
  let rows = ref (Array.make (max 16 !n) [||]) in
  let set_row i r =
    if i >= Array.length !rows then begin
      let bigger = Array.make (max (2 * Array.length !rows) (i + 1)) [||] in
      Array.blit !rows 0 bigger 0 (Array.length !rows);
      rows := bigger
    end;
    !rows.(i) <- r
  in
  let processed = ref 0 in
  while !processed < !n do
    let lo = !processed and hi = !n in
    let m = hi - lo in
    (* Expand the frontier: successor keys per state, in emission order.
       The stepping is chunked across domains exactly like the dense row
       build (contiguous slices, one writer per slot); index assignment
       happens in the sequential merge below, so discovery order — and
       with it the whole compiled graph — is job-count independent. *)
    let raw = Array.make m [] in
    let fill st d =
      let k = !keys.(lo + d) in
      let s = state_of_key k in
      let acc = ref [] in
      st s k (fun j -> acc := j :: !acc);
      raw.(d) <- List.rev !acc
    in
    let jobs = min (Par.current_jobs ()) m in
    if jobs <= 1 then begin
      let st = step () in
      for d = 0 to m - 1 do
        fill st d
      done
    end
    else begin
      let chunks =
        Array.init jobs (fun d -> (d * m / jobs, (d + 1) * m / jobs))
      in
      ignore
        (Par.map_array
           (fun (clo, chi) ->
             let st = step () in
             for d = clo to chi - 1 do
               fill st d
             done)
           chunks
          : unit array)
    end;
    for d = 0 to m - 1 do
      let row = List.map index_of_key raw.(d) in
      set_row (lo + d) (Array.of_list (List.sort_uniq compare row))
    done;
    processed := hi
  done;
  let count = !n in
  let keys = Array.sub !keys 0 count in
  let rows = Array.sub !rows 0 count in
  let module Sp = struct
    type state = a

    let engine = Sparse
    let size = count
    let full_size = full_size
    let state_of_index i = state_of_key keys.(i)

    let index_of_state s =
      let k = key_of_state s in
      if k < 0 then None else Hashtbl.find_opt tbl k

    let iter f = Array.iteri (fun i k -> f i (state_of_key k)) keys
  end in
  { space = (module Sp); rows; keys }
