(** Content-addressed memoization of explicit-state compiles.

    A cache maps structural fingerprints (computed by the caller; for
    guarded-command programs the key covers the layout, per-action
    metadata, execution mode and a semantic successor probe) to compiled
    {!Explicit.t} graphs, so experiment tables that recompile the same
    system at the same size share one compile.

    Lookups are single-flight across domains: concurrent requesters of a
    missing key block while one domain compiles, then count a hit — so
    the [compile.cache.hits]/[compile.cache.misses] counters are
    invariant under the [CR_JOBS] fan-out, like every other [Cr_obs]
    counter.

    Environment switches: [CR_COMPILE_CACHE=0] disables caching
    entirely; [CR_COMPILE_PARANOID=1] (a test mode) recompiles on every
    hit and asserts {!Explicit.same_transitions} plus equal initial
    states against the cached graph. *)

type 'a t

val create : unit -> 'a t

val enabled : unit -> bool
(** Is the cache active?  False when [CR_COMPILE_CACHE=0] or inside
    {!bypass}. *)

val paranoid : unit -> bool
(** Is [CR_COMPILE_PARANOID] set to a truthy value? *)

val bypass : (unit -> 'b) -> 'b
(** Run with the cache disabled in the calling domain (benchmarks and
    tests that need a guaranteed fresh compile). *)

val find_or_compile :
  'a t ->
  key:string ->
  reinit:('a Explicit.t -> 'a Explicit.t) ->
  compile:(unit -> 'a Explicit.t) ->
  'a Explicit.t
(** [find_or_compile c ~key ~reinit ~compile] returns the cached graph
    for [key] after re-targeting it with [reinit] (rename + initial
    states — the only parts of a compile the fingerprint does not
    cover), or runs [compile], stores its result and returns it.
    [reinit] must preserve the transition structure.  If [compile]
    raises, the error propagates and nothing is cached. *)

val length : _ t -> int
(** Number of cached compiles (test support). *)

val clear : _ t -> unit
(** Drop every completed entry (test/bench support; in-flight compiles
    publish normally). *)
