(** Deterministic [Domain.spawn] fan-out for independent work items.

    Items are partitioned by stride across domains and merged back by
    index, so the result equals the sequential map regardless of the job
    count or scheduling.  The job count defaults to the [CR_JOBS]
    environment variable (default 1 — fully sequential, no domain is
    spawned; 0 means [Domain.recommended_domain_count ()]).  Nested calls
    from inside a parallel region run sequentially: the outer fan-out
    already occupies the cores.

    Hosted in [Cr_semantics] so the explicit-state compiler can chunk
    state spaces across domains; re-exported as [Cr_checker.Par]. *)

val jobs_env : unit -> int
(** Parsed value of [CR_JOBS]; 1 when unset, the recommended domain
    count when set to 0.  A malformed or negative value also yields 1,
    with a one-line warning on stderr (printed once per process). *)

val current_jobs : unit -> int
(** The job count a parameterless {!map} would use right now: 1 inside a
    parallel region, else the {!with_jobs} override, else {!jobs_env}. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs k f] runs [f] with the job count forced to [k] in this
    domain (benchmarks and tests; no environment mutation). *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs = List.map f xs], computed on [jobs] domains.  [f] must not
    rely on shared mutable state. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)
