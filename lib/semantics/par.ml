(* Deterministic multicore fan-out for embarrassingly parallel sweeps.

   Work is partitioned by stride: domain d computes items d, d + jobs,
   d + 2*jobs, ...  Results land in a preallocated array slot per item, so
   the merged output is independent of scheduling — running with any
   number of jobs yields exactly the list [List.map f xs] would.

   The job count comes from the [CR_JOBS] environment variable and
   defaults to 1, in which case no domain is spawned at all and the code
   path is the plain sequential map (output byte-identical to the
   pre-multicore checker).  Callers may force a count with [?jobs] or
   scope one with [with_jobs].

   This module lives in [Cr_semantics] so that the explicit-state
   compiler can chunk its state space across domains; [Cr_checker.Par]
   re-exports it unchanged for the historical call sites. *)

(* A malformed CR_JOBS used to fall through silently to 1; it still does,
   but now says so once (per process) on stderr. *)
let warned_bad_jobs = Atomic.make false

let jobs_env () =
  match Sys.getenv_opt "CR_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> Domain.recommended_domain_count ()
      | Some k when k >= 1 -> k
      | Some _ | None ->
          if not (Atomic.exchange warned_bad_jobs true) then
            Printf.eprintf
              "cr-par: ignoring invalid CR_JOBS=%s (want an integer >= 0); \
               running sequentially\n\
               %!"
              s;
          1)

(* Nested calls (a parallel table row that itself sweeps Monte-Carlo
   episodes) run sequentially: the outer fan-out already occupies the
   cores, and spawning fresh domains per inner call costs more than the
   inner parallelism buys at these problem sizes. *)
let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Per-domain job-count override, for benchmarks and tests that want a
   specific fan-out without mutating the process environment. *)
let override : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_jobs () =
  if Domain.DLS.get inside then 1
  else
    match Domain.DLS.get override with
    | Some k -> max 1 k
    | None -> jobs_env ()

let with_jobs k f =
  let saved = Domain.DLS.get override in
  Domain.DLS.set override (Some k);
  Fun.protect ~finally:(fun () -> Domain.DLS.set override saved) f

let map_array ?jobs (f : 'a -> 'b) (a : 'a array) : 'b array =
  let jobs = match jobs with Some k -> max 1 k | None -> current_jobs () in
  let n = Array.length a in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside then Array.map f a
  else begin
    let jobs = min jobs n in
    let out = Array.make n None in
    let worker d () =
      Domain.DLS.set inside true;
      let i = ref d in
      while !i < n do
        out.(!i) <- Some (f a.(!i));
        i := !i + jobs
      done;
      Domain.DLS.set inside false
    in
    (* Strides are disjoint, so each slot of [out] has a unique writer.
       The live-worker bracket lets [Cr_obs.Obs] refuse cross-domain
       merges while the spawned domains may still be writing. *)
    Cr_obs.Obs.workers_add (jobs - 1);
    Fun.protect
      ~finally:(fun () -> Cr_obs.Obs.workers_add (-(jobs - 1)))
      (fun () ->
        let domains =
          List.init (jobs - 1) (fun d -> Domain.spawn (worker (d + 1)))
        in
        worker 0 ();
        List.iter Domain.join domains);
    Array.map (function Some x -> x | None -> assert false) out
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))
