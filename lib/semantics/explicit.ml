(* Indexed explicit-state representation of a system.  States are numbered
   0..n-1; the transition relation is an adjacency array with self-loops
   removed (no-op steps are stuttering, dropped per DESIGN.md section 2)
   and duplicate edges deduplicated. *)

exception Unknown_state of string

type 'a t = {
  name : string;
  states : 'a array;
  lookup : ('a, int) Hashtbl.t;
  succ : int array array;
  pred : int array array;
  is_initial : bool array;
  initials : int array;
  pp_state : Format.formatter -> 'a -> unit;
}

let name t = t.name

let rename name t = { t with name }

let num_states t = Array.length t.states

let state t i = t.states.(i)

let pp_state t fmt i = t.pp_state fmt t.states.(i)

let state_to_string t i = Fmt.str "%a" (fun fmt -> t.pp_state fmt) t.states.(i)

let find_opt t s = Hashtbl.find_opt t.lookup s

let find t s =
  match Hashtbl.find_opt t.lookup s with
  | Some i -> i
  | None -> raise (Unknown_state t.name)

let successors t i = t.succ.(i)

let predecessors t i = t.pred.(i)

let is_initial t i = t.is_initial.(i)

let initials t = t.initials

let is_terminal t i = Array.length t.succ.(i) = 0

let has_edge t i j = Array.exists (fun k -> k = j) t.succ.(i)

let num_transitions t =
  Array.fold_left (fun acc a -> acc + Array.length a) 0 t.succ

let iter_edges t f =
  Array.iteri (fun i js -> Array.iter (fun j -> f i j) js) t.succ

let fold_edges t f acc =
  let acc = ref acc in
  iter_edges t (fun i j -> acc := f i j !acc);
  !acc

let sorted_dedup l =
  let l = List.sort_uniq compare l in
  Array.of_list l

let transpose n succ =
  let preds = Array.make n [] in
  Array.iteri (fun i js -> Array.iter (fun j -> preds.(j) <- i :: preds.(j)) js) succ;
  Array.map sorted_dedup preds

let of_edge_lists ~name ~states ~pp_state ~is_initial ~succ_lists =
  let n = Array.length states in
  let lookup = Hashtbl.create (2 * n + 1) in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem lookup s then
        invalid_arg
          (Printf.sprintf "Explicit: duplicate state in enumeration of %s" name);
      Hashtbl.add lookup s i)
    states;
  let succ =
    Array.mapi
      (fun i js -> sorted_dedup (List.filter (fun j -> j <> i) js))
      succ_lists
  in
  let pred = transpose n succ in
  let is_initial_arr = Array.map is_initial states in
  let initials =
    Array.of_list
      (List.filter
         (fun i -> is_initial_arr.(i))
         (List.init n (fun i -> i)))
  in
  { name; states; lookup; succ; pred; is_initial = is_initial_arr; initials;
    pp_state }

let of_system (sys : 'a System.t) =
  let states = Array.of_list sys.System.states in
  let n = Array.length states in
  let lookup = Hashtbl.create (2 * n + 1) in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem lookup s then
        invalid_arg
          (Printf.sprintf "Explicit: duplicate state in enumeration of %s"
             sys.System.name);
      Hashtbl.add lookup s i)
    states;
  let to_index s =
    match Hashtbl.find_opt lookup s with
    | Some i -> i
    | None ->
        raise
          (Unknown_state
             (Fmt.str "%s: step produced a state outside Sigma: %a"
                sys.System.name sys.System.pp s))
  in
  let succ_lists =
    Array.map (fun s -> List.map to_index (sys.System.step s)) states
  in
  of_edge_lists ~name:sys.System.name ~states ~pp_state:sys.System.pp
    ~is_initial:sys.System.is_initial ~succ_lists

(* Box on explicit systems over the same enumeration. *)
let same_states t1 t2 =
  Array.length t1.states = Array.length t2.states
  && (let ok = ref true in
      Array.iteri (fun i s -> if not (s = t2.states.(i)) then ok := false) t1.states;
      !ok)

let box ?name t1 t2 =
  if not (same_states t1 t2) then
    invalid_arg "Explicit.box: systems do not share a state space";
  let name = match name with Some n -> n | None -> t1.name ^ "[]" ^ t2.name in
  let succ_lists =
    Array.init (Array.length t1.states) (fun i ->
        Array.to_list t1.succ.(i) @ Array.to_list t2.succ.(i))
  in
  of_edge_lists ~name ~states:t1.states ~pp_state:t1.pp_state
    ~is_initial:(fun s -> t1.is_initial.(Hashtbl.find t1.lookup s))
    ~succ_lists

let same_transitions t1 t2 =
  same_states t1 t2
  && (let ok = ref true in
      Array.iteri (fun i js -> if js <> t2.succ.(i) then ok := false) t1.succ;
      !ok)

let with_initials t pred =
  let is_initial_arr = Array.map pred t.states in
  let initials =
    Array.of_list
      (List.filter
         (fun i -> is_initial_arr.(i))
         (List.init (Array.length t.states) (fun i -> i)))
  in
  { t with is_initial = is_initial_arr; initials }
