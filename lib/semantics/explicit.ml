(* Indexed explicit-state representation of a system.  States are numbered
   0..n-1; the transition relation is a CSR graph ([Csr.t]) with self-loops
   removed (no-op steps are stuttering, dropped per DESIGN.md section 2)
   and duplicate edges deduplicated.

   Indexing is a function, not a table: systems whose state space has
   arithmetic structure (e.g. guarded-command layouts with mixed-radix
   ranks) plug in an O(1) index with no hashing; generic enumerations fall
   back to a hashtable built once at construction.

   Compilation is domain-chunked: the state range is split into [jobs]
   contiguous chunks (the CR_JOBS contract of [Par], default 1 = the
   sequential path) and each domain fills its slice of a preallocated
   row array, flattened once into the CSR form.  Row i is computed
   independently of every other row, so the merged result is identical
   for any job count.

   The predecessor CSR is lazy: [Csr.transpose] runs on the first
   [predecessors]/backward use, because the refinement checkers never
   look at predecessors.  The thunk is an [Atomic]: if two domains race
   on the first force, both compute the same deterministic transpose and
   one of the identical results wins — no lock, no [Lazy.Undefined]. *)

module Csr = Cr_kernel.Csr
module Par = Cr_kernel.Par

exception Unknown_state of string

(* Construction telemetry: how many explicit systems were compiled and
   how big they were.  Counted once per construction, so the per-state
   work stays uninstrumented. *)
let c_systems = Cr_obs.Obs.counter "explicit.systems"
let c_states = Cr_obs.Obs.counter "explicit.states"
let c_transitions = Cr_obs.Obs.counter "explicit.transitions"
let c_largest = Cr_obs.Obs.counter ~kind:Cr_obs.Obs.Max "explicit.largest"

type pred = Pred_todo | Pred of Csr.t

type 'a t = {
  name : string;
  states : 'a array;
  index : 'a -> int option;  (* inverse of [states.(_)] *)
  succ : Csr.t;  (* each row sorted ascending, deduplicated *)
  pred : pred Atomic.t;  (* transposed from [succ] on first use *)
  is_initial : bool array;
  initials : int array;
  pp_state : Format.formatter -> 'a -> unit;
}

let name t = t.name

let rename name t = { t with name }

let num_states t = Array.length t.states

let state t i = t.states.(i)

let pp_state t fmt i = t.pp_state fmt t.states.(i)

let state_to_string t i = Fmt.str "%a" (fun fmt -> t.pp_state fmt) t.states.(i)

let find_opt t s = t.index s

let find t s =
  match t.index s with
  | Some i -> i
  | None -> raise (Unknown_state t.name)

(* Hands out the internal CSR directly — every checker kernel consumes
   this view without a copy. *)
let csr t = t.succ

let successors t i = Csr.row t.succ i

let out_degree t i = Csr.degree t.succ i

let successor t i k = Csr.kth t.succ i k

let is_initial t i = t.is_initial.(i)

let initials t = t.initials

let is_terminal t i = Csr.degree t.succ i = 0

(* Successor rows are sorted, so membership is a binary search — this is
   the innermost operation of every refinement/stabilization checker. *)
let has_edge t i j = Csr.mem t.succ i j

let num_transitions t = Csr.num_edges t.succ

let iter_edges t f = Csr.iter_edges t.succ f

let fold_edges t f acc =
  let acc = ref acc in
  iter_edges t (fun i j -> acc := f i j !acc);
  !acc

let sorted_dedup l =
  let l = List.sort_uniq compare l in
  Array.of_list l

let lazy_pred () = Atomic.make Pred_todo

(* No counter or span in here: a benign cross-domain race may compute the
   transpose twice (both results identical), and telemetry totals must
   stay CR_JOBS-invariant. *)
let force_pred t =
  match Atomic.get t.pred with
  | Pred p -> p
  | Pred_todo ->
      let p = Csr.transpose t.succ in
      if Atomic.compare_and_set t.pred Pred_todo (Pred p) then p
      else ( match Atomic.get t.pred with Pred p -> p | Pred_todo -> p)

let pred_csr = force_pred

let predecessors t i = Csr.row (force_pred t) i

let pred_forced t =
  match Atomic.get t.pred with Pred _ -> true | Pred_todo -> false

let initials_of is_initial_arr =
  let n = Array.length is_initial_arr in
  let count = ref 0 in
  Array.iter (fun b -> if b then incr count) is_initial_arr;
  let out = Array.make !count 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if is_initial_arr.(i) then begin
      out.(!k) <- i;
      incr k
    end
  done;
  out

let record_built t =
  if Cr_obs.Obs.tracking () then begin
    Cr_obs.Obs.incr c_systems;
    Cr_obs.Obs.add c_states (num_states t);
    Cr_obs.Obs.add c_transitions (num_transitions t);
    Cr_obs.Obs.record_max c_largest (num_states t)
  end;
  Cr_obs.Journal.emit "explicit.built"
    [
      ("name", Cr_obs.Journal.S (name t));
      ("states", Cr_obs.Journal.I (num_states t));
      ("transitions", Cr_obs.Journal.I (num_transitions t));
    ];
  t

let hashtbl_index states name =
  let n = Array.length states in
  let lookup = Hashtbl.create (2 * n + 1) in
  Array.iteri
    (fun i s ->
      if Hashtbl.mem lookup s then
        invalid_arg
          (Printf.sprintf "Explicit: duplicate state in enumeration of %s" name);
      Hashtbl.add lookup s i)
    states;
  fun s -> Hashtbl.find_opt lookup s

let of_edge_lists ~name ~states ~pp_state ~is_initial ~succ_lists =
  Cr_obs.Obs.span "explicit.of_edge_lists" @@ fun () ->
  let index = hashtbl_index states name in
  let succ =
    Csr.of_rows
      (Array.mapi
         (fun i js -> sorted_dedup (List.filter (fun j -> j <> i) js))
         succ_lists)
  in
  let is_initial_arr = Array.map is_initial states in
  record_built
    { name; states; index; succ; pred = lazy_pred ();
      is_initial = is_initial_arr; initials = initials_of is_initial_arr;
      pp_state }

(* Successor rows, domain-chunked.  [mk_row] is a per-chunk factory so
   builders can allocate private scratch once per domain; the returned
   function must compute row i from i (and read-only captures) alone.
   With jobs = 1 — the default — no chunking happens and the code path
   is a plain [Array.init].  The per-row arrays are transient: they are
   flattened into one CSR and dropped. *)
let build_rows ~num_states (mk_row : unit -> int -> int array) : Csr.t =
  let jobs = min (Par.current_jobs ()) num_states in
  let rows =
    if jobs <= 1 then begin
      let row = mk_row () in
      Array.init num_states row
    end
    else begin
      let out = Array.make num_states [||] in
      let chunks =
        Array.init jobs (fun d ->
            (d * num_states / jobs, (d + 1) * num_states / jobs))
      in
      (* Chunks are disjoint contiguous ranges, so each slot of [out] has a
         unique writer; [Par] joins its domains before returning. *)
      ignore
        (Par.map_array
           (fun (lo, hi) ->
             let row = mk_row () in
             for i = lo to hi - 1 do
               out.(i) <- row i
             done)
           chunks
          : unit array);
      out
    end
  in
  Csr.of_rows rows

(* Lowest-level constructor: precomputed enumeration plus a per-chunk row
   builder.  Every row must be sorted ascending, deduplicated and free of
   self-loops — the chunked compile's rows land here unchecked. *)
let of_rows ~name ~states ~index ~rows ~is_initial ~pp_state =
  Cr_obs.Obs.span "explicit.of_rows" @@ fun () ->
  let succ = build_rows ~num_states:(Array.length states) rows in
  let is_initial_arr = Array.map is_initial states in
  record_built
    { name; states; index; succ; pred = lazy_pred ();
      is_initial = is_initial_arr; initials = initials_of is_initial_arr;
      pp_state }

(* Space-routed constructor: both compile engines land here.  The dense
   engine passes its chunked row builder; the sparse engine passes the
   rows its discovery BFS already computed.  Either way the space owns
   the index bijection and the enumeration order. *)
let of_space (type a) ~name ~(space : a Space.t) ~rows ~is_initial ~pp_state :
    a t =
  let module Sp = (val space) in
  let states = Array.init Sp.size Sp.state_of_index in
  of_rows ~name ~states ~index:Sp.index_of_state ~rows ~is_initial ~pp_state

(* Direct indexed constructor: [state]/[index] must be mutually inverse
   bijections between [0 .. num_states - 1] and Sigma (e.g. mixed-radix
   rank/unrank of a variable layout).  No hashing, no duplicate scan: the
   whole compilation is O(num_states * branching * cost(index)). *)
let of_indexed ~name ~num_states ~state ~index ~step ~is_initial ~pp_state =
  Cr_obs.Obs.span "explicit.of_indexed" @@ fun () ->
  let states = Array.init num_states state in
  let to_index s =
    match index s with
    | Some j -> j
    | None ->
        raise
          (Unknown_state
             (Fmt.str "%s: step produced a state outside Sigma: %a" name
                pp_state s))
  in
  let rows () i =
    sorted_dedup
      (List.filter_map
         (fun s' ->
           let j = to_index s' in
           if j = i then None else Some j)
         (step states.(i)))
  in
  of_rows ~name ~states ~index ~rows ~is_initial ~pp_state

let of_system (sys : 'a System.t) =
  Cr_obs.Obs.span "explicit.of_system" @@ fun () ->
  let states = Array.of_list sys.System.states in
  let index = hashtbl_index states sys.System.name in
  let to_index s =
    match index s with
    | Some i -> i
    | None ->
        raise
          (Unknown_state
             (Fmt.str "%s: step produced a state outside Sigma: %a"
                sys.System.name sys.System.pp s))
  in
  let rows () i =
    sorted_dedup
      (List.filter_map
         (fun s' ->
           let j = to_index s' in
           if j = i then None else Some j)
         (sys.System.step states.(i)))
  in
  of_rows ~name:sys.System.name ~states ~index ~rows
    ~is_initial:sys.System.is_initial ~pp_state:sys.System.pp

(* Box on explicit systems over the same enumeration. *)
let same_states t1 t2 =
  Array.length t1.states = Array.length t2.states
  && (let ok = ref true in
      Array.iteri (fun i s -> if not (s = t2.states.(i)) then ok := false) t1.states;
      !ok)

(* Union of the transition relations, merged row-by-row straight into one
   flat CSR: no state re-hashing, no per-row arrays.  Initial states come
   from the left operand; predecessors stay lazy. *)
let box ?name t1 t2 =
  if not (same_states t1 t2) then
    invalid_arg "Explicit.box: systems do not share a state space";
  Cr_obs.Obs.span "explicit.box" @@ fun () ->
  let name = match name with Some n -> n | None -> t1.name ^ "[]" ^ t2.name in
  let n = Array.length t1.states in
  let rp1 = Csr.row_ptr t1.succ and tg1 = Csr.targets t1.succ in
  let rp2 = Csr.row_ptr t2.succ and tg2 = Csr.targets t2.succ in
  let row_ptr = Array.make (n + 1) 0 in
  let out = Array.make (Array.length tg1 + Array.length tg2) 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    (* sorted-merge of the two rows, deduplicating shared edges *)
    let p1 = ref rp1.(i) and p2 = ref rp2.(i) in
    let h1 = rp1.(i + 1) and h2 = rp2.(i + 1) in
    while !p1 < h1 && !p2 < h2 do
      let x = tg1.(!p1) and y = tg2.(!p2) in
      let v = if x <= y then x else y in
      if x <= v then incr p1;
      if y <= v then incr p2;
      out.(!k) <- v;
      incr k
    done;
    while !p1 < h1 do out.(!k) <- tg1.(!p1); incr p1; incr k done;
    while !p2 < h2 do out.(!k) <- tg2.(!p2); incr p2; incr k done;
    row_ptr.(i + 1) <- !k
  done;
  let targets = if !k = Array.length out then out else Array.sub out 0 !k in
  let succ = Csr.unsafe_of_raw ~row_ptr ~targets in
  record_built { t1 with name; succ; pred = lazy_pred () }

let same_transitions t1 t2 = same_states t1 t2 && Csr.equal t1.succ t2.succ

(* Shares the transition CSR — and the (possibly already forced)
   predecessor transpose — with the original. *)
let with_initials t pred =
  let is_initial_arr = Array.map pred t.states in
  { t with is_initial = is_initial_arr; initials = initials_of is_initial_arr }
