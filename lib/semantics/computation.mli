(** Finite computation prefixes and the paper's sequence-level notions
    (subsequences, convergence isomorphism — Section 2). *)

type path = int list
(** A sequence of state indices of some {!Explicit.t}. *)

val is_path : _ Explicit.t -> path -> bool
(** Consecutive states are related by transitions. *)

val is_computation : _ Explicit.t -> path -> bool
(** A nonempty path ending in a terminal state (a complete, finite, maximal
    computation). *)

val stutter_normalize : path -> path
(** Collapse consecutive duplicate states (used on abstraction images;
    DESIGN.md section 2, "τ steps"). *)

val is_subsequence : sub:path -> of_:path -> bool

val is_convergence_isomorphism : candidate:path -> of_:path -> bool
(** [candidate] is a subsequence of [of_] with the same first and last
    states — the paper's convergence isomorphism, on finite sequences. *)

val omissions : candidate:path -> of_:path -> int option
(** Number of states of [of_] dropped by the greedy embedding of
    [candidate]; [None] when not a subsequence. *)

val bounded_computations : _ Explicit.t -> start:int -> depth:int -> path list
(** All maximal paths from [start], truncated at [depth] states. *)

val random_walk :
  _ Explicit.t -> rng:Random.State.t -> start:int -> max_len:int -> path
(** Uniformly random successor walk; stops at terminal states. *)

val pp_path : _ Explicit.t -> Format.formatter -> path -> unit
