(** Explicit, integer-indexed transition graphs.

    This is the workhorse representation used by the model checker and the
    refinement checkers.  States are indices [0..num_states-1]; the
    transition relation is stored as one flat {!Csr} graph whose rows are
    sorted ascending ({!csr} hands it out as a zero-copy view).  Self-loops
    are removed on construction: a step whose effect is the identity is
    stuttering and generates no transition (DESIGN.md, section 2).

    Construction is domain-chunked under the [CR_JOBS] contract of
    {!Par}: the state range is split into contiguous chunks, one per
    domain, each filling its slice of a preallocated row array.  Row i
    depends only on i, so the result is identical for every job count
    (default 1 = the sequential path).  Predecessor rows are computed
    lazily, on the first {!predecessors} call — refinement
    classification never needs them. *)

exception Unknown_state of string
(** Raised when a successor function escapes the enumerated state space, or
    {!find} is applied to a state outside Sigma. *)

type 'a t

val of_system : 'a System.t -> 'a t
(** Compile a symbolic system.  Raises [Invalid_argument] on duplicate
    states in the enumeration and {!Unknown_state} if [step] escapes it. *)

val of_edge_lists :
  name:string ->
  states:'a array ->
  pp_state:(Format.formatter -> 'a -> unit) ->
  is_initial:('a -> bool) ->
  succ_lists:int list array ->
  'a t
(** Low-level constructor from adjacency lists (indices). *)

val of_indexed :
  name:string ->
  num_states:int ->
  state:(int -> 'a) ->
  index:('a -> int option) ->
  step:('a -> 'a list) ->
  is_initial:('a -> bool) ->
  pp_state:(Format.formatter -> 'a -> unit) ->
  'a t
(** Compile a system whose state space carries its own O(1) indexing:
    [state]/[index] must be mutually inverse bijections between
    [0 .. num_states - 1] and Sigma (e.g. the mixed-radix rank/unrank of
    a {!Cr_guarded.Layout}).  Unlike {!of_system} there is no hashtable
    and no duplicate scan.  Raises {!Unknown_state} if [step] escapes the
    indexed space ([index] returns [None]). *)

val of_space :
  name:string ->
  space:'a Space.t ->
  rows:(unit -> int -> int array) ->
  is_initial:('a -> bool) ->
  pp_state:(Format.formatter -> 'a -> unit) ->
  'a t
(** Compile over a {!Space} engine: the space supplies the enumeration
    and the index bijection, [rows] the per-chunk successor-row builder
    (conventions as {!of_rows}).  The dense engine passes the guarded
    compiler's row builder; the sparse engine passes the rows its
    discovery BFS already computed. *)

val of_rows :
  name:string ->
  states:'a array ->
  index:('a -> int option) ->
  rows:(unit -> int -> int array) ->
  is_initial:('a -> bool) ->
  pp_state:(Format.formatter -> 'a -> unit) ->
  'a t
(** Lowest-level chunked constructor: a precomputed enumeration plus a
    per-chunk row builder.  [rows ()] is called once per chunk (so the
    builder may allocate private scratch) and the function it returns
    must produce, for each state index, its successor row — sorted
    ascending, deduplicated, without self-loops — from the index and
    read-only captures alone.  Used by the allocation-lean
    guarded-command compiler ({!Cr_guarded.Program.to_explicit}). *)

val name : _ t -> string
val rename : string -> 'a t -> 'a t
val num_states : _ t -> int
val num_transitions : _ t -> int
val state : 'a t -> int -> 'a
val find : 'a t -> 'a -> int
val find_opt : 'a t -> 'a -> int option
val successors : _ t -> int -> int array
(** Copy of one successor row.  Hot loops should use {!csr} (zero-copy)
    or {!out_degree}/{!successor} instead. *)

val csr : _ t -> Cr_kernel.Csr.t
(** The internal transition CSR, shared without copying.  This is what
    every checker kernel consumes; treat it as read-only. *)

val out_degree : _ t -> int -> int
(** Number of successors of a state: O(1), no allocation. *)

val successor : _ t -> int -> int -> int
(** [successor t i k] is the [k]-th successor of state [i] (0-based):
    O(1), no allocation. *)

val pred_csr : _ t -> Cr_kernel.Csr.t
(** The predecessor CSR (transpose of {!csr}), forced on first use and
    cached as for {!predecessors}; shared without copying. *)

val predecessors : _ t -> int -> int array
(** Predecessor row of a state.  The transpose of the successor arrays is
    computed on the first call and cached ({!pred_forced}); the benign
    first-force race between domains recomputes the same deterministic
    value. *)

val pred_forced : _ t -> bool
(** Has the predecessor transpose been computed yet?  (Introspection for
    tests and telemetry; {!box} and {!with_initials} preserve
    laziness.) *)

val is_initial : _ t -> int -> bool
val initials : _ t -> int array
val is_terminal : _ t -> int -> bool
val has_edge : _ t -> int -> int -> bool
(** Binary search over the sorted successor row: O(log branching). *)

val iter_edges : _ t -> (int -> int -> unit) -> unit
val fold_edges : _ t -> (int -> int -> 'acc -> 'acc) -> 'acc -> 'acc

val pp_state : 'a t -> Format.formatter -> int -> unit
val state_to_string : 'a t -> int -> string

val same_states : 'a t -> 'a t -> bool
(** Do both systems enumerate the same Sigma in the same order? *)

val same_transitions : 'a t -> 'a t -> bool
(** {!same_states} and identical transition relations (used for the
    paper's "the above system is equal to Dijkstra's ..." claims). *)

val box : ?name:string -> 'a t -> 'a t -> 'a t
(** Union of transition relations over a shared enumeration; initial states
    are those of the left operand. *)

val with_initials : 'a t -> ('a -> bool) -> 'a t
(** Replace the initial-state predicate. *)
