(* Finite (prefixes of) computations as lists of state indices, plus the
   sequence-level notions from Section 2 of the paper: subsequence testing
   and convergence isomorphism. *)

type path = int list

let is_path expl p =
  let rec go = function
    | [] | [ _ ] -> true
    | i :: (j :: _ as rest) -> Explicit.has_edge expl i j && go rest
  in
  go p

(* A finite path is a (complete) computation iff it is a path ending in a
   terminal state. *)
let is_computation expl p =
  match List.rev p with
  | [] -> false
  | last :: _ -> is_path expl p && Explicit.is_terminal expl last

let stutter_normalize p =
  let rec go = function
    | x :: (y :: _ as rest) -> if x = y then go rest else x :: go rest
    | rest -> rest
  in
  go p

(* [is_subsequence ~sub ~of_] : can [sub] be obtained from [of_] by deleting
   elements? *)
let rec is_subsequence ~sub ~of_ =
  match (sub, of_) with
  | [], _ -> true
  | _ :: _, [] -> false
  | x :: sub', y :: of_' ->
      if x = y then is_subsequence ~sub:sub' ~of_:of_'
      else is_subsequence ~sub ~of_:of_'

let last_opt l = match List.rev l with [] -> None | x :: _ -> Some x

(* Convergence isomorphism on finite sequences: [c] is a subsequence of [a]
   with the same initial and final states (omissions are interior and, for
   finite sequences, necessarily finite). *)
let is_convergence_isomorphism ~candidate ~of_ =
  match (candidate, of_) with
  | [], [] -> true
  | [], _ | _, [] -> false
  | c0 :: _, a0 :: _ ->
      c0 = a0
      && last_opt candidate = last_opt of_
      && is_subsequence ~sub:candidate ~of_

(* Count how many states of [of_] are omitted by [candidate] along the
   greedy (left-most) embedding; [None] if not a subsequence. *)
let omissions ~candidate ~of_ =
  let rec go dropped sub of_ =
    match (sub, of_) with
    | [], rest -> Some (dropped + List.length rest)
    | _ :: _, [] -> None
    | x :: sub', y :: of_' ->
        if x = y then go dropped sub' of_' else go (dropped + 1) sub of_'
  in
  go 0 candidate of_

(* Enumerate all maximal paths from [start] cut off at [depth] states; a
   path shorter than [depth] ends in a terminal state.  For exhaustive
   small-scope tests. *)
let bounded_computations expl ~start ~depth =
  let rec go i d =
    if d <= 1 then [ [ i ] ]
    else
      match Explicit.successors expl i with
      | [||] -> [ [ i ] ]
      | js ->
          Array.to_list js
          |> List.concat_map (fun j -> List.map (fun p -> i :: p) (go j (d - 1)))
  in
  go start depth

let random_walk expl ~rng ~start ~max_len =
  let rec go acc i n =
    if n >= max_len then List.rev (i :: acc)
    else
      match Explicit.out_degree expl i with
      | 0 -> List.rev (i :: acc)
      | d ->
          let j = Explicit.successor expl i (Random.State.int rng d) in
          go (i :: acc) j (n + 1)
  in
  go [] start 0

let pp_path expl fmt p =
  Fmt.pf fmt "@[<hv>%a@]"
    (Fmt.list ~sep:(Fmt.any " ->@ ") (fun fmt i -> Explicit.pp_state expl fmt i))
    p
