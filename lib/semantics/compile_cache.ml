(* Content-addressed memoization of explicit-state compiles.

   Keys are structural fingerprints computed by the caller (for
   guarded-command programs: layout, action metadata, execution mode and
   a semantic successor probe — see [Cr_guarded.Program]); values are
   whole [Explicit.t] graphs.  The caller re-targets a cached graph to
   the requesting program's name and initial predicate via [reinit], so
   programs that differ only in initial states still share one compile.

   Concurrency: lookups are single-flight.  A domain that misses
   publishes an in-flight marker, compiles outside the lock, then
   broadcasts; concurrent requesters of the same key block until the
   value lands and count a hit.  Hit/miss totals are therefore exactly
   those of the sequential schedule — the CR_JOBS counter-invariance of
   [Cr_obs] extends to the cache.

   [CR_COMPILE_CACHE=0] disables the cache (every call compiles);
   [CR_COMPILE_PARANOID=1] recompiles on every hit and asserts the
   cached graph is [same_transitions] with — and reaches the same
   initial states as — the fresh compile. *)

let c_hits = Cr_obs.Obs.counter "compile.cache.hits"
let c_misses = Cr_obs.Obs.counter "compile.cache.misses"

(* Time spent blocked behind another domain's in-flight compile.  Only
   populated under CR_JOBS > 1, so (unlike hit/miss totals) it is
   schedule-dependent — a distribution to eyeball, not an invariant. *)
let h_wait = Cr_obs.Obs.histogram "compile.cache.wait_us"

type 'a slot = Inflight | Done of 'a Explicit.t

type 'a t = {
  m : Mutex.t;
  cv : Condition.t;
  tbl : (string, 'a slot) Hashtbl.t;
}

let create () =
  { m = Mutex.create (); cv = Condition.create (); tbl = Hashtbl.create 64 }

(* Per-domain bypass, for benchmarks/tests that need a guaranteed fresh
   compile without touching the process environment. *)
let bypassed : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let bypass f =
  let saved = Domain.DLS.get bypassed in
  Domain.DLS.set bypassed true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set bypassed saved) f

let enabled () =
  (not (Domain.DLS.get bypassed))
  &&
  match Sys.getenv_opt "CR_COMPILE_CACHE" with
  | Some s when String.trim s = "0" -> false
  | _ -> true

let paranoid () =
  match Sys.getenv_opt "CR_COMPILE_PARANOID" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let length c = Mutex.protect c.m (fun () -> Hashtbl.length c.tbl)

let clear c =
  Mutex.protect c.m (fun () ->
      (* never drop an in-flight marker: its compiler will publish into
         the (now smaller) table and broadcast as usual *)
      let keep =
        Hashtbl.fold
          (fun k v acc -> match v with Inflight -> (k, v) :: acc | Done _ -> acc)
          c.tbl []
      in
      Hashtbl.reset c.tbl;
      List.iter (fun (k, v) -> Hashtbl.add c.tbl k v) keep)

let check_paranoid ~key ~compile cached =
  let fresh = compile () in
  if not (Explicit.same_transitions fresh cached) then
    invalid_arg
      (Printf.sprintf
         "Compile_cache: paranoid mode: cached transitions differ from a \
          fresh compile (key %s)"
         key);
  if Explicit.initials fresh <> Explicit.initials cached then
    invalid_arg
      (Printf.sprintf
         "Compile_cache: paranoid mode: cached initial states differ from a \
          fresh compile (key %s)"
         key)

let find_or_compile c ~key ~reinit ~compile =
  if not (enabled ()) then compile ()
  else begin
    Mutex.lock c.m;
    let wait_start = ref None in
    let rec lookup () =
      match Hashtbl.find_opt c.tbl key with
      | Some (Done v) -> `Hit v
      | Some Inflight ->
          if !wait_start = None then wait_start := Some (Cr_obs.Obs.now_us ());
          Condition.wait c.cv c.m;
          lookup ()
      | None ->
          Hashtbl.add c.tbl key Inflight;
          `Miss
    in
    let outcome = lookup () in
    Mutex.unlock c.m;
    (match !wait_start with
    | None -> ()
    | Some t0 ->
        let waited = Cr_obs.Obs.now_us () -. t0 in
        Cr_obs.Obs.observe h_wait (int_of_float waited);
        Cr_obs.Journal.emit "compile.cache.wait"
          [ ("key", Cr_obs.Journal.S key); ("wait_us", Cr_obs.Journal.F waited) ]);
    match outcome with
    | `Hit v ->
        Cr_obs.Obs.incr c_hits;
        Cr_obs.Journal.emit "compile.cache.hit" [ ("key", Cr_obs.Journal.S key) ];
        let out = reinit v in
        if paranoid () then check_paranoid ~key ~compile out;
        out
    | `Miss -> (
        Cr_obs.Obs.incr c_misses;
        Cr_obs.Journal.emit "compile.cache.miss"
          [ ("key", Cr_obs.Journal.S key) ];
        Cr_obs.Journal.emit "compile.start" [ ("key", Cr_obs.Journal.S key) ];
        let t0 = Cr_obs.Obs.now_us () in
        match compile () with
        | v ->
            Cr_obs.Journal.emit "compile.finish"
              [
                ("key", Cr_obs.Journal.S key);
                ("states", Cr_obs.Journal.I (Explicit.num_states v));
                ("transitions", Cr_obs.Journal.I (Explicit.num_transitions v));
                ("wall_us", Cr_obs.Journal.F (Cr_obs.Obs.now_us () -. t0));
              ];
            Mutex.protect c.m (fun () ->
                Hashtbl.replace c.tbl key (Done v);
                Condition.broadcast c.cv);
            v
        | exception e ->
            (* let waiters retry (and re-raise for themselves) *)
            Mutex.protect c.m (fun () ->
                Hashtbl.remove c.tbl key;
                Condition.broadcast c.cv);
            raise e)
  end
