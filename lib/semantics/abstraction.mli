(** Abstraction functions relating a concrete state space to an abstract
    one (Section 2.3 of the paper): total mappings from Sigma_C onto
    Sigma_A. *)

type ('c, 'a) t

val make : name:string -> ('c -> 'a) -> ('c, 'a) t
val identity : ?name:string -> unit -> ('a, 'a) t
val name : (_, _) t -> string
val apply : ('c, 'a) t -> 'c -> 'a
val compose : ?name:string -> ('b, 'a) t -> ('c, 'b) t -> ('c, 'a) t

exception Not_total of string

val tabulate : ('c, 'a) t -> 'c Explicit.t -> 'a Explicit.t -> int array
(** [tabulate alpha c a] is the index table [t] with [t.(i)] the abstract
    index of the image of concrete state [i].  Raises {!Not_total} if some
    image is not a state of [a] (the mapping must be total). *)

val is_onto : int array -> num_abstract:int -> bool
(** Surjectivity of a tabulated abstraction. *)

val identity_table : int -> int array

val map_path : int array -> Computation.path -> Computation.path
