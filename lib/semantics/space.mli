(** Pluggable state-space engines for explicit compilation.

    A space is the indexing substrate an explicit compile runs over: a
    bijection between a contiguous index range [0 .. size - 1] and the
    states the compile will materialize.  Two engines implement it:

    - {e dense} — the full product space in mixed-radix rank order
      (every valid state gets an index, reachable or not);
    - {e sparse} — only the fragment reachable from the initial states,
      discovered by a frontier BFS ({!discover}) that hash-conses each
      state under its dense rank into a compact index.

    Full-space checks (stabilization bad-seed sweeps, whole-space lint
    facts) are dense by construction; init-anchored queries (the
    refinement premise of the graybox theorems, DESIGN.md section 2)
    only ever look at the reachable fragment and default to sparse.
    [CR_SPACE=dense|sparse|auto] overrides the per-call default. *)

type engine = Dense | Sparse

val engine_name : engine -> string
(** ["dense"] / ["sparse"] — journal and CLI spelling. *)

type choice = Auto | Forced of engine

val choice_of_string : string -> choice option
(** Parses ["dense"], ["sparse"], ["auto"] (case-insensitive, trimmed);
    [None] on anything else. *)

val env_choice : unit -> choice
(** The [CR_SPACE] override: [Auto] when unset or set to [auto]; a
    malformed value also yields [Auto], with a one-line warning on
    stderr (printed once per process). *)

val resolve : ?choice:choice -> default:engine -> unit -> engine
(** The engine a call site should use: [choice] (default
    {!env_choice}) unless [Auto], in which case the caller's
    [default]. *)

(** The first-class space interface.  [state_of_index]/[index_of_state]
    are mutually inverse between [0 .. size - 1] and the carried state
    set; [index_of_state] is [None] on states outside it (for the dense
    engine: outside Sigma; for sparse: also anything unreachable). *)
module type S = sig
  type state

  val engine : engine
  val size : int

  val full_size : int
  (** Size of the ambient dense space ([= size] for the dense engine);
      [size / full_size] is the reachable ratio the journal reports. *)

  val state_of_index : int -> state
  val index_of_state : state -> int option
  val iter : (int -> state -> unit) -> unit
end

type 'a t = (module S with type state = 'a)

val engine : 'a t -> engine
val size : 'a t -> int
val full_size : 'a t -> int

val dense :
  size:int ->
  state_of_index:(int -> 'a) ->
  index_of_state:('a -> int option) ->
  unit ->
  'a t
(** The full-space engine over a caller-supplied rank/unrank pair. *)

(** Result of a sparse discovery: the space itself plus the successor
    rows the BFS computed on the way (over sparse indices, sorted
    ascending, deduplicated, self-loops dropped) — the compile reuses
    them instead of stepping every state a second time.  [keys.(i)] is
    the dense key of sparse index [i]: the sparse↔dense bijection. *)
type 'a sparse = { space : 'a t; rows : int array array; keys : int array }

val discover :
  full_size:int ->
  state_of_key:(int -> 'a) ->
  key_of_state:('a -> int) ->
  step:(unit -> 'a -> int -> (int -> unit) -> unit) ->
  seed_keys:int array ->
  unit ->
  'a sparse
(** Frontier BFS over dense keys.  [key_of_state] must be injective on
    Sigma, in [0 .. full_size - 1] ([-1] outside Sigma — e.g.
    [Layout.checked_rank]); [state_of_key] its inverse.  [step () s k
    emit] calls [emit] on the dense key of every successor of [s] (own
    key [k] excluded, i.e. self-loops dropped at the source), raising if
    a step escapes Sigma; the [unit ->] stage is a per-chunk factory so
    implementations may allocate private scratch.  [seed_keys] (sorted,
    deduplicated) are the BFS roots.

    Discovery order — and therefore the index assignment — is
    deterministic: seeds in the given order, then successors in
    (frontier order, emission order).  Frontier expansion is
    domain-chunked under the [CR_JOBS] contract of {!Cr_kernel.Par}
    exactly like the dense row build, and the merge is sequential, so
    the result is byte-identical for every job count. *)
