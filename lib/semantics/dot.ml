(* Graphviz (DOT) export of explicit systems, with optional state-class
   colouring (e.g. legitimate / converged regions) for visual inspection
   of small instances. *)

let escape s = String.concat "\\\"" (String.split_on_char '"' s)

let to_string ?(highlight = fun _ -> None) ?(max_states = 4096)
    (e : 'a Explicit.t) =
  let n = Explicit.num_states e in
  if n > max_states then
    invalid_arg
      (Printf.sprintf "Dot.to_string: %d states exceed max_states=%d" n
         max_states);
  let out = Buffer.create (64 * n) in
  Buffer.add_string out
    (Printf.sprintf "digraph \"%s\" {\n" (escape (Explicit.name e)));
  Buffer.add_string out "  rankdir=LR;\n  node [shape=box, fontsize=10];\n";
  for i = 0 to n - 1 do
    let label = escape (Explicit.state_to_string e i) in
    let attrs = ref [ Printf.sprintf "label=\"%s\"" label ] in
    if Explicit.is_initial e i then attrs := "penwidth=2" :: !attrs;
    (match highlight i with
    | Some colour ->
        attrs := Printf.sprintf "style=filled, fillcolor=\"%s\"" colour :: !attrs
    | None -> ());
    Buffer.add_string out
      (Printf.sprintf "  s%d [%s];\n" i (String.concat ", " !attrs))
  done;
  Explicit.iter_edges e (fun i j ->
      Buffer.add_string out (Printf.sprintf "  s%d -> s%d;\n" i j));
  Buffer.add_string out "}\n";
  Buffer.contents out

let write ?highlight ?max_states out e =
  output_string out (to_string ?highlight ?max_states e)
