(* Packed boolean masks over [Bytes].

   The checker kernels carry one mask per sweep (reachable sets, converged
   regions, SCC restrictions); packing them 8x denser than [bool array]
   keeps whole masks of the larger rings inside L1/L2 and makes
   complement/equality byte-wide operations.

   Invariant: the unused trailing bits of the last byte are always zero,
   so [count]/[equal] can work on raw bytes without masking.

   Concurrency: [set] is a read-modify-write on one byte, so two domains
   may only write a bitset concurrently when their index ranges touch
   disjoint bytes — chunk boundaries must be multiples of 8 (see the
   bad-seed sweep in [Cr_core.Stabilize]). *)

type t = { len : int; bits : Bytes.t }

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { len; bits = Bytes.make ((len + 7) lsr 3) '\000' }

let length t = t.len

let check t i name =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0, %d)" name i t.len)

let get t i =
  check t i "get";
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i "set";
  let k = i lsr 3 in
  Bytes.unsafe_set t.bits k
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits k) lor (1 lsl (i land 7))))

let clear t i =
  check t i "clear";
  let k = i lsr 3 in
  Bytes.unsafe_set t.bits k
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits k) land lnot (1 lsl (i land 7))))

(* Zero the unused high bits of the last byte (after byte-wide writes). *)
let mask_tail t =
  let r = t.len land 7 in
  if r <> 0 && Bytes.length t.bits > 0 then begin
    let last = Bytes.length t.bits - 1 in
    Bytes.unsafe_set t.bits last
      (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits last) land ((1 lsl r) - 1)))
  end

let full len =
  let t = { len; bits = Bytes.make ((len + 7) lsr 3) '\255' } in
  mask_tail t;
  t

let popcount_table =
  lazy
    (Array.init 256 (fun b ->
         let c = ref 0 in
         for k = 0 to 7 do
           if b land (1 lsl k) <> 0 then incr c
         done;
         !c))

let count t =
  let table = Lazy.force popcount_table in
  let acc = ref 0 in
  for k = 0 to Bytes.length t.bits - 1 do
    acc := !acc + table.(Char.code (Bytes.unsafe_get t.bits k))
  done;
  !acc

let members t =
  let acc = ref [] in
  for i = t.len - 1 downto 0 do
    if get t i then acc := i :: !acc
  done;
  !acc

let complement t =
  let out = { len = t.len; bits = Bytes.create (Bytes.length t.bits) } in
  for k = 0 to Bytes.length t.bits - 1 do
    Bytes.unsafe_set out.bits k
      (Char.unsafe_chr (lnot (Char.code (Bytes.unsafe_get t.bits k)) land 0xff))
  done;
  mask_tail out;
  out

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i b -> if b then set t i) a;
  t

let to_bool_array t = Array.init t.len (fun i -> get t i)

let equal t1 t2 = t1.len = t2.len && Bytes.equal t1.bits t2.bits
