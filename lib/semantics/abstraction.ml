(* Abstraction functions between state spaces (Section 2.3 of the paper):
   total mappings from the concrete Sigma_C onto the abstract Sigma_A.
   [tabulate] compiles the mapping to an index array and checks totality;
   [check_onto] verifies surjectivity. *)

type ('c, 'a) t = { name : string; apply : 'c -> 'a }

let make ~name apply = { name; apply }

let identity ?(name = "id") () = { name; apply = (fun s -> s) }

let name t = t.name

let apply t s = t.apply s

let compose ?name outer inner =
  let name =
    match name with Some n -> n | None -> outer.name ^ " . " ^ inner.name
  in
  { name; apply = (fun s -> outer.apply (inner.apply s)) }

exception Not_total of string

let tabulate t (c : 'c Explicit.t) (a : 'a Explicit.t) : int array =
  Cr_obs.Obs.span "abstraction.tabulate" @@ fun () ->
  Array.init (Explicit.num_states c) (fun i ->
      let img = t.apply (Explicit.state c i) in
      match Explicit.find_opt a img with
      | Some j -> j
      | None ->
          raise
            (Not_total
               (Fmt.str
                  "abstraction %s: image of concrete state %s not a state of %s"
                  t.name
                  (Explicit.state_to_string c i)
                  (Explicit.name a))))

let is_onto alpha ~num_abstract =
  let hit = Array.make num_abstract false in
  Array.iter (fun j -> hit.(j) <- true) alpha;
  Array.for_all (fun b -> b) hit

let identity_table n = Array.init n (fun i -> i)

let map_path alpha p = List.map (fun i -> alpha.(i)) p
