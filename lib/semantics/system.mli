(** Symbolic finite-state automata [(Sigma, T, I)] — the paper's systems.

    A system is described by an enumerated state space, a successor
    function, and an initial-state predicate.  Use {!Explicit.of_system} to
    compile a spec into an indexed transition graph suitable for model
    checking and refinement checking.

    States must be comparable/hashable with the polymorphic structural
    operations (no functional values inside states). *)

type 'a t = {
  name : string;
  states : 'a list;  (** enumeration of the full state space Sigma *)
  step : 'a -> 'a list;  (** successors under T (duplicates allowed) *)
  is_initial : 'a -> bool;  (** membership in I *)
  pp : Format.formatter -> 'a -> unit;
}

val make :
  name:string ->
  states:'a list ->
  step:('a -> 'a list) ->
  is_initial:('a -> bool) ->
  ?pp:(Format.formatter -> 'a -> unit) ->
  unit ->
  'a t
(** [make ~name ~states ~step ~is_initial ()] builds a symbolic system. *)

val name : 'a t -> string

val rename : string -> 'a t -> 'a t

val box : ?name:string -> 'a t -> 'a t -> 'a t
(** [box a w] is the paper's [a [] w]: the union of the two transition
    relations over the state space (and initial states) of [a].  Both
    systems must range over the same Sigma. *)

val box_priority : ?name:string -> 'a t -> 'a t -> 'a t
(** [box_priority base wrapper] composes [base] with a wrapper whose
    (state-changing) actions preempt the base system wherever enabled. *)
