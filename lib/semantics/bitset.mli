(** Packed boolean masks over [Bytes] — 8x denser than [bool array].

    Used by the CSR checker kernels for reachable sets, converged regions
    and subgraph restrictions.  The unused trailing bits of the last byte
    are kept zero, so {!count} and {!equal} are byte-wide.

    {!set} is a read-modify-write of one byte: concurrent writers must
    own disjoint {e byte} ranges, i.e. parallel chunk boundaries over a
    shared bitset must be multiples of 8. *)

type t

val create : int -> t
(** All-false mask of the given length. *)

val full : int -> t
(** All-true mask of the given length. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val count : t -> int
(** Number of set bits. *)

val members : t -> int list
(** Indices of the set bits, ascending. *)

val complement : t -> t
(** Fresh mask with every bit flipped. *)

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val equal : t -> t -> bool
