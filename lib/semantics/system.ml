(* Symbolic description of a finite-state automaton (Sigma, T, I), the
   paper's notion of a "system" (Section 2).  The state space is given by an
   explicit enumeration; transitions by a successor function.  Symbolic
   specs are compiled to indexed graphs by {!Explicit}. *)

type 'a t = {
  name : string;
  states : 'a list;
  step : 'a -> 'a list;
  is_initial : 'a -> bool;
  pp : Format.formatter -> 'a -> unit;
}

let make ~name ~states ~step ~is_initial ?(pp = fun fmt _ -> Format.pp_print_string fmt "<state>") () =
  { name; states; step; is_initial; pp }

let name t = t.name

let rename name t = { t with name }

(* Union of automata: the paper's box operator [] over a shared state
   space.  The state enumeration is taken from the left operand; callers
   must ensure both operands range over the same Sigma. *)
let box ?name t1 t2 =
  let name = match name with Some n -> n | None -> t1.name ^ "[]" ^ t2.name in
  let step s = t1.step s @ t2.step s in
  { name; states = t1.states; step; is_initial = t1.is_initial; pp = t1.pp }

(* Box where [wrapper] has priority: in a state where any wrapper action is
   enabled, only wrapper transitions are taken.  This models dependability
   wrappers that intercept the base system (cf. W2's "if ever truthified
   ... then both are deleted" reading in Section 3.2). *)
let box_priority ?name base wrapper =
  let name =
    match name with Some n -> n | None -> base.name ^ "[]!" ^ wrapper.name
  in
  let step s =
    (* A wrapper action whose effect is the identity does not count as
       enabled: systems are automata without self-loops (no-op steps are
       stuttering and dropped, cf. DESIGN.md section 2). *)
    match List.filter (fun s' -> s' <> s) (wrapper.step s) with
    | [] -> base.step s
    | ws -> ws
  in
  { name; states = base.states; step; is_initial = base.is_initial; pp = base.pp }
