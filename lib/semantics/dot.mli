(** Graphviz (DOT) export of explicit systems.

    [highlight i] may return a fill colour for state [i] — used to paint
    legitimate / converged regions.  Initial states are drawn with a
    thick border.  Refuses to render systems larger than [max_states]
    (default 4096). *)

val to_string :
  ?highlight:(int -> string option) ->
  ?max_states:int ->
  'a Explicit.t ->
  string

val write :
  ?highlight:(int -> string option) ->
  ?max_states:int ->
  out_channel ->
  'a Explicit.t ->
  unit
