(* Variable layout of a guarded-command program: a fixed list of named
   variables, each over a finite domain 0..dom-1.  A program state is an
   int array indexed by variable slot.  A domain of 1 encodes a variable
   fixed at 0 (e.g. the undefined tokens of the paper's BTR, or up.0/up.N
   in BTR_4). *)

type var = { vname : string; dom : int }

type t = {
  vars : var array;
  by_name : (string, int) Hashtbl.t;
}

type state = int array

let make vars_list =
  let vars =
    Array.of_list
      (List.map
         (fun (vname, dom) ->
           if dom < 1 then invalid_arg ("Layout.make: empty domain for " ^ vname);
           { vname; dom })
         vars_list)
  in
  let by_name = Hashtbl.create (2 * Array.length vars + 1) in
  Array.iteri
    (fun i v ->
      if Hashtbl.mem by_name v.vname then
        invalid_arg ("Layout.make: duplicate variable " ^ v.vname);
      Hashtbl.add by_name v.vname i)
    vars;
  { vars; by_name }

let num_vars t = Array.length t.vars

let dom t i = t.vars.(i).dom

let var_name t i = t.vars.(i).vname

let slot t name =
  match Hashtbl.find_opt t.by_name name with
  | Some i -> i
  | None -> invalid_arg ("Layout.slot: unknown variable " ^ name)

let num_states t =
  Array.fold_left (fun acc v -> acc * v.dom) 1 t.vars

(* Mixed-radix state indexing (slot 0 is the least significant digit, so
   ranks agree with the historical [enumerate] order).  [rank] and
   [unrank] are mutually inverse bijections between valid states and
   [0 .. num_states - 1]; both are O(num_vars) integer arithmetic. *)

let rank t (s : state) =
  let n = Array.length t.vars in
  let k = ref 0 in
  for i = n - 1 downto 0 do
    k := (!k * t.vars.(i).dom) + s.(i)
  done;
  !k

(* Mixed-radix digit weight of a slot: the rank stride between two states
   that differ by one in that slot.  Lets analyses iterate "slot lines"
   (all states agreeing everywhere except one slot) by pure arithmetic. *)
let weight t i =
  let w = ref 1 in
  for k = 0 to i - 1 do
    w := !w * t.vars.(k).dom
  done;
  !w

let unrank t k =
  let n = Array.length t.vars in
  let s = Array.make n 0 in
  let k = ref k in
  for i = 0 to n - 1 do
    let d = t.vars.(i).dom in
    s.(i) <- !k mod d;
    k := !k / d
  done;
  s

(* Enumerate all states in mixed-radix order (slot 0 fastest). *)
let enumerate t = List.init (num_states t) (unrank t)

(* Allocation-free full-space iteration: one scratch state is advanced
   in place through the mixed-radix order (slot 0 is the odometer's
   fastest digit), so visiting all states costs O(1) amortized writes
   per state instead of one fresh array each.  The callback must not
   retain [s]. *)
let iter_states t f =
  let n = Array.length t.vars in
  let ns = num_states t in
  if ns > 0 then begin
    let s = Array.make n 0 in
    f 0 s;
    for k = 1 to ns - 1 do
      let i = ref 0 in
      let carry = ref true in
      while !carry do
        let d = t.vars.(!i).dom in
        if s.(!i) + 1 < d then begin
          s.(!i) <- s.(!i) + 1;
          carry := false
        end
        else begin
          s.(!i) <- 0;
          incr i
        end
      done;
      f k s
    done
  end

(* Fused validity test + rank: [-1] when the state is outside the
   layout.  One pass, no allocation — the innermost operation of the
   explicit compiler, which ranks every successor of every state. *)
let checked_rank t (s : state) =
  let n = Array.length t.vars in
  if Array.length s <> n then -1
  else begin
    let k = ref 0 in
    let ok = ref true in
    let i = ref (n - 1) in
    while !ok && !i >= 0 do
      let d = (Array.unsafe_get t.vars !i).dom in
      let v = Array.unsafe_get s !i in
      if v < 0 || v >= d then ok := false else k := (!k * d) + v;
      decr i
    done;
    if !ok then !k else -1
  end

let valid t (s : state) =
  Array.length s = num_vars t
  &&
  let ok = ref true in
  Array.iteri (fun i v -> if s.(i) < 0 || s.(i) >= v.dom then ok := false) t.vars;
  !ok

let pp_state t fmt (s : state) =
  let items =
    Array.to_list (Array.mapi (fun i v -> Printf.sprintf "%s=%d" v.vname s.(i)) t.vars)
  in
  (* Hide domain-1 (fixed) variables to keep states readable. *)
  let items =
    List.filteri (fun i _ -> t.vars.(i).dom > 1) (List.mapi (fun i x -> (i, x)) items)
    |> List.map snd
  in
  Fmt.pf fmt "{%s}" (String.concat " " items)
