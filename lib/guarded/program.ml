(* A guarded-command program over a layout: the uniform substrate for
   every system in the paper (rings, wrappers and their compositions). *)

module Space = Cr_semantics.Space

type state = Layout.state

type t = {
  name : string;
  layout : Layout.t;
  actions : Action.t list;
  initial : state -> bool;
  (* Enumerator of the complete initial-state set, when one is known
     without scanning Sigma (set by [with_initial_closure]).  The sparse
     compile engine seeds its BFS from it; [None] falls back to a
     full-space predicate scan. *)
  init_enum : (unit -> state list) option;
}

let make ~name ~layout ~actions ~initial =
  { name; layout; actions; initial; init_enum = None }

let name t = t.name
let layout t = t.layout
let actions t = t.actions
let initial t = t.initial
let rename n t = { t with name = n }
let with_initial initial t = { t with initial; init_enum = None }
let with_actions actions t = { t with actions }

(* Distinct owning processes (>= 0) of the program's actions, sorted.
   Global wrapper actions (proc -1) are not listed. *)
let procs t =
  List.filter_map
    (fun a ->
      let p = Action.proc a in
      if p >= 0 then Some p else None)
    t.actions
  |> List.sort_uniq compare

let same_layout t1 t2 =
  (* Layouts are compared structurally via their printed variables. *)
  Layout.num_vars t1.layout = Layout.num_vars t2.layout
  && List.for_all
       (fun i ->
         Layout.dom t1.layout i = Layout.dom t2.layout i
         && String.equal (Layout.var_name t1.layout i) (Layout.var_name t2.layout i))
       (List.init (Layout.num_vars t1.layout) (fun i -> i))

(* The paper's box operator []: union of the actions.  Initial states are
   those of the left (base) operand. *)
let box ?name t1 t2 =
  if not (same_layout t1 t2) then
    invalid_arg "Program.box: incompatible layouts";
  let name = match name with Some n -> n | None -> t1.name ^ "[]" ^ t2.name in
  { t1 with name; actions = t1.actions @ t2.actions }

let box_list ?name base wrappers =
  let t = List.fold_left (fun acc w -> box acc w) base wrappers in
  match name with Some n -> { t with name = n } | None -> t

let enabled_actions t s = List.filter (fun a -> Action.enabled a s) t.actions

(* Transitions enabled at [s]: (action, successor) pairs, no-ops dropped. *)
let firings t s =
  List.filter_map
    (fun a -> Option.map (fun s' -> (a, s')) (Action.fire a s))
    t.actions

let step t s = List.map snd (firings t s)

let step_fn ?(priority_of : (Action.t -> bool) option) t =
  match priority_of with
  | None -> step t
  | Some is_wrapper ->
      (* Wrapper actions preempt base actions wherever one can fire. *)
      fun s ->
        let fs = firings t s in
        let wrapper_moves =
          List.filter_map
            (fun (a, s') -> if is_wrapper a then Some s' else None)
            fs
        in
        if wrapper_moves <> [] then wrapper_moves else List.map snd fs

let to_system ?priority_of t =
  Cr_semantics.System.make ~name:t.name
    ~states:(Layout.enumerate t.layout)
    ~step:(step_fn ?priority_of t) ~is_initial:t.initial
    ~pp:(Layout.pp_state t.layout)
    ()

(* Box with wrapper priority, compiled directly to a system: wrapper
   actions preempt the base program's actions. *)
let box_priority ?name base wrapper =
  if not (same_layout base wrapper) then
    invalid_arg "Program.box_priority: incompatible layouts";
  let name =
    match name with Some n -> n | None -> base.name ^ "[]!" ^ wrapper.name
  in
  let combined = { base with name; actions = base.actions @ wrapper.actions } in
  (* classify by physical identity: the combined program shares the very
     action values of its operands, and labels may collide between base
     and wrapper *)
  let is_wrapper a = List.memq a wrapper.actions in
  (combined, is_wrapper)

(* Synchronous (distributed-daemon) semantics: in each step, every process
   with an enabled action fires simultaneously; guards read the old state
   and the declared [writes] of each chosen action are merged (first
   enabled action per process).  The resulting system is deterministic.
   Only meaningful for programs whose actions write their own process's
   variables (the paper's concrete systems). *)
let synchronous_step t s =
  let seen = Hashtbl.create 8 in
  let chosen =
    List.filter
      (fun (a, _) ->
        let pr = Action.proc a in
        if Hashtbl.mem seen pr then false
        else begin
          Hashtbl.add seen pr ();
          true
        end)
      (firings t s)
  in
  match chosen with
  | [] -> None
  | _ ->
      let s' = Array.copy s in
      List.iter
        (fun (a, target) ->
          List.iter (fun slot -> s'.(slot) <- target.(slot)) (Action.writes a))
        chosen;
      if s' = s then None else Some s'

let to_system_synchronous t =
  Cr_semantics.System.make
    ~name:(t.name ^ "[sync]")
    ~states:(Layout.enumerate t.layout)
    ~step:(fun s ->
      match synchronous_step t s with None -> [] | Some s' -> [ s' ])
    ~is_initial:t.initial
    ~pp:(Layout.pp_state t.layout)
    ()

(* ------------------------------------------------------------------ *)
(* Explicit compilation: allocation-lean, domain-chunked, memoized.    *)
(* ------------------------------------------------------------------ *)

(* Execution modes a program compiles under.  [Priority bits] carries,
   per action (in list order), whether it is a preempting wrapper
   action. *)
type mode = Plain | Priority of bool array | Sync

let mode_name ~mode t =
  match mode with Sync -> t.name ^ "[sync]" | Plain | Priority _ -> t.name

let escape_error ~name ~layout s' =
  Cr_semantics.Explicit.Unknown_state
    (Fmt.str "%s: step produced a state outside Sigma: %a" name
       (Layout.pp_state layout) s')

(* Rank a successor, raising exactly like the generic compiler would on
   a step that escapes Sigma. *)
let rank_checked ~name layout s' =
  let j = Layout.checked_rank layout s' in
  if j >= 0 then j else raise (escape_error ~name ~layout s')

(* Sort the first [k] slots of [buf] in place (insertion sort — rows are
   at most num-actions long) and return them deduplicated as a fresh
   row. *)
let sorted_row_of_prefix buf k =
  if k = 0 then [||]
  else begin
    for i = 1 to k - 1 do
      let x = buf.(i) in
      let j = ref (i - 1) in
      while !j >= 0 && buf.(!j) > x do
        buf.(!j + 1) <- buf.(!j);
        decr j
      done;
      buf.(!j + 1) <- x
    done;
    let m = ref 1 in
    for i = 1 to k - 1 do
      if buf.(i) <> buf.(i - 1) then incr m
    done;
    let out = Array.make !m buf.(0) in
    let w = ref 1 in
    for i = 1 to k - 1 do
      if buf.(i) <> buf.(i - 1) then begin
        out.(!w) <- buf.(i);
        incr w
      end
    done;
    out
  end

(* Interleaving rows: iterate the actions directly — guard test, effect,
   immediate rank — with no (action, successor) pair lists.  [rank] is
   injective on valid states, so "successor rank = own rank" is exactly
   the no-op test of [Action.fire]. *)
let plain_rows ~name layout (actions : Action.t array) state_of () =
  let buf = Array.make (max 1 (Array.length actions)) 0 in
  fun i ->
    let s = state_of i in
    let k = ref 0 in
    Array.iter
      (fun (a : Action.t) ->
        if a.Action.guard s then begin
          let j = rank_checked ~name layout (a.Action.effect s) in
          if j <> i then begin
            buf.(!k) <- j;
            incr k
          end
        end)
      actions;
    sorted_row_of_prefix buf !k

(* Priority rows: wrapper firings preempt base firings.  A wrapper
   action whose effect is a no-op does not count as a wrapper move
   (matching [firings], which drops no-ops before the preemption
   test). *)
let priority_rows ~name layout (actions : Action.t array)
    (is_wrapper : bool array) state_of () =
  let n = max 1 (Array.length actions) in
  let wbuf = Array.make n 0 in
  let bbuf = Array.make n 0 in
  fun i ->
    let s = state_of i in
    let wk = ref 0 and bk = ref 0 in
    Array.iteri
      (fun ai (a : Action.t) ->
        if a.Action.guard s then begin
          let j = rank_checked ~name layout (a.Action.effect s) in
          if j <> i then
            if is_wrapper.(ai) then begin
              wbuf.(!wk) <- j;
              incr wk
            end
            else begin
              bbuf.(!bk) <- j;
              incr bk
            end
        end)
      actions;
    if !wk > 0 then sorted_row_of_prefix wbuf !wk
    else sorted_row_of_prefix bbuf !bk

(* Synchronous rows are 0- or 1-element: the daemon is deterministic. *)
let sync_rows ~name layout t state_of () i =
  match synchronous_step t (state_of i) with
  | None -> [||]
  | Some s' ->
      let j = rank_checked ~name layout s' in
      if j = i then [||] else [| j |]

(* A per-chunk row-builder factory for the mode, over any index-to-state
   view (an enumeration array during compiles, bare [unrank] during
   fingerprint probes). *)
let row_builder ~mode t state_of =
  let layout = t.layout in
  let name = mode_name ~mode t in
  match mode with
  | Plain -> plain_rows ~name layout (Array.of_list t.actions) state_of
  | Priority bits ->
      priority_rows ~name layout (Array.of_list t.actions) bits state_of
  | Sync -> sync_rows ~name layout t state_of

(* Telemetry satellite of the two-engine compile path: which engine
   built the graph and how much of the product space it materialized.
   Emitted by both engines, between the cache's compile.start/finish
   pair on a miss. *)
let emit_space ~name ~engine ~states ~full =
  Cr_obs.Journal.emit "compile.space"
    [
      ("name", Cr_obs.Journal.S name);
      ("engine", Cr_obs.Journal.S (Space.engine_name engine));
      ("states", Cr_obs.Journal.I states);
      ("full", Cr_obs.Journal.I full);
      ( "ratio",
        Cr_obs.Journal.F
          (if full = 0 then 1.0 else float_of_int states /. float_of_int full)
      );
    ]

let compile_fresh ~mode t =
  let layout = t.layout in
  let name = mode_name ~mode t in
  let n = Layout.num_states layout in
  let states = Array.init n (Layout.unrank layout) in
  let space =
    Space.dense ~size:n
      ~state_of_index:(fun i -> states.(i))
      ~index_of_state:(fun s ->
        if Layout.valid layout s then Some (Layout.rank layout s) else None)
      ()
  in
  let rows = row_builder ~mode t (fun i -> states.(i)) in
  let e =
    Cr_semantics.Explicit.of_space ~name ~space ~rows ~is_initial:t.initial
      ~pp_state:(Layout.pp_state layout)
  in
  emit_space ~name ~engine:Space.Dense ~states:n ~full:n;
  e

(* Per-chunk successor-key iterator for the sparse engine: the same
   guard / effect / checked-rank loop as the row builders, but emitting
   dense ranks through a callback instead of buffering sorted rows —
   the discovery BFS assigns its own (sparse) indices and sorts.  The
   self-loop test is dense-rank equality, exactly as in the dense
   rows. *)
let step_keys ~mode t () =
  let layout = t.layout in
  let name = mode_name ~mode t in
  match mode with
  | Plain ->
      let actions = Array.of_list t.actions in
      fun s i emit ->
        Array.iter
          (fun (a : Action.t) ->
            if a.Action.guard s then begin
              let j = rank_checked ~name layout (a.Action.effect s) in
              if j <> i then emit j
            end)
          actions
  | Priority bits ->
      let actions = Array.of_list t.actions in
      let bbuf = Array.make (max 1 (Array.length actions)) 0 in
      fun s i emit ->
        let wk = ref 0 and bk = ref 0 in
        Array.iteri
          (fun ai (a : Action.t) ->
            if a.Action.guard s then begin
              let j = rank_checked ~name layout (a.Action.effect s) in
              if j <> i then
                if bits.(ai) then begin
                  emit j;
                  incr wk
                end
                else begin
                  bbuf.(!bk) <- j;
                  incr bk
                end
            end)
          actions;
        if !wk = 0 then
          for k = 0 to !bk - 1 do
            emit bbuf.(k)
          done
  | Sync -> (
      fun s i emit ->
        match synchronous_step t s with
        | None -> ()
        | Some s' ->
            let j = rank_checked ~name layout s' in
            if j <> i then emit j)

(* Sorted dense ranks of the program's initial states: the BFS roots of
   the sparse engine, and part of its cache key (a sparse graph depends
   on where discovery starts; dense graphs are initial-independent and
   get re-targeted on every hit instead).  Programs built by
   [with_initial_closure] enumerate their initial set directly; anything
   else pays one allocation-free predicate scan over Sigma. *)
let seed_ranks t =
  let layout = t.layout in
  match t.init_enum with
  | Some enum ->
      let ranks =
        List.rev_map
          (fun s ->
            let r = Layout.checked_rank layout s in
            if r < 0 then
              invalid_arg
                (Printf.sprintf "%s: initial state outside Sigma" t.name)
            else r)
          (enum ())
      in
      Array.of_list (List.sort_uniq compare ranks)
  | None ->
      let acc = ref [] and count = ref 0 in
      Layout.iter_states layout (fun r s ->
          if t.initial s then begin
            acc := r :: !acc;
            incr count
          end);
      let a = Array.make (max 1 !count) 0 in
      List.iteri (fun i r -> a.(!count - 1 - i) <- r) !acc;
      Array.sub a 0 !count

let compile_sparse ~mode t ~seed_ranks:seeds =
  let layout = t.layout in
  let name = mode_name ~mode t in
  let full = Layout.num_states layout in
  let sparse =
    Space.discover ~full_size:full ~state_of_key:(Layout.unrank layout)
      ~key_of_state:(Layout.checked_rank layout)
      ~step:(step_keys ~mode t) ~seed_keys:seeds ()
  in
  let rows = sparse.Space.rows in
  let e =
    Cr_semantics.Explicit.of_space ~name ~space:sparse.Space.space
      ~rows:(fun () -> Array.get rows)
      ~is_initial:t.initial
      ~pp_state:(Layout.pp_state layout)
  in
  emit_space ~name ~engine:Space.Sparse
    ~states:(Cr_semantics.Explicit.num_states e)
    ~full;
  e

(* How many states the semantic fingerprint probe samples.  Systems at
   most this big are keyed by their complete transition semantics
   (collision-free); larger ones by an evenly spread sample plus the
   structural part below. *)
let probe_budget = 256

(* Two independent FNV-1a-style folds over native ints: 126 bits of
   accumulated probe state, no allocation per step.  Native-int
   multiplication wraps silently, which is exactly what a rolling hash
   wants. *)
let fnv1 = 0x100000001b3
let fnv2 = 0x27d4eb2f165667c5

(* Semantic probe: fold the complete firing observations — per sampled
   state, per action in order, the successor's rank (or a disabled
   marker) — of up to [probe_budget] evenly spread states (every state
   when the space is that small).  The raw firing sequence determines
   the compiled graph for the plain AND priority modes (the wrapper bits
   live in the structural header), so one probe serves both; the
   synchronous mode folds its deterministic step instead.  Escaping
   steps raise [Unknown_state] exactly like the compile, so a hit and a
   miss fail identically on ill-formed programs. *)
let probe ~mode t =
  let layout = t.layout in
  let n = Layout.num_states layout in
  let budget = min n probe_budget in
  let name = mode_name ~mode t in
  let h1 = ref 0x3bf29ce484222325 and h2 = ref 0x1e3779b97f4a7c15 in
  let fold x =
    h1 := (!h1 lxor x) * fnv1;
    h2 := (!h2 lxor x) * fnv2
  in
  (match mode with
  | Sync ->
      for k = 0 to budget - 1 do
        let i = k * n / budget in
        fold i;
        match synchronous_step t (Layout.unrank layout i) with
        | None -> fold (-2)
        | Some s' -> fold (rank_checked ~name layout s')
      done
  | Plain | Priority _ ->
      let actions = Array.of_list t.actions in
      for k = 0 to budget - 1 do
        let i = k * n / budget in
        let s = Layout.unrank layout i in
        fold i;
        Array.iter
          (fun (a : Action.t) ->
            if a.Action.guard s then
              fold (rank_checked ~name layout (a.Action.effect s))
            else fold (-1))
          actions
      done);
  (!h1, !h2)

(* Content-addressed cache key: execution mode, layout (variable names
   and domain sizes), per-action metadata (label, owning process,
   declared writes, wrapper bit) — plus the semantic {!probe}, which is
   what separates programs whose actions carry identical labels but
   different guards or effects.  The initial-state predicate is
   deliberately NOT part of the key: a cached graph is re-targeted via
   [Explicit.with_initials] on every hit.  (The probe is a 126-bit
   rolling hash, not the exact rows; CR_COMPILE_PARANOID=1 turns every
   hit into a checked recompile for the paranoid.) *)
let fingerprint ~mode t =
  let layout = t.layout in
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (match mode with
    | Plain -> "plain"
    | Priority _ -> "priority"
    | Sync -> "sync");
  for i = 0 to Layout.num_vars layout - 1 do
    Buffer.add_char buf '|';
    Buffer.add_string buf (Layout.var_name layout i);
    Buffer.add_char buf ':';
    Buffer.add_string buf (string_of_int (Layout.dom layout i))
  done;
  List.iteri
    (fun i a ->
      Buffer.add_string buf
        (Printf.sprintf "|%s;%d;%s%s" (Action.label a) (Action.proc a)
           (String.concat "," (List.map string_of_int (Action.writes a)))
           (match mode with
           | Priority bits when bits.(i) -> ";W"
           | _ -> "")))
    t.actions;
  let p1, p2 = probe ~mode t in
  Buffer.add_string buf (Printf.sprintf "|%x.%x" p1 p2);
  Digest.to_hex (Digest.string (Buffer.contents buf))

let compile_fingerprint ?priority_of t =
  let mode =
    match priority_of with
    | None -> Plain
    | Some is_wrapper ->
        Priority (Array.of_list (List.map is_wrapper t.actions))
  in
  fingerprint ~mode t

let compile_cache : Layout.state Cr_semantics.Compile_cache.t =
  Cr_semantics.Compile_cache.create ()

let clear_compile_cache () = Cr_semantics.Compile_cache.clear compile_cache

(* Cache keys carry the engine: a dense and a sparse compile of the
   same program must never alias (their graphs are different objects).
   The sparse key additionally folds the seed-rank set — a sparse graph
   depends on where its BFS starts, so programs that share a structural
   fingerprint but differ in initial states get distinct sparse entries,
   while dense entries keep being shared and re-targeted via [reinit]. *)
let sparse_key ~mode t seeds =
  let h1 = ref 0x3bf29ce484222325 and h2 = ref 0x1e3779b97f4a7c15 in
  Array.iter
    (fun r ->
      h1 := (!h1 lxor r) * fnv1;
      h2 := (!h2 lxor r) * fnv2)
    seeds;
  Printf.sprintf "%s|space:sparse:%d:%x.%x" (fingerprint ~mode t)
    (Array.length seeds) !h1 !h2

let compile ~mode ~space t =
  let reinit e =
    Cr_semantics.Explicit.with_initials
      (Cr_semantics.Explicit.rename (mode_name ~mode t) e)
      t.initial
  in
  match (space : Space.engine) with
  | Space.Dense ->
      let compile = fun () -> compile_fresh ~mode t in
      if not (Cr_semantics.Compile_cache.enabled ()) then compile ()
      else
        Cr_semantics.Compile_cache.find_or_compile compile_cache
          ~key:(fingerprint ~mode t ^ "|space:dense")
          ~reinit ~compile
  | Space.Sparse ->
      let seeds = seed_ranks t in
      let compile = fun () -> compile_sparse ~mode t ~seed_ranks:seeds in
      if not (Cr_semantics.Compile_cache.enabled ()) then compile ()
      else
        Cr_semantics.Compile_cache.find_or_compile compile_cache
          ~key:(sparse_key ~mode t seeds) ~reinit ~compile

let to_explicit ?priority_of ?(space = Space.Dense) t =
  let mode =
    match priority_of with
    | None -> Plain
    | Some is_wrapper ->
        Priority (Array.of_list (List.map is_wrapper t.actions))
  in
  compile ~mode ~space t

let to_explicit_synchronous ?(space = Space.Dense) t = compile ~mode:Sync ~space t

(* Reachability closure at the program level, used to define the initial
   states of concrete systems as the orbit of canonical legitimate
   configurations (the paper's "initial states follow from those of BTR
   using the mapping"). *)
let reachable_from t seeds =
  let seen : (state, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let push s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      Queue.push s queue
    end
  in
  List.iter push seeds;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter push (step t s)
  done;
  seen

let with_initial_closure ~seeds t =
  let closure = lazy (reachable_from t seeds) in
  {
    t with
    initial = (fun s -> Hashtbl.mem (Lazy.force closure) s);
    init_enum =
      Some
        (fun () ->
          Hashtbl.fold (fun s () acc -> s :: acc) (Lazy.force closure) []);
  }

let pp fmt t =
  Fmt.pf fmt "@[<v>program %s:@,%a@]" t.name
    (Fmt.list ~sep:Fmt.cut (fun fmt a -> Fmt.pf fmt "  %s" (Action.label a)))
    t.actions
