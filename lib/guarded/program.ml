(* A guarded-command program over a layout: the uniform substrate for
   every system in the paper (rings, wrappers and their compositions). *)

type state = Layout.state

type t = {
  name : string;
  layout : Layout.t;
  actions : Action.t list;
  initial : state -> bool;
}

let make ~name ~layout ~actions ~initial = { name; layout; actions; initial }

let name t = t.name
let layout t = t.layout
let actions t = t.actions
let initial t = t.initial
let rename n t = { t with name = n }
let with_initial initial t = { t with initial }
let with_actions actions t = { t with actions }

(* Distinct owning processes (>= 0) of the program's actions, sorted.
   Global wrapper actions (proc -1) are not listed. *)
let procs t =
  List.filter_map
    (fun a ->
      let p = Action.proc a in
      if p >= 0 then Some p else None)
    t.actions
  |> List.sort_uniq compare

let same_layout t1 t2 =
  (* Layouts are compared structurally via their printed variables. *)
  Layout.num_vars t1.layout = Layout.num_vars t2.layout
  && List.for_all
       (fun i ->
         Layout.dom t1.layout i = Layout.dom t2.layout i
         && String.equal (Layout.var_name t1.layout i) (Layout.var_name t2.layout i))
       (List.init (Layout.num_vars t1.layout) (fun i -> i))

(* The paper's box operator []: union of the actions.  Initial states are
   those of the left (base) operand. *)
let box ?name t1 t2 =
  if not (same_layout t1 t2) then
    invalid_arg "Program.box: incompatible layouts";
  let name = match name with Some n -> n | None -> t1.name ^ "[]" ^ t2.name in
  { t1 with name; actions = t1.actions @ t2.actions }

let box_list ?name base wrappers =
  let t = List.fold_left (fun acc w -> box acc w) base wrappers in
  match name with Some n -> { t with name = n } | None -> t

let enabled_actions t s = List.filter (fun a -> Action.enabled a s) t.actions

(* Transitions enabled at [s]: (action, successor) pairs, no-ops dropped. *)
let firings t s =
  List.filter_map
    (fun a -> Option.map (fun s' -> (a, s')) (Action.fire a s))
    t.actions

let step t s = List.map snd (firings t s)

let step_fn ?(priority_of : (Action.t -> bool) option) t =
  match priority_of with
  | None -> step t
  | Some is_wrapper ->
      (* Wrapper actions preempt base actions wherever one can fire. *)
      fun s ->
        let fs = firings t s in
        let wrapper_moves =
          List.filter_map
            (fun (a, s') -> if is_wrapper a then Some s' else None)
            fs
        in
        if wrapper_moves <> [] then wrapper_moves else List.map snd fs

let to_system ?priority_of t =
  Cr_semantics.System.make ~name:t.name
    ~states:(Layout.enumerate t.layout)
    ~step:(step_fn ?priority_of t) ~is_initial:t.initial
    ~pp:(Layout.pp_state t.layout)
    ()

(* Compile straight to the explicit graph through the layout's mixed-radix
   rank/unrank — O(num_vars) arithmetic indexing per state, no hashtable. *)
let explicit_of_step ~name ~layout ~step ~initial =
  Cr_semantics.Explicit.of_indexed ~name
    ~num_states:(Layout.num_states layout)
    ~state:(Layout.unrank layout)
    ~index:(fun s -> if Layout.valid layout s then Some (Layout.rank layout s) else None)
    ~step ~is_initial:initial
    ~pp_state:(Layout.pp_state layout)

let to_explicit ?priority_of t =
  explicit_of_step ~name:t.name ~layout:t.layout
    ~step:(step_fn ?priority_of t) ~initial:t.initial

(* Box with wrapper priority, compiled directly to a system: wrapper
   actions preempt the base program's actions. *)
let box_priority ?name base wrapper =
  if not (same_layout base wrapper) then
    invalid_arg "Program.box_priority: incompatible layouts";
  let name =
    match name with Some n -> n | None -> base.name ^ "[]!" ^ wrapper.name
  in
  let combined = { base with name; actions = base.actions @ wrapper.actions } in
  (* classify by physical identity: the combined program shares the very
     action values of its operands, and labels may collide between base
     and wrapper *)
  let is_wrapper a = List.memq a wrapper.actions in
  (combined, is_wrapper)

(* Synchronous (distributed-daemon) semantics: in each step, every process
   with an enabled action fires simultaneously; guards read the old state
   and the declared [writes] of each chosen action are merged (first
   enabled action per process).  The resulting system is deterministic.
   Only meaningful for programs whose actions write their own process's
   variables (the paper's concrete systems). *)
let synchronous_step t s =
  let seen = Hashtbl.create 8 in
  let chosen =
    List.filter
      (fun (a, _) ->
        let pr = Action.proc a in
        if Hashtbl.mem seen pr then false
        else begin
          Hashtbl.add seen pr ();
          true
        end)
      (firings t s)
  in
  match chosen with
  | [] -> None
  | _ ->
      let s' = Array.copy s in
      List.iter
        (fun (a, target) ->
          List.iter (fun slot -> s'.(slot) <- target.(slot)) (Action.writes a))
        chosen;
      if s' = s then None else Some s'

let to_system_synchronous t =
  Cr_semantics.System.make
    ~name:(t.name ^ "[sync]")
    ~states:(Layout.enumerate t.layout)
    ~step:(fun s ->
      match synchronous_step t s with None -> [] | Some s' -> [ s' ])
    ~is_initial:t.initial
    ~pp:(Layout.pp_state t.layout)
    ()

let to_explicit_synchronous t =
  explicit_of_step ~name:(t.name ^ "[sync]") ~layout:t.layout
    ~step:(fun s ->
      match synchronous_step t s with None -> [] | Some s' -> [ s' ])
    ~initial:t.initial

(* Reachability closure at the program level, used to define the initial
   states of concrete systems as the orbit of canonical legitimate
   configurations (the paper's "initial states follow from those of BTR
   using the mapping"). *)
let reachable_from t seeds =
  let seen : (state, unit) Hashtbl.t = Hashtbl.create 1024 in
  let queue = Queue.create () in
  let push s =
    if not (Hashtbl.mem seen s) then begin
      Hashtbl.replace seen s ();
      Queue.push s queue
    end
  in
  List.iter push seeds;
  while not (Queue.is_empty queue) do
    let s = Queue.pop queue in
    List.iter push (step t s)
  done;
  seen

let with_initial_closure ~seeds t =
  let closure = lazy (reachable_from t seeds) in
  { t with initial = (fun s -> Hashtbl.mem (Lazy.force closure) s) }

let pp fmt t =
  Fmt.pf fmt "@[<v>program %s:@,%a@]" t.name
    (Fmt.list ~sep:Fmt.cut (fun fmt a -> Fmt.pf fmt "  %s" (Action.label a)))
    t.actions
