(* A guarded command: guard -> assignment, with metadata identifying the
   owning process and the written slots (used by the synchronous daemon
   and by pretty-printers). *)

type state = Layout.state

type t = {
  label : string;
  proc : int;  (* owning process; -1 for global wrappers *)
  writes : int list;  (* slots this action may write *)
  guard : state -> bool;
  effect : state -> state;  (* must be pure: returns a fresh array *)
}

let make ~label ?(proc = -1) ?(writes = []) ~guard ~effect () =
  { label; proc; writes; guard; effect }

let label t = t.label
let proc t = t.proc
let writes t = t.writes

let enabled t s = t.guard s

(* Fire the action; [None] when disabled or when the effect is a no-op
   (no-op steps are stuttering, cf. DESIGN.md section 2). *)
let fire t s =
  if not (t.guard s) then None
  else
    let s' = t.effect s in
    if s' = s then None else Some s'

(* Copy-on-write assignment helper for effects. *)
let set (s : state) (updates : (int * int) list) : state =
  let s' = Array.copy s in
  List.iter (fun (i, v) -> s'.(i) <- v) updates;
  s'
