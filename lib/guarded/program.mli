(** Guarded-command programs: the substrate for every system in the paper.

    A program is a set of guarded actions over a {!Layout}; its semantics
    is the finite automaton whose transitions are all state-changing
    firings of enabled actions (interleaving / serial daemon). *)

type state = Layout.state

type t

val make :
  name:string ->
  layout:Layout.t ->
  actions:Action.t list ->
  initial:(state -> bool) ->
  t

val name : t -> string
val layout : t -> Layout.t
val actions : t -> Action.t list
val initial : t -> state -> bool
val rename : string -> t -> t
val with_initial : (state -> bool) -> t -> t

val with_actions : Action.t list -> t -> t
(** Replace the action list (e.g. to test daemon order-sensitivity by
    reordering). *)

val procs : t -> int list
(** The distinct owning processes (>= 0) of the actions, sorted; global
    wrapper actions (proc -1) are not listed. *)

val same_layout : t -> t -> bool

val box : ?name:string -> t -> t -> t
(** The paper's [] operator: union of the action sets over a common
    layout; initial states come from the left operand. *)

val box_list : ?name:string -> t -> t list -> t
(** [box_list base [w1; w2; ...]] = [base [] w1 [] w2 [] ...]. *)

val box_priority : ?name:string -> t -> t -> t * (Action.t -> bool)
(** Composition where the wrapper's actions preempt the base program.
    Returns the combined program and the wrapper predicate; pass the
    latter to {!to_system}/{!to_explicit} as [priority_of]. *)

val enabled_actions : t -> state -> Action.t list

val firings : t -> state -> (Action.t * state) list
(** All (action, successor) pairs at a state; no-op firings dropped. *)

val step : t -> state -> state list

val to_system :
  ?priority_of:(Action.t -> bool) -> t -> state Cr_semantics.System.t

val to_explicit :
  ?priority_of:(Action.t -> bool) ->
  ?space:Cr_semantics.Space.engine ->
  t ->
  state Cr_semantics.Explicit.t
(** Compile to the explicit graph through a {!Cr_semantics.Space}
    engine.  The default [Dense] engine enumerates the full product
    space through the layout's mixed-radix rank/unrank; [Sparse]
    materializes only the fragment reachable from the initial states
    (frontier BFS hash-consing dense ranks into a compact index) —
    sound for every init-anchored query because the fragment is closed
    under successors, and the scaling move for refine/graybox checks
    whose dense space will not fit.  Callers that honour the [CR_SPACE]
    override resolve it via {!Cr_semantics.Space.resolve}; this
    function itself never reads the environment.

    Either way the per-state loop iterates actions directly (guard,
    effect, rank) with no intermediate firing lists, and is
    domain-chunked under the [CR_JOBS] contract of {!Cr_kernel.Par} —
    identical output for every job count.

    Compiles are memoized in a process-wide
    {!Cr_semantics.Compile_cache} keyed by a content-addressed
    fingerprint (execution mode, layout, per-action metadata, and a
    semantic successor probe over up to 256 evenly spread states) plus
    an engine tag, so dense and sparse graphs can never alias; the
    sparse key also folds the seed-rank set, since a sparse graph
    depends on its BFS roots.  On a dense hit the cached graph is
    re-targeted to this program's name and initial predicate.
    [CR_COMPILE_CACHE=0] disables the cache. *)

val compile_fingerprint : ?priority_of:(Action.t -> bool) -> t -> string
(** The content-addressed cache key {!to_explicit} would use for this
    program (diagnostics and tests): a digest of the execution mode,
    layout, action metadata and the semantic successor probe. *)

val clear_compile_cache : unit -> unit
(** Empty the process-wide compile cache (tests and benchmarks that need
    cold-compile behaviour or counter isolation). *)

val synchronous_step : t -> state -> state option
(** One synchronous (distributed-daemon) step: every process with an
    enabled action fires simultaneously, guards reading the old state and
    the declared [writes] merged.  [None] at fixpoints. *)

val to_system_synchronous : t -> state Cr_semantics.System.t
(** The (deterministic) synchronous semantics as a system. *)

val to_explicit_synchronous :
  ?space:Cr_semantics.Space.engine -> t -> state Cr_semantics.Explicit.t
(** Explicit graph of the synchronous semantics; chunked, memoized and
    space-routed like {!to_explicit} (the cache key's mode tag keeps the
    two semantics of one program distinct). *)

val reachable_from : t -> state list -> (state, unit) Hashtbl.t
(** All states reachable from the seeds under the program's transitions. *)

val with_initial_closure : seeds:state list -> t -> t
(** Replace the initial states by the (lazily computed) reachability
    closure of [seeds] — the orbit of canonical legitimate
    configurations.  The closure doubles as the program's initial-state
    enumerator, so the sparse engine of {!to_explicit} seeds its BFS
    from it directly instead of scanning Sigma for the predicate. *)

val pp : Format.formatter -> t -> unit
