(** Guarded commands: [guard -> assignment]. *)

type state = Layout.state

type t = {
  label : string;
  proc : int;  (** owning process, [-1] for global wrappers *)
  writes : int list;  (** slots the effect may write *)
  guard : state -> bool;
  effect : state -> state;
}

val make :
  label:string ->
  ?proc:int ->
  ?writes:int list ->
  guard:(state -> bool) ->
  effect:(state -> state) ->
  unit ->
  t

val label : t -> string
val proc : t -> int
val writes : t -> int list

val enabled : t -> state -> bool

val fire : t -> state -> state option
(** [None] when the guard is false or the effect is a no-op (no-op steps
    are stuttering and generate no transition). *)

val set : state -> (int * int) list -> state
(** Copy-on-write multi-assignment, for building effects. *)
