(** Variable layouts for guarded-command programs.

    A layout fixes the (ordered) set of named variables and their finite
    domains [0..dom-1]; a program state is an [int array] indexed by
    variable slot.  A domain of size 1 encodes a variable fixed at 0 —
    used for the undefined/pinned tokens of the paper's ring systems. *)

type t

type state = int array

val make : (string * int) list -> t
(** [make [(name, dom); ...]].  Raises [Invalid_argument] on duplicate
    names or empty domains. *)

val num_vars : t -> int
val dom : t -> int -> int
val var_name : t -> int -> string

val slot : t -> string -> int
(** Slot index of a variable name.  Raises [Invalid_argument] if absent. *)

val num_states : t -> int
(** Product of the domain sizes. *)

val rank : t -> state -> int
(** Mixed-radix index of a valid state, in [0 .. num_states - 1]; slot 0
    is the least significant digit, matching the {!enumerate} order.
    O(num_vars) integer arithmetic; unchecked (see {!valid}). *)

val unrank : t -> int -> state
(** Inverse of {!rank}: the state at a given index. *)

val checked_rank : t -> state -> int
(** {!valid} and {!rank} fused into one allocation-free pass: the rank
    of a valid state, [-1] otherwise.  The hot path of the explicit
    compiler. *)

val weight : t -> int -> int
(** Mixed-radix digit weight of a slot: the rank stride between two
    states differing by exactly one in that slot.  Supports slot-line
    iteration in analyses (e.g. read-set inference by finite
    differencing). *)

val enumerate : t -> state list
(** All states, in mixed-radix order (slot 0 fastest). *)

val iter_states : t -> (int -> state -> unit) -> unit
(** [iter_states t f] calls [f rank state] for every state in
    {!enumerate} order, advancing one shared scratch array in place —
    no per-state allocation, for full-space analysis passes.  [f] must
    not retain the state (copy it if needed). *)

val valid : t -> state -> bool

val pp_state : t -> Format.formatter -> state -> unit
(** Prints [{x=0 y=1 ...}], hiding fixed (domain-1) variables. *)
