(** Deterministic fan-out for independent work items, served by a
    persistent domain pool.

    Work items are claimed from an atomic index counter and each result
    lands in its own preallocated slot, so the merged output equals the
    sequential map regardless of the job count or scheduling.  The job
    count defaults to the [CR_JOBS] environment variable (default 1 —
    fully sequential, no domain involved; 0 means
    [Domain.recommended_domain_count ()]).  Nested calls from inside a
    parallel region run sequentially: the outer fan-out already
    occupies the cores.

    The first parallel call spawns [jobs - 1] worker domains and parks
    them on a condition variable; later calls are a broadcast handoff
    (the pool grows if a call wants more workers, never shrinks).  An
    [at_exit] hook joins every worker, so the process exits with no
    lingering domains.  Maps over fewer than [CR_PAR_MIN_ITEMS] items
    (default 4) skip the handoff and run on the calling domain.

    A fan-out never occupies more busy domains than
    [Domain.recommended_domain_count ()]: on OCaml 5 every minor
    collection synchronizes all running domains, so busy domains beyond
    the core count only add stop-the-world latency.  Chunk geometry and
    algorithm selection still follow the requested job count, so output
    is identical (the merge is slot-based); requests above the cap
    count in [par.task.capped].  [CR_PAR_CAP] overrides the cap (tests
    and CI use it to exercise the pool on small hosts).

    Hosted in [Cr_kernel], below both [Cr_semantics] (whose
    explicit-state compiler chunks state spaces across domains) and
    [Cr_checker] (whose sweep kernels fan out the same way). *)

val jobs_env : unit -> int
(** Parsed value of [CR_JOBS]; 1 when unset, the recommended domain
    count when set to 0.  A malformed or negative value also yields 1,
    with a one-line warning on stderr (printed once per process). *)

val current_jobs : unit -> int
(** The job count a parameterless {!map} would use right now: 1 inside a
    parallel region, else the {!with_jobs} override, else {!jobs_env}. *)

val with_jobs : int -> (unit -> 'a) -> 'a
(** [with_jobs k f] runs [f] with the job count forced to [k] in this
    domain (benchmarks and tests; no environment mutation).  The
    previous override is restored even if [f] raises. *)

val min_items : unit -> int
(** Small-work cutoff: maps over fewer items than this run sequentially
    on the calling domain.  Parsed from [CR_PAR_MIN_ITEMS] (default 4);
    a malformed or negative value keeps the default, with a
    once-per-process stderr warning. *)

val map : ?jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** [map f xs = List.map f xs], computed on [jobs] domains.  [f] must not
    rely on shared mutable state.  If [f] raises on any item, the first
    exception (in claim order) is re-raised on the caller after the
    sweep drains. *)

val map_array : ?jobs:int -> ('a -> 'b) -> 'a array -> 'b array
(** Array analogue of {!map}. *)

val pool_size : unit -> int
(** Number of worker domains currently parked in the pool (0 before the
    first parallel call and after {!shutdown_pool}). *)

val shutdown_pool : unit -> unit
(** Join every pool worker and empty the pool.  Idempotent; the next
    parallel call respawns workers.  Runs automatically [at_exit]. *)
