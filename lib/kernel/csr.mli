(** Compressed sparse row adjacency: flat [targets] + [row_ptr] arrays.

    Row [i] occupies offsets [row_ptr.(i), row_ptr.(i+1)) of [targets];
    rows are sorted ascending and deduplicated (the {!Explicit}
    construction invariant).  This is the shared graph type of every
    checker kernel; {!Explicit} stores its transition relation in this
    form and hands it out as a zero-copy view.

    Lives in [Cr_kernel], shared by the semantics compiler and every
    checker kernel. *)

type t

val num_states : t -> int
val num_edges : t -> int

val degree : t -> int -> int
(** Out-degree of a state: O(1). *)

val row : t -> int -> int array
(** Copy of one successor row (allocates; prefer {!iter_row}/{!kth} in
    hot loops). *)

val kth : t -> int -> int -> int
(** [kth t i k] is the [k]-th successor of [i] (0-based, no bounds
    check beyond the array's own). *)

val iter_row : t -> int -> (int -> unit) -> unit
val iter_edges : t -> (int -> int -> unit) -> unit

val mem : t -> int -> int -> bool
(** Edge membership by binary search in the sorted row: O(log degree). *)

val of_rows : int array array -> t
(** Flatten per-state rows (each sorted, deduplicated). *)

val unsafe_of_raw : row_ptr:int array -> targets:int array -> t
(** Adopt raw arrays without copying or checking.  The caller owns the
    full invariant: [row_ptr] has length n+1 and is nondecreasing from 0
    to [Array.length targets], and every row is sorted ascending and
    deduplicated.  For internal flat-merge constructions only. *)

val to_rows : t -> int array array
(** Inverse of {!of_rows} (copies every row). *)

val transpose : t -> t
(** Predecessor graph; rows stay sorted. *)

val restrict : t -> Bitset.t -> t
(** Subgraph induced by the masked states (rows of unmasked states are
    empty, surviving rows keep only masked targets). *)

val equal : t -> t -> bool

val row_ptr : t -> int array
(** The raw offset array (length [num_states + 1]).  Read-only: exposed
    for allocation-free kernels; mutating it is undefined behaviour. *)

val targets : t -> int array
(** The raw flat edge array.  Read-only, as {!row_ptr}. *)
