(* Deterministic multicore fan-out for embarrassingly parallel sweeps,
   served by a persistent domain pool.

   Work items are claimed from an atomic index counter, so chunks of
   uneven cost balance dynamically across domains.  Results land in a
   preallocated array slot per item, so the merged output is independent
   of which domain computed which item — running with any number of jobs
   yields exactly the array [Array.map f a] would.

   The job count comes from the [CR_JOBS] environment variable and
   defaults to 1, in which case no domain is ever involved and the code
   path is the plain sequential map (output byte-identical to the
   pre-multicore checker).  Callers may force a count with [?jobs] or
   scope one with [with_jobs].

   The pool: the first parallel call spawns [jobs - 1] worker domains
   and parks them on a condition variable; every later call is a
   broadcast handoff (the pool grows if a later call wants more
   workers).  This replaces the original per-call [Domain.spawn] /
   [Domain.join], whose setup cost (~ms per domain on a loaded host)
   dwarfed the work of medium-sized sweeps and made [CR_JOBS=4] *slower*
   than sequential on every bench row.  Workers are joined by an
   [at_exit] hook (and by {!shutdown_pool}), so a process never exits
   with live domains.

   Tiny sweeps skip even the handoff: below [CR_PAR_MIN_ITEMS] items
   (default 4) the map runs sequentially on the calling domain.

   This module lives in [Cr_kernel], the base layer below both
   [Cr_semantics] (whose explicit-state compiler chunks its state space
   across domains) and [Cr_checker] (whose sweeps fan out the same
   way). *)

(* Telemetry: pool lifecycle and per-task traffic.  [par.pool.size] is a
   high-water mark; the rest are sums.  All are no-ops unless
   CR_STATS/CR_TRACE is on (see [Cr_obs.Obs]). *)
let c_pool_spawned = Cr_obs.Obs.counter "par.pool.spawned"
let c_pool_size = Cr_obs.Obs.counter ~kind:Cr_obs.Obs.Max "par.pool.size"
let c_task_runs = Cr_obs.Obs.counter "par.task.runs"
let c_task_items = Cr_obs.Obs.counter "par.task.items"
let c_task_sequential = Cr_obs.Obs.counter "par.task.sequential"
let c_task_capped = Cr_obs.Obs.counter "par.task.capped"

(* A malformed CR_JOBS used to fall through silently to 1; it still does,
   but now says so once (per process) on stderr. *)
let warned_bad_jobs = Atomic.make false

let jobs_env () =
  match Sys.getenv_opt "CR_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> Domain.recommended_domain_count ()
      | Some k when k >= 1 -> k
      | Some _ | None ->
          if not (Atomic.exchange warned_bad_jobs true) then
            Printf.eprintf
              "cr-par: ignoring invalid CR_JOBS=%s (want an integer >= 0); \
               running sequentially\n\
               %!"
              s;
          1)

(* Small-work cutoff: a parallel map over fewer items than this runs
   sequentially on the calling domain — the tiny Report-table sweeps at
   N <= 3 finish faster than a pool handoff costs.  Same parsing
   convention as CR_JOBS (malformed values keep the default). *)
let default_min_items = 4

let warned_bad_min_items = Atomic.make false

let min_items () =
  match Sys.getenv_opt "CR_PAR_MIN_ITEMS" with
  | None -> default_min_items
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 0 -> k
      | Some _ | None ->
          if not (Atomic.exchange warned_bad_min_items true) then
            Printf.eprintf
              "cr-par: ignoring invalid CR_PAR_MIN_ITEMS=%s (want an integer \
               >= 0)\n\
               %!"
              s;
          default_min_items)

(* Oversubscription guard: a fan-out never runs on more *busy* domains
   than the hardware has cores.  On OCaml 5 every minor collection is a
   stop-the-world sync across all running domains, so busy domains
   beyond the core count only add scheduling latency to each collection
   — measured on the single-core CI container, an allocation-heavy
   compile at CR_JOBS=4 ran 1.8x slower than sequential from GC syncs
   alone, and capping repairs it to parity.  Chunking and algorithm
   selection still follow the *requested* job count (the two-phase
   classify path, chunk geometry and the byte-identical contract do not
   depend on how many domains execute the chunks); only the executor
   count is capped.  Requests above the cap tick [par.task.capped].
   [CR_PAR_CAP] overrides the cap — tests and CI use it to exercise the
   real pool machinery on hosts with fewer cores than jobs. *)
let warned_bad_cap = Atomic.make false

let busy_cap () =
  match Sys.getenv_opt "CR_PAR_CAP" with
  | None -> Domain.recommended_domain_count ()
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some k when k >= 1 -> k
      | Some _ | None ->
          if not (Atomic.exchange warned_bad_cap true) then
            Printf.eprintf
              "cr-par: ignoring invalid CR_PAR_CAP=%s (want an integer >= \
               1)\n\
               %!"
              s;
          Domain.recommended_domain_count ())

(* Nested calls (a parallel table row that itself sweeps Monte-Carlo
   episodes) run sequentially: the outer fan-out already occupies the
   cores, and handing the inner items back to the pool would deadlock a
   worker on its own task queue.  Pool workers set the flag once at
   spawn — they only ever run inside a fan-out. *)
let inside : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

(* Per-domain job-count override, for benchmarks and tests that want a
   specific fan-out without mutating the process environment. *)
let override : int option Domain.DLS.key = Domain.DLS.new_key (fun () -> None)

let current_jobs () =
  if Domain.DLS.get inside then 1
  else
    match Domain.DLS.get override with
    | Some k -> max 1 k
    | None -> jobs_env ()

let with_jobs k f =
  let saved = Domain.DLS.get override in
  Domain.DLS.set override (Some k);
  Fun.protect ~finally:(fun () -> Domain.DLS.set override saved) f

(* ---------- the persistent pool ---------- *)

(* One task = one fan-out.  [run] computes item [i] into its
   uniquely-owned output slot and must not raise ([run_items] wraps the
   caller's function); [next] is the shared claim counter, [left] counts
   completed items down to zero.  Only workers with id < [workers]
   participate, so a wide warm pool still honours a narrow [?jobs]. *)
type task = {
  run : int -> unit;
  total : int;
  workers : int;
  next : int Atomic.t;
  left : int Atomic.t;
  mutable failed : exn option;  (* first failure; protected by [pool.m] *)
}

type pool = {
  m : Mutex.t;
  work : Condition.t;  (* workers park here between tasks *)
  idle : Condition.t;  (* the submitter waits here for [left] = 0 *)
  mutable task : task option;
  mutable gen : int;  (* bumped once per submitted task *)
  mutable domains : unit Domain.t list;
  mutable size : int;
  mutable stop : bool;
}

(* Claim-and-run loop shared by the submitter and the workers.  The
   completion count is decremented only after [run] returns, so when it
   reaches zero no domain is still executing an item.  A failing item
   records the first exception (re-raised by the submitter) and the
   sweep keeps going: every item must still be accounted for in [left],
   and the partially-filled output is discarded by the re-raise anyway. *)
let run_items pool t =
  let continue = ref true in
  while !continue do
    let i = Atomic.fetch_and_add t.next 1 in
    if i >= t.total then continue := false
    else begin
      (try t.run i
       with e ->
         Mutex.lock pool.m;
         if t.failed = None then t.failed <- Some e;
         Mutex.unlock pool.m);
      if Atomic.fetch_and_add t.left (-1) = 1 then begin
        (* last item: wake the submitter.  Locking the mutex before
           signalling pairs with the submitter's check-then-wait under
           the same mutex, so the wakeup cannot be missed. *)
        Mutex.lock pool.m;
        Condition.signal pool.idle;
        Mutex.unlock pool.m
      end
    end
  done

let worker pool id () =
  (* a worker only ever runs inside a fan-out: nested Par calls from the
     mapped function must run sequentially *)
  Domain.DLS.set inside true;
  let last_gen = ref 0 in
  let running = ref true in
  while !running do
    Mutex.lock pool.m;
    while (not pool.stop) && pool.gen = !last_gen do
      Condition.wait pool.work pool.m
    done;
    if pool.stop then begin
      running := false;
      Mutex.unlock pool.m
    end
    else begin
      last_gen := pool.gen;
      let t = pool.task in
      Mutex.unlock pool.m;
      match t with
      | Some t when id < t.workers -> run_items pool t
      | Some _ | None -> ()
    end
  done

(* The process-wide pool.  The record is eager (three mutexes and a few
   words — [Lazy] forcing is not domain-safe); the worker domains are
   what gets created lazily, on the first fan-out that needs them. *)
let the_pool =
  {
    m = Mutex.create ();
    work = Condition.create ();
    idle = Condition.create ();
    task = None;
    gen = 0;
    domains = [];
    size = 0;
    stop = false;
  }

(* Fan-outs from distinct (non-pool) domains serialize here: the pool
   holds one task at a time.  Pool workers never submit — [inside] makes
   their nested maps sequential — so this cannot self-deadlock. *)
let submit = Mutex.create ()

(* Join every pool worker.  Installed as an [at_exit] on first spawn —
   registered after [Cr_obs]'s own hooks, so it runs before the stats /
   trace / journal finalizers and they observe a quiescent process. *)
let shutdown_pool () =
  Mutex.protect submit (fun () ->
      let pool = the_pool in
      let doms =
        Mutex.protect pool.m (fun () ->
            let doms = pool.domains in
            pool.stop <- true;
            pool.domains <- [];
            pool.size <- 0;
            Condition.broadcast pool.work;
            doms)
      in
      List.iter Domain.join doms;
      Mutex.protect pool.m (fun () -> pool.stop <- false))

let pool_size () = the_pool.size

let shutdown_installed = Atomic.make false

(* Grow the pool to at least [k] parked workers (never shrinks). *)
let ensure_workers pool k =
  if pool.size < k then begin
    let grew = ref 0 in
    Mutex.protect pool.m (fun () ->
        while pool.size < k do
          let id = pool.size in
          pool.domains <- Domain.spawn (worker pool id) :: pool.domains;
          pool.size <- pool.size + 1;
          incr grew
        done);
    if not (Atomic.exchange shutdown_installed true) then
      at_exit shutdown_pool;
    Cr_obs.Obs.add c_pool_spawned !grew;
    Cr_obs.Obs.record_max c_pool_size pool.size;
    if Cr_obs.Journal.enabled () then
      Cr_obs.Journal.emit "par.pool.spawn"
        [
          ("workers", Cr_obs.Journal.I pool.size);
          ("grew_by", Cr_obs.Journal.I !grew);
        ]
  end

(* One fan-out: install the task, wake the workers, join in, wait for
   the last item.  The [Obs.workers_add] bracket covers exactly the
   domains that may run [run] (parked workers outside [t.workers] never
   touch telemetry state), so merged-telemetry entry points refuse to
   run during the fan-out and are safe again as soon as it returns. *)
let run_task ~jobs ~total run =
  Mutex.protect submit @@ fun () ->
  let pool = the_pool in
  ensure_workers pool (jobs - 1);
  let t =
    {
      run;
      total;
      workers = jobs - 1;
      next = Atomic.make 0;
      left = Atomic.make total;
      failed = None;
    }
  in
  Cr_obs.Obs.incr c_task_runs;
  Cr_obs.Obs.add c_task_items total;
  Cr_obs.Obs.workers_add (jobs - 1);
  Fun.protect
    ~finally:(fun () -> Cr_obs.Obs.workers_add (-(jobs - 1)))
    (fun () ->
      Mutex.lock pool.m;
      pool.task <- Some t;
      pool.gen <- pool.gen + 1;
      Condition.broadcast pool.work;
      Mutex.unlock pool.m;
      (* the submitting domain participates as the jobs-th executor *)
      Domain.DLS.set inside true;
      Fun.protect
        ~finally:(fun () -> Domain.DLS.set inside false)
        (fun () -> run_items pool t);
      Mutex.lock pool.m;
      while Atomic.get t.left > 0 do
        Condition.wait pool.idle pool.m
      done;
      pool.task <- None;
      Mutex.unlock pool.m);
  match t.failed with Some e -> raise e | None -> ()

let map_array ?jobs (f : 'a -> 'b) (a : 'a array) : 'b array =
  let jobs = match jobs with Some k -> max 1 k | None -> current_jobs () in
  let n = Array.length a in
  if jobs <= 1 || n <= 1 || Domain.DLS.get inside then Array.map f a
  else if n < min_items () then begin
    Cr_obs.Obs.incr c_task_sequential;
    Array.map f a
  end
  else begin
    let cap = busy_cap () in
    if jobs > cap then Cr_obs.Obs.incr c_task_capped;
    let jobs = min (min jobs n) cap in
    if jobs <= 1 then Array.map f a
    else begin
      let out = Array.make n None in
      (* Each item owns its slot of [out], so the merge is the identity
         and the result is independent of claim order. *)
      run_task ~jobs ~total:n (fun i -> out.(i) <- Some (f a.(i)));
      Array.map (function Some x -> x | None -> assert false) out
    end
  end

let map ?jobs f xs = Array.to_list (map_array ?jobs f (Array.of_list xs))
