(* Packed boolean masks over [Bytes], operated on 64 bits at a time.

   The checker kernels carry one mask per sweep (reachable sets, converged
   regions, SCC restrictions); packing them 8x denser than [bool array]
   keeps whole masks of the larger rings inside L1/L2, and backing them
   with whole 64-bit words ([Bytes.get_int64_ne]/[set_int64_ne]) makes
   union/intersection/complement/count/equality one machine operation per
   64 states instead of one per byte.

   Invariants: the backing store is padded to a whole number of 8-byte
   words, and the unused trailing bits of the last word are always zero —
   so [count], [equal] and the word-wise set operations work on raw words
   without masking, and [iter_set_bits] never yields an out-of-range
   index.

   Concurrency: [set]/[clear] are read-modify-writes of one byte, but the
   bulk operations read and write whole words — two domains may only
   write a bitset concurrently when their index ranges touch disjoint
   words, i.e. parallel chunk boundaries over a shared bitset must be
   multiples of 64 (see the bad-seed sweep in [Cr_core.Stabilize]). *)

type t = { len : int; bits : Bytes.t }

let nwords len = (len + 63) lsr 6

let create len =
  if len < 0 then invalid_arg "Bitset.create";
  { len; bits = Bytes.make (nwords len lsl 3) '\000' }

let length t = t.len

let check t i name =
  if i < 0 || i >= t.len then
    invalid_arg (Printf.sprintf "Bitset.%s: index %d out of [0, %d)" name i t.len)

let get t i =
  check t i "get";
  Char.code (Bytes.unsafe_get t.bits (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i =
  check t i "set";
  let k = i lsr 3 in
  Bytes.unsafe_set t.bits k
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get t.bits k) lor (1 lsl (i land 7))))

let clear t i =
  check t i "clear";
  let k = i lsr 3 in
  Bytes.unsafe_set t.bits k
    (Char.unsafe_chr
       (Char.code (Bytes.unsafe_get t.bits k) land lnot (1 lsl (i land 7))))

(* Zero the unused high bits of the last word (after word-wide writes
   such as [full] and [complement]). *)
let mask_tail t =
  let r = t.len land 63 in
  if r <> 0 then begin
    let last = Bytes.length t.bits - 8 in
    let m = Int64.sub (Int64.shift_left 1L r) 1L in
    Bytes.set_int64_ne t.bits last (Int64.logand (Bytes.get_int64_ne t.bits last) m)
  end

let full len =
  if len < 0 then invalid_arg "Bitset.full";
  let t = { len; bits = Bytes.make (nwords len lsl 3) '\255' } in
  mask_tail t;
  t

(* SWAR popcount of one 64-bit word. *)
let popcount64 (x : int64) =
  let open Int64 in
  let x = sub x (logand (shift_right_logical x 1) 0x5555555555555555L) in
  let x =
    add (logand x 0x3333333333333333L)
      (logand (shift_right_logical x 2) 0x3333333333333333L)
  in
  let x = logand (add x (shift_right_logical x 4)) 0x0f0f0f0f0f0f0f0fL in
  to_int (shift_right_logical (mul x 0x0101010101010101L) 56)

let count t =
  let acc = ref 0 in
  let w = Bytes.length t.bits lsr 3 in
  for k = 0 to w - 1 do
    acc := !acc + popcount64 (Bytes.get_int64_ne t.bits (k lsl 3))
  done;
  !acc

(* Count-trailing-zeros of a nonzero word, via the isolated lowest bit
   and a De Bruijn multiply (each of the 64 single-bit values maps the
   top 6 bits of the product to a distinct table index). *)
let debruijn = 0x03f79d71b4cb0a89L

let ctz_table =
  let tbl = Array.make 64 0 in
  for i = 0 to 63 do
    let idx =
      Int64.to_int
        (Int64.shift_right_logical (Int64.mul (Int64.shift_left 1L i) debruijn) 58)
    in
    tbl.(idx) <- i
  done;
  tbl

let ctz64 (x : int64) =
  Array.unsafe_get ctz_table
    (Int64.to_int
       (Int64.shift_right_logical (Int64.mul (Int64.logand x (Int64.neg x)) debruijn) 58))

(* Visit the set bits in ascending order: skip zero words whole, then
   peel set bits off each nonzero word low-to-high with [x land (x-1)].
   The tail-zero invariant means no yielded index can reach [len]. *)
let iter_set_bits t f =
  let w = Bytes.length t.bits lsr 3 in
  for k = 0 to w - 1 do
    let x = ref (Bytes.get_int64_ne t.bits (k lsl 3)) in
    if !x <> 0L then begin
      let base = k lsl 6 in
      while !x <> 0L do
        f (base + ctz64 !x);
        x := Int64.logand !x (Int64.sub !x 1L)
      done
    end
  done

let members t =
  let acc = ref [] in
  iter_set_bits t (fun i -> acc := i :: !acc);
  List.rev !acc

let complement t =
  let out = { len = t.len; bits = Bytes.create (Bytes.length t.bits) } in
  let w = Bytes.length t.bits lsr 3 in
  for k = 0 to w - 1 do
    Bytes.set_int64_ne out.bits (k lsl 3)
      (Int64.lognot (Bytes.get_int64_ne t.bits (k lsl 3)))
  done;
  mask_tail out;
  out

let check_pair t1 t2 name =
  if t1.len <> t2.len then
    invalid_arg (Printf.sprintf "Bitset.%s: lengths %d and %d" name t1.len t2.len)

let word_op name op t1 t2 =
  check_pair t1 t2 name;
  let out = { len = t1.len; bits = Bytes.create (Bytes.length t1.bits) } in
  let w = Bytes.length t1.bits lsr 3 in
  for k = 0 to w - 1 do
    let off = k lsl 3 in
    Bytes.set_int64_ne out.bits off
      (op (Bytes.get_int64_ne t1.bits off) (Bytes.get_int64_ne t2.bits off))
  done;
  out

let union t1 t2 = word_op "union" Int64.logor t1 t2
let inter t1 t2 = word_op "inter" Int64.logand t1 t2

(* [diff]'s tail stays zero because the minuend's tail is zero. *)
let diff t1 t2 =
  word_op "diff" (fun a b -> Int64.logand a (Int64.lognot b)) t1 t2

let union_into ~into t =
  check_pair into t "union_into";
  let w = Bytes.length into.bits lsr 3 in
  for k = 0 to w - 1 do
    let off = k lsl 3 in
    Bytes.set_int64_ne into.bits off
      (Int64.logor (Bytes.get_int64_ne into.bits off) (Bytes.get_int64_ne t.bits off))
  done

let of_bool_array a =
  let t = create (Array.length a) in
  Array.iteri (fun i b -> if b then set t i) a;
  t

let to_bool_array t = Array.init t.len (fun i -> get t i)

let equal t1 t2 = t1.len = t2.len && Bytes.equal t1.bits t2.bits
