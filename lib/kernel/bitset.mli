(** Packed boolean masks over [Bytes], operated on 64 bits at a time.

    Used by the CSR checker kernels for reachable sets, converged regions
    and subgraph restrictions.  The backing store is padded to whole
    8-byte words and the unused trailing bits are kept zero, so {!count},
    {!equal} and the set operations ({!union}, {!inter}, {!diff},
    {!complement}) are word-wide, and {!iter_set_bits} skips empty words
    whole.

    {!set}/{!clear} are read-modify-writes of one byte, but the bulk
    operations touch whole words: concurrent writers must own disjoint
    {e word} ranges, i.e. parallel chunk boundaries over a shared bitset
    must be multiples of 64. *)

type t

val create : int -> t
(** All-false mask of the given length. *)

val full : int -> t
(** All-true mask of the given length. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> unit
val clear : t -> int -> unit

val count : t -> int
(** Number of set bits (SWAR popcount per word). *)

val iter_set_bits : t -> (int -> unit) -> unit
(** [iter_set_bits t f] applies [f] to the indices of the set bits in
    ascending order.  Zero words cost one comparison; nonzero words are
    peeled bit-by-bit with a count-trailing-zeros step. *)

val members : t -> int list
(** Indices of the set bits, ascending. *)

val complement : t -> t
(** Fresh mask with every bit flipped. *)

val union : t -> t -> t
(** Word-wise [lor] into a fresh mask.  Raises [Invalid_argument] when
    the lengths differ (likewise {!inter}, {!diff}, {!union_into}). *)

val inter : t -> t -> t
(** Word-wise [land] into a fresh mask. *)

val diff : t -> t -> t
(** [diff a b]: bits set in [a] but not in [b], in a fresh mask. *)

val union_into : into:t -> t -> unit
(** In-place word-wise [lor] — the deterministic merge step for
    per-chunk masks produced by a parallel sweep. *)

val of_bool_array : bool array -> t
val to_bool_array : t -> bool array

val equal : t -> t -> bool
