(* Compressed sparse row graphs: the one adjacency representation shared
   by the explicit-state systems and every checker kernel.

   The edge list is a single flat [targets] array; row i occupies the
   offsets [row_ptr.(i), row_ptr.(i+1)).  Rows are sorted ascending and
   deduplicated (the [Explicit] construction invariant), so membership is
   a binary search and transposition keeps rows sorted by visiting
   sources in order.

   Compared to the historical [int array array]: one allocation instead
   of n+1, offset arithmetic instead of pointer chasing, and an absolute
   edge index [k] that the domain-chunked classifier uses to make its
   merged output independent of the job count.

   [row_ptr] and [targets] are exposed read-only for the hot kernels
   (reachability, Tarjan, BFS); callers must never mutate them. *)

type t = {
  row_ptr : int array;  (* length num_states + 1, nondecreasing *)
  targets : int array;  (* length row_ptr.(num_states) *)
}

let num_states t = Array.length t.row_ptr - 1

let num_edges t = Array.length t.targets

let row_ptr t = t.row_ptr

let targets t = t.targets

let degree t i = t.row_ptr.(i + 1) - t.row_ptr.(i)

let row t i = Array.sub t.targets t.row_ptr.(i) (degree t i)

let kth t i k = t.targets.(t.row_ptr.(i) + k)

let iter_row t i f =
  for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
    f t.targets.(k)
  done

let iter_edges t f =
  let n = num_states t in
  for i = 0 to n - 1 do
    for k = t.row_ptr.(i) to t.row_ptr.(i + 1) - 1 do
      f i t.targets.(k)
    done
  done

(* Binary search within the row bounds — the same invariant as the
   historical [Explicit.has_edge]. *)
let mem t i j =
  let lo = ref t.row_ptr.(i) and hi = ref t.row_ptr.(i + 1) in
  while !hi - !lo > 1 do
    let mid = (!lo + !hi) / 2 in
    if t.targets.(mid) <= j then lo := mid else hi := mid
  done;
  !hi > !lo && t.targets.(!lo) = j

(* Trusted constructor: [row_ptr]/[targets] must already satisfy every
   invariant (lengths, monotonicity, sorted deduplicated rows).  Used by
   the flat row-merge in [Explicit.box]. *)
let unsafe_of_raw ~row_ptr ~targets = { row_ptr; targets }

let of_rows (rows : int array array) : t =
  let n = Array.length rows in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i) + Array.length rows.(i)
  done;
  let targets = Array.make row_ptr.(n) 0 in
  for i = 0 to n - 1 do
    Array.blit rows.(i) 0 targets row_ptr.(i) (Array.length rows.(i))
  done;
  { row_ptr; targets }

let to_rows t = Array.init (num_states t) (row t)

(* Count-then-fill; visiting sources ascending keeps each transposed row
   sorted. *)
let transpose t =
  let n = num_states t in
  let deg = Array.make (n + 1) 0 in
  Array.iter (fun j -> deg.(j + 1) <- deg.(j + 1) + 1) t.targets;
  let row_ptr = Array.make (n + 1) 0 in
  for j = 0 to n - 1 do
    row_ptr.(j + 1) <- row_ptr.(j) + deg.(j + 1)
  done;
  let targets = Array.make row_ptr.(n) 0 in
  let fill = Array.copy row_ptr in
  iter_edges t (fun i j ->
      targets.(fill.(j)) <- i;
      fill.(j) <- fill.(j) + 1);
  { row_ptr; targets }

(* Subgraph induced by the masked states: rows of unmasked states are
   empty, surviving rows keep only masked targets.  Two flat passes, no
   per-row allocation. *)
let restrict t (mask : Bitset.t) : t =
  let n = num_states t in
  let row_ptr = Array.make (n + 1) 0 in
  for i = 0 to n - 1 do
    let kept = ref 0 in
    if Bitset.get mask i then
      iter_row t i (fun j -> if Bitset.get mask j then incr kept);
    row_ptr.(i + 1) <- row_ptr.(i) + !kept
  done;
  let targets = Array.make row_ptr.(n) 0 in
  let k = ref 0 in
  for i = 0 to n - 1 do
    if Bitset.get mask i then
      iter_row t i (fun j ->
          if Bitset.get mask j then begin
            targets.(!k) <- j;
            incr k
          end)
  done;
  { row_ptr; targets }

let equal t1 t2 = t1.row_ptr = t2.row_ptr && t1.targets = t2.targets
