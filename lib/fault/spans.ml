(* Fault spans: how far can at most k transient faults push the system,
   and how expensive is recovery from there?

   The k-fault span is the set of states reachable from the legitimate
   states by interleaving program transitions (free) with fault
   transitions (each costing one fault).  Computed by 0-1 BFS on the
   explicit graph.  Recovery cost from the span is the longest path back
   to the converged region, restricted to span states.

   This quantifies the usual informal claim that "a single fault is
   cheap to recover from": see the E19 table in the benchmark harness. *)

open Cr_guarded

(* minimal number of faults needed to reach each state from the sources;
   -1 when unreachable. *)
let min_faults ~(succ : Cr_kernel.Csr.t) ~(fault_succ : int array array)
    ~(sources : int list) : int array =
  let n = Cr_kernel.Csr.num_states succ in
  let dist = Array.make n (-1) in
  let dq = Queue.create () and dq1 = Queue.create () in
  (* layered BFS: process all 0-cost closure of the current layer, then
     advance one fault *)
  List.iter
    (fun i ->
      if dist.(i) = -1 then begin
        dist.(i) <- 0;
        Queue.push i dq
      end)
    sources;
  let layer = ref 0 in
  let continue = ref true in
  while !continue do
    (* 0-cost closure at the current fault count *)
    while not (Queue.is_empty dq) do
      let i = Queue.pop dq in
      Cr_kernel.Csr.iter_row succ i (fun j ->
          if dist.(j) = -1 then begin
            dist.(j) <- !layer;
            Queue.push j dq
          end);
      Array.iter
        (fun j -> if dist.(j) = -1 then Queue.push j dq1)
        fault_succ.(i)
    done;
    (* advance one fault *)
    if Queue.is_empty dq1 then continue := false
    else begin
      incr layer;
      while not (Queue.is_empty dq1) do
        let j = Queue.pop dq1 in
        if dist.(j) = -1 then begin
          dist.(j) <- !layer;
          Queue.push j dq
        end
      done
    end
  done;
  dist

type row = {
  k : int;  (* number of faults *)
  span : int;  (* states reachable with <= k faults *)
  worst_recovery : int;  (* longest recovery path from the span *)
  expected_recovery : float;  (* max expected steps from the span *)
}

(* Full analysis for a stabilizing program: one row per fault budget until
   the span saturates. *)
let analyze ?(max_k = 8) (p : Program.t)
    ~(spec : Layout.state Cr_semantics.Explicit.t)
    ~(abstraction : (Layout.state, Layout.state) Cr_semantics.Abstraction.t) :
    row list =
  let e = Program.to_explicit p in
  let alpha = Cr_semantics.Abstraction.tabulate abstraction e spec in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:spec () in
  if not r.Cr_core.Stabilize.holds then
    invalid_arg "Spans.analyze: program is not stabilizing";
  let good = r.Cr_core.Stabilize.good_mask in
  let succ = Cr_checker.Reach.of_explicit e in
  let layout = Program.layout p in
  let faults = Injector.faults layout in
  let fault_succ =
    Array.init (Cr_semantics.Explicit.num_states e) (fun i ->
        Program.step faults (Cr_semantics.Explicit.state e i)
        |> List.map (Cr_semantics.Explicit.find e)
        |> Array.of_list)
  in
  let n = Cr_semantics.Explicit.num_states e in
  let sources =
    List.filteri (fun i _ -> good.(i)) (List.init n (fun i -> i))
  in
  let dist = min_faults ~succ ~fault_succ ~sources in
  let not_good = Cr_kernel.Bitset.of_bool_array (Array.map not good) in
  let depth = Cr_checker.Paths.longest_within_csr ~succ ~mask:not_good in
  let expected =
    Cr_checker.Hitting.expected_csr ~succ
      ~pred:(Cr_checker.Reach.pred_of_explicit e) ~target:good ()
  in
  let rec rows k prev_span acc =
    if k > max_k then List.rev acc
    else begin
      let span = ref 0 and worst = ref 0 and eworst = ref 0.0 in
      for i = 0 to n - 1 do
        if dist.(i) >= 0 && dist.(i) <= k then begin
          incr span;
          if depth.(i) > !worst then worst := depth.(i);
          if Float.is_finite expected.(i) && expected.(i) > !eworst then
            eworst := expected.(i)
        end
      done;
      let row =
        { k; span = !span; worst_recovery = !worst; expected_recovery = !eworst }
      in
      if !span = prev_span then List.rev (row :: acc)
      else rows (k + 1) !span (row :: acc)
    end
  in
  rows 0 (-1) []
