(** Fault spans: reachability under a bounded number of transient faults
    interleaved with program execution, and the recovery cost from each
    span (extension experiment E19). *)

open Cr_guarded

val min_faults :
  succ:Cr_kernel.Csr.t ->
  fault_succ:int array array ->
  sources:int list ->
  int array
(** 0-1 BFS: minimal number of fault transitions needed to reach each
    state from the sources ([-1] = unreachable).  Program transitions
    come from the system's CSR; fault rows are ad-hoc arrays. *)

type row = {
  k : int;
  span : int;
  worst_recovery : int;
  expected_recovery : float;
}

val analyze :
  ?max_k:int ->
  Program.t ->
  spec:Layout.state Cr_semantics.Explicit.t ->
  abstraction:(Layout.state, Layout.state) Cr_semantics.Abstraction.t ->
  row list
(** One row per fault budget k = 0, 1, ... until the span saturates (or
    [max_k]).  Raises [Invalid_argument] if the program is not
    stabilizing. *)
