(* Transient-fault models.

   The paper's faults are perturbations of the system state ("transient
   faults that may arbitrarily corrupt the process states").  Two
   mechanizations are provided:

   - state perturbation for simulations: corrupt some variables of a
     concrete state (the convention used throughout the paper — a fault
     simply drops the system in an arbitrary state);

   - fault programs for model checking: the fault transition relation as
     guarded actions, so that a "system [] faults" composition can be
     explored explicitly (e.g. to compute fault spans). *)

open Cr_guarded

let corrupt_slot ~rng layout (s : Layout.state) ~slot : Layout.state =
  let d = Layout.dom layout slot in
  if d <= 1 then Array.copy s
  else begin
    let s' = Array.copy s in
    (* pick a *different* value so the fault is a real perturbation *)
    let v = Random.State.int rng (d - 1) in
    s'.(slot) <- (if v >= s.(slot) then v + 1 else v);
    s'
  end

let corrupt_one ~rng layout (s : Layout.state) : Layout.state =
  let n = Layout.num_vars layout in
  let mutable_slots =
    List.filter (fun i -> Layout.dom layout i > 1) (List.init n (fun i -> i))
  in
  match mutable_slots with
  | [] -> Array.copy s
  | slots ->
      let slot = List.nth slots (Random.State.int rng (List.length slots)) in
      corrupt_slot ~rng layout s ~slot

let corrupt_k ~rng layout (s : Layout.state) ~k : Layout.state =
  let rec go s k = if k <= 0 then s else go (corrupt_one ~rng layout s) (k - 1) in
  go (Array.copy s) k

let randomize ~rng layout : Layout.state =
  Array.init (Layout.num_vars layout) (fun i ->
      Random.State.int rng (Layout.dom layout i))

(* The full transient-fault transition relation as a program: one action
   per (slot, value).  Composing [p [] faults (Program.layout p)] yields a
   system whose reachable set from the initial states is the fault span
   under unboundedly many faults (for our layouts: the whole space). *)
let faults layout =
  let n = Layout.num_vars layout in
  let acts =
    List.concat_map
      (fun slot ->
        let d = Layout.dom layout slot in
        if d <= 1 then []
        else
          List.init d (fun v ->
              Action.make
                ~label:(Printf.sprintf "fault_%s=%d" (Layout.var_name layout slot) v)
                ~proc:(-1) ~writes:[ slot ]
                ~guard:(fun s -> s.(slot) <> v)
                ~effect:(fun s -> Action.set s [ (slot, v) ])
                ()))
      (List.init n (fun i -> i))
  in
  Program.make ~name:"faults" ~layout ~actions:acts ~initial:(fun _ -> true)

(* Bounded-fault campaigns for simulations: corrupt, then let the daemon
   run; see Cr_sim.Runner.convergence_stats for the statistics side. *)
type campaign = {
  faults_per_episode : int;
  episodes : int;
  seed : int;
}

let default_campaign = { faults_per_episode = 1; episodes = 100; seed = 42 }
