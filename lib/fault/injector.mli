(** Transient-fault models: state perturbations for simulation and the
    fault transition relation as a guarded program for model checking. *)

open Cr_guarded

val corrupt_slot :
  rng:Random.State.t -> Layout.t -> Layout.state -> slot:int -> Layout.state
(** Corrupt one variable to a uniformly random *different* value. *)

val corrupt_one : rng:Random.State.t -> Layout.t -> Layout.state -> Layout.state
(** Corrupt one uniformly chosen (non-pinned) variable. *)

val corrupt_k :
  rng:Random.State.t -> Layout.t -> Layout.state -> k:int -> Layout.state

val randomize : rng:Random.State.t -> Layout.t -> Layout.state
(** An arbitrary state — the paper's unrestricted transient fault. *)

val faults : Layout.t -> Program.t
(** The fault transition relation (one action per slot/value), for
    explicit-state exploration of fault spans. *)

type campaign = { faults_per_episode : int; episodes : int; seed : int }

val default_campaign : campaign
