(** Convergence-stair analysis over the slot write-dependency graph.

    Every live action (not statically dead under ⊤) contributes edges
    [r -> w] for each slot [w] it exactly writes and each slot [r] it
    reads ([r <> w]; a self-dependency is recorded separately).  The
    graph is condensed with {!Cr_checker.Scc}, and components are
    layered by longest path over the condensation DAG: a component's
    slots can only converge once every layer below it has — the static
    skeleton of the paper's staircase derivations.

    When every component is a singleton ([acyclic]), the layering is a
    true per-slot convergence stair.  The ring protocols bundled here
    condense instead into one cyclic component per token ring — an
    honest reflection of the paper's proofs, which argue convergence of
    the ring globally (via token counts), not slot-wise; their stair
    lives at the predicate level, below the slot granularity. *)

open Cr_guarded

type t = {
  num_slots : int;
  edges : (int * int) list;  (** cross-slot dependencies [r -> w] *)
  self_deps : int list;  (** slots written by an action that reads them *)
  comp_of : int array;  (** slot -> component id *)
  components : int array array;  (** component id -> member slots *)
  layer_of : int array;  (** component id -> layer (0 = converges first) *)
  layers : int array array;  (** layer -> component ids *)
  acyclic : bool;  (** every component is a singleton *)
}

val of_flow : Flow.t -> t option
(** [None] when the flow analysis was degraded (no exact read/write
    sets, hence no dependency graph). *)

val depth : t -> int
(** Number of layers. *)

val pp : Layout.t -> Format.formatter -> t -> unit
(** One line per layer: [layer 0: {c.0 c.1 c.2}* c.3 ...] — a [*] marks
    a cyclic component (braces group its slots). *)
