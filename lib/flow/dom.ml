(* Per-slot abstract values: an exact bit-mask value-set for the small
   finite domains of every bundled system, with an interval fallback for
   domains too wide to pack into an int.  Mask operations are exact set
   operations; interval joins widen to the hull, which keeps every
   operation a sound over-approximation. *)

let max_mask_dom = Sys.int_size - 2

type t =
  | Mask of { dom : int; bits : int }
  | Range of { dom : int; lo : int; hi : int }  (* empty iff lo > hi *)

let check_dom name d =
  if d < 1 then invalid_arg (Printf.sprintf "Dom.%s: empty domain" name)

let bottom d =
  check_dom "bottom" d;
  if d <= max_mask_dom then Mask { dom = d; bits = 0 }
  else Range { dom = d; lo = 1; hi = 0 }

let top d =
  check_dom "top" d;
  if d <= max_mask_dom then Mask { dom = d; bits = (1 lsl d) - 1 }
  else Range { dom = d; lo = 0; hi = d - 1 }

let check_val name d v =
  if v < 0 || v >= d then
    invalid_arg (Printf.sprintf "Dom.%s: value %d outside 0..%d" name v (d - 1))

let singleton d v =
  check_dom "singleton" d;
  check_val "singleton" d v;
  if d <= max_mask_dom then Mask { dom = d; bits = 1 lsl v }
  else Range { dom = d; lo = v; hi = v }

let dom = function Mask { dom; _ } -> dom | Range { dom; _ } -> dom

let is_bottom = function
  | Mask { bits; _ } -> bits = 0
  | Range { lo; hi; _ } -> lo > hi

let is_top = function
  | Mask { dom; bits } -> bits = (1 lsl dom) - 1
  | Range { dom; lo; hi } -> lo = 0 && hi = dom - 1

let mem t v =
  match t with
  | Mask { dom; bits } -> v >= 0 && v < dom && bits land (1 lsl v) <> 0
  | Range { lo; hi; _ } -> v >= lo && v <= hi

let add t v =
  check_val "add" (dom t) v;
  match t with
  | Mask m -> Mask { m with bits = m.bits lor (1 lsl v) }
  | Range r ->
      if r.lo > r.hi then Range { r with lo = v; hi = v }
      else Range { r with lo = min r.lo v; hi = max r.hi v }

let join a b =
  if dom a <> dom b then invalid_arg "Dom.join: mismatched domains";
  match (a, b) with
  | Mask m, Mask m' -> Mask { m with bits = m.bits lor m'.bits }
  | Range r, Range r' ->
      if r.lo > r.hi then b
      else if r'.lo > r'.hi then a
      else Range { r with lo = min r.lo r'.lo; hi = max r.hi r'.hi }
  | _ -> assert false (* representation is determined by the domain *)

let equal a b =
  dom a = dom b
  &&
  match (a, b) with
  | Mask m, Mask m' -> m.bits = m'.bits
  | Range r, Range r' ->
      (r.lo > r.hi && r'.lo > r'.hi) || (r.lo = r'.lo && r.hi = r'.hi)
  | _ -> false

let count = function
  | Mask { bits; _ } ->
      let n = ref 0 and b = ref bits in
      while !b <> 0 do
        b := !b land (!b - 1);
        incr n
      done;
      !n
  | Range { lo; hi; _ } -> if lo > hi then 0 else hi - lo + 1

let is_singleton t = count t = 1

let choose = function
  | Mask { bits; _ } when bits <> 0 ->
      let v = ref 0 in
      while bits land (1 lsl !v) = 0 do
        incr v
      done;
      !v
  | Range { lo; hi; _ } when lo <= hi -> lo
  | _ -> invalid_arg "Dom.choose: bottom"

let iter f = function
  | Mask { dom; bits } ->
      for v = 0 to dom - 1 do
        if bits land (1 lsl v) <> 0 then f v
      done
  | Range { lo; hi; _ } ->
      for v = lo to hi do
        f v
      done

let to_list t =
  let acc = ref [] in
  iter (fun v -> acc := v :: !acc) t;
  List.rev !acc

let of_list d vs = List.fold_left add (bottom d) vs

let pp fmt t =
  if is_bottom t then Fmt.string fmt "⊥"
  else if is_top t then Fmt.string fmt "⊤"
  else
    match t with
    | Mask _ ->
        Fmt.pf fmt "{%s}"
          (String.concat "," (List.map string_of_int (to_list t)))
    | Range { lo; hi; _ } -> Fmt.pf fmt "[%d..%d]" lo hi
