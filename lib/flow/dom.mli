(** Per-slot abstract values for the flow engine.

    A value abstracts the set of digits a {!Cr_guarded.Layout} slot can
    hold: a small value-set (bit mask) for the finite domains every
    bundled system uses, falling back to an interval hull for domains
    too wide to pack into an [int].  All operations are sound
    over-approximations; on masks they are exact. *)

type t

val max_mask_dom : int
(** Largest domain represented exactly as a bit mask; wider domains use
    the interval representation (joins widen to the hull). *)

val bottom : int -> t
(** [bottom dom]: the empty set over [0..dom-1]. *)

val top : int -> t
(** [top dom]: the full domain. *)

val singleton : int -> int -> t
(** [singleton dom v].  Raises [Invalid_argument] if [v] is outside
    [0..dom-1]. *)

val of_list : int -> int list -> t

val dom : t -> int

val mem : t -> int -> bool
(** May over-approximate on intervals (hull membership). *)

val add : t -> int -> t
(** Join with a singleton.  Raises [Invalid_argument] out of domain. *)

val join : t -> t -> t
(** Raises [Invalid_argument] on mismatched domains. *)

val equal : t -> t -> bool
val is_bottom : t -> bool
val is_top : t -> bool
val is_singleton : t -> bool

val count : t -> int
(** Number of representable values (interval hull width on ranges). *)

val choose : t -> int
(** Smallest member.  Raises [Invalid_argument] on bottom. *)

val to_list : t -> int list
(** Members in increasing order (hull enumeration on ranges). *)

val iter : (int -> unit) -> t -> unit

val pp : Format.formatter -> t -> unit
