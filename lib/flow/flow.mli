(** Abstract interpretation of guarded-command programs over per-slot
    domains ({!Dom}).

    The engine abstracts a set of states as one {!Dom.t} per layout slot
    (a cartesian, non-relational abstraction) and localizes each
    action's transfer function with its exact {!Cr_lint.Rwsets} support:
    a guard is exactly a function of its guard-read slots, and written
    outputs among enabled states are exactly a function of the
    effect-read and written slots (the finite-differencing theorems
    behind [Rwsets]).  A transfer therefore enumerates only the product
    of the abstract values over that support, with every other slot
    pinned to an arbitrary representative — the only loss of precision
    is the cartesian abstraction itself.

    Two analyses are run:

    - {b from ⊤} — every slot at its full domain, the right start for
      self-stabilization, where any state is a possible fault outcome.
      Transfer results under ⊤ are exact full-space facts: enabledness,
      the set of written values, domain validity.
    - {b from the initial predicate} — the least fixpoint of
      [σ0 ⊔ post] where σ0 abstracts the initial states.  The result
      over-approximates every value reachable in fault-free executions,
      so "guard unsatisfiable over the fixpoint" is a sound {e definite}
      dead-from-init verdict, obtained without the exact reachable
      closure.

    Findings (reported with {!Cr_lint.Lint.finding} keys):

    - [F1] statically-dead guard: unsatisfiable in the full space
      (warning, exact — subsumes the full-space half of U1), or
      unsatisfiable over the init fixpoint (info, abstract).
    - [F2] domain violation: an enabled state's effect leaves
      {!Cr_guarded.Layout.valid} (error, exact ≡ D1), plus an abstract
      warning when a violating combination also lies under the init
      fixpoint — the violation may occur from fault-free values.
    - [F3] constant slot: never written by any live action (info,
      exact), or held at a single value by the init fixpoint — constant
      throughout every fault-free execution (info, abstract).

    Init-fixpoint claims are suppressed (conservatively) if any transfer
    during the fixpoint was truncated or produced an invalid state:
    [Program.reachable_from] keeps even domain-invalid successors, so
    the per-slot abstraction only covers the true closure when every
    propagated output stayed inside the layout.

    Programs whose state space exceeds [exact_budget] are not analyzed
    at all ({!degraded} reports) — the exact [Rwsets] support pass is
    the substrate of the localization, and it is a full-space pass. *)

open Cr_guarded
open Cr_lint

type fact = {
  info : Rwsets.info;
  top_enabled : bool;  (** enabled somewhere in the full space (exact) *)
  top_outputs : (int * Dom.t) list;
      (** per written slot, every value an enabled state can write *)
  init_enabled : bool option;
      (** enabled under the init fixpoint; [None] when the init analysis
          is unavailable or its definite claims are suppressed *)
  init_invalid : Layout.state option;
      (** a state under the init fixpoint whose effect leaves the
          layout (abstract: the state itself may be unreachable) *)
}

type t = {
  program : Program.t;
  layout : Layout.t;
  num_states : int;
  degraded : bool;
      (** state space over budget: no facts, no findings, no rank *)
  facts : fact list;  (** per action, in program order; [] if degraded *)
  init_seed : Dom.t array option;  (** σ0: the initial-state abstraction *)
  init_state : Dom.t array option;  (** lfp of σ0 ⊔ post *)
  init_rounds : int;  (** chaotic-iteration rounds to the fixpoint *)
  init_sound : bool;
      (** no truncation or domain violation during the fixpoint — the
          precondition for definite init claims *)
  findings : Lint.finding list;  (** the flow battery: F1/F2/F3 (or B1) *)
}

val analyze : ?exact_budget:int -> Program.t -> t
(** Run both analyses and the flow finding battery.  [exact_budget]
    bounds the state-space size for the [Rwsets] substrate pass and
    per-transfer support products (default
    {!Cr_lint.Lint.default_exact_budget}); beyond it the result is
    {!degraded} with a single B1 info finding. *)

val init_dead : t -> string -> bool
(** [init_dead t label]: did the init fixpoint definitely prove the
    action's guard unsatisfiable in all fault-free executions?  Always
    [false] when degraded or when init claims are suppressed.  This is
    the [?init_dead] pre-filter of {!Cr_lint.Lint.run}. *)

val errors : t -> int
(** Error-severity flow findings. *)

val lint :
  ?allow:string list ->
  ?reachable_check:bool ->
  ?exact_budget:int ->
  Program.t ->
  Lint.report * t
(** Lint v2: one [Rwsets] pass feeds both the exact battery and the
    flow engine; flow's init fixpoint pre-filters the exact
    reachable-closure check ([init_dead]), and its F2-abstract/F3
    findings are merged into the report (F1 stays out — the merged
    report already carries those verdicts as U1).  On a degraded
    program the report contains just the B1 finding. *)

val pp_state : Layout.t -> Format.formatter -> Dom.t array -> unit
(** Print an abstract state as [{slot=⊤ slot={0,2} ...}]. *)

val pp_summary : Format.formatter -> t -> unit
