(* The abstract interpreter.  See flow.mli for the design contract; the
   load-bearing facts are the Rwsets differencing theorems:

     (1) a guard's value is exactly a function of its guard-read slots
         (over the whole space);
     (2) among enabled states, the effect's output on a written slot is
         exactly a function of the effect-read slots plus the written
         slot itself (pass-through lines), and every non-written slot
         passes through.

   So a transfer that enumerates the product of the abstract state over
   support = guard_reads + effect_reads + writes, with all other slots
   pinned to arbitrary members of their abstract values, computes the
   exact set of enabled combinations and written outputs for the
   concretization — the only over-approximation left is the cartesian
   per-slot abstraction itself. *)

open Cr_guarded
open Cr_lint

let c_programs = Cr_obs.Obs.counter "lint.flow.programs"
let c_degraded = Cr_obs.Obs.counter "lint.flow.degraded"
let c_transfers = Cr_obs.Obs.counter "lint.flow.transfers"
let c_combos = Cr_obs.Obs.counter "lint.flow.combos"
let c_rounds = Cr_obs.Obs.counter "lint.flow.rounds"
let c_findings = Cr_obs.Obs.counter "lint.flow.findings"
let h_support = Cr_obs.Obs.histogram "lint.flow.support_combos"

type fact = {
  info : Rwsets.info;
  top_enabled : bool;
  top_outputs : (int * Dom.t) list;
  init_enabled : bool option;
  init_invalid : Layout.state option;
}

type t = {
  program : Program.t;
  layout : Layout.t;
  num_states : int;
  degraded : bool;
  facts : fact list;
  init_seed : Dom.t array option;
  init_state : Dom.t array option;
  init_rounds : int;
  init_sound : bool;
  findings : Lint.finding list;
}

(* ---- transfer ---- *)

type transfer = {
  t_enabled : bool;
  t_outputs : (int * Dom.t) list;
  t_invalid : Layout.state option;
  t_truncated : bool;
}

let eval ~budget layout (info : Rwsets.info) (sigma : Dom.t array) : transfer =
  Cr_obs.Obs.incr c_transfers;
  let a = info.Rwsets.action in
  let nv = Layout.num_vars layout in
  let writes = info.Rwsets.writes in
  let bot_outputs () =
    List.map (fun w -> (w, Dom.bottom (Layout.dom layout w))) writes
  in
  if Array.exists Dom.is_bottom sigma then
    (* empty concretization: nothing is enabled *)
    { t_enabled = false; t_outputs = bot_outputs (); t_invalid = None;
      t_truncated = false }
  else begin
    let support =
      List.sort_uniq compare
        (info.Rwsets.guard_reads @ info.Rwsets.effect_reads @ writes)
    in
    let product =
      List.fold_left (fun acc i -> acc * Dom.count sigma.(i)) 1 support
    in
    Cr_obs.Obs.observe h_support product;
    if product > budget then
      (* sound but maximally imprecise: may fire, may write anything *)
      { t_enabled = true;
        t_outputs = List.map (fun w -> (w, Dom.top (Layout.dom layout w))) writes;
        t_invalid = None;
        t_truncated = true }
    else begin
      Cr_obs.Obs.add c_combos product;
      let s = Array.init nv (fun i -> Dom.choose sigma.(i)) in
      let slots = Array.of_list support in
      let vals =
        Array.map (fun i -> Array.of_list (Dom.to_list sigma.(i))) slots
      in
      let outs =
        List.map (fun w -> (w, ref (Dom.bottom (Layout.dom layout w)))) writes
      in
      let enabled = ref false in
      let invalid = ref None in
      for k = 0 to product - 1 do
        let r = ref k in
        Array.iteri
          (fun idx i ->
            let vs = vals.(idx) in
            let m = Array.length vs in
            s.(i) <- vs.(!r mod m);
            r := !r / m)
          slots;
        if a.Action.guard s then begin
          enabled := true;
          let s' = a.Action.effect s in
          if (not (Layout.valid layout s')) && !invalid = None then
            invalid := Some (Array.copy s);
          let len = Array.length s' in
          List.iter
            (fun (w, acc) ->
              if w < len then
                let v = s'.(w) in
                if v >= 0 && v < Layout.dom layout w then acc := Dom.add !acc v)
            outs
        end
      done;
      { t_enabled = !enabled;
        t_outputs = List.map (fun (w, acc) -> (w, !acc)) outs;
        t_invalid = !invalid;
        t_truncated = false }
    end
  end

(* ---- the two analyses ---- *)

let state_str layout s = Fmt.str "%a" (Layout.pp_state layout) s

let analyze ?(exact_budget = Lint.default_exact_budget) (p : Program.t) : t =
  Cr_obs.Obs.span "lint.flow.analyze" @@ fun () ->
  Cr_obs.Obs.incr c_programs;
  let layout = Program.layout p in
  let nv = Layout.num_vars layout in
  let ns = Layout.num_states layout in
  let name = Program.name p in
  let mk key severity provenance action message =
    { Lint.key; severity; provenance; program = name; action; message }
  in
  if ns > exact_budget then begin
    (* The localization substrate (exact Rwsets support) is itself a
       full-space pass; past the budget the honest answer is "not
       analyzed", not a blow-up. *)
    Cr_obs.Obs.incr c_degraded;
    let f =
      mk "B1" Lint.Info Lint.Exact "-"
        (Printf.sprintf
           "state space (%d states) exceeds the exact-analysis budget (%d); \
            flow analysis skipped (Rwsets support inference is full-space)"
           ns exact_budget)
    in
    Cr_obs.Obs.incr c_findings;
    { program = p; layout; num_states = ns; degraded = true; facts = [];
      init_seed = None; init_state = None; init_rounds = 0;
      init_sound = false; findings = [ f ] }
  end
  else begin
    let infos = Rwsets.of_program p in
    (* Fixpoint from ⊤: one transfer round — ⊤ is already the (trivial)
       fixpoint, so its value is the per-action byproducts, which are
       exact full-space facts by the support theorems. *)
    let top_sigma = Array.init nv (fun i -> Dom.top (Layout.dom layout i)) in
    let top_trs =
      List.map (fun info -> eval ~budget:exact_budget layout info top_sigma) infos
    in
    (* σ0: abstraction of the initial predicate. *)
    let init_seed =
      Cr_obs.Obs.span "lint.flow.init_seed" @@ fun () ->
      let sigma = Array.init nv (fun i -> Dom.bottom (Layout.dom layout i)) in
      let any = ref false in
      let initial = Program.initial p in
      Layout.iter_states layout (fun _ s ->
          if initial s then begin
            any := true;
            for i = 0 to nv - 1 do
              sigma.(i) <- Dom.add sigma.(i) s.(i)
            done
          end);
      if !any then Some sigma else None
    in
    (* lfp of σ0 ⊔ post by chaotic iteration (the lattice is finite and
       every join only grows, so termination is immediate). *)
    let init_state, init_rounds, init_sound, init_trs =
      match init_seed with
      | None -> (None, 0, false, None)
      | Some seed ->
          Cr_obs.Obs.span "lint.flow.fixpoint" @@ fun () ->
          let sigma = Array.copy seed in
          let rounds = ref 0 in
          let sound = ref true in
          let changed = ref true in
          while !changed do
            changed := false;
            incr rounds;
            List.iter
              (fun info ->
                let tr = eval ~budget:exact_budget layout info sigma in
                if tr.t_truncated || tr.t_invalid <> None then sound := false;
                List.iter
                  (fun (w, dv) ->
                    let j = Dom.join sigma.(w) dv in
                    if not (Dom.equal j sigma.(w)) then begin
                      sigma.(w) <- j;
                      changed := true
                    end)
                  tr.t_outputs)
              infos
          done;
          Cr_obs.Obs.add c_rounds !rounds;
          (* Final per-action evaluation under the fixpoint. *)
          let trs =
            List.map (fun info -> eval ~budget:exact_budget layout info sigma) infos
          in
          List.iter
            (fun tr ->
              if tr.t_truncated || tr.t_invalid <> None then sound := false)
            trs;
          (Some sigma, !rounds, !sound, Some trs)
    in
    let facts =
      List.map2
        (fun info (ttr, itr) ->
          {
            info;
            top_enabled = ttr.t_enabled || ttr.t_truncated;
            top_outputs = ttr.t_outputs;
            init_enabled =
              (match itr with
              | Some it when init_sound && not it.t_truncated ->
                  Some it.t_enabled
              | _ -> None);
            init_invalid =
              (match itr with Some it -> it.t_invalid | None -> None);
          })
        infos
        (List.combine top_trs
           (match init_trs with
           | Some trs -> List.map (fun tr -> Some tr) trs
           | None -> List.map (fun _ -> None) infos))
    in
    (* ---- the flow finding battery ---- *)
    let findings = ref [] in
    let add f = findings := f :: !findings in
    List.iter
      (fun fact ->
        let lbl = Action.label fact.info.Rwsets.action in
        (* F1: dead guards *)
        if not fact.top_enabled then
          add
            (mk "F1" Lint.Warning Lint.Exact lbl
               "statically dead: guard unsatisfiable in the full state space")
        else if fact.init_enabled = Some false then
          add
            (mk "F1" Lint.Info Lint.Abstract lbl
               "dead from initial states: guard unsatisfiable over the \
                abstract init fixpoint (all fault-free executions)");
        (* F2: domain violations *)
        (match fact.info.Rwsets.invalid_witness with
        | Some s ->
            add
              (mk "F2" Lint.Error Lint.Exact lbl
                 (Printf.sprintf "effect leaves the variable domains at %s"
                    (state_str layout s)))
        | None -> ());
        match fact.init_invalid with
        | Some s ->
            add
              (mk "F2" Lint.Warning Lint.Abstract lbl
                 (Printf.sprintf
                    "effect may leave the variable domains from fault-free \
                     reachable values (abstract witness %s)"
                    (state_str layout s)))
        | None -> ())
      facts;
    (* F3: constant slots *)
    for i = 0 to nv - 1 do
      if Layout.dom layout i > 1 then begin
        let written =
          List.exists (fun f -> List.mem i f.info.Rwsets.writes) facts
        in
        if not written then
          add
            (mk "F3" Lint.Info Lint.Exact "-"
               (Printf.sprintf
                  "slot %s is constant: no enabled action ever writes it"
                  (Layout.var_name layout i)))
        else
          match init_state with
          | Some sigma when init_sound && Dom.is_singleton sigma.(i) ->
              add
                (mk "F3" Lint.Info Lint.Abstract "-"
                   (Printf.sprintf
                      "slot %s is fixed at %d across all fault-free \
                       executions (abstract init fixpoint)"
                      (Layout.var_name layout i)
                      (Dom.choose sigma.(i))))
          | _ -> ()
      end
    done;
    let findings = Lint.sort_findings (List.rev !findings) in
    Cr_obs.Obs.add c_findings (List.length findings);
    { program = p; layout; num_states = ns; degraded = false; facts;
      init_seed; init_state; init_rounds; init_sound; findings }
  end

(* ---- lint v2 integration ---- *)

let init_dead t label =
  List.exists
    (fun f ->
      Action.label f.info.Rwsets.action = label && f.init_enabled = Some false)
    t.facts

let errors t =
  List.length (List.filter (fun f -> f.Lint.severity = Lint.Error) t.findings)

(* The findings worth merging into a classic lint report: F1 facts are
   already represented there as U1 (exact full-space, or abstract via
   the init_dead pre-filter), and F2-exact is D1 — so only F2-abstract
   and F3 add information. *)
let supplemental t =
  List.filter
    (fun f ->
      f.Lint.key = "F3"
      || (f.Lint.key = "F2" && f.Lint.provenance = Lint.Abstract))
    t.findings

let lint ?allow ?reachable_check ?exact_budget p =
  let t = analyze ?exact_budget p in
  if t.degraded then
    (* Lint.run over the same budget yields the matching B1 report
       without starting its own full-space pass. *)
    (Lint.run ?allow ?reachable_check ?exact_budget p, t)
  else
    let infos = List.map (fun f -> f.info) t.facts in
    let report =
      Lint.run ?allow ?reachable_check ?exact_budget ~infos
        ~init_dead:(init_dead t) p
    in
    (Lint.merge report (supplemental t), t)

(* ---- rendering ---- *)

let pp_state layout fmt (sigma : Dom.t array) =
  let items = ref [] in
  for i = Layout.num_vars layout - 1 downto 0 do
    if Layout.dom layout i > 1 then
      items :=
        Fmt.str "%s=%a" (Layout.var_name layout i) Dom.pp sigma.(i) :: !items
  done;
  Fmt.pf fmt "{%s}" (String.concat " " !items)

let pp_summary fmt t =
  if t.degraded then
    Fmt.pf fmt "%s: degraded (%d states over budget)@."
      (Program.name t.program) t.num_states
  else begin
    let dead_top =
      List.length (List.filter (fun f -> not f.top_enabled) t.facts)
    in
    let dead_init =
      List.length
        (List.filter (fun f -> f.init_enabled = Some false) t.facts)
    in
    Fmt.pf fmt
      "%s: %d action(s), %d dead (full space), %d dead from init, %d \
       finding(s), init fixpoint in %d round(s)%s@."
      (Program.name t.program) (List.length t.facts) dead_top dead_init
      (List.length t.findings) t.init_rounds
      (if t.init_sound then "" else " [init claims suppressed]")
  end
