(* Slot write-dependency condensation and layering; see rank.mli. *)

open Cr_guarded
open Cr_lint

type t = {
  num_slots : int;
  edges : (int * int) list;
  self_deps : int list;
  comp_of : int array;
  components : int array array;
  layer_of : int array;
  layers : int array array;
  acyclic : bool;
}

let of_flow (fl : Flow.t) : t option =
  if fl.Flow.degraded then None
  else
    Cr_obs.Obs.span "lint.flow.rank" @@ fun () ->
    let nv = Layout.num_vars fl.Flow.layout in
    let edge_set = Hashtbl.create 64 in
    let selfs = Hashtbl.create 8 in
    List.iter
      (fun fact ->
        if fact.Flow.top_enabled then
          let info = fact.Flow.info in
          let reads = Rwsets.reads info in
          List.iter
            (fun w ->
              List.iter
                (fun r ->
                  if r = w then Hashtbl.replace selfs w ()
                  else Hashtbl.replace edge_set (r, w) ())
                reads)
            info.Rwsets.writes)
      fl.Flow.facts;
    let edges =
      List.sort compare (Hashtbl.fold (fun e () acc -> e :: acc) edge_set [])
    in
    let self_deps =
      List.sort compare (Hashtbl.fold (fun s () acc -> s :: acc) selfs [])
    in
    (* Condense with the checker's Tarjan kernel (it ignores self-loops,
       which we track separately anyway). *)
    let succs = Array.make nv [] in
    List.iter (fun (r, w) -> succs.(r) <- w :: succs.(r)) edges;
    let adj = Array.map (fun l -> Array.of_list (List.rev l)) succs in
    let scc = Cr_checker.Scc.compute adj in
    let comp_of = scc.Cr_checker.Scc.component in
    let ncomp = scc.Cr_checker.Scc.count in
    let members = Array.make ncomp [] in
    for i = nv - 1 downto 0 do
      members.(comp_of.(i)) <- i :: members.(comp_of.(i))
    done;
    let components = Array.map Array.of_list members in
    (* Layer by longest path over the condensation DAG.  The DAG is tiny
       (≤ num_slots components), so a simple relax-until-stable loop is
       fine and independent of Tarjan's component numbering order. *)
    let layer_of = Array.make ncomp 0 in
    let comp_edges =
      List.sort_uniq compare
        (List.filter_map
           (fun (r, w) ->
             let cr = comp_of.(r) and cw = comp_of.(w) in
             if cr <> cw then Some (cr, cw) else None)
           edges)
    in
    let changed = ref true in
    while !changed do
      changed := false;
      List.iter
        (fun (cr, cw) ->
          if layer_of.(cw) < layer_of.(cr) + 1 then begin
            layer_of.(cw) <- layer_of.(cr) + 1;
            changed := true
          end)
        comp_edges
    done;
    let depth = 1 + Array.fold_left max 0 layer_of in
    let buckets = Array.make depth [] in
    for c = ncomp - 1 downto 0 do
      buckets.(layer_of.(c)) <- c :: buckets.(layer_of.(c))
    done;
    let layers = Array.map Array.of_list buckets in
    let acyclic =
      Array.for_all (fun comp -> Array.length comp <= 1) components
    in
    Some
      {
        num_slots = nv;
        edges;
        self_deps;
        comp_of;
        components;
        layer_of;
        layers;
        acyclic;
      }

let depth t = Array.length t.layers

let pp layout fmt t =
  Array.iteri
    (fun l comps ->
      let render c =
        let slots = t.components.(c) in
        let names =
          String.concat " "
            (Array.to_list (Array.map (Layout.var_name layout) slots))
        in
        if Array.length slots > 1 then Printf.sprintf "{%s}*" names
        else names
      in
      Fmt.pf fmt "  layer %d: %s@." l
        (String.concat " " (Array.to_list (Array.map render comps))))
    t.layers
