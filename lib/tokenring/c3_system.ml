(* The new 3-state system of Section 6.

   C3 uses the same mod-3 mapping as Section 5 but implements token moves
   the other way around: a mid process *creates* the moved token by
   writing its own counter (c.j := c.(j+1) ⊕ 1 for an up-move), instead of
   deleting its own token as C2 does.  In illegitimate states this can
   leave the old token in place (the paper's τ-step stuttering: the
   assignment may be a no-op on the abstract image, or even on the
   concrete state itself, in which case it generates no transition).

   The module also provides the "aggressive W2'" variant from the end of
   Section 6, which the paper refines into Dijkstra's 3-state system. *)

open Cr_guarded

type state = Layout.state

let layout = Btr3.layout
let c = Btr3.c
let p1 = Btr3.p1
let has_up = Btr3.has_up
let has_dn = Btr3.has_dn
let to_tokens = Btr3.to_tokens
let alpha = Btr3.alpha
let initial = Btr3.one_token
let canonical = Btr3.canonical

let mid_indices n = List.init (max 0 (n - 1)) (fun k -> k + 1)

let c3_actions n =
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_up n s j)
            ~effect:(fun s ->
              (* create ↑t.(j+1) ≡ c.j = c.(j+1) ⊕ 1 *)
              Action.set s [ (j, p1 (c s (j + 1))) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_dn n s j)
            ~effect:(fun s ->
              (* create ↓t.(j-1) ≡ c.j = c.(j-1) ⊕ 1 *)
              Action.set s [ (j, p1 (c s (j - 1))) ])
            ();
        ])
      (mid_indices n)
  in
  Btr3.top_action n :: Btr3.bottom_action n :: mids

let c3 n =
  Program.make ~name:(Printf.sprintf "C3(%d)" n) ~layout:(layout n)
    ~actions:(c3_actions n) ~initial:(initial n)
  |> Program.with_initial_closure ~seeds:[ canonical n ]

(* The new 3-state stabilizing system: C3 [] W1'' [] W2' (Theorem 13). *)
let new3 n =
  Program.box_list
    ~name:(Printf.sprintf "C3[]W1''[]W2'(%d)" n)
    (c3 n)
    [ Btr3.w1_local n; Btr3.w2' n ]

let new3_priority n =
  let wrappers =
    Program.box ~name:"W1''[]W2'" (Btr3.w1_local n) (Btr3.w2' n)
  in
  Program.box_priority
    ~name:(Printf.sprintf "C3[]!(W1''[]W2')(%d)" n)
    (c3 n) wrappers

(* End of Section 6: the aggressive-W2' variant — ↑t.j is deleted when
   ↑t.(j+1) also holds, and ↓t.j when ↓t.(j-1) also holds — merged into
   the mid actions as displayed in the paper. *)
let aggressive_actions n =
  let top =
    Action.make ~label:"top" ~proc:n ~writes:[ n ]
      ~guard:(fun s -> c s (n - 1) = c s 0 && p1 (c s (n - 1)) <> c s n)
      ~effect:(fun s -> Action.set s [ (n, p1 (c s (n - 1))) ])
      ()
  in
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_up n s j)
            ~effect:(fun s ->
              if c s (j - 1) = c s (j + 1) then
                Action.set s [ (j, c s (j - 1)) ]
              else if c s j = p1 (c s (j + 1)) then
                Action.set s [ (j, c s (j - 1)) ]
              else Action.set s [ (j, p1 (c s (j + 1))) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_dn n s j)
            ~effect:(fun s ->
              if c s (j - 1) = c s (j + 1) then
                Action.set s [ (j, c s (j + 1)) ]
              else if c s j = p1 (c s (j - 1)) then
                Action.set s [ (j, c s (j + 1)) ]
              else Action.set s [ (j, p1 (c s (j - 1))) ])
            ();
        ])
      (mid_indices n)
  in
  top :: Btr3.bottom_action n :: mids

let aggressive n =
  Program.make
    ~name:(Printf.sprintf "C3-aggressive(%d)" n)
    ~layout:(layout n) ~actions:(aggressive_actions n) ~initial:(initial n)
  |> Program.with_initial_closure ~seeds:[ canonical n ]
