(** The abstract unidirectional token ring UTR and its wrappers — the
    reconstructed starting point of the K-state derivation from the
    paper's full version (DESIGN.md, E11). *)

open Cr_guarded

type state = Layout.state

val layout : int -> Layout.t
val has_token : state -> int -> bool
val token_count : state -> int
val tokens : state -> int list
val invariant : state -> bool
val state_of_tokens : int -> int list -> state
val succ_proc : int -> int -> int

val program : int -> Program.t
(** UTR: a token at [j] moves to [j+1 mod (n+1)]. *)

val w1u : int -> Program.t
(** Creation wrapper: a token appears at process 0 when the ring is
    empty. *)

val w2u : int -> Program.t
(** Deletion wrapper: adjacent tokens merge or cancel pairwise. *)

val wrapped : int -> Program.t
val wrapped_priority : int -> Program.t * (Action.t -> bool)
