(** The 3-state implementation of BTR (paper, Section 5): the abstract
    BTR_3, the wrappers W1'/W1''/W2', the concrete C2, and Dijkstra's
    3-state token ring. *)

open Cr_guarded

type state = Layout.state

val layout : int -> Layout.t
(** One mod-3 counter [c.j] per process. *)

val c : state -> int -> int
val p1 : int -> int
(** ⊕1 (mod 3) *)

val m1 : int -> int
(** ⊖1 (mod 3) *)

val has_up : int -> state -> int -> bool
(** ↑t.j ≡ c.(j-1) = c.j ⊕ 1 *)

val has_dn : int -> state -> int -> bool
(** ↓t.j ≡ c.(j+1) = c.j ⊕ 1 *)

val to_tokens : int -> state -> Btr.state
val alpha : int -> (state, Btr.state) Cr_semantics.Abstraction.t
val token_count : int -> state -> int

val one_token : int -> state -> bool
(** States mapping to a unique token. *)

val canonical : int -> state
(** Canonical legitimate configuration (image: ↑t.1); the concrete
    systems' initial states are its reachability orbit. *)

val top_action : int -> Action.t
(** [c.(N-1) = c.N⊕1 → c.N := c.(N-1)⊕1] — shared by BTR_3, C2, C3. *)

val bottom_action : int -> Action.t
(** [c.1 = c.0⊕1 → c.0 := c.1⊕1] — shared by all 3-state systems. *)

val btr3 : int -> Program.t
(** BTR_3: the mapped system in the abstract execution model (mid
    processes write a neighbour's counter when passing a token). *)

val w1_global : int -> Program.t
(** W1': the mapped creation wrapper (global guard). *)

val w1_local : int -> Program.t
(** W1'': the local approximation of W1' at process N
    ([c.(N-1) = c.0 ∧ c.N ≠ c.(N-1)⊕1 → c.N := c.(N-1)⊕1]). *)

val w2' : int -> Program.t
(** W2': co-located token pairs are deleted ([c.j := c.(j-1)]). *)

val c2 : int -> Program.t
(** C2: the concrete-model refinement of BTR_3 (Section 5.2). *)

val dijkstra3 : int -> Program.t
(** Dijkstra's 3-state stabilizing token ring (final display of
    Section 5.2). *)

val merged : int -> Program.t
(** The pre-simplification merged display of (C2 [] W1'' [] W2');
    mechanically equal to {!dijkstra3} (checked in the test suite). *)

val btr3_wrapped : int -> Program.t
(** (BTR_3 [] W1'' [] W2'), union semantics — Lemma 9's subject. *)

val c2_wrapped : int -> Program.t
(** (C2 [] W1'' [] W2'), union semantics — Lemma 10 / Theorem 11. *)

val btr3_wrapped_priority : int -> Program.t * (Action.t -> bool)
val c2_wrapped_priority : int -> Program.t * (Action.t -> bool)
