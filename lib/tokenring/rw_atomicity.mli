(** Read/write atomicity refinement of Dijkstra's 3-state ring (extension
    experiment E17): neighbour counters are first copied into local caches
    by separate atomic reads, and the ring actions run on the (possibly
    stale) caches.  See the implementation commentary for the expected
    verdicts. *)

open Cr_guarded

type state = Layout.state

val layout : int -> Layout.t
val c : state -> int -> int
val cp : int -> state -> int -> int
(** cached copy of the left neighbour's counter, at j in 1..n *)

val cn : int -> state -> int -> int
(** cached copy of the right neighbour's counter, at j in 0..n-1 *)

val ca0 : int -> state -> int
(** the top process's cached copy of c.0 *)

val to_counters : int -> state -> Btr3.state
val alpha_counters : int -> (state, Btr3.state) Cr_semantics.Abstraction.t
val to_tokens : int -> state -> Btr.state
val alpha : int -> (state, Btr.state) Cr_semantics.Abstraction.t

val canonical : int -> state
(** Dijkstra-3's canonical configuration with coherent caches. *)

val program : int -> Program.t
(** Initial states: the reachability orbit of {!canonical}. *)

val coherent : int -> state -> bool
(** All caches agree with the counters they mirror. *)
