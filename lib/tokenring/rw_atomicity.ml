(* Atomicity refinement of Dijkstra's 3-state ring (extension experiment
   E17; cf. the paper's Section 7 discussion of atomicity-refinement work
   [3,10] and its closing remark on refinement tools for common fault
   classes).

   The paper's concrete execution model still lets a process *read* both
   neighbours and write its own state in one atomic step.  Real message-
   passing systems cannot: a process first copies a neighbour's counter
   into a local cache and later acts on the (possibly stale) cache.  This
   module implements that read/write refinement of Dijkstra's 3-state
   system:

     read_prev.j : cp.j := c.(j-1)       (one atomic neighbour read)
     read_next.j : cn.j := c.(j+1)
     act.j       : the Dijkstra-3 action of process j, with c.(j-1)/c.(j+1)
                   replaced by cp.j/cn.j in guard and assignment.

   Per process we add caches only for the neighbours its action actually
   reads: bottom caches c.1; top caches c.(N-1) and c.0; mids cache both
   neighbours.  The abstraction back to the 3-state space forgets the
   caches.

   Expected results (asserted in the test suite, reported in the bench
   tables): the read/write system is NOT stabilizing to BTR under an
   unconstrained daemon — stale caches let a process act on a token that
   has already moved, re-creating tokens forever — but every
   reachable-from-initial behaviour still refines Dijkstra-3 modulo
   stuttering (the reads are τ-steps).  This reproduces, in the small,
   why the paper calls low-atomicity stabilization-preserving refinement
   an open problem for compilers. *)

open Cr_guarded

type state = Layout.state

(* Layout: slots 0..n are c_j; then caches in a fixed order:
   cp_j for j in 1..n (cache of c.(j-1)), cn_j for j in 0..n-1 (cache of
   c.(j+1)), and ca_0 at the top process caching c.0. *)
let layout n =
  Btr.check_n n;
  let cs = List.init (n + 1) (fun j -> (Printf.sprintf "c%d" j, 3)) in
  let cps = List.init n (fun i -> (Printf.sprintf "cp%d" (i + 1), 3)) in
  let cns = List.init n (fun j -> (Printf.sprintf "cn%d" j, 3)) in
  let ca = [ ("ca0", 3) ] in
  Layout.make (cs @ cps @ cns @ ca)

let c (s : state) j = s.(j)
let cp_slot n j = n + 1 + (j - 1) (* j in 1..n *)
let cn_slot n j = n + 1 + n + j (* j in 0..n-1 *)
let ca0_slot n = n + 1 + n + n

let cp n (s : state) j = s.(cp_slot n j)
let cn n (s : state) j = s.(cn_slot n j)
let ca0 n (s : state) = s.(ca0_slot n)

let p1 = Btr3.p1

(* Forget the caches. *)
let to_counters n (s : state) : Btr3.state = Array.sub s 0 (n + 1)

let alpha_counters n =
  Cr_semantics.Abstraction.make
    ~name:(Printf.sprintf "forget-caches(%d)" n)
    (to_counters n)

let to_tokens n (s : state) : Btr.state = Btr3.to_tokens n (to_counters n s)

let alpha n =
  Cr_semantics.Abstraction.make
    ~name:(Printf.sprintf "alpha3-rw(%d)" n)
    (to_tokens n)

let actions n =
  let reads =
    List.concat
      [
        (* every j in 1..n caches its left neighbour *)
        List.init n (fun i ->
            let j = i + 1 in
            Action.make
              ~label:(Printf.sprintf "read_prev%d" j)
              ~proc:j
              ~writes:[ cp_slot n j ]
              ~guard:(fun s -> cp n s j <> c s (j - 1))
              ~effect:(fun s -> Action.set s [ (cp_slot n j, c s (j - 1)) ])
              ());
        (* every j in 0..n-1 caches its right neighbour *)
        List.init n (fun j ->
            Action.make
              ~label:(Printf.sprintf "read_next%d" j)
              ~proc:j
              ~writes:[ cn_slot n j ]
              ~guard:(fun s -> cn n s j <> c s (j + 1))
              ~effect:(fun s -> Action.set s [ (cn_slot n j, c s (j + 1)) ])
              ());
        (* the top process also caches c.0 *)
        [
          Action.make ~label:"read_zero" ~proc:n
            ~writes:[ ca0_slot n ]
            ~guard:(fun s -> ca0 n s <> c s 0)
            ~effect:(fun s -> Action.set s [ (ca0_slot n, c s 0) ])
            ();
        ];
      ]
  in
  let top =
    Action.make ~label:"top" ~proc:n ~writes:[ n ]
      ~guard:(fun s -> cp n s n = ca0 n s && p1 (cp n s n) <> c s n)
      ~effect:(fun s -> Action.set s [ (n, p1 (cp n s n)) ])
      ()
  in
  let bottom =
    Action.make ~label:"bottom" ~proc:0 ~writes:[ 0 ]
      ~guard:(fun s -> cn n s 0 = p1 (c s 0))
      ~effect:(fun s -> Action.set s [ (0, p1 (cn n s 0)) ])
      ()
  in
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> cp n s j = p1 (c s j))
            ~effect:(fun s -> Action.set s [ (j, cp n s j) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> cn n s j = p1 (c s j))
            ~effect:(fun s -> Action.set s [ (j, cn n s j) ])
            ();
        ])
      (List.init (max 0 (n - 1)) (fun k -> k + 1))
  in
  reads @ (top :: bottom :: mids)

(* Canonical state: Dijkstra-3's canonical counters with coherent caches. *)
let canonical n : state =
  let counters = Btr3.canonical n in
  let s = Array.make (Layout.num_vars (layout n)) 0 in
  Array.blit counters 0 s 0 (n + 1);
  for j = 1 to n do
    s.(cp_slot n j) <- counters.(j - 1)
  done;
  for j = 0 to n - 1 do
    s.(cn_slot n j) <- counters.(j + 1)
  done;
  s.(ca0_slot n) <- counters.(0);
  s

let program n =
  Program.make
    ~name:(Printf.sprintf "Dijkstra3-rw(%d)" n)
    ~layout:(layout n) ~actions:(actions n)
    ~initial:(fun _ -> false)
  |> Program.with_initial_closure ~seeds:[ canonical n ]

(* Coherence: do the caches agree with the counters they mirror? *)
let coherent n (s : state) =
  let ok = ref true in
  for j = 1 to n do
    if cp n s j <> c s (j - 1) then ok := false
  done;
  for j = 0 to n - 1 do
    if cn n s j <> c s (j + 1) then ok := false
  done;
  if ca0 n s <> c s 0 then ok := false;
  !ok
