(* The mutual-exclusion service view of the token rings.

   Dijkstra's systems are mutual-exclusion protocols: holding a token is
   the privilege to act.  Beyond stabilization, the service guarantees
   are:

   - safety   : in converged behaviour, at most one process is privileged;
   - liveness : in converged behaviour, every process is privileged (and
     acts) infinitely often;
   - I4       : the paper's fourth invariant — the token alternates
     direction, i.e. along the legitimate cycle each process's up-token
     and down-token events occur equally often.

   On finite systems converged behaviour is the set of states/edges inside
   the Good region, which for all our rings is a single cycle per
   "colour class"; the checks below are exact. *)

open Cr_guarded

type verdict = {
  safety : bool;  (* <= 1 privileged process in every Good state *)
  liveness : bool;  (* every process acts on every Good cycle *)
  processes : int;
}

(* Which process "acts" on a transition: the unique process whose
   variables changed (token-ring actions write one process's state in the
   concrete systems; for abstract systems with neighbour writes we use
   the acting process of the generating action instead). *)
let acting_process (p : Program.t) s s' =
  List.find_map
    (fun a ->
      match Action.fire a s with
      | Some t when t = s' -> Some (Action.proc a)
      | _ -> None)
    (Program.actions p)

let check ~(privileged : Layout.state -> int -> bool) ~(num_procs : int)
    (p : Program.t) ~(good : bool array)
    (e : Layout.state Cr_semantics.Explicit.t) : verdict =
  let n = Cr_semantics.Explicit.num_states e in
  (* safety *)
  let safety = ref true in
  for i = 0 to n - 1 do
    if good.(i) then begin
      let s = Cr_semantics.Explicit.state e i in
      let count = ref 0 in
      for j = 0 to num_procs - 1 do
        if privileged s j then incr count
      done;
      if !count > 1 then safety := false
    end
  done;
  (* liveness: in the Good subgraph, every nontrivial SCC must contain an
     acting edge for every process (each process acts on every recurrent
     behaviour) *)
  let restricted =
    Cr_kernel.Csr.restrict
      (Cr_checker.Reach.of_explicit e)
      (Cr_kernel.Bitset.of_bool_array good)
  in
  let scc = Cr_checker.Scc.compute_csr restricted in
  let members = Array.make scc.Cr_checker.Scc.count [] in
  for i = n - 1 downto 0 do
    if good.(i) then begin
      let c = scc.Cr_checker.Scc.component.(i) in
      members.(c) <- i :: members.(c)
    end
  done;
  let liveness = ref true in
  Array.iteri
    (fun c states ->
      if scc.Cr_checker.Scc.sizes.(c) >= 2 then begin
        let actors = Array.make num_procs false in
        List.iter
          (fun i ->
            Cr_kernel.Csr.iter_row restricted i (fun j ->
                if scc.Cr_checker.Scc.component.(j) = c then
                  match
                    acting_process p
                      (Cr_semantics.Explicit.state e i)
                      (Cr_semantics.Explicit.state e j)
                  with
                  | Some pr when pr >= 0 && pr < num_procs -> actors.(pr) <- true
                  | _ -> ()))
          states;
        if not (Array.for_all (fun b -> b) actors) then liveness := false
      end)
    members;
  { safety = !safety; liveness = !liveness; processes = num_procs }

(* I4 for BTR: on every legitimate cycle, each middle process receives the
   token from below (↑t.j) and from above (↓t.j) equally often.  We count
   token events along each Good cycle. *)
let i4_equal_frequency n (p : Program.t)
    ~(to_tokens : Layout.state -> Btr.state) ~(good : bool array)
    (e : Layout.state Cr_semantics.Explicit.t) : bool =
  ignore p;
  let num = Cr_semantics.Explicit.num_states e in
  let restricted =
    Cr_kernel.Csr.restrict
      (Cr_checker.Reach.of_explicit e)
      (Cr_kernel.Bitset.of_bool_array good)
  in
  let scc = Cr_checker.Scc.compute_csr restricted in
  let members = Array.make scc.Cr_checker.Scc.count [] in
  for i = num - 1 downto 0 do
    if good.(i) then begin
      let c = scc.Cr_checker.Scc.component.(i) in
      members.(c) <- i :: members.(c)
    end
  done;
  let ok = ref true in
  Array.iteri
    (fun c states ->
      if scc.Cr_checker.Scc.sizes.(c) >= 2 then begin
        (* count, over all edges of the SCC, appearances of fresh ↑t.j and
           ↓t.j (token arriving at j); on a deterministic legitimate cycle
           every edge is traversed once per round *)
        let ups = Array.make (n + 1) 0 and dns = Array.make (n + 1) 0 in
        List.iter
          (fun i ->
            Cr_kernel.Csr.iter_row restricted i (fun j ->
                if scc.Cr_checker.Scc.component.(j) = c then begin
                  let before = to_tokens (Cr_semantics.Explicit.state e i) in
                  let after = to_tokens (Cr_semantics.Explicit.state e j) in
                  for pr = 0 to n do
                    if Btr.up n after pr && not (Btr.up n before pr) then
                      ups.(pr) <- ups.(pr) + 1;
                    if Btr.dn n after pr && not (Btr.dn n before pr) then
                      dns.(pr) <- dns.(pr) + 1
                  done
                end))
          states;
        (* middle processes must receive from both directions equally *)
        for pr = 1 to n - 1 do
          if ups.(pr) <> dns.(pr) then ok := false
        done
      end)
    members;
  !ok
