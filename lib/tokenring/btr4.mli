(** The 4-state solution of the BTR problem (paper, Section 4): the
    concrete system C1, Dijkstra's 4-state token ring, and the Section 4
    mapping as an abstraction function into {!Btr} token states. *)

open Cr_guarded

type state = Layout.state

val layout : int -> Layout.t
(** Per process: a boolean [c.j] and a boolean [up.j]; [up.0 = true] and
    [up.N = false] are pinned. *)

val c : int -> state -> int -> int
val up : int -> state -> int -> bool

val to_tokens : int -> state -> Btr.state
(** The Section 4 mapping from (c, up) states to token states. *)

val alpha : int -> (state, Btr.state) Cr_semantics.Abstraction.t

val token_count : int -> state -> int

val one_token : int -> state -> bool
(** States mapping to a unique token. *)

val canonical : int -> state
(** Canonical legitimate configuration (image: the token ↓t.(N-1)); the
    concrete systems' initial states are its reachability orbit. *)

val c1 : int -> Program.t
(** The paper's C1: refinement of BTR_4 to the concrete execution model
    (own-state writes only).  Lemma 7: [C1 ⪯ BTR]. *)

val dijkstra4 : int -> Program.t
(** Dijkstra's 4-state stabilizing ring — (C1 [] W1' [] W2') with relaxed
    guards (end of Section 4). *)

val w1'_guard : int -> state -> bool

val w1'_vacuous : int -> state -> bool
(** Section 4.1: W1' is trivial — wherever its guard holds, ↑t.N already
    holds.  True at every state. *)

val w2'_vacuous : int -> state -> bool
(** Section 4.1: W2' is trivial — no state maps to both ↑t.j and ↓t.j at
    one process.  True at every state. *)
