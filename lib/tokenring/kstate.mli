(** Dijkstra's K-state token ring (unidirectional), with the token-level
    abstraction into {!Utr} states.  Self-stabilizing iff K > N. *)

open Cr_guarded

type state = Layout.state

val layout : n:int -> k:int -> Layout.t
val c : state -> int -> int
val has_token : int -> state -> int -> bool
val to_tokens : int -> state -> Utr.state
val alpha : n:int -> k:int -> (state, Utr.state) Cr_semantics.Abstraction.t
val token_count : int -> state -> int
val initial : int -> state -> bool
val program : n:int -> k:int -> Program.t
