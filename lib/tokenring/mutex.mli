(** The mutual-exclusion service view of the token rings: safety (at most
    one privilege), liveness (every process acts infinitely often in
    converged behaviour), and the paper's I4 (equal token-direction
    frequency), all decided exactly on the Good region. *)

open Cr_guarded

type verdict = { safety : bool; liveness : bool; processes : int }

val acting_process :
  Program.t -> Layout.state -> Layout.state -> int option
(** The process of an action generating this transition. *)

val check :
  privileged:(Layout.state -> int -> bool) ->
  num_procs:int ->
  Program.t ->
  good:bool array ->
  Layout.state Cr_semantics.Explicit.t ->
  verdict

val i4_equal_frequency :
  int ->
  Program.t ->
  to_tokens:(Layout.state -> Btr.state) ->
  good:bool array ->
  Layout.state Cr_semantics.Explicit.t ->
  bool
(** I4 on every Good cycle: middle processes receive ↑ and ↓ tokens
    equally often. *)
