(** ASCII rendering of ring configurations for traces and examples. *)

val tokens_line : int -> Btr.state -> string
(** e.g. ["[0] [1↑] [2↓] [3]"]. *)

val counters3_line : int -> Btr3.state -> string
(** Mod-3 counters with token decorations, e.g. ["[0:2↑] [1:1] ..."]. *)

val utr_line : Utr.state -> string
