(** The abstract bidirectional token ring BTR (paper, Section 3) and its
    stabilization wrappers W1 (token creation) and W2 (token deletion).

    Processes are [0..n]; [n] is the top process, [0] the bottom.  The
    state records, per process, the paper's tokens ↑t.j and ↓t.j. *)

open Cr_guarded

type state = Layout.state

val min_ring : int

val check_n : int -> unit
(** Raises [Invalid_argument] when the ring is too small. *)

val layout : int -> Layout.t
(** Shared layout of all token-level ring systems of size [n]. *)

val up_slot : int -> int -> int
val dn_slot : int -> int -> int

val up : int -> state -> int -> bool
(** [up n s j] — does [j] hold ↑t.j?  Always false for [j = 0]
    (undefined in the paper). *)

val dn : int -> state -> int -> bool
(** [dn n s j] — does [j] hold ↓t.j?  Always false for [j = n]. *)

val token_count : int -> state -> int

type token = Up of int | Down of int

val tokens : int -> state -> token list
val pp_token : Format.formatter -> token -> unit

val state_of_tokens : int -> token list -> state

val invariant_i1 : int -> state -> bool
(** I1: at least one token exists. *)

val invariant_i2_i3 : int -> state -> bool
(** I2 /\ I3: at most one token exists. *)

val invariant : int -> state -> bool
(** I: a unique token exists (the initial states of BTR). *)

val actions : int -> Action.t list

val program : int -> Program.t
(** BTR itself: fault-intolerant abstract bidirectional ring. *)

val w1 : int -> Program.t
(** W1: ensures I1 — creates ↑t.N when no other process holds a token. *)

val w2 : int -> Program.t
(** W2: ensures eventually I2 /\ I3 — a process holding both ↑t.j and
    ↓t.j deletes both. *)

val wrapped : int -> Program.t
(** (BTR [] W1 [] W2), plain union semantics. *)

val wrapped_priority : int -> Program.t * (Action.t -> bool)
(** (BTR [] W1 [] W2) with preemptive wrapper semantics; pass the
    predicate to {!Program.to_explicit} as [priority_of]. *)
