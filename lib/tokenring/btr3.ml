(* The 3-state implementation of BTR (Section 5 of the paper).

   Every process j has a mod-3 counter c.j.  The mapping (abstraction
   function alpha3) to BTR token states:

     ↑t.j ≡ c.(j-1) = c.j ⊕ 1      (1 <= j <= N)
     ↓t.j ≡ c.(j+1) = c.j ⊕ 1      (0 <= j <= N-1)

   with ⊕/⊖ addition/subtraction mod 3.  Unlike the 4-state mapping, a
   process here can map to both ↑t.j and ↓t.j, so the deletion wrapper W2'
   is not vacuous.

   This module provides:
   - [btr3]      : the abstract-model system BTR_3 (neighbour writes);
   - [w1_global] : W1', the mapped (still global) creation wrapper;
   - [w1_local]  : W1'', its local approximation at process N;
   - [w2']       : the mapped deletion wrapper;
   - [c2]        : the concrete refinement of BTR_3 (own-state writes);
   - [dijkstra3] : Dijkstra's 3-state system (the paper's final display);
   - [merged]    : the pre-simplification merged display of Section 5.2
                   (with the if-then-else mid actions), used to check the
                   paper's claim that it equals [dijkstra3]. *)

open Cr_guarded

type state = Layout.state

let layout n =
  Btr.check_n n;
  Layout.make (List.init (n + 1) (fun j -> (Printf.sprintf "c%d" j, 3)))

let c (s : state) j = s.(j)

let p1 v = (v + 1) mod 3 (* ⊕ 1 *)
let m1 v = (v + 2) mod 3 (* ⊖ 1 *)

let has_up n s j = j >= 1 && j <= n && c s (j - 1) = p1 (c s j)
let has_dn n s j = j >= 0 && j <= n - 1 && c s (j + 1) = p1 (c s j)

let to_tokens n (s : state) : Btr.state =
  let ts = ref [] in
  for j = 1 to n do
    if has_up n s j then ts := Btr.Up j :: !ts
  done;
  for j = 0 to n - 1 do
    if has_dn n s j then ts := Btr.Down j :: !ts
  done;
  Btr.state_of_tokens n !ts

let alpha n =
  Cr_semantics.Abstraction.make ~name:(Printf.sprintf "alpha3(%d)" n)
    (to_tokens n)

let token_count n s = Btr.token_count n (to_tokens n s)

let one_token n s = token_count n s = 1

(* Canonical legitimate configuration: c.0 = 1, the rest 0 — the single
   token ↑t.1.  Concrete systems take their initial states to be its
   reachability orbit. *)
let canonical n : state =
  let s = Array.make (n + 1) 0 in
  s.(0) <- 1;
  s

(* Shared ring-end actions: the top and bottom actions are identical in
   BTR_3, C2, C3 and Dijkstra's 3-state system. *)
let top_action n =
  Action.make ~label:"top" ~proc:n ~writes:[ n ]
    ~guard:(fun s -> c s (n - 1) = p1 (c s n))
    ~effect:(fun s -> Action.set s [ (n, p1 (c s (n - 1))) ])
    ()

let bottom_action _n =
  Action.make ~label:"bottom" ~proc:0 ~writes:[ 0 ]
    ~guard:(fun s -> c s 1 = p1 (c s 0))
    ~effect:(fun s -> Action.set s [ (0, p1 (c s 1)) ])
    ()

let mid_indices n = List.init (max 0 (n - 1)) (fun k -> k + 1)

(* BTR_3: the abstract-model system.  A mid process passing a token also
   writes its neighbour's counter so that the moved token is created
   unconditionally, exactly as BTR's abstract action does. *)
let btr3_actions n =
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j
            ~writes:[ j; j + 1 ]
            ~guard:(fun s -> has_up n s j)
            ~effect:(fun s ->
              (* ↑t.j := false via c.j := c.(j-1); ↑t.(j+1) := true via
                 c.(j+1) := c.j_new ⊖ 1. *)
              Action.set s [ (j, c s (j - 1)); (j + 1, m1 (c s (j - 1))) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j
            ~writes:[ j; j - 1 ]
            ~guard:(fun s -> has_dn n s j)
            ~effect:(fun s ->
              Action.set s [ (j, c s (j + 1)); (j - 1, m1 (c s (j + 1))) ])
            ();
        ])
      (mid_indices n)
  in
  top_action n :: bottom_action n :: mids

let btr3 n =
  Program.make ~name:(Printf.sprintf "BTR3(%d)" n) ~layout:(layout n)
    ~actions:(btr3_actions n) ~initial:(one_token n)

(* W1' (Section 5.1): the mapped creation wrapper — still global, since
   its guard inspects every process. *)
let w1_global n =
  let guard s =
    (* no token at any j <> N: all of c.0..c.(N-1) equal and no ↓t.(N-1) *)
    let all_eq = ref true in
    for j = 1 to n - 1 do
      if c s j <> c s 0 then all_eq := false
    done;
    !all_eq && c s n <> p1 (c s (n - 1))
  in
  (* ↑t.N := true, i.e. c.(N-1) = c.N ⊕ 1, i.e. c.N := c.(N-1) ⊖ 1. *)
  let action =
    Action.make ~label:"W1'" ~proc:n ~writes:[ n ] ~guard
      ~effect:(fun s -> Action.set s [ (n, m1 (c s (n - 1))) ])
      ()
  in
  Program.make ~name:"W1'" ~layout:(layout n) ~actions:[ action ]
    ~initial:(one_token n)

(* W1'' (Section 5.1): the local approximation at process N.  Note its
   effect is the paper's c.N := c.(N-1) ⊕ 1 — at token level this creates
   ↓t.(N-1) directly (the compression of W1 followed by the top action). *)
let w1_local n =
  let action =
    Action.make ~label:"W1''" ~proc:n ~writes:[ n ]
      ~guard:(fun s -> c s (n - 1) = c s 0 && c s n <> p1 (c s (n - 1)))
      ~effect:(fun s -> Action.set s [ (n, p1 (c s (n - 1))) ])
      ()
  in
  Program.make ~name:"W1''" ~layout:(layout n) ~actions:[ action ]
    ~initial:(one_token n)

(* W2' (Section 5.1): delete a co-located token pair. *)
let w2' n =
  let acts =
    List.map
      (fun j ->
        Action.make
          ~label:(Printf.sprintf "W2'_%d" j)
          ~proc:j ~writes:[ j ]
          ~guard:(fun s -> has_up n s j && has_dn n s j)
          ~effect:(fun s -> Action.set s [ (j, c s (j - 1)) ])
          ())
      (mid_indices n)
  in
  Program.make ~name:"W2'" ~layout:(layout n) ~actions:acts
    ~initial:(one_token n)

(* C2 (Section 5.2): refinement of BTR_3 to the concrete model — the
   neighbour-writing clauses are commented out. *)
let c2_actions n =
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_up n s j)
            ~effect:(fun s -> Action.set s [ (j, c s (j - 1)) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_dn n s j)
            ~effect:(fun s -> Action.set s [ (j, c s (j + 1)) ])
            ();
        ])
      (mid_indices n)
  in
  top_action n :: bottom_action n :: mids

let c2 n =
  Program.make ~name:(Printf.sprintf "C2(%d)" n) ~layout:(layout n)
    ~actions:(c2_actions n) ~initial:(one_token n)
  |> Program.with_initial_closure ~seeds:[ canonical n ]

(* Dijkstra's 3-state system, as displayed at the end of Section 5. *)
let dijkstra3_actions n =
  let top =
    Action.make ~label:"top" ~proc:n ~writes:[ n ]
      ~guard:(fun s -> c s (n - 1) = c s 0 && p1 (c s (n - 1)) <> c s n)
      ~effect:(fun s -> Action.set s [ (n, p1 (c s (n - 1))) ])
      ()
  in
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_up n s j)
            ~effect:(fun s -> Action.set s [ (j, c s (j - 1)) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_dn n s j)
            ~effect:(fun s -> Action.set s [ (j, c s (j + 1)) ])
            ();
        ])
      (mid_indices n)
  in
  top :: bottom_action n :: mids

let dijkstra3 n =
  Program.make
    ~name:(Printf.sprintf "Dijkstra3(%d)" n)
    ~layout:(layout n) ~actions:(dijkstra3_actions n)
    ~initial:(one_token n)
  |> Program.with_initial_closure ~seeds:[ canonical n ]

(* The merged display of Section 5.2 — (C2 [] W1'' [] W2') with W1''
   folded into the top guard and W2' into the mid actions as conditionals.
   The paper claims this system "is equal to Dijkstra's 3-state system". *)
let merged n =
  let top =
    Action.make ~label:"top" ~proc:n ~writes:[ n ]
      ~guard:(fun s -> c s (n - 1) = c s 0 && p1 (c s (n - 1)) <> c s n)
      ~effect:(fun s -> Action.set s [ (n, p1 (c s (n - 1))) ])
      ()
  in
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_up n s j)
            ~effect:(fun s ->
              if c s (j - 1) = c s (j + 1) then
                Action.set s [ (j, c s (j - 1)) ]
              else Action.set s [ (j, c s (j - 1)) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_dn n s j)
            ~effect:(fun s ->
              if c s (j - 1) = c s (j + 1) then
                Action.set s [ (j, c s (j - 1)) ]
              else Action.set s [ (j, c s (j + 1)) ])
            ();
        ])
      (mid_indices n)
  in
  Program.make ~name:(Printf.sprintf "merged3(%d)" n) ~layout:(layout n)
    ~actions:(top :: bottom_action n :: mids)
    ~initial:(one_token n)
  |> Program.with_initial_closure ~seeds:[ canonical n ]

(* Compositions used by Lemmas 9, 10 and Theorem 11. *)
let btr3_wrapped n =
  Program.box_list
    ~name:(Printf.sprintf "BTR3[]W1''[]W2'(%d)" n)
    (btr3 n) [ w1_local n; w2' n ]

let c2_wrapped n =
  Program.box_list
    ~name:(Printf.sprintf "C2[]W1''[]W2'(%d)" n)
    (c2 n) [ w1_local n; w2' n ]

let btr3_wrapped_priority n =
  let wrappers = Program.box ~name:"W1''[]W2'" (w1_local n) (w2' n) in
  Program.box_priority
    ~name:(Printf.sprintf "BTR3[]!(W1''[]W2')(%d)" n)
    (btr3 n) wrappers

let c2_wrapped_priority n =
  let wrappers = Program.box ~name:"W1''[]W2'" (w1_local n) (w2' n) in
  Program.box_priority
    ~name:(Printf.sprintf "C2[]!(W1''[]W2')(%d)" n)
    (c2 n) wrappers
