(** The new 3-state system of Section 6.

    C3 implements token moves by *creating* the moved token with an
    own-state write, stuttering in illegitimate states instead of
    compressing.  Lemma 12: [C3 ⪯ BTR]; Theorem 13: (C3 [] W1'' [] W2')
    is stabilizing to BTR. *)

open Cr_guarded

type state = Layout.state

val layout : int -> Layout.t
val c : state -> int -> int
val has_up : int -> state -> int -> bool
val has_dn : int -> state -> int -> bool
val to_tokens : int -> state -> Btr.state
val alpha : int -> (state, Btr.state) Cr_semantics.Abstraction.t
val initial : int -> state -> bool
val canonical : int -> state

val c3 : int -> Program.t
(** The bare C3 system (no wrappers). *)

val new3 : int -> Program.t
(** The new 3-state stabilizing system (C3 [] W1'' [] W2'), union
    semantics. *)

val new3_priority : int -> Program.t * (Action.t -> bool)
(** Same composition with preemptive wrapper semantics. *)

val aggressive : int -> Program.t
(** The end-of-Section-6 variant with the more aggressive W2' merged into
    the mid actions; the paper rewrites it into Dijkstra's 3-state
    system (checked mechanically in the test suite). *)
