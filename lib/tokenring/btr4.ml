(* The 4-state solution of the BTR problem (Section 4 of the paper).

   Every process j has two booleans c.j and up.j, with up.0 = true and
   up.N = false pinned.  The mapping (abstraction function alpha4) from
   (c, up) states to BTR token states is the one given in Section 4:

     ↑t.N ≡ c.N ≠ c.(N-1) ∧ up.(N-1)
     ↓t.0 ≡ c.0 = c.1    ∧ ¬up.1
     ↑t.j ≡ c.j ≠ c.(j-1) ∧ up.(j-1) ∧ ¬up.j     (0 < j < N)
     ↓t.j ≡ c.j = c.(j+1) ∧ ¬up.(j+1) ∧ up.j     (0 < j < N)

   The wrappers refine trivially: W1' is vacuous (its effect is implied by
   its guard) and W2' is vacuous because no (c, up) state maps to a state
   with both ↑t.j and ↓t.j at one process (↑t.j needs ¬up.j, ↓t.j needs
   up.j).  [C1] is the paper's concrete system (own-state writes only) and
   [dijkstra4] the guard-relaxed optimization, Dijkstra's 4-state ring. *)

open Cr_guarded

type state = Layout.state

(* Layout: slots 0..n are c_j; slots n+1..2n+1 are up_j (pinned at both
   ends). *)
let layout n =
  Btr.check_n n;
  let cs = List.init (n + 1) (fun j -> (Printf.sprintf "c%d" j, 2)) in
  let ups =
    List.init (n + 1) (fun j ->
        (Printf.sprintf "up%d" j, if j = 0 || j = n then 1 else 2))
  in
  Layout.make (cs @ ups)

let c_slot _n j = j
let up_slot n j = n + 1 + j

let c _n (s : state) j = s.(j)

let up n (s : state) j =
  if j = 0 then true else if j = n then false else s.(up_slot n j) = 1

(* The Section 4 mapping, as an abstraction function into Btr states. *)
let to_tokens n (s : state) : Btr.state =
  let ts = ref [] in
  if c n s n <> c n s (n - 1) && up n s (n - 1) then ts := Btr.Up n :: !ts;
  if c n s 0 = c n s 1 && not (up n s 1) then ts := Btr.Down 0 :: !ts;
  for j = 1 to n - 1 do
    if c n s j <> c n s (j - 1) && up n s (j - 1) && not (up n s j) then
      ts := Btr.Up j :: !ts;
    if c n s j = c n s (j + 1) && not (up n s (j + 1)) && up n s j then
      ts := Btr.Down j :: !ts
  done;
  Btr.state_of_tokens n !ts

let alpha n =
  Cr_semantics.Abstraction.make ~name:(Printf.sprintf "alpha4(%d)" n)
    (to_tokens n)

let token_count n s = Btr.token_count n (to_tokens n s)

let one_token n s = token_count n s = 1

(* Canonical legitimate configuration: all colours equal, every interior
   up flag raised — its image is the single token ↓t.(N-1).  The initial
   states of the concrete systems are its reachability orbit (the states
   fault-free executions range over); see DESIGN.md section 2. *)
let canonical n : state =
  let s = Array.make (2 * (n + 1)) 0 in
  for j = 1 to n - 1 do
    s.(up_slot n j) <- 1
  done;
  s

let flip b = 1 - b

(* C1: the refinement of BTR_4 to the concrete model (Section 4.2) —
   processes write only their own state; the commented-out clauses of the
   paper are dropped. *)
let c1_actions n =
  let top =
    Action.make ~label:"top" ~proc:n
      ~writes:[ c_slot n n ]
      ~guard:(fun s -> c n s n <> c n s (n - 1) && up n s (n - 1))
      ~effect:(fun s -> Action.set s [ (c_slot n n, c n s (n - 1)) ])
      ()
  in
  let bottom =
    Action.make ~label:"bottom" ~proc:0
      ~writes:[ c_slot n 0 ]
      ~guard:(fun s -> c n s 0 = c n s 1 && not (up n s 1))
      ~effect:(fun s -> Action.set s [ (c_slot n 0, flip (c n s 0)) ])
      ()
  in
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j
            ~writes:[ c_slot n j; up_slot n j ]
            ~guard:(fun s ->
              c n s j <> c n s (j - 1) && up n s (j - 1) && not (up n s j))
            ~effect:(fun s ->
              Action.set s [ (c_slot n j, c n s (j - 1)); (up_slot n j, 1) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j
            ~writes:[ up_slot n j ]
            ~guard:(fun s ->
              c n s j = c n s (j + 1) && not (up n s (j + 1)) && up n s j)
            ~effect:(fun s -> Action.set s [ (up_slot n j, 0) ])
            ();
        ])
      (List.init (max 0 (n - 1)) (fun k -> k + 1))
  in
  top :: bottom :: mids

let c1 n =
  Program.make ~name:(Printf.sprintf "C1(%d)" n) ~layout:(layout n)
    ~actions:(c1_actions n)
    ~initial:(one_token n)
  |> Program.with_initial_closure ~seeds:[ canonical n ]

(* Dijkstra's 4-state system: C1 [] W1' [] W2' with the guards of the top
   and mid-up actions relaxed (end of Section 4). *)
let dijkstra4_actions n =
  let top =
    Action.make ~label:"top" ~proc:n
      ~writes:[ c_slot n n ]
      ~guard:(fun s -> c n s n <> c n s (n - 1))
      ~effect:(fun s -> Action.set s [ (c_slot n n, c n s (n - 1)) ])
      ()
  in
  let bottom =
    Action.make ~label:"bottom" ~proc:0
      ~writes:[ c_slot n 0 ]
      ~guard:(fun s -> c n s 1 = c n s 0 && not (up n s 1))
      ~effect:(fun s -> Action.set s [ (c_slot n 0, flip (c n s 0)) ])
      ()
  in
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j
            ~writes:[ c_slot n j; up_slot n j ]
            ~guard:(fun s -> c n s j <> c n s (j - 1))
            ~effect:(fun s ->
              Action.set s [ (c_slot n j, c n s (j - 1)); (up_slot n j, 1) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j
            ~writes:[ up_slot n j ]
            ~guard:(fun s ->
              c n s (j + 1) = c n s j && not (up n s (j + 1)) && up n s j)
            ~effect:(fun s -> Action.set s [ (up_slot n j, 0) ])
            ();
        ])
      (List.init (max 0 (n - 1)) (fun k -> k + 1))
  in
  top :: bottom :: mids

let dijkstra4 n =
  Program.make
    ~name:(Printf.sprintf "Dijkstra4(%d)" n)
    ~layout:(layout n) ~actions:(dijkstra4_actions n)
    ~initial:(one_token n)
  |> Program.with_initial_closure ~seeds:[ canonical n ]

(* Vacuity of the refined wrappers (Section 4.1), as checkable facts. *)

(* W1' is vacuous: its guard (all up.j for j≠N, c.(N-1) ≠ c.N) already
   implies its postcondition ↑t.N, i.e. firing it changes nothing. *)
let w1'_guard n s =
  let all_up = ref true in
  for j = 1 to n - 1 do
    if not (up n s j) then all_up := false
  done;
  !all_up && c n s (n - 1) <> c n s n

let w1'_vacuous n s = (not (w1'_guard n s)) || Btr.up n (to_tokens n s) n

(* W2' is vacuous: no state maps to both ↑t.j and ↓t.j at one process. *)
let w2'_vacuous n s =
  let ts = to_tokens n s in
  let ok = ref true in
  for j = 1 to n - 1 do
    if Btr.up n ts j && Btr.dn n ts j then ok := false
  done;
  !ok
