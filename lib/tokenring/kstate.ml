(* Dijkstra's K-state token ring on a unidirectional ring (derived from
   UTR in the paper's full version; reconstructed here).

   Every process holds a counter c.j in 0..K-1.  The bottom process 0
   fires when c.0 = c.N and increments mod K; every other process fires
   when c.j ≠ c.(j-1) and copies.  Token mapping (abstraction alpha_k):

     t.0 ≡ c.0 = c.N        t.j ≡ c.j ≠ c.(j-1)   (j >= 1)

   The classic result: the system is self-stabilizing iff K > N (for a
   central daemon), which experiment E11 reproduces — including the
   failure witness for K <= N. *)

open Cr_guarded

type state = Layout.state

let layout ~n ~k =
  if n < 1 then invalid_arg "Kstate: ring needs processes 0..1";
  if k < 2 then invalid_arg "Kstate: counters need K >= 2";
  Layout.make (List.init (n + 1) (fun j -> (Printf.sprintf "c%d" j, k)))

let c (s : state) j = s.(j)

let has_token n (s : state) j =
  if j = 0 then c s 0 = c s n else c s j <> c s (j - 1)

let to_tokens n (s : state) : Utr.state =
  Utr.state_of_tokens n
    (List.filter (has_token n s) (List.init (n + 1) (fun j -> j)))

let alpha ~n ~k =
  Cr_semantics.Abstraction.make
    ~name:(Printf.sprintf "alphaK(n=%d,K=%d)" n k)
    (to_tokens n)

let token_count n s = Utr.token_count (to_tokens n s)

let initial n s = token_count n s = 1

let actions ~n ~k =
  let bottom =
    Action.make ~label:"bottom" ~proc:0 ~writes:[ 0 ]
      ~guard:(fun s -> c s 0 = c s n)
      ~effect:(fun s -> Action.set s [ (0, (c s 0 + 1) mod k) ])
      ()
  in
  let others =
    List.init n (fun i ->
        let j = i + 1 in
        Action.make
          ~label:(Printf.sprintf "copy%d" j)
          ~proc:j ~writes:[ j ]
          ~guard:(fun s -> c s j <> c s (j - 1))
          ~effect:(fun s -> Action.set s [ (j, c s (j - 1)) ])
          ())
  in
  bottom :: others

let program ~n ~k =
  Program.make
    ~name:(Printf.sprintf "Kstate(n=%d,K=%d)" n k)
    ~layout:(layout ~n ~k) ~actions:(actions ~n ~k) ~initial:(initial n)
