(* ASCII rendering of ring configurations, for traces and examples. *)

(* One line per configuration: each process shows its id, decorated with
   the tokens it holds, e.g.  [0]  [1↑]  [2↓]  [3]. *)
let tokens_line n (s : Btr.state) : string =
  let buf = Buffer.create 64 in
  for j = 0 to n do
    let up = if Btr.up n s j then "↑" else "" in
    let dn = if Btr.dn n s j then "↓" else "" in
    Buffer.add_string buf (Printf.sprintf "[%d%s%s] " j up dn)
  done;
  String.trim (Buffer.contents buf)

(* Mod-3 counter systems: show counter values with token decorations. *)
let counters3_line n (s : Btr3.state) : string =
  let ts = Btr3.to_tokens n s in
  let buf = Buffer.create 64 in
  for j = 0 to n do
    let up = if Btr.up n ts j then "↑" else "" in
    let dn = if Btr.dn n ts j then "↓" else "" in
    Buffer.add_string buf (Printf.sprintf "[%d:%d%s%s] " j (Btr3.c s j) up dn)
  done;
  String.trim (Buffer.contents buf)

(* Unidirectional rings. *)
let utr_line (s : Utr.state) : string =
  let buf = Buffer.create 64 in
  Array.iteri
    (fun j v -> Buffer.add_string buf (if v = 1 then Printf.sprintf "[%d●] " j else Printf.sprintf "[%d] " j))
    s;
  String.trim (Buffer.contents buf)
