(* The abstract unidirectional token ring UTR, the starting point of the
   K-state derivation in the paper's full version [4] (summarized in its
   introduction; we reconstruct it here and verify the reconstruction
   mechanically — see DESIGN.md E11).

   Processes 0..n on a unidirectional ring; a token at j moves to
   j+1 mod (n+1).  Wrappers:
   - W1u: creates a token at process 0 when the ring has none;
   - W2u: adjacent tokens either merge (the lower is absorbed into the
     upper) or cancel pairwise — both shapes occur as images of the
     K-state system's concrete moves. *)

open Cr_guarded

type state = Layout.state

let check_n n = if n < 1 then invalid_arg "Utr: ring needs processes 0..1"

let layout n =
  check_n n;
  Layout.make (List.init (n + 1) (fun j -> (Printf.sprintf "t%d" j, 2)))

let has_token (s : state) j = s.(j) = 1

let token_count (s : state) = Array.fold_left ( + ) 0 s

let tokens (s : state) =
  let acc = ref [] in
  Array.iteri (fun j v -> if v = 1 then acc := j :: !acc) s;
  List.rev !acc

let invariant s = token_count s = 1

let state_of_tokens n ts =
  let s = Array.make (n + 1) 0 in
  List.iter
    (fun j ->
      if j < 0 || j > n then invalid_arg "Utr.state_of_tokens";
      s.(j) <- 1)
    ts;
  s

let succ_proc n j = (j + 1) mod (n + 1)

let actions n =
  check_n n;
  List.init (n + 1) (fun j ->
      Action.make
        ~label:(Printf.sprintf "move%d" j)
        ~proc:j
        ~writes:[ j; succ_proc n j ]
        ~guard:(fun s -> has_token s j)
        ~effect:(fun s -> Action.set s [ (j, 0); (succ_proc n j, 1) ])
        ())

let program n =
  Program.make ~name:(Printf.sprintf "UTR(%d)" n) ~layout:(layout n)
    ~actions:(actions n) ~initial:invariant

let w1u n =
  let action =
    Action.make ~label:"W1u" ~proc:0 ~writes:[ 0 ]
      ~guard:(fun s -> token_count s = 0)
      ~effect:(fun s -> Action.set s [ (0, 1) ])
      ()
  in
  Program.make ~name:"W1u" ~layout:(layout n) ~actions:[ action ]
    ~initial:invariant

let w2u n =
  let acts =
    List.concat_map
      (fun j ->
        let j' = succ_proc n j in
        [
          Action.make
            ~label:(Printf.sprintf "W2u_merge%d" j)
            ~proc:j ~writes:[ j ]
            ~guard:(fun s -> has_token s j && has_token s j')
            ~effect:(fun s -> Action.set s [ (j, 0) ])
            ();
          Action.make
            ~label:(Printf.sprintf "W2u_cancel%d" j)
            ~proc:j
            ~writes:[ j; j' ]
            ~guard:(fun s -> has_token s j && has_token s j')
            ~effect:(fun s -> Action.set s [ (j, 0); (j', 0) ])
            ();
        ])
      (List.init (n + 1) (fun j -> j))
  in
  Program.make ~name:"W2u" ~layout:(layout n) ~actions:acts
    ~initial:invariant

let wrapped n =
  Program.box_list ~name:(Printf.sprintf "UTR[]W1u[]W2u(%d)" n) (program n)
    [ w1u n; w2u n ]

let wrapped_priority n =
  let wrappers = Program.box ~name:"W1u[]W2u" (w1u n) (w2u n) in
  Program.box_priority
    ~name:(Printf.sprintf "UTR[]!(W1u[]W2u)(%d)" n)
    (program n) wrappers
