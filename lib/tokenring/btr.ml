(* The abstract bidirectional token ring BTR (Section 3 of the paper) and
   its stabilization wrappers W1 and W2.

   Processes 0..n on a bidirectional ring.  [up j] is the paper's ↑t.j
   ("j received the token from j-1", defined for j >= 1) and [dn j] is
   ↓t.j ("j received the token from j+1", defined for j <= n-1).  The
   undefined tokens ↑t.0 and ↓t.N are modelled as fixed (domain-1)
   variables so that all systems over a ring share one layout shape.

   The abstract model lets a process write its neighbours' state in one
   atomic step. *)

open Cr_guarded

type state = Layout.state

let min_ring = 1

let check_n n =
  if n < min_ring then invalid_arg "Btr: ring needs at least processes 0..1"

(* Layout: slots 0..n are up_j, slots n+1..2n+1 are dn_j. *)
let layout n =
  check_n n;
  let ups = List.init (n + 1) (fun j -> (Printf.sprintf "up%d" j, if j = 0 then 1 else 2)) in
  let dns = List.init (n + 1) (fun j -> (Printf.sprintf "dn%d" j, if j = n then 1 else 2)) in
  Layout.make (ups @ dns)

let up_slot _n j = j
let dn_slot n j = n + 1 + j

let up n (s : state) j = j <> 0 && s.(up_slot n j) = 1
let dn n (s : state) j = j <> n && s.(dn_slot n j) = 1

let token_count n (s : state) =
  let c = ref 0 in
  for j = 0 to n do
    if up n s j then incr c;
    if dn n s j then incr c
  done;
  !c

type token = Up of int | Down of int

let tokens n (s : state) =
  let acc = ref [] in
  for j = n downto 0 do
    if dn n s j then acc := Down j :: !acc;
    if up n s j then acc := Up j :: !acc
  done;
  !acc

let pp_token fmt = function
  | Up j -> Fmt.pf fmt "↑t.%d" j
  | Down j -> Fmt.pf fmt "↓t.%d" j

(* The invariant I = I1 /\ I2 /\ I3: a unique token exists.  (I4, equal
   frequency of directions, is a temporal property that follows once
   I1-I3 hold; see the paper.) *)
let invariant_i1 n s = token_count n s >= 1
let invariant_i2_i3 n s = token_count n s <= 1
let invariant n s = token_count n s = 1

(* Build a token state from a token list (for tests and traces). *)
let state_of_tokens n ts =
  let s = Array.make (2 * (n + 1)) 0 in
  List.iter
    (function
      | Up j ->
          if j < 1 || j > n then invalid_arg "Btr.state_of_tokens: bad ↑ index";
          s.(up_slot n j) <- 1
      | Down j ->
          if j < 0 || j > n - 1 then
            invalid_arg "Btr.state_of_tokens: bad ↓ index";
          s.(dn_slot n j) <- 1)
    ts;
  s

let actions n =
  check_n n;
  let top =
    Action.make ~label:"top" ~proc:n
      ~writes:[ up_slot n n; dn_slot n (n - 1) ]
      ~guard:(fun s -> up n s n)
      ~effect:(fun s ->
        Action.set s [ (up_slot n n, 0); (dn_slot n (n - 1), 1) ])
      ()
  in
  let bottom =
    Action.make ~label:"bottom" ~proc:0
      ~writes:[ dn_slot n 0; up_slot n 1 ]
      ~guard:(fun s -> dn n s 0)
      ~effect:(fun s -> Action.set s [ (dn_slot n 0, 0); (up_slot n 1, 1) ])
      ()
  in
  let mids =
    List.concat_map
      (fun j ->
        [
          Action.make
            ~label:(Printf.sprintf "mid_up%d" j)
            ~proc:j
            ~writes:[ up_slot n j; up_slot n (j + 1) ]
            ~guard:(fun s -> up n s j)
            ~effect:(fun s ->
              Action.set s [ (up_slot n j, 0); (up_slot n (j + 1), 1) ])
            ();
          Action.make
            ~label:(Printf.sprintf "mid_dn%d" j)
            ~proc:j
            ~writes:[ dn_slot n j; dn_slot n (j - 1) ]
            ~guard:(fun s -> dn n s j)
            ~effect:(fun s ->
              Action.set s [ (dn_slot n j, 0); (dn_slot n (j - 1), 1) ])
            ();
        ])
      (List.init (max 0 (n - 1)) (fun k -> k + 1))
  in
  (top :: bottom :: mids : Action.t list)

let program n =
  Program.make ~name:(Printf.sprintf "BTR(%d)" n) ~layout:(layout n)
    ~actions:(actions n)
    ~initial:(fun s -> invariant n s)

(* W1: if no process other than N holds a token, create ↑t.N. *)
let w1 n =
  check_n n;
  let guard s =
    let ok = ref true in
    for j = 1 to n - 1 do
      if up n s j then ok := false
    done;
    for j = 0 to n - 1 do
      if dn n s j then ok := false
    done;
    !ok
  in
  let action =
    Action.make ~label:"W1" ~proc:n
      ~writes:[ up_slot n n ]
      ~guard
      ~effect:(fun s -> Action.set s [ (up_slot n n, 1) ])
      ()
  in
  Program.make ~name:"W1" ~layout:(layout n) ~actions:[ action ]
    ~initial:(fun s -> invariant n s)

(* W2: a process holding both an ↑ and a ↓ token deletes both. *)
let w2 n =
  check_n n;
  let acts =
    List.init (max 0 (n - 1)) (fun k ->
        let j = k + 1 in
        Action.make
          ~label:(Printf.sprintf "W2_%d" j)
          ~proc:j
          ~writes:[ up_slot n j; dn_slot n j ]
          ~guard:(fun s -> up n s j && dn n s j)
          ~effect:(fun s ->
            Action.set s [ (up_slot n j, 0); (dn_slot n j, 0) ])
          ())
  in
  Program.make ~name:"W2" ~layout:(layout n) ~actions:acts
    ~initial:(fun s -> invariant n s)

(* The wrapped system (BTR [] W1 [] W2) of Theorem 6. *)
let wrapped n =
  Program.box_list
    ~name:(Printf.sprintf "BTR[]W1[]W2(%d)" n)
    (program n) [ w1 n; w2 n ]

(* Same composition, but with the wrappers given preemptive priority (see
   DESIGN.md section 2 on wrapper semantics). *)
let wrapped_priority n =
  let wrappers = Program.box ~name:"W1[]W2" (w1 n) (w2 n) in
  Program.box_priority
    ~name:(Printf.sprintf "BTR[]!(W1[]W2)(%d)" n)
    (program n) wrappers
