(* Finite-automaton views of the bidding server, tying the introduction's
   example into the refinement framework.

   With bids over 0..b and arity k, the specification's states are the
   k-multisets (canonically sorted lists) and the implementation's states
   are arbitrary k-tuples — the extra states introduced by the
   refinement.  The abstraction function forgets the order.  The checkers
   then show mechanically:

   - [impl ⊑ spec]_init holds (fault-free, the sorted-list implementation
     is a refinement);
   - [impl ⪯ spec] fails — e.g. a list whose head was corrupted to the
     maximum blocks all future bids, so a terminal implementation state
     maps to a non-terminal specification state;
   - the wrapped implementation (repair-then-bid) is an everywhere
     refinement of the specification, hence preserves its tolerance
     (Theorem 0). *)

let rec tuples ~b ~k =
  if k = 0 then [ [] ]
  else
    List.concat_map
      (fun rest -> List.init (b + 1) (fun v -> v :: rest))
      (tuples ~b ~k:(k - 1))

let spec_system ~b ~k =
  let states =
    List.sort_uniq compare (List.map (List.sort compare) (tuples ~b ~k))
  in
  Cr_semantics.System.make
    ~name:(Printf.sprintf "bid-spec(k=%d,b=%d)" k b)
    ~states
    ~step:(fun s ->
      List.init (b + 1) (fun v -> Spec.stored (Spec.bid v (Spec.of_list ~k s))))
    ~is_initial:(fun s -> s = List.init k (fun _ -> 0))
    ~pp:(fun fmt s -> Fmt.pf fmt "{%a}" Fmt.(list ~sep:(any ",") int) s)
    ()

let impl_system ~b ~k =
  let states = tuples ~b ~k in
  let sorted s = List.sort compare s = s in
  Cr_semantics.System.make
    ~name:(Printf.sprintf "bid-impl(k=%d,b=%d)" k b)
    ~states
    ~step:(fun s ->
      List.init (b + 1) (fun v ->
          Sorted_impl.raw_list (Sorted_impl.bid v (Sorted_impl.unsafe_of_raw ~k s))))
    ~is_initial:(fun s -> sorted s && List.for_all (fun v -> v = 0) s)
    ~pp:(fun fmt s -> Fmt.pf fmt "[%a]" Fmt.(list ~sep:(any ",") int) s)
    ()

let wrapped_system ~b ~k =
  let states = tuples ~b ~k in
  Cr_semantics.System.make
    ~name:(Printf.sprintf "bid-wrapped(k=%d,b=%d)" k b)
    ~states
    ~step:(fun s ->
      List.init (b + 1) (fun v ->
          Sorted_impl.raw_list (Wrapper.bid v (Sorted_impl.unsafe_of_raw ~k s))))
    ~is_initial:(fun s -> List.for_all (fun v -> v = 0) s)
    ~pp:(fun fmt s -> Fmt.pf fmt "[%a]" Fmt.(list ~sep:(any ",") int) s)
    ()

(* Forget the order. *)
let alpha : (int list, int list) Cr_semantics.Abstraction.t =
  Cr_semantics.Abstraction.make ~name:"sort" (fun s -> List.sort compare s)
