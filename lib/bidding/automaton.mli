(** Finite-automaton views of the bidding server, connecting the intro
    example to the refinement checkers (see implementation commentary for
    the checked facts). *)

val tuples : b:int -> k:int -> int list list

val spec_system : b:int -> k:int -> int list Cr_semantics.System.t
(** States: k-multisets of bids over 0..b (canonically sorted). *)

val impl_system : b:int -> k:int -> int list Cr_semantics.System.t
(** States: arbitrary k-tuples (the refinement's extra states). *)

val wrapped_system : b:int -> k:int -> int list Cr_semantics.System.t
(** The implementation wrapped with repair-then-bid. *)

val alpha : (int list, int list) Cr_semantics.Abstraction.t
(** Forget the order (sort). *)
