(** The bidding-server specification (paper, introduction): a server that
    stores the highest k bids as a multiset, tolerant to the corruption of
    a single stored bid (it still serves k-1 of the best-k). *)

type t

val create : k:int -> t
(** k zero bids. *)

val of_list : k:int -> int list -> t
val arity : t -> int
val stored : t -> int list
(** Canonical (ascending) view of the multiset. *)

val minimum : t -> int

val bid : int -> t -> t
(** [bid v t] replaces the minimum stored bid with [v] iff [v] exceeds
    it. *)

val run : t -> int list -> t
val winners : t -> int list
(** Stored bids, best first. *)

val diff : t -> t -> int
(** Multiset distance: number of stored bids in which two states
    disagree. *)

val corrupt : index:int -> value:int -> t -> t
(** Transient corruption of one stored bid. *)

val pp : Format.formatter -> t -> unit
