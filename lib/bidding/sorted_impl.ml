(* The sorted-list implementation of the bidding server from the paper's
   introduction.

   The implementation keeps the k highest bids in a sorted list whose head
   is the minimum.  bid(v) compares v against the *head only*: if greater,
   the head is dropped and v is inserted in order.  In the absence of
   faults this refines the specification exactly.  Under corruption of a
   single stored bid the refinement breaks: corrupting the head to
   MAX_INT blocks every future bid, so the implementation fails the
   (k-1)-of-best-k tolerance that the specification provides.  (This is
   the paper's example of a refinement that does not preserve
   fault-tolerance.)

   Unlike the specification, the implementation's list is *assumed*
   sorted rather than re-sorted on every access — that assumption is the
   extra (corruptible) state the refinement introduces. *)

type t = { k : int; list : int list (* ascending if uncorrupted *) }

let create ~k = { k; list = List.init k (fun _ -> 0) }

let of_list ~k bids =
  if List.length bids <> k then invalid_arg "Sorted_impl.of_list";
  { k; list = List.sort compare bids }

(* Build a state from a raw list *without* re-sorting — models a state
   whose sortedness invariant may have been broken by a fault. *)
let unsafe_of_raw ~k list =
  if List.length list <> k then invalid_arg "Sorted_impl.unsafe_of_raw";
  { k; list }

let raw_list t = t.list

let rec insert_sorted v = function
  | [] -> [ v ]
  | x :: rest -> if v <= x then v :: x :: rest else x :: insert_sorted v rest

(* bid(v): inspect the head (believed minimum) only. *)
let bid v t =
  match t.list with
  | h :: rest when v > h -> { t with list = insert_sorted v rest }
  | _ -> t

let run t bids = List.fold_left (fun acc v -> bid v acc) t bids

let winners t = List.rev (List.sort compare t.list)

(* Corrupt the stored bid at a *list position* (no re-sort — that is the
   point: the implementation trusts its own invariant). *)
let corrupt ~index ~value t =
  { t with list = List.mapi (fun i v -> if i = index then value else v) t.list }

(* View as a specification state (forget the order). *)
let to_spec t : Spec.t = Spec.of_list ~k:t.k t.list

let is_sorted t =
  let rec go = function
    | [] | [ _ ] -> true
    | x :: (y :: _ as rest) -> x <= y && go rest
  in
  go t.list

let pp fmt t = Fmt.pf fmt "[%a]" Fmt.(list ~sep:(any ",") int) t.list
