(** The sorted-list implementation of the bidding server (paper,
    introduction).  Correct in the absence of faults; *not* tolerant to
    single-bid corruption: a head corrupted high blocks all future bids. *)

type t

val create : k:int -> t
val of_list : k:int -> int list -> t

val unsafe_of_raw : k:int -> int list -> t
(** Build a state without re-sorting — a state whose sortedness invariant
    a fault may have broken. *)

val raw_list : t -> int list

val bid : int -> t -> t
(** Compares [v] against the head (the believed minimum) only. *)

val run : t -> int list -> t
val winners : t -> int list
val corrupt : index:int -> value:int -> t -> t
val to_spec : t -> Spec.t
val is_sorted : t -> bool
val insert_sorted : int -> int list -> int list
val pp : Format.formatter -> t -> unit
