(* The bidding-server specification from the paper's introduction.

   The server stores the highest k bids.  bid(v) replaces the minimum
   stored bid with v iff v is greater than that minimum.  The
   specification state is a multiset of k bids (represented as a sorted
   list, purely as a canonical form).

   Fault model: corruption of a single stored bid.  The specification is
   tolerant in the paper's sense: after a single corruption, the stored
   multiset always agrees with the fault-free run on at least k-1 of the
   best-k bids (checked by the test suite as the "diff at most one"
   simulation invariant). *)

type t = { k : int; stored : int list (* sorted ascending, length k *) }

let create ~k = { k; stored = List.init k (fun _ -> 0) }

let of_list ~k bids =
  if List.length bids <> k then invalid_arg "Spec.of_list: wrong arity";
  { k; stored = List.sort compare bids }

let stored t = t.stored

let arity t = t.k

let minimum t = match t.stored with [] -> invalid_arg "Spec.minimum" | m :: _ -> m

(* The canonical insertion used by bid: drop the minimum, insert v. *)
let bid v t =
  match t.stored with
  | m :: rest when v > m -> { t with stored = List.sort compare (v :: rest) }
  | _ -> t

let run t bids = List.fold_left (fun acc v -> bid v acc) t bids

let winners t = List.rev t.stored

(* Multiset difference size: how many stored bids differ between two
   states (of equal k). *)
let diff t1 t2 =
  let rec remove_one x = function
    | [] -> None
    | y :: rest -> if x = y then Some rest else Option.map (fun r -> y :: r) (remove_one x rest)
  in
  let rec go acc l1 l2 =
    match l1 with
    | [] -> acc
    | x :: rest -> (
        match remove_one x l2 with
        | Some l2' -> go acc rest l2'
        | None -> go (acc + 1) rest l2)
  in
  (* one-sided unmatched count; both multisets have the same size, so the
     two sides agree *)
  go 0 t1.stored t2.stored

(* A single-bid corruption. *)
let corrupt ~index ~value t =
  {
    t with
    stored =
      List.sort compare
        (List.mapi (fun i v -> if i = index then value else v) t.stored);
  }

let pp fmt t = Fmt.pf fmt "{%a}" Fmt.(list ~sep:(any ",") int) t.stored
