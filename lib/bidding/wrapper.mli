(** Graybox dependability wrapper for the bidding server: designed against
    the specification only, it re-normalizes the stored state before each
    operation and thereby restores the specification's single-corruption
    tolerance for the sorted-list implementation. *)

val repair : Sorted_impl.t -> Sorted_impl.t
val bid : int -> Sorted_impl.t -> Sorted_impl.t
val run : Sorted_impl.t -> int list -> Sorted_impl.t
val winners : Sorted_impl.t -> int list
