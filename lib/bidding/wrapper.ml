(* A graybox dependability wrapper for the bidding server.

   Designed purely against the *specification* (the stored state is a
   multiset of k bids; the implementation detail being protected — the
   sort order — is re-established, not inspected): the wrapper simply
   re-normalizes the stored list into the specification's canonical form
   before each operation.  Adding it to the sorted-list implementation
   restores the specification's tolerance to single-bid corruption, which
   the test suite verifies with the same "diff at most one" property that
   the raw implementation fails. *)

let repair (impl : Sorted_impl.t) : Sorted_impl.t =
  Sorted_impl.of_list ~k:(List.length (Sorted_impl.raw_list impl))
    (Sorted_impl.raw_list impl)

(* The wrapped bid operation: repair, then delegate. *)
let bid v impl = Sorted_impl.bid v (repair impl)

let run impl bids = List.fold_left (fun acc v -> bid v acc) impl bids

let winners impl = Sorted_impl.winners impl
