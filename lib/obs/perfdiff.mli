(** Noise-aware comparison of two bench [--json] artifacts.

    Micro rows are matched by name; a row flagged [low_r2] in either
    artifact is reported but never gated, a sub-microsecond baseline row
    is gated at 4x the gate, and everything else is gated at the gate
    (default 25%).  Whole-suite wall rows and rows present in only one
    artifact are reported, never gated. *)

type confidence = High | Medium | Low

type row = {
  name : string;
  base_ns : float;
  next_ns : float;
  base_r2 : float;
  next_r2 : float;
  delta_pct : float;
  confidence : confidence;
  gated : bool;
  tolerance_pct : float;  (** meaningful only when [gated] *)
  regressed : bool;
}

type wall_row = {
  wn : int;
  base_s : float;
  next_s : float;
  wall_delta_pct : float;
}

type result = {
  rows : row list;
  walls : wall_row list;
  only_base : string list;
  only_next : string list;
  gate_pct : float;
  regressions : int;
}

val confidence_label : confidence -> string

val compare_artifacts :
  ?gate_pct:float ->
  Json_check.json ->
  Json_check.json ->
  (result, string) Stdlib.result
(** Compare two parsed artifacts; [Error] when either lacks a
    well-formed ["micro"] array. *)

val pp_result : Format.formatter -> result -> unit

val run : ?gate_pct:float -> string -> string -> int
(** Load both files, print the delta table to stdout, and return the
    process exit code: 0 gate passes, 1 a trusted row regressed past its
    tolerance, 2 unreadable input. *)
