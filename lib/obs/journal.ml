(* Structured run journal: one JSONL event per checker decision.

   When [CR_JOURNAL=path] is set (or a test redirects with {!set_path}),
   every instrumented site appends one JSON object line describing what
   the checker just decided — a compile started or finished, a cache hit
   or missed or waited behind a single-flight slot, a verdict landed, a
   lint finding fired.  Each line is stamped with run provenance: the
   monotonic sequence number, the emitting domain, the git revision and
   the effective [CR_JOBS], so two journals from different runs can be
   diffed without guessing which build produced them.  The stream opens
   with a [journal.open] header (seq 0) that additionally records every
   [CR_*] environment override in effect.

   Appends are serialized by a mutex and flushed per line, so events
   emitted from worker domains inside a [Par] fan-out interleave without
   tearing; the sequence numbers are allocated atomically and therefore
   total-order the decisions even though wall-clock interleaving is
   schedule-dependent.  When no journal is configured, [emit] costs one
   load and one branch. *)

type field =
  | S of string
  | I of int
  | B of bool
  | F of float
  | Snap of (string * int) list

(* ---------- JSON rendering (journal lines are built, never parsed,
   here; Json_check owns the reading side) ---------- *)

let escape_to buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let add_str buf s =
  Buffer.add_char buf '"';
  escape_to buf s;
  Buffer.add_char buf '"'

let add_field buf (k, v) =
  add_str buf k;
  Buffer.add_char buf ':';
  match v with
  | S s -> add_str buf s
  | I i -> Buffer.add_string buf (string_of_int i)
  | B b -> Buffer.add_string buf (if b then "true" else "false")
  | F f ->
      if Float.is_finite f then Buffer.add_string buf (Printf.sprintf "%.3f" f)
      else Buffer.add_string buf "null"
  | Snap kvs ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, n) ->
          if i > 0 then Buffer.add_char buf ',';
          add_str buf k;
          Buffer.add_char buf ':';
          Buffer.add_string buf (string_of_int n))
        kvs;
      Buffer.add_char buf '}'

(* ---------- provenance ---------- *)

(* Resolved once per process; shared by the event stamps below and, via
   the interface, by every emitted artifact header. *)
let git_rev =
  lazy
    (match
       let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
       let line = try input_line ic with End_of_file -> "" in
       match Unix.close_process_in ic with
       | Unix.WEXITED 0 when line <> "" -> Some (String.trim line)
       | _ -> None
     with
    | Some rev -> rev
    | None | (exception _) -> "unknown")

(* Same CR_JOBS convention as [Par.jobs_env], duplicated here because
   [Cr_obs] sits below [Cr_semantics] in the library graph. *)
let jobs_env () =
  match Sys.getenv_opt "CR_JOBS" with
  | None -> 1
  | Some s -> (
      match int_of_string_opt (String.trim s) with
      | Some 0 -> Domain.recommended_domain_count ()
      | Some k when k >= 1 -> k
      | Some _ | None -> 1)

let cr_env_overrides () =
  let vars = ref [] in
  Array.iter
    (fun binding ->
      match String.index_opt binding '=' with
      | Some i when i >= 3 && String.sub binding 0 3 = "CR_" ->
          let k = String.sub binding 0 i in
          let v = String.sub binding (i + 1) (String.length binding - i - 1) in
          vars := (k, v) :: !vars
      | _ -> ())
    (Unix.environment ());
  List.sort (fun (a, _) (b, _) -> String.compare a b) !vars

(* ---------- sink state ---------- *)

type sink = { oc : out_channel; spath : string; jobs : int }

let lock = Mutex.create ()
let seq = Atomic.make 0

(* Journal timestamps are relative to this module's initialization, so
   they stay readable at fixed precision (epoch microseconds would not). *)
let t0_us = Obs.now_us ()

(* [None] until the first emit resolves the configuration; [Some None]
   once resolved to "journaling off". *)
let sink : sink option option ref = ref None
let explicit : string option ref = ref None

let write_line st ev fields =
  let n = Atomic.fetch_and_add seq 1 in
  let buf = Buffer.create 128 in
  Buffer.add_char buf '{';
  add_field buf ("ev", S ev);
  let stamp =
    [
      ("seq", I n);
      ("ts_us", F (Obs.now_us () -. t0_us));
      ("dom", I (Domain.self () :> int));
      ("rev", S (Lazy.force git_rev));
      ("jobs", I st.jobs);
    ]
  in
  List.iter
    (fun f ->
      Buffer.add_char buf ',';
      add_field buf f)
    (stamp @ fields);
  Buffer.add_char buf '}';
  Buffer.add_char buf '\n';
  output_string st.oc (Buffer.contents buf);
  flush st.oc

let open_sink path =
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  let st = { oc; spath = path; jobs = jobs_env () } in
  let env = cr_env_overrides () in
  write_line st "journal.open"
    (List.map (fun (k, v) -> ("env." ^ k, S v)) env);
  st

let resolve () =
  match !sink with
  | Some st -> st
  | None ->
      let path =
        match !explicit with Some _ as p -> p | None -> Sys.getenv_opt "CR_JOURNAL"
      in
      let st =
        match path with
        | None | Some "" -> None
        | Some p -> ( try Some (open_sink p) with Sys_error _ -> None)
      in
      sink := Some st;
      st

let enabled () =
  Mutex.protect lock (fun () ->
      match resolve () with Some _ -> true | None -> false)

let emit ev fields =
  (* Cheap pre-check: once resolved to "off", skip the lock. *)
  match !sink with
  | Some None -> ()
  | _ ->
      Mutex.protect lock (fun () ->
          match resolve () with
          | None -> ()
          | Some st -> write_line st ev fields)

let close () =
  Mutex.protect lock (fun () ->
      (match !sink with
      | Some (Some st) -> ( try close_out st.oc with Sys_error _ -> ())
      | _ -> ());
      sink := None)

let set_path p =
  Mutex.protect lock (fun () ->
      (match !sink with
      | Some (Some st) -> ( try close_out st.oc with Sys_error _ -> ())
      | _ -> ());
      sink := None;
      explicit := p;
      Atomic.set seq 0)

let path () =
  Mutex.protect lock (fun () ->
      match !sink with Some (Some st) -> Some st.spath | _ -> None)

(* Shadows the lazy cell above with its forcing function; placed last so
   every internal use still sees the cell. *)
let git_rev () = Lazy.force git_rev

let () = at_exit close
