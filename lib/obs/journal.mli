(** Structured run journal: one JSONL event per checker decision.

    Enabled by [CR_JOURNAL=path] (append mode) or a test's {!set_path}.
    Every line is a JSON object stamped with run provenance — monotonic
    [seq], emitting [dom], git [rev], effective [jobs] — and the stream
    opens with a [journal.open] header (seq 0) recording every [CR_*]
    environment override.  Appends are mutex-serialized and flushed per
    line, so worker domains inside a [Par] fan-out may emit freely.

    When no journal is configured, {!emit} is one load and one branch. *)

type field =
  | S of string
  | I of int
  | B of bool
  | F of float  (** non-finite floats render as [null] *)
  | Snap of (string * int) list
      (** a cost snapshot, rendered as a nested object of integers *)

val enabled : unit -> bool
(** Is a journal sink configured?  Use to skip building expensive
    fields; {!emit} itself is always safe to call. *)

val emit : string -> (string * field) list -> unit
(** [emit ev fields] appends one event line.  No-op when disabled. *)

val set_path : string option -> unit
(** Test hook: close any open sink, override (or clear, with [None])
    the [CR_JOURNAL] path, and restart sequence numbers at 0 so the
    next emit opens a fresh stream with its own header. *)

val close : unit -> unit
(** Flush and close the sink; the next emit re-resolves and re-opens
    (appending).  Also installed as an [at_exit]. *)

val path : unit -> string option
(** The path of the currently open sink, if one is open. *)

val git_rev : unit -> string
(** The short git revision stamped on journal events ("unknown" outside
    a git checkout).  Exposed so emitted artifacts (bench JSON, lint and
    flow findings) can carry the same provenance header. *)
