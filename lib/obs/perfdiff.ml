(* Noise-aware comparison of two bench --json artifacts.

   Micro rows are matched by name and their ns/run deltas judged against
   a regression gate (default 25%), with the tolerance shaped by how
   trustworthy each measurement is:

   - a row flagged [low_r2] in either artifact is reported but never
     gated — its OLS fit explains too little of the variance for a delta
     to mean anything (a third of the shipped rows are in this bucket);
   - a sub-microsecond row (baseline < 1000 ns) is gated at 4x the gate:
     at that scale a cache-line move is tens of percent;
   - everything else is gated at the gate.

   Confidence is derived from the worse of the two r² values (>= 0.95
   high, >= 0.9 medium, below low — matching the bench's own low_r2
   threshold), and sub-µs rows are capped at medium.  The
   [report_all_wall_s] rows (whole experiment-suite walls, measured
   once) and rows present in only one artifact are reported, never
   gated. *)

type confidence = High | Medium | Low

type row = {
  name : string;
  base_ns : float;
  next_ns : float;
  base_r2 : float;
  next_r2 : float;
  delta_pct : float;
  confidence : confidence;
  gated : bool;
  tolerance_pct : float;  (* meaningful only when [gated] *)
  regressed : bool;
}

type wall_row = { wn : int; base_s : float; next_s : float; wall_delta_pct : float }

type result = {
  rows : row list;
  walls : wall_row list;
  only_base : string list;  (* micro rows missing from the new artifact *)
  only_next : string list;  (* micro rows new in the new artifact *)
  gate_pct : float;
  regressions : int;
}

let sub_micro_ns = 1000.

let confidence_of ~r2 ~sub_micro =
  if r2 < 0.9 then Low
  else if r2 < 0.95 || sub_micro then Medium
  else High

let confidence_label = function
  | High -> "high"
  | Medium -> "medium"
  | Low -> "low"

(* ---------- artifact decoding ---------- *)

let field_err row what = Error (Printf.sprintf "%s: missing/bad %S" row what)

let micro_rows j =
  match Json_check.member "micro" j with
  | Some (Json_check.Arr items) ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | item :: rest -> (
            let str k = Option.bind (Json_check.member k item) Json_check.to_string in
            let num k = Option.bind (Json_check.member k item) Json_check.to_float in
            let bool_ k = Option.bind (Json_check.member k item) Json_check.to_bool in
            match (str "name", num "ns_per_run", num "r2", bool_ "low_r2") with
            | Some name, Some ns, Some r2, Some low ->
                go ((name, (ns, r2, low)) :: acc) rest
            | None, _, _, _ -> field_err "micro row" "name"
            | Some n, _, _, _ -> field_err n "ns_per_run/r2/low_r2")
      in
      go [] items
  | _ -> Error "artifact has no \"micro\" array"

let wall_rows j =
  match Json_check.member "report_all_wall_s" j with
  | Some (Json_check.Arr items) ->
      List.filter_map
        (fun item ->
          match
            ( Option.bind (Json_check.member "n" item) Json_check.to_int,
              Option.bind (Json_check.member "seconds" item) Json_check.to_float )
          with
          | Some n, Some s -> Some (n, s)
          | _ -> None)
        items
  | _ -> []

let delta_pct ~base ~next =
  if base <= 0. then 0. else 100. *. (next -. base) /. base

(* ---------- comparison ---------- *)

let compare_artifacts ?(gate_pct = 25.) base next =
  match (micro_rows base, micro_rows next) with
  | Error e, _ -> Error ("baseline: " ^ e)
  | _, Error e -> Error ("new artifact: " ^ e)
  | Ok b, Ok n ->
      let rows =
        List.filter_map
          (fun (name, (base_ns, base_r2, base_low)) ->
            match List.assoc_opt name n with
            | None -> None
            | Some (next_ns, next_r2, next_low) ->
                let sub_micro = base_ns < sub_micro_ns in
                let noisy = base_low || next_low in
                let tolerance_pct =
                  if sub_micro then 4. *. gate_pct else gate_pct
                in
                let d = delta_pct ~base:base_ns ~next:next_ns in
                let gated = not noisy in
                Some
                  {
                    name;
                    base_ns;
                    next_ns;
                    base_r2;
                    next_r2;
                    delta_pct = d;
                    confidence =
                      confidence_of ~r2:(Float.min base_r2 next_r2) ~sub_micro;
                    gated;
                    tolerance_pct;
                    regressed = gated && d > tolerance_pct;
                  })
          b
      in
      let only_base =
        List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name n then None else Some name)
          b
      in
      let only_next =
        List.filter_map
          (fun (name, _) ->
            if List.mem_assoc name b then None else Some name)
          n
      in
      let wb = wall_rows base and wn = wall_rows next in
      let walls =
        List.filter_map
          (fun (n', base_s) ->
            match List.assoc_opt n' wn with
            | None -> None
            | Some next_s ->
                Some
                  {
                    wn = n';
                    base_s;
                    next_s;
                    wall_delta_pct = delta_pct ~base:base_s ~next:next_s;
                  })
          wb
      in
      Ok
        {
          rows;
          walls;
          only_base;
          only_next;
          gate_pct;
          regressions =
            List.length (List.filter (fun r -> r.regressed) rows);
        }

(* ---------- rendering ---------- *)

let pp_result fmt r =
  Format.fprintf fmt "%-32s %14s %14s %8s %6s %-6s %s@." "row" "base-ns"
    "new-ns" "delta" "conf" "gate" "verdict";
  List.iter
    (fun row ->
      Format.fprintf fmt "%-32s %14.1f %14.1f %+7.1f%% %6s %-6s %s@." row.name
        row.base_ns row.next_ns row.delta_pct
        (confidence_label row.confidence)
        (if row.gated then Printf.sprintf "%.0f%%" row.tolerance_pct else "-")
        (if row.regressed then "REGRESSED"
         else if not row.gated then "ungated (low r2)"
         else "ok"))
    r.rows;
  List.iter
    (fun w ->
      Format.fprintf fmt "%-32s %13.3fs %13.3fs %+7.1f%% %6s %-6s %s@."
        (Printf.sprintf "report-all-n%d" w.wn)
        w.base_s w.next_s w.wall_delta_pct "-" "-" "ungated (wall)")
    r.walls;
  List.iter
    (fun name -> Format.fprintf fmt "%-32s (only in baseline)@." name)
    r.only_base;
  List.iter
    (fun name -> Format.fprintf fmt "%-32s (only in new artifact)@." name)
    r.only_next;
  if r.regressions > 0 then
    Format.fprintf fmt "perfdiff: %d trusted row(s) regressed past %.0f%%@."
      r.regressions r.gate_pct
  else
    Format.fprintf fmt "perfdiff: no trusted row regressed past %.0f%%@."
      r.gate_pct

(* Full CLI behavior: load, compare, print, exit code.
   0 = gate passes, 1 = a trusted row regressed, 2 = unreadable input. *)
let run ?gate_pct base_path next_path =
  match (Json_check.parse_file base_path, Json_check.parse_file next_path) with
  | Error e, _ ->
      Format.eprintf "perfdiff: %s: %s@." base_path e;
      2
  | _, Error e ->
      Format.eprintf "perfdiff: %s: %s@." next_path e;
      2
  | Ok base, Ok next -> (
      match compare_artifacts ?gate_pct base next with
      | Error e ->
          Format.eprintf "perfdiff: %s@." e;
          2
      | Ok r ->
          Format.printf "%a" pp_result r;
          if r.regressions > 0 then 1 else 0)
