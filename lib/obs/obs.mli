(** Checker telemetry: domain-safe named counters and timed spans, with a
    [CR_STATS] human summary and [CR_TRACE] Chrome-trace export.

    Collection is disabled unless the [CR_STATS] or [CR_TRACE] environment
    variable is set (or {!force_enable}/{!force_collect} is called); when
    disabled every operation short-circuits on one branch, so instrumented
    hot paths stay within noise of the uninstrumented checker.

    Each OCaml domain accumulates into private storage; {!merged_snapshot}
    combines domains deterministically ([Sum] counters add, [Max] counters
    take the maximum), so merged totals are invariant under the [CR_JOBS]
    fan-out. *)

type kind =
  | Sum  (** additive; merged across domains by summation *)
  | Max  (** high-water mark; merged across domains by maximum *)

type counter

val counter : ?kind:kind -> string -> counter
(** Register a named counter (call once, at module initialization).
    Names should be globally unique, [module.metric]-style. *)

val tracking : unit -> bool
(** Is collection currently enabled? *)

val stats_enabled : unit -> bool
(** Should human-readable cost summaries be printed ([CR_STATS] set, or
    {!force_enable} called)? *)

val force_enable : unit -> unit
(** Turn on collection and summaries regardless of the environment
    (used by the [--stats] CLI flag). *)

val force_collect : unit -> unit
(** Turn on collection only (counters and spans accumulate, but nothing
    is printed unless the caller asks). *)

val incr : counter -> unit
val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** Raise a [Max] counter to [v] if [v] is larger. *)

type histogram

val histogram : string -> histogram
(** Register a named log-bucketed histogram (call once, at module
    initialization).  Bucket 0 holds the value 0; bucket [k >= 1] holds
    values in [[2^(k-1), 2^k)].  Exact count, total and max ride along,
    so only the quantile estimates are quantized. *)

val observe : histogram -> int -> unit
(** Record one observation (negatives clamp to 0).  No-op unless
    collection is enabled.  Per-domain storage; merging sums bucket
    counts, so merged aggregates depend only on the observation
    multiset — identical for every [CR_JOBS] when the observations
    are. *)

type hstats = {
  count : int;
  total : int;
  max_value : int;
  buckets : int array;
}

val quantile : hstats -> float -> int
(** [quantile h q] estimates the [q]-quantile ([0 < q <= 1]) as the
    inclusive upper bound of the bucket where the cumulative count
    reaches [q * count], clamped to the exact maximum. *)

val mean : hstats -> float

val merged_histograms : unit -> (string * hstats) list
(** Histograms merged across every domain, sorted by name; empty ones
    omitted.  Raises [Invalid_argument] while a worker domain is live. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracking, records a timed span.
    Spans nest; re-raises any exception of [f] after closing the span. *)

type span_event = {
  sname : string;
  ts_us : float;  (** microseconds since process start *)
  dur_us : float;
  depth : int;  (** span-nesting depth at entry *)
  tid : int;  (** OCaml domain id *)
}

val events : unit -> span_event list
(** All recorded spans, sorted by (domain, start time).  Raises
    [Invalid_argument] while a worker domain is live (see
    {!workers_add}). *)

val now_us : unit -> float
(** Microseconds since an arbitrary process-local epoch (the clock spans
    use); cheap enough to bracket individual chunks. *)

val workers_add : int -> unit
(** Move the live-worker count by [k].  [Par] calls this around its
    domain fan-outs; the merging entry points ({!events},
    {!merged_snapshot}, {!merged_histograms}) refuse to run while the
    count is nonzero instead of silently racing with worker writes. *)

val live_workers : unit -> int

type snapshot = (string * int) list
(** Counter values, sorted by name; zero entries omitted. *)

val domain_snapshot : unit -> snapshot
(** Counters of the calling domain only.  Deltas of this around a
    single-domain computation are deterministic even when other domains
    are active. *)

val merged_snapshot : unit -> snapshot
(** Counters merged across every domain seen so far.  Raises
    [Invalid_argument] while a worker domain is live (e.g. call between
    checker calls, never from inside a [Par] fan-out). *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter movement between two snapshots of the same scope: [Sum]
    counters subtract, [Max] counters report the new high-water mark. *)

type gc_cost = {
  minor_words : int;
  major_words : int;
  minor_collections : int;
  major_collections : int;
  top_heap_words : int;
}
(** Allocation accounting from [Gc.quick_stat]: cheap to capture (no
    heap walk), per-domain word counters on OCaml 5, so a span-scoped
    delta on one domain prices that domain's own allocations. *)

val gc_now : unit -> gc_cost

val gc_delta : before:gc_cost -> after:gc_cost -> gc_cost
(** Word and collection counters subtract; [top_heap_words] reports the
    high-water mark of [after]. *)

val gc_cost_entries : gc_cost -> snapshot
(** The delta as name-sorted [gc.*] snapshot entries (zeros omitted),
    ready to merge into a verdict's cost snapshot. *)

val merge_snapshots : snapshot -> snapshot -> snapshot
(** Concatenate and re-sort by name (for mixing counter movement with
    [gc.*] entries in one cost snapshot). *)

val reset : unit -> unit
(** Zero all counters and drop all spans (test support). *)

val pp_snapshot : Format.formatter -> snapshot -> unit

val pp_histograms : Format.formatter -> (string * hstats) list -> unit
(** One row per histogram: count, mean, p50/p90/p99 estimates, max. *)

val span_aggregates : unit -> (string * (int * float * float)) list
(** Per span name: (count, total microseconds, max microseconds),
    sorted by name. *)

val pp_summary : Format.formatter -> unit -> unit
(** The [CR_STATS] summary: merged counters, merged histograms, process
    GC totals, span aggregates. *)

val write_trace : string -> unit
(** Write every recorded span as a Chrome [chrome://tracing] / Perfetto
    trace-event JSON array, one track per OCaml domain. *)
