(** Checker telemetry: domain-safe named counters and timed spans, with a
    [CR_STATS] human summary and [CR_TRACE] Chrome-trace export.

    Collection is disabled unless the [CR_STATS] or [CR_TRACE] environment
    variable is set (or {!force_enable}/{!force_collect} is called); when
    disabled every operation short-circuits on one branch, so instrumented
    hot paths stay within noise of the uninstrumented checker.

    Each OCaml domain accumulates into private storage; {!merged_snapshot}
    combines domains deterministically ([Sum] counters add, [Max] counters
    take the maximum), so merged totals are invariant under the [CR_JOBS]
    fan-out. *)

type kind =
  | Sum  (** additive; merged across domains by summation *)
  | Max  (** high-water mark; merged across domains by maximum *)

type counter

val counter : ?kind:kind -> string -> counter
(** Register a named counter (call once, at module initialization).
    Names should be globally unique, [module.metric]-style. *)

val tracking : unit -> bool
(** Is collection currently enabled? *)

val stats_enabled : unit -> bool
(** Should human-readable cost summaries be printed ([CR_STATS] set, or
    {!force_enable} called)? *)

val force_enable : unit -> unit
(** Turn on collection and summaries regardless of the environment
    (used by the [--stats] CLI flag). *)

val force_collect : unit -> unit
(** Turn on collection only (counters and spans accumulate, but nothing
    is printed unless the caller asks). *)

val incr : counter -> unit
val add : counter -> int -> unit

val record_max : counter -> int -> unit
(** Raise a [Max] counter to [v] if [v] is larger. *)

val span : string -> (unit -> 'a) -> 'a
(** [span name f] runs [f] and, when tracking, records a timed span.
    Spans nest; re-raises any exception of [f] after closing the span. *)

type span_event = {
  sname : string;
  ts_us : float;  (** microseconds since process start *)
  dur_us : float;
  depth : int;  (** span-nesting depth at entry *)
  tid : int;  (** OCaml domain id *)
}

val events : unit -> span_event list
(** All recorded spans, sorted by (domain, start time).  Call only when
    no worker domain is running. *)

type snapshot = (string * int) list
(** Counter values, sorted by name; zero entries omitted. *)

val domain_snapshot : unit -> snapshot
(** Counters of the calling domain only.  Deltas of this around a
    single-domain computation are deterministic even when other domains
    are active. *)

val merged_snapshot : unit -> snapshot
(** Counters merged across every domain seen so far.  Call only when no
    worker domain is running (e.g. between checker calls). *)

val diff : before:snapshot -> after:snapshot -> snapshot
(** Counter movement between two snapshots of the same scope: [Sum]
    counters subtract, [Max] counters report the new high-water mark. *)

val reset : unit -> unit
(** Zero all counters and drop all spans (test support). *)

val pp_snapshot : Format.formatter -> snapshot -> unit

val span_aggregates : unit -> (string * (int * float * float)) list
(** Per span name: (count, total microseconds, max microseconds),
    sorted by name. *)

val pp_summary : Format.formatter -> unit -> unit
(** The [CR_STATS] summary: merged counters plus span aggregates. *)

val write_trace : string -> unit
(** Write every recorded span as a Chrome [chrome://tracing] / Perfetto
    trace-event JSON array, one track per OCaml domain. *)
