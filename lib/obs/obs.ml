(* Lightweight checker telemetry: named counters and timed spans.

   Design constraints, in order:

   - Near-zero overhead when disabled.  Collection is off unless CR_STATS
     or CR_TRACE is set (or a caller forces it), and every entry point
     starts with a single read of [on]; instrumented hot loops accumulate
     locally and publish once per kernel call (see Paths/Refine), so the
     uninstrumented fast path costs one predictable branch per call site.

   - Domain safety without contention.  Each OCaml domain owns its own
     counter array and span buffer (via [Domain.DLS]); nothing is shared
     on the write path.  Buffers register themselves in a global list on
     first use, so the main domain can merge them after the [Par] workers
     have been joined.  Merging is deterministic: [Sum] counters add,
     [Max] counters take the maximum, and every snapshot is sorted by
     counter name — so the merged totals of a run are identical for any
     CR_JOBS value (the work itself is deterministic; only its placement
     on domains changes).

   - Machine-readable artifacts.  [write_trace] emits the recorded spans
     as a Chrome/Perfetto trace-event JSON array, one track (tid) per
     OCaml domain, so a CR_JOBS fan-out is visible as parallel tracks. *)

type kind = Sum | Max

type counter = int

(* ---------- registry (counter names and kinds, by id) ---------- *)

let lock = Mutex.create ()

let rev_names : string list ref = ref []
let rev_kinds : kind list ref = ref []
let n_counters = ref 0

let counter ?(kind = Sum) name : counter =
  Mutex.protect lock (fun () ->
      rev_names := name :: !rev_names;
      rev_kinds := kind :: !rev_kinds;
      let id = !n_counters in
      incr n_counters;
      id)

let registry () =
  Mutex.protect lock (fun () ->
      ( Array.of_list (List.rev !rev_names),
        Array.of_list (List.rev !rev_kinds) ))

(* ---------- histogram registry (names by id) ---------- *)

type histogram = int

let rev_hist_names : string list ref = ref []
let n_hists = ref 0

let histogram name : histogram =
  Mutex.protect lock (fun () ->
      rev_hist_names := name :: !rev_hist_names;
      let id = !n_hists in
      incr n_hists;
      id)

let hist_registry () =
  Mutex.protect lock (fun () -> Array.of_list (List.rev !rev_hist_names))

(* ---------- enablement ---------- *)

let env_truthy = function None | Some "" | Some "0" -> false | Some _ -> true

let stats_env = env_truthy (Sys.getenv_opt "CR_STATS")

let trace_env =
  match Sys.getenv_opt "CR_TRACE" with
  | None | Some "" -> None
  | Some path -> Some path

let on = ref (stats_env || trace_env <> None)
let stats_wanted = ref stats_env

let tracking () = !on
let stats_enabled () = !stats_wanted

let force_enable () =
  on := true;
  stats_wanted := true

let force_collect () = on := true

(* ---------- per-domain state ---------- *)

type span_event = {
  sname : string;
  ts_us : float;  (* microseconds since process start *)
  dur_us : float;
  depth : int;  (* dynamic span-nesting depth at entry *)
  tid : int;  (* OCaml domain id *)
}

(* Log-bucketed histogram cell: bucket 0 holds value 0, bucket k >= 1
   holds values in [2^(k-1), 2^k).  Exact count/total/max ride along, so
   the bucket quantization only touches the quantile estimates. *)
type hcell = {
  mutable hcount : int;
  mutable htotal : int;
  mutable hmax : int;
  hbuckets : int array;  (* length [hist_buckets] *)
}

let hist_buckets = 63

let new_hcell () =
  { hcount = 0; htotal = 0; hmax = 0; hbuckets = Array.make hist_buckets 0 }

(* Bucket index of a value: 0 for 0 (negatives clamp), else
   1 + floor(log2 v), capped at the last bucket. *)
let bucket_of v =
  if v <= 0 then 0
  else begin
    let b = ref 0 and x = ref v in
    while !x > 0 do
      incr b;
      x := !x lsr 1
    done;
    min !b (hist_buckets - 1)
  end

(* Inclusive upper bound of a bucket (used for quantile estimates). *)
let bucket_hi b = if b = 0 then 0 else (1 lsl b) - 1

type dstate = {
  tid : int;
  mutable counts : int array;  (* indexed by counter id *)
  mutable hists : hcell option array;  (* indexed by histogram id *)
  mutable evs : span_event list;  (* most recent first *)
  mutable depth : int;
}

let all_dstates : dstate list ref = ref []

let dls_key : dstate Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let d =
        {
          tid = (Domain.self () :> int);
          counts = Array.make 64 0;
          hists = Array.make 16 None;
          evs = [];
          depth = 0;
        }
      in
      Mutex.protect lock (fun () -> all_dstates := d :: !all_dstates);
      d)

let cur () = Domain.DLS.get dls_key

let ensure d id =
  if id >= Array.length d.counts then begin
    let a = Array.make (max (2 * Array.length d.counts) (id + 1)) 0 in
    Array.blit d.counts 0 a 0 (Array.length d.counts);
    d.counts <- a
  end

let add c k =
  if !on && k <> 0 then begin
    let d = cur () in
    ensure d c;
    d.counts.(c) <- d.counts.(c) + k
  end

let incr c = add c 1

let record_max c v =
  if !on then begin
    let d = cur () in
    ensure d c;
    if v > d.counts.(c) then d.counts.(c) <- v
  end

(* ---------- histogram observations ---------- *)

let hcell_of d (h : histogram) =
  if h >= Array.length d.hists then begin
    let a = Array.make (max (2 * Array.length d.hists) (h + 1)) None in
    Array.blit d.hists 0 a 0 (Array.length d.hists);
    d.hists <- a
  end;
  match d.hists.(h) with
  | Some c -> c
  | None ->
      let c = new_hcell () in
      d.hists.(h) <- Some c;
      c

let observe h v =
  if !on then begin
    let c = hcell_of (cur ()) h in
    let v = max 0 v in
    c.hcount <- c.hcount + 1;
    c.htotal <- c.htotal + v;
    if v > c.hmax then c.hmax <- v;
    let b = bucket_of v in
    c.hbuckets.(b) <- c.hbuckets.(b) + 1
  end

(* ---------- live-worker accounting ---------- *)

(* [events], [merged_snapshot] and [merged_histograms] read every
   domain's private storage without synchronization; that is only sound
   when no worker domain is running.  [Par] brackets its fan-outs with
   [workers_add], and the merging entry points refuse to run (instead of
   silently racing) while the count is nonzero. *)
let live = Atomic.make 0

let workers_add k = ignore (Atomic.fetch_and_add live k : int)

let live_workers () = Atomic.get live

let assert_quiescent who =
  let n = Atomic.get live in
  if n > 0 then
    invalid_arg
      (Printf.sprintf
         "Obs.%s: called while %d worker domain(s) are live; merge only \
          between [Par] fan-outs"
         who n)

(* ---------- spans ---------- *)

let now_us () = Unix.gettimeofday () *. 1e6

let start_us = now_us ()

let span name f =
  if not !on then f ()
  else begin
    let d = cur () in
    let depth = d.depth in
    d.depth <- depth + 1;
    let t0 = now_us () in
    Fun.protect
      ~finally:(fun () ->
        let t1 = now_us () in
        d.depth <- depth;
        d.evs <-
          {
            sname = name;
            ts_us = t0 -. start_us;
            dur_us = t1 -. t0;
            depth;
            tid = d.tid;
          }
          :: d.evs)
      f
  end

let events () =
  assert_quiescent "events";
  let evs =
    Mutex.protect lock (fun () ->
        List.concat_map (fun d -> d.evs) !all_dstates)
  in
  List.sort
    (fun (a : span_event) (b : span_event) ->
      match compare a.tid b.tid with 0 -> compare a.ts_us b.ts_us | c -> c)
    evs

(* ---------- snapshots ---------- *)

type snapshot = (string * int) list

let snapshot_of_counts names counts =
  let acc = ref [] in
  Array.iteri
    (fun i name ->
      let v = if i < Array.length counts then counts.(i) else 0 in
      if v <> 0 then acc := (name, v) :: !acc)
    names;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

let domain_snapshot () =
  let names, _ = registry () in
  snapshot_of_counts names (cur ()).counts

(* Only meaningful when no worker domain is concurrently writing (the
   [Par] fan-outs join their domains before returning, so any point
   between two checker calls qualifies). *)
let merged_snapshot () =
  assert_quiescent "merged_snapshot";
  let names, kinds = registry () in
  let totals = Array.make (Array.length names) 0 in
  let dstates = Mutex.protect lock (fun () -> !all_dstates) in
  List.iter
    (fun d ->
      let m = min (Array.length totals) (Array.length d.counts) in
      for i = 0 to m - 1 do
        match kinds.(i) with
        | Sum -> totals.(i) <- totals.(i) + d.counts.(i)
        | Max -> if d.counts.(i) > totals.(i) then totals.(i) <- d.counts.(i)
      done)
    dstates;
  snapshot_of_counts names totals

(* [before] and [after] are name-sorted; Sum counters subtract, Max
   counters report the new high-water mark (only when it moved). *)
let diff ~(before : snapshot) ~(after : snapshot) : snapshot =
  let names, kinds = registry () in
  let kind_of =
    let tbl = Hashtbl.create 64 in
    Array.iteri (fun i n -> Hashtbl.replace tbl n kinds.(i)) names;
    fun n -> try Hashtbl.find tbl n with Not_found -> Sum
  in
  let rec go b a acc =
    match (b, a) with
    | [], rest -> List.rev_append acc rest
    | _, [] -> List.rev acc
    | (nb, vb) :: tb, (na, va) :: ta ->
        let c = String.compare nb na in
        if c < 0 then go tb a acc (* counter went back to 0: drop *)
        else if c > 0 then go b ta ((na, va) :: acc)
        else
          let d = match kind_of na with Sum -> va - vb | Max -> va in
          let acc =
            if d <> 0 && (kind_of na = Sum || va > vb) then (na, d) :: acc
            else acc
          in
          go tb ta acc
  in
  go before after []

(* ---------- merged histograms ---------- *)

type hstats = {
  count : int;
  total : int;
  max_value : int;
  buckets : int array;
}

(* Quantile estimate from the merged buckets: the inclusive upper bound
   of the bucket where the cumulative count first reaches q * count,
   clamped to the exact maximum.  Deterministic in the observation
   multiset (sums of per-domain buckets commute). *)
let quantile (h : hstats) q =
  if h.count = 0 then 0
  else begin
    let want =
      let w = int_of_float (ceil (q *. float_of_int h.count)) in
      min (max w 1) h.count
    in
    let b = ref 0 and seen = ref 0 in
    (try
       for i = 0 to Array.length h.buckets - 1 do
         seen := !seen + h.buckets.(i);
         if !seen >= want then begin
           b := i;
           raise Exit
         end
       done
     with Exit -> ());
    min (bucket_hi !b) h.max_value
  end

let mean (h : hstats) =
  if h.count = 0 then 0.0
  else float_of_int h.total /. float_of_int h.count

(* Histograms merged across every domain: bucket counts, totals and
   counts add; maxima take the maximum.  Like [merged_snapshot], only
   meaningful (and only permitted) when no worker domain is live. *)
let merged_histograms () =
  assert_quiescent "merged_histograms";
  let names = hist_registry () in
  let out = Array.map (fun _ -> None) names in
  let dstates = Mutex.protect lock (fun () -> !all_dstates) in
  List.iter
    (fun d ->
      let m = min (Array.length out) (Array.length d.hists) in
      for i = 0 to m - 1 do
        match d.hists.(i) with
        | None -> ()
        | Some c ->
            let acc =
              match out.(i) with
              | Some acc -> acc
              | None ->
                  let acc =
                    {
                      count = 0;
                      total = 0;
                      max_value = 0;
                      buckets = Array.make hist_buckets 0;
                    }
                  in
                  out.(i) <- Some acc;
                  acc
            in
            let acc =
              {
                acc with
                count = acc.count + c.hcount;
                total = acc.total + c.htotal;
                max_value = max acc.max_value c.hmax;
              }
            in
            Array.iteri
              (fun b v -> acc.buckets.(b) <- acc.buckets.(b) + v)
              c.hbuckets;
            out.(i) <- Some acc
      done)
    dstates;
  let acc = ref [] in
  Array.iteri
    (fun i name ->
      match out.(i) with
      | Some h when h.count > 0 -> acc := (name, h) :: !acc
      | Some _ | None -> ())
    names;
  List.sort (fun (a, _) (b, _) -> String.compare a b) !acc

(* ---------- GC / allocation accounting ---------- *)

(* Word counts come from [Gc.quick_stat] (no heap walk, no major slice);
   on OCaml 5 the mutable counters are those of the calling domain, so a
   span-scoped delta taken on one domain prices that domain's own
   allocation work. *)
type gc_cost = {
  minor_words : int;
  major_words : int;
  minor_collections : int;
  major_collections : int;
  top_heap_words : int;
}

(* [quick_stat.minor_words] only advances at minor-collection
   boundaries on OCaml 5, so a short span between two collections would
   read as zero allocation; [Gc.minor_words ()] reads the live bump
   pointer.  The major/collection counters keep quick_stat's
   collection-boundary resolution. *)
let gc_now () =
  let s = Gc.quick_stat () in
  {
    minor_words = int_of_float (Gc.minor_words ());
    major_words = int_of_float s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
    top_heap_words = s.Gc.top_heap_words;
  }

let gc_delta ~(before : gc_cost) ~(after : gc_cost) =
  {
    minor_words = after.minor_words - before.minor_words;
    major_words = after.major_words - before.major_words;
    minor_collections = after.minor_collections - before.minor_collections;
    major_collections = after.major_collections - before.major_collections;
    top_heap_words = after.top_heap_words;  (* a high-water mark *)
  }

(* The delta as name-sorted snapshot entries, so verdict costs can carry
   allocation next to counter movement; zero entries are omitted like
   everywhere else. *)
let gc_cost_entries (g : gc_cost) : snapshot =
  List.filter
    (fun (_, v) -> v <> 0)
    [
      ("gc.major_collections", g.major_collections);
      ("gc.major_words", g.major_words);
      ("gc.minor_collections", g.minor_collections);
      ("gc.minor_words", g.minor_words);
      ("gc.top_heap_words", g.top_heap_words);
    ]

let merge_snapshots (a : snapshot) (b : snapshot) : snapshot =
  List.sort (fun (x, _) (y, _) -> String.compare x y) (a @ b)

let reset () =
  Mutex.protect lock (fun () ->
      List.iter
        (fun d ->
          Array.fill d.counts 0 (Array.length d.counts) 0;
          Array.fill d.hists 0 (Array.length d.hists) None;
          d.evs <- [])
        !all_dstates)

(* ---------- human summary ---------- *)

let pp_snapshot fmt (snap : snapshot) =
  List.iter (fun (name, v) -> Format.fprintf fmt "  %-40s %d@." name v) snap

(* name -> (count, total_us, max_us), sorted by name *)
let span_aggregates () =
  let tbl = Hashtbl.create 64 in
  List.iter
    (fun e ->
      let c, tot, mx =
        try Hashtbl.find tbl e.sname with Not_found -> (0, 0.0, 0.0)
      in
      Hashtbl.replace tbl e.sname
        (c + 1, tot +. e.dur_us, Float.max mx e.dur_us))
    (events ());
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let pp_histograms fmt hists =
  Format.fprintf fmt "  %-40s %8s %10s %8s %8s %8s %8s@." "histogram" "count"
    "mean" "p50" "p90" "p99" "max";
  List.iter
    (fun (name, h) ->
      Format.fprintf fmt "  %-40s %8d %10.1f %8d %8d %8d %8d@." name h.count
        (mean h) (quantile h 0.5) (quantile h 0.9) (quantile h 0.99)
        h.max_value)
    hists

let pp_gc fmt () =
  let g = gc_now () in
  Format.fprintf fmt
    "  minor %.1f Mwords (%d collections), major %.1f Mwords (%d \
     collections), top heap %.1f Mwords@."
    (float_of_int g.minor_words /. 1e6)
    g.minor_collections
    (float_of_int g.major_words /. 1e6)
    g.major_collections
    (float_of_int g.top_heap_words /. 1e6)

let pp_summary fmt () =
  let counters = merged_snapshot () in
  if counters <> [] then begin
    Format.fprintf fmt "-- counters (merged over %d domain(s)) --@."
      (List.length !all_dstates);
    pp_snapshot fmt counters
  end;
  let hists = merged_histograms () in
  if hists <> [] then begin
    Format.fprintf fmt "-- histograms (log-bucketed, merged) --@.";
    pp_histograms fmt hists
  end;
  Format.fprintf fmt "-- gc (process totals) --@.";
  pp_gc fmt ();
  let spans = span_aggregates () in
  if spans <> [] then begin
    Format.fprintf fmt "-- spans --@.";
    Format.fprintf fmt "  %-40s %8s %12s %12s@." "span" "count" "total-ms"
      "max-ms";
    List.iter
      (fun (name, (c, tot, mx)) ->
        Format.fprintf fmt "  %-40s %8d %12.3f %12.3f@." name c (tot /. 1e3)
          (mx /. 1e3))
      spans
  end

(* ---------- Chrome trace export ---------- *)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      match ch with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | '\r' -> Buffer.add_string buf "\\r"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Trace-event format: a JSON array of "X" (complete) events with
   microsecond timestamps; pid is fixed, tid is the OCaml domain id.
   Loads in chrome://tracing and Perfetto. *)
let write_trace path =
  let evs = events () in
  let tids =
    List.sort_uniq compare (List.map (fun (e : span_event) -> e.tid) evs)
  in
  let buf = Buffer.create (4096 + (128 * List.length evs)) in
  Buffer.add_string buf "[\n";
  let first = ref true in
  let emit line =
    if not !first then Buffer.add_string buf ",\n";
    first := false;
    Buffer.add_string buf line
  in
  emit
    (Printf.sprintf
       "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\"args\":{\"name\":\"%s\"}}"
       (json_escape (Filename.basename Sys.executable_name)));
  List.iter
    (fun tid ->
      emit
        (Printf.sprintf
           "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"args\":{\"name\":\"domain %d\"}}"
           tid tid))
    tids;
  List.iter
    (fun e ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%.3f,\"dur\":%.3f,\"args\":{\"depth\":%d}}"
           (json_escape e.sname) e.tid e.ts_us e.dur_us e.depth))
    evs;
  Buffer.add_string buf "\n]\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

(* ---------- process-exit hook ---------- *)

(* Keyed on the environment variables only: a forced in-process enable
   (crcheck --stats) prints its own appendix and must not double-report,
   and the default run stays byte-identical on stdout AND stderr. *)
let finalized = ref false

let finalize () =
  if not !finalized then begin
    finalized := true;
    (match trace_env with
    | Some path -> (
        try
          write_trace path;
          Printf.eprintf "cr-obs: wrote trace %s (%d span(s))\n%!" path
            (List.length (events ()))
        with Sys_error msg -> Printf.eprintf "cr-obs: trace: %s\n%!" msg)
    | None -> ());
    if stats_env then Format.eprintf "cr-obs: run summary@.%a" pp_summary ()
  end

let () = at_exit finalize
