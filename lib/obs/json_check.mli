(** Minimal JSON parser and well-formedness checker (RFC 8259), used to
    validate the [CR_TRACE], bench [--json] and [CR_JOURNAL] artifacts —
    and to read them back in [perfdiff] and [journal_lint] — without
    adding a JSON dependency. *)

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

val parse_string : string -> (json, string) result
(** Parse exactly one JSON value (plus optional surrounding whitespace);
    [Error msg] locates the first syntax error.  String escapes are
    decoded; numbers come back as floats. *)

val parse_file : string -> (json, string) result

val validate_string : string -> (unit, string) result
(** [Ok ()] iff the whole string is exactly one valid JSON value plus
    optional surrounding whitespace; [Error msg] locates the first
    syntax error. *)

val validate_file : string -> (unit, string) result

val member : string -> json -> json option
(** Field lookup on an [Obj]; [None] on other constructors or a missing
    key. *)

val to_float : json -> float option
val to_int : json -> int option
(** [to_int] succeeds only on numbers with no fractional part. *)

val to_string : json -> string option
val to_bool : json -> bool option

val validate_jsonl_string : string -> (int, string) result
(** Validate JSON-Lines content: every non-empty line must be one JSON
    {e object}.  Returns the number of object lines; [Error] names the
    first offending line. *)

val validate_jsonl_file : string -> (int, string) result
