(** Minimal JSON well-formedness checker (syntax only, no AST), used to
    validate the [CR_TRACE] and bench [--json] artifacts without adding a
    JSON dependency. *)

val validate_string : string -> (unit, string) result
(** [Ok ()] iff the whole string is exactly one valid JSON value plus
    optional surrounding whitespace; [Error msg] locates the first
    syntax error. *)

val validate_file : string -> (unit, string) result
