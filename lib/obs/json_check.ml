(* Minimal JSON well-formedness checker (RFC 8259 syntax, no AST).

   The repo is kept dependency-free, so the trace artifacts written by
   {!Obs.write_trace} and the bench [--json] output are validated by this
   recursive-descent recognizer instead of a full JSON library.  It
   accepts exactly one JSON value plus surrounding whitespace. *)

type pos = { mutable i : int }

exception Bad of int * string

let error p msg = raise (Bad (p.i, msg))

let peek s p = if p.i < String.length s then Some s.[p.i] else None

let advance p = p.i <- p.i + 1

let skip_ws s p =
  let continue = ref true in
  while !continue do
    match peek s p with
    | Some (' ' | '\t' | '\n' | '\r') -> advance p
    | _ -> continue := false
  done

let expect s p c =
  match peek s p with
  | Some c' when c' = c -> advance p
  | Some c' -> error p (Printf.sprintf "expected %c, got %c" c c')
  | None -> error p (Printf.sprintf "expected %c, got end of input" c)

let lit s p word =
  String.iter (fun c -> expect s p c) word

let is_digit = function '0' .. '9' -> true | _ -> false

let is_hex = function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false

let string_body s p =
  expect s p '"';
  let continue = ref true in
  while !continue do
    match peek s p with
    | None -> error p "unterminated string"
    | Some '"' ->
        advance p;
        continue := false
    | Some '\\' -> (
        advance p;
        match peek s p with
        | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') -> advance p
        | Some 'u' ->
            advance p;
            for _ = 1 to 4 do
              match peek s p with
              | Some c when is_hex c -> advance p
              | _ -> error p "bad \\u escape"
            done
        | _ -> error p "bad escape")
    | Some c when Char.code c < 0x20 -> error p "control char in string"
    | Some _ -> advance p
  done

let number s p =
  (match peek s p with Some '-' -> advance p | _ -> ());
  (match peek s p with
  | Some '0' -> advance p
  | Some c when is_digit c ->
      while (match peek s p with Some c -> is_digit c | None -> false) do
        advance p
      done
  | _ -> error p "bad number");
  (match peek s p with
  | Some '.' ->
      advance p;
      (match peek s p with
      | Some c when is_digit c -> ()
      | _ -> error p "bad fraction");
      while (match peek s p with Some c -> is_digit c | None -> false) do
        advance p
      done
  | _ -> ());
  match peek s p with
  | Some ('e' | 'E') ->
      advance p;
      (match peek s p with Some ('+' | '-') -> advance p | _ -> ());
      (match peek s p with
      | Some c when is_digit c -> ()
      | _ -> error p "bad exponent");
      while (match peek s p with Some c -> is_digit c | None -> false) do
        advance p
      done
  | _ -> ()

let rec value s p =
  skip_ws s p;
  match peek s p with
  | Some '{' ->
      advance p;
      skip_ws s p;
      (match peek s p with
      | Some '}' -> advance p
      | _ ->
          let continue = ref true in
          while !continue do
            skip_ws s p;
            string_body s p;
            skip_ws s p;
            expect s p ':';
            value s p;
            skip_ws s p;
            match peek s p with
            | Some ',' -> advance p
            | Some '}' ->
                advance p;
                continue := false
            | _ -> error p "expected , or } in object"
          done)
  | Some '[' ->
      advance p;
      skip_ws s p;
      (match peek s p with
      | Some ']' -> advance p
      | _ ->
          let continue = ref true in
          while !continue do
            value s p;
            skip_ws s p;
            match peek s p with
            | Some ',' -> advance p
            | Some ']' ->
                advance p;
                continue := false
            | _ -> error p "expected , or ] in array"
          done)
  | Some '"' -> string_body s p
  | Some 't' -> lit s p "true"
  | Some 'f' -> lit s p "false"
  | Some 'n' -> lit s p "null"
  | Some ('-' | '0' .. '9') -> number s p
  | Some c -> error p (Printf.sprintf "unexpected %c" c)
  | None -> error p "unexpected end of input"

let validate_string s =
  let p = { i = 0 } in
  match
    value s p;
    skip_ws s p;
    if p.i <> String.length s then error p "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (i, msg) -> Error (Printf.sprintf "offset %d: %s" i msg)

let validate_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      validate_string s
