(* Minimal JSON checker and parser (RFC 8259 syntax).

   The repo is kept dependency-free, so the trace artifacts written by
   {!Obs.write_trace}, the bench [--json] output, the [CR_JOURNAL] JSONL
   stream and the perfdiff inputs are handled by this recursive-descent
   parser instead of a full JSON library.  [validate_*] only recognizes
   (no AST); [parse_string] additionally builds a value, which perfdiff
   and journal_lint consume. *)

type pos = { mutable i : int }

exception Bad of int * string

let error p msg = raise (Bad (p.i, msg))

let peek s p = if p.i < String.length s then Some s.[p.i] else None

let advance p = p.i <- p.i + 1

let skip_ws s p =
  let continue = ref true in
  while !continue do
    match peek s p with
    | Some (' ' | '\t' | '\n' | '\r') -> advance p
    | _ -> continue := false
  done

let expect s p c =
  match peek s p with
  | Some c' when c' = c -> advance p
  | Some c' -> error p (Printf.sprintf "expected %c, got %c" c c')
  | None -> error p (Printf.sprintf "expected %c, got end of input" c)

let lit s p word =
  String.iter (fun c -> expect s p c) word

let is_digit = function '0' .. '9' -> true | _ -> false

let is_hex = function
  | '0' .. '9' | 'a' .. 'f' | 'A' .. 'F' -> true
  | _ -> false

(* Recognize and decode a string literal.  Escapes decode to their
   characters; \uXXXX decodes to UTF-8 (surrogates are not paired —
   artifacts here are ASCII in practice). *)
let string_body s p =
  expect s p '"';
  let buf = Buffer.create 16 in
  let continue = ref true in
  while !continue do
    match peek s p with
    | None -> error p "unterminated string"
    | Some '"' ->
        advance p;
        continue := false
    | Some '\\' -> (
        advance p;
        match peek s p with
        | Some ('"' as c) | Some ('\\' as c) | Some ('/' as c) ->
            Buffer.add_char buf c;
            advance p
        | Some 'b' -> Buffer.add_char buf '\b'; advance p
        | Some 'f' -> Buffer.add_char buf '\012'; advance p
        | Some 'n' -> Buffer.add_char buf '\n'; advance p
        | Some 'r' -> Buffer.add_char buf '\r'; advance p
        | Some 't' -> Buffer.add_char buf '\t'; advance p
        | Some 'u' ->
            advance p;
            let code = ref 0 in
            for _ = 1 to 4 do
              match peek s p with
              | Some c when is_hex c ->
                  let d =
                    match c with
                    | '0' .. '9' -> Char.code c - Char.code '0'
                    | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
                    | _ -> Char.code c - Char.code 'A' + 10
                  in
                  code := (!code * 16) + d;
                  advance p
              | _ -> error p "bad \\u escape"
            done;
            let u = !code in
            if u < 0x80 then Buffer.add_char buf (Char.chr u)
            else if u < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xc0 lor (u lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xe0 lor (u lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3f)));
              Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3f)))
            end
        | _ -> error p "bad escape")
    | Some c when Char.code c < 0x20 -> error p "control char in string"
    | Some c ->
        Buffer.add_char buf c;
        advance p
  done;
  Buffer.contents buf

let number s p =
  let start = p.i in
  (match peek s p with Some '-' -> advance p | _ -> ());
  (match peek s p with
  | Some '0' -> advance p
  | Some c when is_digit c ->
      while (match peek s p with Some c -> is_digit c | None -> false) do
        advance p
      done
  | _ -> error p "bad number");
  (match peek s p with
  | Some '.' ->
      advance p;
      (match peek s p with
      | Some c when is_digit c -> ()
      | _ -> error p "bad fraction");
      while (match peek s p with Some c -> is_digit c | None -> false) do
        advance p
      done
  | _ -> ());
  (match peek s p with
  | Some ('e' | 'E') ->
      advance p;
      (match peek s p with Some ('+' | '-') -> advance p | _ -> ());
      (match peek s p with
      | Some c when is_digit c -> ()
      | _ -> error p "bad exponent");
      while (match peek s p with Some c -> is_digit c | None -> false) do
        advance p
      done
  | _ -> ());
  float_of_string (String.sub s start (p.i - start))

type json =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of json list
  | Obj of (string * json) list

let rec value s p =
  skip_ws s p;
  match peek s p with
  | Some '{' ->
      advance p;
      skip_ws s p;
      (match peek s p with
      | Some '}' ->
          advance p;
          Obj []
      | _ ->
          let fields = ref [] in
          let continue = ref true in
          while !continue do
            skip_ws s p;
            let k = string_body s p in
            skip_ws s p;
            expect s p ':';
            let v = value s p in
            fields := (k, v) :: !fields;
            skip_ws s p;
            match peek s p with
            | Some ',' -> advance p
            | Some '}' ->
                advance p;
                continue := false
            | _ -> error p "expected , or } in object"
          done;
          Obj (List.rev !fields))
  | Some '[' ->
      advance p;
      skip_ws s p;
      (match peek s p with
      | Some ']' ->
          advance p;
          Arr []
      | _ ->
          let items = ref [] in
          let continue = ref true in
          while !continue do
            items := value s p :: !items;
            skip_ws s p;
            match peek s p with
            | Some ',' -> advance p
            | Some ']' ->
                advance p;
                continue := false
            | _ -> error p "expected , or ] in array"
          done;
          Arr (List.rev !items))
  | Some '"' -> Str (string_body s p)
  | Some 't' -> lit s p "true"; Bool true
  | Some 'f' -> lit s p "false"; Bool false
  | Some 'n' -> lit s p "null"; Null
  | Some ('-' | '0' .. '9') -> Num (number s p)
  | Some c -> error p (Printf.sprintf "unexpected %c" c)
  | None -> error p "unexpected end of input"

let parse_string s =
  let p = { i = 0 } in
  match
    let v = value s p in
    skip_ws s p;
    if p.i <> String.length s then error p "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (i, msg) -> Error (Printf.sprintf "offset %d: %s" i msg)

let parse_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      parse_string s

let validate_string s = Result.map (fun (_ : json) -> ()) (parse_string s)

let validate_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      validate_string s

(* ---------- field access ---------- *)

let member k = function
  | Obj fields -> List.assoc_opt k fields
  | _ -> None

let to_float = function Num f -> Some f | _ -> None

let to_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let to_string = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

(* ---------- JSONL (one JSON object per non-empty line) ---------- *)

let validate_jsonl_string s =
  let lines = String.split_on_char '\n' s in
  let rec go lineno count = function
    | [] -> Ok count
    | line :: rest ->
        if String.trim line = "" then go (lineno + 1) count rest
        else (
          match parse_string line with
          | Ok (Obj _) -> go (lineno + 1) (count + 1) rest
          | Ok _ -> Error (Printf.sprintf "line %d: not a JSON object" lineno)
          | Error msg -> Error (Printf.sprintf "line %d: %s" lineno msg))
  in
  go 1 0 lines

let validate_jsonl_file path =
  match open_in_bin path with
  | exception Sys_error msg -> Error msg
  | ic ->
      let s = really_input_string ic (in_channel_length ic) in
      close_in ic;
      validate_jsonl_string s
