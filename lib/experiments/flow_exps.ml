(* Registry-wide abstract-interpretation audit: run the Cr_flow engine
   over every bundled system's program at one ring size, derive the
   convergence-stair layering, and cross-check against the registry's
   actual stabilization verdicts.  Backs [crcheck flow --all]. *)

type row = {
  entry : Registry.entry;
  flow : Cr_flow.Flow.t;
  rank : Cr_flow.Rank.t option;
  verdict : bool option;
      (* the registry stabilization verdict, when cheap enough to ask *)
}

(* Asking the model checker for a verdict compiles the explicit system;
   keep that to spaces the CSR kernels handle instantly so the audit
   stays a static-analysis command. *)
let default_verdict_budget = 1 lsl 17

let audit_entry ?(verdict_budget = default_verdict_budget) ~n
    (e : Registry.entry) : row =
  let flow = Cr_flow.Flow.analyze (e.Registry.program n) in
  let rank = Cr_flow.Rank.of_flow flow in
  let verdict =
    if flow.Cr_flow.Flow.num_states > verdict_budget then None
    else
      try
        Some (Registry.stabilization e n).Cr_core.Stabilize.holds
      with _ -> None
  in
  { entry = e; flow; rank; verdict }

let audit ?verdict_budget ?(n = 3) () : row list =
  Cr_obs.Obs.span "lint.flow.audit_all" @@ fun () ->
  List.map (audit_entry ?verdict_budget ~n) Registry.entries

let total_errors rows =
  List.fold_left (fun acc r -> acc + Cr_flow.Flow.errors r.flow) 0 rows

(* ---- JSON artifact ---- *)

let finding_json = Cr_lint.Lint.finding_to_json

let rank_json layout (rk : Cr_flow.Rank.t) =
  let layer_json comps =
    Printf.sprintf "[%s]"
      (String.concat ","
         (Array.to_list
            (Array.map
               (fun c ->
                 Printf.sprintf "[%s]"
                   (String.concat ","
                      (Array.to_list
                         (Array.map
                            (fun s ->
                              Printf.sprintf "\"%s\""
                                (Cr_lint.Lint.json_escape
                                   (Cr_guarded.Layout.var_name layout s)))
                            rk.Cr_flow.Rank.components.(c)))))
               comps)))
  in
  Printf.sprintf "{\"acyclic\":%b,\"depth\":%d,\"layers\":[%s]}"
    rk.Cr_flow.Rank.acyclic
    (Cr_flow.Rank.depth rk)
    (String.concat ","
       (Array.to_list (Array.map layer_json rk.Cr_flow.Rank.layers)))

let row_json (r : row) =
  let fl = r.flow in
  Printf.sprintf
    "{\"entry\":\"%s\",\"program\":\"%s\",\"num_states\":%d,\"degraded\":%b,\"errors\":%d,\"init_rounds\":%d,\"init_sound\":%b,\"findings\":[%s],\"stair\":%s,\"stabilizing\":%s}"
    (Cr_lint.Lint.json_escape r.entry.Registry.name)
    (Cr_lint.Lint.json_escape
       (Cr_guarded.Program.name fl.Cr_flow.Flow.program))
    fl.Cr_flow.Flow.num_states fl.Cr_flow.Flow.degraded
    (Cr_flow.Flow.errors fl)
    fl.Cr_flow.Flow.init_rounds fl.Cr_flow.Flow.init_sound
    (String.concat "," (List.map finding_json fl.Cr_flow.Flow.findings))
    (match r.rank with
    | None -> "null"
    | Some rk -> rank_json fl.Cr_flow.Flow.layout rk)
    (match r.verdict with
    | None -> "null"
    | Some b -> string_of_bool b)

let to_json ~n rows =
  Printf.sprintf "{%s,\"systems\":[%s]}"
    (Cr_lint.Lint.artifact_header ~version:1 ~n)
    (String.concat "," (List.map row_json rows))

(* ---- rendering ---- *)

let pp_row fmt (r : row) =
  let fl = r.flow in
  Cr_flow.Flow.pp_summary fmt fl;
  List.iter
    (fun f -> Fmt.pf fmt "  %a@." Cr_lint.Lint.pp_finding f)
    fl.Cr_flow.Flow.findings;
  (match r.rank with
  | None -> Fmt.pf fmt "  stair: (degraded, no exact support)@."
  | Some rk ->
      Fmt.pf fmt "  stair (%s, depth %d):@."
        (if rk.Cr_flow.Rank.acyclic then "acyclic — true per-slot order"
         else "cyclic components marked *")
        (Cr_flow.Rank.depth rk);
      Cr_flow.Rank.pp fl.Cr_flow.Flow.layout fmt rk);
  match r.verdict with
  | None -> ()
  | Some b ->
      Fmt.pf fmt "  registry stabilization verdict: %s@."
        (if b then "stabilizing" else "not stabilizing")

let pp_summary fmt rows =
  List.iter
    (fun r ->
      Fmt.pf fmt "%-14s %-26s %s, %d finding(s), %d error(s), stair %s@."
        r.entry.Registry.name
        (Cr_guarded.Program.name r.flow.Cr_flow.Flow.program)
        (if r.flow.Cr_flow.Flow.degraded then "degraded"
         else Printf.sprintf "%d states" r.flow.Cr_flow.Flow.num_states)
        (List.length r.flow.Cr_flow.Flow.findings)
        (Cr_flow.Flow.errors r.flow)
        (match r.rank with
        | None -> "-"
        | Some rk ->
            Printf.sprintf "depth %d%s" (Cr_flow.Rank.depth rk)
              (if rk.Cr_flow.Rank.acyclic then " (acyclic)" else "")))
    rows
