(* Registry-wide static-analysis sweep: audit every bundled system's
   guarded-command program with Cr_lint at one ring size.  Backs
   [crcheck lint --all] and the interference comparison of the E17
   appendix (I1 pairs on Dijkstra-3 vs their disappearance on the
   read/write-atomicity refinement). *)

type row = {
  entry : Registry.entry;
  report : Cr_lint.Lint.report;
}

(* Lint v2: one Rwsets pass feeds both the exact battery and the flow
   engine; the abstract init fixpoint pre-filters the exact closure and
   contributes its F2/F3 findings.  Over-budget systems degrade to a
   single B1 finding instead of hanging. *)
let audit_entry ~n (e : Registry.entry) : row =
  let report, _flow =
    Cr_flow.Flow.lint ~allow:e.Registry.lint_allow (e.Registry.program n)
  in
  { entry = e; report }

let audit ?(n = 3) () : row list =
  Cr_obs.Obs.span "lint.audit_all" @@ fun () ->
  List.map (audit_entry ~n) Registry.entries

let total_errors rows =
  List.fold_left (fun acc r -> acc + Cr_lint.Lint.errors r.report) 0 rows

let to_json ~n rows =
  Cr_lint.Lint.reports_to_json ~n
    (List.map (fun r -> (r.entry.Registry.name, r.report)) rows)

(* I1 interference-pair counts for the E17 story: the shared-memory
   Dijkstra-3 reads neighbour counters inside effectful actions; the
   rw_atomicity refinement moves every remote read into an atomic
   cache-fill copy, which I1 exempts. *)
let interference_count ~n name =
  match Registry.find name with
  | None -> invalid_arg ("Lint_exps.interference_count: unknown system " ^ name)
  | Some e ->
      let r = audit_entry ~n e in
      List.length (Cr_lint.Lint.find_key "I1" r.report)

let pp_summary fmt rows =
  List.iter
    (fun r ->
      let errs = Cr_lint.Lint.errors r.report in
      let total = List.length r.report.Cr_lint.Lint.findings in
      Fmt.pf fmt "%-14s %-22s %d finding(s), %d error(s)@."
        r.entry.Registry.name r.report.Cr_lint.Lint.program_name total errs)
    rows
