(** Extension experiments beyond the paper's text (DESIGN.md E16-E18). *)

open Cr_guarded

type sync_verdict = {
  name : string;
  n : int;
  stabilizes : bool;
  witness_cycle : Layout.state list option;
}

val sync_dijkstra3 : int -> sync_verdict
(** E16: Dijkstra-3 under the fully synchronous daemon. *)

val sync_dijkstra4 : int -> sync_verdict
val sync_kstate : int -> sync_verdict

type rw_verdict = {
  n : int;
  states : int;
  stabilizes_unfair : bool;
  stabilizes_fair : bool;
  init_refines_dijkstra3 : bool;
  fault_free_coherent_tokens : bool;
}

val rw_experiment : int -> rw_verdict
(** E17: read/write atomicity refinement of Dijkstra-3 — fault-free
    refinement survives, stabilization does not. *)

type hitting_row = {
  system : string;
  n : int;
  worst_exact : int;
  expected_worst : float;
  expected_mean : float;
}

val hitting_dijkstra3 : int -> hitting_row
(** E18: exact expected recovery under the uniform random daemon. *)

val hitting_dijkstra4 : int -> hitting_row
val hitting_kstate : int -> hitting_row

val synchronous_stabilization :
  name:string ->
  mk:(int -> Program.t) ->
  mk_alpha:(int -> (Layout.state, Cr_tokenring.Btr.state) Cr_semantics.Abstraction.t) ->
  int ->
  sync_verdict

val hitting :
  name:string ->
  mk:(int -> Program.t) ->
  mk_spec:(int -> Program.t) ->
  mk_alpha:(int -> (Layout.state, Layout.state) Cr_semantics.Abstraction.t) ->
  int ->
  hitting_row
