(* Named registry of the systems built in this repository, for the
   command-line driver and the examples. *)

open Cr_guarded

type entry = {
  name : string;
  describe : string;
  program : int -> Program.t;  (* parameterized by ring size n *)
  spec : int -> Program.t;  (* the specification it stabilizes to *)
  alpha : int -> (Layout.state, Layout.state) Cr_semantics.Abstraction.t;
  converged : int -> Layout.state -> bool;
  render : int -> Layout.state -> string;  (* one-line picture for traces *)
  lint_allow : string list;
      (* lint checks to downgrade for this system; the abstract
         neighbour-writing models allowlist P1 (shared-slot writes are
         the point of the abstract execution model, cf. Section 3) *)
}

let id_alpha _n = Cr_semantics.Abstraction.identity ()

let entries : entry list =
  [
    {
      name = "dijkstra3";
      describe = "Dijkstra's 3-state stabilizing token ring (Section 5)";
      program = Cr_tokenring.Btr3.dijkstra3;
      spec = Cr_tokenring.Btr.program;
      alpha = Cr_tokenring.Btr3.alpha;
      converged = Cr_tokenring.Btr3.one_token;
      render = (fun n s -> Cr_tokenring.Render.counters3_line n s);
      lint_allow = [];
    };
    {
      name = "dijkstra4";
      describe = "Dijkstra's 4-state stabilizing token ring (Section 4)";
      program = Cr_tokenring.Btr4.dijkstra4;
      spec = Cr_tokenring.Btr.program;
      alpha = Cr_tokenring.Btr4.alpha;
      converged = Cr_tokenring.Btr4.one_token;
      render = (fun n s -> Cr_tokenring.Render.tokens_line n (Cr_tokenring.Btr4.to_tokens n s));
      lint_allow = [];
    };
    {
      name = "c1";
      describe = "C1, the 4-state concrete refinement of BTR (Section 4.2)";
      program = Cr_tokenring.Btr4.c1;
      spec = Cr_tokenring.Btr.program;
      alpha = Cr_tokenring.Btr4.alpha;
      converged = Cr_tokenring.Btr4.one_token;
      render = (fun n s -> Cr_tokenring.Render.tokens_line n (Cr_tokenring.Btr4.to_tokens n s));
      lint_allow = [];
    };
    {
      name = "c2";
      describe = "C2, the 3-state concrete refinement of BTR_3 (Section 5.2)";
      program = Cr_tokenring.Btr3.c2;
      spec = Cr_tokenring.Btr.program;
      alpha = Cr_tokenring.Btr3.alpha;
      converged = Cr_tokenring.Btr3.one_token;
      render = (fun n s -> Cr_tokenring.Render.counters3_line n s);
      lint_allow = [];
    };
    {
      name = "c2-wrapped";
      describe = "C2 [] W1'' [] W2' (Theorem 11's composition)";
      program = Cr_tokenring.Btr3.c2_wrapped;
      spec = Cr_tokenring.Btr.program;
      alpha = Cr_tokenring.Btr3.alpha;
      converged = Cr_tokenring.Btr3.one_token;
      render = (fun n s -> Cr_tokenring.Render.counters3_line n s);
      lint_allow = [];
    };
    {
      name = "c3";
      describe = "C3, the new 3-state implementation (Section 6)";
      program = Cr_tokenring.C3_system.c3;
      spec = Cr_tokenring.Btr.program;
      alpha = Cr_tokenring.C3_system.alpha;
      converged = Cr_tokenring.Btr3.one_token;
      render = (fun n s -> Cr_tokenring.Render.counters3_line n s);
      lint_allow = [];
    };
    {
      name = "new3";
      describe = "C3 [] W1'' [] W2', the new 3-state stabilizing system";
      program = Cr_tokenring.C3_system.new3;
      spec = Cr_tokenring.Btr.program;
      alpha = Cr_tokenring.C3_system.alpha;
      converged = Cr_tokenring.Btr3.one_token;
      render = (fun n s -> Cr_tokenring.Render.counters3_line n s);
      lint_allow = [];
    };
    {
      name = "btr";
      describe = "the abstract bidirectional token ring (fault-intolerant)";
      program = Cr_tokenring.Btr.program;
      spec = Cr_tokenring.Btr.program;
      alpha = id_alpha;
      converged = Cr_tokenring.Btr.invariant;
      render = (fun n s -> Cr_tokenring.Render.tokens_line n s);
      lint_allow = [ "P1" ];
    };
    {
      name = "btr-wrapped";
      describe = "BTR [] W1 [] W2, union semantics (Theorem 6's subject)";
      program = Cr_tokenring.Btr.wrapped;
      spec = Cr_tokenring.Btr.program;
      alpha = id_alpha;
      converged = Cr_tokenring.Btr.invariant;
      render = (fun n s -> Cr_tokenring.Render.tokens_line n s);
      lint_allow = [ "P1" ];
    };
    {
      name = "kstate";
      describe = "Dijkstra's K-state ring with K = N+1 (full version)";
      program = (fun n -> Cr_tokenring.Kstate.program ~n ~k:(n + 1));
      spec = Cr_tokenring.Utr.program;
      alpha = (fun n -> Cr_tokenring.Kstate.alpha ~n ~k:(n + 1));
      converged = (fun n s -> Cr_tokenring.Kstate.token_count n s = 1);
      render = (fun n s -> Cr_tokenring.Render.utr_line (Cr_tokenring.Kstate.to_tokens n s));
      lint_allow = [];
    };
    {
      name = "rw-dijkstra3";
      describe =
        "read/write atomicity refinement of Dijkstra-3 (extension E17)";
      program = Cr_tokenring.Rw_atomicity.program;
      spec = Cr_tokenring.Btr.program;
      alpha = Cr_tokenring.Rw_atomicity.alpha;
      converged =
        (fun n s ->
          Cr_tokenring.Btr.token_count n (Cr_tokenring.Rw_atomicity.to_tokens n s)
          = 1);
      render = (fun n s -> Cr_tokenring.Render.counters3_line n (Cr_tokenring.Rw_atomicity.to_counters n s));
      lint_allow = [];
    };
    {
      name = "utr";
      describe = "the abstract unidirectional token ring (fault-intolerant)";
      program = Cr_tokenring.Utr.program;
      spec = Cr_tokenring.Utr.program;
      alpha = id_alpha;
      converged = (fun _n s -> Cr_tokenring.Utr.invariant s);
      render = (fun _n s -> Cr_tokenring.Render.utr_line s);
      lint_allow = [ "P1" ];
    };
  ]

let find name = List.find_opt (fun e -> e.name = name) entries

let names () = List.map (fun e -> e.name) entries

(* Compile an entry (or its spec) at size n.  These go through
   [Program.to_explicit] and therefore the process-wide compile cache:
   a driver that compiles the same registry system at the same size
   twice — e.g. crcheck verify, whose btr spec IS the btr program —
   pays for one compile. *)
let explicit e n = Program.to_explicit (e.program n)

(* Init-anchored compile of an entry: the reachable-fragment (sparse)
   engine unless CR_SPACE forces one.  Everything the refinement
   checkers quantify over lives in the fragment reachable from the
   initial states, so refine verdicts computed here agree with the
   dense engine restricted to that fragment — and the concrete systems'
   legitimate orbits are a vanishing fraction of their product spaces,
   which is what lets refine run at ring sizes the dense compile cannot
   materialize. *)
let init_explicit e n =
  Program.to_explicit
    ~space:(Cr_semantics.Space.resolve ~default:Cr_semantics.Space.Sparse ())
    (e.program n)

let spec_explicit e n = Program.to_explicit (e.spec n)

(* Verdict routing.  Every driver (crcheck, the report tables, tests)
   that asks the same registry question goes through these, so the
   content-addressed Check_cache inside Refine/Stabilize serves one
   computed verdict to all of them. *)

let alpha_table e n =
  let ep = explicit e n and spec = spec_explicit e n in
  Cr_semantics.Abstraction.tabulate (e.alpha n) ep spec

let stabilization ?fair e n =
  let ep = explicit e n and spec = spec_explicit e n in
  let alpha = Cr_semantics.Abstraction.tabulate (e.alpha n) ep spec in
  Cr_core.Stabilize.stabilizing_to ~alpha ?fair ~c:ep ~a:spec ()

let refinements e n =
  let ep = init_explicit e n and spec = spec_explicit e n in
  let alpha = Cr_semantics.Abstraction.tabulate (e.alpha n) ep spec in
  [
    ("init", Cr_core.Refine.init_refinement ~alpha ~c:ep ~a:spec ());
    ("everywhere", Cr_core.Refine.everywhere_refinement ~alpha ~c:ep ~a:spec ());
    ("convergence", Cr_core.Refine.convergence_refinement ~alpha ~c:ep ~a:spec ());
    ("ee", Cr_core.Refine.everywhere_eventually_refinement ~alpha ~c:ep ~a:spec ());
  ]
