(* Extension experiments beyond the paper's text (DESIGN.md E16-E18):

   - E16: the derived systems under a fully SYNCHRONOUS daemon (all
     enabled processes fire at once).  Dijkstra's systems were designed
     for a central daemon; synchrony is a different execution-model
     refinement and some systems lose stabilization to it.
   - E17: read/write atomicity refinement of Dijkstra's 3-state ring
     (see {!Cr_tokenring.Rw_atomicity}).
   - E18: exact expected recovery time (uniform random daemon) via the
     hitting-time solver, cross-checking the Monte-Carlo means. *)

open Cr_guarded
open Cr_tokenring

(* ---- E16: synchronous daemon ---- *)

type sync_verdict = {
  name : string;
  n : int;
  stabilizes : bool;
  witness_cycle : Layout.state list option;
      (* a synchronous execution that oscillates forever *)
}

let synchronous_stabilization ~name ~(mk : int -> Program.t)
    ~(mk_alpha : int -> (Layout.state, Btr.state) Cr_semantics.Abstraction.t)
    n =
  let btr = Program.to_explicit (Btr.program n) in
  let e = Program.to_explicit_synchronous (mk n) in
  let alpha = Cr_semantics.Abstraction.tabulate (mk_alpha n) e btr in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:btr () in
  {
    name;
    n;
    stabilizes = r.Cr_core.Stabilize.holds;
    witness_cycle =
      Option.map
        (List.map (Cr_semantics.Explicit.state e))
        r.Cr_core.Stabilize.bad_cycle;
  }

let sync_dijkstra3 n =
  synchronous_stabilization ~name:"Dijkstra-3state" ~mk:Btr3.dijkstra3
    ~mk_alpha:Btr3.alpha n

let sync_dijkstra4 n =
  synchronous_stabilization ~name:"Dijkstra-4state" ~mk:Btr4.dijkstra4
    ~mk_alpha:Btr4.alpha n

let sync_kstate n =
  let k = n + 1 in
  let utr = Program.to_explicit (Utr.program n) in
  let e = Program.to_explicit_synchronous (Kstate.program ~n ~k) in
  let alpha = Cr_semantics.Abstraction.tabulate (Kstate.alpha ~n ~k) e utr in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:utr () in
  {
    name = "K-state (K=N+1)";
    n;
    stabilizes = r.Cr_core.Stabilize.holds;
    witness_cycle =
      Option.map
        (List.map (Cr_semantics.Explicit.state e))
        r.Cr_core.Stabilize.bad_cycle;
  }

(* ---- E17: read/write atomicity ---- *)

type rw_verdict = {
  n : int;
  states : int;
  stabilizes_unfair : bool;
  stabilizes_fair : bool;
  init_refines_dijkstra3 : bool;
      (* from the coherent orbit, the rw system tracks Dijkstra-3 modulo
         read stutters *)
  fault_free_coherent_tokens : bool;
      (* the orbit keeps a single token on the counter projection *)
}

let rw_experiment n =
  let p = Rw_atomicity.program n in
  let e = Program.to_explicit p in
  let btr = Program.to_explicit (Btr.program n) in
  let alpha = Cr_semantics.Abstraction.tabulate (Rw_atomicity.alpha n) e btr in
  let unfair = Cr_core.Stabilize.stabilizing_to ~alpha ~stutter:`Allow ~c:e ~a:btr () in
  let fair = Cr_sim.Glue.fair_tables p e in
  let fairr =
    Cr_core.Stabilize.stabilizing_to ~alpha ~fair ~stutter:`Allow ~c:e ~a:btr ()
  in
  (* init refinement against Dijkstra-3 through the cache-forgetting
     abstraction: reachable transitions are either counter moves of
     Dijkstra-3 or pure read stutters *)
  let d3 = Program.to_explicit (Btr3.dijkstra3 n) in
  let ac = Cr_semantics.Abstraction.tabulate (Rw_atomicity.alpha_counters n) e d3 in
  let reach = Cr_checker.Reach.reachable_from_initial e in
  let init_ok = ref true in
  Cr_semantics.Explicit.iter_edges e (fun i j ->
      if Cr_kernel.Bitset.get reach i then begin
        let ai = ac.(i) and aj = ac.(j) in
        if not (ai = aj || Cr_semantics.Explicit.has_edge d3 ai aj) then
          init_ok := false
      end);
  let tokens_ok = ref true in
  List.iter
    (fun i ->
      let s = Cr_semantics.Explicit.state e i in
      if Btr.token_count n (Rw_atomicity.to_tokens n s) <> 1 then
        tokens_ok := false)
    (Cr_kernel.Bitset.members reach);
  {
    n;
    states = Cr_semantics.Explicit.num_states e;
    stabilizes_unfair = unfair.Cr_core.Stabilize.holds;
    stabilizes_fair = fairr.Cr_core.Stabilize.holds;
    init_refines_dijkstra3 = !init_ok;
    fault_free_coherent_tokens = !tokens_ok;
  }

(* ---- E18: exact expected recovery (hitting times) ---- *)

type hitting_row = {
  system : string;
  n : int;
  worst_exact : int;  (* longest path, adversarial *)
  expected_worst : float;  (* max over states of E[steps], random daemon *)
  expected_mean : float;  (* mean over states *)
}

let hitting ~name ~(mk : int -> Program.t)
    ~(mk_spec : int -> Program.t)
    ~(mk_alpha : int -> (Layout.state, Layout.state) Cr_semantics.Abstraction.t)
    n =
  let e = Program.to_explicit (mk n) in
  let spec = Program.to_explicit (mk_spec n) in
  let alpha = Cr_semantics.Abstraction.tabulate (mk_alpha n) e spec in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:spec () in
  let succ = Cr_checker.Reach.of_explicit e in
  let pred = Cr_checker.Reach.pred_of_explicit e in
  let ex =
    Cr_checker.Hitting.expected_csr ~succ ~pred
      ~target:r.Cr_core.Stabilize.good_mask ()
  in
  {
    system = name;
    n;
    worst_exact = Option.value ~default:0 r.Cr_core.Stabilize.worst_case_recovery;
    expected_worst = Cr_checker.Hitting.max_finite ex;
    expected_mean = Cr_checker.Hitting.mean_finite ex;
  }

let hitting_dijkstra3 n =
  hitting ~name:"Dijkstra-3state" ~mk:Btr3.dijkstra3 ~mk_spec:Btr.program
    ~mk_alpha:Btr3.alpha n

let hitting_dijkstra4 n =
  hitting ~name:"Dijkstra-4state" ~mk:Btr4.dijkstra4 ~mk_spec:Btr.program
    ~mk_alpha:Btr4.alpha n

let hitting_kstate n =
  let k = n + 1 in
  hitting ~name:"K-state (K=N+1)"
    ~mk:(fun n -> Kstate.program ~n ~k)
    ~mk_spec:Utr.program
    ~mk_alpha:(fun n -> Kstate.alpha ~n ~k)
    n
