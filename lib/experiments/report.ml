(* Printing of every experiment table (DESIGN.md / EXPERIMENTS.md).
   Shared by the benchmark harness and the crcheck CLI. *)

let pf = Format.printf

let hr title = pf "@.======== %s ========@." title

let yn b = if b then "yes" else "NO"

(* Per-N rows of one table are independent, so they are computed with the
   CR_JOBS fan-out and printed afterwards in sweep order; the output never
   depends on the job count. *)
let par_rows = Cr_kernel.Par.map

(* ---------- experiment tables ---------- *)

let table_fig1 () =
  hr "E1  Figure 1: refinement alone is not stabilization-preserving";
  let v = Fig_exps.run () in
  pf "[C ⊑ A]_init                : %s@." (yn v.Fig_exps.c_refines_a_init);
  pf "A stabilizing to A          : %s@." (yn v.Fig_exps.a_self_stabilizing);
  pf "C stabilizing to A          : %s   <- the counterexample@."
    (yn v.Fig_exps.c_stabilizing_to_a);
  pf "[C ⪯ A]                     : %s   (⪯ would have preserved it)@."
    (yn v.Fig_exps.c_convergence_refinement)

let table_vm () =
  hr "E2  Intro: the Java compiler example";
  let v = Intro_exps.vm_experiment () in
  pf "compiler output = paper's javac listing : %s@."
    (yn v.Intro_exps.compiler_matches_paper);
  pf "source stabilizes to x=0                : %s@."
    (yn v.Intro_exps.source_stabilizes);
  pf "bytecode stabilizes to x=0              : %s@."
    (yn v.Intro_exps.bytecode_stabilizes);
  pf "bytecode refines source (fault-free)    : %s@."
    (yn v.Intro_exps.bytecode_refines_init);
  (match v.Intro_exps.bad_terminal with
  | Some s -> pf "witness: %a@." Cr_vm.Machine.pp_state s
  | None -> ())

let table_bidding () =
  hr "E3  Intro: the bidding server";
  let v = Intro_exps.bidding_experiment () in
  pf "[impl ⊑ spec]_init (fault-free)         : %s@."
    (yn v.Intro_exps.impl_refines_init);
  pf "[impl ⪯ spec]                           : %s@."
    (yn v.Intro_exps.impl_convergence);
  pf "spec keeps k-1 of best-k (sampled)      : %s@."
    (yn v.Intro_exps.spec_diff_bound_holds);
  pf "impl violates that bound                : %s@."
    (yn v.Intro_exps.impl_diff_bound_fails);
  pf "[wrapped impl ⪯ spec]                   : %s@."
    (yn v.Intro_exps.wrapped_convergence)

let wrapped_table title exp ns =
  hr title;
  pf "%-4s %-8s %-14s %-14s %-14s %s@." "N" "|Sigma|" "unfair-daemon"
    "weakly-fair" "preemptive-W" "worst(prio)";
  List.iter2
    (fun n (v : Ring_exps.wrapped_verdicts) ->
      pf "%-4d %-8d %-14s %-14s %-14s %s@." n
        v.Ring_exps.states
        (yn v.Ring_exps.union)
        (yn v.Ring_exps.fair)
        (yn v.Ring_exps.priority)
        (match v.Ring_exps.worst_priority with
        | Some w -> string_of_int w
        | None -> "-"))
    ns (par_rows exp ns)

let refinement_table title exp ns =
  hr title;
  pf "%-4s %-8s %-8s %-8s %-10s %-10s %s@." "N" "holds" "edges" "exact"
    "stutter" "compress" "max-drop";
  List.iter2
    (fun n (r : Cr_core.Refine.report) ->
      let s = r.Cr_core.Refine.stats in
      pf "%-4d %-8s %-8d %-8d %-10d %-10d %d@." n (yn r.Cr_core.Refine.holds)
        s.Cr_core.Refine.edges s.Cr_core.Refine.exact s.Cr_core.Refine.stutter
        s.Cr_core.Refine.compressions s.Cr_core.Refine.max_dropped)
    ns (par_rows exp ns)

let direct_table title exp ns =
  hr title;
  pf "%-4s %-8s %-8s %-8s %s@." "N" "|Sigma|" "|L|" "holds" "worst-case";
  List.iter2
    (fun n (v : Ring_exps.direct) ->
      pf "%-4d %-8d %-8d %-8s %s@." n v.Ring_exps.states
        v.Ring_exps.legitimate
        (yn v.Ring_exps.holds)
        (match v.Ring_exps.worst_case with
        | Some w -> string_of_int w
        | None -> "-"))
    ns (par_rows exp ns)

let table_rewriting ns =
  hr "E10 Rewriting claims (transition-graph equalities)";
  pf "%-4s %-24s %-24s %s@." "N" "merged=Dijkstra3" "aggressive=Dijkstra3"
    "C2[]W2'=C2";
  List.iter2
    (fun n (a, b, c) -> pf "%-4d %-24s %-24s %s@." n (yn a) (yn b) (yn c))
    ns (par_rows Ring_exps.rewriting_claims ns)

let table_kstate ns =
  hr "E11 K-state protocol (unidirectional ring, reconstruction)";
  pf "%-4s %-10s %-12s %-12s %-18s %s@." "N" "procs" "minimal-K"
    "K=N+1 holds" "[K ⪯ UTR[]W]" "worst(K=N+1)";
  let rows =
    par_rows
      (fun n ->
        let mk = Ring_exps.kstate_minimal_k n in
        let st = Ring_exps.kstate_stabilizes ~n ~k:(n + 1) in
        let refines =
          (Ring_exps.kstate_refines_wrapped_utr ~n ~k:(n + 1))
            .Cr_core.Refine.holds
        in
        (mk, st, refines))
      ns
  in
  List.iter2
    (fun n (mk, st, refines) ->
      pf "%-4d %-10d %-12d %-12s %-18s %s@." n (n + 1) mk
        (yn st.Cr_core.Stabilize.holds)
        (yn refines)
        (match st.Cr_core.Stabilize.worst_case_recovery with
        | Some w -> string_of_int w
        | None -> "-"))
    ns rows;
  let union, priority = Ring_exps.utr_wrapped_stabilization 3 in
  pf "(UTR[]W1u[]W2u stabilizing to UTR at N=3: unfair %s, preemptive %s)@."
    (yn union) (yn priority)

let table_compression () =
  hr "E12 A compression of C1 (the Section 4.2 figure)";
  match Ring_exps.compression_witness 3 with
  | None -> pf "no witness found (unexpected)@."
  | Some ((i, j), (ai, aj), path) ->
      let btr = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program 3) in
      let c1 = Cr_guarded.Program.to_explicit (Cr_tokenring.Btr4.c1 3) in
      pf "C1 transition : %s -> %s@."
        (Cr_semantics.Explicit.state_to_string c1 i)
        (Cr_semantics.Explicit.state_to_string c1 j);
      pf "token images  : %s -> %s  (two tokens -> one)@."
        (Cr_semantics.Explicit.state_to_string btr ai)
        (Cr_semantics.Explicit.state_to_string btr aj);
      pf "matched by the BTR path:@.";
      List.iter
        (fun k -> pf "   %s@." (Cr_semantics.Explicit.state_to_string btr k))
        path

let table_stutter () =
  hr "E13 A τ-step of C3 (the Section 6 figure)";
  match Ring_exps.stutter_witness 2 with
  | None -> pf "no witness found (unexpected)@."
  | Some s ->
      let layout = Cr_tokenring.Btr3.layout 2 in
      pf "state %a holds tokens at:" (Cr_guarded.Layout.pp_state layout) s;
      List.iter
        (fun t -> pf " %a" Cr_tokenring.Btr.pp_token t)
        (Cr_tokenring.Btr.tokens 2 (Cr_tokenring.Btr3.to_tokens 2 s));
      pf "@.an enabled C3 action fires without changing the state: a τ step.@."

let table_cost ns =
  hr "E14 Convergence cost (exact worst case + random-daemon Monte-Carlo)";
  pf "%-22s %-4s %-8s %-7s %-9s %s@." "system" "N" "|Sigma|" "worst" "mean"
    "max-observed";
  let rows =
    List.concat
      (par_rows
         (fun n ->
           [
             Cost_exps.dijkstra3_row ~samples:200 n;
             Cost_exps.dijkstra4_row ~samples:200 n;
             Cost_exps.c1_row ~samples:200 n;
             Cost_exps.new3_priority_row ~samples:200 n;
             Cost_exps.kstate_row ~samples:200 n;
           ])
         ns)
  in
  List.iter
    (fun r ->
      pf "%-22s %-4d %-8d %-7d %-9.1f %d@." r.Cost_exps.system
        r.Cost_exps.n r.Cost_exps.states
        r.Cost_exps.worst_case
        r.Cost_exps.mean_random
        r.Cost_exps.max_random)
    rows

let table_synchronous ns =
  hr "E16 Synchronous daemon (extension): all enabled processes fire at once";
  pf "%-4s %-18s %-18s %s@." "N" "Dijkstra-3state" "Dijkstra-4state"
    "K-state(K=N+1)";
  List.iter2
    (fun n (v3, v4, vk) ->
      pf "%-4d %-18s %-18s %s@." n
        (yn v3.Ext_exps.stabilizes)
        (yn v4.Ext_exps.stabilizes)
        (yn vk.Ext_exps.stabilizes))
    ns
    (par_rows
       (fun n ->
         (Ext_exps.sync_dijkstra3 n, Ext_exps.sync_dijkstra4 n,
          Ext_exps.sync_kstate n))
       ns)

let table_rw () =
  hr "E17 Read/write atomicity refinement of Dijkstra-3 (extension)";
  let v = Ext_exps.rw_experiment 2 in
  pf "ring 0..2, %d states (counters + neighbour caches)@."
    v.Ext_exps.states;
  pf "fault-free orbit keeps a unique token          : %s@."
    (yn v.Ext_exps.fault_free_coherent_tokens);
  pf "fault-free orbit refines Dijkstra-3 (mod reads): %s@."
    (yn v.Ext_exps.init_refines_dijkstra3);
  pf "stabilizing to BTR, unconstrained daemon       : %s@."
    (yn v.Ext_exps.stabilizes_unfair);
  pf "stabilizing to BTR, weakly fair daemon         : %s@."
    (yn v.Ext_exps.stabilizes_fair);
  pf "-> single-read atomicity already breaks stabilization: the open@.";
  pf "   problem the paper's Section 7 attributes to compiler back-ends.@."

let table_hitting ns =
  hr "E18 Exact expected recovery (uniform random daemon, value iteration)";
  pf "%-18s %-4s %-16s %-16s %s@." "system" "N" "worst(advers.)" "E[steps] worst"
    "E[steps] mean";
  List.iter2
    (fun n rows ->
      List.iter
        (fun (h : Ext_exps.hitting_row) ->
          pf "%-18s %-4d %-16d %-16.2f %.2f@." h.Ext_exps.system n
            h.Ext_exps.worst_exact
            h.Ext_exps.expected_worst
            h.Ext_exps.expected_mean)
        rows)
    ns
    (par_rows
       (fun n ->
         [
           Ext_exps.hitting_dijkstra3 n;
           Ext_exps.hitting_dijkstra4 n;
           Ext_exps.hitting_kstate n;
         ])
       ns)

let table_spans () =
  hr "E19 Fault spans (extension): recovery cost vs number of faults";
  List.iter
    (fun (name, mk, mk_alpha, spec_mk) ->
      let n = 3 in
      let spec = Cr_guarded.Program.to_explicit (spec_mk n) in
      let rows =
        Cr_fault.Spans.analyze (mk n) ~spec ~abstraction:(mk_alpha n)
      in
      pf "%s (N=%d):@." name n;
      pf "  %-4s %-10s %-16s %s@." "k" "span" "worst-recovery" "E[recovery] worst";
      List.iter
        (fun (r : Cr_fault.Spans.row) ->
          pf "  %-4d %-10d %-16d %.2f@." r.Cr_fault.Spans.k r.Cr_fault.Spans.span
            r.Cr_fault.Spans.worst_recovery r.Cr_fault.Spans.expected_recovery)
        rows)
    [
      ( "Dijkstra-3state",
        Cr_tokenring.Btr3.dijkstra3,
        Cr_tokenring.Btr3.alpha,
        Cr_tokenring.Btr.program );
      ( "Dijkstra-4state",
        Cr_tokenring.Btr4.dijkstra4,
        Cr_tokenring.Btr4.alpha,
        Cr_tokenring.Btr.program );
    ]


let table_wrapper_refinement ns =
  hr "E7b Section 5.1: the local wrapper W1'' vs the global W1'";
  pf "%-4s %-14s %-14s %-14s %-14s %s@." "N" "[W1''⊑W1']in" "[W1''⊑W1']"
    "[W1''⪯W1']" "[W1''⊑ee]" "global-W1'-prio";
  List.iter2
    (fun n v ->
      pf "%-4d %-14s %-14s %-14s %-14s %s@." n
        (yn v.Ring_exps.w1''_init)
        (yn v.Ring_exps.w1''_everywhere)
        (yn v.Ring_exps.w1''_convergence)
        (yn v.Ring_exps.w1''_ee)
        (yn v.Ring_exps.global_w1'_priority_stabilizes))
    ns (par_rows Ring_exps.wrapper_refinement ns)

let table_mutex ns =
  hr "E20 Mutual-exclusion service view (extension): safety, liveness, I4";
  pf "%-4s %-18s %-9s %-10s %s@." "N" "system" "safety" "liveness" "I4";
  let rows =
    par_rows
      (fun n ->
        List.map
          (fun (name, p, to_tokens, privileged) ->
            let e = Cr_guarded.Program.to_explicit p in
            let btr =
              Cr_guarded.Program.to_explicit (Cr_tokenring.Btr.program n)
            in
            let alpha =
              Cr_semantics.Abstraction.tabulate
                (Cr_semantics.Abstraction.make ~name:"t" to_tokens)
                e btr
            in
            let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:btr () in
            let good = r.Cr_core.Stabilize.good_mask in
            let v =
              Cr_tokenring.Mutex.check ~privileged ~num_procs:(n + 1) p ~good e
            in
            let i4 =
              Cr_tokenring.Mutex.i4_equal_frequency n p ~to_tokens ~good e
            in
            (name, v.Cr_tokenring.Mutex.safety, v.Cr_tokenring.Mutex.liveness, i4))
          [
            ( "Dijkstra-3state",
              Cr_tokenring.Btr3.dijkstra3 n,
              Cr_tokenring.Btr3.to_tokens n,
              fun s j ->
                Cr_tokenring.Btr3.has_up n s j || Cr_tokenring.Btr3.has_dn n s j
            );
            ( "Dijkstra-4state",
              Cr_tokenring.Btr4.dijkstra4 n,
              Cr_tokenring.Btr4.to_tokens n,
              fun s j ->
                let ts = Cr_tokenring.Btr4.to_tokens n s in
                Cr_tokenring.Btr.up n ts j || Cr_tokenring.Btr.dn n ts j );
          ])
      ns
  in
  List.iter2
    (fun n ->
      List.iter (fun (name, safety, liveness, i4) ->
          pf "%-4d %-18s %-9s %-10s %s@." n name (yn safety) (yn liveness)
            (yn i4)))
    ns rows

(* ---------- cost appendix (CR_STATS) ---------- *)

(* Wrap one table in a [report.<id>] span and record its wall time plus
   the movement of the merged telemetry counters and of this domain's GC
   allocation counters.  Each table joins its [Par] workers before
   returning, so the merged before/after snapshots are race-free and
   their delta is the table's own cost; the GC delta prices only the
   main domain's allocations (worker-domain words are not summed).
   With a journal configured the table also lands as one [report.table]
   event, even when counter tracking is off. *)
let run_table appendix id f =
  let tracking = Cr_obs.Obs.tracking () in
  if not (tracking || Cr_obs.Journal.enabled ()) then f ()
  else begin
    let before =
      if tracking then Some (Cr_obs.Obs.merged_snapshot (), Cr_obs.Obs.gc_now ())
      else None
    in
    let t0 = Unix.gettimeofday () in
    Cr_obs.Obs.span ("report." ^ id) f;
    let wall_ms = 1e3 *. (Unix.gettimeofday () -. t0) in
    (match before with
    | Some (snap, gc) ->
        let delta =
          Cr_obs.Obs.diff ~before:snap ~after:(Cr_obs.Obs.merged_snapshot ())
        in
        let gcd = Cr_obs.Obs.gc_delta ~before:gc ~after:(Cr_obs.Obs.gc_now ()) in
        appendix := (id, wall_ms, delta, gcd) :: !appendix
    | None -> ());
    Cr_obs.Journal.emit "report.table"
      [ ("id", Cr_obs.Journal.S id); ("wall_ms", Cr_obs.Journal.F wall_ms) ]
  end

let top_counters ?(limit = 4) (delta : Cr_obs.Obs.snapshot) =
  List.stable_sort (fun (_, a) (_, b) -> compare b a) delta
  |> List.filteri (fun i _ -> i < limit)

let print_appendix appendix =
  hr "Cost appendix (CR_STATS)";
  pf "%-6s %10s %9s %6s  %s@." "table" "wall-ms" "alloc-Mw" "majGC"
    "largest counter movements";
  List.iter
    (fun (id, wall_ms, delta, (gcd : Cr_obs.Obs.gc_cost)) ->
      pf "%-6s %10.1f %9.2f %6d  %s@." id wall_ms
        (float_of_int (gcd.Cr_obs.Obs.minor_words + gcd.Cr_obs.Obs.major_words)
        /. 1e6)
        gcd.Cr_obs.Obs.major_collections
        (String.concat " "
           (List.map
              (fun (name, v) -> Printf.sprintf "%s=%d" name v)
              (top_counters delta))))
    (List.rev appendix)

(* Run every table in order.  [ns_direct] (default [ns]) applies to the
   cheap direct stabilization sweeps (E4, E6, E8/Theorem 11) that scale to
   larger rings than the refinement tables; the bench harness passes a
   longer list there.  Under CR_STATS (or a forced [Cr_obs.Obs] enable)
   each table also reports its wall time and counter movement in a cost
   appendix; with CR_TRACE set, each table is one [report.*] span in the
   exported trace. *)
let all ?(ns = [ 2; 3; 4 ]) ?ns_direct ?ns_kstate () =
  let ns_direct = Option.value ~default:ns ns_direct in
  let ns_kstate = Option.value ~default:ns ns_kstate in
  pf "Convergence Refinement — experiment tables (paper: Demirbas & Arora, \
      ICDCS 2002)@.";
  let appendix = ref [] in
  let t = run_table appendix in
  t "E1" table_fig1;
  t "E2" table_vm;
  t "E3" table_bidding;
  t "E4" (fun () ->
      wrapped_table "E4  Theorem 6: (BTR [] W1 [] W2) stabilizing to BTR"
        Ring_exps.theorem6 ns_direct);
  t "E5" (fun () ->
      refinement_table "E5  Lemma 7: [C1 ⪯ BTR] via alpha4" Ring_exps.lemma7 ns);
  t "E6a" (fun () ->
      direct_table "E6  Theorem 8: C1 stabilizing to BTR" Ring_exps.theorem8_c1
        ns_direct);
  t "E6b" (fun () ->
      direct_table
        "E6  Theorem 8 (optimized): Dijkstra's 4-state stabilizing to BTR"
        Ring_exps.theorem8_dijkstra4 ns_direct);
  t "E7" (fun () ->
      wrapped_table "E7  Lemma 9: (BTR3 [] W1'' [] W2') stabilizing to BTR"
        Ring_exps.lemma9 ns);
  t "E7b" (fun () -> table_wrapper_refinement ns);
  t "E8a" (fun () ->
      refinement_table
        "E8  Lemma 10 (strict, same state space): [C2[]W1''[]W2' ⪯ \
         BTR3[]W1''[]W2']"
        Ring_exps.lemma10 [ 2; 3 ]);
  t "E8b" (fun () ->
      direct_table "E8  Theorem 11: Dijkstra's 3-state stabilizing to BTR"
        Ring_exps.theorem11_dijkstra3 ns_direct);
  t "E8c" (fun () ->
      wrapped_table
        "E8  Theorem 11 (composition): (C2 [] W1'' [] W2') stabilizing to BTR"
        Ring_exps.theorem11_c2w ns);
  t "E9a" (fun () ->
      refinement_table "E9  Lemma 12 (strict): [C3 ⪯ BTR] via alpha3"
        (fun n -> Ring_exps.lemma12 n)
        [ 2; 3 ]);
  t "E9b" (fun () ->
      wrapped_table "E9  Theorem 13: (C3 [] W1'' [] W2') stabilizing to BTR"
        Ring_exps.theorem13 ns);
  t "E10" (fun () -> table_rewriting ns);
  t "E11" (fun () -> table_kstate ns_kstate);
  t "E12" table_compression;
  t "E13" table_stutter;
  t "E14" (fun () -> table_cost ns);
  t "E16" (fun () -> table_synchronous ns);
  t "E17" table_rw;
  t "E18" (fun () -> table_hitting ns);
  t "E19" table_spans;
  t "E20" (fun () -> table_mutex ns);
  if Cr_obs.Obs.stats_enabled () && !appendix <> [] then
    print_appendix !appendix
