(** Printing of every experiment table (DESIGN.md / EXPERIMENTS.md);
    shared by [bench/main.exe] and [crcheck experiments]. *)

val all :
  ?ns:int list -> ?ns_direct:int list -> ?ns_kstate:int list -> unit -> unit
(** Print every table, sweeping ring sizes over [ns] (default 2..4).
    [ns_direct] (default [ns]) is the sweep for the cheap direct
    stabilization tables (E4, E6 and the Theorem 11 direct check), which
    scale to larger rings than the refinement tables; [ns_kstate]
    (default [ns]) is the sweep for the K-state minimality table (E11),
    whose state spaces grow as (N+1)^(N+1).

    Independent per-N rows are computed with the [CR_JOBS] domain fan-out
    (default 1); the printed output is identical for any job count. *)

val table_fig1 : unit -> unit
val table_vm : unit -> unit
val table_bidding : unit -> unit
val table_rewriting : int list -> unit
val table_kstate : int list -> unit
val table_compression : unit -> unit
val table_stutter : unit -> unit
val table_cost : int list -> unit
val table_synchronous : int list -> unit
val table_rw : unit -> unit
val table_hitting : int list -> unit
val table_spans : unit -> unit
val table_wrapper_refinement : int list -> unit
val table_mutex : int list -> unit
