(* E14: convergence cost of the derived stabilizing systems.

   For each system and ring size, the exact worst-case recovery (longest
   path to the converged region, from the model checker) and Monte-Carlo
   mean recovery under a random central daemon.  The reproducible "shape":
   every system recovers in O(N^2)-ish steps and the ranking is stable;
   Dijkstra's 3-state pays more than the 4-state in the worst case. *)

open Cr_guarded

type row = {
  system : string;
  n : int;
  states : int;
  worst_case : int;  (* exact, adversarial daemon *)
  mean_random : float;  (* Monte-Carlo, random daemon, random faults *)
  max_random : int;
}

let measure ~(name : string) ~(mk : int -> Program.t)
    ~(mk_spec : int -> Layout.state Cr_semantics.Explicit.t Lazy.t)
    ~(alpha : int -> (Layout.state, Layout.state) Cr_semantics.Abstraction.t)
    ~samples n : row =
  let p = mk n in
  let e = Program.to_explicit p in
  let spec = Lazy.force (mk_spec n) in
  let a = Cr_semantics.Abstraction.tabulate (alpha n) e spec in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha:a ~c:e ~a:spec () in
  if not r.Cr_core.Stabilize.holds then
    invalid_arg (name ^ ": system unexpectedly not stabilizing");
  let worst = Option.value ~default:0 r.Cr_core.Stabilize.worst_case_recovery in
  (* converged = the checker's Good region, so the simulated and exact
     numbers measure the same event *)
  let good = r.Cr_core.Stabilize.good_mask in
  let converged s = good.(Cr_semantics.Explicit.find e s) in
  let stats =
    Cr_sim.Runner.convergence_stats ~samples ~max_steps:1_000_000 ~seed:7
      ~converged
      (fun i -> Cr_sim.Daemon.random ~seed:(1000 + i))
      p
  in
  {
    system = name;
    n;
    states = Cr_semantics.Explicit.num_states e;
    worst_case = worst;
    mean_random = stats.Cr_sim.Runner.mean_steps;
    max_random = stats.Cr_sim.Runner.max_steps_observed;
  }

let btr_spec n = lazy (Program.to_explicit (Cr_tokenring.Btr.program n))
let utr_spec n = lazy (Program.to_explicit (Cr_tokenring.Utr.program n))

let dijkstra3_row ?(samples = 200) n =
  measure ~name:"Dijkstra-3state" ~mk:Cr_tokenring.Btr3.dijkstra3
    ~mk_spec:btr_spec ~alpha:Cr_tokenring.Btr3.alpha ~samples n

let dijkstra4_row ?(samples = 200) n =
  measure ~name:"Dijkstra-4state" ~mk:Cr_tokenring.Btr4.dijkstra4
    ~mk_spec:btr_spec ~alpha:Cr_tokenring.Btr4.alpha ~samples n

let c1_row ?(samples = 200) n =
  measure ~name:"C1 (4-state)" ~mk:Cr_tokenring.Btr4.c1
    ~mk_spec:btr_spec ~alpha:Cr_tokenring.Btr4.alpha ~samples n

let kstate_row ?(samples = 200) n =
  let k = n + 1 in
  measure ~name:"K-state (K=N+1)"
    ~mk:(fun n -> Cr_tokenring.Kstate.program ~n ~k)
    ~mk_spec:utr_spec
    ~alpha:(fun n -> Cr_tokenring.Kstate.alpha ~n ~k)
    ~samples n

(* The priority-composed new 3-state system of Theorem 13 cannot be
   simulated by the plain daemon runner (wrapper preemption changes the
   enabled set), so its random-daemon mean is measured on the explicit
   graph instead. *)
let mean_on_explicit ?(samples = 200) ~seed e ~converged_idx =
  let rng = Random.State.make [| seed |] in
  let n = Cr_semantics.Explicit.num_states e in
  let total = ref 0 and count = ref 0 and maxi = ref 0 in
  for _ = 1 to samples do
    let start = Random.State.int rng n in
    let rec go i k =
      if converged_idx i then Some k
      else if k > 1_000_000 then None
      else
        match Cr_semantics.Explicit.out_degree e i with
        | 0 -> None
        | d ->
            go (Cr_semantics.Explicit.successor e i (Random.State.int rng d))
              (k + 1)
    in
    match go start 0 with
    | Some k ->
        incr count;
        total := !total + k;
        if k > !maxi then maxi := k
    | None -> ()
  done;
  (float_of_int !total /. float_of_int (max 1 !count), !maxi, !count)

let new3_priority_row ?(samples = 200) n : row =
  let p, is_w = Cr_tokenring.C3_system.new3_priority n in
  let e = Program.to_explicit ~priority_of:is_w p in
  let btr = Lazy.force (btr_spec n) in
  let a = Cr_semantics.Abstraction.tabulate (Cr_tokenring.C3_system.alpha n) e btr in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha:a ~c:e ~a:btr () in
  let converged_idx i = r.Cr_core.Stabilize.good_mask.(i) in
  let mean, maxi, _ = mean_on_explicit ~samples ~seed:13 e ~converged_idx in
  {
    system = "new-3state (C3[]!W)";
    n;
    states = Cr_semantics.Explicit.num_states e;
    worst_case = Option.value ~default:0 r.Cr_core.Stabilize.worst_case_recovery;
    mean_random = mean;
    max_random = maxi;
  }

let pp_row fmt r =
  Fmt.pf fmt "%-20s N=%d |Sigma|=%-6d worst=%-5d mean=%-8.1f max=%d" r.system
    r.n r.states r.worst_case r.mean_random r.max_random
