(** E1: the paper's Figure 1 counterexample — refinement with respect to
    initial states alone does not preserve stabilization. *)

val fig1_a : unit -> int Cr_semantics.Explicit.t
val fig1_c : unit -> int Cr_semantics.Explicit.t
(** Compiled on first use (not at module init): an eager compile here
    would open the telemetry journal during program startup, before the
    CLI has had a chance to apply overrides like [--space]. *)

type verdicts = {
  c_refines_a_init : bool;
  a_self_stabilizing : bool;
  c_stabilizing_to_a : bool;
  c_convergence_refinement : bool;
}

val run : unit -> verdicts
