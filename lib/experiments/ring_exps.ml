(* The paper's token-ring derivation chain as runnable experiments
   (DESIGN.md E4-E13).  Each function model-checks one claim under the
   execution models discussed in EXPERIMENTS.md:

   - [union]    : plain interleaving under an unconstrained daemon,
   - [fair]     : weakly fair daemon,
   - [priority] : wrappers preempt the base system.

   The returned records carry the verdicts that the test suite asserts
   and the benchmark harness prints. *)

open Cr_semantics
open Cr_guarded
open Cr_tokenring

let explicit ?priority_of p = Program.to_explicit ?priority_of p

type wrapped_verdicts = {
  n : int;
  states : int;
  union : bool;
  fair : bool;
  priority : bool;
  worst_priority : int option;  (* worst-case recovery under priority *)
}

let wrapped_stabilization ~(mk_union : int -> Program.t)
    ~(mk_priority : int -> Program.t * (Action.t -> bool))
    ~(mk_alpha : int -> (Layout.state, Btr.state) Abstraction.t option) n =
  let btr = explicit (Btr.program n) in
  let u = mk_union n in
  let eu = explicit u in
  let alpha =
    match mk_alpha n with
    | None -> None
    | Some a -> Some (Abstraction.tabulate a eu btr)
  in
  let union = (Cr_core.Stabilize.stabilizing_to ?alpha ~c:eu ~a:btr ()).Cr_core.Stabilize.holds in
  let tables = Cr_sim.Glue.fair_tables u eu in
  let fair =
    (Cr_core.Stabilize.stabilizing_to ?alpha ~fair:tables ~c:eu ~a:btr ())
      .Cr_core.Stabilize.holds
  in
  let p, is_w = mk_priority n in
  let ep = Program.to_explicit ~priority_of:is_w p in
  let alpha_p =
    match mk_alpha n with
    | None -> None
    | Some a -> Some (Abstraction.tabulate a ep btr)
  in
  let rp = Cr_core.Stabilize.stabilizing_to ?alpha:alpha_p ~c:ep ~a:btr () in
  {
    n;
    states = Explicit.num_states eu;
    union;
    fair;
    priority = rp.Cr_core.Stabilize.holds;
    worst_priority = rp.Cr_core.Stabilize.worst_case_recovery;
  }

(* E4 / Theorem 6: (BTR [] W1 [] W2) stabilizing to BTR. *)
let theorem6 n =
  wrapped_stabilization ~mk_union:Btr.wrapped ~mk_priority:Btr.wrapped_priority
    ~mk_alpha:(fun _ -> None)
    n

(* E7 / Lemma 9: (BTR_3 [] W1'' [] W2') stabilizing to BTR via alpha3. *)
let lemma9 n =
  wrapped_stabilization ~mk_union:Btr3.btr3_wrapped
    ~mk_priority:Btr3.btr3_wrapped_priority
    ~mk_alpha:(fun n -> Some (Btr3.alpha n))
    n

(* E8 / Theorem 11 (composition): (C2 [] W1'' [] W2') stabilizing to BTR. *)
let theorem11_c2w n =
  wrapped_stabilization ~mk_union:Btr3.c2_wrapped
    ~mk_priority:Btr3.c2_wrapped_priority
    ~mk_alpha:(fun n -> Some (Btr3.alpha n))
    n

(* E9 / Theorem 13: (C3 [] W1'' [] W2') stabilizing to BTR. *)
let theorem13 n =
  wrapped_stabilization ~mk_union:C3_system.new3
    ~mk_priority:C3_system.new3_priority
    ~mk_alpha:(fun n -> Some (C3_system.alpha n))
    n

(* Direct (unwrapped) stabilization of the concrete systems — these hold
   under the unconstrained daemon, like Dijkstra's originals. *)
type direct = {
  n : int;
  states : int;
  legitimate : int;
  holds : bool;
  worst_case : int option;
}

let direct_stabilization ~(mk : int -> Program.t)
    ~(mk_alpha : int -> (Layout.state, Btr.state) Abstraction.t) n =
  let btr = explicit (Btr.program n) in
  let e = explicit (mk n) in
  let alpha = Abstraction.tabulate (mk_alpha n) e btr in
  let r = Cr_core.Stabilize.stabilizing_to ~alpha ~c:e ~a:btr () in
  {
    n;
    states = Explicit.num_states e;
    legitimate = r.Cr_core.Stabilize.legitimate;
    holds = r.Cr_core.Stabilize.holds;
    worst_case = r.Cr_core.Stabilize.worst_case_recovery;
  }

let theorem8_c1 n = direct_stabilization ~mk:Btr4.c1 ~mk_alpha:Btr4.alpha n
let theorem8_dijkstra4 n =
  direct_stabilization ~mk:Btr4.dijkstra4 ~mk_alpha:Btr4.alpha n
let theorem11_dijkstra3 n =
  direct_stabilization ~mk:Btr3.dijkstra3 ~mk_alpha:Btr3.alpha n

(* E5 / Lemma 7: [C1 ⪯ BTR] via alpha4. *)
let lemma7 n =
  let btr = explicit (Btr.program n) in
  let c1 = explicit (Btr4.c1 n) in
  let alpha = Abstraction.tabulate (Btr4.alpha n) c1 btr in
  Cr_core.Refine.convergence_refinement ~alpha ~c:c1 ~a:btr ()

(* E8 / Lemma 10 as stated (same state space): documented discrepancy —
   see EXPERIMENTS.md; the strict check fails. *)
let lemma10 n =
  let c2w = explicit (Btr3.c2_wrapped n) in
  let btr3w = explicit (Btr3.btr3_wrapped n) in
  Cr_core.Refine.convergence_refinement ~c:c2w ~a:btr3w ()

(* Section 5.1's wrapper-refinement claims: W1'' approximates the global
   W1' locally; the paper notes it "is not an everywhere refinement of the
   abstract wrapper".  We check all four relations between the two wrapper
   programs (same state space), and also that the *global* W1' wrapper
   composition stabilizes like the local one. *)
type wrapper_relations = {
  w1''_init : bool;
  w1''_everywhere : bool;  (* paper: false *)
  w1''_convergence : bool;
  w1''_ee : bool;
  global_w1'_priority_stabilizes : bool;
}

let wrapper_refinement n =
  let w1g = explicit (Btr3.w1_global n) in
  let w1l = explicit (Btr3.w1_local n) in
  let rel f = (f ~c:w1l ~a:w1g ()).Cr_core.Refine.holds in
  let btr = explicit (Btr.program n) in
  let wrappers = Program.box ~name:"W1'[]W2'" (Btr3.w1_global n) (Btr3.w2' n) in
  let p, is_w =
    Program.box_priority
      ~name:(Printf.sprintf "BTR3[]!(W1'[]W2')(%d)" n)
      (Btr3.btr3 n) wrappers
  in
  let ep = Program.to_explicit ~priority_of:is_w p in
  let alpha = Abstraction.tabulate (Btr3.alpha n) ep btr in
  let stab = Cr_core.Stabilize.stabilizing_to ~alpha ~c:ep ~a:btr () in
  {
    w1''_init = rel (fun ~c ~a () -> Cr_core.Refine.init_refinement ~c ~a ());
    w1''_everywhere =
      rel (fun ~c ~a () -> Cr_core.Refine.everywhere_refinement ~c ~a ());
    w1''_convergence =
      rel (fun ~c ~a () -> Cr_core.Refine.convergence_refinement ~c ~a ());
    w1''_ee =
      rel (fun ~c ~a () ->
          Cr_core.Refine.everywhere_eventually_refinement ~c ~a ());
    global_w1'_priority_stabilizes = stab.Cr_core.Stabilize.holds;
  }

(* E9 / Lemma 12 as stated: [C3 ⪯ BTR] — documented discrepancy (token
   crossings compress on cycles), both unfair and weakly fair. *)
let lemma12 ?(fairness = false) n =
  let btr = explicit (Btr.program n) in
  let p = C3_system.c3 n in
  let c3 = explicit p in
  let alpha = Abstraction.tabulate (C3_system.alpha n) c3 btr in
  let fair = if fairness then Some (Cr_sim.Glue.fair_tables p c3) else None in
  Cr_core.Refine.convergence_refinement ~alpha ?fair ~c:c3 ~a:btr ()

(* E10: the paper's rewriting claims, as transition-graph equalities. *)
let rewriting_claims n =
  let d3 = explicit (Btr3.dijkstra3 n) in
  let merged = explicit (Btr3.merged n) in
  let agg = explicit (C3_system.aggressive n) in
  (* W2' adds no transitions over C2: its deletions coincide with C2's
     mid actions on double-token states. *)
  let c2 = explicit (Btr3.c2 n) in
  let c2_w2 = explicit (Program.box (Btr3.c2 n) (Btr3.w2' n)) in
  ( Explicit.same_transitions merged d3,
    Explicit.same_transitions agg d3,
    Explicit.same_transitions c2 c2_w2 )

(* Section 4.1: vacuity of the refined 4-state wrappers, checked on every
   state. *)
let wrapper_vacuity n =
  let states = Layout.enumerate (Btr4.layout n) in
  ( List.for_all (Btr4.w1'_vacuous n) states,
    List.for_all (Btr4.w2'_vacuous n) states )

(* E11: the K-state protocol.  [stabilizes ~n ~k] checks stabilization to
   UTR; [minimal_k n] finds the least K that stabilizes. *)
let kstate_stabilizes ~n ~k =
  let utr = explicit (Utr.program n) in
  let ks = explicit (Kstate.program ~n ~k) in
  let alpha = Abstraction.tabulate (Kstate.alpha ~n ~k) ks utr in
  Cr_core.Stabilize.stabilizing_to ~alpha ~c:ks ~a:utr ()

let kstate_minimal_k n =
  let rec go k = if (kstate_stabilizes ~n ~k).Cr_core.Stabilize.holds then k else go (k + 1) in
  go 2

let kstate_refines_wrapped_utr ~n ~k =
  let utrw = explicit (Utr.wrapped n) in
  let ks = explicit (Kstate.program ~n ~k) in
  let alpha = Abstraction.tabulate (Kstate.alpha ~n ~k) ks utrw in
  Cr_core.Refine.convergence_refinement ~alpha ~c:ks ~a:utrw ()

let utr_wrapped_stabilization n =
  let utr = explicit (Utr.program n) in
  let u = explicit (Utr.wrapped n) in
  let union = (Cr_core.Stabilize.stabilizing_to ~c:u ~a:utr ()).Cr_core.Stabilize.holds in
  let p, is_w = Utr.wrapped_priority n in
  let ep = Program.to_explicit ~priority_of:is_w p in
  let priority = (Cr_core.Stabilize.stabilizing_to ~c:ep ~a:utr ()).Cr_core.Stabilize.holds in
  (union, priority)

(* E12: a compression witness for C1 — the Section 4.2 figure.  Returns
   (concrete edge, token images, matching BTR path) for a transition that
   loses a token. *)
let compression_witness n =
  let btr = explicit (Btr.program n) in
  let c1 = explicit (Btr4.c1 n) in
  let alpha = Abstraction.tabulate (Btr4.alpha n) c1 btr in
  let succ_a = Cr_checker.Reach.of_explicit btr in
  let witness = ref None in
  Explicit.iter_edges c1 (fun i j ->
      if !witness = None then begin
        let ai = alpha.(i) and aj = alpha.(j) in
        let ti = Btr.token_count n (Explicit.state btr ai) in
        let tj = Btr.token_count n (Explicit.state btr aj) in
        if ti = 2 && tj = 1 && not (Explicit.has_edge btr ai aj) then
          match Cr_checker.Paths.shortest_path_csr ~succ:succ_a ~src:ai ~dst:aj with
          | Some path -> witness := Some ((i, j), (ai, aj), path)
          | None -> ()
      end)
    ;
  !witness

(* E13: a stutter witness for C3 — the Section 6 figure: an enabled mid
   action whose effect is the identity. *)
let stutter_witness n =
  let p = C3_system.c3 n in
  let states = Layout.enumerate (C3_system.layout n) in
  let is_stutter s =
    List.exists
      (fun a -> Action.enabled a s && Action.fire a s = None)
      (Program.actions p)
  in
  List.find_opt
    (fun s -> C3_system.initial n s = false && is_stutter s)
    states
