(** Structural equality of bytecode listings. *)

val listings_equal : Cr_vm.Instr.listing -> Cr_vm.Instr.listing -> bool
