(** Registry-wide static-analysis sweep (backs [crcheck lint --all]). *)

type row = { entry : Registry.entry; report : Cr_lint.Lint.report }

val audit_entry : n:int -> Registry.entry -> row

val audit : ?n:int -> unit -> row list
(** Lint every registry system's program at ring size [n] (default 3),
    with each entry's allowlist applied. *)

val total_errors : row list -> int

val to_json : n:int -> row list -> string
(** The [crcheck lint --all --json] artifact. *)

val interference_count : n:int -> string -> int
(** Number of I1 interference-pair findings for one registry system —
    the E17 appendix compares dijkstra3 against rw-dijkstra3. *)

val pp_summary : Format.formatter -> row list -> unit
