(** The paper's token-ring derivation chain as runnable experiments
    (DESIGN.md E4-E13).  Each function model-checks one claim; see
    EXPERIMENTS.md for the expected verdicts under the different
    execution models. *)

open Cr_guarded
open Cr_tokenring

type wrapped_verdicts = {
  n : int;
  states : int;
  union : bool;  (** stabilizes under the unconstrained daemon *)
  fair : bool;  (** stabilizes under a weakly fair daemon *)
  priority : bool;  (** stabilizes with preemptive wrappers *)
  worst_priority : int option;
      (** exact worst-case recovery under the preemptive model *)
}

val theorem6 : int -> wrapped_verdicts
(** E4: (BTR [] W1 [] W2) stabilizing to BTR. *)

val lemma9 : int -> wrapped_verdicts
(** E7: (BTR₃ [] W1'' [] W2') stabilizing to BTR via α₃. *)

val theorem11_c2w : int -> wrapped_verdicts
(** E8: (C2 [] W1'' [] W2') stabilizing to BTR. *)

val theorem13 : int -> wrapped_verdicts
(** E9: (C3 [] W1'' [] W2') stabilizing to BTR. *)

type direct = {
  n : int;
  states : int;
  legitimate : int;
  holds : bool;
  worst_case : int option;
}

val theorem8_c1 : int -> direct
(** E6: C1 stabilizing to BTR (unconstrained daemon). *)

val theorem8_dijkstra4 : int -> direct
(** E6: Dijkstra's 4-state ring stabilizing to BTR. *)

val theorem11_dijkstra3 : int -> direct
(** E8: Dijkstra's 3-state ring stabilizing to BTR. *)

val lemma7 : int -> Cr_core.Refine.report
(** E5: [C1 ⪯ BTR] via α₄. *)

val lemma10 : int -> Cr_core.Refine.report
(** E8: the strict same-state-space reading of Lemma 10 (holds at N=2,
    refuted from N=3 — see EXPERIMENTS.md). *)

val lemma12 : ?fairness:bool -> int -> Cr_core.Refine.report
(** E9: the strict reading of Lemma 12, [C3 ⪯ BTR] (refuted — token
    crossings compress on weakly fair cycles). *)

type wrapper_relations = {
  w1''_init : bool;
  w1''_everywhere : bool;  (** the paper notes this is false *)
  w1''_convergence : bool;
  w1''_ee : bool;
  global_w1'_priority_stabilizes : bool;
}

val wrapper_refinement : int -> wrapper_relations
(** Section 5.1: how the local W1'' relates to the global W1', and
    whether the global-wrapper composition also stabilizes. *)

val rewriting_claims : int -> bool * bool * bool
(** E10: (merged display = Dijkstra-3, aggressive variant = Dijkstra-3,
    C2 [] W2' = C2), as transition-graph equalities. *)

val wrapper_vacuity : int -> bool * bool
(** Section 4.1: W1' and W2' are vacuous on every 4-state configuration. *)

val kstate_stabilizes : n:int -> k:int -> Cr_core.Stabilize.report
(** E11: K-state stabilizing to UTR. *)

val kstate_minimal_k : int -> int
(** The least stabilizing K for a ring 0..n (exact). *)

val kstate_refines_wrapped_utr : n:int -> k:int -> Cr_core.Refine.report
(** E11: [Kstate ⪯ UTR [] W1u [] W2u]. *)

val utr_wrapped_stabilization : int -> bool * bool
(** E11: (UTR [] W1u [] W2u) stabilizing to UTR — (unfair, preemptive). *)

val compression_witness :
  int ->
  ((int * int) * (int * int) * int list) option
(** E12: a token-losing C1 transition, its abstract endpoints, and the
    BTR path it compresses ((concrete edge), (abstract images), path). *)

val stutter_witness : int -> Layout.state option
(** E13: an illegitimate C3 state where an enabled action is a τ-step. *)

val explicit :
  ?priority_of:(Action.t -> bool) ->
  Program.t ->
  Layout.state Cr_semantics.Explicit.t

val wrapped_stabilization :
  mk_union:(int -> Program.t) ->
  mk_priority:(int -> Program.t * (Action.t -> bool)) ->
  mk_alpha:(int -> (Layout.state, Btr.state) Cr_semantics.Abstraction.t option) ->
  int ->
  wrapped_verdicts
(** Generic three-model check used by the theorem functions above. *)

val direct_stabilization :
  mk:(int -> Program.t) ->
  mk_alpha:(int -> (Layout.state, Btr.state) Cr_semantics.Abstraction.t) ->
  int ->
  direct
