(* The introduction's two motivating examples as runnable experiments
   (DESIGN.md E2, E3). *)

open Cr_semantics

(* ---- E2: the Java compiler example ---- *)

type vm_verdicts = {
  compiler_matches_paper : bool;
      (* our compiler reproduces the paper's exact listing *)
  source_stabilizes : bool;  (* the source-level system stabilizes to x=0 *)
  bytecode_stabilizes : bool;  (* ... and the bytecode does not *)
  bytecode_refines_init : bool;
      (* fault-free, the bytecode tracks the source (modulo stuttering) *)
  bad_terminal : Cr_vm.Machine.state option;  (* the witness: return with x<>0 *)
}

let vm_experiment () =
  let cfg = Cr_vm.Source.machine_config in
  let compiled = Instr_eq.listings_equal
      (Cr_vm.Instr.layout_addresses (Cr_vm.Source.compile Cr_vm.Source.paper_program))
      Cr_vm.Source.paper_listing
  in
  let source = Explicit.of_system (Cr_vm.Source.abstract_system ~value_dom:2) in
  let target = Explicit.of_system (Cr_vm.Source.target_system ~value_dom:2) in
  let machine = Explicit.of_system (Cr_vm.Machine.to_system ~name:"bytecode" cfg) in
  let source_stabilizes =
    (Cr_core.Stabilize.stabilizing_to ~c:source ~a:target ()).Cr_core.Stabilize.holds
  in
  let alpha = Abstraction.tabulate Cr_vm.Source.alpha_x machine target in
  let r =
    Cr_core.Stabilize.stabilizing_to ~alpha ~stutter:`Allow ~c:machine ~a:target ()
  in
  let alpha_src = Abstraction.tabulate Cr_vm.Source.alpha_x machine source in
  (* fault-free refinement: from the initial state, the machine's image
     never leaves x=0; since the source has no move at 0 this is exactly
     "all reachable steps are stutters at 0" *)
  let reach = Cr_checker.Reach.reachable_from_initial machine in
  let refines_init = ref true in
  Explicit.iter_edges machine (fun i j ->
      if Cr_kernel.Bitset.get reach i
         && not (alpha_src.(i) = alpha_src.(j) && alpha_src.(i) = Explicit.find source 0)
      then refines_init := false);
  {
    compiler_matches_paper = compiled;
    source_stabilizes;
    bytecode_stabilizes = r.Cr_core.Stabilize.holds;
    bytecode_refines_init = !refines_init;
    bad_terminal =
      Option.map (Explicit.state machine) r.Cr_core.Stabilize.bad_terminal;
  }

(* ---- E3: the bidding server ---- *)

type bidding_verdicts = {
  impl_refines_init : bool;  (* fault-free, the sorted list refines the spec *)
  impl_convergence : bool;  (* [impl ⪯ spec] — expected false *)
  impl_blocked_terminal : int list option;
      (* a corrupted implementation state that wrongly stops accepting bids *)
  wrapped_convergence : bool;
      (* the repaired implementation is a convergence refinement of the
         spec (repair steps are stutters, so it is not an *everywhere*
         refinement — Theorem 1 rather than Theorem 0 applies) *)
  wrapped_not_everywhere : bool;
  spec_diff_bound_holds : bool;
      (* single corruption changes at most one stored bid forever (sampled) *)
  impl_diff_bound_fails : bool;  (* the implementation violates that bound *)
}

let bidding_experiment ?(b = 3) ?(k = 2) () =
  let spec = Explicit.of_system (Cr_bidding.Automaton.spec_system ~b ~k) in
  let impl = Explicit.of_system (Cr_bidding.Automaton.impl_system ~b ~k) in
  let wrapped = Explicit.of_system (Cr_bidding.Automaton.wrapped_system ~b ~k) in
  let alpha_impl = Abstraction.tabulate Cr_bidding.Automaton.alpha impl spec in
  let alpha_wrapped = Abstraction.tabulate Cr_bidding.Automaton.alpha wrapped spec in
  let init_ok =
    (Cr_core.Refine.init_refinement ~alpha:alpha_impl ~c:impl ~a:spec ())
      .Cr_core.Refine.holds
  in
  let conv =
    Cr_core.Refine.convergence_refinement ~alpha:alpha_impl ~c:impl ~a:spec ()
  in
  let blocked =
    List.find_map
      (function
        | Cr_core.Refine.Terminal_not_terminal i -> Some (Explicit.state impl i)
        | _ -> None)
      conv.Cr_core.Refine.failures
  in
  let wrapped_conv =
    (Cr_core.Refine.convergence_refinement ~alpha:alpha_wrapped ~c:wrapped ~a:spec ())
      .Cr_core.Refine.holds
  in
  let wrapped_ev =
    (Cr_core.Refine.everywhere_refinement ~alpha:alpha_wrapped ~c:wrapped ~a:spec ())
      .Cr_core.Refine.holds
  in
  (* diff-bound simulations *)
  let rng = Random.State.make [| 2026 |] in
  let random_seq len = List.init len (fun _ -> Random.State.int rng (b + 1)) in
  let spec_bound = ref true and impl_violation = ref false in
  for _ = 1 to 500 do
    let k' = k in
    let base = Cr_bidding.Spec.of_list ~k:k' (List.init k' (fun _ -> Random.State.int rng (b + 1))) in
    let idx = Random.State.int rng k' in
    let v = Random.State.int rng (b + 1) in
    let corrupted = Cr_bidding.Spec.corrupt ~index:idx ~value:v base in
    let seq = random_seq (Random.State.int rng 8) in
    let r1 = Cr_bidding.Spec.run base seq in
    let r2 = Cr_bidding.Spec.run corrupted seq in
    if Cr_bidding.Spec.diff r1 r2 > 1 then spec_bound := false;
    (* same campaign against the sorted-list implementation *)
    let ibase =
      Cr_bidding.Sorted_impl.of_list ~k:k' (Cr_bidding.Spec.stored base)
    in
    let icorr = Cr_bidding.Sorted_impl.corrupt ~index:idx ~value:v ibase in
    let ir1 = Cr_bidding.Sorted_impl.run ibase seq in
    let ir2 = Cr_bidding.Sorted_impl.run icorr seq in
    if
      Cr_bidding.Spec.diff
        (Cr_bidding.Sorted_impl.to_spec ir1)
        (Cr_bidding.Sorted_impl.to_spec ir2)
      > 1
    then impl_violation := true
  done;
  {
    impl_refines_init = init_ok;
    impl_convergence = conv.Cr_core.Refine.holds;
    impl_blocked_terminal = blocked;
    wrapped_convergence = wrapped_conv;
    wrapped_not_everywhere = not wrapped_ev;
    spec_diff_bound_holds = !spec_bound;
    impl_diff_bound_fails = !impl_violation;
  }
