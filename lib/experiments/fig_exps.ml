(* E1: the paper's Figure 1 — refinement w.r.t. initial states alone does
   not preserve stabilization. *)

open Cr_semantics

let states = [ 0; 1; 2; 3; 9 ]
(* 9 plays s* *)

(* Lazy: compiling at module init would emit telemetry (and open the
   journal) during program startup, before CLI overrides apply. *)
let lazy_fig1_a =
  lazy
    (Explicit.of_system
       (System.make ~name:"Fig1-A" ~states
          ~step:(function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 3 ] | 9 -> [ 2 ] | _ -> [])
          ~is_initial:(fun s -> s = 0)
          ~pp:(fun fmt s -> if s = 9 then Fmt.pf fmt "s*" else Fmt.pf fmt "s%d" s)
          ()))

let lazy_fig1_c =
  lazy
    (Explicit.of_system
       (System.make ~name:"Fig1-C" ~states
          ~step:(function 0 -> [ 1 ] | 1 -> [ 2 ] | 2 -> [ 3 ] | _ -> [])
          ~is_initial:(fun s -> s = 0)
          ~pp:(fun fmt s -> if s = 9 then Fmt.pf fmt "s*" else Fmt.pf fmt "s%d" s)
          ()))

let fig1_a () = Lazy.force lazy_fig1_a
let fig1_c () = Lazy.force lazy_fig1_c

type verdicts = {
  c_refines_a_init : bool;  (* true *)
  a_self_stabilizing : bool;  (* true *)
  c_stabilizing_to_a : bool;  (* FALSE — the counterexample *)
  c_convergence_refinement : bool;  (* false: ⪯ would have preserved it *)
}

let run () =
  let fig1_a = fig1_a () and fig1_c = fig1_c () in
  {
    c_refines_a_init =
      (Cr_core.Refine.init_refinement ~c:fig1_c ~a:fig1_a ()).Cr_core.Refine.holds;
    a_self_stabilizing =
      (Cr_core.Stabilize.self_stabilizing fig1_a).Cr_core.Stabilize.holds;
    c_stabilizing_to_a =
      (Cr_core.Stabilize.stabilizing_to ~c:fig1_c ~a:fig1_a ())
        .Cr_core.Stabilize.holds;
    c_convergence_refinement =
      (Cr_core.Refine.convergence_refinement ~c:fig1_c ~a:fig1_a ())
        .Cr_core.Refine.holds;
  }
