(** Named registry of the systems built in this repository, for the
    crcheck CLI and the examples. *)

open Cr_guarded

type entry = {
  name : string;
  describe : string;
  program : int -> Program.t;
  spec : int -> Program.t;
  alpha : int -> (Layout.state, Layout.state) Cr_semantics.Abstraction.t;
  converged : int -> Layout.state -> bool;
  render : int -> Layout.state -> string;
  lint_allow : string list;
      (** lint checks to downgrade for this system (see {!Cr_lint.Lint}):
          the abstract neighbour-writing models allowlist [P1] *)
}

val entries : entry list
val find : string -> entry option
val names : unit -> string list

val explicit : entry -> int -> Layout.state Cr_semantics.Explicit.t
(** The entry's program at ring size [n], compiled through
    {!Program.to_explicit} (and thus the process-wide compile cache). *)

val init_explicit : entry -> int -> Layout.state Cr_semantics.Explicit.t
(** The entry's program compiled through the init-anchored (sparse,
    reachable-only) engine — {!Cr_semantics.Space.resolve} with default
    [Sparse], so [CR_SPACE] can force either engine.  This is what
    {!refinements} checks against: per DESIGN.md section 2 the
    refinement premise only quantifies over the fragment reachable from
    the initial states, which the sparse engine materializes exactly. *)

val spec_explicit : entry -> int -> Layout.state Cr_semantics.Explicit.t
(** Same for the entry's specification (always dense: the abstract
    specs are small and their graphs are shared full-space). *)

val alpha_table : entry -> int -> int array
(** The entry's abstraction tabulated between program and spec at ring
    size [n]. *)

val stabilization :
  ?fair:Cr_core.Fair.tables -> entry -> int -> Cr_core.Stabilize.report
(** [stabilizing_to] for the entry at ring size [n].  Routed through the
    process-wide {!Cr_core.Check_cache}: every driver asking the same
    registry question shares one computed verdict. *)

val refinements : entry -> int -> (string * Cr_core.Refine.report) list
(** The four refinement relations ("init" / "everywhere" / "convergence"
    / "ee") for the entry at ring size [n], through the same cache.
    The concrete system is compiled with {!init_explicit}, so under the
    default (sparse) engine the relations quantify over the
    init-reachable fragment — the graybox premise of DESIGN.md
    section 2.  [CR_SPACE=dense] restores full-space quantification. *)
