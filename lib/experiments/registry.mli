(** Named registry of the systems built in this repository, for the
    crcheck CLI and the examples. *)

open Cr_guarded

type entry = {
  name : string;
  describe : string;
  program : int -> Program.t;
  spec : int -> Program.t;
  alpha : int -> (Layout.state, Layout.state) Cr_semantics.Abstraction.t;
  converged : int -> Layout.state -> bool;
  render : int -> Layout.state -> string;
  lint_allow : string list;
      (** lint checks to downgrade for this system (see {!Cr_lint.Lint}):
          the abstract neighbour-writing models allowlist [P1] *)
}

val entries : entry list
val find : string -> entry option
val names : unit -> string list

val explicit : entry -> int -> Layout.state Cr_semantics.Explicit.t
(** The entry's program at ring size [n], compiled through
    {!Program.to_explicit} (and thus the process-wide compile cache). *)

val spec_explicit : entry -> int -> Layout.state Cr_semantics.Explicit.t
(** Same for the entry's specification. *)

val alpha_table : entry -> int -> int array
(** The entry's abstraction tabulated between program and spec at ring
    size [n]. *)

val stabilization :
  ?fair:Cr_core.Fair.tables -> entry -> int -> Cr_core.Stabilize.report
(** [stabilizing_to] for the entry at ring size [n].  Routed through the
    process-wide {!Cr_core.Check_cache}: every driver asking the same
    registry question shares one computed verdict. *)

val refinements : entry -> int -> (string * Cr_core.Refine.report) list
(** The four refinement relations ("init" / "everywhere" / "convergence"
    / "ee") for the entry at ring size [n], through the same cache. *)
