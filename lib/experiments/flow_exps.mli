(** Registry-wide abstract-interpretation audit (backs
    [crcheck flow --all]). *)

type row = {
  entry : Registry.entry;
  flow : Cr_flow.Flow.t;
  rank : Cr_flow.Rank.t option;
  verdict : bool option;
      (** the registry stabilization verdict, cross-checked when the
          state space is within [verdict_budget] *)
}

val default_verdict_budget : int

val audit_entry : ?verdict_budget:int -> n:int -> Registry.entry -> row

val audit : ?verdict_budget:int -> ?n:int -> unit -> row list
(** Flow-analyze every registry system's program at ring size [n]
    (default 3). *)

val total_errors : row list -> int
(** Error-severity flow findings across the audit. *)

val to_json : n:int -> row list -> string
(** The [crcheck flow --all --json] artifact: provenance header plus
    one object per system with findings, stair, and verdict. *)

val pp_row : Format.formatter -> row -> unit
(** Full per-system report: summary, findings, stair layers, verdict. *)

val pp_summary : Format.formatter -> row list -> unit
(** One line per system. *)
