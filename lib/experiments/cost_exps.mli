(** E14: convergence cost of the derived stabilizing systems — exact
    worst case (adversarial daemon) plus Monte-Carlo mean under a random
    daemon, both measured to the checker's converged region. *)

type row = {
  system : string;
  n : int;
  states : int;
  worst_case : int;
  mean_random : float;
  max_random : int;
}

val dijkstra3_row : ?samples:int -> int -> row
val dijkstra4_row : ?samples:int -> int -> row
val c1_row : ?samples:int -> int -> row
val kstate_row : ?samples:int -> int -> row

val new3_priority_row : ?samples:int -> int -> row
(** The priority-composed new 3-state system; simulated on the explicit
    graph (preemption changes the enabled set). *)

val mean_on_explicit :
  ?samples:int ->
  seed:int ->
  'a Cr_semantics.Explicit.t ->
  converged_idx:(int -> bool) ->
  float * int * int
(** (mean, max, converged-count) of random walks to the converged set. *)

val pp_row : Format.formatter -> row -> unit
