(* Structural equality of bytecode listings (addresses and instructions). *)

let listings_equal (l1 : Cr_vm.Instr.listing) (l2 : Cr_vm.Instr.listing) =
  l1 = l2
