(** The introduction's motivating examples as runnable experiments
    (DESIGN.md E2, E3). *)

type vm_verdicts = {
  compiler_matches_paper : bool;
  source_stabilizes : bool;
  bytecode_stabilizes : bool;
  bytecode_refines_init : bool;
  bad_terminal : Cr_vm.Machine.state option;
}

val vm_experiment : unit -> vm_verdicts
(** E2: the Java compiler example — source stabilizes to x=0, the
    compiled bytecode does not (witness: a halted state with x<>0). *)

type bidding_verdicts = {
  impl_refines_init : bool;
  impl_convergence : bool;
  impl_blocked_terminal : int list option;
  wrapped_convergence : bool;
  wrapped_not_everywhere : bool;
  spec_diff_bound_holds : bool;
  impl_diff_bound_fails : bool;
}

val bidding_experiment : ?b:int -> ?k:int -> unit -> bidding_verdicts
(** E3: the bidding server — the sorted-list implementation refines the
    spec fault-free but loses its single-corruption tolerance; the
    graybox repair wrapper restores it. *)
