(** Exact per-action read/write-set inference by finite differencing.

    Domains are finite, so dependence on a slot is decided by perturbing
    the slot over its domain and watching the guard's value and the
    effect's written values.  All sets are exact w.r.t. the program
    semantics: reads are compared only across enabled states, and a slot
    the effect merely passes through is neither read nor written. *)

open Cr_guarded

type info = {
  action : Action.t;
  enabled_states : int;  (** states where the guard holds *)
  firing_states : int;  (** enabled states where the effect is not a no-op *)
  writes : int list;  (** exact write set *)
  guard_reads : int list;  (** slots the guard's value depends on *)
  effect_reads : int list;  (** slots the written values depend on *)
  copy_sources : int list;
      (** when [writes = [w]]: slots [r <> w] with [effect(s).(w) = s.(r)]
          on every enabled state — the signature of an atomic read step *)
  invalid_witness : Layout.state option;
      (** an enabled state whose effect leaves the layout's domains *)
}

val of_action : Layout.t -> Action.t -> info

val of_program : Program.t -> info list

val reads : info -> int list
(** Union of guard and effect reads, sorted. *)

val pp : Format.formatter -> Layout.t * info -> unit
