(* Cr_lint: a static-analysis pass over guarded-command programs.

   Every system in the reproduction declares [proc] and [writes] metadata
   on its actions but keeps guards/effects as opaque closures; the
   synchronous daemon, wrapper priority and the read/write-atomicity
   experiment all silently trust that metadata.  This pass makes the
   trust assumptions checkable: it infers exact read/write sets per
   action (Rwsets) and runs a battery of keyed checks.

   Check catalogue (keys, default severities):
     W1 error    declared-writes unsoundness: effect writes an undeclared slot
     W2 warning  over-declaration: a declared slot is never written
     P1 error    ownership violation: a slot is written by several processes
                 (info when allowlisted — the paper's abstract
                 neighbour-writing models do this on purpose)
     G1 warning  same-process overlap with diverging effects: makes
                 Program.synchronous_step's first-enabled-per-process
                 choice order-dependent
     D1 error    domain violation: an effect can leave Layout.valid
     U1 warning  dead action: never enabled in the full state space
        info     live in the full space but never enabled from the
                 initial states (fault-free executions)
     S1 warning  stuttering-only action: enabled somewhere, but every
                 firing is a no-op
     I1 info     interference pair: process i writes a slot that an
                 action of process j reads — unless the reader is an
                 atomic read step (single verbatim copy of one remote
                 slot into a private slot), the refinement shape that
                 makes the hazard disappear in the rw_atomicity system
     L1 error    duplicate action labels across a box composition *)

open Cr_guarded

type severity = Error | Warning | Info

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

type finding = {
  key : string;
  severity : severity;
  program : string;
  action : string;  (* "-" for program-level findings *)
  message : string;
}

type report = {
  program_name : string;
  findings : finding list;
  infos : Rwsets.info list;  (* the inferred read/write sets, per action *)
}

let c_programs = Cr_obs.Obs.counter "lint.programs"
let c_findings = Cr_obs.Obs.counter "lint.findings"
let c_errors = Cr_obs.Obs.counter "lint.errors"

let errors r =
  List.length (List.filter (fun f -> f.severity = Error) r.findings)

let find_key key r = List.filter (fun f -> f.key = key) r.findings

(* ---- helpers ---- *)

let slot_names layout slots =
  String.concat "," (List.map (Layout.var_name layout) slots)

let state_str layout s = Fmt.str "%a" (Layout.pp_state layout) s

let diff_sorted a b = List.filter (fun x -> not (List.mem x b)) a

(* ---- the checks ---- *)

(* W1/W2: declared [writes] metadata vs the exact write set. *)
let check_writes layout mk info =
  let a = info.Rwsets.action in
  let declared = List.sort_uniq compare (Action.writes a) in
  let exact = info.Rwsets.writes in
  let undeclared = diff_sorted exact declared in
  let overdeclared = diff_sorted declared exact in
  let w1 =
    if undeclared = [] then []
    else
      [
        mk "W1" Error (Action.label a)
          (Printf.sprintf
             "effect writes undeclared slot(s) {%s}; declared writes {%s}"
             (slot_names layout undeclared)
             (slot_names layout declared));
      ]
  in
  (* Over-declaration is only meaningful for actions that fire at all;
     dead or stuttering-only actions are reported by U1/S1 instead. *)
  let w2 =
    if overdeclared = [] || info.Rwsets.firing_states = 0 then []
    else
      [
        mk "W2" Warning (Action.label a)
          (Printf.sprintf
             "declared write slot(s) {%s} never written by the effect"
             (slot_names layout overdeclared));
      ]
  in
  w1 @ w2

(* P1: a slot exactly-written by actions of two or more distinct
   processes.  Under interleaving semantics that is a locality violation
   for the paper's concrete systems; the abstract neighbour-writing
   models (BTR, BTR_3, UTR) do it on purpose and are allowlisted. *)
let check_ownership layout mk ~allowed infos =
  let nv = Layout.num_vars layout in
  let writers = Array.make nv [] in
  List.iter
    (fun info ->
      let p = Action.proc info.Rwsets.action in
      if p >= 0 then
        List.iter
          (fun w ->
            if not (List.mem_assoc p writers.(w)) then
              writers.(w) <- (p, Action.label info.Rwsets.action) :: writers.(w))
          info.Rwsets.writes)
    infos;
  let fs = ref [] in
  for w = nv - 1 downto 0 do
    let ps = List.sort_uniq compare (List.map fst writers.(w)) in
    if List.length ps >= 2 then begin
      let sev = if allowed then Info else Error in
      let note = if allowed then " (allowlisted: abstract neighbour-writing model)" else "" in
      fs :=
        mk "P1" sev "-"
          (Printf.sprintf "slot %s written by processes %s (actions %s)%s"
             (Layout.var_name layout w)
             (String.concat "," (List.map string_of_int ps))
             (String.concat ", " (List.rev_map snd writers.(w)))
             note)
        :: !fs
    end
  done;
  !fs

(* G1: two actions of one process both fire at some state with different
   results under the synchronous daemon's merge of declared writes — the
   first-enabled-per-process choice is then order-dependent. *)
let check_sync_overlap layout mk p =
  Cr_obs.Obs.span "lint.g1_scan" @@ fun () ->
  let ns = Layout.num_states layout in
  let seen : (string * string, unit) Hashtbl.t = Hashtbl.create 8 in
  let fs = ref [] in
  let masked s (a, target) =
    let s' = Array.copy s in
    List.iter
      (fun i ->
        if i >= 0 && i < Array.length target then s'.(i) <- target.(i))
      (Action.writes a);
    s'
  in
  for k = 0 to ns - 1 do
    let s = Layout.unrank layout k in
    let firings = Program.firings p s in
    let by_proc = Hashtbl.create 4 in
    List.iter
      (fun ((a, _) as f) ->
        let pr = Action.proc a in
        Hashtbl.replace by_proc pr (f :: (try Hashtbl.find by_proc pr with Not_found -> [])))
      firings;
    Hashtbl.iter
      (fun pr fires ->
        match List.rev fires with
        | [] | [ _ ] -> ()
        | first :: rest ->
            let m0 = masked s first in
            List.iter
              (fun ((b, _) as fb) ->
                let key = (Action.label (fst first), Action.label b) in
                if not (Hashtbl.mem seen key) && masked s fb <> m0 then begin
                  Hashtbl.add seen key ();
                  fs :=
                    mk "G1" Warning (Action.label (fst first))
                      (Printf.sprintf
                         "actions %s and %s of process %d both fire at %s \
                          with different synchronous-merge results \
                          (synchronous_step is action-order dependent)"
                         (Action.label (fst first)) (Action.label b) pr
                         (state_str layout s))
                    :: !fs
                end)
              rest)
      by_proc
  done;
  List.rev !fs

(* D1: an enabled state whose effect leaves the layout. *)
let check_domains layout mk info =
  match info.Rwsets.invalid_witness with
  | None -> []
  | Some s ->
      [
        mk "D1" Error (Action.label info.Rwsets.action)
          (Printf.sprintf "effect leaves the variable domains at %s"
             (state_str layout s));
      ]

(* U1/S1: dead and stuttering-only actions.  The reachable variant runs
   only for actions that are live in the full space. *)
let check_liveness mk ~reachable info =
  let a = info.Rwsets.action in
  if info.Rwsets.enabled_states = 0 then
    [ mk "U1" Warning (Action.label a) "never enabled in the full state space" ]
  else if info.Rwsets.firing_states = 0 then
    [
      mk "S1" Warning (Action.label a)
        (Printf.sprintf
           "stuttering-only: enabled at %d state(s) but every firing is a no-op"
           info.Rwsets.enabled_states);
    ]
  else
    match reachable with
    | None -> []
    | Some tbl ->
        let alive = ref false in
        (try
           Hashtbl.iter
             (fun s () ->
               if a.Action.guard s then begin
                 alive := true;
                 raise Exit
               end)
             tbl
         with Exit -> ());
        if !alive then []
        else
          [
            mk "U1" Info (Action.label a)
              "never enabled from the initial states (fault-free executions)";
          ]

(* I1: interference pairs.  Process i writes a slot that an action of
   process j reads (in its guard or effect) — the read races with the
   write under interleaving at low atomicity.  The reader is exempt when
   it is an atomic read step: it writes exactly one slot, private to its
   process, as a verbatim copy of the single remote slot it reads — the
   rw_atomicity refinement's cache-fill shape. *)
let check_interference layout mk infos =
  let nv = Layout.num_vars layout in
  (* writers.(w) = procs (>= 0) writing w, with one witness action each *)
  let writers = Array.make nv [] in
  (* touched.(w) = procs of every action reading or writing w (incl. -1) *)
  let touched = Array.make nv [] in
  List.iter
    (fun info ->
      let p = Action.proc info.Rwsets.action in
      let lbl = Action.label info.Rwsets.action in
      List.iter
        (fun w ->
          if p >= 0 && not (List.exists (fun (q, _) -> q = p) writers.(w)) then
            writers.(w) <- (p, lbl) :: writers.(w);
          if not (List.mem p touched.(w)) then touched.(w) <- p :: touched.(w))
        info.Rwsets.writes;
      List.iter
        (fun r ->
          if not (List.mem p touched.(r)) then touched.(r) <- p :: touched.(r))
        (Rwsets.reads info))
    infos;
  let cross_reads info =
    let p = Action.proc info.Rwsets.action in
    List.filter
      (fun r -> List.exists (fun (q, _) -> q <> p) writers.(r))
      (Rwsets.reads info)
  in
  let is_read_step info =
    let p = Action.proc info.Rwsets.action in
    match (info.Rwsets.writes, cross_reads info) with
    | [ w ], [ r ] ->
        (* private destination: no other process touches w *)
        List.for_all (fun q -> q = p) touched.(w)
        && List.mem r info.Rwsets.copy_sources
    | _ -> false
  in
  List.concat_map
    (fun reader ->
      let pj = Action.proc reader.Rwsets.action in
      if pj < 0 || is_read_step reader then []
      else
        List.filter_map
          (fun r ->
            match List.filter (fun (q, _) -> q <> pj) writers.(r) with
            | [] -> None
            | remote ->
                Some
                  (mk "I1" Info
                     (Action.label reader.Rwsets.action)
                     (Printf.sprintf
                        "reads slot %s written by other process(es): %s"
                        (Layout.var_name layout r)
                        (String.concat ", "
                           (List.rev_map
                              (fun (q, lbl) -> Printf.sprintf "%s (proc %d)" lbl q)
                              remote)))))
          (cross_reads reader))
    infos

(* L1: duplicate action labels (box compositions can silently collide). *)
let check_labels mk p =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let l = Action.label a in
      Hashtbl.replace tbl l (1 + (try Hashtbl.find tbl l with Not_found -> 0)))
    (Program.actions p);
  Hashtbl.fold
    (fun l n acc ->
      if n > 1 then
        mk "L1" Error l
          (Printf.sprintf "label occurs %d times across the composition" n)
        :: acc
      else acc)
    tbl []

(* ---- the pass ---- *)

let key_order = [ "W1"; "W2"; "P1"; "G1"; "D1"; "U1"; "S1"; "I1"; "L1" ]

let key_rank k =
  let rec go i = function
    | [] -> List.length key_order
    | x :: tl -> if x = k then i else go (i + 1) tl
  in
  go 0 key_order

let run ?(allow = []) ?(reachable_check = true) (p : Program.t) : report =
  Cr_obs.Obs.span "lint.program" @@ fun () ->
  let layout = Program.layout p in
  let name = Program.name p in
  let mk key severity action message =
    { key; severity; program = name; action; message }
  in
  let infos = Rwsets.of_program p in
  let reachable =
    if not reachable_check then None
    else
      Cr_obs.Obs.span "lint.reachable" @@ fun () ->
      let seeds =
        List.filter (Program.initial p) (Layout.enumerate layout)
      in
      Some (Program.reachable_from p seeds)
  in
  let findings =
    List.concat
      [
        List.concat_map (check_writes layout mk) infos;
        check_ownership layout mk ~allowed:(List.mem "P1" allow) infos;
        check_sync_overlap layout mk p;
        List.concat_map (check_domains layout mk) infos;
        List.concat_map (check_liveness mk ~reachable) infos;
        check_interference layout mk infos;
        check_labels mk p;
      ]
  in
  let findings =
    List.stable_sort
      (fun a b -> compare (key_rank a.key) (key_rank b.key))
      findings
  in
  Cr_obs.Obs.incr c_programs;
  Cr_obs.Obs.add c_findings (List.length findings);
  Cr_obs.Obs.add c_errors
    (List.length (List.filter (fun f -> f.severity = Error) findings));
  { program_name = name; findings; infos }

(* ---- rendering ---- *)

let pp_finding fmt f =
  Fmt.pf fmt "%-3s %-7s %-22s %-14s %s" f.key (severity_string f.severity)
    f.program f.action f.message

(* Minimal JSON emission (validated by Cr_obs.Json_check; no JSON
   dependency, mirroring the trace exporter). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json f =
  Printf.sprintf
    "{\"key\":\"%s\",\"severity\":\"%s\",\"program\":\"%s\",\"action\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.key)
    (severity_string f.severity)
    (json_escape f.program) (json_escape f.action) (json_escape f.message)

let report_to_json ?(entry = "") r =
  Printf.sprintf
    "{\"entry\":\"%s\",\"program\":\"%s\",\"errors\":%d,\"findings\":[%s]}"
    (json_escape entry)
    (json_escape r.program_name)
    (errors r)
    (String.concat "," (List.map finding_to_json r.findings))

let reports_to_json ~n (rs : (string * report) list) =
  Printf.sprintf "{\"version\":1,\"n\":%d,\"systems\":[%s]}" n
    (String.concat ","
       (List.map (fun (entry, r) -> report_to_json ~entry r) rs))
