(* Cr_lint: a static-analysis pass over guarded-command programs.

   Every system in the reproduction declares [proc] and [writes] metadata
   on its actions but keeps guards/effects as opaque closures; the
   synchronous daemon, wrapper priority and the read/write-atomicity
   experiment all silently trust that metadata.  This pass makes the
   trust assumptions checkable: it infers exact read/write sets per
   action (Rwsets) and runs a battery of keyed checks.

   Check catalogue (keys, default severities):
     W1 error    declared-writes unsoundness: effect writes an undeclared slot
     W2 warning  over-declaration: a declared slot is never written
     P1 error    ownership violation: a slot is written by several processes
                 (info when allowlisted — the paper's abstract
                 neighbour-writing models do this on purpose)
     G1 warning  same-process overlap with diverging effects: makes
                 Program.synchronous_step's first-enabled-per-process
                 choice order-dependent
     D1 error    domain violation: an effect can leave Layout.valid
     U1 warning  dead action: never enabled in the full state space
        info     live in the full space but never enabled from the
                 initial states (fault-free executions)
     S1 warning  stuttering-only action: enabled somewhere, but every
                 firing is a no-op
     I1 info     interference pair: process i writes a slot that an
                 action of process j reads — unless the reader is an
                 atomic read step (single verbatim copy of one remote
                 slot into a private slot), the refinement shape that
                 makes the hazard disappear in the rw_atomicity system
     L1 error    duplicate action labels across a box composition
     B1 info     budget: the state space exceeds the exact-analysis
                 budget, so the exact battery was skipped

   Since lint v2 every finding carries a provenance tag: [Exact] for
   verdicts from full enumeration, [Abstract] for definite verdicts
   derived from the Cr_flow over-approximating fixpoints (which also
   contributes its own F1/F2/F3 keys via [merge]). *)

open Cr_guarded

type severity = Error | Warning | Info

let severity_string = function
  | Error -> "error"
  | Warning -> "warning"
  | Info -> "info"

(* How a finding was established.  [Exact] verdicts come from full
   enumeration (Rwsets differencing, reachable closures, localized
   scans); [Abstract] verdicts come from a sound over-approximation
   (Cr_flow fixpoints) — still definite, but derived without visiting
   the concrete states. *)
type provenance = Exact | Abstract

let provenance_string = function Exact -> "exact" | Abstract -> "abstract"

type finding = {
  key : string;
  severity : severity;
  provenance : provenance;
  program : string;
  action : string;  (* "-" for program-level findings *)
  message : string;
}

type report = {
  program_name : string;
  findings : finding list;
  infos : Rwsets.info list;  (* the inferred read/write sets, per action *)
}

let c_programs = Cr_obs.Obs.counter "lint.programs"
let c_findings = Cr_obs.Obs.counter "lint.findings"
let c_errors = Cr_obs.Obs.counter "lint.errors"

let errors r =
  List.length (List.filter (fun f -> f.severity = Error) r.findings)

let find_key key r = List.filter (fun f -> f.key = key) r.findings

(* ---- helpers ---- *)

let slot_names layout slots =
  String.concat "," (List.map (Layout.var_name layout) slots)

let state_str layout s = Fmt.str "%a" (Layout.pp_state layout) s

let diff_sorted a b = List.filter (fun x -> not (List.mem x b)) a

(* ---- the checks ---- *)

(* W1/W2: declared [writes] metadata vs the exact write set. *)
let check_writes layout mk info =
  let a = info.Rwsets.action in
  let declared = List.sort_uniq compare (Action.writes a) in
  let exact = info.Rwsets.writes in
  let undeclared = diff_sorted exact declared in
  let overdeclared = diff_sorted declared exact in
  let w1 =
    if undeclared = [] then []
    else
      [
        mk "W1" Error (Action.label a)
          (Printf.sprintf
             "effect writes undeclared slot(s) {%s}; declared writes {%s}"
             (slot_names layout undeclared)
             (slot_names layout declared));
      ]
  in
  (* Over-declaration is only meaningful for actions that fire at all;
     dead or stuttering-only actions are reported by U1/S1 instead. *)
  let w2 =
    if overdeclared = [] || info.Rwsets.firing_states = 0 then []
    else
      [
        mk "W2" Warning (Action.label a)
          (Printf.sprintf
             "declared write slot(s) {%s} never written by the effect"
             (slot_names layout overdeclared));
      ]
  in
  w1 @ w2

(* P1: a slot exactly-written by actions of two or more distinct
   processes.  Under interleaving semantics that is a locality violation
   for the paper's concrete systems; the abstract neighbour-writing
   models (BTR, BTR_3, UTR) do it on purpose and are allowlisted. *)
let check_ownership layout mk ~allowed infos =
  let nv = Layout.num_vars layout in
  let writers = Array.make nv [] in
  List.iter
    (fun info ->
      let p = Action.proc info.Rwsets.action in
      if p >= 0 then
        List.iter
          (fun w ->
            if not (List.mem_assoc p writers.(w)) then
              writers.(w) <- (p, Action.label info.Rwsets.action) :: writers.(w))
          info.Rwsets.writes)
    infos;
  let fs = ref [] in
  for w = nv - 1 downto 0 do
    let ps = List.sort_uniq compare (List.map fst writers.(w)) in
    if List.length ps >= 2 then begin
      let sev = if allowed then Info else Error in
      let note = if allowed then " (allowlisted: abstract neighbour-writing model)" else "" in
      fs :=
        mk "P1" sev "-"
          (Printf.sprintf "slot %s written by processes %s (actions %s)%s"
             (Layout.var_name layout w)
             (String.concat "," (List.map string_of_int ps))
             (String.concat ", " (List.rev_map snd writers.(w)))
             note)
        :: !fs
    end
  done;
  !fs

(* G1: two actions of one process both fire at some state with different
   results under the synchronous daemon's merge of declared writes — the
   first-enabled-per-process choice is then order-dependent.

   The scan is pair-localized: whether a same-process pair conflicts
   somewhere is a function of the slots in

     U = guard_reads(a) + guard_reads(b) + effect_reads(a)
       + effect_reads(b) + declared_writes(a) + declared_writes(b)

   only.  Guards depend exactly on their guard-read slots, written
   outputs among enabled states depend exactly on the effect-read slots
   (Rwsets' differencing theorems), and the synchronous merge copies
   declared slots — so the whole conflict predicate is invariant under
   changing any slot outside U, and enumerating the U-product with
   every other slot pinned at 0 decides the pair exactly.  Cost drops
   from O(num_states * procs) to the (typically tiny) per-pair support
   product; a pair whose product still exceeds [budget] is skipped
   (inconclusive), so huge layouts degrade instead of blowing up. *)
let check_sync_overlap layout mk ~budget infos =
  Cr_obs.Obs.span "lint.g1_scan" @@ fun () ->
  let nv = Layout.num_vars layout in
  let fs = ref [] in
  (* Exact writes join the support because the fire/no-op distinction
     (a no-op is not a firing, so it never enters the synchronous merge)
     compares effect outputs against the state's own written slots. *)
  let support info =
    List.sort_uniq compare
      (info.Rwsets.guard_reads @ info.Rwsets.effect_reads
      @ info.Rwsets.writes
      @ List.filter
          (fun i -> i >= 0 && i < nv)
          (Action.writes info.Rwsets.action))
  in
  let conflict ia ib =
    let a = ia.Rwsets.action and b = ib.Rwsets.action in
    let da = List.filter (fun i -> i >= 0 && i < nv) (Action.writes a) in
    let db = List.filter (fun i -> i >= 0 && i < nv) (Action.writes b) in
    let u = List.sort_uniq compare (support ia @ support ib) in
    let product =
      List.fold_left (fun acc i -> acc * Layout.dom layout i) 1 u
    in
    if product > budget then None
    else begin
      let u = Array.of_list u in
      let s = Array.make nv 0 in
      let witness = ref None in
      let k = ref 0 in
      while !witness = None && !k < product do
        (* decode combo !k into the U slots of the scratch state *)
        let r = ref !k in
        Array.iter
          (fun i ->
            let d = Layout.dom layout i in
            s.(i) <- !r mod d;
            r := !r / d)
          u;
        if a.Action.guard s && b.Action.guard s then begin
          let sa = a.Action.effect s and sb = b.Action.effect s in
          (* Only genuine firings enter the synchronous merge. *)
          if sa <> s && sb <> s then begin
            let pick s' decl w =
              if List.mem w decl && w < Array.length s' then s'.(w) else s.(w)
            in
            if
              List.exists
                (fun w -> pick sa da w <> pick sb db w)
                (List.sort_uniq compare (da @ db))
            then witness := Some (Array.copy s)
          end
        end;
        incr k
      done;
      Option.map (fun w -> (w, product)) !witness
    end
  in
  let infos = Array.of_list infos in
  let n = Array.length infos in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let ia = infos.(i) and ib = infos.(j) in
      let pr = Action.proc ia.Rwsets.action in
      if pr = Action.proc ib.Rwsets.action then
        match conflict ia ib with
        | None -> ()
        | Some (s, _) ->
            fs :=
              mk "G1" Warning
                (Action.label ia.Rwsets.action)
                (Printf.sprintf
                   "actions %s and %s of process %d both fire at %s \
                    with different synchronous-merge results \
                    (synchronous_step is action-order dependent)"
                   (Action.label ia.Rwsets.action)
                   (Action.label ib.Rwsets.action)
                   pr (state_str layout s))
              :: !fs
    done
  done;
  List.rev !fs

(* D1: an enabled state whose effect leaves the layout. *)
let check_domains layout mk info =
  match info.Rwsets.invalid_witness with
  | None -> []
  | Some s ->
      [
        mk "D1" Error (Action.label info.Rwsets.action)
          (Printf.sprintf "effect leaves the variable domains at %s"
             (state_str layout s));
      ]

(* U1/S1: dead and stuttering-only actions.  The reachable variant runs
   only for actions that are live in the full space, and only when the
   abstract pre-filter ([init_dead], from the Cr_flow init fixpoint) has
   not already settled the verdict: flow proving the guard unsatisfiable
   over an over-approximation of the fault-free reachable values is a
   definite dead-from-init verdict, obtained without building the exact
   reachable closure.  [reachable] is lazy so the closure is forced only
   when some action actually needs the exact fallback. *)
let check_liveness mk_prov ~reachable ~init_dead info =
  let mk key sev action msg = mk_prov key sev Exact action msg in
  let a = info.Rwsets.action in
  if info.Rwsets.enabled_states = 0 then
    [ mk "U1" Warning (Action.label a) "never enabled in the full state space" ]
  else if info.Rwsets.firing_states = 0 then
    [
      mk "S1" Warning (Action.label a)
        (Printf.sprintf
           "stuttering-only: enabled at %d state(s) but every firing is a no-op"
           info.Rwsets.enabled_states);
    ]
  else if init_dead (Action.label a) then
    [
      mk_prov "U1" Info Abstract (Action.label a)
        "never enabled from the initial states (abstract init fixpoint: \
         guard unsatisfiable over the reachable value over-approximation)";
    ]
  else
    match Lazy.force reachable with
    | None -> []
    | Some tbl ->
        let alive = ref false in
        (try
           Hashtbl.iter
             (fun s () ->
               if a.Action.guard s then begin
                 alive := true;
                 raise Exit
               end)
             tbl
         with Exit -> ());
        if !alive then []
        else
          [
            mk "U1" Info (Action.label a)
              "never enabled from the initial states (fault-free executions)";
          ]

(* I1: interference pairs.  Process i writes a slot that an action of
   process j reads (in its guard or effect) — the read races with the
   write under interleaving at low atomicity.  The reader is exempt when
   it is an atomic read step: it writes exactly one slot, private to its
   process, as a verbatim copy of the single remote slot it reads — the
   rw_atomicity refinement's cache-fill shape. *)
let check_interference layout mk infos =
  let nv = Layout.num_vars layout in
  (* writers.(w) = procs (>= 0) writing w, with one witness action each *)
  let writers = Array.make nv [] in
  (* touched.(w) = procs of every action reading or writing w (incl. -1) *)
  let touched = Array.make nv [] in
  List.iter
    (fun info ->
      let p = Action.proc info.Rwsets.action in
      let lbl = Action.label info.Rwsets.action in
      List.iter
        (fun w ->
          if p >= 0 && not (List.exists (fun (q, _) -> q = p) writers.(w)) then
            writers.(w) <- (p, lbl) :: writers.(w);
          if not (List.mem p touched.(w)) then touched.(w) <- p :: touched.(w))
        info.Rwsets.writes;
      List.iter
        (fun r ->
          if not (List.mem p touched.(r)) then touched.(r) <- p :: touched.(r))
        (Rwsets.reads info))
    infos;
  let cross_reads info =
    let p = Action.proc info.Rwsets.action in
    List.filter
      (fun r -> List.exists (fun (q, _) -> q <> p) writers.(r))
      (Rwsets.reads info)
  in
  let is_read_step info =
    let p = Action.proc info.Rwsets.action in
    match (info.Rwsets.writes, cross_reads info) with
    | [ w ], [ r ] ->
        (* private destination: no other process touches w *)
        List.for_all (fun q -> q = p) touched.(w)
        && List.mem r info.Rwsets.copy_sources
    | _ -> false
  in
  List.concat_map
    (fun reader ->
      let pj = Action.proc reader.Rwsets.action in
      if pj < 0 || is_read_step reader then []
      else
        List.filter_map
          (fun r ->
            match List.filter (fun (q, _) -> q <> pj) writers.(r) with
            | [] -> None
            | remote ->
                Some
                  (mk "I1" Info
                     (Action.label reader.Rwsets.action)
                     (Printf.sprintf
                        "reads slot %s written by other process(es): %s"
                        (Layout.var_name layout r)
                        (String.concat ", "
                           (List.rev_map
                              (fun (q, lbl) -> Printf.sprintf "%s (proc %d)" lbl q)
                              remote)))))
          (cross_reads reader))
    infos

(* L1: duplicate action labels (box compositions can silently collide). *)
let check_labels mk p =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun a ->
      let l = Action.label a in
      Hashtbl.replace tbl l (1 + (try Hashtbl.find tbl l with Not_found -> 0)))
    (Program.actions p);
  Hashtbl.fold
    (fun l n acc ->
      if n > 1 then
        mk "L1" Error l
          (Printf.sprintf "label occurs %d times across the composition" n)
        :: acc
      else acc)
    tbl []

(* ---- the pass ---- *)

let key_order =
  [ "W1"; "W2"; "P1"; "G1"; "D1"; "U1"; "S1"; "I1"; "L1"; "F1"; "F2"; "F3"; "B1" ]

let key_rank k =
  let rec go i = function
    | [] -> List.length key_order
    | x :: tl -> if x = k then i else go (i + 1) tl
  in
  go 0 key_order

let sort_findings findings =
  List.stable_sort
    (fun a b -> compare (key_rank a.key) (key_rank b.key))
    findings

let merge r extra = { r with findings = sort_findings (r.findings @ extra) }

let default_exact_budget = 1 lsl 22

let run ?(allow = []) ?(reachable_check = true)
    ?(exact_budget = default_exact_budget) ?infos
    ?(init_dead = fun _ -> false) (p : Program.t) : report =
  Cr_obs.Obs.span "lint.program" @@ fun () ->
  let layout = Program.layout p in
  let ns = Layout.num_states layout in
  let name = Program.name p in
  let mk_prov key severity provenance action message =
    { key; severity; provenance; program = name; action; message }
  in
  let mk key severity action message = mk_prov key severity Exact action message in
  Cr_obs.Obs.incr c_programs;
  if ns > exact_budget then begin
    (* The whole battery rests on the full-space Rwsets pass; past the
       budget we refuse to start it rather than blow up.  One info
       finding records the degradation (B1). *)
    let f =
      mk "B1" Info "-"
        (Printf.sprintf
           "state space (%d states) exceeds the exact-analysis budget (%d); \
            exact battery skipped — run `crcheck flow` for the abstract audit"
           ns exact_budget)
    in
    Cr_obs.Obs.add c_findings 1;
    { program_name = name; findings = [ f ]; infos = [] }
  end
  else begin
    let infos =
      match infos with Some is -> is | None -> Rwsets.of_program p
    in
    let reachable =
      lazy
        (if not reachable_check then None
         else
           Cr_obs.Obs.span "lint.reachable" @@ fun () ->
           let seeds =
             List.filter (Program.initial p) (Layout.enumerate layout)
           in
           Some (Program.reachable_from p seeds))
    in
    let findings =
      List.concat
        [
          List.concat_map (check_writes layout mk) infos;
          check_ownership layout mk ~allowed:(List.mem "P1" allow) infos;
          check_sync_overlap layout mk ~budget:exact_budget infos;
          List.concat_map (check_domains layout mk) infos;
          List.concat_map (check_liveness mk_prov ~reachable ~init_dead) infos;
          check_interference layout mk infos;
          check_labels mk p;
        ]
    in
    let findings = sort_findings findings in
    Cr_obs.Obs.add c_findings (List.length findings);
    Cr_obs.Obs.add c_errors
      (List.length (List.filter (fun f -> f.severity = Error) findings));
    { program_name = name; findings; infos }
  end

(* ---- rendering ---- *)

(* Exact findings render exactly as before; abstract ones carry a
   marker so provenance is visible in terminal output too. *)
let pp_finding fmt f =
  Fmt.pf fmt "%-3s %-7s %-22s %-14s %s%s" f.key (severity_string f.severity)
    f.program f.action f.message
    (match f.provenance with Exact -> "" | Abstract -> " [abstract]")

(* Minimal JSON emission (validated by Cr_obs.Json_check; no JSON
   dependency, mirroring the trace exporter). *)
let json_escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let finding_to_json f =
  Printf.sprintf
    "{\"key\":\"%s\",\"severity\":\"%s\",\"provenance\":\"%s\",\"program\":\"%s\",\"action\":\"%s\",\"message\":\"%s\"}"
    (json_escape f.key)
    (severity_string f.severity)
    (provenance_string f.provenance)
    (json_escape f.program) (json_escape f.action) (json_escape f.message)

let report_to_json ?(entry = "") r =
  Printf.sprintf
    "{\"entry\":\"%s\",\"program\":\"%s\",\"errors\":%d,\"findings\":[%s]}"
    (json_escape entry)
    (json_escape r.program_name)
    (errors r)
    (String.concat "," (List.map finding_to_json r.findings))

(* Provenance header shared by every findings artifact (lint and flow),
   matching the bench/journal convention: tool identity plus the run's
   git revision and effective job count. *)
let artifact_header ~version ~n =
  Printf.sprintf
    "\"version\":%d,\"tool\":\"crcheck\",\"tool_version\":\"1.0.0\",\"git_rev\":\"%s\",\"cr_jobs\":%d,\"n\":%d"
    version
    (json_escape (Cr_obs.Journal.git_rev ()))
    (Cr_kernel.Par.jobs_env ()) n

let reports_to_json ~n (rs : (string * report) list) =
  Printf.sprintf "{%s,\"systems\":[%s]}"
    (artifact_header ~version:2 ~n)
    (String.concat ","
       (List.map (fun (entry, r) -> report_to_json ~entry r) rs))
