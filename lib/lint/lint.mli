(** A static-analysis pass over guarded-command programs.

    Infers exact read/write sets per action ({!Rwsets}) and runs a
    battery of keyed checks over them:

    - [W1] (error): the effect writes a slot missing from the declared
      [writes] metadata — the synchronous daemon and the ownership
      checks silently trust that list.
    - [W2] (warning): a declared slot is never written by any firing.
    - [P1] (error; info when ["P1"] is allowlisted): a slot is written
      by actions of two or more distinct processes — a locality
      violation for concrete systems, intentional for the paper's
      abstract neighbour-writing models.
    - [G1] (warning): two actions of one process both fire at some state
      with different synchronous-merge results, making
      {!Cr_guarded.Program.synchronous_step}'s first-enabled choice
      order-dependent.
    - [D1] (error): an effect can produce a state failing
      {!Cr_guarded.Layout.valid}.
    - [U1] (warning / info): dead action — never enabled in the full
      state space (warning), or live but never enabled from the initial
      states (info).
    - [S1] (warning): stuttering-only action — enabled somewhere, but
      every firing is a no-op.
    - [I1] (info): interference pair — a process reads a slot another
      process writes, unless the reader is an atomic read step (a
      verbatim copy of one remote slot into a private slot), the shape
      the rw_atomicity refinement uses to eliminate the hazard.
    - [L1] (error): duplicate action labels across a box composition.
    - [B1] (info): the state space exceeds the exact-analysis budget;
      the exact battery was skipped (degraded, not wrong).

    Since lint v2 every finding carries a {!provenance} tag.  The
    abstract interpreter ({!Cr_flow.Flow}) reuses this report type for
    its own F1/F2/F3 keys and injects definite abstract verdicts into
    {!run} via [init_dead], so exact enumeration only runs where the
    abstract verdict is inconclusive. *)

open Cr_guarded

type severity = Error | Warning | Info

val severity_string : severity -> string

type provenance = Exact | Abstract
    (** [Exact]: established by full enumeration.  [Abstract]: a
        definite verdict derived from a sound over-approximation
        (the Cr_flow fixpoints) without visiting concrete states. *)

val provenance_string : provenance -> string

type finding = {
  key : string;
  severity : severity;
  provenance : provenance;
  program : string;
  action : string;  (** ["-"] for program-level findings *)
  message : string;
}

type report = {
  program_name : string;
  findings : finding list;
  infos : Rwsets.info list;  (** inferred read/write sets, per action *)
}

val default_exact_budget : int
(** Default [exact_budget] for {!run}: the largest state-space size the
    exact passes (Rwsets differencing, reachable closure, G1 fallback)
    will attempt. *)

val run :
  ?allow:string list ->
  ?reachable_check:bool ->
  ?exact_budget:int ->
  ?infos:Rwsets.info list ->
  ?init_dead:(string -> bool) ->
  Program.t ->
  report
(** Run every check.  [allow] downgrades the named checks where an
    allowlist applies (currently [P1], for abstract neighbour-writing
    systems).  [reachable_check:false] skips the reachable-from-initial
    variant of U1 (it forces the program's initial-state closure, built
    lazily and only when some action needs the exact fallback).
    Programs with more than [exact_budget] states get a single [B1]
    finding instead of the exact battery.  [infos] supplies precomputed
    read/write sets (so a caller that already ran {!Rwsets.of_program}
    — e.g. the flow engine — avoids the second full-space pass).
    [init_dead label = true] asserts that the abstract init fixpoint
    proved the action's guard unsatisfiable over all fault-free
    reachable values: {!run} then emits the U1 info finding with
    [Abstract] provenance and skips the exact closure for it. *)

val merge : report -> finding list -> report
(** Append findings (e.g. the flow engine's F1/F2/F3) and re-sort into
    the canonical key order. *)

val sort_findings : finding list -> finding list

val errors : report -> int
(** Number of error-severity findings. *)

val find_key : string -> report -> finding list

val pp_finding : Format.formatter -> finding -> unit
(** Prints [KEY severity program action message]. *)

val json_escape : string -> string
(** JSON string-body escaping, shared with the flow artifact emitter. *)

val artifact_header : version:int -> n:int -> string
(** The provenance header fields of a findings artifact —
    [version/tool/tool_version/git_rev/cr_jobs/n], without braces —
    matching the bench/journal convention. *)

val finding_to_json : finding -> string

val report_to_json : ?entry:string -> report -> string

val reports_to_json : n:int -> (string * report) list -> string
(** The [crcheck lint --json] artifact (version 2: provenance header +
    per-finding provenance): one object per audited registry entry;
    well-formed per {!Cr_obs.Json_check}. *)
