(** A static-analysis pass over guarded-command programs.

    Infers exact read/write sets per action ({!Rwsets}) and runs a
    battery of keyed checks over them:

    - [W1] (error): the effect writes a slot missing from the declared
      [writes] metadata — the synchronous daemon and the ownership
      checks silently trust that list.
    - [W2] (warning): a declared slot is never written by any firing.
    - [P1] (error; info when ["P1"] is allowlisted): a slot is written
      by actions of two or more distinct processes — a locality
      violation for concrete systems, intentional for the paper's
      abstract neighbour-writing models.
    - [G1] (warning): two actions of one process both fire at some state
      with different synchronous-merge results, making
      {!Cr_guarded.Program.synchronous_step}'s first-enabled choice
      order-dependent.
    - [D1] (error): an effect can produce a state failing
      {!Cr_guarded.Layout.valid}.
    - [U1] (warning / info): dead action — never enabled in the full
      state space (warning), or live but never enabled from the initial
      states (info).
    - [S1] (warning): stuttering-only action — enabled somewhere, but
      every firing is a no-op.
    - [I1] (info): interference pair — a process reads a slot another
      process writes, unless the reader is an atomic read step (a
      verbatim copy of one remote slot into a private slot), the shape
      the rw_atomicity refinement uses to eliminate the hazard.
    - [L1] (error): duplicate action labels across a box composition. *)

open Cr_guarded

type severity = Error | Warning | Info

val severity_string : severity -> string

type finding = {
  key : string;
  severity : severity;
  program : string;
  action : string;  (** ["-"] for program-level findings *)
  message : string;
}

type report = {
  program_name : string;
  findings : finding list;
  infos : Rwsets.info list;  (** inferred read/write sets, per action *)
}

val run : ?allow:string list -> ?reachable_check:bool -> Program.t -> report
(** Run every check.  [allow] downgrades the named checks where an
    allowlist applies (currently [P1], for abstract neighbour-writing
    systems).  [reachable_check:false] skips the reachable-from-initial
    variant of U1 (it forces the program's initial-state closure). *)

val errors : report -> int
(** Number of error-severity findings. *)

val find_key : string -> report -> finding list

val pp_finding : Format.formatter -> finding -> unit
(** Prints [KEY severity program action message]. *)

val report_to_json : ?entry:string -> report -> string

val reports_to_json : n:int -> (string * report) list -> string
(** The [crcheck lint --json] artifact: one object per audited registry
    entry; well-formed per {!Cr_obs.Json_check}. *)
