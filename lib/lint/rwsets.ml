(* Exact per-action read/write sets by finite differencing.

   Guards and effects are opaque closures, but domains are finite, so
   dependence is decidable by perturbation: slot i is read iff changing
   only slot i can change the guard's value (guard read) or the effect's
   written values (effect read), and written iff some enabled state's
   effect changes it.  All sets are exact w.r.t. the program semantics:
   reads are compared only across states the guard admits (a disabled
   state never fires), and a slot the effect merely passes through
   (output = input on every enabled state) is neither read nor written —
   extensionally the effect does not touch it.

   Cost per action: one full-space pass caching guard bits and effect
   results by rank, then one arithmetic pass per slot over the "slot
   lines" (states differing only in that slot, enumerated via
   Layout.weight).  No hashing; memory is O(num_states) plus one cached
   effect array per enabled state. *)

open Cr_guarded

type info = {
  action : Action.t;
  enabled_states : int;  (* states where the guard holds *)
  firing_states : int;  (* enabled states where the effect is not a no-op *)
  writes : int list;  (* slots some enabled state's effect changes *)
  guard_reads : int list;  (* slots the guard's value depends on *)
  effect_reads : int list;  (* slots the written values depend on *)
  copy_sources : int list;
      (* when [writes = [w]]: slots r <> w with effect(s).(w) = s.(r) on
         every enabled state — the signature of an atomic read step *)
  invalid_witness : Layout.state option;
      (* an enabled state whose effect leaves the layout's domains *)
}

let c_actions = Cr_obs.Obs.counter "lint.rwsets.actions"
let c_state_evals = Cr_obs.Obs.counter "lint.rwsets.state_evals"

let slots_of_mask mask =
  let acc = ref [] in
  Array.iteri (fun i b -> if b then acc := i :: !acc) mask;
  List.rev !acc

let of_action layout (a : Action.t) : info =
  Cr_obs.Obs.span "lint.rwsets" @@ fun () ->
  let nv = Layout.num_vars layout in
  let ns = Layout.num_states layout in
  let guard = a.Action.guard and effect = a.Action.effect in
  (* Pass 1: evaluate every state once; cache guard bits and effect
     results by rank; collect the exact write set. *)
  let gcache = Bytes.make ns '\000' in
  let ecache = Array.make ns [||] in
  (* [||] marks a disabled state *)
  let enabled = ref 0 and firing = ref 0 in
  let wmask = Array.make nv false in
  let invalid = ref None in
  for k = 0 to ns - 1 do
    let s = Layout.unrank layout k in
    if guard s then begin
      Bytes.unsafe_set gcache k '\001';
      incr enabled;
      let s' = effect s in
      ecache.(k) <- s';
      if not (Layout.valid layout s') && !invalid = None then
        invalid := Some s;
      let changed = ref (Array.length s' <> nv) in
      let m = min (Array.length s') nv in
      for i = 0 to m - 1 do
        if s'.(i) <> s.(i) then begin
          wmask.(i) <- true;
          changed := true
        end
      done;
      if !changed then incr firing
    end
  done;
  Cr_obs.Obs.incr c_actions;
  Cr_obs.Obs.add c_state_evals ns;
  let writes = slots_of_mask wmask in
  (* Copy sources: single-write actions whose written value is a verbatim
     copy of one other slot on every enabled state. *)
  let copy_sources =
    match writes with
    | [ w ] ->
        let cand = Array.make nv true in
        cand.(w) <- false;
        for k = 0 to ns - 1 do
          if Bytes.unsafe_get gcache k = '\001' then begin
            let s = Layout.unrank layout k in
            let s' = ecache.(k) in
            if Array.length s' = nv then
              for r = 0 to nv - 1 do
                if cand.(r) && s'.(w) <> s.(r) then cand.(r) <- false
              done
          end
        done;
        slots_of_mask cand
    | _ -> []
  in
  (* Pass 2: finite differencing along slot lines, all from the caches.
     For effect reads, only the exact write slots can differ between two
     enabled states (pass 1 makes every other slot a pass-through); the
     perturbed slot itself counts only when the difference is not two
     pass-throughs. *)
  let greads = Array.make nv false and ereads = Array.make nv false in
  for i = 0 to nv - 1 do
    let d = Layout.dom layout i in
    if d > 1 then begin
      let w = Layout.weight layout i in
      let lines = ns / (w * d) in
      let line = ref 0 in
      while !line < lines && not (greads.(i) && ereads.(i)) do
        let hi = !line in
        let lo = ref 0 in
        while !lo < w && not (greads.(i) && ereads.(i)) do
          let base = !lo + (w * d * hi) in
          let g0 = Bytes.unsafe_get gcache base in
          (if not greads.(i) then
             let v = ref 1 in
             while !v < d do
               if Bytes.unsafe_get gcache (base + (!v * w)) <> g0 then begin
                 greads.(i) <- true;
                 v := d
               end
               else incr v
             done);
          if not ereads.(i) then begin
            (* pairwise over the enabled states of the line *)
            let va = ref 0 in
            while !va < d - 1 && not ereads.(i) do
              let ka = base + (!va * w) in
              if Bytes.unsafe_get gcache ka = '\001' then begin
                let ea = ecache.(ka) in
                let vb = ref (!va + 1) in
                while !vb < d && not ereads.(i) do
                  let kb = base + (!vb * w) in
                  if Bytes.unsafe_get gcache kb = '\001' then begin
                    let eb = ecache.(kb) in
                    if Array.length ea = nv && Array.length eb = nv then
                      List.iter
                        (fun k ->
                          if not ereads.(i) then
                            if k <> i then begin
                              if ea.(k) <> eb.(k) then ereads.(i) <- true
                            end
                            else if
                              ea.(i) <> eb.(i)
                              && not (ea.(i) = !va && eb.(i) = !vb)
                            then ereads.(i) <- true)
                        writes
                  end;
                  incr vb
                done
              end;
              incr va
            done
          end;
          incr lo
        done;
        incr line
      done
    end
  done;
  {
    action = a;
    enabled_states = !enabled;
    firing_states = !firing;
    writes;
    guard_reads = slots_of_mask greads;
    effect_reads = slots_of_mask ereads;
    copy_sources;
    invalid_witness = !invalid;
  }

(* Per-action inference is embarrassingly parallel: each [of_action]
   touches only its own caches, so the CR_JOBS fan-out merges back by
   index into exactly the sequential list. *)
let of_program (p : Program.t) : info list =
  let layout = Program.layout p in
  Cr_kernel.Par.map (of_action layout) (Program.actions p)

let reads info =
  List.sort_uniq compare (info.guard_reads @ info.effect_reads)

let pp fmt (layout, info) =
  let names l =
    String.concat "," (List.map (Layout.var_name layout) l)
  in
  Fmt.pf fmt "%s: writes={%s} guard_reads={%s} effect_reads={%s} enabled=%d firing=%d"
    (Action.label info.action) (names info.writes) (names info.guard_reads)
    (names info.effect_reads) info.enabled_states info.firing_states
