(** Refinement checkers — the paper's Section 2 relations, decided on
    explicit finite-state systems.

    All checkers accept an optional tabulated abstraction [alpha] (from
    {!Cr_semantics.Abstraction.tabulate}) mapping concrete state indices to
    abstract state indices; it defaults to the identity (shared state
    space).  Stuttering of the abstract image is treated as the paper's "τ
    steps": images are compared modulo consecutive repetition (DESIGN.md,
    section 2).

    The checkers are sound: [holds = true] implies the trace-theoretic
    relation.

    Verdicts are memoized in a content-addressed {!Check_cache} keyed on
    the relation, both systems' exact structure, the abstraction and the
    fairness tables — disable with [CR_CHECK_CACHE=0], audit with
    [CR_CHECK_PARANOID=1].  The classification sweep is domain-chunked
    under [CR_JOBS] ({!Cr_kernel.Par}) with job-count-independent
    results. *)

type edge_class =
  | Stutter  (** the abstract image does not move *)
  | Exact  (** image edge is a transition of the abstract system *)
  | Compression of int
      (** images joined by a shortest abstract path of this length >= 2:
          the concrete system drops [length - 1] abstract states *)

type failure =
  | Initial_not_initial of int
  | Init_edge_not_exact of int * int
  | Edge_unmatched of int * int
  | Compression_on_cycle of int * int
  | Stutter_cycle of int
  | Terminal_not_terminal of int
  | Non_exact_on_cycle of int * int

val failure_state : failure -> int
(** The concrete state a failure is anchored at (the source of the
    failing edge, or the failing state itself). *)

val pp_failure :
  'c Cr_semantics.Explicit.t ->
  'a Cr_semantics.Explicit.t ->
  Format.formatter ->
  failure ->
  unit

type stats = {
  edges : int;
  exact : int;
  stutter : int;
  compressions : int;
  max_dropped : int;
}

type report = {
  holds : bool;
  stats : stats;
  failures : failure list;  (** truncated to the first few *)
  total_failures : int;
      (** number of failures found before truncation; {!pp_report} says
          "showing k of n" whenever [failures] is the shorter list *)
  concrete : string;
  abstract : string;
  relation : string;
  cost : Cr_obs.Obs.snapshot option;
      (** telemetry counters moved by this check on the calling domain
          ([Some] only while {!Cr_obs.Obs.tracking} — e.g. under
          [CR_STATS], [CR_TRACE], or the CLI's [--stats]) *)
}

val pp_report : Format.formatter -> report -> unit

type classified = {
  srcs : int array;  (** edge sources, in [Explicit.iter_edges] order *)
  dsts : int array;  (** edge destinations, parallel to [srcs] *)
  cls : edge_class option array;
      (** per-edge class; [None] marks an unmatched edge *)
}

val iter_classified : classified -> (int -> int -> edge_class option -> unit) -> unit
(** Iterate the classified edges in order: [f src dst class]. *)

val classify :
  alpha:int array ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  classified * stats
(** Classify every concrete transition against the abstract system, as
    flat parallel arrays.  Shortest-path queries against the abstract
    graph share one memoized BFS oracle per call. *)

val init_refinement :
  ?alpha:int array ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  unit ->
  report
(** [[C ⊑ A]_init] — every computation of [c] from an initial state is a
    computation of [a]. *)

val everywhere_refinement :
  ?alpha:int array ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  unit ->
  report
(** [[C ⊑ A]] — every computation of [c] is a computation of [a]. *)

val convergence_refinement :
  ?alpha:int array ->
  ?fair:Fair.tables ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  unit ->
  report
(** [[C ⪯ A]] — the paper's convergence refinement: init-refinement plus
    every computation of [c] is a convergence isomorphism of some
    computation of [a].  With [?fair] (action tables for [c]) the
    computations of [c] are restricted to weakly fair ones. *)

val everywhere_eventually_refinement :
  ?alpha:int array ->
  ?fair:Fair.tables ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  unit ->
  report
(** The more permissive relation of Section 7: an arbitrary finite prefix
    followed by a computation of [a]. *)
