(** The paper's theorems as runnable checks on concrete instances.

    Because the refinement checkers are sound but not complete, a failed
    premise yields {!Vacuous}; {!Refuted} would indicate a genuine
    counterexample (and a bug in either the checkers or the theory). *)

type verdict = Witnessed | Vacuous | Refuted

val pp_verdict : Format.formatter -> verdict -> unit

val theorem_0 :
  ?alpha_ca:int array ->
  ?alpha_ab:int array ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  b:'b Cr_semantics.Explicit.t ->
  unit ->
  verdict
(** [[C ⊑ A]] and A stabilizing to B => C stabilizing to B. *)

val theorem_1 :
  ?alpha_ca:int array ->
  ?alpha_ab:int array ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  b:'b Cr_semantics.Explicit.t ->
  unit ->
  verdict
(** [[C ⪯ A]] and A stabilizing to B => C stabilizing to B. *)

val theorem_3 :
  box:
    ('a Cr_semantics.Explicit.t ->
    'a Cr_semantics.Explicit.t ->
    'a Cr_semantics.Explicit.t) ->
  c:'a Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  w:'a Cr_semantics.Explicit.t ->
  unit ->
  verdict
(** Graybox wrapping: [[C ⪯ A]] and (A [] W) stabilizing to A =>
    (C [] W) stabilizing to A. *)

val theorem_5 :
  box:
    ('a Cr_semantics.Explicit.t ->
    'a Cr_semantics.Explicit.t ->
    'a Cr_semantics.Explicit.t) ->
  c:'a Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  w:'a Cr_semantics.Explicit.t ->
  w':'a Cr_semantics.Explicit.t ->
  unit ->
  verdict
(** Graybox with independently refined wrapper: [[C ⪯ A]], (A [] W)
    stabilizing to A and [[W' ⪯ W]] => (C [] W') stabilizing to A. *)

val strength_chain :
  ?alpha:int array ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  unit ->
  bool
(** everywhere => convergence => everywhere-eventually => init refinement,
    as decided by the checkers on this instance. *)
