(* The paper's theorems, packaged as runnable checks on concrete instances.
   Each function evaluates the premises and the conclusion with the
   decision procedures of {!Refine} and {!Stabilize} and reports whether
   the implication is witnessed (premises true => conclusion true).  A
   sound checker can reject a true premise, so [premises_hold = false]
   yields [Vacuous] rather than a counterexample. *)

type verdict =
  | Witnessed  (* premises hold and conclusion holds *)
  | Vacuous  (* some premise did not hold (or was not provable) *)
  | Refuted  (* premises hold but conclusion fails: a real counterexample *)

let pp_verdict fmt = function
  | Witnessed -> Fmt.pf fmt "witnessed"
  | Vacuous -> Fmt.pf fmt "vacuous"
  | Refuted -> Fmt.pf fmt "REFUTED"

let implication premises conclusion =
  if not premises then Vacuous else if conclusion then Witnessed else Refuted

(* Theorem 0: [C ⊑ A] and A stabilizing to B => C stabilizing to B. *)
let theorem_0 ?alpha_ca ?alpha_ab ~c ~a ~b () =
  let alpha_cb =
    match (alpha_ca, alpha_ab) with
    | Some ca, Some ab -> Some (Array.map (fun i -> ab.(i)) ca)
    | Some ca, None -> Some ca
    | None, Some ab -> Some ab
    | None, None -> None
  in
  let p1 = (Refine.everywhere_refinement ?alpha:alpha_ca ~c ~a ()).Refine.holds in
  let p2 = (Stabilize.stabilizing_to ?alpha:alpha_ab ~c:a ~a:b ()).Stabilize.holds in
  let concl =
    (Stabilize.stabilizing_to ?alpha:alpha_cb ~c ~a:b ()).Stabilize.holds
  in
  implication (p1 && p2) concl

(* Theorem 1: [C ⪯ A] and A stabilizing to B => C stabilizing to B. *)
let theorem_1 ?alpha_ca ?alpha_ab ~c ~a ~b () =
  let alpha_cb =
    match (alpha_ca, alpha_ab) with
    | Some ca, Some ab -> Some (Array.map (fun i -> ab.(i)) ca)
    | Some ca, None -> Some ca
    | None, Some ab -> Some ab
    | None, None -> None
  in
  let p1 =
    (Refine.convergence_refinement ?alpha:alpha_ca ~c ~a ()).Refine.holds
  in
  let p2 = (Stabilize.stabilizing_to ?alpha:alpha_ab ~c:a ~a:b ()).Stabilize.holds in
  let concl =
    (Stabilize.stabilizing_to ?alpha:alpha_cb ~c ~a:b ()).Stabilize.holds
  in
  implication (p1 && p2) concl

(* Theorem 3 (graybox): [C ⪯ A] and (A [] W) stabilizing to A
   => (C [] W) stabilizing to A.  All four systems over one Sigma. *)
let theorem_3 ~box ~c ~a ~w () =
  let p1 = (Refine.convergence_refinement ~c ~a ()).Refine.holds in
  let aw = box a w in
  let p2 = (Stabilize.stabilizing_to ~c:aw ~a ()).Stabilize.holds in
  let cw = box c w in
  let concl = (Stabilize.stabilizing_to ~c:cw ~a ()).Stabilize.holds in
  implication (p1 && p2) concl

(* Theorem 5 (graybox with refined wrapper): [C ⪯ A], (A [] W) stabilizing
   to A and [W' ⪯ W] => (C [] W') stabilizing to A. *)
let theorem_5 ~box ~c ~a ~w ~w' () =
  let p1 = (Refine.convergence_refinement ~c ~a ()).Refine.holds in
  let aw = box a w in
  let p2 = (Stabilize.stabilizing_to ~c:aw ~a ()).Stabilize.holds in
  let p3 = (Refine.convergence_refinement ~c:w' ~a:w ()).Refine.holds in
  let cw' = box c w' in
  let concl = (Stabilize.stabilizing_to ~c:cw' ~a ()).Stabilize.holds in
  implication (p1 && p2 && p3) concl

(* Relation strength (Section 2 and Section 7):
   everywhere => convergence => everywhere-eventually, and all imply
   init-refinement. *)
let strength_chain ?alpha ~c ~a () =
  let ev = (Refine.everywhere_refinement ?alpha ~c ~a ()).Refine.holds in
  let cv = (Refine.convergence_refinement ?alpha ~c ~a ()).Refine.holds in
  let ee = (Refine.everywhere_eventually_refinement ?alpha ~c ~a ()).Refine.holds in
  let init = (Refine.init_refinement ?alpha ~c ~a ()).Refine.holds in
  ((not ev) || cv) && ((not cv) || ee) && ((not ee) || init)

let _ = ignore (pp_verdict : Format.formatter -> verdict -> unit)
