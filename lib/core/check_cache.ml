(* Content-addressed memoization of checker verdicts.

   The same shape as [Cr_semantics.Compile_cache], one level up: keys
   fingerprint everything a refinement or stabilization verdict depends
   on — the transition structure and initial states of both systems, the
   abstraction table, the relation, fairness tables, stuttering options —
   and values are whole reports.  Experiment tables that re-check the
   same pair (the registry instantiates each system once per size but
   several tables ask the same question) share one verdict.

   Lookups are single-flight across domains: concurrent requesters of a
   missing key block while one domain checks, then count a hit — so the
   [check.cache.hits]/[check.cache.misses] counters are invariant under
   the CR_JOBS fan-out, like every other [Cr_obs] counter.

   A cached report is returned as-is, including its [cost] snapshot:
   the attached cost is that of the original (miss) run, which is the
   honest answer to "what did this verdict cost to establish".

   [CR_CHECK_CACHE=0] disables the cache (every call re-checks);
   [CR_CHECK_PARANOID=1] re-checks on every hit and asserts the cached
   report equals the fresh one (modulo [cost]). *)

open Cr_semantics
module Csr = Cr_kernel.Csr

let c_hits = Cr_obs.Obs.counter "check.cache.hits"
let c_misses = Cr_obs.Obs.counter "check.cache.misses"

(* Time spent blocked behind another domain's in-flight check.  Only
   populated under CR_JOBS > 1, so (unlike hit/miss totals) it is
   schedule-dependent — a distribution to eyeball, not an invariant. *)
let h_wait = Cr_obs.Obs.histogram "check.cache.wait_us"

type 'v slot = Inflight | Done of 'v

type 'v t = {
  m : Mutex.t;
  cv : Condition.t;
  tbl : (string, 'v slot) Hashtbl.t;
}

(* Registry of clear thunks, one per cache instance; instances are
   created at module-initialization time (single domain), so a plain ref
   suffices. *)
let clearers : (unit -> unit) list ref = ref []

(* Per-domain bypass, for benchmarks/tests that need a guaranteed fresh
   verdict without touching the process environment. *)
let bypassed : bool Domain.DLS.key = Domain.DLS.new_key (fun () -> false)

let bypass f =
  let saved = Domain.DLS.get bypassed in
  Domain.DLS.set bypassed true;
  Fun.protect ~finally:(fun () -> Domain.DLS.set bypassed saved) f

let enabled () =
  (not (Domain.DLS.get bypassed))
  &&
  match Sys.getenv_opt "CR_CHECK_CACHE" with
  | Some s when String.trim s = "0" -> false
  | _ -> true

let paranoid () =
  match Sys.getenv_opt "CR_CHECK_PARANOID" with
  | None | Some "" | Some "0" -> false
  | Some _ -> true

let length c = Mutex.protect c.m (fun () -> Hashtbl.length c.tbl)

let clear c =
  Mutex.protect c.m (fun () ->
      (* never drop an in-flight marker: its checker will publish into
         the (now smaller) table and broadcast as usual *)
      let keep =
        Hashtbl.fold
          (fun k v acc -> match v with Inflight -> (k, v) :: acc | Done _ -> acc)
          c.tbl []
      in
      Hashtbl.reset c.tbl;
      List.iter (fun (k, v) -> Hashtbl.add c.tbl k v) keep)

let create () =
  let c =
    { m = Mutex.create (); cv = Condition.create (); tbl = Hashtbl.create 64 }
  in
  clearers := (fun () -> clear c) :: !clearers;
  c

let clear_all () = List.iter (fun f -> f ()) !clearers

let find_or_check c ~key ~same ~check =
  if not (enabled ()) then check ()
  else begin
    Mutex.lock c.m;
    let wait_start = ref None in
    let rec lookup () =
      match Hashtbl.find_opt c.tbl key with
      | Some (Done v) -> `Hit v
      | Some Inflight ->
          if !wait_start = None then wait_start := Some (Cr_obs.Obs.now_us ());
          Condition.wait c.cv c.m;
          lookup ()
      | None ->
          Hashtbl.add c.tbl key Inflight;
          `Miss
    in
    let outcome = lookup () in
    Mutex.unlock c.m;
    (match !wait_start with
    | None -> ()
    | Some t0 ->
        let waited = Cr_obs.Obs.now_us () -. t0 in
        Cr_obs.Obs.observe h_wait (int_of_float waited);
        Cr_obs.Journal.emit "check.cache.wait"
          [ ("key", Cr_obs.Journal.S key); ("wait_us", Cr_obs.Journal.F waited) ]);
    match outcome with
    | `Hit v ->
        Cr_obs.Obs.incr c_hits;
        Cr_obs.Journal.emit "check.cache.hit" [ ("key", Cr_obs.Journal.S key) ];
        if paranoid () then begin
          let fresh = check () in
          if not (same v fresh) then
            invalid_arg
              (Printf.sprintf
                 "Check_cache: paranoid mode: cached verdict differs from a \
                  fresh check (key %s)"
                 key)
        end;
        v
    | `Miss -> (
        Cr_obs.Obs.incr c_misses;
        Cr_obs.Journal.emit "check.cache.miss" [ ("key", Cr_obs.Journal.S key) ];
        match check () with
        | v ->
            Mutex.protect c.m (fun () ->
                Hashtbl.replace c.tbl key (Done v);
                Condition.broadcast c.cv);
            v
        | exception e ->
            (* let waiters retry (and re-raise for themselves) *)
            Mutex.protect c.m (fun () ->
                Hashtbl.remove c.tbl key;
                Condition.broadcast c.cv);
            raise e)
  end

(* Key fingerprints: the same double-FNV rolling hash the
   guarded-command compile fingerprint uses (two independent 63-bit
   folds ≈ 126 bits), here folded over exact transition structure rather
   than a probe — an explicit system is already fully tabulated, so
   hashing all of it is cheap and leaves nothing unkeyed. *)
module Fp = struct
  let fnv1 = 0x100000001b3
  let fnv2 = 0x27d4eb2f165667c5

  type t = { mutable h1 : int; mutable h2 : int }

  let create () = { h1 = 0x3bf29ce484222325; h2 = 0x1e3779b97f4a7c15 }

  let add_int t x =
    t.h1 <- (t.h1 lxor x) * fnv1;
    t.h2 <- (t.h2 lxor x) * fnv2

  let add_string t s =
    add_int t (String.length s);
    String.iter (fun ch -> add_int t (Char.code ch)) s

  let add_int_array t a =
    add_int t (Array.length a);
    Array.iter (fun x -> add_int t x) a

  let add_option_int_array_array t = function
    | None -> add_int t (-1)
    | Some rows ->
        add_int t (Array.length rows);
        Array.iter (fun row -> add_int_array t row) rows

  (* Structure and initial states; the name is deliberately not folded
     (it goes into the readable part of the key instead). *)
  let add_explicit t e =
    add_int t (Explicit.num_states e);
    let g = Explicit.csr e in
    add_int_array t (Csr.row_ptr g);
    add_int_array t (Csr.targets g);
    add_int_array t (Explicit.initials e)

  let to_hex t = Printf.sprintf "%x.%x" t.h1 t.h2
end
