open Cr_semantics

(* Stabilization checker (exact for finite systems).

   "C is stabilizing to A" iff every computation of C has a suffix that is a
   suffix of some computation of A starting at an initial state of A.

   Let L = states of A reachable from I_A (the legitimate states).  A
   transition (i, j) of C is *bad* when its image leaves L or is not a
   transition of A; a terminal state of C is *bad* when its image is not a
   reachable terminal of A.  Let Good = states of C from which no bad
   transition source and no bad terminal is reachable.  Then C stabilizes
   to A iff (a) the subgraph of C outside Good is acyclic, and (b) no
   terminal of C lies outside Good.

   Soundness/completeness: once a computation enters Good it only takes
   A-transitions inside L forever (or halts at a reachable A-terminal), and
   any path inside L from a reachable state extends a prefix of A from an
   initial state, i.e. is a suffix of a computation of A.  Conversely a
   cycle outside Good yields a computation that never acquires a correct
   suffix, as does a bad terminal. *)

type report = {
  holds : bool;
  concrete : string;
  abstract : string;
  legitimate : int;  (* |L| *)
  good : int;  (* |Good| *)
  states : int;
  worst_case_recovery : int option;
      (* max transitions before entering Good, when stabilizing *)
  bad_cycle : int list option;  (* a witness cycle outside Good *)
  bad_terminal : int option;  (* a witness terminal outside Good *)
  good_mask : bool array;  (* per-state membership in the converged region *)
  cost : Cr_obs.Obs.snapshot option;
      (* counter movement of this check on the calling domain; [None]
         unless telemetry collection is on *)
}

let pp_report fmt r =
  if r.holds then
    Fmt.pf fmt
      "%s stabilizes to %s (|Sigma|=%d, |L|=%d, |Good|=%d, worst-case \
       recovery %s)"
      r.concrete r.abstract r.states r.legitimate r.good
      (match r.worst_case_recovery with
      | Some w -> Printf.sprintf "%d steps" w
      | None -> "finite but unbounded")
  else
    Fmt.pf fmt "%s does NOT stabilize to %s (%s)" r.concrete r.abstract
      (match (r.bad_cycle, r.bad_terminal) with
      | Some _, _ -> "divergent cycle outside Good"
      | _, Some _ -> "deadlock outside Good"
      | None, None -> "no witness?")

(* Find one cycle inside the masked region, as a witness. *)
let find_cycle_within succ mask =
  let n = Array.length succ in
  let restricted = Cr_checker.Scc.restrict succ mask in
  let scc = Cr_checker.Scc.compute restricted in
  let witness = ref None in
  for i = n - 1 downto 0 do
    if mask.(i) && Cr_checker.Scc.on_cycle scc i then witness := Some i
  done;
  match !witness with
  | None -> None
  | Some i ->
      (* walk within the SCC back to i *)
      let comp = scc.Cr_checker.Scc.component.(i) in
      let in_comp = Array.init n (fun j -> mask.(j) && scc.Cr_checker.Scc.component.(j) = comp) in
      let comp_succ = Cr_checker.Scc.restrict restricted in_comp in
      let next =
        Array.to_list comp_succ.(i) |> function [] -> None | j :: _ -> Some j
      in
      (match next with
      | None -> Some [ i ]
      | Some j -> (
          match Cr_checker.Paths.shortest_path ~succ:comp_succ ~src:j ~dst:i with
          | Some p -> Some (i :: p)
          | None -> Some [ i ]))

(* [?fair] switches divergence detection from "any cycle outside Good" to
   "any weakly-fair cycle outside Good" (see {!Fair}); the action tables
   must describe [c]'s transitions.

   [?stutter:`Allow] admits τ-steps in the converged region: a transition
   whose abstract image does not move is acceptable there (the suffix is
   compared modulo stuttering), except that a cycle consisting purely of
   stutters must sit at an [a]-terminal image — an infinite stutter
   normalizes to a finite suffix, which must be able to end a computation
   of [a].  Needed when a concrete system takes several micro-steps per
   abstract step (e.g. the bytecode machine of the intro example). *)
let c_runs = Cr_obs.Obs.counter "stabilize.runs"
let c_bad_seeds = Cr_obs.Obs.counter "stabilize.bad_seeds"

let stabilizing_to ?alpha ?fair ?(stutter = `Forbid) ~(c : _ Explicit.t)
    ~(a : _ Explicit.t) () =
  Cr_obs.Obs.span "stabilize.check" @@ fun () ->
  let cost_before =
    if Cr_obs.Obs.tracking () then Some (Cr_obs.Obs.domain_snapshot ())
    else None
  in
  let alpha =
    match alpha with
    | Some t -> t
    | None -> Abstraction.identity_table (Explicit.num_states c)
  in
  let legit = Cr_checker.Reach.reachable_from_initial a in
  let n = Explicit.num_states c in
  let bad_seed = Array.make n false in
  let stutter_ok =
    match stutter with `Allow -> true | `Forbid -> false
  in
  Cr_obs.Obs.span "stabilize.bad_seeds" (fun () ->
      Explicit.iter_edges c (fun i j ->
          let ai = alpha.(i) and aj = alpha.(j) in
          let fine =
            legit.(ai) && legit.(aj)
            && (Explicit.has_edge a ai aj || (stutter_ok && ai = aj))
          in
          if not fine then bad_seed.(i) <- true));
  (if stutter_ok then begin
     (* pure-stutter cycles must sit at an [a]-terminal image *)
     let stutter_succ = Array.make n [] in
     Explicit.iter_edges c (fun i j ->
         if alpha.(i) = alpha.(j) then stutter_succ.(i) <- j :: stutter_succ.(i));
     let sscc = Cr_checker.Scc.compute (Array.map Array.of_list stutter_succ) in
     for i = 0 to n - 1 do
       if Cr_checker.Scc.on_cycle sscc i
          && not (Explicit.is_terminal a alpha.(i))
       then bad_seed.(i) <- true
     done
   end);
  let bad_terminal = ref None in
  for i = 0 to n - 1 do
    if Explicit.is_terminal c i then
      let ai = alpha.(i) in
      if not (legit.(ai) && Explicit.is_terminal a ai) then begin
        bad_seed.(i) <- true;
        if !bad_terminal = None then bad_terminal := Some i
      end
  done;
  let succ_c = Cr_checker.Reach.of_explicit c in
  let seeds = Cr_checker.Reach.members bad_seed in
  if Cr_obs.Obs.tracking () then begin
    Cr_obs.Obs.incr c_runs;
    Cr_obs.Obs.add c_bad_seeds (List.length seeds)
  end;
  let reaches_bad =
    Cr_obs.Obs.span "stabilize.reach_bad" (fun () ->
        Cr_checker.Reach.backward_of_explicit c ~seeds)
  in
  let good = Array.map not reaches_bad in
  (* A C-terminal outside Good is itself a bad seed; find one if any. *)
  let terminal_outside =
    match !bad_terminal with
    | Some i -> Some i
    | None ->
        let w = ref None in
        for i = n - 1 downto 0 do
          if (not good.(i)) && Explicit.is_terminal c i then w := Some i
        done;
        !w
  in
  let cycle, depths =
    Cr_obs.Obs.span "stabilize.divergence_check" @@ fun () ->
    match fair with
    | None -> (
        (* The recovery-depth DFS doubles as the cycle test: it raises
           [Cyclic] iff the masked region has one, so the SCC-based
           witness search only runs on failure. *)
        match
          Cr_checker.Paths.longest_within ~succ:succ_c ~mask:reaches_bad
        with
        | depths -> (None, Some depths)
        | exception Cr_checker.Paths.Cyclic ->
            (find_cycle_within succ_c reaches_bad, None))
    | Some tables -> (
        match (Fair.analyze tables ~succ:succ_c ~mask:reaches_bad).Fair.sccs with
        | [] -> (None, None)
        | scc :: _ -> (Some scc, None))
  in
  let holds = cycle = None && terminal_outside = None in
  let worst =
    if holds then
      (* Under weak fairness the non-converged region may still contain
         (unfair) cycles; recovery is then finite but unbounded. *)
      match depths with
      | Some depths -> Some (Array.fold_left max 0 depths)
      | None -> (
          match
            Cr_checker.Paths.longest_within ~succ:succ_c ~mask:reaches_bad
          with
          | depths -> Some (Array.fold_left max 0 depths)
          | exception Cr_checker.Paths.Cyclic -> None)
    else None
  in
  {
    holds;
    concrete = Explicit.name c;
    abstract = Explicit.name a;
    legitimate = Cr_checker.Reach.count legit;
    good = Cr_checker.Reach.count good;
    states = n;
    worst_case_recovery = worst;
    bad_cycle = cycle;
    bad_terminal = terminal_outside;
    good_mask = good;
    cost =
      Option.map
        (fun before ->
          Cr_obs.Obs.diff ~before ~after:(Cr_obs.Obs.domain_snapshot ()))
        cost_before;
  }

(* Self-stabilization: A is stabilizing to A. *)
let self_stabilizing (a : _ Explicit.t) = stabilizing_to ~c:a ~a ()
