open Cr_semantics
module Par = Cr_kernel.Par

(* Stabilization checker (exact for finite systems).

   "C is stabilizing to A" iff every computation of C has a suffix that is a
   suffix of some computation of A starting at an initial state of A.

   Let L = states of A reachable from I_A (the legitimate states).  A
   transition (i, j) of C is *bad* when its image leaves L or is not a
   transition of A; a terminal state of C is *bad* when its image is not a
   reachable terminal of A.  Let Good = states of C from which no bad
   transition source and no bad terminal is reachable.  Then C stabilizes
   to A iff (a) the subgraph of C outside Good is acyclic, and (b) no
   terminal of C lies outside Good.

   Soundness/completeness: once a computation enters Good it only takes
   A-transitions inside L forever (or halts at a reachable A-terminal), and
   any path inside L from a reachable state extends a prefix of A from an
   initial state, i.e. is a suffix of a computation of A.  Conversely a
   cycle outside Good yields a computation that never acquires a correct
   suffix, as does a bad terminal.

   All sweeps run over the systems' flat CSR graphs and packed bitsets;
   the bad-seed sweep is domain-chunked under the CR_JOBS contract of
   [Par], and verdicts are memoized in a content-addressed
   [Check_cache]. *)

type report = {
  holds : bool;
  concrete : string;
  abstract : string;
  legitimate : int;  (* |L| *)
  good : int;  (* |Good| *)
  states : int;
  worst_case_recovery : int option;
      (* max transitions before entering Good, when stabilizing *)
  bad_cycle : int list option;  (* a witness cycle outside Good *)
  bad_terminal : int option;  (* a witness terminal outside Good *)
  good_mask : bool array;  (* per-state membership in the converged region *)
  cost : Cr_obs.Obs.snapshot option;
      (* counter movement of this check on the calling domain; [None]
         unless telemetry collection is on *)
}

let pp_report fmt r =
  if r.holds then
    Fmt.pf fmt
      "%s stabilizes to %s (|Sigma|=%d, |L|=%d, |Good|=%d, worst-case \
       recovery %s)"
      r.concrete r.abstract r.states r.legitimate r.good
      (match r.worst_case_recovery with
      | Some w -> Printf.sprintf "%d steps" w
      | None -> "finite but unbounded")
  else
    Fmt.pf fmt "%s does NOT stabilize to %s (%s)" r.concrete r.abstract
      (match (r.bad_cycle, r.bad_terminal) with
      | Some _, _ -> "divergent cycle outside Good"
      | _, Some _ -> "deadlock outside Good"
      | None, None -> "no witness?")

(* Find one cycle inside the masked region, as a witness. *)
let find_cycle_within (succ : Cr_kernel.Csr.t) (mask : Cr_kernel.Bitset.t) =
  let n = Cr_kernel.Csr.num_states succ in
  let restricted = Cr_kernel.Csr.restrict succ mask in
  let scc = Cr_checker.Scc.compute_csr restricted in
  let witness = ref None in
  for i = n - 1 downto 0 do
    if Cr_kernel.Bitset.get mask i && Cr_checker.Scc.on_cycle scc i then
      witness := Some i
  done;
  match !witness with
  | None -> None
  | Some i ->
      (* walk within the SCC back to i *)
      let comp = scc.Cr_checker.Scc.component.(i) in
      let in_comp = Cr_kernel.Bitset.create n in
      for j = 0 to n - 1 do
        if
          Cr_kernel.Bitset.get mask j
          && scc.Cr_checker.Scc.component.(j) = comp
        then Cr_kernel.Bitset.set in_comp j
      done;
      let comp_succ = Cr_kernel.Csr.restrict restricted in_comp in
      let next =
        if Cr_kernel.Csr.degree comp_succ i > 0 then
          Some (Cr_kernel.Csr.kth comp_succ i 0)
        else None
      in
      (match next with
      | None -> Some [ i ]
      | Some j -> (
          match
            Cr_checker.Paths.shortest_path_csr ~succ:comp_succ ~src:j ~dst:i
          with
          | Some p -> Some (i :: p)
          | None -> Some [ i ]))

(* [?fair] switches divergence detection from "any cycle outside Good" to
   "any weakly-fair cycle outside Good" (see {!Fair}); the action tables
   must describe [c]'s transitions.

   [?stutter:`Allow] admits τ-steps in the converged region: a transition
   whose abstract image does not move is acceptable there (the suffix is
   compared modulo stuttering), except that a cycle consisting purely of
   stutters must sit at an [a]-terminal image — an infinite stutter
   normalizes to a finite suffix, which must be able to end a computation
   of [a].  Needed when a concrete system takes several micro-steps per
   abstract step (e.g. the bytecode machine of the intro example). *)
let c_runs = Cr_obs.Obs.counter "stabilize.runs"
let c_bad_seeds = Cr_obs.Obs.counter "stabilize.bad_seeds"

(* Verdict cache (see [Check_cache]): keyed on both systems' exact
   structure, the abstraction, the fairness tables and the stutter
   mode. *)
let check_cache : report Check_cache.t = Check_cache.create ()

let same_report r1 r2 = { r1 with cost = None } = { r2 with cost = None }

let stabilizing_to ?alpha ?fair ?(stutter = `Forbid) ~(c : _ Explicit.t)
    ~(a : _ Explicit.t) () =
  let alpha =
    match alpha with
    | Some t -> t
    | None -> Abstraction.identity_table (Explicit.num_states c)
  in
  let stutter_ok =
    match stutter with `Allow -> true | `Forbid -> false
  in
  let check () =
    Cr_obs.Obs.span "stabilize.check" @@ fun () ->
    let cost_before =
      if Cr_obs.Obs.tracking () then
        Some (Cr_obs.Obs.domain_snapshot (), Cr_obs.Obs.gc_now ())
      else None
    in
    let legit = Cr_checker.Reach.reachable_from_initial a in
    let n = Explicit.num_states c in
    let succ_c = Explicit.csr c in
    let rp = Cr_kernel.Csr.row_ptr succ_c
    and tg = Cr_kernel.Csr.targets succ_c in
    let bad_seed = Cr_kernel.Bitset.create n in
    Cr_obs.Obs.span "stabilize.bad_seeds" (fun () ->
        (* Row range [lo, hi): marks only its own sources.  Chunk
           boundaries are word-aligned (multiples of 64), so parallel
           chunks write disjoint words of the bitset (see [Bitset]). *)
        let sweep lo hi =
          for i = lo to hi - 1 do
            let klo = rp.(i) and khi = rp.(i + 1) in
            if khi > klo then begin
              let ai = alpha.(i) in
              let k = ref klo in
              let bad = ref false in
              while (not !bad) && !k < khi do
                let aj = alpha.(tg.(!k)) in
                let fine =
                  Cr_kernel.Bitset.get legit ai
                  && Cr_kernel.Bitset.get legit aj
                  && (Explicit.has_edge a ai aj || (stutter_ok && ai = aj))
                in
                if not fine then bad := true;
                incr k
              done;
              if !bad then Cr_kernel.Bitset.set bad_seed i
            end
          done
        in
        let jobs = min (Par.current_jobs ()) (max n 1) in
        if jobs <= 1 then sweep 0 n
        else begin
          (* more chunks than domains (claimed from the pool's atomic
             item counter), each spanning whole 64-bit words *)
          let nwords = (n + 63) / 64 in
          let num_chunks = max 1 (min nwords (jobs * 8)) in
          let boundary d = min n (d * nwords / num_chunks * 64) in
          let chunks =
            Array.init num_chunks (fun d -> (boundary d, boundary (d + 1)))
          in
          ignore
            (Par.map_array (fun (lo, hi) -> sweep lo hi) chunks : unit array)
        end);
    (if stutter_ok then begin
       (* pure-stutter cycles must sit at an [a]-terminal image *)
       let srow_ptr = Array.make (n + 1) 0 in
       Explicit.iter_edges c (fun i j ->
           if alpha.(i) = alpha.(j) then
             srow_ptr.(i + 1) <- srow_ptr.(i + 1) + 1);
       for i = 0 to n - 1 do
         srow_ptr.(i + 1) <- srow_ptr.(i + 1) + srow_ptr.(i)
       done;
       let stargets = Array.make srow_ptr.(n) 0 in
       let fill = Array.copy srow_ptr in
       Explicit.iter_edges c (fun i j ->
           if alpha.(i) = alpha.(j) then begin
             stargets.(fill.(i)) <- j;
             fill.(i) <- fill.(i) + 1
           end);
       let sscc =
         Cr_checker.Scc.compute_csr
           (Cr_kernel.Csr.unsafe_of_raw ~row_ptr:srow_ptr ~targets:stargets)
       in
       for i = 0 to n - 1 do
         if Cr_checker.Scc.on_cycle sscc i
            && not (Explicit.is_terminal a alpha.(i))
         then Cr_kernel.Bitset.set bad_seed i
       done
     end);
    let bad_terminal = ref None in
    for i = 0 to n - 1 do
      if Explicit.is_terminal c i then
        let ai = alpha.(i) in
        if
          not (Cr_kernel.Bitset.get legit ai && Explicit.is_terminal a ai)
        then begin
          Cr_kernel.Bitset.set bad_seed i;
          if !bad_terminal = None then bad_terminal := Some i
        end
    done;
    let seeds = Cr_kernel.Bitset.members bad_seed in
    if Cr_obs.Obs.tracking () then begin
      Cr_obs.Obs.incr c_runs;
      Cr_obs.Obs.add c_bad_seeds (List.length seeds)
    end;
    let reaches_bad =
      Cr_obs.Obs.span "stabilize.reach_bad" (fun () ->
          Cr_checker.Reach.backward_of_explicit c ~seeds)
    in
    let good = Cr_kernel.Bitset.complement reaches_bad in
    (* A C-terminal outside Good is itself a bad seed; find one if any. *)
    let terminal_outside =
      match !bad_terminal with
      | Some i -> Some i
      | None ->
          let w = ref None in
          for i = n - 1 downto 0 do
            if Cr_kernel.Bitset.get reaches_bad i && Explicit.is_terminal c i
            then w := Some i
          done;
          !w
    in
    let cycle, depths =
      Cr_obs.Obs.span "stabilize.divergence_check" @@ fun () ->
      match fair with
      | None -> (
          (* The recovery-depth DFS doubles as the cycle test: it raises
             [Cyclic] iff the masked region has one, so the SCC-based
             witness search only runs on failure. *)
          match
            Cr_checker.Paths.longest_within_csr ~succ:succ_c
              ~mask:reaches_bad
          with
          | depths -> (None, Some depths)
          | exception Cr_checker.Paths.Cyclic ->
              (find_cycle_within succ_c reaches_bad, None))
      | Some tables -> (
          match
            (Fair.analyze_csr tables ~succ:succ_c ~mask:reaches_bad)
              .Fair.sccs
          with
          | [] -> (None, None)
          | scc :: _ -> (Some scc, None))
    in
    let holds = cycle = None && terminal_outside = None in
    let worst =
      if holds then
        (* Under weak fairness the non-converged region may still contain
           (unfair) cycles; recovery is then finite but unbounded. *)
        match depths with
        | Some depths -> Some (Array.fold_left max 0 depths)
        | None -> (
            match
              Cr_checker.Paths.longest_within_csr ~succ:succ_c
                ~mask:reaches_bad
            with
            | depths -> Some (Array.fold_left max 0 depths)
            | exception Cr_checker.Paths.Cyclic -> None)
      else None
    in
    {
      holds;
      concrete = Explicit.name c;
      abstract = Explicit.name a;
      legitimate = Cr_kernel.Bitset.count legit;
      good = Cr_kernel.Bitset.count good;
      states = n;
      worst_case_recovery = worst;
      bad_cycle = cycle;
      bad_terminal = terminal_outside;
      good_mask = Cr_kernel.Bitset.to_bool_array good;
      cost =
        Option.map
          (fun (before, gc_before) ->
            (* counter movement plus gc.* allocation delta, both
               domain-local (see [Refine.with_cost]) *)
            Cr_obs.Obs.merge_snapshots
              (Cr_obs.Obs.diff ~before ~after:(Cr_obs.Obs.domain_snapshot ()))
              (Cr_obs.Obs.gc_cost_entries
                 (Cr_obs.Obs.gc_delta ~before:gc_before
                    ~after:(Cr_obs.Obs.gc_now ()))))
          cost_before;
    }
  in
  let computed = ref false in
  let check () =
    computed := true;
    check ()
  in
  let r =
    if not (Check_cache.enabled ()) then check ()
    else begin
      let fp = Check_cache.Fp.create () in
      Check_cache.Fp.add_explicit fp c;
      Check_cache.Fp.add_explicit fp a;
      Check_cache.Fp.add_int_array fp alpha;
      Check_cache.Fp.add_option_int_array_array fp fair;
      Check_cache.Fp.add_int fp (if stutter_ok then 1 else 0);
      let key =
        Printf.sprintf "stab|%s|%s|%s" (Explicit.name c) (Explicit.name a)
          (Check_cache.Fp.to_hex fp)
      in
      Check_cache.find_or_check check_cache ~key ~same:same_report ~check
    end
  in
  (if Cr_obs.Journal.enabled () then begin
     let open Cr_obs.Journal in
     let fields =
       [
         ("concrete", S r.concrete);
         ("abstract", S r.abstract);
         ("holds", B r.holds);
         ("states", I r.states);
         ("legitimate", I r.legitimate);
         ("good", I r.good);
         ("cached", B (not !computed));
       ]
     in
     let fields =
       match r.worst_case_recovery with
       | Some w -> fields @ [ ("worst_case_recovery", I w) ]
       | None -> fields
     in
     let fields =
       match r.cost with
       | Some snap -> fields @ [ ("cost", Snap snap) ]
       | None -> fields
     in
     emit "stabilize.verdict" fields
   end);
  r

(* Self-stabilization: A is stabilizing to A. *)
let self_stabilizing (a : _ Explicit.t) = stabilizing_to ~c:a ~a ()
