open Cr_semantics

(* Refinement checkers (Section 2 of the paper), decided on explicit
   finite-state systems via edge classification.

   Every transition (s, s') of the concrete system C is classified against
   the abstract system A through the (tabulated) abstraction alpha:

   - Stutter      : alpha s = alpha s'   (a "τ step"; the image does not move)
   - Exact        : (alpha s, alpha s') is a transition of A
   - Compression k: a shortest A-path of length k >= 2 joins the images
                    (C drops k-1 interior states of A's computation)
   - Unmatched    : no A-path joins the images.

   [C ⊑ A]_init  — reachable-from-initial edges all Exact, initial images
                   initial, terminal images terminal.
   [C ⊑ A]       — all edges Exact, all terminals match, initial images
                   initial.
   [C ⪯ A]       — init-refinement holds; no edge Unmatched; no Compression
                   edge on a cycle of C (so omissions are finite); no cycle
                   of C made solely of Stutter edges unless its image is
                   A-terminal; terminal images terminal.
   everywhere-eventually — init-refinement holds; non-Exact edges are not
                   on cycles; terminal images terminal.

   The checks are sound: a "holds" verdict implies the trace-theoretic
   definition (matching A-paths concatenate into a computation of A, and
   maximality is preserved by the terminal conditions). *)

type edge_class = Stutter | Exact | Compression of int

type failure =
  | Initial_not_initial of int
      (* concrete initial state whose image is not initial in A *)
  | Init_edge_not_exact of int * int
      (* reachable-from-init edge that is not an A-transition *)
  | Edge_unmatched of int * int  (* no A-path between the images *)
  | Compression_on_cycle of int * int
  | Stutter_cycle of int  (* a representative state of a stutter-only cycle *)
  | Terminal_not_terminal of int  (* C-terminal whose image is not A-terminal *)
  | Non_exact_on_cycle of int * int  (* everywhere-eventually violation *)

let pp_failure c a fmt = function
  | Initial_not_initial i ->
      Fmt.pf fmt "initial state %s maps outside the initial states of %s"
        (Explicit.state_to_string c i) (Explicit.name a)
  | Init_edge_not_exact (i, j) ->
      Fmt.pf fmt
        "reachable transition %s -> %s is not a transition of %s"
        (Explicit.state_to_string c i)
        (Explicit.state_to_string c j)
        (Explicit.name a)
  | Edge_unmatched (i, j) ->
      Fmt.pf fmt "transition %s -> %s matches no path of %s"
        (Explicit.state_to_string c i)
        (Explicit.state_to_string c j)
        (Explicit.name a)
  | Compression_on_cycle (i, j) ->
      Fmt.pf fmt
        "compression edge %s -> %s lies on a cycle (omissions unbounded)"
        (Explicit.state_to_string c i)
        (Explicit.state_to_string c j)
  | Stutter_cycle i ->
      Fmt.pf fmt
        "stutter-only cycle through %s whose image cannot end a computation \
         of %s"
        (Explicit.state_to_string c i)
        (Explicit.name a)
  | Terminal_not_terminal i ->
      Fmt.pf fmt "terminal state %s maps to a non-terminal state of %s"
        (Explicit.state_to_string c i)
        (Explicit.name a)
  | Non_exact_on_cycle (i, j) ->
      Fmt.pf fmt "non-exact edge %s -> %s lies on a cycle"
        (Explicit.state_to_string c i)
        (Explicit.state_to_string c j)

type stats = {
  edges : int;
  exact : int;
  stutter : int;
  compressions : int;
  max_dropped : int;  (* largest number of A-states dropped by one edge *)
}

let empty_stats =
  { edges = 0; exact = 0; stutter = 0; compressions = 0; max_dropped = 0 }

type report = {
  holds : bool;
  stats : stats;
  failures : failure list;
  concrete : string;
  abstract : string;
  relation : string;
  cost : Cr_obs.Obs.snapshot option;
      (* counter movement of this check on the calling domain; [None]
         unless telemetry collection is on *)
}

let pp_report fmt r =
  if r.holds then
    Fmt.pf fmt "[%s %s %s] HOLDS (%d edges: %d exact, %d stutter, %d \
                compressions, max drop %d)"
      r.concrete r.relation r.abstract r.stats.edges r.stats.exact
      r.stats.stutter r.stats.compressions r.stats.max_dropped
  else
    Fmt.pf fmt "[%s %s %s] FAILS (%d failure(s))" r.concrete r.relation
      r.abstract (List.length r.failures)

(* The concrete state a failure is anchored at (the source of the failing
   edge, or the failing state itself). *)
let failure_state = function
  | Initial_not_initial i
  | Terminal_not_terminal i
  | Stutter_cycle i
  | Init_edge_not_exact (i, _)
  | Edge_unmatched (i, _)
  | Compression_on_cycle (i, _)
  | Non_exact_on_cycle (i, _) ->
      i

let max_reported_failures = 10

(* Classified edges of the concrete system, in [Explicit.iter_edges]
   order, as flat parallel arrays (CSR-style): edge [k] is
   [srcs.(k) -> dsts.(k)] with class [cls.(k)]. *)
type classified = {
  srcs : int array;
  dsts : int array;
  cls : edge_class option array;
}

let iter_classified t f =
  for k = 0 to Array.length t.srcs - 1 do
    f t.srcs.(k) t.dsts.(k) t.cls.(k)
  done

(* Edge-class telemetry, published once per classify (the sweep itself
   carries no instrumentation beyond the oracle's own counters). *)
let c_classify_runs = Cr_obs.Obs.counter "refine.classify.runs"
let c_edges_exact = Cr_obs.Obs.counter "refine.edges.exact"
let c_edges_stutter = Cr_obs.Obs.counter "refine.edges.stutter"
let c_edges_compression = Cr_obs.Obs.counter "refine.edges.compression"
let c_edges_unmatched = Cr_obs.Obs.counter "refine.edges.unmatched"
let c_max_dropped = Cr_obs.Obs.counter ~kind:Cr_obs.Obs.Max "refine.max_dropped"

(* Classify each edge of [c] against [a] through [alpha].  Shortest
   abstract paths are answered by a per-source memoized BFS oracle, so
   repeated compression queries from the same image cost one BFS total. *)
let classify ~alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t) :
    classified * stats =
  Cr_obs.Obs.span "refine.classify" @@ fun () ->
  let succ_a = Cr_checker.Reach.of_explicit a in
  let oracle = Cr_checker.Paths.make_oracle ~succ:succ_a in
  let m = Explicit.num_transitions c in
  let srcs = Array.make m 0 and dsts = Array.make m 0 in
  let cls = Array.make m None in
  let exact = ref 0 and stutter = ref 0 in
  let compressions = ref 0 and max_dropped = ref 0 in
  let k = ref 0 in
  let some_stutter = Some Stutter and some_exact = Some Exact in
  let n = Explicit.num_states c in
  (* Row-major sweep: the source image and its abstract successor row are
     fixed per row, so they are hoisted out of the inner edge loop. *)
  for i = 0 to n - 1 do
    let row = Explicit.successors c i in
    if Array.length row > 0 then begin
      let ai = alpha.(i) in
      let arow = succ_a.(ai) in
      Array.iter
        (fun j ->
          let aj = alpha.(j) in
          let cl =
            if ai = aj then some_stutter
            else begin
              (* binary search in the sorted abstract successor row *)
              let lo = ref 0 and hi = ref (Array.length arow) in
              while !hi - !lo > 1 do
                let mid = (!lo + !hi) / 2 in
                if arow.(mid) <= aj then lo := mid else hi := mid
              done;
              if !hi > !lo && arow.(!lo) = aj then some_exact
              else
                match
                  Cr_checker.Paths.shortest_nonempty_memo oracle ~src:ai
                    ~dst:aj
                with
                | Some len when len >= 2 -> Some (Compression len)
                | Some _ | None -> None
            end
          in
          (match cl with
          | Some Stutter -> incr stutter
          | Some Exact -> incr exact
          | Some (Compression len) ->
              incr compressions;
              if len - 1 > !max_dropped then max_dropped := len - 1
          | None -> ());
          srcs.(!k) <- i;
          dsts.(!k) <- j;
          cls.(!k) <- cl;
          incr k)
        row
    end
  done;
  if Cr_obs.Obs.tracking () then begin
    Cr_obs.Obs.incr c_classify_runs;
    Cr_obs.Obs.add c_edges_exact !exact;
    Cr_obs.Obs.add c_edges_stutter !stutter;
    Cr_obs.Obs.add c_edges_compression !compressions;
    Cr_obs.Obs.add c_edges_unmatched
      (m - !exact - !stutter - !compressions);
    Cr_obs.Obs.record_max c_max_dropped !max_dropped
  end;
  ( { srcs; dsts; cls },
    {
      edges = m;
      exact = !exact;
      stutter = !stutter;
      compressions = !compressions;
      max_dropped = !max_dropped;
    } )

(* Adjacency of the stutter edges alone, built by count-then-fill (rows
   inherit the sorted order of the classified edges). *)
let stutter_adjacency n (classified : classified) =
  let deg = Array.make n 0 in
  iter_classified classified (fun i _ cls ->
      match cls with Some Stutter -> deg.(i) <- deg.(i) + 1 | _ -> ());
  let rows = Array.init n (fun i -> Array.make deg.(i) 0) in
  let fill = Array.make n 0 in
  iter_classified classified (fun i j cls ->
      match cls with
      | Some Stutter ->
          rows.(i).(fill.(i)) <- j;
          fill.(i) <- fill.(i) + 1
      | _ -> ());
  rows

let initial_failures ~alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t) =
  Array.to_list (Explicit.initials c)
  |> List.filter_map (fun i ->
         if Explicit.is_initial a alpha.(i) then None
         else Some (Initial_not_initial i))

let terminal_failures ~alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t)
    ~(restrict : bool array option) =
  let n = Explicit.num_states c in
  let consider i =
    match restrict with None -> true | Some mask -> mask.(i)
  in
  let acc = ref [] in
  for i = 0 to n - 1 do
    if consider i && Explicit.is_terminal c i
       && not (Explicit.is_terminal a alpha.(i))
    then acc := Terminal_not_terminal i :: !acc
  done;
  List.rev !acc

let make_report ~relation ~c ~a ~stats failures =
  {
    holds = failures = [];
    stats;
    failures =
      (let rec take n = function
         | [] -> []
         | _ when n = 0 -> []
         | x :: rest -> x :: take (n - 1) rest
       in
       take max_reported_failures failures);
    concrete = Explicit.name c;
    abstract = Explicit.name a;
    relation;
    cost = None;
  }

(* Run one checker under a named span and attach the movement of this
   domain's counters to the verdict.  The delta is domain-local, so it is
   deterministic even when sibling checks run on other domains. *)
let with_cost span_name f =
  Cr_obs.Obs.span span_name @@ fun () ->
  if not (Cr_obs.Obs.tracking ()) then f ()
  else begin
    let before = Cr_obs.Obs.domain_snapshot () in
    let report = f () in
    let after = Cr_obs.Obs.domain_snapshot () in
    { report with cost = Some (Cr_obs.Obs.diff ~before ~after) }
  end

(* [C ⊑ A]_init *)
let init_refinement ?alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t) () =
  with_cost "refine.init" @@ fun () ->
  let alpha =
    match alpha with
    | Some t -> t
    | None -> Abstraction.identity_table (Explicit.num_states c)
  in
  let reach = Cr_checker.Reach.reachable_from_initial c in
  let failures = ref (initial_failures ~alpha ~c ~a) in
  let stats = ref empty_stats in
  Explicit.iter_edges c (fun i j ->
      if reach.(i) then begin
        stats := { !stats with edges = !stats.edges + 1 };
        if Explicit.has_edge a alpha.(i) alpha.(j) then
          stats := { !stats with exact = !stats.exact + 1 }
        else failures := Init_edge_not_exact (i, j) :: !failures
      end);
  let failures =
    !failures @ terminal_failures ~alpha ~c ~a ~restrict:(Some reach)
  in
  make_report ~relation:"⊑_init" ~c ~a ~stats:!stats failures

(* [C ⊑ A] — everywhere refinement *)
let everywhere_refinement ?alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t) () =
  with_cost "refine.everywhere" @@ fun () ->
  let alpha =
    match alpha with
    | Some t -> t
    | None -> Abstraction.identity_table (Explicit.num_states c)
  in
  let failures = ref (initial_failures ~alpha ~c ~a) in
  let stats = ref empty_stats in
  Explicit.iter_edges c (fun i j ->
      stats := { !stats with edges = !stats.edges + 1 };
      if Explicit.has_edge a alpha.(i) alpha.(j) then
        stats := { !stats with exact = !stats.exact + 1 }
      else failures := Init_edge_not_exact (i, j) :: !failures);
  let failures = !failures @ terminal_failures ~alpha ~c ~a ~restrict:None in
  make_report ~relation:"⊑" ~c ~a ~stats:!stats failures

(* [C ⪯ A] — convergence refinement.  With [?fair], "on a cycle" means
   "on a weakly-fair cycle" (computations are restricted to weakly fair
   ones; see {!Fair}). *)
let convergence_refinement ?alpha ?fair ~(c : _ Explicit.t)
    ~(a : _ Explicit.t) () =
  with_cost "refine.convergence" @@ fun () ->
  let alpha =
    match alpha with
    | Some t -> t
    | None -> Abstraction.identity_table (Explicit.num_states c)
  in
  let classified, stats = classify ~alpha ~c ~a in
  let n = Explicit.num_states c in
  let succ_c = Cr_checker.Reach.of_explicit c in
  let all_mask = Array.make n true in
  let edge_on_cycle =
    match fair with
    | None ->
        (* computed on demand: only compression edges query it *)
        let scc = lazy (Cr_checker.Scc.compute succ_c) in
        fun i j -> Cr_checker.Scc.edge_on_cycle (Lazy.force scc) i j
    | Some tables ->
        let analysis = Fair.analyze tables ~succ:succ_c ~mask:all_mask in
        fun i j -> Fair.edge_on_fair_cycle analysis i j
  in
  let failures = ref (initial_failures ~alpha ~c ~a) in
  (* 1. Init refinement: reachable edges must be Exact. *)
  Cr_obs.Obs.span "refine.init_check" (fun () ->
      let reach = Cr_checker.Reach.reachable_from_initial c in
      iter_classified classified (fun i j cls ->
          match cls with
          | Some Exact -> ()
          | _ ->
              if reach.(i) then
                failures := Init_edge_not_exact (i, j) :: !failures));
  (* 2. Global matching + finiteness of omissions. *)
  Cr_obs.Obs.span "refine.cycle_check" (fun () ->
      iter_classified classified (fun i j cls ->
          match cls with
          | None -> failures := Edge_unmatched (i, j) :: !failures
          | Some (Compression _) when edge_on_cycle i j ->
              failures := Compression_on_cycle (i, j) :: !failures
          | Some _ -> ()));
  (* 3. Stutter-only cycles: an infinite computation of C whose image is
     eventually constant normalizes to a finite sequence, so its (constant)
     image must be able to end a computation of A, i.e. be A-terminal.
     A system with no stutter edge has no such cycle — skip the pass. *)
  (if stats.stutter > 0 then
     Cr_obs.Obs.span "refine.stutter_check" @@ fun () ->
     let stutter_adj = stutter_adjacency n classified in
     let on_stutter_cycle =
       match fair with
       | None ->
           let stutter_scc = Cr_checker.Scc.compute stutter_adj in
           fun i -> Cr_checker.Scc.on_cycle stutter_scc i
       | Some tables ->
           let analysis = Fair.analyze tables ~succ:stutter_adj ~mask:all_mask in
           fun i -> analysis.Fair.fair.(i)
     in
     for i = 0 to n - 1 do
       if on_stutter_cycle i && not (Explicit.is_terminal a alpha.(i)) then
         failures := Stutter_cycle i :: !failures
     done);
  (* 4. Terminal matching (everywhere). *)
  let failures = !failures @ terminal_failures ~alpha ~c ~a ~restrict:None in
  make_report ~relation:"⪯" ~c ~a ~stats failures

(* Everywhere-eventually refinement (Section 7): arbitrary finite prefix
   followed by a computation of A.  Unlike convergence refinement, the
   prefix is unconstrained (no per-edge matching against A), so only
   edges that can recur forever matter: any non-Exact non-Stutter edge on
   a cycle defeats the eventual suffix, as does an unbounded stutter with
   a non-terminal image.  Init refinement is still required. *)
let everywhere_eventually_refinement ?alpha ?fair ~(c : _ Explicit.t)
    ~(a : _ Explicit.t) () =
  with_cost "refine.everywhere_eventually" @@ fun () ->
  let alpha =
    match alpha with
    | Some t -> t
    | None -> Abstraction.identity_table (Explicit.num_states c)
  in
  let classified, stats = classify ~alpha ~c ~a in
  let n = Explicit.num_states c in
  let succ_c = Cr_checker.Reach.of_explicit c in
  let all_mask = Array.make n true in
  let edge_on_cycle =
    match fair with
    | None ->
        (* computed on demand: only non-exact, non-stutter edges query it *)
        let scc = lazy (Cr_checker.Scc.compute succ_c) in
        fun i j -> Cr_checker.Scc.edge_on_cycle (Lazy.force scc) i j
    | Some tables ->
        let analysis = Fair.analyze tables ~succ:succ_c ~mask:all_mask in
        fun i j -> Fair.edge_on_fair_cycle analysis i j
  in
  let failures = ref (initial_failures ~alpha ~c ~a) in
  Cr_obs.Obs.span "refine.cycle_check" (fun () ->
      let reach = Cr_checker.Reach.reachable_from_initial c in
      iter_classified classified (fun i j cls ->
          let is_exact = match cls with Some Exact -> true | _ -> false in
          if reach.(i) && not is_exact then
            failures := Init_edge_not_exact (i, j) :: !failures
          else
            match cls with
            | Some Exact | Some Stutter -> ()
            | Some (Compression _) | None ->
                if edge_on_cycle i j then
                  failures := Non_exact_on_cycle (i, j) :: !failures));
  (if stats.stutter > 0 then
     Cr_obs.Obs.span "refine.stutter_check" @@ fun () ->
     let stutter_adj = stutter_adjacency n classified in
     let on_stutter_cycle =
       match fair with
       | None ->
           let stutter_scc = Cr_checker.Scc.compute stutter_adj in
           fun i -> Cr_checker.Scc.on_cycle stutter_scc i
       | Some tables ->
           let analysis = Fair.analyze tables ~succ:stutter_adj ~mask:all_mask in
           fun i -> analysis.Fair.fair.(i)
     in
     for i = 0 to n - 1 do
       if on_stutter_cycle i && not (Explicit.is_terminal a alpha.(i)) then
         failures := Stutter_cycle i :: !failures
     done);
  let failures = !failures @ terminal_failures ~alpha ~c ~a ~restrict:None in
  make_report ~relation:"⊑_ee" ~c ~a ~stats failures
