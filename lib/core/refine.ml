open Cr_semantics
module Par = Cr_kernel.Par

(* Refinement checkers (Section 2 of the paper), decided on explicit
   finite-state systems via edge classification.

   Every transition (s, s') of the concrete system C is classified against
   the abstract system A through the (tabulated) abstraction alpha:

   - Stutter      : alpha s = alpha s'   (a "τ step"; the image does not move)
   - Exact        : (alpha s, alpha s') is a transition of A
   - Compression k: a shortest A-path of length k >= 2 joins the images
                    (C drops k-1 interior states of A's computation)
   - Unmatched    : no A-path joins the images.

   [C ⊑ A]_init  — reachable-from-initial edges all Exact, initial images
                   initial, terminal images terminal.
   [C ⊑ A]       — all edges Exact, all terminals match, initial images
                   initial.
   [C ⪯ A]       — init-refinement holds; no edge Unmatched; no Compression
                   edge on a cycle of C (so omissions are finite); no cycle
                   of C made solely of Stutter edges unless its image is
                   A-terminal; terminal images terminal.
   everywhere-eventually — init-refinement holds; non-Exact edges are not
                   on cycles; terminal images terminal.

   The checks are sound: a "holds" verdict implies the trace-theoretic
   definition (matching A-paths concatenate into a computation of A, and
   maximality is preserved by the terminal conditions).

   All sweeps run over the systems' flat CSR graphs (zero-copy views);
   the classification sweep is domain-chunked under the CR_JOBS contract
   of [Par], and every verdict is memoized in a content-addressed
   [Check_cache]. *)

type edge_class = Stutter | Exact | Compression of int

type failure =
  | Initial_not_initial of int
      (* concrete initial state whose image is not initial in A *)
  | Init_edge_not_exact of int * int
      (* reachable-from-init edge that is not an A-transition *)
  | Edge_unmatched of int * int  (* no A-path between the images *)
  | Compression_on_cycle of int * int
  | Stutter_cycle of int  (* a representative state of a stutter-only cycle *)
  | Terminal_not_terminal of int  (* C-terminal whose image is not A-terminal *)
  | Non_exact_on_cycle of int * int  (* everywhere-eventually violation *)

let pp_failure c a fmt = function
  | Initial_not_initial i ->
      Fmt.pf fmt "initial state %s maps outside the initial states of %s"
        (Explicit.state_to_string c i) (Explicit.name a)
  | Init_edge_not_exact (i, j) ->
      Fmt.pf fmt
        "reachable transition %s -> %s is not a transition of %s"
        (Explicit.state_to_string c i)
        (Explicit.state_to_string c j)
        (Explicit.name a)
  | Edge_unmatched (i, j) ->
      Fmt.pf fmt "transition %s -> %s matches no path of %s"
        (Explicit.state_to_string c i)
        (Explicit.state_to_string c j)
        (Explicit.name a)
  | Compression_on_cycle (i, j) ->
      Fmt.pf fmt
        "compression edge %s -> %s lies on a cycle (omissions unbounded)"
        (Explicit.state_to_string c i)
        (Explicit.state_to_string c j)
  | Stutter_cycle i ->
      Fmt.pf fmt
        "stutter-only cycle through %s whose image cannot end a computation \
         of %s"
        (Explicit.state_to_string c i)
        (Explicit.name a)
  | Terminal_not_terminal i ->
      Fmt.pf fmt "terminal state %s maps to a non-terminal state of %s"
        (Explicit.state_to_string c i)
        (Explicit.name a)
  | Non_exact_on_cycle (i, j) ->
      Fmt.pf fmt "non-exact edge %s -> %s lies on a cycle"
        (Explicit.state_to_string c i)
        (Explicit.state_to_string c j)

type stats = {
  edges : int;
  exact : int;
  stutter : int;
  compressions : int;
  max_dropped : int;  (* largest number of A-states dropped by one edge *)
}

let empty_stats =
  { edges = 0; exact = 0; stutter = 0; compressions = 0; max_dropped = 0 }

type report = {
  holds : bool;
  stats : stats;
  failures : failure list;
  total_failures : int;
      (* number of failures found, before [failures] was truncated *)
  concrete : string;
  abstract : string;
  relation : string;
  cost : Cr_obs.Obs.snapshot option;
      (* counter movement of this check on the calling domain; [None]
         unless telemetry collection is on *)
}

let pp_report fmt r =
  if r.holds then
    Fmt.pf fmt "[%s %s %s] HOLDS (%d edges: %d exact, %d stutter, %d \
                compressions, max drop %d)"
      r.concrete r.relation r.abstract r.stats.edges r.stats.exact
      r.stats.stutter r.stats.compressions r.stats.max_dropped
  else if List.length r.failures < r.total_failures then
    Fmt.pf fmt "[%s %s %s] FAILS (showing %d of %d failure(s))" r.concrete
      r.relation r.abstract (List.length r.failures) r.total_failures
  else
    Fmt.pf fmt "[%s %s %s] FAILS (%d failure(s))" r.concrete r.relation
      r.abstract r.total_failures

(* The concrete state a failure is anchored at (the source of the failing
   edge, or the failing state itself). *)
let failure_state = function
  | Initial_not_initial i
  | Terminal_not_terminal i
  | Stutter_cycle i
  | Init_edge_not_exact (i, _)
  | Edge_unmatched (i, _)
  | Compression_on_cycle (i, _)
  | Non_exact_on_cycle (i, _) ->
      i

let max_reported_failures = 10

(* Classified edges of the concrete system, in [Explicit.iter_edges]
   order, as flat parallel arrays (CSR-style): edge [k] is
   [srcs.(k) -> dsts.(k)] with class [cls.(k)].  The slot of every edge
   is its absolute CSR offset, which is what lets the chunked sweep fill
   disjoint slices and still merge to a job-count-independent result. *)
type classified = {
  srcs : int array;
  dsts : int array;
  cls : edge_class option array;
}

let iter_classified t f =
  for k = 0 to Array.length t.srcs - 1 do
    f t.srcs.(k) t.dsts.(k) t.cls.(k)
  done

(* Edge-class telemetry, published once per classify from the merged
   chunk totals (the sweep itself carries no instrumentation beyond the
   oracle's own counters). *)
let c_classify_runs = Cr_obs.Obs.counter "refine.classify.runs"

(* Wall time of each chunk of the classification sweep — the
   load-balance view of the CR_JOBS fan-out (one observation per chunk;
   the chunk *count* therefore varies with the job count even though the
   classified output does not). *)
let h_chunk = Cr_obs.Obs.histogram "refine.classify.chunk_us"
let c_edges_exact = Cr_obs.Obs.counter "refine.edges.exact"
let c_edges_stutter = Cr_obs.Obs.counter "refine.edges.stutter"
let c_edges_compression = Cr_obs.Obs.counter "refine.edges.compression"
let c_edges_unmatched = Cr_obs.Obs.counter "refine.edges.unmatched"
let c_max_dropped = Cr_obs.Obs.counter ~kind:Cr_obs.Obs.Max "refine.max_dropped"

(* Classify each edge of [c] against [a] through [alpha].

   The row-major sweep is split into contiguous state chunks — one
   sweep for CR_JOBS = 1 (the plain sequential path), many more chunks
   than domains otherwise, claimed from [Par]'s atomic item counter so
   edge-balanced stragglers stop serializing the fan-out.  Chunk
   boundaries are edge-balanced (binary search of the cumulative edge
   count in [row_ptr]), every edge is written at its absolute CSR offset
   into preallocated arrays, and per-chunk tallies are merged in chunk
   order — so the classified arrays and stats are byte-identical for
   every job count.

   Shortest abstract paths are answered by a per-source memoized BFS
   oracle.  The parallel path runs in two phases sharing ONE oracle:
   phase A classifies the stutter/exact edges and records the pending
   (path-query) edges per chunk; the oracle is then preseeded with the
   pending sources ([Paths.preseed_oracle] — each distinct source one
   parallel BFS item); phase B resolves the pending edges with read-only
   memo lookups.  Chunks therefore never redo each other's BFS work, and
   all the merged counters — the [refine.*] totals below and the
   oracle's hit/miss and [paths.bfs.*] counters — are CR_JOBS-invariant
   (the preseed accounting reproduces the sequential query order). *)
let classify ~alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t) :
    classified * stats =
  Cr_obs.Obs.span "refine.classify" @@ fun () ->
  let succ_a = Explicit.csr a in
  let g = Explicit.csr c in
  let rp = Cr_kernel.Csr.row_ptr g and tg = Cr_kernel.Csr.targets g in
  let arp = Cr_kernel.Csr.row_ptr succ_a
  and atg = Cr_kernel.Csr.targets succ_a in
  let n = Explicit.num_states c in
  let m = Cr_kernel.Csr.num_edges g in
  let srcs = Array.make m 0 and dsts = Array.make m 0 in
  let cls = Array.make m None in
  let some_stutter = Some Stutter and some_exact = Some Exact in
  (* Sweep rows [lo, hi), writing each edge at its absolute offset;
     returns this chunk's tallies (edge count is implied by the range). *)
  let sweep lo hi =
    let t0 = if Cr_obs.Obs.tracking () then Cr_obs.Obs.now_us () else 0. in
    let oracle = Cr_checker.Paths.make_oracle ~succ:succ_a in
    let exact = ref 0 and stutter = ref 0 in
    let compressions = ref 0 and max_dropped = ref 0 in
    for i = lo to hi - 1 do
      let klo = rp.(i) and khi = rp.(i + 1) in
      if khi > klo then begin
        (* the source image and its abstract row bounds are fixed per
           row, so they are hoisted out of the inner edge loop *)
        let ai = alpha.(i) in
        let alo = arp.(ai) and ahi = arp.(ai + 1) in
        for k = klo to khi - 1 do
          let j = tg.(k) in
          let aj = alpha.(j) in
          let cl =
            if ai = aj then some_stutter
            else begin
              (* binary search in the sorted abstract successor row *)
              let slo = ref alo and shi = ref ahi in
              while !shi - !slo > 1 do
                let mid = (!slo + !shi) / 2 in
                if atg.(mid) <= aj then slo := mid else shi := mid
              done;
              if !shi > !slo && atg.(!slo) = aj then some_exact
              else
                match
                  Cr_checker.Paths.shortest_nonempty_memo oracle ~src:ai
                    ~dst:aj
                with
                | Some len when len >= 2 -> Some (Compression len)
                | Some _ | None -> None
            end
          in
          (match cl with
          | Some Stutter -> incr stutter
          | Some Exact -> incr exact
          | Some (Compression len) ->
              incr compressions;
              if len - 1 > !max_dropped then max_dropped := len - 1
          | None -> ());
          srcs.(k) <- i;
          dsts.(k) <- j;
          cls.(k) <- cl
        done
      end
    done;
    if Cr_obs.Obs.tracking () then
      Cr_obs.Obs.observe h_chunk (int_of_float (Cr_obs.Obs.now_us () -. t0));
    (!exact, !stutter, !compressions, !max_dropped)
  in
  (* Phase A of the parallel path: classify rows [lo, hi) like [sweep],
     but record the path-query edges (class still unknown) in a pending
     buffer instead of querying a chunk-local oracle.  Returns the
     stutter/exact tallies and the pending edge offsets. *)
  let sweep_collect lo hi =
    let t0 = if Cr_obs.Obs.tracking () then Cr_obs.Obs.now_us () else 0. in
    let exact = ref 0 and stutter = ref 0 in
    let pending = Array.make (rp.(hi) - rp.(lo)) 0 in
    let np = ref 0 in
    for i = lo to hi - 1 do
      let klo = rp.(i) and khi = rp.(i + 1) in
      if khi > klo then begin
        let ai = alpha.(i) in
        let alo = arp.(ai) and ahi = arp.(ai + 1) in
        for k = klo to khi - 1 do
          let j = tg.(k) in
          let aj = alpha.(j) in
          let cl =
            if ai = aj then begin
              incr stutter;
              some_stutter
            end
            else begin
              let slo = ref alo and shi = ref ahi in
              while !shi - !slo > 1 do
                let mid = (!slo + !shi) / 2 in
                if atg.(mid) <= aj then slo := mid else shi := mid
              done;
              if !shi > !slo && atg.(!slo) = aj then begin
                incr exact;
                some_exact
              end
              else begin
                pending.(!np) <- k;
                incr np;
                None
              end
            end
          in
          srcs.(k) <- i;
          dsts.(k) <- j;
          cls.(k) <- cl
        done
      end
    done;
    if Cr_obs.Obs.tracking () then
      Cr_obs.Obs.observe h_chunk (int_of_float (Cr_obs.Obs.now_us () -. t0));
    (!exact, !stutter, Array.sub pending 0 !np)
  in
  (* Phase B: resolve one chunk's pending edges against the shared,
     preseeded oracle — pure memo reads, so the chunks can share it. *)
  let resolve oracle (pending : int array) =
    let compressions = ref 0 and max_dropped = ref 0 in
    Array.iter
      (fun k ->
        match
          Cr_checker.Paths.shortest_nonempty_seeded oracle
            ~src:alpha.(srcs.(k)) ~dst:alpha.(dsts.(k))
        with
        | Some len when len >= 2 ->
            cls.(k) <- Some (Compression len);
            incr compressions;
            if len - 1 > !max_dropped then max_dropped := len - 1
        | Some _ | None -> ())
      pending;
    (!compressions, !max_dropped)
  in
  let jobs = min (Par.current_jobs ()) (max n 1) in
  let exact, stutter, compressions, max_dropped =
    if jobs <= 1 then sweep 0 n
    else begin
      (* Many more chunks than domains: uneven chunks stop serializing
         the sweep because idle domains claim the next chunk from the
         pool's atomic item counter. *)
      let num_chunks = max jobs (min (max n 1) (jobs * 8)) in
      (* Edge-balanced chunk boundaries: state index d covers edges up
         to roughly d*m/num_chunks.  [row_ptr] is nondecreasing, so the
         smallest state whose cumulative edge count reaches the quota is
         a binary search; boundaries are clamped nondecreasing by
         construction. *)
      let boundary d =
        if d = 0 then 0
        else if d = num_chunks then n
        else begin
          let want = d * m / num_chunks in
          let lo = ref 0 and hi = ref n in
          (* smallest i with rp.(i) >= want *)
          while !hi - !lo > 0 do
            let mid = (!lo + !hi) / 2 in
            if rp.(mid) < want then lo := mid + 1 else hi := mid
          done;
          !lo
        end
      in
      let chunks =
        Array.init num_chunks (fun d -> (boundary d, boundary (d + 1)))
      in
      let parts = Par.map_array (fun (lo, hi) -> sweep_collect lo hi) chunks in
      (* every pending query's source image, in chunk order — one entry
         per query, so the preseed accounting matches the sequential
         sweep exactly *)
      let total_pending =
        Array.fold_left (fun acc (_, _, p) -> acc + Array.length p) 0 parts
      in
      let sources = Array.make (max total_pending 1) 0 in
      let w = ref 0 in
      Array.iter
        (fun (_, _, p) ->
          Array.iter
            (fun k ->
              sources.(!w) <- alpha.(srcs.(k));
              incr w)
            p)
        parts;
      let oracle = Cr_checker.Paths.make_oracle ~succ:succ_a in
      Cr_checker.Paths.preseed_oracle oracle
        ~sources:(Array.sub sources 0 total_pending);
      let resolved =
        Par.map_array (fun (_, _, p) -> resolve oracle p) parts
      in
      (* deterministic merge in chunk order *)
      let exact, stutter =
        Array.fold_left
          (fun (e, s) (e', s', _) -> (e + e', s + s'))
          (0, 0) parts
      in
      let compressions, max_dropped =
        Array.fold_left
          (fun (cp, md) (cp', md') -> (cp + cp', max md md'))
          (0, 0) resolved
      in
      (exact, stutter, compressions, max_dropped)
    end
  in
  if Cr_obs.Obs.tracking () then begin
    Cr_obs.Obs.incr c_classify_runs;
    Cr_obs.Obs.add c_edges_exact exact;
    Cr_obs.Obs.add c_edges_stutter stutter;
    Cr_obs.Obs.add c_edges_compression compressions;
    Cr_obs.Obs.add c_edges_unmatched (m - exact - stutter - compressions);
    Cr_obs.Obs.record_max c_max_dropped max_dropped
  end;
  ( { srcs; dsts; cls },
    { edges = m; exact; stutter; compressions; max_dropped } )

(* CSR of the stutter edges alone, built flat by count-then-fill (rows
   inherit the sorted order of the classified edges). *)
let stutter_csr n (classified : classified) =
  let row_ptr = Array.make (n + 1) 0 in
  iter_classified classified (fun i _ cls ->
      match cls with
      | Some Stutter -> row_ptr.(i + 1) <- row_ptr.(i + 1) + 1
      | _ -> ());
  for i = 0 to n - 1 do
    row_ptr.(i + 1) <- row_ptr.(i + 1) + row_ptr.(i)
  done;
  let targets = Array.make row_ptr.(n) 0 in
  let fill = Array.copy row_ptr in
  iter_classified classified (fun i j cls ->
      match cls with
      | Some Stutter ->
          targets.(fill.(i)) <- j;
          fill.(i) <- fill.(i) + 1
      | _ -> ());
  Cr_kernel.Csr.unsafe_of_raw ~row_ptr ~targets

let initial_failures ~alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t) =
  Array.to_list (Explicit.initials c)
  |> List.filter_map (fun i ->
         if Explicit.is_initial a alpha.(i) then None
         else Some (Initial_not_initial i))

let terminal_failures ~alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t)
    ~(restrict : Cr_kernel.Bitset.t option) =
  let n = Explicit.num_states c in
  let consider i =
    match restrict with
    | None -> true
    | Some mask -> Cr_kernel.Bitset.get mask i
  in
  let acc = ref [] in
  for i = 0 to n - 1 do
    if consider i && Explicit.is_terminal c i
       && not (Explicit.is_terminal a alpha.(i))
    then acc := Terminal_not_terminal i :: !acc
  done;
  List.rev !acc

let make_report ~relation ~c ~a ~stats failures =
  {
    holds = failures = [];
    stats;
    failures =
      (let rec take n = function
         | [] -> []
         | _ when n = 0 -> []
         | x :: rest -> x :: take (n - 1) rest
       in
       take max_reported_failures failures);
    total_failures = List.length failures;
    concrete = Explicit.name c;
    abstract = Explicit.name a;
    relation;
    cost = None;
  }

(* Run one checker under a named span and attach the movement of this
   domain's counters — plus the gc.* allocation delta of this domain —
   to the verdict.  Both deltas are domain-local, so they are
   deterministic even when sibling checks run on other domains (the GC
   entries price only this domain's own allocations). *)
let with_cost span_name f =
  Cr_obs.Obs.span span_name @@ fun () ->
  if not (Cr_obs.Obs.tracking ()) then f ()
  else begin
    let before = Cr_obs.Obs.domain_snapshot () in
    let gc_before = Cr_obs.Obs.gc_now () in
    let report = f () in
    let gc_after = Cr_obs.Obs.gc_now () in
    let after = Cr_obs.Obs.domain_snapshot () in
    let cost =
      Cr_obs.Obs.merge_snapshots
        (Cr_obs.Obs.diff ~before ~after)
        (Cr_obs.Obs.gc_cost_entries
           (Cr_obs.Obs.gc_delta ~before:gc_before ~after:gc_after))
    in
    { report with cost = Some cost }
  end

(* Verdict cache shared by all four relations: the key covers the
   relation tag, both systems (names, exact transition structure,
   initial states), the resolved abstraction table and the fairness
   tables, so a hit can only return a report computed for an identical
   question.  [CR_CHECK_CACHE=0] / [Check_cache.bypass] opt out;
   [CR_CHECK_PARANOID=1] re-checks every hit. *)
let check_cache : report Check_cache.t = Check_cache.create ()

let same_report r1 r2 = { r1 with cost = None } = { r2 with cost = None }

let resolve_alpha ~c = function
  | Some t -> t
  | None -> Abstraction.identity_table (Explicit.num_states c)

let cache_key ~relation ~alpha ~fair ~(c : _ Explicit.t) ~(a : _ Explicit.t) =
  let fp = Check_cache.Fp.create () in
  Check_cache.Fp.add_explicit fp c;
  Check_cache.Fp.add_explicit fp a;
  Check_cache.Fp.add_int_array fp alpha;
  Check_cache.Fp.add_option_int_array_array fp fair;
  Printf.sprintf "%s|%s|%s|%s" relation (Explicit.name c) (Explicit.name a)
    (Check_cache.Fp.to_hex fp)

(* One journal event per verdict delivered to a caller.  [cached] is
   true when the report came out of the verdict cache without running
   the checker (under CR_CHECK_PARANOID the paranoid re-check makes a
   hit look fresh — the honest reading, since the work was done). *)
let emit_verdict ~was_cached (r : report) =
  if Cr_obs.Journal.enabled () then begin
    let open Cr_obs.Journal in
    let fields =
      [
        ("relation", S r.relation);
        ("concrete", S r.concrete);
        ("abstract", S r.abstract);
        ("holds", B r.holds);
        ("edges", I r.stats.edges);
        ("failures", I r.total_failures);
        ("cached", B was_cached);
      ]
    in
    let fields =
      match r.cost with
      | Some snap -> fields @ [ ("cost", Snap snap) ]
      | None -> fields
    in
    emit "refine.verdict" fields
  end

let cached ~relation ~alpha ~fair ~c ~a check =
  let computed = ref false in
  let check () =
    computed := true;
    check ()
  in
  let r =
    if not (Check_cache.enabled ()) then check ()
    else
      Check_cache.find_or_check check_cache
        ~key:(cache_key ~relation ~alpha ~fair ~c ~a)
        ~same:same_report ~check
  in
  emit_verdict ~was_cached:(not !computed) r;
  r

(* [C ⊑ A]_init *)
let init_refinement ?alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t) () =
  let alpha = resolve_alpha ~c alpha in
  cached ~relation:"⊑_init" ~alpha ~fair:None ~c ~a @@ fun () ->
  with_cost "refine.init" @@ fun () ->
  let reach = Cr_checker.Reach.reachable_from_initial c in
  let failures = ref (initial_failures ~alpha ~c ~a) in
  let edges = ref 0 and exact = ref 0 in
  Explicit.iter_edges c (fun i j ->
      if Cr_kernel.Bitset.get reach i then begin
        incr edges;
        if Explicit.has_edge a alpha.(i) alpha.(j) then incr exact
        else failures := Init_edge_not_exact (i, j) :: !failures
      end);
  let failures =
    !failures @ terminal_failures ~alpha ~c ~a ~restrict:(Some reach)
  in
  let stats = { empty_stats with edges = !edges; exact = !exact } in
  make_report ~relation:"⊑_init" ~c ~a ~stats failures

(* [C ⊑ A] — everywhere refinement *)
let everywhere_refinement ?alpha ~(c : _ Explicit.t) ~(a : _ Explicit.t) () =
  let alpha = resolve_alpha ~c alpha in
  cached ~relation:"⊑" ~alpha ~fair:None ~c ~a @@ fun () ->
  with_cost "refine.everywhere" @@ fun () ->
  let failures = ref (initial_failures ~alpha ~c ~a) in
  let edges = ref 0 and exact = ref 0 in
  Explicit.iter_edges c (fun i j ->
      incr edges;
      if Explicit.has_edge a alpha.(i) alpha.(j) then incr exact
      else failures := Init_edge_not_exact (i, j) :: !failures);
  let failures = !failures @ terminal_failures ~alpha ~c ~a ~restrict:None in
  let stats = { empty_stats with edges = !edges; exact = !exact } in
  make_report ~relation:"⊑" ~c ~a ~stats failures

(* [C ⪯ A] — convergence refinement.  With [?fair], "on a cycle" means
   "on a weakly-fair cycle" (computations are restricted to weakly fair
   ones; see {!Fair}). *)
let convergence_refinement ?alpha ?fair ~(c : _ Explicit.t)
    ~(a : _ Explicit.t) () =
  let alpha = resolve_alpha ~c alpha in
  cached ~relation:"⪯" ~alpha ~fair ~c ~a @@ fun () ->
  with_cost "refine.convergence" @@ fun () ->
  let classified, stats = classify ~alpha ~c ~a in
  let n = Explicit.num_states c in
  let succ_c = Explicit.csr c in
  let edge_on_cycle =
    match fair with
    | None ->
        (* computed on demand: only compression edges query it *)
        let scc = lazy (Cr_checker.Scc.compute_csr succ_c) in
        fun i j -> Cr_checker.Scc.edge_on_cycle (Lazy.force scc) i j
    | Some tables ->
        let analysis =
          Fair.analyze_csr tables ~succ:succ_c
            ~mask:(Cr_kernel.Bitset.full n)
        in
        fun i j -> Fair.edge_on_fair_cycle analysis i j
  in
  let failures = ref (initial_failures ~alpha ~c ~a) in
  (* 1. Init refinement: reachable edges must be Exact.  The forward
     reachability reuses [succ_c] — no adjacency rebuild. *)
  Cr_obs.Obs.span "refine.init_check" (fun () ->
      let reach =
        Cr_checker.Reach.forward_csr ~succ:succ_c
          ~seeds:(Array.to_list (Explicit.initials c))
      in
      iter_classified classified (fun i j cls ->
          match cls with
          | Some Exact -> ()
          | _ ->
              if Cr_kernel.Bitset.get reach i then
                failures := Init_edge_not_exact (i, j) :: !failures));
  (* 2. Global matching + finiteness of omissions. *)
  Cr_obs.Obs.span "refine.cycle_check" (fun () ->
      iter_classified classified (fun i j cls ->
          match cls with
          | None -> failures := Edge_unmatched (i, j) :: !failures
          | Some (Compression _) when edge_on_cycle i j ->
              failures := Compression_on_cycle (i, j) :: !failures
          | Some _ -> ()));
  (* 3. Stutter-only cycles: an infinite computation of C whose image is
     eventually constant normalizes to a finite sequence, so its (constant)
     image must be able to end a computation of A, i.e. be A-terminal.
     A system with no stutter edge has no such cycle — skip the pass. *)
  (if stats.stutter > 0 then
     Cr_obs.Obs.span "refine.stutter_check" @@ fun () ->
     let stutter_adj = stutter_csr n classified in
     let on_stutter_cycle =
       match fair with
       | None ->
           let stutter_scc = Cr_checker.Scc.compute_csr stutter_adj in
           fun i -> Cr_checker.Scc.on_cycle stutter_scc i
       | Some tables ->
           let analysis =
             Fair.analyze_csr tables ~succ:stutter_adj
               ~mask:(Cr_kernel.Bitset.full n)
           in
           fun i -> analysis.Fair.fair.(i)
     in
     for i = 0 to n - 1 do
       if on_stutter_cycle i && not (Explicit.is_terminal a alpha.(i)) then
         failures := Stutter_cycle i :: !failures
     done);
  (* 4. Terminal matching (everywhere). *)
  let failures = !failures @ terminal_failures ~alpha ~c ~a ~restrict:None in
  make_report ~relation:"⪯" ~c ~a ~stats failures

(* Everywhere-eventually refinement (Section 7): arbitrary finite prefix
   followed by a computation of A.  Unlike convergence refinement, the
   prefix is unconstrained (no per-edge matching against A), so only
   edges that can recur forever matter: any non-Exact non-Stutter edge on
   a cycle defeats the eventual suffix, as does an unbounded stutter with
   a non-terminal image.  Init refinement is still required. *)
let everywhere_eventually_refinement ?alpha ?fair ~(c : _ Explicit.t)
    ~(a : _ Explicit.t) () =
  let alpha = resolve_alpha ~c alpha in
  cached ~relation:"⊑_ee" ~alpha ~fair ~c ~a @@ fun () ->
  with_cost "refine.everywhere_eventually" @@ fun () ->
  let classified, stats = classify ~alpha ~c ~a in
  let n = Explicit.num_states c in
  let succ_c = Explicit.csr c in
  let edge_on_cycle =
    match fair with
    | None ->
        (* computed on demand: only non-exact, non-stutter edges query it *)
        let scc = lazy (Cr_checker.Scc.compute_csr succ_c) in
        fun i j -> Cr_checker.Scc.edge_on_cycle (Lazy.force scc) i j
    | Some tables ->
        let analysis =
          Fair.analyze_csr tables ~succ:succ_c
            ~mask:(Cr_kernel.Bitset.full n)
        in
        fun i j -> Fair.edge_on_fair_cycle analysis i j
  in
  let failures = ref (initial_failures ~alpha ~c ~a) in
  Cr_obs.Obs.span "refine.cycle_check" (fun () ->
      let reach =
        Cr_checker.Reach.forward_csr ~succ:succ_c
          ~seeds:(Array.to_list (Explicit.initials c))
      in
      iter_classified classified (fun i j cls ->
          let is_exact = match cls with Some Exact -> true | _ -> false in
          if Cr_kernel.Bitset.get reach i && not is_exact then
            failures := Init_edge_not_exact (i, j) :: !failures
          else
            match cls with
            | Some Exact | Some Stutter -> ()
            | Some (Compression _) | None ->
                if edge_on_cycle i j then
                  failures := Non_exact_on_cycle (i, j) :: !failures));
  (if stats.stutter > 0 then
     Cr_obs.Obs.span "refine.stutter_check" @@ fun () ->
     let stutter_adj = stutter_csr n classified in
     let on_stutter_cycle =
       match fair with
       | None ->
           let stutter_scc = Cr_checker.Scc.compute_csr stutter_adj in
           fun i -> Cr_checker.Scc.on_cycle stutter_scc i
       | Some tables ->
           let analysis =
             Fair.analyze_csr tables ~succ:stutter_adj
               ~mask:(Cr_kernel.Bitset.full n)
           in
           fun i -> analysis.Fair.fair.(i)
     in
     for i = 0 to n - 1 do
       if on_stutter_cycle i && not (Explicit.is_terminal a alpha.(i)) then
         failures := Stutter_cycle i :: !failures
     done);
  let failures = !failures @ terminal_failures ~alpha ~c ~a ~restrict:None in
  make_report ~relation:"⊑_ee" ~c ~a ~stats failures
