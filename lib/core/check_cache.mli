(** Content-addressed memoization of checker verdicts.

    A cache maps fingerprints of everything a verdict depends on — both
    systems' exact transition structure and initial states, the
    abstraction table, the relation, fairness tables, stuttering options
    — to whole reports, so experiment tables that ask the same question
    twice (e.g. the registry's direct-stabilization and wrapper tables
    over the same pair) share one check.  {!Refine} and {!Stabilize}
    each own an instance and build the keys; nothing else needs to.

    Lookups are single-flight across domains: concurrent requesters of a
    missing key block while one domain checks, then count a hit — the
    [check.cache.hits]/[check.cache.misses] counters are invariant under
    the [CR_JOBS] fan-out, like every other [Cr_obs] counter.

    A cached report keeps the [cost] snapshot of the original (miss)
    run: that is what the verdict cost to establish.

    Environment switches: [CR_CHECK_CACHE=0] disables caching entirely;
    [CR_CHECK_PARANOID=1] (a test mode) re-checks on every hit and
    asserts the cached report equals the fresh one modulo [cost]. *)

type 'v t

val create : unit -> 'v t
(** A fresh cache, registered with {!clear_all}.  Intended to be called
    once per checker module at initialization. *)

val enabled : unit -> bool
(** Is the cache active?  False when [CR_CHECK_CACHE=0] or inside
    {!bypass}. *)

val paranoid : unit -> bool
(** Is [CR_CHECK_PARANOID] set to a truthy value? *)

val bypass : (unit -> 'b) -> 'b
(** Run with the cache disabled in the calling domain (benchmarks and
    tests that need a guaranteed fresh verdict). *)

val find_or_check :
  'v t -> key:string -> same:('v -> 'v -> bool) -> check:(unit -> 'v) -> 'v
(** [find_or_check c ~key ~same ~check] returns the cached verdict for
    [key], or runs [check], stores its result and returns it.  [same] is
    the paranoid-mode comparison (equality modulo the cost snapshot).
    If [check] raises, the error propagates and nothing is cached. *)

val length : _ t -> int
(** Number of cached verdicts (test support). *)

val clear : _ t -> unit
(** Drop every completed entry (test/bench support; in-flight checks
    publish normally). *)

val clear_all : unit -> unit
(** {!clear} every cache created so far (test/bench support). *)

(** Rolling fingerprints for key construction: the compile fingerprint's
    double-FNV fold, applied to exact structure. *)
module Fp : sig
  type t

  val create : unit -> t
  val add_int : t -> int -> unit
  val add_string : t -> string -> unit
  val add_int_array : t -> int array -> unit

  val add_option_int_array_array : t -> int array array option -> unit
  (** Fold fairness tables (or their absence, distinctly). *)

  val add_explicit : t -> _ Cr_semantics.Explicit.t -> unit
  (** Fold a system's exact transition structure (CSR offsets and
      targets) and initial states. *)

  val to_hex : t -> string
end
