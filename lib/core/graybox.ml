open Cr_semantics

(* The graybox stabilization workflow of Section 2.2, packaged: given a
   specification A, a wrapper W designed against A alone, an
   implementation C and (optionally) an independently refined wrapper W',
   discharge the premises of Theorem 5 and conclude.

   All four systems must share one state space (use the guarded-command
   layer and {!Cr_semantics.Explicit.box} for composition across state
   spaces via abstraction, as the token-ring experiments do). *)

type result = {
  wrapper_stabilizes_spec : Stabilize.report;  (* (A [] W) stabilizing to A *)
  impl_refines_spec : Refine.report;  (* [C ⪯ A] *)
  wrapper_refines : Refine.report option;  (* [W' ⪯ W], when W' given *)
  conclusion : Stabilize.report;  (* (C [] W') stabilizing to A *)
  sound : bool;
      (* all discharged premises hold and the conclusion holds — i.e. the
         instance witnesses Theorem 3/5 *)
}

let pp fmt r =
  Fmt.pf fmt "@[<v>premise (A[]W) stab A : %a@,premise [C ⪯ A]      : %a@,%aconclusion           : %a@,workflow sound       : %b@]"
    Stabilize.pp_report r.wrapper_stabilizes_spec Refine.pp_report
    r.impl_refines_spec
    (fun fmt -> function
      | None -> ()
      | Some w -> Fmt.pf fmt "premise [W' ⪯ W]     : %a@," Refine.pp_report w)
    r.wrapper_refines Stabilize.pp_report r.conclusion r.sound

let run ?(box = fun a b -> Explicit.box a b) ?w' ~(spec : 'a Explicit.t)
    ~(wrapper : 'a Explicit.t) ~(impl : 'a Explicit.t) () : result =
  let aw = box spec wrapper in
  let wrapper_stabilizes_spec = Stabilize.stabilizing_to ~c:aw ~a:spec () in
  let impl_refines_spec = Refine.convergence_refinement ~c:impl ~a:spec () in
  let w'_used = match w' with Some w -> w | None -> wrapper in
  let wrapper_refines =
    match w' with
    | None -> None
    | Some w ->
        Some (Refine.convergence_refinement ~c:w ~a:wrapper ())
  in
  let cw = box impl w'_used in
  let conclusion = Stabilize.stabilizing_to ~c:cw ~a:spec () in
  let premises =
    wrapper_stabilizes_spec.Stabilize.holds
    && impl_refines_spec.Refine.holds
    && match wrapper_refines with
       | None -> true
       | Some r -> r.Refine.holds
  in
  {
    wrapper_stabilizes_spec;
    impl_refines_spec;
    wrapper_refines;
    conclusion;
    sound = (not premises) || conclusion.Stabilize.holds;
  }
