(* Weak fairness.

   The paper (like much of the stabilization literature) is silent about
   the daemon; several of its wrapped-system claims fail under a fully
   adversarial interleaving daemon because the daemon can starve an
   enabled wrapper or ring action forever (see EXPERIMENTS.md).  Under
   *weak fairness* — an action that is continuously enabled is eventually
   taken — those starvation cycles are excluded.

   Decision procedure: an infinite run of a finite system eventually stays
   inside one SCC and can visit all its states infinitely often.  Hence a
   weakly-fair divergent run confined to an SCC [C] exists iff for every
   action [a] enabled at *every* state of [C] there is an [a]-labelled
   transition that stays inside [C].  (If [a] is disabled somewhere in
   [C], a run is fair w.r.t. [a] by visiting that state infinitely often;
   if [a] is enabled everywhere in [C] but always exits [C], every run
   confined to [C] — or to any subset of [C] — starves [a].)  This makes
   the per-SCC check exact.

   Actions are given as a table over state indices:
   [next.(a).(i) = j] when action [a] fires from state [i] to [j], and
   [-1] when [a] is disabled at [i] (a no-op firing counts as disabled:
   it generates no transition). *)

type tables = int array array
(** [next.(action).(state)] = successor index, or [-1]. *)

type analysis = {
  component : int array;  (* component id per state; -1 outside the mask *)
  fair : bool array;  (* state lies in a fair-admissible SCC *)
  sccs : int list list;  (* the fair-admissible SCCs *)
}

let enabled (next : tables) a i = next.(a).(i) >= 0

(* [edge] is membership in the (restricted) adjacency the run is confined
   to: a step counts as "taken inside" only if it is an edge of that graph
   within the SCC.  (For stuttering analyses the graph is a strict
   subgraph of the system, so the edge-membership test matters.) *)
let admissible (next : tables) ~(edge : int -> int -> bool)
    ~(in_scc : int -> bool) (states : int list) =
  match states with
  | [] | [ _ ] -> false
  | _ ->
      let num_actions = Array.length next in
      let ok = ref true in
      for a = 0 to num_actions - 1 do
        if !ok then begin
          let always_enabled = List.for_all (fun i -> enabled next a i) states in
          if always_enabled then begin
            let taken_inside =
              List.exists
                (fun i ->
                  let j = next.(a).(i) in
                  j >= 0 && in_scc j && edge i j)
                states
            in
            if not taken_inside then ok := false
          end
        end
      done;
      !ok

let c_runs = Cr_obs.Obs.counter "fair.analyze.runs"
let c_admissible = Cr_obs.Obs.counter "fair.admissible_sccs"

(* Analyze the subgraph induced by [mask]: compute its SCCs and which of
   them carry a weakly-fair infinite run. *)
let analyze (next : tables) ~(succ : int array array) ~(mask : bool array) :
    analysis =
  Cr_obs.Obs.span "fair.analyze" @@ fun () ->
  let n = Array.length succ in
  let restricted = Cr_checker.Scc.restrict succ mask in
  let scc = Cr_checker.Scc.compute restricted in
  let members = Array.make scc.Cr_checker.Scc.count [] in
  for i = n - 1 downto 0 do
    if mask.(i) then begin
      let c = scc.Cr_checker.Scc.component.(i) in
      members.(c) <- i :: members.(c)
    end
  done;
  let component = Array.make n (-1) in
  for i = 0 to n - 1 do
    if mask.(i) then component.(i) <- scc.Cr_checker.Scc.component.(i)
  done;
  let fair = Array.make n false in
  let sccs = ref [] in
  Array.iteri
    (fun c states ->
      if scc.Cr_checker.Scc.sizes.(c) >= 2 then begin
        let in_scc j = mask.(j) && scc.Cr_checker.Scc.component.(j) = c in
        let edge i j = Array.exists (fun k -> k = j) restricted.(i) in
        if admissible next ~edge ~in_scc states then begin
          List.iter (fun i -> fair.(i) <- true) states;
          sccs := states :: !sccs
        end
      end)
    members;
  Cr_obs.Obs.incr c_runs;
  Cr_obs.Obs.add c_admissible (List.length !sccs);
  { component; fair; sccs = List.rev !sccs }

(* [analyze] over the system's flat CSR and a packed mask: restriction
   stays flat and the taken-inside test is a binary search in the
   restricted row — same boolean as the reference linear scan. *)
let analyze_csr (next : tables) ~(succ : Cr_kernel.Csr.t)
    ~(mask : Cr_kernel.Bitset.t) : analysis =
  Cr_obs.Obs.span "fair.analyze" @@ fun () ->
  let n = Cr_kernel.Csr.num_states succ in
  let restricted = Cr_kernel.Csr.restrict succ mask in
  let scc = Cr_checker.Scc.compute_csr restricted in
  let members = Array.make scc.Cr_checker.Scc.count [] in
  let component = Array.make n (-1) in
  (* one word-skipping pass over the mask builds both tables; the
     prepend-then-reverse keeps each member list ascending, as the
     witness-cycle rendering expects *)
  Cr_kernel.Bitset.iter_set_bits mask (fun i ->
      let c = scc.Cr_checker.Scc.component.(i) in
      members.(c) <- i :: members.(c);
      component.(i) <- c);
  Array.iteri (fun c states -> members.(c) <- List.rev states) members;
  let fair = Array.make n false in
  let sccs = ref [] in
  Array.iteri
    (fun c states ->
      if scc.Cr_checker.Scc.sizes.(c) >= 2 then begin
        let in_scc j =
          Cr_kernel.Bitset.get mask j
          && scc.Cr_checker.Scc.component.(j) = c
        in
        let edge i j = Cr_kernel.Csr.mem restricted i j in
        if admissible next ~edge ~in_scc states then begin
          List.iter (fun i -> fair.(i) <- true) states;
          sccs := states :: !sccs
        end
      end)
    members;
  Cr_obs.Obs.incr c_runs;
  Cr_obs.Obs.add c_admissible (List.length !sccs);
  { component; fair; sccs = List.rev !sccs }

let has_fair_divergence next ~succ ~mask =
  (analyze next ~succ ~mask).sccs <> []

let edge_on_fair_cycle analysis i j =
  analysis.fair.(i) && analysis.component.(i) = analysis.component.(j)

(* Build the action table of a compiled explicit system from a list of
   firing functions over raw states.  [fire.(a) state = Some state'] when
   action [a] makes a (state-changing) step. *)
let tables_of ~(num_states : int) ~(state_of : int -> 'a)
    ~(index_of : 'a -> int option) (fires : ('a -> 'a option) list) : tables =
  let fires = Array.of_list fires in
  Array.map
    (fun fire ->
      Array.init num_states (fun i ->
          match fire (state_of i) with
          | None -> -1
          | Some s' -> ( match index_of s' with Some j -> j | None -> -1)))
    fires
