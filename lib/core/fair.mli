(** Weak fairness: exact detection of weakly-fair divergent runs on finite
    systems (per-SCC Streett-style check).

    A run is weakly fair when every action that is continuously enabled is
    eventually taken.  An SCC carries a weakly-fair infinite run iff every
    action enabled at all of its states has a transition staying inside it
    — see the implementation commentary for the argument.  Used by
    {!Stabilize.stabilizing_to} and {!Refine.convergence_refinement} via
    their [?fair] parameter. *)

type tables = int array array
(** [next.(action).(state)] = successor state index, or [-1] when the
    action is disabled (or a no-op) there. *)

type analysis = {
  component : int array;
  fair : bool array;
  sccs : int list list;
}

val enabled : tables -> int -> int -> bool

val analyze : tables -> succ:int array array -> mask:bool array -> analysis
(** SCCs of the subgraph induced by [mask], with fair-admissibility. *)

val analyze_csr :
  tables -> succ:Cr_kernel.Csr.t -> mask:Cr_kernel.Bitset.t -> analysis
(** {!analyze} over a CSR graph and a packed mask — same analysis, flat
    restriction, binary-search edge membership. *)

val has_fair_divergence : tables -> succ:int array array -> mask:bool array -> bool

val edge_on_fair_cycle : analysis -> int -> int -> bool
(** Is the edge inside some fair-admissible SCC? *)

val tables_of :
  num_states:int ->
  state_of:(int -> 'a) ->
  index_of:('a -> int option) ->
  ('a -> 'a option) list ->
  tables
(** Compile per-action firing functions into an action table over an
    explicit system's state indices. *)
