(** Stabilization checker (exact on finite systems).

    [C] is stabilizing to [A] iff every computation of [C] has a suffix
    that is a suffix of some computation of [A] starting at an initial
    state of [A].

    Verdicts are memoized in a content-addressed {!Check_cache}
    ([CR_CHECK_CACHE=0] disables, [CR_CHECK_PARANOID=1] audits every
    hit); the bad-seed sweep is domain-chunked under [CR_JOBS] with a
    job-count-independent result. *)

type report = {
  holds : bool;
  concrete : string;
  abstract : string;
  legitimate : int;  (** states of [A] reachable from its initial states *)
  good : int;  (** converged region of [C] *)
  states : int;
  worst_case_recovery : int option;
      (** exact worst-case number of transitions before the converged
          region is entered (when stabilizing) *)
  bad_cycle : int list option;  (** witness cycle that never converges *)
  bad_terminal : int option;  (** witness deadlock outside the converged region *)
  good_mask : bool array;  (** per-state membership in the converged region *)
  cost : Cr_obs.Obs.snapshot option;
      (** telemetry counters moved by this check on the calling domain
          ([Some] only while {!Cr_obs.Obs.tracking} — e.g. under
          [CR_STATS], [CR_TRACE], or the CLI's [--stats]) *)
}

val pp_report : Format.formatter -> report -> unit

val stabilizing_to :
  ?alpha:int array ->
  ?fair:Fair.tables ->
  ?stutter:[ `Allow | `Forbid ] ->
  c:'c Cr_semantics.Explicit.t ->
  a:'a Cr_semantics.Explicit.t ->
  unit ->
  report
(** Decide "C is stabilizing to A", optionally through a tabulated
    abstraction.  With [?fair] (action tables for [c]), divergence is
    checked over weakly-fair computations only; [worst_case_recovery] is
    [None] when recovery is finite but unbounded.  [?stutter:`Allow]
    compares the converged suffix modulo τ-steps (default [`Forbid]). *)

val self_stabilizing : 'a Cr_semantics.Explicit.t -> report
(** [self_stabilizing a] = [stabilizing_to ~c:a ~a ()]. *)
