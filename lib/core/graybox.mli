(** The graybox stabilization workflow of Section 2.2, packaged: discharge
    the premises of Theorems 3/5 and conclude, on systems sharing one
    state space. *)

type result = {
  wrapper_stabilizes_spec : Stabilize.report;
  impl_refines_spec : Refine.report;
  wrapper_refines : Refine.report option;
  conclusion : Stabilize.report;
  sound : bool;
      (** premises discharged implies conclusion holds on this instance *)
}

val pp : Format.formatter -> result -> unit

val run :
  ?box:
    ('a Cr_semantics.Explicit.t ->
    'a Cr_semantics.Explicit.t ->
    'a Cr_semantics.Explicit.t) ->
  ?w':'a Cr_semantics.Explicit.t ->
  spec:'a Cr_semantics.Explicit.t ->
  wrapper:'a Cr_semantics.Explicit.t ->
  impl:'a Cr_semantics.Explicit.t ->
  unit ->
  result
