(** Trace execution and convergence measurement under explicit daemons. *)

open Cr_guarded

type trace_entry = { action : string; state : Layout.state }
type trace = { start : Layout.state; steps : trace_entry list }

val run : Daemon.t -> Program.t -> start:Layout.state -> max_steps:int -> trace

val steps_to :
  converged:(Layout.state -> bool) ->
  Daemon.t ->
  Program.t ->
  start:Layout.state ->
  max_steps:int ->
  int option
(** Steps until the predicate first holds; [None] if the bound is hit or a
    terminal non-converged state is reached. *)

type stats = {
  samples : int;
  converged : int;
  mean_steps : float;
  max_steps_observed : int;
  min_steps_observed : int;
}

val pp_stats : Format.formatter -> stats -> unit
(** One-line rendering; with zero converged runs the step statistics are
    printed as ["-"] (there is no distribution to summarize). *)

val convergence_stats :
  ?samples:int ->
  ?max_steps:int ->
  seed:int ->
  converged:(Layout.state -> bool) ->
  (int -> Daemon.t) ->
  Program.t ->
  stats
(** Monte-Carlo recovery statistics from uniformly random (corrupted)
    start states; [mk_daemon] receives the sample index. *)

val pp_trace : ?limit:int -> Program.t -> Format.formatter -> trace -> unit
