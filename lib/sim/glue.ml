(* Bridges between guarded-command programs and the core checkers. *)

open Cr_guarded

(* Action tables for the weak-fairness checker.  Only meaningful for
   plain (non-priority) compilations: under wrapper priority a suppressed
   base action would be misreported as enabled. *)
let fair_tables (p : Program.t) (e : Layout.state Cr_semantics.Explicit.t) :
    Cr_core.Fair.tables =
  Cr_core.Fair.tables_of
    ~num_states:(Cr_semantics.Explicit.num_states e)
    ~state_of:(Cr_semantics.Explicit.state e)
    ~index_of:(Cr_semantics.Explicit.find_opt e)
    (List.map (fun a s -> Action.fire a s) (Program.actions p))

(* Compile a program and tabulate an abstraction against a compiled
   specification in one go. *)
let compile_with_alpha ~(abstraction : (Layout.state, 'a) Cr_semantics.Abstraction.t)
    (p : Program.t) (spec : 'a Cr_semantics.Explicit.t) =
  let e = Program.to_explicit p in
  let alpha = Cr_semantics.Abstraction.tabulate abstraction e spec in
  (e, alpha)
