(* Daemons (schedulers) for executing guarded-command programs.

   The paper's systems are interleaving systems driven by an unspecified
   daemon; the simulator makes the daemon explicit so that examples and
   benchmarks can measure convergence under different adversaries. *)

open Cr_guarded

type pick = Layout.state -> (Action.t * Layout.state) list -> int
(* Given the current state and the nonempty list of firings, return the
   index of the chosen firing. *)

type t = { name : string; pick : pick }

let name t = t.name

(* Uniformly random among enabled firings. *)
let random ~seed =
  let rng = Random.State.make [| seed |] in
  {
    name = "random";
    pick = (fun _s firings -> Random.State.int rng (List.length firings));
  }

(* Round-robin over processes: repeatedly scan processes in cyclic order
   starting after the last fired process, taking the first process with an
   enabled firing (its first firing). *)
let round_robin () =
  let last = ref (-1) in
  let pick _s firings =
    let procs = List.map (fun (a, _) -> Action.proc a) firings in
    (* cyclic-distance modulus: one past the largest process id in play,
       so the scheduler is correct for rings of any size *)
    let m =
      1 + List.fold_left (fun acc p -> max acc p) (max 0 !last) procs
    in
    let best = ref 0 in
    let best_key = ref max_int in
    List.iteri
      (fun idx p ->
        (* distance of process p after !last in cyclic order; global
           wrapper actions (proc -1) are considered last *)
        let key = if p < 0 then max_int - 1 else (p - !last - 1 + (2 * m)) mod m in
        if key < !best_key then begin
          best_key := key;
          best := idx
        end)
      procs;
    let a, _ = List.nth firings !best in
    last := Action.proc a;
    !best
  in
  { name = "round-robin"; pick }

(* Adversarial daemon w.r.t. a convergence predicate: among enabled
   firings prefer one whose successor is not yet converged and, among
   those, one maximizing a precomputed "steps remaining" potential.  With
   the exact longest-path potential from the model checker this realizes
   the true worst case on acyclic recovery regions. *)
let adversarial ~name ~(potential : Layout.state -> int) =
  {
    name;
    pick =
      (fun _s firings ->
        let best = ref 0 and best_v = ref min_int in
        List.iteri
          (fun idx (_, s') ->
            let v = potential s' in
            if v > !best_v then begin
              best_v := v;
              best := idx
            end)
          firings;
        !best);
  }

(* Helpful daemon: minimizes the potential (best-case recovery). *)
let helpful ~name ~(potential : Layout.state -> int) =
  {
    name;
    pick =
      (fun _s firings ->
        let best = ref 0 and best_v = ref max_int in
        List.iteri
          (fun idx (_, s') ->
            let v = potential s' in
            if v < !best_v then begin
              best_v := v;
              best := idx
            end)
          firings;
        !best);
  }

(* One interleaving step under the daemon; [None] at terminal states. *)
let step (d : t) (p : Program.t) (s : Layout.state) :
    (Action.t * Layout.state) option =
  match Program.firings p s with
  | [] -> None
  | firings ->
      let idx = d.pick s firings in
      List.nth_opt firings idx

(* Synchronous (distributed) daemon: every process with an enabled action
   fires simultaneously, based on the old state; writes are merged in
   process order (only meaningful for programs whose actions write their
   own process's variables, like the paper's concrete systems). *)
let synchronous_step = Program.synchronous_step

let make ~name ~pick = { name; pick }
