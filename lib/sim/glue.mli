(** Bridges between guarded-command programs and the core checkers. *)

open Cr_guarded

val fair_tables :
  Program.t -> Layout.state Cr_semantics.Explicit.t -> Cr_core.Fair.tables
(** Action tables for the weak-fairness checker.  Only sound for plain
    (non-priority) compilations of the same program. *)

val compile_with_alpha :
  abstraction:(Layout.state, 'a) Cr_semantics.Abstraction.t ->
  Program.t ->
  'a Cr_semantics.Explicit.t ->
  Layout.state Cr_semantics.Explicit.t * int array
(** Compile a program and tabulate the abstraction against a compiled
    specification. *)
