(* Trace execution and convergence measurement under explicit daemons. *)

open Cr_guarded

type trace_entry = { action : string; state : Layout.state }

type trace = { start : Layout.state; steps : trace_entry list }

let run (d : Daemon.t) (p : Program.t) ~(start : Layout.state) ~(max_steps : int)
    : trace =
  let rec go acc s k =
    if k >= max_steps then List.rev acc
    else
      match Daemon.step d p s with
      | None -> List.rev acc
      | Some (a, s') -> go ({ action = Action.label a; state = s' } :: acc) s' (k + 1)
  in
  { start; steps = go [] start 0 }

(* Number of daemon steps until [converged] first holds (and remains to be
   checked by the caller); [None] when the bound is hit first. *)
let steps_to ~(converged : Layout.state -> bool) (d : Daemon.t) (p : Program.t)
    ~(start : Layout.state) ~(max_steps : int) : int option =
  let rec go s k =
    if converged s then Some k
    else if k >= max_steps then None
    else
      match Daemon.step d p s with
      | None -> if converged s then Some k else None
      | Some (_, s') -> go s' (k + 1)
  in
  go start 0

type stats = {
  samples : int;
  converged : int;  (* runs that reached the predicate within the bound *)
  mean_steps : float;  (* over converged runs *)
  max_steps_observed : int;
  min_steps_observed : int;
}

(* With zero converged runs there is no step distribution: mean is NaN
   and min/max carry sentinel values, so print "-" instead of garbage. *)
let pp_stats fmt s =
  if s.converged = 0 then
    Fmt.pf fmt "%d/%d converged, steps mean - min - max -" s.converged
      s.samples
  else
    Fmt.pf fmt "%d/%d converged, steps mean %.1f min %d max %d" s.converged
      s.samples s.mean_steps s.min_steps_observed s.max_steps_observed

let c_episodes = Cr_obs.Obs.counter "runner.episodes"
let c_converged = Cr_obs.Obs.counter "runner.converged"
let c_steps_total = Cr_obs.Obs.counter "runner.steps_total"

(* The convergence-episode length distribution (steps of each converged
   episode).  Observed on the calling domain in sample order after the
   fan-out returns, so the merged histogram depends only on the episode
   multiset — identical for every CR_JOBS. *)
let h_episode_steps = Cr_obs.Obs.histogram "runner.episode_steps"

(* Monte-Carlo convergence statistics from random corrupted states. *)
let convergence_stats ?(samples = 200) ?(max_steps = 100_000) ~seed
    ~(converged : Layout.state -> bool) (mk_daemon : int -> Daemon.t)
    (p : Program.t) : stats =
  Cr_obs.Obs.span "runner.convergence_stats" @@ fun () ->
  let rng = Random.State.make [| seed |] in
  let layout = Program.layout p in
  let random_state () =
    Array.init (Layout.num_vars layout) (fun i ->
        Random.State.int rng (Layout.dom layout i))
  in
  (* Episodes are seeded sequentially (one daemon and one start state per
     sample, in sample order) so the random draws never depend on the job
     count; only the independent runs fan out across domains. *)
  let episodes =
    Array.init samples (fun i -> (mk_daemon (i + 1), random_state ()))
  in
  let outcomes =
    Cr_kernel.Par.map_array
      (fun (d, start) -> steps_to ~converged d p ~start ~max_steps)
      episodes
  in
  let conv = ref 0 and total = ref 0 in
  let maxi = ref 0 and mini = ref max_int in
  Array.iter
    (function
      | Some k ->
          incr conv;
          total := !total + k;
          if k > !maxi then maxi := k;
          if k < !mini then mini := k;
          Cr_obs.Obs.observe h_episode_steps k
      | None -> ())
    outcomes;
  if Cr_obs.Obs.tracking () then begin
    Cr_obs.Obs.add c_episodes samples;
    Cr_obs.Obs.add c_converged !conv;
    Cr_obs.Obs.add c_steps_total !total
  end;
  Cr_obs.Journal.emit "runner.episodes"
    [
      ("program", Cr_obs.Journal.S (Program.name p));
      ("samples", Cr_obs.Journal.I samples);
      ("converged", Cr_obs.Journal.I !conv);
      ("steps_total", Cr_obs.Journal.I !total);
      ("max_steps_observed", Cr_obs.Journal.I !maxi);
    ];
  {
    samples;
    converged = !conv;
    mean_steps =
      (if !conv = 0 then nan else float_of_int !total /. float_of_int !conv);
    max_steps_observed = !maxi;
    min_steps_observed = (if !conv = 0 then 0 else !mini);
  }

let pp_trace ?(limit = 30) (p : Program.t) fmt (t : trace) =
  let layout = Program.layout p in
  Fmt.pf fmt "@[<v>start  %a@," (Layout.pp_state layout) t.start;
  List.iteri
    (fun i e ->
      if i < limit then
        Fmt.pf fmt "%-6s %a@," e.action (Layout.pp_state layout) e.state)
    t.steps;
  if List.length t.steps > limit then
    Fmt.pf fmt "... (%d more steps)@," (List.length t.steps - limit);
  Fmt.pf fmt "@]"
