(* Trace execution and convergence measurement under explicit daemons. *)

open Cr_guarded

type trace_entry = { action : string; state : Layout.state }

type trace = { start : Layout.state; steps : trace_entry list }

let run (d : Daemon.t) (p : Program.t) ~(start : Layout.state) ~(max_steps : int)
    : trace =
  let rec go acc s k =
    if k >= max_steps then List.rev acc
    else
      match Daemon.step d p s with
      | None -> List.rev acc
      | Some (a, s') -> go ({ action = Action.label a; state = s' } :: acc) s' (k + 1)
  in
  { start; steps = go [] start 0 }

(* Number of daemon steps until [converged] first holds (and remains to be
   checked by the caller); [None] when the bound is hit first. *)
let steps_to ~(converged : Layout.state -> bool) (d : Daemon.t) (p : Program.t)
    ~(start : Layout.state) ~(max_steps : int) : int option =
  let rec go s k =
    if converged s then Some k
    else if k >= max_steps then None
    else
      match Daemon.step d p s with
      | None -> if converged s then Some k else None
      | Some (_, s') -> go s' (k + 1)
  in
  go start 0

type stats = {
  samples : int;
  converged : int;  (* runs that reached the predicate within the bound *)
  mean_steps : float;  (* over converged runs *)
  max_steps_observed : int;
  min_steps_observed : int;
}

let pp_stats fmt s =
  Fmt.pf fmt "%d/%d converged, steps mean %.1f min %d max %d" s.converged
    s.samples s.mean_steps s.min_steps_observed s.max_steps_observed

(* Monte-Carlo convergence statistics from random corrupted states. *)
let convergence_stats ?(samples = 200) ?(max_steps = 100_000) ~seed
    ~(converged : Layout.state -> bool) (mk_daemon : int -> Daemon.t)
    (p : Program.t) : stats =
  let rng = Random.State.make [| seed |] in
  let layout = Program.layout p in
  let random_state () =
    Array.init (Layout.num_vars layout) (fun i ->
        Random.State.int rng (Layout.dom layout i))
  in
  let results = ref [] in
  for i = 1 to samples do
    let d = mk_daemon i in
    match steps_to ~converged d p ~start:(random_state ()) ~max_steps with
    | Some k -> results := k :: !results
    | None -> ()
  done;
  let conv = List.length !results in
  let total = List.fold_left ( + ) 0 !results in
  {
    samples;
    converged = conv;
    mean_steps = (if conv = 0 then nan else float_of_int total /. float_of_int conv);
    max_steps_observed = List.fold_left max 0 !results;
    min_steps_observed =
      (if conv = 0 then 0 else List.fold_left min max_int !results);
  }

let pp_trace ?(limit = 30) (p : Program.t) fmt (t : trace) =
  let layout = Program.layout p in
  Fmt.pf fmt "@[<v>start  %a@," (Layout.pp_state layout) t.start;
  List.iteri
    (fun i e ->
      if i < limit then
        Fmt.pf fmt "%-6s %a@," e.action (Layout.pp_state layout) e.state)
    t.steps;
  if List.length t.steps > limit then
    Fmt.pf fmt "... (%d more steps)@," (List.length t.steps - limit);
  Fmt.pf fmt "@]"
