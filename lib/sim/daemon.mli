(** Daemons (schedulers) driving guarded-command programs. *)

open Cr_guarded

type pick = Layout.state -> (Action.t * Layout.state) list -> int

type t

val name : t -> string

val random : seed:int -> t
(** Uniformly random among enabled firings. *)

val round_robin : unit -> t
(** Cyclic scan over processes (stateful across steps). *)

val adversarial : name:string -> potential:(Layout.state -> int) -> t
(** Always picks the successor maximizing [potential] — with the exact
    longest-path potential this realizes the worst-case recovery. *)

val helpful : name:string -> potential:(Layout.state -> int) -> t
(** Always picks the successor minimizing [potential]. *)

val step : t -> Program.t -> Layout.state -> (Action.t * Layout.state) option
(** One interleaving step; [None] at terminal states. *)

val synchronous_step : Program.t -> Layout.state -> Layout.state option
(** Synchronous distributed daemon: all enabled processes fire at once
    (reads from the old state, writes merged).  Only meaningful for
    programs whose actions write their own process's variables. *)

val make : name:string -> pick:pick -> t
